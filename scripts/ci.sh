#!/usr/bin/env bash
# CI gate: build the tree with AddressSanitizer+UBSan and run the full
# tier-1 test suite, then rebuild the concurrency-sensitive parts with
# ThreadSanitizer and run the SweepRunner tests under it.
#
#   scripts/ci.sh            # asan/ubsan suite + tsan runner tests
#   SKIP_TSAN=1 scripts/ci.sh  # asan/ubsan only (fast path)
#
# TSan and ASan cannot share a build tree, so each sanitizer gets its
# own build directory.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

echo "=== ASan/UBSan build + full test suite ==="
cmake -B build-asan -S . -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "=== Crash-recovery fuzz smoke (ASan/UBSan) ==="
# A reduced deterministic sweep of the crash-point fuzzer: enough
# points to cover every named site under both schemes, small enough
# for a CI gate.  The harness exits non-zero on any unexplained
# recovery divergence.
KINDLE_FUZZ_POINTS=64 ./build-asan/bench/fuzz_crash_recovery
rm -f BENCH_fuzz_crash_recovery.json

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
    echo "=== TSan build + SweepRunner tests ==="
    cmake -B build-tsan -S . -G Ninja \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread"
    cmake --build build-tsan -j "${JOBS}" --target test_runner
    # The runner tests exercise every cross-thread path: the work
    # queue, result placement, and the shared trace-flag/error-mode
    # globals that concurrent KindleSystem instances touch.
    ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
        -R 'SweepRunner|SweepDeterminism|BenchReport'
fi

echo "ci.sh: all checks passed"
