#!/usr/bin/env bash
# CI gate: build the tree with AddressSanitizer+UBSan and run the full
# tier-1 test suite, then rebuild the concurrency-sensitive parts with
# ThreadSanitizer and run the SweepRunner tests under it.
#
#   scripts/ci.sh            # asan/ubsan suite + tsan runner tests
#   SKIP_TSAN=1 scripts/ci.sh  # asan/ubsan only (fast path)
#
# TSan and ASan cannot share a build tree, so each sanitizer gets its
# own build directory.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

echo "=== ASan/UBSan build + full test suite ==="
cmake -B build-asan -S . -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "=== Crash-recovery fuzz smoke (ASan/UBSan) ==="
# A reduced deterministic sweep of the crash-point fuzzer: enough
# points to cover every named site under both schemes, small enough
# for a CI gate.  The harness exits non-zero on any unexplained
# recovery divergence.  Run once clean and once with the NVM media
# error model + patrol scrubber armed underneath the protocols.
./build-asan/bench/fuzz_crash_recovery --points 64
./build-asan/bench/fuzz_crash_recovery --points 64 --media-faults
rm -f BENCH_fuzz_crash_recovery.json

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
    echo "=== TSan build + SweepRunner/fault/persist tests ==="
    cmake -B build-tsan -S . -G Ninja \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread"
    cmake --build build-tsan -j "${JOBS}" \
        --target test_runner test_fault test_persist
    # The runner tests exercise every cross-thread path: the work
    # queue, result placement, and the shared trace-flag/error-mode
    # globals that concurrent KindleSystem instances touch.
    ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
        -R 'SweepRunner|SweepDeterminism|BenchReport'
    # The fault and persist suites drive crash/reboot/recovery (and
    # with media faults, scrubber-triggered retirement) through the
    # same thread-local injector routing SweepRunner workers use —
    # run them whole under TSan as well.
    ./build-tsan/tests/test_fault
    ./build-tsan/tests/test_persist
fi

echo "ci.sh: all checks passed"
