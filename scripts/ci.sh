#!/usr/bin/env bash
# CI gate: build the tree with AddressSanitizer+UBSan and run the full
# tier-1 test suite, then rebuild the concurrency-sensitive parts with
# ThreadSanitizer and run the SweepRunner tests under it.
#
#   scripts/ci.sh            # asan/ubsan suite + tsan runner tests
#   SKIP_TSAN=1 scripts/ci.sh  # asan/ubsan only (fast path)
#   SKIP_PERF=1 scripts/ci.sh  # skip the Release perf-regression gate
#
# TSan and ASan cannot share a build tree, so each sanitizer gets its
# own build directory; the perf gate needs an unsanitized Release
# build on top (sanitizer slowdown would drown real regressions), so
# it gets a third.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
ARTIFACTS=${CI_ARTIFACTS:-ci-artifacts}

# Run a fuzz harness; on failure, sweep its FLIGHT_*.json flight
# recorder dumps into ${ARTIFACTS}/ so the divergence timeline
# survives the CI run, then fail the gate.
run_fuzz() {
    if ! "$@"; then
        mkdir -p "${ARTIFACTS}"
        mv -f FLIGHT_*.json "${ARTIFACTS}/" 2>/dev/null || true
        echo "fuzz FAILED: $* (flight dumps in ${ARTIFACTS}/)" >&2
        exit 1
    fi
    rm -f FLIGHT_*.json
}

echo "=== ASan/UBSan build + full test suite ==="
cmake -B build-asan -S . -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "=== Crash-recovery fuzz smoke (ASan/UBSan) ==="
# A reduced deterministic sweep of the crash-point fuzzer: enough
# points to cover every named site under both schemes, small enough
# for a CI gate.  The harness exits non-zero on any unexplained
# recovery divergence.  Run once clean and once with the NVM media
# error model + patrol scrubber armed underneath the protocols.
run_fuzz ./build-asan/bench/fuzz_crash_recovery --points 64
run_fuzz ./build-asan/bench/fuzz_crash_recovery --points 64 --media-faults
# The same sweep on a 4-core system: background mutator processes on
# the extra cores widen the crash interleavings (shootdown IPIs and
# runqueue state in flight at the crash point).
run_fuzz ./build-asan/bench/fuzz_crash_recovery --points 64 --cores 4
rm -f BENCH_fuzz_crash_recovery.json

echo "=== Memory-pressure fuzz smoke (ASan/UBSan) ==="
# The exhaustion fuzzer: shrunken zones, injected allocation failures,
# watermark reclaim, and the OOM killer underneath the same crash-point
# sweep.  Exits non-zero on any recovery divergence, any
# non-idempotent second recovery, or if the pressured golden run fails
# to actually exercise reclaim and the OOM path (mistuning tripwire).
run_fuzz ./build-asan/bench/fuzz_pressure --points 64
run_fuzz ./build-asan/bench/fuzz_pressure --points 64 --media-faults
rm -f BENCH_fuzz_pressure.json

echo "=== Core-loss fuzz smoke (ASan/UBSan) ==="
# The CPU-fault fuzzer: seeded fail-stop/stall core faults, the IPI
# ack-timeout/retry protocol, watchdog offlining, and recovery on the
# degraded machine underneath the crash-point sweep — 45 points split
# over the nine fault × variant buckets per scheme.  Exits non-zero on
# any divergence, any non-idempotent recovery, or if a golden run
# fails to exercise its bucket's protocol (offline / retry / reclaim
# tripwires).
run_fuzz ./build-asan/bench/fuzz_core_loss --points 45
rm -f BENCH_fuzz_core_loss.json

echo "=== Fleet-storm smoke (ASan/UBSan) ==="
# A reduced multi-tenant fleet (DESIGN.md §13) swept on 1 and 4
# cores: churn through the crash-consistent exit/spawn paths,
# checkpoint storms over the population, reclaim demotions and OOM
# kills against the squeezed zones.  The bench self-checks churn
# determinism (two byte-identical small-fleet runs) before sweeping
# and exits non-zero if any point fails.
./build-asan/bench/fleet_storm --tenants 192 --churn 48
rm -f BENCH_fleet_storm.json

echo "=== DESIGN.md crash-site table drift check ==="
# The table is generated from fault::crashSiteCatalog(); regenerate it
# and fail if the committed DESIGN.md had gone stale.
scripts/gen_crash_site_table.sh build-asan/bench/fig4a_seq_alloc
if ! git diff --exit-code -- DESIGN.md; then
    echo "DESIGN.md crash-site table is stale: commit the" \
         "regenerated table above" >&2
    exit 1
fi

if [[ "${SKIP_PERF:-0}" != "1" ]]; then
    echo "=== Perf-regression gate (Release fig5 vs baselines.json) ==="
    # Wall-clock regression check with prof.* attribution: a Release
    # (unsanitized) run of the fig5 sweep must stay within 1.5x of the
    # committed bench/baselines.json.  --prof attaches the
    # self-profiler so a failure names the subsystem that slowed down;
    # --jobs 1 keeps the wall numbers free of scheduling noise.
    cmake -B build-perf -S . -G Ninja -DCMAKE_BUILD_TYPE=Release
    cmake --build build-perf -j "${JOBS}" \
        --target fig5_ssp_interval fleet_storm
    PERF_DIR=$(mktemp -d)
    REPO=$(pwd)
    (cd "${PERF_DIR}" &&
        "${REPO}/build-perf/bench/fig5_ssp_interval" --jobs 1 --prof)
    python3 scripts/perf_gate.py check \
        "${PERF_DIR}/BENCH_fig5_ssp_interval.json"
    # The fleet storm gates the scale axis: 1024 churning tenants on 1
    # and 4 cores must stay fast — this is the run that wedges if the
    # checkpoint sweep ever goes back to O(population) NVM writes or
    # pressure relief loses its throttle.
    (cd "${PERF_DIR}" &&
        "${REPO}/build-perf/bench/fleet_storm" --jobs 1 --prof \
            --churn 256)
    python3 scripts/perf_gate.py check \
        "${PERF_DIR}/BENCH_fleet_storm.json"
    rm -rf "${PERF_DIR}"
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
    echo "=== TSan build + SweepRunner/fault/persist tests ==="
    cmake -B build-tsan -S . -G Ninja \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread"
    cmake --build build-tsan -j "${JOBS}" \
        --target test_runner test_fault test_persist test_trace \
        fig4a_seq_alloc ablation_multiprocess fuzz_pressure \
        fuzz_core_loss fleet_storm
    # The runner tests exercise every cross-thread path: the work
    # queue, result placement, and the shared trace-flag/error-mode
    # globals that concurrent KindleSystem instances touch.
    ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
        -R 'SweepRunner|SweepDeterminism|BenchReport'
    # The fault and persist suites drive crash/reboot/recovery (and
    # with media faults, scrubber-triggered retirement) through the
    # same thread-local injector routing SweepRunner workers use —
    # run them whole under TSan as well.
    ./build-tsan/tests/test_fault
    ./build-tsan/tests/test_persist
    # The trace suite covers the thread-local sink routing the sweep
    # workers rely on for interleaving-free per-scenario traces.
    ./build-tsan/tests/test_trace

    echo "=== Traced sweep under TSan + JSON well-formedness smoke ==="
    # Two concurrent workers, tracing on: each scenario must land in
    # its own file, every file must be valid Chrome trace JSON, and
    # payload events must be chronologically sorted.
    TRACE_DIR=$(mktemp -d)
    KINDLE_SCALE=4 ./build-tsan/bench/fig4a_seq_alloc --jobs 2 \
        --trace-out "${TRACE_DIR}"
    python3 - "${TRACE_DIR}" <<'PY'
import json, pathlib, sys
d = pathlib.Path(sys.argv[1])
files = sorted(d.glob("*.trace.json"))
assert len(files) >= 2, f"expected >=2 per-scenario traces, got {files}"
for f in files:
    doc = json.loads(f.read_text())
    events = doc["traceEvents"]
    assert events, f"{f}: empty traceEvents"
    ts = [e["ts"] for e in events if e["ph"] != "M"]
    assert ts == sorted(ts), f"{f}: events not chronological"
print(f"trace smoke: {len(files)} per-scenario files well-formed")
PY
    rm -rf "${TRACE_DIR}" BENCH_fig4a_seq_alloc.json

    echo "=== Multi-core ablation sweep under TSan ==="
    # The SMP scheduler, MESI-lite directory, and shootdown IPIs all
    # run inside one simulation thread, but concurrent KindleSystem
    # instances in sweep workers share trace/error-mode globals; a
    # core-count sweep under TSan proves the multi-core paths add no
    # cross-thread hazard.  The bench itself fails if any core
    # retires no instructions.
    for CORES in 1 2 4; do
        KINDLE_OPS=20000 ./build-tsan/bench/ablation_multiprocess \
            --cores "${CORES}"
    done

    echo "=== 4-core pressure sweep under TSan ==="
    # Reclaim demotions, TLB shootdowns for demoted mappings, OOM
    # teardown, and early checkpoints all firing while the SMP
    # scheduler time-shares four cores — the densest interleaving the
    # pressure subsystem sees.  Single simulation thread, but the
    # sweep shares injector routing and trace globals with any
    # concurrent system, so TSan must stay quiet here too.
    run_fuzz env KINDLE_FUZZ_POINTS=32 \
        ./build-tsan/bench/fuzz_pressure --cores 4
    rm -f BENCH_fuzz_pressure.json

    echo "=== 4-core core-loss sweep under TSan ==="
    # Cores dying mid-protocol: IPI retries against a fail-stopped
    # target, watchdog offlining with runqueue re-placement, private
    # cache flushes through the directory — all riding the same
    # shared-global routing the sweep workers use.
    run_fuzz env KINDLE_FUZZ_POINTS=18 \
        ./build-tsan/bench/fuzz_core_loss --cores 4
    rm -f BENCH_fuzz_core_loss.json

    echo "=== 4-core fleet storm under TSan ==="
    # The fleet sweep's two points run in concurrent workers: clean-
    # skipped checkpoint sweeps, throttled pressure relief, OOM
    # teardown and churn respawns on the 4-core scheduler, all sharing
    # the trace/error-mode globals TSan watches.
    KINDLE_FLEET_TENANTS=96 KINDLE_FLEET_CHURN=24 \
        ./build-tsan/bench/fleet_storm
    rm -f BENCH_fleet_storm.json
fi

echo "ci.sh: all checks passed"
