#!/usr/bin/env bash
# Regenerate the crash-site inventory table in DESIGN.md from a bench
# binary's --list-crash-sites output (which prints
# fault::crashSiteCatalog(), the single source of truth).
#
#   scripts/gen_crash_site_table.sh [path-to-any-bench-binary]
#
# Run after adding a crash site; scripts/ci.sh regenerates the table
# and fails on drift, and the begin/end markers keep the regeneration
# exact.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${1:-build/bench/fig4a_seq_alloc}
if [[ ! -x "${BIN}" ]]; then
    echo "no such binary: ${BIN} (build the tree first)" >&2
    exit 1
fi

TABLE=$("${BIN}" --list-crash-sites | awk '{
    site = $1; $1 = ""; sub(/^ +/, "");
    printf "| `%s` | %s |\n", site, $0
}')

TABLE="${TABLE}" python3 - <<'PY'
import os
import pathlib

table = os.environ["TABLE"]
doc = pathlib.Path("DESIGN.md")
text = doc.read_text()
begin = "<!-- crash-site-table:begin (scripts/gen_crash_site_table.sh) -->"
end = "<!-- crash-site-table:end -->"
head = "| Site | Meaning |\n| --- | --- |\n"
i = text.index(begin) + len(begin)
j = text.index(end)
doc.write_text(text[:i] + "\n" + head + table + "\n" + text[j:])
print(f"DESIGN.md: crash-site table regenerated "
      f"({table.count(chr(10)) + 1} sites)")
PY
