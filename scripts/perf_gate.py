#!/usr/bin/env python3
"""Perf-regression gate over a BENCH_*.json report.

    scripts/perf_gate.py check  BENCH_fig5_ssp_interval.json
    scripts/perf_gate.py update BENCH_fig5_ssp_interval.json

``check`` compares the report's total wall_ms against the committed
baseline in bench/baselines.json and exits non-zero when the run is
more than ``tolerance`` times slower.  The failure message includes a
per-category diff of the ``prof.*`` self-profiler stats (run the bench
with --prof) so the regression is attributed to a subsystem, not just
detected.

``update`` rewrites the bench's entry in bench/baselines.json from the
report — run it on the reference CI machine after an intentional
perf-relevant change, and commit the result.

Wall-clock baselines are machine-relative; the generous default
tolerance (1.5x) absorbs host jitter and modest hardware skew while
still catching algorithmic regressions (accidental O(n^2), a probe
left enabled, a lost fast path), which shift wall time by integer
factors.
"""

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = pathlib.Path(__file__).parent.parent / "bench" / "baselines.json"
PROF_PREFIX = "prof."
PROF_SUFFIX = "Ns"


def summarize(report_path):
    """Reduce a BENCH report to (name, total wall_ms, prof ms per cat)."""
    doc = json.loads(pathlib.Path(report_path).read_text())
    wall_ms = 0.0
    prof_ms = {}
    for point in doc["points"]:
        if not point.get("ok"):
            raise SystemExit(f"{report_path}: point {point['name']} failed: "
                             f"{point.get('error', '?')}")
        wall_ms += point["wall_ms"]
        for path, value in point.get("stats", {}).items():
            if path.startswith(PROF_PREFIX) and path.endswith(PROF_SUFFIX):
                cat = path[len(PROF_PREFIX):-len(PROF_SUFFIX)]
                prof_ms[cat] = prof_ms.get(cat, 0.0) + value / 1e6
    return doc["bench"], wall_ms, prof_ms


def load_baselines(path):
    if path.exists():
        return json.loads(path.read_text())
    return {"schema_version": 1, "benches": {}}


def cmd_update(args):
    name, wall_ms, prof_ms = summarize(args.report)
    doc = load_baselines(args.baseline)
    doc["benches"][name] = {
        "wall_ms": round(wall_ms, 3),
        "prof_ms": {c: round(ms, 3) for c, ms in sorted(prof_ms.items())},
    }
    args.baseline.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"{args.baseline}: {name} baseline set to {wall_ms:.1f} ms")
    return 0


def cmd_check(args):
    name, wall_ms, prof_ms = summarize(args.report)
    doc = load_baselines(args.baseline)
    base = doc["benches"].get(name)
    if base is None:
        raise SystemExit(f"{args.baseline}: no baseline for '{name}' "
                         f"(run: scripts/perf_gate.py update {args.report})")
    limit = base["wall_ms"] * args.tolerance
    verdict = "OK" if wall_ms <= limit else "REGRESSION"
    print(f"perf[{name}]: {wall_ms:.1f} ms vs baseline "
          f"{base['wall_ms']:.1f} ms (limit {limit:.1f} ms at "
          f"{args.tolerance}x): {verdict}")
    if wall_ms <= limit:
        if wall_ms * args.tolerance < base["wall_ms"]:
            print(f"perf[{name}]: note: >{args.tolerance}x faster than "
                  f"baseline — consider refreshing bench/baselines.json")
        return 0
    # Attribute the regression: which profiled category grew most?
    print(f"perf[{name}]: prof.* category diff (self-ms):")
    base_prof = base.get("prof_ms", {})
    cats = sorted(set(base_prof) | set(prof_ms),
                  key=lambda c: prof_ms.get(c, 0.0) - base_prof.get(c, 0.0),
                  reverse=True)
    if not cats:
        print("  (no prof.* stats in report — run the bench with --prof)")
    for cat in cats:
        b, n = base_prof.get(cat, 0.0), prof_ms.get(cat, 0.0)
        print(f"  {cat:<10} {b:10.1f} -> {n:10.1f}  ({n - b:+.1f} ms)")
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=["check", "update"])
    parser.add_argument("report", help="BENCH_*.json produced by a bench run")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="allowed slowdown factor (default 1.5)")
    args = parser.parse_args()
    return cmd_update(args) if args.command == "update" else cmd_check(args)


if __name__ == "__main__":
    sys.exit(main())
