#!/usr/bin/env bash
# Build the framework and run the complete test suite (paper appendix
# D workflow).
set -euo pipefail

cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
