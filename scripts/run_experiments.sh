#!/usr/bin/env bash
# Artifact-style driver (paper appendix E): builds the framework and
# regenerates every table and figure into outputs/, plus the structured
# BENCH_*.json records (ported benches) into results/.
#
#   KINDLE_SCALE=1 KINDLE_OPS=10000000 scripts/run_experiments.sh
#
# runs at paper scale; the defaults finish in a few minutes.  Sweeps on
# the runner-backed benches honour KINDLE_JOBS (or --jobs, forwarded
# via BENCH_ARGS) for parallel execution.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p outputs results

# Runner-backed benches drop BENCH_<name>.json here.
export KINDLE_RESULTS_DIR="${KINDLE_RESULTS_DIR:-$PWD/results}"

run() {
    local name=$1
    echo "== ${name} =="
    "./build/bench/${name}" | tee "outputs/${name}.txt"
}

# Paper artifacts.
run table2_benchmarks
run fig4a_seq_alloc
run fig4b_stride
run table3_vma_churn
run table4_ckpt_interval
run fig5_ssp_interval
run fig6_hscc_migration
run table5_pages_migrated
run table6_selection_copy

# Ablations and substrate micros.
run ablation_pt_placement
run ablation_ssp_consolidation
run ablation_nvm_tech
run ablation_multiprocess
run ablation_incremental_ckpt
run ablation_hscc_dynamic

# Robustness audit: deterministic crash-point exploration with the
# recovery oracle (KINDLE_FUZZ_POINTS / KINDLE_FUZZ_SEED override).
run fuzz_crash_recovery

./build/bench/micro_mem | tee outputs/micro_mem.txt
./build/bench/micro_cache | tee outputs/micro_cache.txt

# Sweep any stray JSON records (benches run outside this script drop
# them in the working directory) into results/ as well.
shopt -s nullglob
for f in BENCH_*.json; do
    mv "$f" results/
done
shopt -u nullglob

echo "All text outputs in ./outputs/"
echo "Structured sweep records:"
ls -1 results/BENCH_*.json 2>/dev/null || echo "  (none)"
