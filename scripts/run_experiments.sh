#!/usr/bin/env bash
# Artifact-style driver (paper appendix E): builds the framework and
# regenerates every table and figure into outputs/.
#
#   KINDLE_SCALE=1 KINDLE_OPS=10000000 scripts/run_experiments.sh
#
# runs at paper scale; the defaults finish in a few minutes.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p outputs

run() {
    local name=$1
    echo "== ${name} =="
    "./build/bench/${name}" | tee "outputs/${name}.txt"
}

# Paper artifacts.
run table2_benchmarks
run fig4a_seq_alloc
run fig4b_stride
run table3_vma_churn
run table4_ckpt_interval
run fig5_ssp_interval
run fig6_hscc_migration
run table5_pages_migrated
run table6_selection_copy

# Ablations and substrate micros.
run ablation_pt_placement
run ablation_ssp_consolidation
run ablation_nvm_tech
run ablation_multiprocess
run ablation_incremental_ckpt
run ablation_hscc_dynamic
./build/bench/micro_mem | tee outputs/micro_mem.txt
./build/bench/micro_cache | tee outputs/micro_cache.txt

echo "All outputs in ./outputs/"
