#include <gtest/gtest.h>

#include "base/logging.hh"

namespace kindle
{
namespace
{

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { setErrorsThrow(true); }
    void TearDown() override { setErrorsThrow(false); }
};

TEST_F(LoggingTest, PanicThrowsInTestMode)
{
    try {
        kindle_panic("value was {}", 42);
        FAIL() << "panic did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimError::Kind::panic);
        EXPECT_NE(e.message().find("value was 42"), std::string::npos);
    }
}

TEST_F(LoggingTest, FatalThrowsInTestMode)
{
    try {
        kindle_fatal("bad config: {}", "nvm=0");
        FAIL() << "fatal did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimError::Kind::fatal);
        EXPECT_NE(e.message().find("nvm=0"), std::string::npos);
    }
}

TEST_F(LoggingTest, AssertPassesOnTrueCondition)
{
    EXPECT_NO_THROW(kindle_assert(1 + 1 == 2, "math broke"));
}

TEST_F(LoggingTest, AssertThrowsOnFalseCondition)
{
    EXPECT_THROW(kindle_assert(false, "expected {}", "failure"),
                 SimError);
}

TEST_F(LoggingTest, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(warn("just a warning {}", 1));
    EXPECT_NO_THROW(inform("status {}", 2));
}

} // namespace
} // namespace kindle
