#include <gtest/gtest.h>

#include "base/str.hh"

namespace kindle
{
namespace
{

TEST(StrTest, CsprintfSubstitutes)
{
    EXPECT_EQ(csprintf("a {} c {}", 1, "b"), "a 1 c b");
    EXPECT_EQ(csprintf("no placeholders"), "no placeholders");
    EXPECT_EQ(csprintf("{}", 3.5), "3.5");
}

TEST(StrTest, SurplusArgumentsAppend)
{
    EXPECT_EQ(csprintf("x", 1), "x 1");
}

TEST(StrTest, SurplusPlaceholdersStay)
{
    EXPECT_EQ(csprintf("a {} {}", 1), "a 1 {}");
}

TEST(StrTest, Split)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(StrTest, SplitSingleField)
{
    const auto parts = split("alone", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "alone");
}

TEST(StrTest, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("\ttab\n"), "tab");
}

TEST(StrTest, SizeToString)
{
    EXPECT_EQ(sizeToString(512), "512B");
    EXPECT_EQ(sizeToString(4096), "4KiB");
    EXPECT_EQ(sizeToString(64 * 1024 * 1024), "64MiB");
    EXPECT_EQ(sizeToString(3ull << 30), "3GiB");
    EXPECT_EQ(sizeToString(4097), "4097B");
}

TEST(StrTest, Fixed)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(2.0, 1), "2.0");
}

} // namespace
} // namespace kindle
