#include <gtest/gtest.h>

#include "base/intmath.hh"

namespace kindle
{
namespace
{

TEST(IntMathTest, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(4097));
}

TEST(IntMathTest, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4095), 11u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(IntMathTest, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(8, 4), 2u);
    EXPECT_EQ(divCeil(9, 4), 3u);
}

TEST(IntMathTest, Rounding)
{
    EXPECT_EQ(roundUp(0, 4096), 0u);
    EXPECT_EQ(roundUp(1, 4096), 4096u);
    EXPECT_EQ(roundDown(8191, 4096), 4096u);
    EXPECT_TRUE(isAligned(8192, 4096));
    EXPECT_FALSE(isAligned(8193, 4096));
}

class RoundTripParam : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RoundTripParam, RoundUpDownBracketValue)
{
    const std::uint64_t v = GetParam();
    for (std::uint64_t align : {64ull, 4096ull, 2097152ull}) {
        EXPECT_LE(roundDown(v, align), v);
        EXPECT_GE(roundUp(v, align), v);
        EXPECT_TRUE(isAligned(roundDown(v, align), align));
        EXPECT_TRUE(isAligned(roundUp(v, align), align));
        EXPECT_LT(roundUp(v, align) - roundDown(v, align), 2 * align);
    }
}

INSTANTIATE_TEST_SUITE_P(Values, RoundTripParam,
                         ::testing::Values(0, 1, 63, 64, 65, 4095,
                                           4096, 4097, 1048575,
                                           1048577, 999999999));

} // namespace
} // namespace kindle
