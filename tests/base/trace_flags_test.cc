#include <gtest/gtest.h>

#include "base/trace_flags.hh"

namespace kindle::trace
{
namespace
{

class TraceFlagsTest : public ::testing::Test
{
  protected:
    void SetUp() override { clearAll(); }
    void TearDown() override { clearAll(); }
};

TEST_F(TraceFlagsTest, DisabledByDefault)
{
    EXPECT_FALSE(enabled(Flag::tlb));
    EXPECT_FALSE(enabled(Flag::checkpoint));
}

TEST_F(TraceFlagsTest, EnableDisableSingleFlag)
{
    enable(Flag::tlb);
    EXPECT_TRUE(enabled(Flag::tlb));
    EXPECT_FALSE(enabled(Flag::mem));
    disable(Flag::tlb);
    EXPECT_FALSE(enabled(Flag::tlb));
}

TEST_F(TraceFlagsTest, EnableByNamesParsesList)
{
    enableByNames("tlb, checkpoint ,hscc");
    EXPECT_TRUE(enabled(Flag::tlb));
    EXPECT_TRUE(enabled(Flag::checkpoint));
    EXPECT_TRUE(enabled(Flag::hscc));
    EXPECT_FALSE(enabled(Flag::mem));
}

TEST_F(TraceFlagsTest, UnknownNamesAreTolerated)
{
    EXPECT_NO_THROW(enableByNames("nonsense,tlb"));
    EXPECT_TRUE(enabled(Flag::tlb));
}

TEST_F(TraceFlagsTest, EmptyListIsNoop)
{
    EXPECT_NO_THROW(enableByNames(""));
    EXPECT_NO_THROW(enableByNames(",,"));
}

TEST_F(TraceFlagsTest, ClearAllResets)
{
    enableByNames("tlb,mem,event");
    clearAll();
    EXPECT_FALSE(enabled(Flag::tlb));
    EXPECT_FALSE(enabled(Flag::mem));
    EXPECT_FALSE(enabled(Flag::event));
}

TEST_F(TraceFlagsTest, DprintfOnlyEmitsWhenEnabled)
{
    // No crash either way; argument evaluation is guarded.
    int evaluations = 0;
    auto expensive = [&] {
        ++evaluations;
        return 42;
    };
    dprintf(Flag::vma, 0, "value {}", expensive());
    EXPECT_EQ(evaluations, 1);  // args evaluated at call site
    EXPECT_NO_THROW(dprintf(Flag::vma, 0, "quiet"));
}

} // namespace
} // namespace kindle::trace
