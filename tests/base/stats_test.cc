#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "base/logging.hh"
#include "base/stats.hh"

namespace kindle::statistics
{
namespace
{

TEST(StatsTest, ScalarArithmetic)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(StatsTest, GaugeTracksLevelNotTraffic)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g = 10;
    g += 5;
    g -= 3;
    ++g;
    --g;
    EXPECT_DOUBLE_EQ(g.value(), 12);
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    // Gauges may legitimately go negative transiently (e.g. a drain
    // observed before the matching fill).
    g -= 5;
    EXPECT_DOUBLE_EQ(g.value(), -2.5);
    g.reset();
    EXPECT_EQ(g.value(), 0.0);
}

TEST(StatsTest, DistributionTracksMoments)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    d.sample(2);
    d.sample(4);
    d.sample(9);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 2);
    EXPECT_DOUBLE_EQ(d.max(), 9);
    EXPECT_DOUBLE_EQ(d.mean(), 5);
    EXPECT_DOUBLE_EQ(d.sum(), 15);
}

TEST(StatsTest, HistogramBucketBoundaries)
{
    // Bucket 0 holds only zeros; bucket i >= 1 holds [2^(i-1), 2^i).
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}), 64u);

    for (unsigned i = 1; i < Histogram::numBuckets; ++i) {
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketLo(i)), i);
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketHi(i)), i);
    }
    EXPECT_EQ(Histogram::bucketLo(0), 0u);
    EXPECT_EQ(Histogram::bucketHi(0), 0u);
    EXPECT_EQ(Histogram::bucketHi(64), ~std::uint64_t{0});
}

TEST(StatsTest, HistogramZeroAndNegativeSamplesLandInBucketZero)
{
    Histogram h;
    h.sample(0);
    h.sample(-3);  // clamped: latencies cannot be negative
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0);
}

TEST(StatsTest, HistogramMaxTickSampleSaturatesTopBucket)
{
    Histogram h;
    const double top =
        static_cast<double>(~std::uint64_t{0});
    h.sample(top);
    EXPECT_EQ(h.bucketCount(64), 1u);
    EXPECT_DOUBLE_EQ(h.quantile(1.0),
                     static_cast<double>(~std::uint64_t{0}));
}

TEST(StatsTest, HistogramMomentsAndQuantiles)
{
    Histogram h;
    // 7 samples: one zero, four small, two large.
    for (double v : {0.0, 3.0, 3.0, 5.0, 7.0, 1000.0, 1000.0})
        h.sample(v);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.min(), 0);
    EXPECT_DOUBLE_EQ(h.max(), 1000);
    EXPECT_DOUBLE_EQ(h.sum(), 2018);
    // Median sample is 5 → bucket [4,8) whose upper bound is 7.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 7);
    // p100 lands in 1000's bucket [512,1024).
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1023);
}

TEST(StatsTest, HistogramResetClearsBucketsAndExtrema)
{
    Histogram h;
    h.sample(100);
    h.sample(7);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0);
    EXPECT_DOUBLE_EQ(h.max(), 0);
    EXPECT_DOUBLE_EQ(h.sum(), 0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0);
    for (unsigned i = 0; i < Histogram::numBuckets; ++i)
        EXPECT_EQ(h.bucketCount(i), 0u);

    // First sample after reset re-seeds extrema.
    h.sample(9);
    EXPECT_DOUBLE_EQ(h.min(), 9);
    EXPECT_DOUBLE_EQ(h.max(), 9);
}

TEST(StatsTest, HistogramSnapshotKeysIncludeOccupiedBuckets)
{
    StatGroup g("g");
    Histogram &h = g.addHistogram("lat", "");
    h.sample(0);
    h.sample(5);
    const StatSnapshot snap = StatSnapshot::capture(g);
    EXPECT_DOUBLE_EQ(snap.get("g.lat::count"), 2);
    EXPECT_DOUBLE_EQ(snap.get("g.lat::sum"), 5);
    EXPECT_DOUBLE_EQ(snap.get("g.lat::b0"), 1);
    EXPECT_DOUBLE_EQ(snap.get("g.lat::b3"), 1);
    // Empty buckets are omitted from snapshots.
    EXPECT_FALSE(snap.has("g.lat::b1"));
}

TEST(StatsTest, GroupLookup)
{
    StatGroup g("test");
    Scalar &a = g.addScalar("alpha", "first");
    a += 7;
    EXPECT_DOUBLE_EQ(g.scalarValue("alpha"), 7);
    EXPECT_TRUE(g.hasScalar("alpha"));
    EXPECT_FALSE(g.hasScalar("beta"));
}

TEST(StatsTest, MissingStatIsFatal)
{
    setErrorsThrow(true);
    StatGroup g("test");
    EXPECT_THROW(g.scalarValue("nope"), SimError);
    setErrorsThrow(false);
}

TEST(StatsTest, DuplicateRegistrationIsFatal)
{
    setErrorsThrow(true);
    StatGroup g("test");
    g.addScalar("x", "");
    try {
        g.addScalar("x", "");
        FAIL() << "duplicate scalar registration not rejected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimError::Kind::fatal);
    }
    g.addDistribution("d", "");
    EXPECT_THROW(g.addDistribution("d", ""), SimError);
    setErrorsThrow(false);
}

TEST(StatsTest, ScalarAndDistributionCannotShareAName)
{
    setErrorsThrow(true);
    StatGroup g("test");
    g.addScalar("latency", "");
    EXPECT_THROW(g.addDistribution("latency", ""), SimError);
    g.addDistribution("width", "");
    EXPECT_THROW(g.addScalar("width", ""), SimError);
    setErrorsThrow(false);
}

TEST(StatsTest, DistributionResetThenSampleReseedsExtrema)
{
    Distribution d;
    d.sample(-5);
    d.sample(100);
    d.reset();

    // Empty after reset: the zero convention, not stale extrema.
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.min(), 0);
    EXPECT_DOUBLE_EQ(d.max(), 0);
    EXPECT_DOUBLE_EQ(d.mean(), 0);
    EXPECT_DOUBLE_EQ(d.sum(), 0);

    // First sample after reset defines both extrema, even when it is
    // larger/smaller than the pre-reset min/max were.
    d.sample(7);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.min(), 7);
    EXPECT_DOUBLE_EQ(d.max(), 7);
    EXPECT_DOUBLE_EQ(d.mean(), 7);
}

TEST(StatsTest, DistributionSingleNegativeSample)
{
    Distribution d;
    d.sample(-2.5);
    EXPECT_DOUBLE_EQ(d.min(), -2.5);
    EXPECT_DOUBLE_EQ(d.max(), -2.5);
    EXPECT_DOUBLE_EQ(d.sum(), -2.5);
    EXPECT_DOUBLE_EQ(d.mean(), -2.5);
}

TEST(StatsTest, DumpIncludesChildren)
{
    StatGroup parent("parent");
    StatGroup child("child");
    parent.addScalar("p", "parent stat") += 1;
    child.addScalar("c", "child stat") += 2;
    parent.addChild(child);

    std::ostringstream os;
    parent.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("parent.p 1"), std::string::npos);
    EXPECT_NE(out.find("parent.child.c 2"), std::string::npos);
}

TEST(StatsTest, ResetAllRecurses)
{
    StatGroup parent("parent");
    StatGroup child("child");
    Scalar &p = parent.addScalar("p", "");
    Scalar &c = child.addScalar("c", "");
    parent.addChild(child);
    p += 5;
    c += 5;
    parent.resetAll();
    EXPECT_EQ(p.value(), 0.0);
    EXPECT_EQ(c.value(), 0.0);
}

TEST(StatsTest, GroupDescriptionAppearsAsDumpHeader)
{
    StatGroup g("engine", "the component under test");
    g.addScalar("ops", "work done") += 3;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("# engine: the component under test"),
              std::string::npos);
    EXPECT_NE(os.str().find("engine.ops 3"), std::string::npos);
}

TEST(StatsTest, AcceptVisitsCanonicalOrder)
{
    StatGroup parent("p");
    StatGroup child("c");
    parent.addScalar("b", "");
    parent.addScalar("a", "");
    parent.addDistribution("d", "");
    child.addScalar("x", "");
    parent.addChild(child);

    struct Recorder : StatVisitor
    {
        std::vector<std::string> events;
        void
        beginGroup(const std::string &n, const std::string &) override
        {
            events.push_back("g:" + n);
        }
        void endGroup() override { events.push_back("end"); }
        void
        visitScalar(const std::string &n, const std::string &,
                    const Scalar &) override
        {
            events.push_back("s:" + n);
        }
        void
        visitGauge(const std::string &n, const std::string &,
                   const Gauge &) override
        {
            events.push_back("gauge:" + n);
        }
        void
        visitDistribution(const std::string &n, const std::string &,
                          const Distribution &) override
        {
            events.push_back("d:" + n);
        }
        void
        visitHistogram(const std::string &n, const std::string &,
                       const Histogram &) override
        {
            events.push_back("h:" + n);
        }
    } rec;
    parent.accept(rec);

    const std::vector<std::string> expected = {
        "g:p", "s:a", "s:b", "d:d", "g:c", "s:x", "end", "end"};
    EXPECT_EQ(rec.events, expected);
}

TEST(StatsTest, JsonSerializerProducesNestedObject)
{
    StatGroup parent("parent");
    StatGroup child("child");
    parent.addScalar("p", "") += 1.5;
    Distribution &d = child.addDistribution("lat", "");
    d.sample(2);
    d.sample(4);
    parent.addChild(child);

    std::ostringstream os;
    json::Writer w(os);
    w.beginObject();
    JsonSerializer ser(w);
    parent.accept(ser);
    w.endObject();

    const std::string out = os.str();
    EXPECT_NE(out.find("\"parent\""), std::string::npos);
    EXPECT_NE(out.find("\"p\": 1.5"), std::string::npos);
    EXPECT_NE(out.find("\"child\""), std::string::npos);
    EXPECT_NE(out.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(out.find("\"mean\": 3"), std::string::npos);
}

TEST(StatsTest, SnapshotCapturesFlatPaths)
{
    StatGroup parent("parent");
    StatGroup child("child");
    parent.addScalar("p", "") += 4;
    child.addDistribution("lat", "").sample(10);
    parent.addChild(child);

    const StatSnapshot snap = StatSnapshot::capture(parent);
    EXPECT_TRUE(snap.has("parent.p"));
    EXPECT_DOUBLE_EQ(snap.get("parent.p"), 4);
    EXPECT_DOUBLE_EQ(snap.get("parent.child.lat::count"), 1);
    EXPECT_DOUBLE_EQ(snap.get("parent.child.lat::sum"), 10);
    EXPECT_DOUBLE_EQ(snap.get("parent.child.lat::min"), 10);
    EXPECT_DOUBLE_EQ(snap.getOr("parent.child.lat::mean", -1), 10);
    EXPECT_FALSE(snap.has("parent.missing"));
    EXPECT_DOUBLE_EQ(snap.getOr("parent.missing", 9), 9);
}

TEST(StatsTest, SnapshotDeltaGivesPhaseAccounting)
{
    StatGroup g("phase");
    Scalar &work = g.addScalar("work", "");
    Distribution &lat = g.addDistribution("lat", "");

    work += 10;
    lat.sample(100);
    const StatSnapshot before = StatSnapshot::capture(g);

    // The "phase" under measurement.
    work += 5;
    lat.sample(20);
    lat.sample(40);
    const StatSnapshot after = StatSnapshot::capture(g);

    const StatSnapshot delta = after.delta(before);
    EXPECT_DOUBLE_EQ(delta.get("phase.work"), 5);
    EXPECT_DOUBLE_EQ(delta.get("phase.lat::count"), 2);
    EXPECT_DOUBLE_EQ(delta.get("phase.lat::sum"), 60);
    EXPECT_DOUBLE_EQ(delta.get("phase.lat::mean"), 30);
    // Interval extrema are not recoverable from endpoint snapshots.
    EXPECT_FALSE(delta.has("phase.lat::min"));
    EXPECT_FALSE(delta.has("phase.lat::max"));
}

TEST(StatsTest, SnapshotEqualityAndJson)
{
    StatGroup g("g");
    g.addScalar("v", "") += 2;
    const StatSnapshot a = StatSnapshot::capture(g);
    const StatSnapshot b = StatSnapshot::capture(g);
    EXPECT_TRUE(a == b);

    std::ostringstream os;
    json::Writer w(os);
    a.writeJson(w);
    EXPECT_NE(os.str().find("\"g.v\": 2"), std::string::npos);
}

TEST(StatsTest, SnapshotLookupIndexSurvivesMutationAndCopy)
{
    StatGroup g("g");
    g.addScalar("a", "") += 1;
    StatSnapshot snap = StatSnapshot::capture(g);
    EXPECT_EQ(snap.get("g.a"), 1);

    // set() after a lookup invalidates the lazily built index; the
    // next lookup must see both old and new entries.
    snap.set("extra", 7);
    EXPECT_EQ(snap.get("extra"), 7);
    EXPECT_EQ(snap.get("g.a"), 1);

    // Copies must not share index pointers into the source's map
    // nodes; both sides stay consistent after diverging.
    StatSnapshot copy = snap;
    copy.set("onlyInCopy", 3);
    EXPECT_EQ(copy.get("onlyInCopy"), 3);
    EXPECT_EQ(copy.get("g.a"), 1);
    EXPECT_FALSE(snap.has("onlyInCopy"));
    EXPECT_EQ(snap.get("g.a"), 1);

    StatSnapshot moved = std::move(copy);
    EXPECT_EQ(moved.get("onlyInCopy"), 3);
    EXPECT_EQ(moved.getOr("missing", -1), -1);
    EXPECT_FALSE(moved.has("missing"));
}

TEST(StatsTest, RemoveChildDetachesSubtree)
{
    StatGroup parent("parent");
    StatGroup child("child");
    child.addScalar("c", "") += 1;
    parent.addChild(child);
    parent.removeChild(child);

    std::ostringstream os;
    parent.dump(os);
    EXPECT_EQ(os.str().find("child"), std::string::npos);
}

} // namespace
} // namespace kindle::statistics
