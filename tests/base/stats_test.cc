#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.hh"
#include "base/stats.hh"

namespace kindle::statistics
{
namespace
{

TEST(StatsTest, ScalarArithmetic)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(StatsTest, DistributionTracksMoments)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    d.sample(2);
    d.sample(4);
    d.sample(9);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 2);
    EXPECT_DOUBLE_EQ(d.max(), 9);
    EXPECT_DOUBLE_EQ(d.mean(), 5);
    EXPECT_DOUBLE_EQ(d.sum(), 15);
}

TEST(StatsTest, GroupLookup)
{
    StatGroup g("test");
    Scalar &a = g.addScalar("alpha", "first");
    a += 7;
    EXPECT_DOUBLE_EQ(g.scalarValue("alpha"), 7);
    EXPECT_TRUE(g.hasScalar("alpha"));
    EXPECT_FALSE(g.hasScalar("beta"));
}

TEST(StatsTest, MissingStatIsFatal)
{
    setErrorsThrow(true);
    StatGroup g("test");
    EXPECT_THROW(g.scalarValue("nope"), SimError);
    setErrorsThrow(false);
}

TEST(StatsTest, DuplicateRegistrationPanics)
{
    setErrorsThrow(true);
    StatGroup g("test");
    g.addScalar("x", "");
    EXPECT_THROW(g.addScalar("x", ""), SimError);
    setErrorsThrow(false);
}

TEST(StatsTest, DumpIncludesChildren)
{
    StatGroup parent("parent");
    StatGroup child("child");
    parent.addScalar("p", "parent stat") += 1;
    child.addScalar("c", "child stat") += 2;
    parent.addChild(child);

    std::ostringstream os;
    parent.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("parent.p 1"), std::string::npos);
    EXPECT_NE(out.find("parent.child.c 2"), std::string::npos);
}

TEST(StatsTest, ResetAllRecurses)
{
    StatGroup parent("parent");
    StatGroup child("child");
    Scalar &p = parent.addScalar("p", "");
    Scalar &c = child.addScalar("c", "");
    parent.addChild(child);
    p += 5;
    c += 5;
    parent.resetAll();
    EXPECT_EQ(p.value(), 0.0);
    EXPECT_EQ(c.value(), 0.0);
}

} // namespace
} // namespace kindle::statistics
