#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.hh"
#include "base/stats.hh"

namespace kindle::statistics
{
namespace
{

TEST(StatsTest, ScalarArithmetic)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(StatsTest, DistributionTracksMoments)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    d.sample(2);
    d.sample(4);
    d.sample(9);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 2);
    EXPECT_DOUBLE_EQ(d.max(), 9);
    EXPECT_DOUBLE_EQ(d.mean(), 5);
    EXPECT_DOUBLE_EQ(d.sum(), 15);
}

TEST(StatsTest, GroupLookup)
{
    StatGroup g("test");
    Scalar &a = g.addScalar("alpha", "first");
    a += 7;
    EXPECT_DOUBLE_EQ(g.scalarValue("alpha"), 7);
    EXPECT_TRUE(g.hasScalar("alpha"));
    EXPECT_FALSE(g.hasScalar("beta"));
}

TEST(StatsTest, MissingStatIsFatal)
{
    setErrorsThrow(true);
    StatGroup g("test");
    EXPECT_THROW(g.scalarValue("nope"), SimError);
    setErrorsThrow(false);
}

TEST(StatsTest, DuplicateRegistrationIsFatal)
{
    setErrorsThrow(true);
    StatGroup g("test");
    g.addScalar("x", "");
    try {
        g.addScalar("x", "");
        FAIL() << "duplicate scalar registration not rejected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimError::Kind::fatal);
    }
    g.addDistribution("d", "");
    EXPECT_THROW(g.addDistribution("d", ""), SimError);
    setErrorsThrow(false);
}

TEST(StatsTest, ScalarAndDistributionCannotShareAName)
{
    setErrorsThrow(true);
    StatGroup g("test");
    g.addScalar("latency", "");
    EXPECT_THROW(g.addDistribution("latency", ""), SimError);
    g.addDistribution("width", "");
    EXPECT_THROW(g.addScalar("width", ""), SimError);
    setErrorsThrow(false);
}

TEST(StatsTest, DistributionResetThenSampleReseedsExtrema)
{
    Distribution d;
    d.sample(-5);
    d.sample(100);
    d.reset();

    // Empty after reset: the zero convention, not stale extrema.
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.min(), 0);
    EXPECT_DOUBLE_EQ(d.max(), 0);
    EXPECT_DOUBLE_EQ(d.mean(), 0);
    EXPECT_DOUBLE_EQ(d.sum(), 0);

    // First sample after reset defines both extrema, even when it is
    // larger/smaller than the pre-reset min/max were.
    d.sample(7);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.min(), 7);
    EXPECT_DOUBLE_EQ(d.max(), 7);
    EXPECT_DOUBLE_EQ(d.mean(), 7);
}

TEST(StatsTest, DistributionSingleNegativeSample)
{
    Distribution d;
    d.sample(-2.5);
    EXPECT_DOUBLE_EQ(d.min(), -2.5);
    EXPECT_DOUBLE_EQ(d.max(), -2.5);
    EXPECT_DOUBLE_EQ(d.sum(), -2.5);
    EXPECT_DOUBLE_EQ(d.mean(), -2.5);
}

TEST(StatsTest, DumpIncludesChildren)
{
    StatGroup parent("parent");
    StatGroup child("child");
    parent.addScalar("p", "parent stat") += 1;
    child.addScalar("c", "child stat") += 2;
    parent.addChild(child);

    std::ostringstream os;
    parent.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("parent.p 1"), std::string::npos);
    EXPECT_NE(out.find("parent.child.c 2"), std::string::npos);
}

TEST(StatsTest, ResetAllRecurses)
{
    StatGroup parent("parent");
    StatGroup child("child");
    Scalar &p = parent.addScalar("p", "");
    Scalar &c = child.addScalar("c", "");
    parent.addChild(child);
    p += 5;
    c += 5;
    parent.resetAll();
    EXPECT_EQ(p.value(), 0.0);
    EXPECT_EQ(c.value(), 0.0);
}

TEST(StatsTest, GroupDescriptionAppearsAsDumpHeader)
{
    StatGroup g("engine", "the component under test");
    g.addScalar("ops", "work done") += 3;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("# engine: the component under test"),
              std::string::npos);
    EXPECT_NE(os.str().find("engine.ops 3"), std::string::npos);
}

TEST(StatsTest, AcceptVisitsCanonicalOrder)
{
    StatGroup parent("p");
    StatGroup child("c");
    parent.addScalar("b", "");
    parent.addScalar("a", "");
    parent.addDistribution("d", "");
    child.addScalar("x", "");
    parent.addChild(child);

    struct Recorder : StatVisitor
    {
        std::vector<std::string> events;
        void
        beginGroup(const std::string &n, const std::string &) override
        {
            events.push_back("g:" + n);
        }
        void endGroup() override { events.push_back("end"); }
        void
        visitScalar(const std::string &n, const std::string &,
                    const Scalar &) override
        {
            events.push_back("s:" + n);
        }
        void
        visitDistribution(const std::string &n, const std::string &,
                          const Distribution &) override
        {
            events.push_back("d:" + n);
        }
    } rec;
    parent.accept(rec);

    const std::vector<std::string> expected = {
        "g:p", "s:a", "s:b", "d:d", "g:c", "s:x", "end", "end"};
    EXPECT_EQ(rec.events, expected);
}

TEST(StatsTest, JsonSerializerProducesNestedObject)
{
    StatGroup parent("parent");
    StatGroup child("child");
    parent.addScalar("p", "") += 1.5;
    Distribution &d = child.addDistribution("lat", "");
    d.sample(2);
    d.sample(4);
    parent.addChild(child);

    std::ostringstream os;
    json::Writer w(os);
    w.beginObject();
    JsonSerializer ser(w);
    parent.accept(ser);
    w.endObject();

    const std::string out = os.str();
    EXPECT_NE(out.find("\"parent\""), std::string::npos);
    EXPECT_NE(out.find("\"p\": 1.5"), std::string::npos);
    EXPECT_NE(out.find("\"child\""), std::string::npos);
    EXPECT_NE(out.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(out.find("\"mean\": 3"), std::string::npos);
}

TEST(StatsTest, SnapshotCapturesFlatPaths)
{
    StatGroup parent("parent");
    StatGroup child("child");
    parent.addScalar("p", "") += 4;
    child.addDistribution("lat", "").sample(10);
    parent.addChild(child);

    const StatSnapshot snap = StatSnapshot::capture(parent);
    EXPECT_TRUE(snap.has("parent.p"));
    EXPECT_DOUBLE_EQ(snap.get("parent.p"), 4);
    EXPECT_DOUBLE_EQ(snap.get("parent.child.lat::count"), 1);
    EXPECT_DOUBLE_EQ(snap.get("parent.child.lat::sum"), 10);
    EXPECT_DOUBLE_EQ(snap.get("parent.child.lat::min"), 10);
    EXPECT_DOUBLE_EQ(snap.getOr("parent.child.lat::mean", -1), 10);
    EXPECT_FALSE(snap.has("parent.missing"));
    EXPECT_DOUBLE_EQ(snap.getOr("parent.missing", 9), 9);
}

TEST(StatsTest, SnapshotDeltaGivesPhaseAccounting)
{
    StatGroup g("phase");
    Scalar &work = g.addScalar("work", "");
    Distribution &lat = g.addDistribution("lat", "");

    work += 10;
    lat.sample(100);
    const StatSnapshot before = StatSnapshot::capture(g);

    // The "phase" under measurement.
    work += 5;
    lat.sample(20);
    lat.sample(40);
    const StatSnapshot after = StatSnapshot::capture(g);

    const StatSnapshot delta = after.delta(before);
    EXPECT_DOUBLE_EQ(delta.get("phase.work"), 5);
    EXPECT_DOUBLE_EQ(delta.get("phase.lat::count"), 2);
    EXPECT_DOUBLE_EQ(delta.get("phase.lat::sum"), 60);
    EXPECT_DOUBLE_EQ(delta.get("phase.lat::mean"), 30);
    // Interval extrema are not recoverable from endpoint snapshots.
    EXPECT_FALSE(delta.has("phase.lat::min"));
    EXPECT_FALSE(delta.has("phase.lat::max"));
}

TEST(StatsTest, SnapshotEqualityAndJson)
{
    StatGroup g("g");
    g.addScalar("v", "") += 2;
    const StatSnapshot a = StatSnapshot::capture(g);
    const StatSnapshot b = StatSnapshot::capture(g);
    EXPECT_TRUE(a == b);

    std::ostringstream os;
    json::Writer w(os);
    a.writeJson(w);
    EXPECT_NE(os.str().find("\"g.v\": 2"), std::string::npos);
}

TEST(StatsTest, RemoveChildDetachesSubtree)
{
    StatGroup parent("parent");
    StatGroup child("child");
    child.addScalar("c", "") += 1;
    parent.addChild(child);
    parent.removeChild(child);

    std::ostringstream os;
    parent.dump(os);
    EXPECT_EQ(os.str().find("child"), std::string::npos);
}

} // namespace
} // namespace kindle::statistics
