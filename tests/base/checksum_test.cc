/**
 * @file
 * Edge cases for the FNV-1a checksum recovery trusts: the empty
 * buffer, every torn-prefix width below one word, and independence
 * from source alignment.  These are exactly the shapes the durable
 * validators feed it — a torn line tail can leave any 1..7 byte
 * prefix of a field, and readDurableBuf hands out unaligned windows.
 */

#include <array>
#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "base/checksum.hh"

namespace kindle
{
namespace
{

TEST(Checksum, EmptyBufferIsOffsetBasis)
{
    // FNV-1a of zero bytes is the offset basis by definition; a
    // validator checksumming a zero-length region must not read the
    // pointer at all (nullptr is legal here).
    EXPECT_EQ(checksum32(nullptr, 0), 0x811c9dc5u);
    const char unused = 'x';
    EXPECT_EQ(checksum32(&unused, 0), 0x811c9dc5u);
}

TEST(Checksum, KnownVectors)
{
    // Published FNV-1a test vectors pin the byte order and constants.
    EXPECT_EQ(checksum32("a", 1), 0xe40c292cu);
    EXPECT_EQ(checksum32("foobar", 6), 0xbf9cf968u);
}

TEST(Checksum, TornPrefixWidthsAllDistinct)
{
    // A torn 8-byte field can survive as any shorter prefix.  Each
    // width must hash differently from every other width, or the
    // validator could accept a torn value as intact.
    const std::array<std::uint8_t, 8> word = {0x11, 0x22, 0x33, 0x44,
                                              0x55, 0x66, 0x77, 0x88};
    std::set<std::uint32_t> sums;
    for (std::uint64_t width = 0; width <= word.size(); ++width)
        sums.insert(checksum32(word.data(), width));
    EXPECT_EQ(sums.size(), word.size() + 1);
}

TEST(Checksum, PrefixDiffersFromZeroPadded)
{
    // Truncation is not equivalent to zero-filling the tail: the
    // 3-byte prefix and the same bytes padded to 8 with zeros must
    // disagree, because a real torn line leaves old bytes, not a
    // shorter buffer.
    const std::array<std::uint8_t, 8> padded = {0xde, 0xad, 0xbe, 0, 0,
                                                0, 0, 0};
    EXPECT_NE(checksum32(padded.data(), 3),
              checksum32(padded.data(), 8));
}

TEST(Checksum, AlignmentInvariance)
{
    // Same bytes, every possible misalignment within a word: the
    // checksum is over values, not addresses.
    const std::array<std::uint8_t, 16> payload = {
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
    const std::uint32_t reference =
        checksum32(payload.data(), payload.size());
    alignas(8) std::array<std::uint8_t, 32> arena{};
    for (std::uint64_t off = 0; off < 8; ++off) {
        std::memcpy(arena.data() + off, payload.data(),
                    payload.size());
        EXPECT_EQ(checksum32(arena.data() + off, payload.size()),
                  reference)
            << "offset " << off;
    }
}

TEST(Checksum, SingleBitFlipChangesSum)
{
    // The media model's whole point: a one-bit upset in a durable
    // structure must be visible to its checksum.
    std::array<std::uint8_t, 64> line{};
    line.fill(0xa5);
    const std::uint32_t good = checksum32(line.data(), line.size());
    for (const std::uint64_t bit : {0ull, 17ull, 511ull}) {
        auto flipped = line;
        flipped[bit / 8] ^= std::uint8_t(1u << (bit % 8));
        EXPECT_NE(checksum32(flipped.data(), flipped.size()), good)
            << "bit " << bit;
    }
}

} // namespace
} // namespace kindle
