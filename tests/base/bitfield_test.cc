#include <gtest/gtest.h>

#include "base/bitfield.hh"

namespace kindle
{
namespace
{

TEST(BitfieldTest, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(12), 0xfffu);
    EXPECT_EQ(mask(64), ~std::uint64_t(0));
}

TEST(BitfieldTest, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xff, 3, 3), 1u);
}

TEST(BitfieldTest, SingleBit)
{
    EXPECT_TRUE(bit(0x8, 3));
    EXPECT_FALSE(bit(0x8, 2));
}

TEST(BitfieldTest, InsertBits)
{
    EXPECT_EQ(insertBits(0, 15, 12, 0xa), 0xa000u);
    EXPECT_EQ(insertBits(0xffff, 15, 12, 0), 0x0fffu);
    // Field wider than the slot is truncated.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1ff), 0xfu);
}

TEST(BitfieldTest, SetBit)
{
    EXPECT_EQ(setBit(0, 5), 32u);
    EXPECT_EQ(setBit(0xff, 0, false), 0xfeu);
}

TEST(BitfieldTest, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(~std::uint64_t(0)), 64u);
    EXPECT_EQ(popCount(0x5555), 8u);
}

TEST(BitfieldTest, RoundTripThroughInsertAndExtract)
{
    for (unsigned first = 0; first < 60; first += 7) {
        const unsigned last = first + 3;
        const std::uint64_t v = insertBits(0, last, first, 0xb);
        EXPECT_EQ(bits(v, last, first), 0xbu) << first;
    }
}

} // namespace
} // namespace kindle
