#include <gtest/gtest.h>

#include <sstream>

#include "base/json.hh"
#include "base/logging.hh"

namespace kindle::json
{
namespace
{

TEST(JsonTest, EscapeHandlesSpecials)
{
    EXPECT_EQ(escape("plain"), "plain");
    EXPECT_EQ(escape("a\"b"), "a\\\"b");
    EXPECT_EQ(escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonTest, FormatNumberIsIntegerExactAndDeterministic)
{
    EXPECT_EQ(formatNumber(0), "0");
    EXPECT_EQ(formatNumber(42), "42");
    EXPECT_EQ(formatNumber(-3), "-3");
    EXPECT_EQ(formatNumber(1e15), "1000000000000000");
    EXPECT_EQ(formatNumber(1.5), "1.5");
    // Same value, same text — every time.
    EXPECT_EQ(formatNumber(0.1), formatNumber(0.1));
}

TEST(JsonTest, WriterNestsObjectsAndArrays)
{
    std::ostringstream os;
    Writer w(os);
    w.beginObject();
    w.keyValue("name", "bench");
    w.keyValue("ticks", std::uint64_t(7));
    w.key("points");
    w.beginArray();
    w.beginObject();
    w.keyValue("ok", true);
    w.endObject();
    w.value(std::uint64_t(3));
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.balanced());

    const std::string out = os.str();
    EXPECT_NE(out.find("\"name\": \"bench\""), std::string::npos);
    EXPECT_NE(out.find("\"ticks\": 7"), std::string::npos);
    EXPECT_NE(out.find("\"ok\": true"), std::string::npos);
    // Array elements separated by a comma.
    EXPECT_NE(out.find("},"), std::string::npos);
}

TEST(JsonTest, EmptyContainersStayCompact)
{
    std::ostringstream os;
    Writer w(os);
    w.beginObject();
    w.key("empty_obj");
    w.beginObject();
    w.endObject();
    w.key("empty_arr");
    w.beginArray();
    w.endArray();
    w.endObject();
    EXPECT_NE(os.str().find("{}"), std::string::npos);
    EXPECT_NE(os.str().find("[]"), std::string::npos);
}

TEST(JsonTest, MisuseTripsAssertions)
{
    setErrorsThrow(true);
    {
        std::ostringstream os;
        Writer w(os);
        w.beginObject();
        EXPECT_THROW(w.value(std::uint64_t(1)), SimError);  // no key
    }
    {
        std::ostringstream os;
        Writer w(os);
        w.beginArray();
        EXPECT_THROW(w.endObject(), SimError);  // wrong close
    }
    setErrorsThrow(false);
}

} // namespace
} // namespace kindle::json
