#include <gtest/gtest.h>

#include "base/addr_range.hh"

namespace kindle
{
namespace
{

TEST(AddrRangeTest, BasicProperties)
{
    const AddrRange r(0x1000, 0x3000);
    EXPECT_EQ(r.start(), 0x1000u);
    EXPECT_EQ(r.end(), 0x3000u);
    EXPECT_EQ(r.size(), 0x2000u);
    EXPECT_FALSE(r.empty());
}

TEST(AddrRangeTest, WithSize)
{
    const auto r = AddrRange::withSize(0x4000, 0x1000);
    EXPECT_EQ(r.start(), 0x4000u);
    EXPECT_EQ(r.end(), 0x5000u);
}

TEST(AddrRangeTest, ContainsIsHalfOpen)
{
    const AddrRange r(0x1000, 0x2000);
    EXPECT_TRUE(r.contains(0x1000));
    EXPECT_TRUE(r.contains(0x1fff));
    EXPECT_FALSE(r.contains(0x2000));
    EXPECT_FALSE(r.contains(0xfff));
}

TEST(AddrRangeTest, EmptyRangeContainsNothing)
{
    const AddrRange r(0x1000, 0x1000);
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.contains(0x1000));
}

TEST(AddrRangeTest, Intersects)
{
    const AddrRange a(0x1000, 0x2000);
    EXPECT_TRUE(a.intersects(AddrRange(0x1800, 0x2800)));
    EXPECT_TRUE(a.intersects(AddrRange(0x800, 0x1001)));
    EXPECT_FALSE(a.intersects(AddrRange(0x2000, 0x3000)));
    EXPECT_FALSE(a.intersects(AddrRange(0x0, 0x1000)));
}

TEST(AddrRangeTest, ContainsRange)
{
    const AddrRange a(0x1000, 0x4000);
    EXPECT_TRUE(a.containsRange(AddrRange(0x1000, 0x4000)));
    EXPECT_TRUE(a.containsRange(AddrRange(0x2000, 0x3000)));
    EXPECT_FALSE(a.containsRange(AddrRange(0x800, 0x2000)));
}

TEST(AddrRangeTest, OffsetOf)
{
    const AddrRange a(0x1000, 0x4000);
    EXPECT_EQ(a.offsetOf(0x1000), 0u);
    EXPECT_EQ(a.offsetOf(0x2345), 0x1345u);
}

TEST(AddrRangeTest, OrderingByStart)
{
    EXPECT_LT(AddrRange(0x1000, 0x9000), AddrRange(0x2000, 0x3000));
}

TEST(AddrRangeTest, InvalidRangePanics)
{
    setErrorsThrow(true);
    EXPECT_THROW(AddrRange(0x2000, 0x1000), SimError);
    setErrorsThrow(false);
}

} // namespace
} // namespace kindle
