#include <gtest/gtest.h>

#include <map>

#include "base/random.hh"

namespace kindle
{
namespace
{

TEST(RandomTest, DeterministicForSameSeed)
{
    Random a(123);
    Random b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiverge)
{
    Random a(1);
    Random b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInBounds)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.uniform(17), 17u);
}

TEST(RandomTest, RangeInclusive)
{
    Random r(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, UniformRealInUnitInterval)
{
    Random r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, ChanceApproximatesProbability)
{
    Random r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(ZipfianTest, StaysInRangeAndIsDeterministic)
{
    ZipfianGenerator a(1000, 0.99, 5);
    ZipfianGenerator b(1000, 0.99, 5);
    for (int i = 0; i < 5000; ++i) {
        const auto v = a.next();
        EXPECT_LT(v, 1000u);
        EXPECT_EQ(v, b.next());
    }
}

TEST(ZipfianTest, SkewConcentratesMassOnLowRanks)
{
    ZipfianGenerator z(100000, 0.99, 17);
    std::uint64_t in_top_100 = 0;
    constexpr int draws = 50000;
    for (int i = 0; i < draws; ++i)
        in_top_100 += (z.next() < 100);
    // YCSB-style zipfian(0.99) puts roughly half the mass on the top
    // 0.1% of keys.
    EXPECT_GT(in_top_100, draws / 4);
}

TEST(ZipfianTest, HigherThetaIsMoreSkewed)
{
    ZipfianGenerator lo(10000, 0.5, 23);
    ZipfianGenerator hi(10000, 0.95, 23);
    std::uint64_t lo_hits = 0;
    std::uint64_t hi_hits = 0;
    for (int i = 0; i < 20000; ++i) {
        lo_hits += (lo.next() < 10);
        hi_hits += (hi.next() < 10);
    }
    EXPECT_GT(hi_hits, lo_hits);
}

class ZipfianParamTest
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ZipfianParamTest, AllItemsReachableBoundsHold)
{
    const std::uint64_t n = GetParam();
    ZipfianGenerator z(n, 0.9, 31);
    for (int i = 0; i < 2000; ++i)
        ASSERT_LT(z.next(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZipfianParamTest,
                         ::testing::Values(1, 2, 10, 1000, 1u << 21));

} // namespace
} // namespace kindle
