/**
 * @file
 * NVM media model unit tests: SECDED read semantics, drift-vs-stuck
 * fault lifecycle, write-endurance exhaustion, and the HybridMemory
 * plumbing (including media state surviving a power loss).
 */

#include <cstring>

#include <gtest/gtest.h>

#include "mem/hybrid_memory.hh"
#include "mem/nvm_media.hh"

namespace kindle::mem
{
namespace
{

constexpr Addr nvmBase = 64 * oneMiB;

AddrRange
nvmRange()
{
    return {nvmBase, nvmBase + 64 * oneMiB};
}

NvmMediaModel
cleanModel()
{
    fault::MediaFaultPlan plan;
    plan.seed = 3;
    return NvmMediaModel(nvmRange(), plan);
}

TEST(NvmMediaModel, SingleBitIsCorrectedOnRead)
{
    NvmMediaModel media = cleanModel();
    const Addr line = nvmBase + 4 * lineSize;
    media.injectError(line, 1);
    EXPECT_EQ(media.health(line), LineHealth::correctable);

    // ECC hides the flip: the delivered bytes stay pristine and the
    // correction is counted.
    std::uint8_t buf[lineSize] = {};
    media.filterRead(line, buf, lineSize);
    for (const std::uint8_t b : buf)
        EXPECT_EQ(b, 0u);
    EXPECT_EQ(media.stats().scalarValue("demandCorrections"), 1);
}

TEST(NvmMediaModel, DoubleBitCorruptsDeliveredBytes)
{
    NvmMediaModel media = cleanModel();
    const Addr line = nvmBase + 9 * lineSize;
    media.injectError(line, 2);
    EXPECT_EQ(media.health(line), LineHealth::uncorrectable);

    std::uint8_t buf[lineSize] = {};
    media.filterRead(line, buf, lineSize);
    unsigned wrong_bits = 0;
    for (const std::uint8_t b : buf)
        wrong_bits += static_cast<unsigned>(__builtin_popcount(b));
    EXPECT_EQ(wrong_bits, 2u);
    EXPECT_EQ(media.stats().scalarValue("uncorrectableReads"), 1);
}

TEST(NvmMediaModel, PartialLineReadSeesOnlyCoveredDamage)
{
    NvmMediaModel media = cleanModel();
    const Addr line = nvmBase;
    media.injectError(line, 2);

    // An 8-byte window of an uncorrectable line flips at most the
    // error bits that land inside the window — never bytes outside.
    std::uint8_t buf[8] = {};
    media.filterRead(line + 16, buf, sizeof(buf));
    unsigned wrong_bits = 0;
    for (const std::uint8_t b : buf)
        wrong_bits += static_cast<unsigned>(__builtin_popcount(b));
    EXPECT_LE(wrong_bits, 2u);
}

TEST(NvmMediaModel, RewriteClearsTransientKeepsStuck)
{
    NvmMediaModel media = cleanModel();
    const Addr drifted = nvmBase + 2 * lineSize;
    const Addr worn = nvmBase + 3 * lineSize;
    media.injectError(drifted, 1, /*sticky=*/false);
    media.injectError(worn, 1, /*sticky=*/true);

    EXPECT_EQ(media.scrubRewrite(drifted), 0u);  // healed
    EXPECT_EQ(media.scrubRewrite(worn), 1u);     // still afflicted
    EXPECT_EQ(media.health(drifted), LineHealth::clean);
    EXPECT_EQ(media.health(worn), LineHealth::correctable);
}

TEST(NvmMediaModel, RateOneInjectsOnEveryWrite)
{
    fault::MediaFaultPlan plan;
    plan.bitFlipRate = 1.0;
    plan.seed = 11;
    NvmMediaModel media(nvmRange(), plan);

    const Addr line = nvmBase + 7 * lineSize;
    media.onLineWrite(line);
    EXPECT_GE(media.errorBits(line), 1u);
    EXPECT_EQ(media.stats().scalarValue("transientFlips"), 1);
}

TEST(NvmMediaModel, EnduranceExhaustionDevelopsStuckBit)
{
    fault::MediaFaultPlan plan;
    plan.writeEndurance = 4;
    plan.seed = 5;
    NvmMediaModel media(nvmRange(), plan);

    const Addr frame = nvmBase + 6 * pageSize;
    for (int i = 0; i < 4; ++i) {
        media.onLineWrite(frame + Addr(i) * lineSize);
        EXPECT_TRUE(media.takeExhaustedFrames().empty());
    }

    // The write that crosses the budget sticks a cell and reports the
    // frame — exactly once.
    media.onLineWrite(frame + 4 * lineSize);
    const auto worn_out = media.takeExhaustedFrames();
    ASSERT_EQ(worn_out.size(), 1u);
    EXPECT_EQ(worn_out[0], frame);
    EXPECT_TRUE(media.takeExhaustedFrames().empty());
    EXPECT_EQ(media.stats().scalarValue("stuckBits"), 1);

    // Wear never heals: rewriting the stuck line keeps its error bit.
    media.onLineWrite(frame + 4 * lineSize);
    std::uint64_t afflicted = 0;
    media.forEachFaultyLine(
        {frame, frame + pageSize},
        [&](Addr, unsigned bits) { afflicted += bits; });
    EXPECT_GE(afflicted, 1u);
}

TEST(NvmMediaModel, TargetedPlanFaultsAppliedAtConstruction)
{
    fault::MediaFaultPlan plan;
    plan.faults.push_back({/*frame=*/2, /*line=*/5, /*bits=*/2,
                           /*sticky=*/true});
    NvmMediaModel media(nvmRange(), plan);
    const Addr line = nvmBase + 2 * pageSize + 5 * lineSize;
    EXPECT_EQ(media.health(line), LineHealth::uncorrectable);
}

TEST(NvmMediaModel, HybridMemoryDeliversUncorrectableDamage)
{
    HybridMemoryParams p;
    p.dramBytes = 64 * oneMiB;
    p.nvmBytes = 64 * oneMiB;
    p.media.faults.push_back({/*frame=*/1, /*line=*/0, /*bits=*/2,
                              /*sticky=*/true});
    HybridMemory mem(p);
    ASSERT_NE(mem.media(), nullptr);

    const Addr good = nvmBase + 3 * pageSize;
    const Addr bad = nvmBase + pageSize;
    std::uint8_t pattern[lineSize];
    for (std::uint64_t i = 0; i < lineSize; ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 7 + 1);
    mem.writeDataDurable(good, pattern, lineSize);
    mem.writeDataDurable(bad, pattern, lineSize);

    std::uint8_t buf[lineSize] = {};
    mem.readData(good, buf, lineSize);
    EXPECT_EQ(std::memcmp(buf, pattern, lineSize), 0);
    mem.readData(bad, buf, lineSize);
    EXPECT_NE(std::memcmp(buf, pattern, lineSize), 0);
}

TEST(NvmMediaModel, MediaStateSurvivesPowerLoss)
{
    HybridMemoryParams p;
    p.dramBytes = 64 * oneMiB;
    p.nvmBytes = 64 * oneMiB;
    p.media.faults.push_back({/*frame=*/0, /*line=*/0, /*bits=*/2,
                              /*sticky=*/true});
    HybridMemory mem(p);
    const Addr line = nvmBase;
    ASSERT_EQ(mem.media()->health(line), LineHealth::uncorrectable);

    mem.crash();

    // The faults are in the cells, not in any volatile buffer.
    EXPECT_EQ(mem.media()->health(line), LineHealth::uncorrectable);
    std::uint8_t buf[lineSize] = {};
    mem.readData(line, buf, lineSize);
    unsigned wrong_bits = 0;
    for (const std::uint8_t b : buf)
        wrong_bits += static_cast<unsigned>(__builtin_popcount(b));
    EXPECT_EQ(wrong_bits, 2u);
}

} // namespace
} // namespace kindle::mem
