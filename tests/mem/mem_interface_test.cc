#include <gtest/gtest.h>

#include "mem/mem_interface.hh"

namespace kindle::mem
{
namespace
{

AddrRange
testRange()
{
    return AddrRange(0, 256 * oneMiB);
}

TEST(MemInterfaceTest, RowHitFasterThanRowMiss)
{
    MemInterface dram(ddr4_2400Params(), testRange());
    // First access opens the row (miss).
    const Tick t1 = dram.access(MemCmd::read, 0x0, 0);
    // Same row, immediately after: hit, and only bus/bank constrained.
    const Tick t2 = dram.access(MemCmd::read, 64, t1) - t1;
    EXPECT_GT(t1, t2);
}

TEST(MemInterfaceTest, NvmReadSlowerThanDram)
{
    MemInterface dram(ddr4_2400Params(), testRange());
    MemInterface nvm(pcmParams(), testRange());
    const Tick d = dram.access(MemCmd::read, 0x10000, 0);
    const Tick n = nvm.access(MemCmd::read, 0x10000, 0);
    EXPECT_GT(n, d);
}

TEST(MemInterfaceTest, NvmWriteSlowerThanNvmRead)
{
    MemInterface nvm(pcmParams(), testRange());
    const Tick r = nvm.access(MemCmd::read, 0x0, 0);
    MemInterface nvm2(pcmParams(), testRange());
    const Tick w = nvm2.access(MemCmd::write, 0x0, 0);
    EXPECT_GT(w, r);
}

TEST(MemInterfaceTest, BankConflictSerializes)
{
    MemInterface dram(ddr4_2400Params(), testRange());
    const auto params = ddr4_2400Params();
    // Two different rows on the same bank: second access waits.
    const Addr row_a = 0;
    const Addr row_b = params.rowBytes * params.banks;  // same bank
    const Tick t1 = dram.access(MemCmd::read, row_a, 0);
    const Tick t2 = dram.access(MemCmd::read, row_b, 0);
    EXPECT_GE(t2, t1 + params.readRowMiss);
}

TEST(MemInterfaceTest, DifferentBanksOverlap)
{
    MemInterface dram(ddr4_2400Params(), testRange());
    const auto params = ddr4_2400Params();
    const Tick t1 = dram.access(MemCmd::read, 0, 0);
    // Next row lands on the next bank; only the shared bus serializes.
    const Tick t2 = dram.access(MemCmd::read, params.rowBytes, 0);
    EXPECT_LT(t2, t1 + params.readRowMiss);
}

TEST(MemInterfaceTest, BulkCheaperThanPerLine)
{
    const std::uint64_t bytes = 64 * oneKiB;
    MemInterface a(pcmParams(), testRange());
    Tick per_line_done = 0;
    for (std::uint64_t off = 0; off < bytes; off += lineSize)
        per_line_done = a.access(MemCmd::write, off, per_line_done);

    MemInterface b(pcmParams(), testRange());
    const Tick bulk_done = b.bulkAccess(MemCmd::bulkWrite, 0, bytes, 0);
    EXPECT_LT(bulk_done, per_line_done);
}

TEST(MemInterfaceTest, StatsAccumulate)
{
    MemInterface dram(ddr4_2400Params(), testRange());
    dram.access(MemCmd::read, 0, 0);
    dram.access(MemCmd::write, 64, 0);
    dram.bulkAccess(MemCmd::bulkRead, 0x10000, 4096, 0);
    EXPECT_EQ(dram.stats().scalarValue("readReqs"), 2);  // read + bulk
    EXPECT_EQ(dram.stats().scalarValue("writeReqs"), 1);
    EXPECT_GE(dram.stats().scalarValue("bytes"), 4096 + 128);
}

TEST(MemInterfaceTest, ResetForgetsOpenRows)
{
    MemInterface dram(ddr4_2400Params(), testRange());
    const Tick miss1 = dram.access(MemCmd::read, 0, 0);
    dram.reset();
    // Same address misses again after reset (row closed).
    const Tick miss2 = dram.access(MemCmd::read, 0, 0);
    EXPECT_EQ(miss1, miss2);
}

class BulkSizeParam : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(BulkSizeParam, BulkCostScalesWithSize)
{
    MemInterface nvm(pcmParams(), testRange());
    const std::uint64_t bytes = GetParam();
    const Tick small = nvm.bulkAccess(MemCmd::bulkWrite, 0, bytes, 0);
    MemInterface nvm2(pcmParams(), testRange());
    const Tick big =
        nvm2.bulkAccess(MemCmd::bulkWrite, 0, bytes * 4, 0);
    EXPECT_GT(big, small);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkSizeParam,
                         ::testing::Values(4096, 65536, 1048576));

} // namespace
} // namespace kindle::mem
