#include <gtest/gtest.h>

#include <vector>

#include "mem/backing_store.hh"

namespace kindle::mem
{
namespace
{

TEST(BackingStoreTest, ReadsZeroFromHoles)
{
    BackingStore store(AddrRange(0, oneMiB));
    EXPECT_EQ(store.readT<std::uint64_t>(0x1000), 0u);
    EXPECT_EQ(store.framesAllocated(), 0u);
}

TEST(BackingStoreTest, WriteReadRoundTrip)
{
    BackingStore store(AddrRange(0, oneMiB));
    store.writeT<std::uint64_t>(0x1008, 0xdeadbeefcafef00dull);
    EXPECT_EQ(store.readT<std::uint64_t>(0x1008),
              0xdeadbeefcafef00dull);
    EXPECT_EQ(store.framesAllocated(), 1u);
}

TEST(BackingStoreTest, CrossPageAccess)
{
    BackingStore store(AddrRange(0, oneMiB));
    const char msg[] = "hello across the page boundary";
    store.write(pageSize - 8, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    store.read(pageSize - 8, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
    EXPECT_EQ(store.framesAllocated(), 2u);
}

TEST(BackingStoreTest, ClearForgetsEverything)
{
    BackingStore store(AddrRange(0, oneMiB));
    store.writeT<std::uint32_t>(0x2000, 7);
    store.clear();
    EXPECT_EQ(store.readT<std::uint32_t>(0x2000), 0u);
}

TEST(BackingStoreTest, NonZeroBaseRange)
{
    BackingStore store(AddrRange::withSize(3 * oneGiB, oneMiB));
    store.writeT<std::uint64_t>(3 * oneGiB + 0x10, 99);
    EXPECT_EQ(store.readT<std::uint64_t>(3 * oneGiB + 0x10), 99u);
}

TEST(BackingStoreTest, OutOfRangePanics)
{
    setErrorsThrow(true);
    BackingStore store(AddrRange(0, oneMiB));
    EXPECT_THROW(store.writeT<std::uint8_t>(2 * oneMiB, 1), SimError);
    setErrorsThrow(false);
}

TEST(DurableStoreTest, VolatileWriteVisibleButNotDurable)
{
    DurableStore store(AddrRange(0, oneMiB));
    store.writeVolatileT<std::uint64_t>(0x100, 42);
    EXPECT_EQ(store.readT<std::uint64_t>(0x100), 42u);

    std::uint64_t durable = 1;
    store.readDurable(0x100, &durable, 8);
    EXPECT_EQ(durable, 0u);
    EXPECT_EQ(store.pendingLines(), 1u);
}

TEST(DurableStoreTest, CommitLineMakesDurable)
{
    DurableStore store(AddrRange(0, oneMiB));
    store.writeVolatileT<std::uint64_t>(0x100, 42);
    store.commitLineImmediate(0x100);
    std::uint64_t durable = 0;
    store.readDurable(0x100, &durable, 8);
    EXPECT_EQ(durable, 42u);
    EXPECT_EQ(store.pendingLines(), 0u);
}

TEST(DurableStoreTest, CrashDropsPendingOnly)
{
    DurableStore store(AddrRange(0, oneMiB));
    store.writeVolatileT<std::uint64_t>(0x100, 1);
    store.commitLineImmediate(0x100);
    store.writeVolatileT<std::uint64_t>(0x100, 2);  // newer, pending
    store.writeVolatileT<std::uint64_t>(0x200, 3);  // pending only

    store.crash();

    EXPECT_EQ(store.readT<std::uint64_t>(0x100), 1u);  // old survives
    EXPECT_EQ(store.readT<std::uint64_t>(0x200), 0u);  // lost
}

TEST(DurableStoreTest, PartialLineWritePreservesNeighbours)
{
    DurableStore store(AddrRange(0, oneMiB));
    store.writeDurableT<std::uint64_t>(0x100, 0x1111);
    store.writeDurableT<std::uint64_t>(0x108, 0x2222);
    // Volatile write to one word of the same line ...
    store.writeVolatileT<std::uint64_t>(0x100, 0x9999);
    // ... the other word must remain intact through the overlay.
    EXPECT_EQ(store.readT<std::uint64_t>(0x108), 0x2222u);
    store.commitLineImmediate(0x100);
    std::uint64_t v = 0;
    store.readDurable(0x108, &v, 8);
    EXPECT_EQ(v, 0x2222u);
}

TEST(DurableStoreTest, BufferedCommitDurableOnlyAfterDrain)
{
    DurableStore store(AddrRange(0, oneMiB));
    store.writeVolatileT<std::uint64_t>(0x100, 42);
    // Writeback accepted at tick 100, device drain completes at 500.
    store.commitLine(0x100, 100, 500);
    EXPECT_EQ(store.pendingLines(), 0u);
    EXPECT_EQ(store.inflightLines(), 1u);
    // The latest value is still visible to reads ...
    EXPECT_EQ(store.readT<std::uint64_t>(0x100), 42u);

    // ... but a crash before the drain completes loses it.
    const CrashOutcome out = store.crash(400, {});
    EXPECT_EQ(out.linesLost, 1u);
    EXPECT_EQ(out.linesDrained, 0u);
    std::uint64_t v = 1;
    store.readDurable(0x100, &v, 8);
    EXPECT_EQ(v, 0u);
}

TEST(DurableStoreTest, BufferedCommitSurvivesCrashAfterDrain)
{
    DurableStore store(AddrRange(0, oneMiB));
    store.writeVolatileT<std::uint64_t>(0x100, 42);
    store.commitLine(0x100, 100, 500);
    const CrashOutcome out = store.crash(500, {});
    EXPECT_EQ(out.linesDrained, 1u);
    EXPECT_EQ(out.linesLost, 0u);
    std::uint64_t v = 0;
    store.readDurable(0x100, &v, 8);
    EXPECT_EQ(v, 42u);
}

TEST(DurableStoreTest, DrainToRetiresCompletedWrites)
{
    DurableStore store(AddrRange(0, oneMiB));
    store.writeVolatileT<std::uint64_t>(0x100, 7);
    store.writeVolatileT<std::uint64_t>(0x200, 8);
    store.commitLine(0x100, 100, 300);
    store.commitLine(0x200, 100, 900);
    store.drainTo(300);
    EXPECT_EQ(store.inflightLines(), 1u);
    std::uint64_t v = 0;
    store.readDurable(0x100, &v, 8);
    EXPECT_EQ(v, 7u);
    store.readDurable(0x200, &v, 8);
    EXPECT_EQ(v, 0u);
}

TEST(DurableStoreTest, TornStorePersistsPrefixOfAWord)
{
    const std::uint64_t old_val = 0x1111222233334444ull;
    const std::uint64_t new_val = 0xaaaabbbbccccddddull;
    DurableStore store(AddrRange(0, oneMiB));
    store.writeDurableT<std::uint64_t>(0x100, old_val);
    store.writeVolatileT<std::uint64_t>(0x100, new_val);
    store.commitLine(0x100, 100, 500);

    const CrashOutcome out = store.crash(200, {true, 7});
    EXPECT_EQ(out.linesLost, 1u);
    EXPECT_EQ(out.tornWords, 1u);

    std::uint64_t v = 0;
    store.readDurable(0x100, &v, 8);
    // A 1–7 byte prefix of the in-flight store persisted, the rest is
    // the old durable value: neither old nor new — a torn store.
    EXPECT_NE(v, old_val);
    EXPECT_NE(v, new_val);
    bool is_prefix_mix = false;
    for (unsigned bytes = 1; bytes < 8; ++bytes) {
        const std::uint64_t mask =
            (std::uint64_t{1} << (8 * bytes)) - 1;
        if (v == ((old_val & ~mask) | (new_val & mask)))
            is_prefix_mix = true;
    }
    EXPECT_TRUE(is_prefix_mix) << std::hex << v;
}

TEST(DurableStoreTest, TornStoreDeterministicAcrossRuns)
{
    auto run = [](std::uint64_t seed) {
        DurableStore store(AddrRange(0, oneMiB));
        for (int i = 0; i < 6; ++i) {
            store.writeVolatileT<std::uint64_t>(0x1000 + i * 64,
                                                0xff00 + i);
            store.commitLine(0x1000 + i * 64, 100, 500 + i);
        }
        store.crash(200, {true, seed});
        std::uint64_t img[6];
        for (int i = 0; i < 6; ++i)
            store.readDurable(0x1000 + i * 64, &img[i], 8);
        return std::vector<std::uint64_t>(img, img + 6);
    };
    EXPECT_EQ(run(3), run(3));
    EXPECT_NE(run(3), run(4));
}

TEST(DurableStoreTest, CommitAllFlushesEverything)
{
    DurableStore store(AddrRange(0, oneMiB));
    for (int i = 0; i < 10; ++i)
        store.writeVolatileT<std::uint64_t>(0x1000 + i * 64, i);
    EXPECT_EQ(store.pendingLines(), 10u);
    store.commitAll();
    EXPECT_EQ(store.pendingLines(), 0u);
    for (int i = 0; i < 10; ++i) {
        std::uint64_t v = 99;
        store.readDurable(0x1000 + i * 64, &v, 8);
        EXPECT_EQ(v, static_cast<std::uint64_t>(i));
    }
}

} // namespace
} // namespace kindle::mem
