#include <gtest/gtest.h>

#include "mem/backing_store.hh"

namespace kindle::mem
{
namespace
{

TEST(BackingStoreTest, ReadsZeroFromHoles)
{
    BackingStore store(AddrRange(0, oneMiB));
    EXPECT_EQ(store.readT<std::uint64_t>(0x1000), 0u);
    EXPECT_EQ(store.framesAllocated(), 0u);
}

TEST(BackingStoreTest, WriteReadRoundTrip)
{
    BackingStore store(AddrRange(0, oneMiB));
    store.writeT<std::uint64_t>(0x1008, 0xdeadbeefcafef00dull);
    EXPECT_EQ(store.readT<std::uint64_t>(0x1008),
              0xdeadbeefcafef00dull);
    EXPECT_EQ(store.framesAllocated(), 1u);
}

TEST(BackingStoreTest, CrossPageAccess)
{
    BackingStore store(AddrRange(0, oneMiB));
    const char msg[] = "hello across the page boundary";
    store.write(pageSize - 8, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    store.read(pageSize - 8, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
    EXPECT_EQ(store.framesAllocated(), 2u);
}

TEST(BackingStoreTest, ClearForgetsEverything)
{
    BackingStore store(AddrRange(0, oneMiB));
    store.writeT<std::uint32_t>(0x2000, 7);
    store.clear();
    EXPECT_EQ(store.readT<std::uint32_t>(0x2000), 0u);
}

TEST(BackingStoreTest, NonZeroBaseRange)
{
    BackingStore store(AddrRange::withSize(3 * oneGiB, oneMiB));
    store.writeT<std::uint64_t>(3 * oneGiB + 0x10, 99);
    EXPECT_EQ(store.readT<std::uint64_t>(3 * oneGiB + 0x10), 99u);
}

TEST(BackingStoreTest, OutOfRangePanics)
{
    setErrorsThrow(true);
    BackingStore store(AddrRange(0, oneMiB));
    EXPECT_THROW(store.writeT<std::uint8_t>(2 * oneMiB, 1), SimError);
    setErrorsThrow(false);
}

TEST(DurableStoreTest, VolatileWriteVisibleButNotDurable)
{
    DurableStore store(AddrRange(0, oneMiB));
    store.writeVolatileT<std::uint64_t>(0x100, 42);
    EXPECT_EQ(store.readT<std::uint64_t>(0x100), 42u);

    std::uint64_t durable = 1;
    store.readDurable(0x100, &durable, 8);
    EXPECT_EQ(durable, 0u);
    EXPECT_EQ(store.pendingLines(), 1u);
}

TEST(DurableStoreTest, CommitLineMakesDurable)
{
    DurableStore store(AddrRange(0, oneMiB));
    store.writeVolatileT<std::uint64_t>(0x100, 42);
    store.commitLine(0x100);
    std::uint64_t durable = 0;
    store.readDurable(0x100, &durable, 8);
    EXPECT_EQ(durable, 42u);
    EXPECT_EQ(store.pendingLines(), 0u);
}

TEST(DurableStoreTest, CrashDropsPendingOnly)
{
    DurableStore store(AddrRange(0, oneMiB));
    store.writeVolatileT<std::uint64_t>(0x100, 1);
    store.commitLine(0x100);
    store.writeVolatileT<std::uint64_t>(0x100, 2);  // newer, pending
    store.writeVolatileT<std::uint64_t>(0x200, 3);  // pending only

    store.crash();

    EXPECT_EQ(store.readT<std::uint64_t>(0x100), 1u);  // old survives
    EXPECT_EQ(store.readT<std::uint64_t>(0x200), 0u);  // lost
}

TEST(DurableStoreTest, PartialLineWritePreservesNeighbours)
{
    DurableStore store(AddrRange(0, oneMiB));
    store.writeDurableT<std::uint64_t>(0x100, 0x1111);
    store.writeDurableT<std::uint64_t>(0x108, 0x2222);
    // Volatile write to one word of the same line ...
    store.writeVolatileT<std::uint64_t>(0x100, 0x9999);
    // ... the other word must remain intact through the overlay.
    EXPECT_EQ(store.readT<std::uint64_t>(0x108), 0x2222u);
    store.commitLine(0x100);
    std::uint64_t v = 0;
    store.readDurable(0x108, &v, 8);
    EXPECT_EQ(v, 0x2222u);
}

TEST(DurableStoreTest, CommitAllFlushesEverything)
{
    DurableStore store(AddrRange(0, oneMiB));
    for (int i = 0; i < 10; ++i)
        store.writeVolatileT<std::uint64_t>(0x1000 + i * 64, i);
    EXPECT_EQ(store.pendingLines(), 10u);
    store.commitAll();
    EXPECT_EQ(store.pendingLines(), 0u);
    for (int i = 0; i < 10; ++i) {
        std::uint64_t v = 99;
        store.readDurable(0x1000 + i * 64, &v, 8);
        EXPECT_EQ(v, static_cast<std::uint64_t>(i));
    }
}

} // namespace
} // namespace kindle::mem
