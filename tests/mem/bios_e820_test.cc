#include <gtest/gtest.h>

#include "mem/bios_e820.hh"

namespace kindle::mem
{
namespace
{

TEST(E820Test, StandardMapShape)
{
    const auto map = E820Map::standard(3 * oneGiB, 2 * oneGiB);
    // low usable, EBDA reserved, main DRAM, NVM.
    ASSERT_EQ(map.entries().size(), 4u);
    EXPECT_EQ(map.entries()[0].type, E820Type::usable);
    EXPECT_EQ(map.entries()[1].type, E820Type::reserved);
    EXPECT_EQ(map.entries()[2].type, E820Type::usable);
    EXPECT_EQ(map.entries()[3].type, E820Type::pmem);
}

TEST(E820Test, NvmSitsDirectlyAboveDram)
{
    const auto map = E820Map::standard(3 * oneGiB, 2 * oneGiB);
    const auto pmem = map.regionOf(E820Type::pmem);
    EXPECT_EQ(pmem.start(), 3 * oneGiB);
    EXPECT_EQ(pmem.size(), 2 * oneGiB);
}

TEST(E820Test, TotalBytesByType)
{
    const auto map = E820Map::standard(3 * oneGiB, 2 * oneGiB);
    EXPECT_EQ(map.totalBytes(E820Type::pmem), 2 * oneGiB);
    // usable = everything below 3 GiB except the EBDA hole.
    EXPECT_EQ(map.totalBytes(E820Type::usable),
              3 * oneGiB - (oneMiB - 640 * oneKiB));
}

TEST(E820Test, TypeOfRoutesCorrectly)
{
    const auto map = E820Map::standard(3 * oneGiB, 2 * oneGiB);
    EXPECT_EQ(map.typeOf(0x1000), MemType::dram);
    EXPECT_EQ(map.typeOf(2 * oneGiB), MemType::dram);
    EXPECT_EQ(map.typeOf(3 * oneGiB), MemType::nvm);
    EXPECT_EQ(map.typeOf(5 * oneGiB - 1), MemType::nvm);
}

TEST(E820Test, UnmappedAddressIsFatal)
{
    setErrorsThrow(true);
    const auto map = E820Map::standard(oneGiB, oneGiB);
    EXPECT_THROW(map.typeOf(10 * oneGiB), SimError);
    setErrorsThrow(false);
}

TEST(E820Test, NoNvmConfiguration)
{
    setErrorsThrow(true);
    const auto map = E820Map::standard(oneGiB, 0);
    EXPECT_EQ(map.totalBytes(E820Type::pmem), 0u);
    EXPECT_THROW(map.regionOf(E820Type::pmem), SimError);
    setErrorsThrow(false);
}

TEST(E820Test, OverlappingEntriesRejected)
{
    setErrorsThrow(true);
    E820Map map;
    map.add(AddrRange(0, oneMiB), E820Type::usable);
    EXPECT_THROW(map.add(AddrRange(oneMiB / 2, 2 * oneMiB),
                         E820Type::usable),
                 SimError);
    setErrorsThrow(false);
}

} // namespace
} // namespace kindle::mem
