#include <gtest/gtest.h>

#include "mem/hybrid_memory.hh"

namespace kindle::mem
{
namespace
{

HybridMemoryParams
smallParams()
{
    HybridMemoryParams p;
    p.dramBytes = 64 * oneMiB;
    p.nvmBytes = 64 * oneMiB;
    return p;
}

TEST(HybridMemoryTest, FlatAddressLayout)
{
    HybridMemory mem(smallParams());
    EXPECT_EQ(mem.dramRange().start(), 0u);
    EXPECT_EQ(mem.dramRange().end(), 64 * oneMiB);
    EXPECT_EQ(mem.nvmRange().start(), 64 * oneMiB);
    EXPECT_EQ(mem.nvmRange().end(), 128 * oneMiB);
    EXPECT_EQ(mem.typeOf(0), MemType::dram);
    EXPECT_EQ(mem.typeOf(64 * oneMiB), MemType::nvm);
}

TEST(HybridMemoryTest, RoutingByAddress)
{
    HybridMemory mem(smallParams());
    mem.submit({MemCmd::read, 0x1000, lineSize}, 0);
    mem.submit({MemCmd::read, 64 * oneMiB + 0x1000, lineSize}, 0);
    EXPECT_EQ(mem.dramCtrl().device().stats().scalarValue("readReqs"),
              1);
    EXPECT_EQ(mem.nvmCtrl().device().stats().scalarValue("readReqs"),
              1);
}

TEST(HybridMemoryTest, NvmWritebackBuffersLineUntilDrain)
{
    HybridMemory mem(smallParams());
    const Addr nvm_addr = 64 * oneMiB + 0x2000;
    mem.writeT<std::uint64_t>(nvm_addr, 77);
    EXPECT_EQ(mem.nvmPendingLines(), 1u);

    // The writeback moves the line from the volatile overlay into the
    // controller's posted-write buffer ...
    mem.submit({MemCmd::writeback, nvm_addr, lineSize}, 0);
    EXPECT_EQ(mem.nvmPendingLines(), 0u);
    EXPECT_EQ(mem.nvmInflightLines(), 1u);

    // ... which is not yet crash-safe ...
    std::uint64_t v = 1;
    mem.readNvmDurable(nvm_addr, &v, 8);
    EXPECT_EQ(v, 0u);

    // ... until the device drain completes (what a fence waits for).
    mem.drainWrites(mem.nvmCtrl().writesDrainedAt());
    EXPECT_EQ(mem.nvmInflightLines(), 0u);
    mem.readNvmDurable(nvm_addr, &v, 8);
    EXPECT_EQ(v, 77u);
}

TEST(HybridMemoryTest, CrashLosesUndrainedBufferedWrites)
{
    HybridMemory mem(smallParams());
    const Addr nvm_addr = 64 * oneMiB + 0x4000;
    mem.writeT<std::uint64_t>(nvm_addr, 55);
    mem.submit({MemCmd::writeback, nvm_addr, lineSize}, 0);
    const Tick drain = mem.nvmCtrl().writesDrainedAt();

    // Power cut one tick before the drain completes: line is lost.
    const CrashOutcome out = mem.crash(drain - 1, {});
    EXPECT_EQ(out.linesLost, 1u);
    std::uint64_t v = 1;
    mem.readNvmDurable(nvm_addr, &v, 8);
    EXPECT_EQ(v, 0u);
}

TEST(HybridMemoryTest, DramContentsVanishOnCrash)
{
    HybridMemory mem(smallParams());
    mem.writeT<std::uint64_t>(0x3000, 123);
    EXPECT_EQ(mem.readT<std::uint64_t>(0x3000), 123u);
    mem.crash();
    EXPECT_EQ(mem.readT<std::uint64_t>(0x3000), 0u);
}

TEST(HybridMemoryTest, DurableNvmSurvivesCrash)
{
    HybridMemory mem(smallParams());
    const Addr nvm_addr = 64 * oneMiB + 0x4000;
    mem.writeDataDurable(nvm_addr, "persist", 8);
    mem.writeT<std::uint64_t>(nvm_addr + 64, 5);  // volatile overlay

    mem.crash();

    char buf[8] = {};
    mem.readData(nvm_addr, buf, 8);
    EXPECT_STREQ(buf, "persist");
    EXPECT_EQ(mem.readT<std::uint64_t>(nvm_addr + 64), 0u);
}

TEST(HybridMemoryTest, E820MatchesRanges)
{
    HybridMemory mem(smallParams());
    EXPECT_EQ(mem.e820().regionOf(E820Type::pmem), mem.nvmRange());
}

TEST(HybridMemoryTest, CommitNvmLineIgnoresDram)
{
    HybridMemory mem(smallParams());
    // Committing a DRAM address is a harmless no-op.
    mem.commitNvmLine(0x1000);
    SUCCEED();
}

TEST(HybridMemoryTest, DurableWriteOutsideNvmPanics)
{
    setErrorsThrow(true);
    HybridMemory mem(smallParams());
    std::uint64_t v = 0;
    EXPECT_THROW(mem.writeDataDurable(0x1000, &v, 8), SimError);
    setErrorsThrow(false);
}

} // namespace
} // namespace kindle::mem
