#include <gtest/gtest.h>

#include "mem/hybrid_memory.hh"
#include "mem/mem_ctrl.hh"

namespace kindle::mem
{
namespace
{

AddrRange
testRange()
{
    return AddrRange(0, 256 * oneMiB);
}

TEST(MemCtrlTest, PostedWritesAreCheapUntilBufferFills)
{
    MemCtrlParams params;
    params.writeBufferSize = 8;
    MemCtrl ctrl(params, pcmParams(), testRange());

    // The first writes complete at buffer-accept latency.
    Tick now = 0;
    std::vector<Tick> lat;
    for (int i = 0; i < 32; ++i) {
        const Tick l = ctrl.submit(
            {MemCmd::write, static_cast<Addr>(i) * lineSize, lineSize},
            now);
        lat.push_back(l);
    }
    // Early writes: just the frontend.
    EXPECT_EQ(lat[0], params.frontendLatency);
    EXPECT_EQ(lat[1], params.frontendLatency);
    // Once the 8-entry buffer is full, the requester stalls for a
    // device-speed drain slot.
    EXPECT_GT(lat[20], lat[0] * 5);
    EXPECT_GT(ctrl.stats().scalarValue("writeStallTicks"), 0);
}

TEST(MemCtrlTest, WriteBufferDrainsOverTime)
{
    MemCtrlParams params;
    params.writeBufferSize = 8;
    MemCtrl ctrl(params, pcmParams(), testRange());

    // Fill the buffer.
    for (int i = 0; i < 8; ++i)
        ctrl.submit({MemCmd::write, Addr(i) * lineSize, lineSize}, 0);
    // Far in the future everything has drained: cheap again.
    const Tick l =
        ctrl.submit({MemCmd::write, 0x10000, lineSize}, oneMs);
    EXPECT_EQ(l, params.frontendLatency);
}

TEST(MemCtrlTest, ReadsSeeDeviceLatency)
{
    MemCtrlParams params;
    MemCtrl ctrl(params, pcmParams(), testRange());
    const Tick l = ctrl.submit({MemCmd::read, 0, lineSize}, 0);
    EXPECT_GE(l, pcmParams().readRowMiss);
}

TEST(MemCtrlTest, ReadBufferLimitsOutstandingReads)
{
    MemCtrlParams params;
    params.readBufferSize = 4;
    MemCtrl ctrl(params, pcmParams(), testRange());
    // Saturate with same-bank reads at t=0; the 5th must stall on a
    // buffer slot (stall stat becomes non-zero).
    const auto p = pcmParams();
    for (int i = 0; i < 12; ++i) {
        ctrl.submit({MemCmd::read,
                     Addr(i) * p.rowBytes * p.banks, lineSize},
                    0);
    }
    EXPECT_GT(ctrl.stats().scalarValue("readStallTicks"), 0);
}

TEST(MemCtrlTest, BulkCommandsRouteToDevice)
{
    MemCtrlParams params;
    MemCtrl ctrl(params, ddr4_2400Params(), testRange());
    const Tick l =
        ctrl.submit({MemCmd::bulkWrite, 0, 64 * oneKiB}, 0);
    EXPECT_GT(l, params.frontendLatency);
    EXPECT_EQ(ctrl.stats().scalarValue("bulkOps"), 1);
}

TEST(MemCtrlTest, WrongRangePanics)
{
    setErrorsThrow(true);
    MemCtrl ctrl(MemCtrlParams{}, ddr4_2400Params(), testRange());
    EXPECT_THROW(ctrl.submit({MemCmd::read, oneGiB, lineSize}, 0),
                 SimError);
    setErrorsThrow(false);
}

TEST(MemCtrlTest, StallStatsAbsentUnlessTracked)
{
    // Default config publishes no per-stall stats, so figure output
    // stays byte-identical with the stat machinery compiled in.
    MemCtrlParams params;
    params.writeBufferSize = 4;
    MemCtrl ctrl(params, pcmParams(), testRange());
    for (int i = 0; i < 16; ++i)
        ctrl.submit({MemCmd::write, Addr(i) * lineSize, lineSize}, 0);
    EXPECT_GT(ctrl.stats().scalarValue("writeStallTicks"), 0);
    EXPECT_FALSE(ctrl.stats().hasScalar("writeStalls"));
    setErrorsThrow(true);
    EXPECT_THROW(ctrl.stats().histogram("writeStallLatency"),
                 SimError);
    setErrorsThrow(false);
}

TEST(MemCtrlTest, TrackedStallsCountAndSampleLatency)
{
    MemCtrlParams params;
    params.writeBufferSize = 4;
    params.trackStalls = true;
    MemCtrl ctrl(params, pcmParams(), testRange());

    // The first 4 writes are absorbed; the next 12 each stall for a
    // drain slot and contribute one histogram sample.
    for (int i = 0; i < 16; ++i)
        ctrl.submit({MemCmd::write, Addr(i) * lineSize, lineSize}, 0);

    EXPECT_EQ(ctrl.stats().scalarValue("writeStalls"), 12);
    const auto &hist = ctrl.stats().histogram("writeStallLatency");
    EXPECT_EQ(hist.count(), 12u);
    // Each stall waits at least one device write: samples are real
    // latencies, not zeros, and agree with the aggregate stall time.
    EXPECT_GE(hist.min(), 1.0);
    EXPECT_EQ(hist.sum(),
              ctrl.stats().scalarValue("writeStallTicks"));

    // A drained buffer stops the counters.
    ctrl.submit({MemCmd::write, 0x20000, lineSize}, oneMs);
    EXPECT_EQ(ctrl.stats().scalarValue("writeStalls"), 12);
}

TEST(MemCtrlTest, Table1NvmBufferSizesAreDefault)
{
    // Paper Table I: NVM write buffer 48, read buffer 64.
    const HybridMemoryParams defaults;
    EXPECT_EQ(defaults.nvmCtrl.writeBufferSize, 48u);
    EXPECT_EQ(defaults.nvmCtrl.readBufferSize, 64u);
    EXPECT_EQ(defaults.dramBytes, 3 * oneGiB);
    EXPECT_EQ(defaults.nvmBytes, 2 * oneGiB);
}

} // namespace
} // namespace kindle::mem
