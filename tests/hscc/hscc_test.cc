#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace kindle::hscc
{
namespace
{

KindleConfig
hsccConfig(unsigned threshold, bool charge_os = true,
           unsigned pool_pages = 64)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    HsccParams p;
    p.fetchThreshold = threshold;
    p.chargeOsTime = charge_os;
    p.dramPoolPages = pool_pages;
    p.migrationInterval = oneMs;  // fast intervals for tests
    cfg.hscc = p;
    return cfg;
}

/** Hammer a small set of NVM pages so counts exceed any threshold. */
std::unique_ptr<micro::ScriptStream>
hotPageProgram(unsigned pages, unsigned rounds, unsigned hammer)
{
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, pages * pageSize, true);
    b.touchPages(micro::scriptBase, pages * pageSize);
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned h = 0; h < hammer; ++h) {
            for (unsigned p = 0; p < pages; ++p) {
                // Distinct lines so LLC misses keep occurring.
                b.read(micro::scriptBase + p * pageSize +
                       ((r * hammer + h) % 64) * 64);
            }
        }
        b.compute(1000000);
    }
    b.munmap(micro::scriptBase, pages * pageSize);
    b.exit();
    return b.build();
}

TEST(HsccTest, HotPagesMigrateToDram)
{
    KindleSystem sys(hsccConfig(5));
    sys.run(hotPageProgram(16, 10, 8), "hot");
    EXPECT_GT(sys.hsccEngine()->pagesMigrated(), 0u);
}

TEST(HsccTest, MigratedPagesServeFromDram)
{
    KindleSystem sys(hsccConfig(2));
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 4 * pageSize, true);
    b.touchPages(micro::scriptBase, 4 * pageSize);
    // Hammer distinct lines to raise counts past the threshold ...
    for (int h = 0; h < 32; ++h)
        for (unsigned p = 0; p < 4; ++p)
            b.read(micro::scriptBase + p * pageSize + (h % 64) * 64);
    // ... let the migration interval fire ...
    for (int i = 0; i < 5; ++i)
        b.compute(3000000);
    // Idle op so state is stable before we inspect.
    b.compute(1);
    b.exit();
    const Pid pid = sys.kernel().spawn(b.build(), "migrator");
    sys.runAll();

    // PTE of page 0 now carries the remap flag and a DRAM frame.
    os::Process *proc = sys.kernel().findProcess(pid);
    (void)proc;
    EXPECT_GT(sys.hsccEngine()->pagesMigrated(), 0u);
    // The engine reverse map agrees with the pool.
    EXPECT_GT(sys.hsccEngine()
                  ->stats()
                  .scalarValue("hsccMapTable.updates"),
              0);
}

TEST(HsccTest, HigherThresholdMigratesFewerPages)
{
    auto migrated_with = [](unsigned threshold) {
        KindleSystem sys(hsccConfig(threshold));
        sys.run(hotPageProgram(32, 8, 4), "hot");
        return sys.hsccEngine()->pagesMigrated();
    };
    const auto th_low = migrated_with(2);
    const auto th_high = migrated_with(200);
    EXPECT_GT(th_low, th_high);
}

TEST(HsccTest, CountsResetEachInterval)
{
    KindleSystem sys(hsccConfig(1000));  // nothing migrates
    sys.run(hotPageProgram(8, 6, 4), "counter");
    // Intervals ran, counts were maintained, nothing migrated.
    EXPECT_GT(sys.hsccEngine()->stats().scalarValue("intervals"), 1);
    EXPECT_EQ(sys.hsccEngine()->pagesMigrated(), 0u);
    EXPECT_GT(sys.hsccEngine()->stats().scalarValue(
                  "countWritebacks"),
              0);
}

TEST(HsccTest, PoolPressureCausesDisplacements)
{
    // More hot pages than pool slots: clean/dirty selections occur.
    KindleSystem sys(hsccConfig(2, true, 8));
    sys.run(hotPageProgram(64, 12, 6), "pressure");
    const auto &st = sys.hsccEngine()->stats();
    EXPECT_GT(st.scalarValue("pagesMigrated"),
              8);  // beyond pool size
    EXPECT_GT(st.scalarValue("reverts"), 0);
}

TEST(HsccTest, OsCostsMakeRunsSlower)
{
    // Figure 6's core comparison: identical run with and without OS
    // migration costs.
    auto time_with = [](bool charge) {
        KindleSystem sys(hsccConfig(3, charge));
        return sys.run(hotPageProgram(32, 10, 6), "hot");
    };
    const Tick with_os = time_with(true);
    const Tick hw_only = time_with(false);
    EXPECT_GT(with_os, hw_only);
}

TEST(HsccTest, SelectionAndCopyTimesAccounted)
{
    KindleSystem sys(hsccConfig(2, true, 8));
    sys.run(hotPageProgram(64, 12, 6), "pressure");
    const Tick sel = sys.hsccEngine()->selectionTicks();
    const Tick copy = sys.hsccEngine()->copyTicks();
    EXPECT_GT(copy, 0u);
    EXPECT_GT(sel, 0u);
    // Page copy dominates selection (paper Table VI).
    EXPECT_GT(copy, sel);
}

TEST(HsccTest, UnmapOfMigratedPageFreesNvmHome)
{
    KindleSystem sys(hsccConfig(2));
    const auto before = sys.kernel().nvmAllocator().allocatedFrames();
    sys.run(hotPageProgram(16, 10, 8), "hot");
    EXPECT_GT(sys.hsccEngine()->pagesMigrated(), 0u);
    // Every NVM home frame released despite the PTEs pointing at
    // DRAM cache pages at unmap time.
    EXPECT_EQ(sys.kernel().nvmAllocator().allocatedFrames(), before);
}

TEST(HsccTest, DynamicThresholdBacksOffUnderFlood)
{
    KindleConfig cfg = hsccConfig(2, true, 8);
    cfg.hscc->dynamicThreshold = true;
    KindleSystem sys(cfg);
    sys.run(hotPageProgram(64, 12, 6), "flood");
    // Far more than 8 candidates per interval: the controller must
    // have raised the threshold above its aggressive start.
    EXPECT_GT(sys.hsccEngine()->currentThreshold(), 2u);
    EXPECT_GT(sys.hsccEngine()->stats().scalarValue(
                  "thresholdRaises"),
              0);
}

TEST(HsccTest, DynamicThresholdRelaxesWhenIdle)
{
    KindleConfig cfg = hsccConfig(400, true, 64);
    cfg.hscc->dynamicThreshold = true;
    KindleSystem sys(cfg);
    // Accesses never reach a 400 count: candidates ~0 per interval,
    // so the controller lowers the threshold over time.
    sys.run(hotPageProgram(16, 10, 2), "idle");
    EXPECT_LT(sys.hsccEngine()->currentThreshold(), 400u);
    EXPECT_GT(
        sys.hsccEngine()->stats().scalarValue("thresholdDrops"), 0);
}

TEST(HsccTest, StaticThresholdStaysPut)
{
    KindleSystem sys(hsccConfig(7));
    sys.run(hotPageProgram(32, 8, 6), "static");
    EXPECT_EQ(sys.hsccEngine()->currentThreshold(), 7u);
}

TEST(HsccTest, DirtyCacheCopiesGetCopiedBack)
{
    // Write to migrated pages, then displace them via pool pressure.
    KindleSystem sys(hsccConfig(2, true, 4));
    micro::ScriptBuilder b;
    const unsigned pages = 32;
    b.mmapFixed(micro::scriptBase, pages * pageSize, true);
    b.touchPages(micro::scriptBase, pages * pageSize);
    for (unsigned r = 0; r < 12; ++r) {
        for (unsigned p = 0; p < pages; ++p) {
            b.read(micro::scriptBase + p * pageSize + (r % 64) * 64);
            b.write(micro::scriptBase + p * pageSize +
                    ((r + 1) % 64) * 64);
        }
        b.compute(2000000);
    }
    b.munmap(micro::scriptBase, pages * pageSize);
    b.exit();
    sys.run(b.build(), "dirty");
    EXPECT_GT(sys.hsccEngine()->stats().scalarValue("copyBacks"), 0);
}

} // namespace
} // namespace kindle::hscc
