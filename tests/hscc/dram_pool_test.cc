#include <gtest/gtest.h>

#include "hscc/dram_pool.hh"

namespace kindle::hscc
{
namespace
{

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 64 * oneMiB;
              p.nvmBytes = 64 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          kmem(sim, memory, hier),
          alloc("dram", AddrRange(oneMiB, 32 * oneMiB), kmem)
    {}

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    os::KernelMem kmem;
    os::FrameAllocator alloc;
};

TEST(DramPoolTest, StartsAllFree)
{
    Rig rig;
    DramPool pool(8, rig.alloc);
    EXPECT_EQ(pool.size(), 8u);
    EXPECT_EQ(pool.freeCount(), 8u);
    EXPECT_EQ(pool.cleanCount(), 0u);
    EXPECT_EQ(pool.dirtyCount(), 0u);
    EXPECT_EQ(rig.alloc.allocatedFrames(), 8u);
}

TEST(DramPoolTest, SelectPrefersFree)
{
    Rig rig;
    DramPool pool(4, rig.alloc);
    const Selection sel = pool.select();
    EXPECT_EQ(sel.displacedNvm, invalidAddr);
    EXPECT_FALSE(sel.needsCopyBack);
    EXPECT_NE(sel.dramFrame, invalidAddr);
}

TEST(DramPoolTest, BindMakesClean)
{
    Rig rig;
    DramPool pool(4, rig.alloc);
    const Selection sel = pool.select();
    pool.bind(sel.index, 0x123000);
    pool.refreshLists();
    EXPECT_EQ(pool.cleanCount(), 1u);
    EXPECT_EQ(pool.freeCount(), 3u);
    ASSERT_NE(pool.entryFor(0x123000), nullptr);
    EXPECT_EQ(pool.entryFor(0x123000)->dramFrame, sel.dramFrame);
}

TEST(DramPoolTest, ExhaustedPoolDisplacesCleanFirst)
{
    Rig rig;
    DramPool pool(2, rig.alloc);
    for (int i = 0; i < 2; ++i) {
        const auto s = pool.select();
        pool.bind(s.index, 0x100000 + Addr(i) * pageSize);
    }
    pool.markDirty(0x100000);  // slot 0 dirty, slot 1 clean
    pool.refreshLists();

    const auto s = pool.select();
    EXPECT_EQ(s.displacedNvm, 0x101000u);  // the clean one
    EXPECT_FALSE(s.needsCopyBack);
}

TEST(DramPoolTest, DirtyDisplacementNeedsCopyBack)
{
    Rig rig;
    DramPool pool(1, rig.alloc);
    const auto s0 = pool.select();
    pool.bind(s0.index, 0x200000);
    pool.markDirty(0x200000);
    pool.refreshLists();

    const auto s1 = pool.select();
    EXPECT_EQ(s1.displacedNvm, 0x200000u);
    EXPECT_TRUE(s1.needsCopyBack);
    EXPECT_EQ(pool.stats().scalarValue("selDirty"), 1);
}

TEST(DramPoolTest, ReleaseFreesSlot)
{
    Rig rig;
    DramPool pool(2, rig.alloc);
    const auto s = pool.select();
    pool.bind(s.index, 0x300000);
    pool.release(0x300000);
    EXPECT_EQ(pool.freeCount(), 2u);
    EXPECT_EQ(pool.entryFor(0x300000), nullptr);
}

TEST(DramPoolTest, MarkDirtyUnknownHomeIsNoop)
{
    Rig rig;
    DramPool pool(2, rig.alloc);
    pool.markDirty(0xdead000);
    pool.refreshLists();
    EXPECT_EQ(pool.dirtyCount(), 0u);
}

TEST(DramPoolTest, RefreshRebuildsAfterStateChanges)
{
    Rig rig;
    DramPool pool(3, rig.alloc);
    for (int i = 0; i < 3; ++i) {
        const auto s = pool.select();
        pool.bind(s.index, 0x400000 + Addr(i) * pageSize);
    }
    pool.markDirty(0x400000);
    pool.markDirty(0x401000);
    pool.refreshLists();
    EXPECT_EQ(pool.dirtyCount(), 2u);
    EXPECT_EQ(pool.cleanCount(), 1u);
    EXPECT_EQ(pool.freeCount(), 0u);
}

} // namespace
} // namespace kindle::hscc
