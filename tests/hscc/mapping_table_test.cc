#include <gtest/gtest.h>

#include "hscc/mapping_table.hh"

namespace kindle::hscc
{
namespace
{

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 64 * oneMiB;
              p.nvmBytes = 64 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          kmem(sim, memory, hier),
          alloc("dram", AddrRange(oneMiB, 32 * oneMiB), kmem),
          table(64, kmem, alloc)
    {}

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    os::KernelMem kmem;
    os::FrameAllocator alloc;
    MappingTable table;
};

TEST(MappingTableTest, BidirectionalLookup)
{
    Rig rig;
    rig.table.set(0, 0x100000, 0x200000);
    EXPECT_EQ(rig.table.dramFor(0x100000), 0x200000u);
    EXPECT_EQ(rig.table.nvmFor(0x200000), 0x100000u);
}

TEST(MappingTableTest, MissReturnsInvalid)
{
    Rig rig;
    EXPECT_EQ(rig.table.dramFor(0xdead000), invalidAddr);
    EXPECT_EQ(rig.table.nvmFor(0xdead000), invalidAddr);
}

TEST(MappingTableTest, ClearRemovesBothDirections)
{
    Rig rig;
    rig.table.set(5, 0x300000, 0x400000);
    rig.table.clear(5);
    EXPECT_EQ(rig.table.dramFor(0x300000), invalidAddr);
    EXPECT_EQ(rig.table.nvmFor(0x400000), invalidAddr);
}

TEST(MappingTableTest, SlotReuseOverwrites)
{
    Rig rig;
    rig.table.set(2, 0x100000, 0x200000);
    rig.table.clear(2);
    rig.table.set(2, 0x110000, 0x210000);
    EXPECT_EQ(rig.table.dramFor(0x110000), 0x210000u);
    EXPECT_EQ(rig.table.dramFor(0x100000), invalidAddr);
}

TEST(MappingTableTest, ManySlots)
{
    Rig rig;
    for (unsigned i = 0; i < 64; ++i) {
        rig.table.set(i, 0x1000000 + Addr(i) * pageSize,
                      0x2000000 + Addr(i) * pageSize);
    }
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_EQ(rig.table.dramFor(0x1000000 + Addr(i) * pageSize),
                  0x2000000 + Addr(i) * pageSize);
    }
}

TEST(MappingTableTest, OutOfRangeSlotPanics)
{
    setErrorsThrow(true);
    Rig rig;
    EXPECT_THROW(rig.table.set(64, 0x1000, 0x2000), SimError);
    setErrorsThrow(false);
}

TEST(MappingTableTest, LookupsChargeTime)
{
    Rig rig;
    rig.table.set(0, 0x100000, 0x200000);
    const Tick t0 = rig.sim.now();
    rig.table.dramFor(0x100000);
    EXPECT_GT(rig.sim.now(), t0);
    // Misses are resolved by the (hardware-indexed) host map and
    // charge nothing.
    const Tick t1 = rig.sim.now();
    rig.table.dramFor(0x999000);
    EXPECT_EQ(rig.sim.now(), t1);
}

TEST(MappingTableTest, StatsCount)
{
    Rig rig;
    rig.table.set(0, 0x100000, 0x200000);
    rig.table.dramFor(0x100000);
    rig.table.nvmFor(0x200000);
    rig.table.clear(0);
    EXPECT_EQ(rig.table.stats().scalarValue("updates"), 2);
    EXPECT_EQ(rig.table.stats().scalarValue("lookups"), 2);
}

} // namespace
} // namespace kindle::hscc
