#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace kindle::sim
{
namespace
{

TEST(EventQueueTest, FiresInTimeOrder)
{
    Simulation sim;
    std::vector<int> order;
    CallbackEvent a("a", [&] { order.push_back(1); });
    CallbackEvent b("b", [&] { order.push_back(2); });
    CallbackEvent c("c", [&] { order.push_back(3); });
    sim.eventq().schedule(&b, 200);
    sim.eventq().schedule(&c, 300);
    sim.eventq().schedule(&a, 100);

    sim.bump(250);
    sim.service();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    sim.bump(100);
    sim.service();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTickUsesPriorityThenInsertion)
{
    Simulation sim;
    std::vector<int> order;
    CallbackEvent low("low", [&] { order.push_back(1); },
                      Event::Priority::deflt);
    CallbackEvent high("high", [&] { order.push_back(2); },
                       Event::Priority::ckpt);
    CallbackEvent mid("mid", [&] { order.push_back(3); },
                      Event::Priority::sched);
    sim.eventq().schedule(&low, 100);
    sim.eventq().schedule(&mid, 100);
    sim.eventq().schedule(&high, 100);
    sim.bump(100);
    sim.service();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(EventQueueTest, DescheduleCancels)
{
    Simulation sim;
    int fired = 0;
    CallbackEvent e("e", [&] { ++fired; });
    sim.eventq().schedule(&e, 100);
    sim.eventq().deschedule(&e);
    sim.bump(1000);
    sim.service();
    EXPECT_EQ(fired, 0);
    EXPECT_FALSE(e.scheduled());
}

TEST(EventQueueTest, RescheduleAfterDeschedule)
{
    Simulation sim;
    int fired = 0;
    CallbackEvent e("e", [&] { ++fired; });
    sim.eventq().schedule(&e, 100);
    sim.eventq().deschedule(&e);
    sim.eventq().schedule(&e, 150);
    sim.bump(200);
    sim.service();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, SelfReschedulingPeriodicEvent)
{
    Simulation sim;
    int fired = 0;

    class Periodic : public Event
    {
      public:
        Periodic(Simulation &sim, int &count)
            : Event("periodic"), sim(sim), count(count)
        {}
        void
        process() override
        {
            ++count;
            if (count < 5)
                sim.eventq().schedule(this, sim.now() + 100);
        }

      private:
        Simulation &sim;
        int &count;
    } periodic(sim, fired);

    sim.eventq().schedule(&periodic, 100);
    for (int step = 0; step < 10; ++step) {
        sim.bump(100);
        sim.service();
    }
    EXPECT_EQ(fired, 5);
}

TEST(EventQueueTest, EventBumpingTimeCascades)
{
    // An event handler advancing time makes later events due inside
    // the same service() call.
    Simulation sim;
    std::vector<int> order;
    CallbackEvent second("second", [&] { order.push_back(2); });
    CallbackEvent first("first", [&] {
        order.push_back(1);
        sim.bump(500);  // work done by the handler
    });
    sim.eventq().schedule(&first, 100);
    sim.eventq().schedule(&second, 400);
    sim.bump(100);
    sim.service();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, ClearDropsEverything)
{
    Simulation sim;
    int fired = 0;
    CallbackEvent e1("e1", [&] { ++fired; });
    CallbackEvent e2("e2", [&] { ++fired; });
    sim.eventq().schedule(&e1, 10);
    sim.eventq().schedule(&e2, 20);
    sim.eventq().clear();
    EXPECT_TRUE(sim.eventq().empty());
    sim.bump(100);
    sim.service();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, NextTickSkipsStaleEntries)
{
    Simulation sim;
    CallbackEvent e1("e1", [] {});
    CallbackEvent e2("e2", [] {});
    sim.eventq().schedule(&e1, 10);
    sim.eventq().schedule(&e2, 20);
    sim.eventq().deschedule(&e1);
    EXPECT_EQ(sim.eventq().nextTick(), 20u);
}

TEST(EventQueueTest, SizeAndEmptyCountLiveEntriesOnly)
{
    // Lazy deschedule leaves stale heap entries behind; size() and
    // empty() must report the live set, or callers polling "is
    // anything pending?" would spin on ghosts.
    Simulation sim;
    CallbackEvent e1("e1", [] {});
    CallbackEvent e2("e2", [] {});
    sim.eventq().schedule(&e1, 10);
    sim.eventq().schedule(&e2, 20);
    EXPECT_EQ(sim.eventq().size(), 2u);
    sim.eventq().deschedule(&e1);
    EXPECT_EQ(sim.eventq().size(), 1u);
    EXPECT_FALSE(sim.eventq().empty());
    // Deschedule + reschedule leaves a stale heap entry behind but
    // must not inflate the live count.
    sim.eventq().deschedule(&e2);
    sim.eventq().schedule(&e2, 30);
    EXPECT_EQ(sim.eventq().size(), 1u);
    sim.eventq().deschedule(&e2);
    EXPECT_TRUE(sim.eventq().empty());
    EXPECT_EQ(sim.eventq().size(), 0u);
}

TEST(EventQueueTest, EventDestroyedWhileScheduledLeavesNoGhost)
{
    // A per-core object (e.g. a kernel's pending IPI event) destroyed
    // at context switch or crash teardown must vanish from the queue:
    // popDue may never hand back a dangling Event*.
    Simulation sim;
    int fired = 0;
    {
        CallbackEvent doomed("doomed", [&] { ++fired; });
        sim.eventq().schedule(&doomed, 10);
        EXPECT_EQ(sim.eventq().size(), 1u);
    }
    EXPECT_TRUE(sim.eventq().empty());
    sim.bump(100);
    sim.service();
    EXPECT_EQ(fired, 0);
    // The queue is fully consistent for new work afterwards.
    CallbackEvent fresh("fresh", [&] { ++fired; });
    sim.eventq().schedule(&fresh, sim.now() + 1);
    sim.bump(10);
    sim.service();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, EventOutlivesItsDestroyedQueue)
{
    // The inverse teardown order: a crash destroys the Simulation
    // (and its queue) while component-owned events are still
    // scheduled.  Their destructors must not deschedule against the
    // dead queue.
    auto ev = std::make_unique<CallbackEvent>("orphan", [] {});
    {
        EventQueue q;
        q.schedule(ev.get(), 10);
        EXPECT_TRUE(ev->scheduled());
    }
    EXPECT_FALSE(ev->scheduled());
    ev.reset();  // must not touch the dead queue

    // And a queue that died with pending events fires none of them.
    CallbackEvent still("still", [] {});
    {
        EventQueue q;
        q.schedule(&still, 10);
    }
    EXPECT_FALSE(still.scheduled());
}

TEST(ClockDomainTest, Conversions)
{
    const auto clk = ClockDomain::fromMHz(3000);  // 3 GHz
    EXPECT_EQ(clk.period(), 333u);  // ps, truncated
    EXPECT_EQ(clk.cyclesToTicks(3), 999u);
    EXPECT_EQ(clk.ticksToCycles(999), 3u);
    EXPECT_EQ(clk.ticksToCycles(1000), 4u);  // rounds up
}

TEST(SimulationTest, BumpToOnlyMovesForward)
{
    Simulation sim;
    sim.bump(100);
    sim.bumpTo(50);
    EXPECT_EQ(sim.now(), 100u);
    sim.bumpTo(200);
    EXPECT_EQ(sim.now(), 200u);
}

} // namespace
} // namespace kindle::sim
