/**
 * @file
 * Self-profiler semantics: probe gating through the thread-local
 * registration, exclusive (self) time under nesting, and the
 * prof.* stat-group contract — present exactly when profiling was
 * requested, so default stat dumps stay deterministic.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "telemetry/profiler.hh"

namespace kindle::telemetry
{
namespace
{

/** Busy-wait so a scope accumulates real, bounded-below wall time. */
void
spinFor(std::uint64_t ns)
{
    const std::uint64_t until = hostNowNs() + ns;
    while (hostNowNs() < until) {
    }
}

TEST(ProfilerTest, ProbeWithoutProfilerIsInert)
{
    ASSERT_EQ(currentProfiler(), nullptr);
    // Must not crash or register anywhere; this is the default state
    // of every probe in the tree.
    for (int i = 0; i < 1000; ++i) {
        KINDLE_PROF_SCOPE(cache);
    }
    EXPECT_EQ(currentProfiler(), nullptr);
}

TEST(ProfilerTest, RecordsCallsAndTimePerCategory)
{
    Profiler prof;
    ProfilerScope scope(&prof);
    for (int i = 0; i < 100; ++i) {
        KINDLE_PROF_SCOPE(cache);
    }
    {
        KINDLE_PROF_SCOPE(redo);
        spinFor(100000);
    }
    EXPECT_EQ(prof.categoryCalls(ProfCat::cache), 100);
    EXPECT_EQ(prof.categoryCalls(ProfCat::redo), 1);
    EXPECT_GE(prof.categoryNs(ProfCat::redo), 100000);
    EXPECT_EQ(prof.categoryCalls(ProfCat::sched), 0);
    EXPECT_EQ(prof.totalNs(), prof.categoryNs(ProfCat::cache) +
                                  prof.categoryNs(ProfCat::redo));
}

TEST(ProfilerTest, NestedScopesChargeExclusiveTime)
{
    Profiler prof;
    ProfilerScope scope(&prof);
    {
        KINDLE_PROF_SCOPE(sched);
        {
            KINDLE_PROF_SCOPE(cache);
            spinFor(2000000);
        }
        // The outer scope does almost nothing itself: its self time
        // must exclude the child's 2 ms, not absorb it.
    }
    EXPECT_GE(prof.categoryNs(ProfCat::cache), 2000000);
    EXPECT_LT(prof.categoryNs(ProfCat::sched),
              prof.categoryNs(ProfCat::cache));
}

TEST(ProfilerTest, NullRegistrationShadowsOuterProfiler)
{
    Profiler prof;
    ProfilerScope outer(&prof);
    {
        // An unprofiled system on the same thread must not leak its
        // probe time into the outer system's stats.
        ProfilerScope inner(nullptr);
        KINDLE_PROF_SCOPE(cache);
    }
    EXPECT_EQ(prof.categoryCalls(ProfCat::cache), 0);
    {
        KINDLE_PROF_SCOPE(cache);
    }
    EXPECT_EQ(prof.categoryCalls(ProfCat::cache), 1);
}

TEST(ProfilerTest, PrintTableListsActiveCategoriesAndTotal)
{
    Profiler prof;
    ProfilerScope scope(&prof);
    {
        KINDLE_PROF_SCOPE(ckpt);
        spinFor(50000);
    }
    std::ostringstream os;
    prof.printTable(os);
    const std::string table = os.str();
    EXPECT_NE(table.find("prof: ckpt"), std::string::npos);
    EXPECT_NE(table.find("prof: total"), std::string::npos);
    // Never-entered categories are suppressed, not printed as zeros.
    EXPECT_EQ(table.find("prof: scrub"), std::string::npos);
}

TEST(ProfilerTest, ProfStatsExistOnlyWhenProfilingRequested)
{
    auto snapshot = [](bool profiling) {
        KindleConfig cfg;
        cfg.memory.dramBytes = 128 * oneMiB;
        cfg.memory.nvmBytes = 128 * oneMiB;
        cfg.profiling = profiling;
        // Arm the sampler so the event loop demonstrably dispatches
        // (a bare microbench run can schedule no events at all).
        cfg.telemetry.sampleInterval = 100 * oneUs;
        KindleSystem sys(cfg);
        sys.run(micro::seqAllocTouch(oneMiB), "prof");
        return sys.snapshotStats();
    };

    const auto plain = snapshot(false);
    EXPECT_FALSE(plain.has("prof.eventLoopNs"));
    EXPECT_FALSE(plain.has("prof.schedCalls"));

    const auto profiled = snapshot(true);
    ASSERT_TRUE(profiled.has("prof.eventLoopNs"));
    ASSERT_TRUE(profiled.has("prof.schedCalls"));
    // The run dispatched events and scheduler epochs, so the probes
    // must have fired.
    EXPECT_GT(profiled.get("prof.eventLoopCalls"), 0);
    EXPECT_GT(profiled.get("prof.schedCalls"), 0);
    EXPECT_GT(profiled.get("prof.cacheCalls"), 0);
}

} // namespace
} // namespace kindle::telemetry
