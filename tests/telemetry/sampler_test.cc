/**
 * @file
 * Sampler semantics against a hand-driven stat tree: rate channels as
 * non-negative per-interval deltas that sum back to the counter
 * totals (including Histogram ::count/::sum paths and the post-reset
 * clamp), level channels as instants, the decimation bound, and the
 * sampled-run determinism the sweep contract extends to TELEM_* files.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "sim/simulation.hh"
#include "telemetry/telemetry.hh"

namespace kindle::telemetry
{
namespace
{

/** A minimal machine: one stat group mutated tick by tick. */
struct Rig
{
    sim::Simulation sim;
    statistics::StatGroup root{"m", "sampler test rig"};
    statistics::Scalar &ops = root.addScalar("ops", "operations");
    statistics::Gauge &depth = root.addGauge("depth", "queue depth");
    statistics::Histogram &lat = root.addHistogram("lat", "latency");

    TelemetryParams
    params(Tick interval, std::size_t max_samples = 4096) const
    {
        TelemetryParams p;
        p.sampleInterval = interval;
        p.maxSamples = max_samples;
        return p;
    }

    Sampler
    makeSampler(Tick interval, std::size_t max_samples = 4096)
    {
        return Sampler(sim, params(interval, max_samples), [this] {
            return statistics::StatSnapshot::capture(root);
        });
    }

    /** Advance one tick, mutate via @p fn, then fire due events. */
    template <typename Fn>
    void
    step(Fn &&fn)
    {
        sim.bump(1);
        fn();
        sim.service();
    }
};

TEST(SamplerTest, RateDeltasAreNonNegativeAndSumToTotals)
{
    Rig rig;
    Sampler s = rig.makeSampler(10);
    s.addStatChannel("ops", Sampler::Kind::rate, "m.ops");
    s.addStatChannel("latCount", Sampler::Kind::rate, "m.lat::count");
    s.addStatChannel("latSum", Sampler::Kind::rate, "m.lat::sum");
    s.start();

    for (int i = 1; i <= 100; ++i) {
        rig.step([&] {
            rig.ops += i % 7;
            rig.lat.sample(i);
        });
    }

    ASSERT_EQ(s.samples().size(), 10u);
    double ops_sum = 0, count_sum = 0, lat_sum = 0;
    for (const Sampler::Sample &sample : s.samples()) {
        ASSERT_EQ(sample.values.size(), 3u);
        for (double v : sample.values)
            EXPECT_GE(v, 0);
        ops_sum += sample.values[0];
        count_sum += sample.values[1];
        lat_sum += sample.values[2];
    }
    // The run ends exactly on a sample tick, so the per-interval
    // deltas partition the whole run.
    EXPECT_EQ(ops_sum, rig.ops.value());
    EXPECT_EQ(count_sum, 100);
    EXPECT_EQ(lat_sum, rig.lat.sum());
}

TEST(SamplerTest, LevelChannelRecordsInstantAtSampleTick)
{
    Rig rig;
    Sampler s = rig.makeSampler(10);
    s.addStatChannel("depth", Sampler::Kind::level, "m.depth");
    s.start();

    for (int i = 1; i <= 40; ++i)
        rig.step([&] { rig.depth = i; });

    ASSERT_EQ(s.samples().size(), 4u);
    for (std::size_t j = 0; j < s.samples().size(); ++j) {
        // Gauge level at tick 10(j+1), not a delta and not an average.
        EXPECT_EQ(s.samples()[j].tick, Tick(10 * (j + 1)));
        EXPECT_EQ(s.samples()[j].values[0], 10.0 * (j + 1));
    }
}

TEST(SamplerTest, CallbackChannelAndMissingStatPath)
{
    Rig rig;
    double side_value = 0;
    Sampler s = rig.makeSampler(10);
    s.addCallbackChannel("side", Sampler::Kind::level,
                         [&] { return side_value; });
    // Lazily registered stats may be absent from early snapshots;
    // they must read as zero, not fail.
    s.addStatChannel("ghost", Sampler::Kind::rate, "m.notYet");
    s.start();

    for (int i = 1; i <= 20; ++i)
        rig.step([&] { side_value = i * 2; });

    ASSERT_EQ(s.samples().size(), 2u);
    EXPECT_EQ(s.samples()[0].values[0], 20);
    EXPECT_EQ(s.samples()[1].values[0], 40);
    EXPECT_EQ(s.samples()[0].values[1], 0);
    EXPECT_EQ(s.samples()[1].values[1], 0);
}

TEST(SamplerTest, CounterRestartClampsDeltaToRaw)
{
    Rig rig;
    Sampler s = rig.makeSampler(10);
    s.addStatChannel("ops", Sampler::Kind::rate, "m.ops");
    s.start();

    for (int i = 1; i <= 10; ++i)
        rig.step([&] { rig.ops += 5; });
    ASSERT_EQ(s.samples().size(), 1u);
    EXPECT_EQ(s.samples()[0].values[0], 50);

    // A crash/reboot resets stat trees: the next delta must clamp to
    // the restarted counter's raw value instead of going negative.
    rig.ops.reset();
    for (int i = 1; i <= 10; ++i)
        rig.step([&] { rig.ops += 1; });
    ASSERT_EQ(s.samples().size(), 2u);
    EXPECT_EQ(s.samples()[1].values[0], 10);
}

TEST(SamplerTest, DecimationBoundsSeriesAndPreservesRateSums)
{
    Rig rig;
    Sampler s = rig.makeSampler(10, /*max_samples=*/4);
    s.addStatChannel("ops", Sampler::Kind::rate, "m.ops");
    s.addStatChannel("depth", Sampler::Kind::level, "m.depth");
    s.start();

    for (int i = 1; i <= 640; ++i) {
        rig.step([&] {
            rig.ops += 1;
            rig.depth = i;
        });
    }

    ASSERT_LE(s.samples().size(), 4u);
    ASSERT_GE(s.samples().size(), 2u);
    EXPECT_GT(s.effectiveInterval(), Tick(10));

    // Merging pairs adds rates, so deltas still sum to the counter's
    // value at the last recorded tick (one op per tick here); merged
    // levels keep the later instant, so depth equals its sample tick.
    double ops_sum = 0;
    for (const Sampler::Sample &sample : s.samples()) {
        ops_sum += sample.values[0];
        EXPECT_EQ(sample.values[1],
                  static_cast<double>(sample.tick));
    }
    EXPECT_EQ(ops_sum, static_cast<double>(s.samples().back().tick));
}

TEST(SamplerTest, ExportFormatsMatchChannels)
{
    Rig rig;
    Sampler s = rig.makeSampler(10);
    s.addStatChannel("ops", Sampler::Kind::rate, "m.ops");
    s.addStatChannel("depth", Sampler::Kind::level, "m.depth");
    s.start();
    for (int i = 1; i <= 20; ++i)
        rig.step([&] { rig.ops += 2; });

    std::ostringstream json;
    s.writeJson(json);
    EXPECT_NE(json.str().find("\"channels\""), std::string::npos);
    EXPECT_NE(json.str().find("\"samples\""), std::string::npos);
    EXPECT_NE(json.str().find("\"ops\""), std::string::npos);

    std::ostringstream csv;
    s.writeCsv(csv);
    EXPECT_EQ(csv.str().rfind("tick,ops,depth\n", 0), 0u);
}

/** Telemetry export of a sampled run, as the runner would write it. */
std::string
sampledRun(unsigned cores)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 128 * oneMiB;
    cfg.numCores = cores;
    cfg.telemetry.sampleInterval = 100 * oneUs;
    KindleSystem sys(cfg);
    sys.run(micro::seqAllocTouch(4 * oneMiB), "telem");
    std::ostringstream os;
    sys.writeTelemetry(os);
    return os.str();
}

TEST(SamplerTest, SampledRunsAreDeterministicSingleCore)
{
    const std::string first = sampledRun(1);
    EXPECT_NE(first.find("\"samples\""), std::string::npos);
    EXPECT_EQ(first, sampledRun(1));
}

TEST(SamplerTest, SampledRunsAreDeterministicFourCores)
{
    const std::string first = sampledRun(4);
    EXPECT_NE(first.find("\"samples\""), std::string::npos);
    EXPECT_EQ(first, sampledRun(4));
}

} // namespace
} // namespace kindle::telemetry
