#include <gtest/gtest.h>

#include "persist/saved_state.hh"

namespace kindle::persist
{
namespace
{

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 64 * oneMiB;
              p.nvmBytes = 256 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          kmem(sim, memory, hier),
          layout(os::NvmLayout::standard(memory.nvmRange()))
    {}

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    os::KernelMem kmem;
    os::NvmLayout layout;
};

SavedContext
sampleContext()
{
    SavedContext ctx;
    ctx.regs.rip = 0x1234;
    ctx.regs.gpr[3] = 99;
    ctx.vmaCount = 2;
    ctx.vmas[0] = {0x1000, 0x3000, 3, 1, 7, 0};
    ctx.vmas[1] = {0x10000, 0x20000, 1, 0, 8, 0};
    return ctx;
}

TEST(SavedStateTest, HeaderRoundTripSurvivesCrash)
{
    Rig rig;
    {
        SavedStateSlot slot(rig.kmem, rig.layout, 3);
        slot.initialize(42, "myproc", PtScheme::rebuild);
    }
    rig.memory.crash();
    SavedStateSlot slot(rig.kmem, rig.layout, 3);
    const SlotHeader hdr = slot.readHeader();
    EXPECT_TRUE(hdr.valid);
    EXPECT_EQ(hdr.pid, 42u);
    EXPECT_STREQ(hdr.name, "myproc");
    EXPECT_EQ(hdr.scheme,
              static_cast<std::uint32_t>(PtScheme::rebuild));
}

TEST(SavedStateTest, UncommittedWorkingCopyIsInvisible)
{
    Rig rig;
    SavedStateSlot slot(rig.kmem, rig.layout, 0);
    slot.initialize(1, "p", PtScheme::rebuild);

    SavedContext first = sampleContext();
    slot.writeWorkingContext(first);
    slot.commit();  // consistent = first

    SavedContext second = sampleContext();
    second.regs.rip = 0x9999;
    slot.writeWorkingContext(second);
    // NO commit: a crash now must still see `first`.

    rig.memory.crash();
    SavedStateSlot fresh(rig.kmem, rig.layout, 0);
    const SlotHeader hdr = fresh.readHeader();
    const SavedContext got = fresh.readConsistentContext(hdr);
    EXPECT_EQ(got.regs.rip, 0x1234u);
}

TEST(SavedStateTest, CommitFlipsAtomically)
{
    Rig rig;
    SavedStateSlot slot(rig.kmem, rig.layout, 0);
    slot.initialize(1, "p", PtScheme::rebuild);
    SavedContext a = sampleContext();
    slot.writeWorkingContext(a);
    slot.commit();
    SavedContext b = sampleContext();
    b.regs.rip = 0x5678;
    slot.writeWorkingContext(b);
    slot.commit();

    rig.memory.crash();
    SavedStateSlot fresh(rig.kmem, rig.layout, 0);
    const SlotHeader hdr = fresh.readHeader();
    EXPECT_EQ(fresh.readConsistentContext(hdr).regs.rip, 0x5678u);
}

TEST(SavedStateTest, ContextCarriesVmas)
{
    Rig rig;
    SavedStateSlot slot(rig.kmem, rig.layout, 1);
    slot.initialize(2, "q", PtScheme::persistent);
    slot.writeWorkingContext(sampleContext());
    slot.commit();

    rig.memory.crash();
    SavedStateSlot fresh(rig.kmem, rig.layout, 1);
    const auto ctx =
        fresh.readConsistentContext(fresh.readHeader());
    ASSERT_EQ(ctx.vmaCount, 2u);
    EXPECT_EQ(ctx.vmas[0].start, 0x1000u);
    EXPECT_EQ(ctx.vmas[0].nvm, 1u);
    EXPECT_EQ(ctx.vmas[1].areaId, 8u);
}

TEST(SavedStateTest, MappingListRoundTrip)
{
    Rig rig;
    SavedStateSlot slot(rig.kmem, rig.layout, 2);
    slot.initialize(3, "r", PtScheme::rebuild);
    for (std::uint64_t i = 0; i < 100; ++i)
        slot.writeMappingEntry(i, {i, i + 5000});
    slot.finalizeMappingList(100);

    rig.memory.crash();
    SavedStateSlot fresh(rig.kmem, rig.layout, 2);
    const auto list = fresh.readMappingList(fresh.readHeader());
    ASSERT_EQ(list.size(), 100u);
    EXPECT_EQ(list[42].vpn, 42u);
    EXPECT_EQ(list[42].pfn, 5042u);
}

TEST(SavedStateTest, InvalidateKillsSlot)
{
    Rig rig;
    SavedStateSlot slot(rig.kmem, rig.layout, 4);
    slot.initialize(9, "dead", PtScheme::rebuild);
    slot.invalidate();
    rig.memory.crash();
    SavedStateSlot fresh(rig.kmem, rig.layout, 4);
    EXPECT_FALSE(fresh.readHeader().valid);
}

TEST(SavedStateTest, UninitializedSlotReadsInvalid)
{
    Rig rig;
    SavedStateSlot slot(rig.kmem, rig.layout, 7);
    EXPECT_FALSE(slot.readHeader().valid);
}

TEST(SavedStateTest, SnapshotCapturesProcessLayout)
{
    Rig rig;
    os::Process proc(5, "snap", 0);
    os::Vma vma;
    vma.range = AddrRange(0x7000, 0x9000);
    vma.nvm = true;
    vma.areaId = 3;
    proc.aspace.insert(vma);
    proc.faseActive = true;

    cpu::CpuState regs;
    regs.rip = 0xabcd;
    const SavedContext ctx = SavedStateSlot::snapshot(proc, regs);
    EXPECT_EQ(ctx.regs.rip, 0xabcdu);
    EXPECT_EQ(ctx.vmaCount, 1u);
    EXPECT_EQ(ctx.vmas[0].start, 0x7000u);
    EXPECT_EQ(ctx.faseActive, 1u);

    // Restore into a fresh process: layouts must match.
    os::Process clone(6, "clone", 1);
    SavedStateSlot::restoreAspace(clone, ctx);
    EXPECT_TRUE(clone.aspace == proc.aspace);
    EXPECT_TRUE(clone.faseActive);
}

TEST(SavedStateTest, VerifyHeaderClassifiesDamage)
{
    Rig rig;
    SavedStateSlot slot(rig.kmem, rig.layout, 0);
    slot.initialize(7, "probe", PtScheme::rebuild);
    const SlotHeader hdr = slot.readHeader();
    EXPECT_EQ(SavedStateSlot::verifyHeader(hdr), ImageStatus::ok);

    EXPECT_EQ(SavedStateSlot::verifyHeader(SlotHeader{}),
              ImageStatus::empty);

    SlotHeader scribbled = hdr;
    scribbled.pid ^= 0x5a;  // any bit flip breaks the checksum
    EXPECT_EQ(SavedStateSlot::verifyHeader(scribbled),
              ImageStatus::badChecksum);
}

TEST(SavedStateTest, QuarantineIsDurableAcrossAnotherCrash)
{
    Rig rig;
    {
        SavedStateSlot slot(rig.kmem, rig.layout, 2);
        slot.initialize(9, "victim", PtScheme::rebuild);
        slot.quarantine();
    }
    rig.memory.crash();

    // A second reboot must still see the fence, not retry the slot.
    SavedStateSlot slot(rig.kmem, rig.layout, 2);
    EXPECT_EQ(SavedStateSlot::verifyHeader(slot.readHeader()),
              ImageStatus::quarantined);
}

TEST(SavedStateTest, CorruptConsistentContextIsClassified)
{
    Rig rig;
    SavedStateSlot slot(rig.kmem, rig.layout, 1);
    slot.initialize(5, "ctx", PtScheme::rebuild);
    slot.writeWorkingContext(sampleContext());
    slot.commit();
    const SlotHeader hdr = slot.readHeader();

    // The consistent copy's durable address (contextOffset[] in
    // saved_state.cc: 256 and 8192 bytes into the slot).
    const Addr consistent =
        rig.layout.slotAddr(1) + (hdr.consistentIdx ? 8192 : 256);

    // Flip a payload byte: the context no longer checksums.
    const std::uint8_t junk = 0xa5;
    rig.memory.writeDataDurable(
        consistent + offsetof(SavedContext, vmas), &junk, 1);
    SavedContext out;
    EXPECT_EQ(slot.readConsistentContext(hdr, out),
              ImageStatus::badChecksum);

    // An absurd embedded count classifies before any checksum math
    // touches out-of-range bytes.
    const std::uint32_t huge = 10000;
    rig.memory.writeDataDurable(
        consistent + offsetof(SavedContext, vmaCount), &huge,
        sizeof(huge));
    EXPECT_EQ(slot.readConsistentContext(hdr, out),
              ImageStatus::badCount);

    // The strict wrapper refuses the image outright.
    setErrorsThrow(true);
    EXPECT_THROW(slot.readConsistentContext(hdr), SimError);
    setErrorsThrow(false);
}

TEST(SavedStateTest, MappingListBadCountIsClassified)
{
    Rig rig;
    SavedStateSlot slot(rig.kmem, rig.layout, 4);
    slot.initialize(8, "maps", PtScheme::rebuild);
    SlotHeader hdr = slot.readHeader();
    hdr.mappingCount = slot.maxMappingEntries() + 1;
    std::vector<MappingEntry> out;
    EXPECT_EQ(slot.readMappingList(hdr, out), ImageStatus::badCount);
}

TEST(SavedStateTest, DurableWritesChargeTime)
{
    Rig rig;
    SavedStateSlot slot(rig.kmem, rig.layout, 5);
    const Tick t0 = rig.sim.now();
    slot.initialize(1, "t", PtScheme::rebuild);
    slot.writeWorkingContext(sampleContext());
    slot.commit();
    EXPECT_GT(rig.sim.now(), t0);
}

} // namespace
} // namespace kindle::persist
