#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "os/nvm_layout.hh"
#include "persist/redo_log.hh"

namespace kindle::persist
{
namespace
{

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 64 * oneMiB;
              p.nvmBytes = 128 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          kmem(sim, memory, hier),
          layout(os::NvmLayout::standard(memory.nvmRange()))
    {}

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    os::KernelMem kmem;
    os::NvmLayout layout;
};

TEST(RedoLogTest, AppendAndReplay)
{
    Rig rig;
    RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    for (std::uint32_t i = 0; i < 5; ++i) {
        RedoRecord rec;
        rec.type = RedoType::vmaAdded;
        rec.pid = i;
        rec.a = i * 100;
        log.append(rec);
    }
    EXPECT_EQ(log.pending(), 5u);

    std::vector<std::uint64_t> seen;
    log.replay([&](const RedoRecord &r) { seen.push_back(r.a); });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 100, 200, 300,
                                                400}));
}

TEST(RedoLogTest, AppendChargesSimTime)
{
    Rig rig;
    RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    const Tick t0 = rig.sim.now();
    log.append(RedoRecord{});
    EXPECT_GT(rig.sim.now(), t0);
}

TEST(RedoLogTest, ResetTruncates)
{
    Rig rig;
    RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    log.append(RedoRecord{});
    log.reset();
    EXPECT_EQ(log.pending(), 0u);
    int replayed = 0;
    log.replay([&](const RedoRecord &) { ++replayed; });
    EXPECT_EQ(replayed, 0);
}

TEST(RedoLogTest, RecordsAreDurableImmediately)
{
    Rig rig;
    {
        RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
        RedoRecord rec;
        rec.type = RedoType::processCreated;
        rec.pid = 7;
        log.append(rec);
    }
    rig.memory.crash();

    RedoLog fresh(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    const auto records = fresh.recoverRecords();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].type, RedoType::processCreated);
    EXPECT_EQ(records[0].pid, 7u);
}

TEST(RedoLogTest, RecoveryIgnoresRecordsFromOlderEpochs)
{
    Rig rig;
    {
        RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
        log.append(RedoRecord{});
        log.append(RedoRecord{});
        log.reset();  // epoch bump
        RedoRecord rec;
        rec.type = RedoType::cpuState;
        log.append(rec);
    }
    rig.memory.crash();

    RedoLog fresh(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    const auto records = fresh.recoverRecords();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].type, RedoType::cpuState);
}

TEST(RedoLogTest, AppendsContinueAfterRecovery)
{
    Rig rig;
    {
        RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
        log.append(RedoRecord{});
    }
    rig.memory.crash();
    RedoLog fresh(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    fresh.recoverRecords();
    fresh.append(RedoRecord{});
    EXPECT_EQ(fresh.pending(), 2u);
}

TEST(RedoLogTest, RecoverScanTruncatesAtACorruptTailRecord)
{
    Rig rig;
    {
        RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
        for (std::uint32_t i = 0; i < 5; ++i) {
            RedoRecord rec;
            rec.type = RedoType::vmaAdded;
            rec.pid = i;
            log.append(rec);
        }
    }
    rig.memory.crash();

    // Scribble over record 3's payload — a torn append: magic and
    // epoch still match but the record no longer checksums.
    const Addr rec3_payload =
        rig.layout.redoLog + lineSize + 3 * sizeof(RedoRecord) + 24;
    const std::uint64_t junk = 0xdeadbeefdeadbeefull;
    rig.memory.writeDataDurable(rec3_payload, &junk, sizeof(junk));

    const RedoScan scan =
        RedoLog::audit(rig.kmem, rig.layout.redoLog, oneMiB);
    EXPECT_FALSE(scan.headerCorrupt);
    EXPECT_TRUE(scan.truncatedTail);
    ASSERT_EQ(scan.records.size(), 3u);  // the valid prefix survives
    for (std::uint32_t i = 0; i < 3; ++i)
        EXPECT_EQ(scan.records[i].pid, i);

    // recoverScan agrees and leaves the log positioned to append
    // after the surviving prefix.
    RedoLog fresh(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    const RedoScan rescan = fresh.recoverScan();
    EXPECT_TRUE(rescan.truncatedTail);
    EXPECT_EQ(rescan.records.size(), 3u);
    EXPECT_EQ(fresh.pending(), 3u);
}

TEST(RedoLogTest, RecoverScanReportsACorruptHeader)
{
    Rig rig;
    {
        RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
        log.append(RedoRecord{});
    }
    rig.memory.crash();

    const std::uint64_t junk = 0x6a756e6b6a756e6bull;
    rig.memory.writeDataDurable(rig.layout.redoLog, &junk,
                                sizeof(junk));

    const RedoScan scan =
        RedoLog::audit(rig.kmem, rig.layout.redoLog, oneMiB);
    EXPECT_TRUE(scan.headerCorrupt);
    EXPECT_TRUE(scan.records.empty());

    // The legacy strict path refuses a corrupt header outright.
    RedoLog fresh(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    rig.memory.writeDataDurable(rig.layout.redoLog, &junk,
                                sizeof(junk));
    setErrorsThrow(true);
    EXPECT_THROW(fresh.recoverRecords(), SimError);
    setErrorsThrow(false);
}

TEST(RedoLogTest, WrapAroundIsCountedNotFatal)
{
    Rig rig;
    // Tiny region: header + 4 records.
    RedoLog log(rig.kmem, rig.layout.redoLog, 5 * 64, "log");
    EXPECT_EQ(log.capacityRecords(), 4u);
    for (int i = 0; i < 6; ++i)
        log.append(RedoRecord{});
    EXPECT_EQ(log.stats().scalarValue("wraps"), 1);
    // Two post-wrap appends landed on slots replay can no longer see.
    EXPECT_EQ(log.wrapDestroyedRecords(), 2u);
    EXPECT_EQ(log.stats().scalarValue("wrapDestroyed"), 2);
    // reset() re-opens the full window: subsequent appends are whole
    // again and the destruction counter stops climbing.
    log.reset();
    log.append(RedoRecord{});
    EXPECT_EQ(log.wrapDestroyedRecords(), 2u);
}

TEST(RedoLogTest, WrapDestroyedStatAbsentUntilFirstWrap)
{
    Rig rig;
    RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    log.append(RedoRecord{});
    // Lazily registered: a run that never wraps exports no stat, so
    // default-config figure output stays byte-identical.
    EXPECT_FALSE(log.stats().hasScalar("wrapDestroyed"));
}

TEST(RedoLogTest, CrashAtPreWrapSalvagesTheFullConsistentPrefix)
{
    Rig rig;

    // Arm power loss on the wrap itself: the append that would fold
    // the tail forward dies *before* overwriting slot 0.
    fault::FaultPlan plan;
    plan.site = "redo.pre_wrap";
    fault::CrashInjector injector(
        plan, [&rig] { return rig.sim.now(); });
    fault::InjectorScope scope(&injector);
    injector.activate();

    {
        RedoLog log(rig.kmem, rig.layout.redoLog, 5 * 64, "log");
        for (std::uint32_t i = 0; i < 4; ++i) {
            RedoRecord rec;
            rec.type = RedoType::vmaAdded;
            rec.pid = i;
            log.append(rec);
        }
        // The fifth append trips the wrap path and the lights go out.
        RedoRecord doomed;
        doomed.type = RedoType::cpuState;
        EXPECT_THROW(log.append(doomed), fault::PowerLoss);
        EXPECT_EQ(log.stats().scalarValue("wraps"), 0);
    }
    rig.memory.crash();

    // Every record durable before the wrap survives as a consistent
    // prefix: the log is full, uncorrupted, and in append order.
    const RedoScan scan =
        RedoLog::audit(rig.kmem, rig.layout.redoLog, 5 * 64);
    EXPECT_FALSE(scan.headerCorrupt);
    EXPECT_FALSE(scan.truncatedTail);
    ASSERT_EQ(scan.records.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(scan.records[i].pid, i);
        EXPECT_EQ(scan.records[i].type, RedoType::vmaAdded);
    }

    // A recovering log adopts the salvaged prefix and keeps going.
    injector.deactivate();
    RedoLog fresh(rig.kmem, rig.layout.redoLog, 5 * 64, "log");
    const RedoScan rescan = fresh.recoverScan();
    EXPECT_EQ(rescan.records.size(), 4u);
    EXPECT_EQ(fresh.pending(), 4u);
    fresh.reset();
    fresh.append(RedoRecord{});
    EXPECT_EQ(fresh.pending(), 1u);
}

} // namespace
} // namespace kindle::persist
