#include <gtest/gtest.h>

#include "os/nvm_layout.hh"
#include "persist/redo_log.hh"

namespace kindle::persist
{
namespace
{

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 64 * oneMiB;
              p.nvmBytes = 128 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          kmem(sim, memory, hier),
          layout(os::NvmLayout::standard(memory.nvmRange()))
    {}

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    os::KernelMem kmem;
    os::NvmLayout layout;
};

TEST(RedoLogTest, AppendAndReplay)
{
    Rig rig;
    RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    for (std::uint32_t i = 0; i < 5; ++i) {
        RedoRecord rec;
        rec.type = RedoType::vmaAdded;
        rec.pid = i;
        rec.a = i * 100;
        log.append(rec);
    }
    EXPECT_EQ(log.pending(), 5u);

    std::vector<std::uint64_t> seen;
    log.replay([&](const RedoRecord &r) { seen.push_back(r.a); });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 100, 200, 300,
                                                400}));
}

TEST(RedoLogTest, AppendChargesSimTime)
{
    Rig rig;
    RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    const Tick t0 = rig.sim.now();
    log.append(RedoRecord{});
    EXPECT_GT(rig.sim.now(), t0);
}

TEST(RedoLogTest, ResetTruncates)
{
    Rig rig;
    RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    log.append(RedoRecord{});
    log.reset();
    EXPECT_EQ(log.pending(), 0u);
    int replayed = 0;
    log.replay([&](const RedoRecord &) { ++replayed; });
    EXPECT_EQ(replayed, 0);
}

TEST(RedoLogTest, RecordsAreDurableImmediately)
{
    Rig rig;
    {
        RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
        RedoRecord rec;
        rec.type = RedoType::processCreated;
        rec.pid = 7;
        log.append(rec);
    }
    rig.memory.crash();

    RedoLog fresh(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    const auto records = fresh.recoverRecords();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].type, RedoType::processCreated);
    EXPECT_EQ(records[0].pid, 7u);
}

TEST(RedoLogTest, RecoveryIgnoresRecordsFromOlderEpochs)
{
    Rig rig;
    {
        RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
        log.append(RedoRecord{});
        log.append(RedoRecord{});
        log.reset();  // epoch bump
        RedoRecord rec;
        rec.type = RedoType::cpuState;
        log.append(rec);
    }
    rig.memory.crash();

    RedoLog fresh(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    const auto records = fresh.recoverRecords();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].type, RedoType::cpuState);
}

TEST(RedoLogTest, AppendsContinueAfterRecovery)
{
    Rig rig;
    {
        RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
        log.append(RedoRecord{});
    }
    rig.memory.crash();
    RedoLog fresh(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    fresh.recoverRecords();
    fresh.append(RedoRecord{});
    EXPECT_EQ(fresh.pending(), 2u);
}

TEST(RedoLogTest, RecoverScanTruncatesAtACorruptTailRecord)
{
    Rig rig;
    {
        RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
        for (std::uint32_t i = 0; i < 5; ++i) {
            RedoRecord rec;
            rec.type = RedoType::vmaAdded;
            rec.pid = i;
            log.append(rec);
        }
    }
    rig.memory.crash();

    // Scribble over record 3's payload — a torn append: magic and
    // epoch still match but the record no longer checksums.
    const Addr rec3_payload =
        rig.layout.redoLog + lineSize + 3 * sizeof(RedoRecord) + 24;
    const std::uint64_t junk = 0xdeadbeefdeadbeefull;
    rig.memory.writeDataDurable(rec3_payload, &junk, sizeof(junk));

    const RedoScan scan =
        RedoLog::audit(rig.kmem, rig.layout.redoLog, oneMiB);
    EXPECT_FALSE(scan.headerCorrupt);
    EXPECT_TRUE(scan.truncatedTail);
    ASSERT_EQ(scan.records.size(), 3u);  // the valid prefix survives
    for (std::uint32_t i = 0; i < 3; ++i)
        EXPECT_EQ(scan.records[i].pid, i);

    // recoverScan agrees and leaves the log positioned to append
    // after the surviving prefix.
    RedoLog fresh(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    const RedoScan rescan = fresh.recoverScan();
    EXPECT_TRUE(rescan.truncatedTail);
    EXPECT_EQ(rescan.records.size(), 3u);
    EXPECT_EQ(fresh.pending(), 3u);
}

TEST(RedoLogTest, RecoverScanReportsACorruptHeader)
{
    Rig rig;
    {
        RedoLog log(rig.kmem, rig.layout.redoLog, oneMiB, "log");
        log.append(RedoRecord{});
    }
    rig.memory.crash();

    const std::uint64_t junk = 0x6a756e6b6a756e6bull;
    rig.memory.writeDataDurable(rig.layout.redoLog, &junk,
                                sizeof(junk));

    const RedoScan scan =
        RedoLog::audit(rig.kmem, rig.layout.redoLog, oneMiB);
    EXPECT_TRUE(scan.headerCorrupt);
    EXPECT_TRUE(scan.records.empty());

    // The legacy strict path refuses a corrupt header outright.
    RedoLog fresh(rig.kmem, rig.layout.redoLog, oneMiB, "log");
    rig.memory.writeDataDurable(rig.layout.redoLog, &junk,
                                sizeof(junk));
    setErrorsThrow(true);
    EXPECT_THROW(fresh.recoverRecords(), SimError);
    setErrorsThrow(false);
}

TEST(RedoLogTest, WrapAroundIsCountedNotFatal)
{
    Rig rig;
    // Tiny region: header + 4 records.
    RedoLog log(rig.kmem, rig.layout.redoLog, 5 * 64, "log");
    EXPECT_EQ(log.capacityRecords(), 4u);
    for (int i = 0; i < 6; ++i)
        log.append(RedoRecord{});
    EXPECT_EQ(log.stats().scalarValue("wraps"), 1);
}

} // namespace
} // namespace kindle::persist
