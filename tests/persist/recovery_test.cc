#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace kindle::persist
{
namespace
{

KindleConfig
configWith(PtScheme scheme)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    cfg.persistence = PersistParams{scheme, oneMs};
    return cfg;
}

/** Map pages, checkpoint, crash — common setup. */
struct CrashRig
{
    explicit CrashRig(PtScheme scheme)
        : sys(configWith(scheme))
    {
        os::Process &proc = sys.kernel().spawnShell("victim", 0);
        pid = proc.pid;
        const Addr a = sys.kernel().sysMmap(
            proc, 0, 32 * pageSize, cpu::mapNvm);
        vaddr = a;
        // Fault pages in by hand (no program attached).
        sys.core(0).setContext(proc.pid, proc.ptRoot);
        for (unsigned i = 0; i < 32; ++i) {
            const Addr frame = sys.kernel().nvmAllocator().alloc();
            sys.kernel().pageTables().map(proc.ptRoot,
                                          a + i * pageSize, frame,
                                          true, true);
            frames.push_back(frame);
        }
        proc.context.rip = 0x4242;
        proc.context.gpr[7] = 1234;
        sys.persistence()->checkpointNow();
    }

    KindleSystem sys;
    Pid pid = 0;
    Addr vaddr = 0;
    std::vector<Addr> frames;
};

TEST(RecoveryTest, RebuildSchemeRestoresProcess)
{
    CrashRig rig(PtScheme::rebuild);
    rig.sys.crash();
    const RecoveryReport report = rig.sys.reboot();

    EXPECT_EQ(report.processesRecovered, 1u);
    EXPECT_EQ(report.mappingsRestored, 32u);

    os::Process *proc = rig.sys.kernel().findProcess(1);
    ASSERT_NE(proc, nullptr);
    EXPECT_TRUE(proc->restored);
    EXPECT_EQ(proc->context.rip, 0x4242u);
    EXPECT_EQ(proc->context.gpr[7], 1234u);
    EXPECT_EQ(proc->aspace.mappedBytes(), 32 * pageSize);

    // The rebuilt page table reproduces the exact frame mapping.
    for (unsigned i = 0; i < 32; ++i) {
        const auto leaf = rig.sys.kernel().pageTables().readLeaf(
            proc->ptRoot, rig.vaddr + i * pageSize);
        ASSERT_TRUE(leaf.present()) << i;
        EXPECT_EQ(leaf.frameAddr(), rig.frames[i]) << i;
        EXPECT_TRUE(leaf.nvmBacked());
    }
}

TEST(RecoveryTest, PersistentSchemeAdoptsNvmPageTable)
{
    CrashRig rig(PtScheme::persistent);
    rig.sys.crash();
    const RecoveryReport report = rig.sys.reboot();

    EXPECT_EQ(report.processesRecovered, 1u);
    EXPECT_EQ(report.mappingsRestored, 0u);  // nothing to rebuild

    os::Process *proc = rig.sys.kernel().findProcess(1);
    ASSERT_NE(proc, nullptr);
    for (unsigned i = 0; i < 32; ++i) {
        const auto leaf = rig.sys.kernel().pageTables().readLeaf(
            proc->ptRoot, rig.vaddr + i * pageSize);
        ASSERT_TRUE(leaf.present()) << i;
        EXPECT_EQ(leaf.frameAddr(), rig.frames[i]) << i;
    }
}

TEST(RecoveryTest, AllocatorStateSurvives)
{
    CrashRig rig(PtScheme::rebuild);
    rig.sys.crash();
    rig.sys.reboot();
    // All 32 data frames are still accounted as allocated.
    for (const Addr f : rig.frames)
        EXPECT_TRUE(rig.sys.kernel().nvmAllocator().isAllocated(f));
}

TEST(RecoveryTest, PostCheckpointAllocationsAreReclaimed)
{
    CrashRig rig(PtScheme::rebuild);
    // Allocate frames AFTER the checkpoint: reachable from nothing.
    std::vector<Addr> leaked;
    for (int i = 0; i < 5; ++i)
        leaked.push_back(rig.sys.kernel().nvmAllocator().alloc());

    rig.sys.crash();
    const RecoveryReport report = rig.sys.reboot();
    EXPECT_GE(report.framesReclaimed, 5u);
    for (const Addr f : leaked)
        EXPECT_FALSE(rig.sys.kernel().nvmAllocator().isAllocated(f));
}

TEST(RecoveryTest, ChangesAfterLastCheckpointAreLost)
{
    CrashRig rig(PtScheme::rebuild);
    // Mutate after the checkpoint; no further checkpoint runs.
    os::Process *proc = rig.sys.kernel().findProcess(rig.pid);
    proc->context.rip = 0x9999;
    rig.sys.kernel().sysMmap(*proc, 0, 8 * pageSize, cpu::mapNvm);

    rig.sys.crash();
    rig.sys.reboot();
    os::Process *back = rig.sys.kernel().findProcess(1);
    EXPECT_EQ(back->context.rip, 0x4242u);  // pre-crash consistent
    EXPECT_EQ(back->aspace.mappedBytes(), 32 * pageSize);
}

TEST(RecoveryTest, ExitedProcessIsNotResurrected)
{
    KindleSystem sys(configWith(PtScheme::rebuild));
    sys.run(micro::seqAllocTouch(16 * pageSize), "gone");
    sys.crash();
    const auto report = sys.reboot();
    EXPECT_EQ(report.processesRecovered, 0u);
}

os::Process *
rigFind(KindleSystem &sys, const std::string &name)
{
    for (const auto &p : sys.kernel().processes())
        if (p->name == name)
            return p.get();
    return nullptr;
}

TEST(RecoveryTest, MultipleProcessesRecoverIndependently)
{
    KindleSystem sys(configWith(PtScheme::rebuild));
    for (int p = 0; p < 3; ++p) {
        os::Process &proc = sys.kernel().spawnShell(
            "proc" + std::to_string(p), unsigned(p));
        const Addr a = sys.kernel().sysMmap(
            proc, 0, (p + 1) * 4 * pageSize, cpu::mapNvm);
        sys.core(0).setContext(proc.pid, proc.ptRoot);
        for (int i = 0; i < (p + 1) * 4; ++i) {
            const Addr frame = sys.kernel().nvmAllocator().alloc();
            sys.kernel().pageTables().map(
                proc.ptRoot, a + Addr(i) * pageSize, frame, true,
                true);
        }
        proc.context.rip = 0x1000 + p;
    }
    sys.persistence()->checkpointNow();
    sys.crash();
    const auto report = sys.reboot();
    EXPECT_EQ(report.processesRecovered, 3u);
    EXPECT_EQ(report.mappingsRestored, 4u + 8u + 12u);
    for (int p = 0; p < 3; ++p) {
        os::Process *proc =
            rigFind(sys, "proc" + std::to_string(p));
        ASSERT_NE(proc, nullptr);
        EXPECT_EQ(proc->context.rip, 0x1000u + p);
    }
}

TEST(RecoveryTest, RecoveryChargesSimulatedTime)
{
    CrashRig rig(PtScheme::rebuild);
    rig.sys.crash();
    const auto report = rig.sys.reboot();
    EXPECT_GT(report.recoveryTicks, 0u);
}

} // namespace
} // namespace kindle::persist
