#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace kindle::persist
{
namespace
{

KindleConfig
configWith(PtScheme scheme, Tick interval = 10 * oneMs)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    cfg.persistence = PersistParams{scheme, interval};
    return cfg;
}

TEST(CheckpointTest, PeriodicCheckpointsFire)
{
    KindleSystem sys(configWith(PtScheme::rebuild, oneMs));
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 64 * pageSize, true);
    b.touchPages(micro::scriptBase, 64 * pageSize);
    for (int i = 0; i < 50; ++i)
        b.compute(1000000);  // ~0.3 ms each
    b.exit();
    sys.run(b.build(), "worker");
    EXPECT_GT(sys.persistence()->checkpointsTaken(), 5u);
}

TEST(CheckpointTest, RebuildSchemeWritesMappingEntries)
{
    KindleSystem sys(configWith(PtScheme::rebuild, oneMs));
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 64 * pageSize, true);
    b.touchPages(micro::scriptBase, 64 * pageSize);
    for (int i = 0; i < 30; ++i)
        b.compute(1000000);
    b.exit();
    sys.run(b.build(), "worker");
    EXPECT_GT(sys.persistence()->stats().scalarValue("mappingEntries"),
              63);
}

TEST(CheckpointTest, PersistentSchemeWrapsPtStores)
{
    KindleSystem sys(configWith(PtScheme::persistent, oneMs));
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 64 * pageSize, true);
    b.touchPages(micro::scriptBase, 64 * pageSize);
    b.exit();
    sys.run(b.build(), "worker");
    // Every PTE store (≥ 64 leaf stores) went through the
    // consistency-wrapped policy.
    EXPECT_GE(sys.persistence()->stats().scalarValue(
                  "ptConsistency.wrappedStores"),
              64);
}

TEST(CheckpointTest, PersistentSchemeWritesNoMappingEntries)
{
    KindleSystem sys(configWith(PtScheme::persistent, oneMs));
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 16 * pageSize, true);
    b.touchPages(micro::scriptBase, 16 * pageSize);
    for (int i = 0; i < 20; ++i)
        b.compute(1000000);
    b.exit();
    sys.run(b.build(), "worker");
    EXPECT_GT(sys.persistence()->checkpointsTaken(), 0u);
    EXPECT_EQ(sys.persistence()->stats().scalarValue("mappingEntries"),
              0);
}

TEST(CheckpointTest, MetadataMutationsAppendRedoRecords)
{
    KindleSystem sys(configWith(PtScheme::rebuild, oneSec));
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 4 * pageSize, true);
    b.munmap(micro::scriptBase, 4 * pageSize);
    b.mmapFixed(micro::scriptBase, 4 * pageSize, true);
    b.exit();
    sys.run(b.build(), "mutator");
    // create + 3 VMA events + exit ≥ 5 records.
    EXPECT_GE(sys.persistence()->stats().scalarValue("redoRecords"),
              5);
}

TEST(CheckpointTest, CheckpointCostScalesWithMappedPages)
{
    // Property behind Figure 4a: rebuild checkpoints get more
    // expensive as the mapped NVM area grows.
    auto mean_ckpt_cost = [](std::uint64_t pages) {
        KindleSystem sys(configWith(PtScheme::rebuild, oneMs));
        micro::ScriptBuilder b;
        b.mmapFixed(micro::scriptBase, pages * pageSize, true);
        b.touchPages(micro::scriptBase, pages * pageSize);
        for (int i = 0; i < 30; ++i)
            b.compute(1000000);
        b.exit();
        sys.run(b.build(), "worker");
        const auto &dist =
            sys.persistence()->stats().distribution("ckptTicks");
        return dist.mean();
    };
    const double small = mean_ckpt_cost(64);
    const double large = mean_ckpt_cost(1024);
    EXPECT_GT(large, small * 4);
}

TEST(CheckpointTest, PersistentCheckpointCostInsensitiveToSize)
{
    auto mean_ckpt_cost = [](std::uint64_t pages) {
        KindleSystem sys(configWith(PtScheme::persistent, oneMs));
        micro::ScriptBuilder b;
        b.mmapFixed(micro::scriptBase, pages * pageSize, true);
        b.touchPages(micro::scriptBase, pages * pageSize);
        for (int i = 0; i < 30; ++i)
            b.compute(1000000);
        b.exit();
        sys.run(b.build(), "worker");
        return sys.persistence()
            ->stats()
            .distribution("ckptTicks")
            .mean();
    };
    const double small = mean_ckpt_cost(64);
    const double large = mean_ckpt_cost(1024);
    // Persistent checkpoints don't traverse the page table: cost may
    // wiggle but must not scale anywhere near linearly (16x pages).
    EXPECT_LT(large, small * 4);
}

TEST(CheckpointTest, ManualCheckpointWorks)
{
    KindleSystem sys(configWith(PtScheme::rebuild, oneSec));
    sys.kernel().spawnShell("manual", 5);
    const Tick t0 = sys.now();
    sys.persistence()->checkpointNow();
    EXPECT_GT(sys.now(), t0);
    EXPECT_EQ(sys.persistence()->checkpointsTaken(), 1u);
}

TEST(CheckpointTest, SchemeMismatchIsFatal)
{
    setErrorsThrow(true);
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 128 * oneMiB;
    cfg.kernel.ptInNvm = true;  // contradicted below
    // KindleSystem derives ptInNvm from the scheme, so build the
    // kernel by hand to provoke the mismatch.
    sim::Simulation sim;
    mem::HybridMemory memory(cfg.memory);
    cache::Hierarchy hier(cfg.caches, memory);
    cpu::Core core(cfg.core, sim, memory, hier);
    os::Kernel kernel(cfg.kernel, sim, memory, hier, core);
    EXPECT_THROW(PersistDomain(PersistParams{PtScheme::rebuild,
                                             10 * oneMs},
                               kernel),
                 SimError);
    setErrorsThrow(false);
}

} // namespace
} // namespace kindle::persist
