/**
 * @file
 * Tests for the incremental mapping-list extension and the PT undo
 * rollback pass: the extensions must preserve recovery semantics
 * exactly.
 */

#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "persist/pt_policy.hh"

namespace kindle::persist
{
namespace
{

KindleConfig
rebuildConfig(bool incremental)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    PersistParams pp;
    pp.scheme = PtScheme::rebuild;
    pp.checkpointInterval = oneMs;
    pp.incrementalMappingList = incremental;
    cfg.persistence = pp;
    return cfg;
}

/** Map pages, churn some, checkpoint twice, crash, recover; return
 *  the recovered (vpn → frame) map. */
std::map<Addr, Addr>
runScenario(bool incremental)
{
    KindleSystem sys(rebuildConfig(incremental));
    os::Process &proc = sys.kernel().spawnShell("victim", 0);
    const Addr a =
        sys.kernel().sysMmap(proc, 0, 64 * pageSize, cpu::mapNvm);
    sys.core(0).setContext(proc.pid, proc.ptRoot);

    // Fault pages in via real demand paging so listeners fire.
    micro::ScriptBuilder b;
    b.touchPages(a, 64 * pageSize);
    b.compute(3000000);  // let a checkpoint land
    // Churn: unmap a middle run and remap it.
    b.munmap(a + 16 * pageSize, 8 * pageSize);
    b.mmapFixed(a + 16 * pageSize, 8 * pageSize, true);
    b.touchPages(a + 16 * pageSize, 8 * pageSize);
    b.compute(3000000);  // another checkpoint
    for (int i = 0; i < 50; ++i)
        b.compute(1000000);
    proc.program = b.build();
    sys.kernel().makeReady(proc);
    sys.kernel().runUntil(sys.now() + 15 * oneMs);

    EXPECT_GT(sys.persistence()->checkpointsTaken(), 2u);
    sys.crash();
    sys.reboot();

    std::map<Addr, Addr> mappings;
    os::Process *back = sys.kernel().processes().front().get();
    sys.kernel().pageTables().forEachLeaf(
        back->ptRoot, [&](Addr va, cpu::Pte pte, Addr) {
            if (pte.nvmBacked())
                mappings[va] = pte.frameAddr();
        });
    return mappings;
}

TEST(IncrementalTest, RecoveryMatchesFullTraversalSemantics)
{
    const auto full = runScenario(false);
    const auto incremental = runScenario(true);
    // Same virtual pages recovered under both maintenance modes.
    ASSERT_EQ(full.size(), incremental.size());
    auto fit = full.begin();
    auto iit = incremental.begin();
    for (; fit != full.end(); ++fit, ++iit)
        EXPECT_EQ(fit->first, iit->first);
}

TEST(IncrementalTest, ChurnedPagesRecoverTheirLatestFrames)
{
    KindleSystem sys(rebuildConfig(true));
    os::Process &proc = sys.kernel().spawnShell("churner", 0);
    const Addr a =
        sys.kernel().sysMmap(proc, 0, 8 * pageSize, cpu::mapNvm);

    micro::ScriptBuilder b;
    b.touchPages(a, 8 * pageSize);
    b.compute(3000000);
    b.munmap(a, 4 * pageSize);
    b.mmapFixed(a, 4 * pageSize, true);
    b.touchPages(a, 4 * pageSize);
    b.compute(3000000);
    for (int i = 0; i < 30; ++i)
        b.compute(1000000);
    proc.program = b.build();
    sys.kernel().makeReady(proc);
    sys.kernel().runUntil(sys.now() + 12 * oneMs);

    // Capture the live truth before the crash.
    std::map<Addr, Addr> live;
    sys.kernel().pageTables().forEachLeaf(
        proc.ptRoot, [&](Addr va, cpu::Pte pte, Addr) {
            if (pte.nvmBacked())
                live[va] = pte.frameAddr();
        });

    sys.crash();
    sys.reboot();
    os::Process *back = sys.kernel().processes().front().get();
    std::map<Addr, Addr> recovered;
    sys.kernel().pageTables().forEachLeaf(
        back->ptRoot, [&](Addr va, cpu::Pte pte, Addr) {
            if (pte.nvmBacked())
                recovered[va] = pte.frameAddr();
        });
    EXPECT_EQ(recovered, live);
}

TEST(PtUndoTest, TornStoreIsRolledBack)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 256 * oneMiB;
    cfg.persistence =
        PersistParams{PtScheme::persistent, 10 * oneMs};
    KindleSystem sys(cfg);

    os::Process &proc = sys.kernel().spawnShell("p", 0);
    const Addr a =
        sys.kernel().sysMmap(proc, 0, 2 * pageSize, cpu::mapNvm);
    const Addr f0 = sys.kernel().nvmAllocator().alloc();
    sys.kernel().pageTables().map(proc.ptRoot, a, f0, true, true);
    sys.persistence()->checkpointNow();

    // A wrapped store after the checkpoint...
    const Addr f1 = sys.kernel().nvmAllocator().alloc();
    sys.kernel().pageTables().map(proc.ptRoot, a + pageSize, f1,
                                  true, true);
    // ... whose PTE line we deliberately tear: overwrite the durable
    // image with garbage that matches neither old nor new value
    // (modelling a line the crash cut mid-write).
    const auto leaf = sys.kernel().pageTables().readLeaf(
        proc.ptRoot, a + pageSize);
    ASSERT_TRUE(leaf.present());
    // Locate the leaf entry address via a walk helper: rewrite the
    // durable image under it.
    cpu::WalkResult res =
        sys.core(0).walker().walk(proc.ptRoot, a + pageSize, sys.now());
    ASSERT_FALSE(res.fault);
    const std::uint64_t garbage = 0xdeadbeefdeadbeefull;
    sys.memory().writeDataDurable(res.leafAddr, &garbage, 8);

    sys.crash();
    const auto report = sys.reboot();
    EXPECT_GE(report.tornPtStoresRolledBack, 1u);

    // The torn entry was rolled back to its pre-store (absent) image.
    os::Process *back = sys.kernel().processes().front().get();
    EXPECT_FALSE(sys.kernel()
                     .pageTables()
                     .readLeaf(back->ptRoot, a + pageSize)
                     .present());
    // The committed mapping survives.
    EXPECT_TRUE(sys.kernel()
                    .pageTables()
                    .readLeaf(back->ptRoot, a)
                    .present());
}

TEST(PtUndoTest, CompletedStoresAreNotRolledBack)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 256 * oneMiB;
    cfg.persistence =
        PersistParams{PtScheme::persistent, 10 * oneMs};
    KindleSystem sys(cfg);

    os::Process &proc = sys.kernel().spawnShell("p", 0);
    const Addr a =
        sys.kernel().sysMmap(proc, 0, 4 * pageSize, cpu::mapNvm);
    sys.persistence()->checkpointNow();
    // Post-checkpoint wrapped stores, left fully intact.
    for (unsigned i = 0; i < 4; ++i) {
        const Addr f = sys.kernel().nvmAllocator().alloc();
        sys.kernel().pageTables().map(proc.ptRoot,
                                      a + Addr(i) * pageSize, f,
                                      true, true);
    }
    sys.crash();
    const auto report = sys.reboot();
    EXPECT_EQ(report.tornPtStoresRolledBack, 0u);
    os::Process *back = sys.kernel().processes().front().get();
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_TRUE(sys.kernel()
                        .pageTables()
                        .readLeaf(back->ptRoot, a + Addr(i) * pageSize)
                        .present())
            << i;
    }
}

} // namespace
} // namespace kindle::persist
