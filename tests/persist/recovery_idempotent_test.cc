/**
 * @file
 * Recovery idempotence: power loss *during recovery* must be
 * harmless.  For every crash site instrumented inside the recovery
 * procedure, under both page-table schemes:
 *
 *   system A crashes mid-workload and recovers once — the oracle;
 *   system B crashes at the same instant, then has a second fault
 *   armed at one recover.* site, so its first recovery dies half-way
 *   and the machine reboots over the partially-recovered durable
 *   image.  The second recovery must restore exactly the oracle's
 *   process state.
 *
 * Sites a clean recovery does not exercise (e.g. the quarantine path
 * when nothing is damaged) skip rather than pass vacuously.
 */

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace kindle
{
namespace
{

/** Observable per-process outcome of a recovery. */
using ProcState = std::tuple<std::uint64_t, std::uint64_t, bool>;

struct Outcome
{
    unsigned recovered = 0;
    unsigned quarantined = 0;
    std::vector<ProcState> procs;

    bool
    operator==(const Outcome &o) const
    {
        return recovered == o.recovered &&
               quarantined == o.quarantined && procs == o.procs;
    }
};

KindleConfig
schemeConfig(persist::PtScheme scheme)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 256 * oneMiB;
    cfg.persistence = persist::PersistParams{scheme, oneMs};
    return cfg;
}

/** Identical pre-crash history for the oracle and the victim. */
void
runToCrash(KindleSystem &sys)
{
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 32 * pageSize, true);
    b.touchPages(micro::scriptBase, 32 * pageSize);
    for (int i = 0; i < 100; ++i)
        b.compute(1000000);
    b.exit();
    sys.kernel().spawn(b.build(), "idem");
    sys.kernel().runUntil(sys.now() + 5 * oneMs);
    sys.crash();
}

Outcome
observe(KindleSystem &sys, const persist::RecoveryReport &report)
{
    Outcome out;
    out.recovered = report.processesRecovered;
    out.quarantined = report.processesQuarantined;
    for (const auto &proc : sys.kernel().processes()) {
        out.procs.emplace_back(proc->context.rip,
                               proc->aspace.mappedBytes(),
                               proc->restored);
    }
    std::sort(out.procs.begin(), out.procs.end());
    return out;
}

struct Combo
{
    persist::PtScheme scheme;
    const char *site;
};

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    std::string name = persist::ptSchemeName(info.param.scheme);
    name += "_";
    for (const char *c = info.param.site; *c; ++c)
        name += (*c == '.' ? '_' : *c);
    return name;
}

class RecoveryIdempotenceTest : public ::testing::TestWithParam<Combo>
{};

TEST_P(RecoveryIdempotenceTest, SecondRecoveryMatchesFirst)
{
    const Combo combo = GetParam();

    // Oracle: one crash, one recovery.
    KindleSystem oracle(schemeConfig(combo.scheme));
    runToCrash(oracle);
    const Outcome expected =
        observe(oracle, oracle.reboot());
    ASSERT_GT(expected.recovered, 0u);

    // Victim: same crash, then power fails again inside recovery.
    KindleSystem victim(schemeConfig(combo.scheme));
    runToCrash(victim);
    fault::FaultPlan second;
    second.site = combo.site;
    victim.armFault(second);
    bool fired = false;
    try {
        victim.reboot();
    } catch (const fault::PowerLoss &loss) {
        fired = true;
        EXPECT_EQ(loss.site(), combo.site);
    }
    if (!fired) {
        GTEST_SKIP() << "site " << combo.site
                     << " not exercised by a clean "
                     << persist::ptSchemeName(combo.scheme)
                     << " recovery";
    }
    ASSERT_TRUE(victim.crashed());

    // Reboot over the half-recovered image: recovery must converge.
    const Outcome actual = observe(victim, victim.reboot());
    EXPECT_EQ(actual, expected);

    // And the twice-recovered machine is fully alive.
    victim.persistence()->checkpointNow();
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (const auto scheme : {persist::PtScheme::rebuild,
                              persist::PtScheme::persistent}) {
        for (const char *site :
             {"recover.after_bitmap", "recover.after_log_audit",
              "recover.after_pt_rollback", "recover.after_quarantine",
              "recover.after_slot_restore", "recover.before_reclaim",
              "recover.complete"}) {
            combos.push_back({scheme, site});
        }
    }
    return combos;
}

INSTANTIATE_TEST_SUITE_P(AllSitesAndSchemes, RecoveryIdempotenceTest,
                         ::testing::ValuesIn(allCombos()), comboName);

} // namespace
} // namespace kindle
