/**
 * @file
 * Shape tests for the paper's headline results: scaled-down versions
 * of the Figure 4 / Table III-IV / Figure 5 / Figure 6 experiments
 * asserting the qualitative orderings the paper reports.  The full
 * parameter sweeps live in bench/.
 */

#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace kindle
{
namespace
{

KindleConfig
persistConfig(persist::PtScheme scheme, Tick interval)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 512 * oneMiB;
    cfg.memory.nvmBytes = oneGiB;
    cfg.persistence = persist::PersistParams{scheme, interval};
    return cfg;
}

Tick
runSeqAlloc(persist::PtScheme scheme, std::uint64_t bytes,
            Tick interval)
{
    KindleSystem sys(persistConfig(scheme, interval));
    return sys.run(micro::seqAllocTouch(bytes), "seq");
}

TEST(Fig4aShape, RebuildSlowerThanPersistentForSequentialAlloc)
{
    const std::uint64_t bytes = 16 * oneMiB;
    const Tick rebuild =
        runSeqAlloc(persist::PtScheme::rebuild, bytes, oneMs);
    const Tick persistent =
        runSeqAlloc(persist::PtScheme::persistent, bytes, oneMs);
    EXPECT_GT(rebuild, persistent);
}

TEST(Fig4aShape, RebuildOverheadGrowsSuperlinearlyWithSize)
{
    const Tick small =
        runSeqAlloc(persist::PtScheme::rebuild, 4 * oneMiB, oneMs);
    const Tick large =
        runSeqAlloc(persist::PtScheme::rebuild, 16 * oneMiB, oneMs);
    // 4x the pages → more checkpoints, each more expensive: clearly
    // more than 4x total.
    EXPECT_GT(large, small * 4);
}

TEST(Fig4bShape, SparseStridesHurtPersistentMore)
{
    // With strides touching more table levels, the persistent scheme
    // pays consistency per extra table-entry store.
    auto run_stride = [](persist::PtScheme scheme,
                         std::uint64_t stride) {
        KindleSystem sys(persistConfig(scheme, oneMs));
        return sys.run(micro::strideAlloc(stride, 10), "stride");
    };
    const Tick persistent_1g =
        run_stride(persist::PtScheme::persistent, oneGiB);
    const Tick persistent_4k =
        run_stride(persist::PtScheme::persistent, 4 * oneKiB);
    // More table levels → more wrapped stores → more time.
    EXPECT_GT(persistent_1g, persistent_4k);
}

TEST(Table4Shape, RebuildCostDropsWithWiderInterval)
{
    const std::uint64_t bytes = 8 * oneMiB;
    const Tick narrow = runSeqAlloc(persist::PtScheme::rebuild, bytes,
                                    500 * oneUs);
    const Tick wide =
        runSeqAlloc(persist::PtScheme::rebuild, bytes, 50 * oneMs);
    EXPECT_GT(narrow, wide);
}

TEST(Table4Shape, PersistentCostInsensitiveToInterval)
{
    const std::uint64_t bytes = 8 * oneMiB;
    const Tick narrow = runSeqAlloc(persist::PtScheme::persistent,
                                    bytes, 500 * oneUs);
    const Tick wide = runSeqAlloc(persist::PtScheme::persistent,
                                  bytes, 50 * oneMs);
    // Within 25% of each other (paper: identical to the msec).
    EXPECT_LT(std::max(narrow, wide),
              std::min(narrow, wide) * 5 / 4);
}

TEST(Table4Shape, IntervalBeyondRuntimeFavoursRebuild)
{
    // Paper: with a 1 s interval (longer than the run) rebuild beats
    // persistent because the DRAM page table is simply faster.
    const std::uint64_t bytes = 8 * oneMiB;
    const Tick rebuild =
        runSeqAlloc(persist::PtScheme::rebuild, bytes, 10 * oneSec);
    const Tick persistent = runSeqAlloc(persist::PtScheme::persistent,
                                        bytes, 10 * oneSec);
    EXPECT_LT(rebuild, persistent);
}

TEST(Table3Shape, ChurnCostGrowsWithChurnSizeUnderBothSchemes)
{
    auto run_churn = [](persist::PtScheme scheme,
                        std::uint64_t churn) {
        KindleSystem sys(persistConfig(scheme, oneMs));
        return sys.run(
            micro::churnBench(16 * oneMiB, churn, 2, 1), "churn");
    };
    for (const auto scheme : {persist::PtScheme::rebuild,
                              persist::PtScheme::persistent}) {
        const Tick small = run_churn(scheme, 2 * oneMiB);
        const Tick large = run_churn(scheme, 8 * oneMiB);
        EXPECT_GT(large, small);
    }
}

TEST(Fig5Shape, SspOverheadAboveBaselineAndShrinksWithInterval)
{
    auto run_ssp = [](std::optional<Tick> interval) {
        KindleConfig cfg;
        cfg.memory.dramBytes = 256 * oneMiB;
        cfg.memory.nvmBytes = 512 * oneMiB;
        if (interval) {
            ssp::SspParams p;
            p.consistencyInterval = *interval;
            cfg.ssp = p;
        }
        KindleSystem sys(cfg);
        micro::ScriptBuilder b;
        const unsigned pages = 64;
        b.mmapFixed(micro::scriptBase, pages * pageSize, true);
        b.touchPages(micro::scriptBase, pages * pageSize);
        b.faseStart();
        for (unsigned r = 0; r < 30; ++r) {
            for (unsigned p = 0; p < pages; ++p)
                b.write(micro::scriptBase + p * pageSize +
                        (r % 64) * 64);
            b.compute(500000);
        }
        b.faseEnd();
        b.exit();
        return sys.run(b.build(), "ssp");
    };
    const Tick baseline = run_ssp(std::nullopt);
    const Tick ssp_1ms = run_ssp(oneMs);
    const Tick ssp_10ms = run_ssp(10 * oneMs);
    EXPECT_GT(ssp_1ms, baseline);
    EXPECT_GT(ssp_10ms, baseline);
    EXPECT_GT(ssp_1ms, ssp_10ms);
}

TEST(Fig6Shape, HsccOsOverheadShrinksWithThreshold)
{
    auto run_hscc = [](unsigned threshold, bool charge) {
        KindleConfig cfg;
        cfg.memory.dramBytes = 256 * oneMiB;
        cfg.memory.nvmBytes = 512 * oneMiB;
        hscc::HsccParams p;
        p.fetchThreshold = threshold;
        p.chargeOsTime = charge;
        p.dramPoolPages = 32;
        p.migrationInterval = oneMs;
        cfg.hscc = p;
        KindleSystem sys(cfg);
        micro::ScriptBuilder b;
        const unsigned pages = 96;
        b.mmapFixed(micro::scriptBase, pages * pageSize, true);
        b.touchPages(micro::scriptBase, pages * pageSize);
        for (unsigned r = 0; r < 12; ++r) {
            for (unsigned h = 0; h < 4; ++h)
                for (unsigned p = 0; p < pages; ++p)
                    b.read(micro::scriptBase + p * pageSize +
                           ((r * 4 + h) % 64) * 64);
            b.compute(1000000);
        }
        b.exit();
        return sys.run(b.build(), "hscc");
    };
    const double norm_low =
        static_cast<double>(run_hscc(3, true)) /
        static_cast<double>(run_hscc(3, false));
    const double norm_high =
        static_cast<double>(run_hscc(100, true)) /
        static_cast<double>(run_hscc(100, false));
    EXPECT_GT(norm_low, 1.0);
    EXPECT_GE(norm_low, norm_high * 0.98);
}

} // namespace
} // namespace kindle
