/**
 * @file
 * End-to-end smoke tests: the full system boots, runs programs, and
 * the basic hybrid-memory behaviours hold.
 */

#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "prep/replay.hh"
#include "prep/workloads.hh"

namespace kindle
{
namespace
{

KindleConfig
smallConfig()
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    return cfg;
}

TEST(SystemTest, BootsAndRunsTrivialProgram)
{
    KindleSystem sys(smallConfig());
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 16 * pageSize, /*nvm=*/true);
    b.touchPages(micro::scriptBase, 16 * pageSize);
    b.readPages(micro::scriptBase, 16 * pageSize);
    b.munmap(micro::scriptBase, 16 * pageSize);
    b.exit();
    const Tick elapsed = sys.run(b.build(), "trivial");
    EXPECT_GT(elapsed, 0u);
    // All processes exited; frames returned.
    EXPECT_EQ(sys.kernel().nvmAllocator().allocatedFrames(), 0u);
}

TEST(SystemTest, NvmAndDramAllocationsUseTheRightZones)
{
    KindleSystem sys(smallConfig());
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 8 * pageSize, /*nvm=*/true);
    b.mmapFixed(micro::scriptBase + oneGiB, 8 * pageSize,
                /*nvm=*/false);
    b.touchPages(micro::scriptBase, 8 * pageSize);
    b.touchPages(micro::scriptBase + oneGiB, 8 * pageSize);
    b.exit();

    auto &kernel = sys.kernel();
    const auto nvm_before = kernel.nvmAllocator().allocatedFrames();
    const auto dram_before = kernel.dramAllocator().allocatedFrames();
    sys.run(b.build(), "zones");
    // exit released everything again; the counters moved through the
    // run (stats show the alloc traffic).
    EXPECT_EQ(kernel.nvmAllocator().allocatedFrames(), nvm_before);
    EXPECT_GE(kernel.nvmAllocator().stats().scalarValue("allocs"), 8);
    EXPECT_GE(kernel.dramAllocator().stats().scalarValue("allocs"), 8);
    (void)dram_before;
}

TEST(SystemTest, NvmAccessesAreSlowerThanDram)
{
    // Two runs with identical access patterns, one on NVM and one on
    // DRAM; the NVM run must take longer end to end.
    auto run_one = [&](bool nvm) {
        KindleSystem sys(smallConfig());
        micro::ScriptBuilder b;
        const std::uint64_t bytes = 16 * oneMiB;
        b.mmapFixed(micro::scriptBase, bytes, nvm);
        b.touchPages(micro::scriptBase, bytes);
        b.touchPages(micro::scriptBase, bytes);
        b.munmap(micro::scriptBase, bytes);
        b.exit();
        return sys.run(b.build(), nvm ? "nvm" : "dram");
    };
    const Tick nvm_time = run_one(true);
    const Tick dram_time = run_one(false);
    EXPECT_GT(nvm_time, dram_time);
}

TEST(SystemTest, ReplayedWorkloadRunsToCompletion)
{
    KindleConfig cfg = smallConfig();
    KindleSystem sys(cfg);

    prep::WorkloadParams wp;
    wp.ops = 20000;
    wp.scaleDown = 64;
    auto trace = prep::makeWorkload(prep::Benchmark::ycsbMem, wp);
    auto program = std::make_unique<prep::ReplayStream>(
        *trace, prep::ReplayConfig{});
    prep::ReplayStream *raw = program.get();

    const Tick elapsed = sys.run(std::move(program), "ycsb");
    EXPECT_GT(elapsed, 0u);
    EXPECT_EQ(raw->recordsReplayed(), wp.ops);
}

TEST(SystemTest, MultipleProcessesShareTheMachine)
{
    KindleSystem sys(smallConfig());
    auto make_prog = [](Addr base) {
        micro::ScriptBuilder b;
        b.mmapFixed(base, 64 * pageSize, true);
        b.touchPages(base, 64 * pageSize);
        for (int round = 0; round < 20; ++round)
            b.readPages(base, 64 * pageSize);
        b.munmap(base, 64 * pageSize);
        b.exit();
        return b.build();
    };
    sys.kernel().spawn(make_prog(micro::scriptBase), "p1");
    sys.kernel().spawn(make_prog(micro::scriptBase), "p2");
    sys.runAll();
    EXPECT_GE(sys.kernel().stats().scalarValue("contextSwitches"), 2);
    for (const auto &p : sys.kernel().processes())
        EXPECT_EQ(p->state, os::ProcState::zombie);
}

TEST(SystemTest, StatsDumpProducesOutput)
{
    KindleSystem sys(smallConfig());
    sys.run(micro::seqAllocTouch(oneMiB), "dump");
    std::ostringstream os;
    sys.dumpStats(os);
    EXPECT_NE(os.str().find("kernel"), std::string::npos);
    EXPECT_NE(os.str().find("PCM"), std::string::npos);
}

} // namespace
} // namespace kindle
