/**
 * @file
 * Full-system crash/recovery scenarios: the validation the paper
 * describes in §V-A ("crashing and restarting the application multiple
 * times"), plus durability edge cases driven through the whole stack.
 */

#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace kindle
{
namespace
{

KindleConfig
persistConfig(persist::PtScheme scheme)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    cfg.persistence = persist::PersistParams{scheme, oneMs};
    return cfg;
}

class SchemeParamTest
    : public ::testing::TestWithParam<persist::PtScheme>
{};

TEST_P(SchemeParamTest, CrashDuringRunRecoversConsistentProcess)
{
    KindleSystem sys(persistConfig(GetParam()));

    // A program long enough that several checkpoints land.
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 128 * pageSize, true);
    b.touchPages(micro::scriptBase, 128 * pageSize);
    for (int i = 0; i < 200; ++i)
        b.compute(1000000);
    b.exit();
    sys.kernel().spawn(b.build(), "worker");
    // Run part of the way, then pull the plug.
    sys.kernel().runUntil(sys.now() + 20 * oneMs);
    ASSERT_GT(sys.persistence()->checkpointsTaken(), 0u);

    sys.crash();
    const auto report = sys.reboot();
    ASSERT_EQ(report.processesRecovered, 1u);

    os::Process *proc = sys.kernel().processes().front().get();
    EXPECT_TRUE(proc->restored);
    EXPECT_EQ(proc->aspace.mappedBytes(), 128 * pageSize);
    // Every restored mapping is walkable.
    std::uint64_t mapped = 0;
    sys.kernel().pageTables().forEachLeaf(
        proc->ptRoot, [&](Addr, cpu::Pte pte, Addr) {
            if (pte.nvmBacked())
                ++mapped;
        });
    EXPECT_GT(mapped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeParamTest,
                         ::testing::Values(
                             persist::PtScheme::rebuild,
                             persist::PtScheme::persistent));

TEST(CrashRecoveryTest, RepeatedCrashRestartCycles)
{
    // The paper's validation: crash and restart multiple times; each
    // reboot must land on a consistent image.
    KindleSystem sys(persistConfig(persist::PtScheme::rebuild));
    os::Process &proc = sys.kernel().spawnShell("survivor", 0);
    const Addr a =
        sys.kernel().sysMmap(proc, 0, 16 * pageSize, cpu::mapNvm);
    sys.core(0).setContext(proc.pid, proc.ptRoot);
    for (int i = 0; i < 16; ++i) {
        const Addr f = sys.kernel().nvmAllocator().alloc();
        sys.kernel().pageTables().map(proc.ptRoot,
                                      a + Addr(i) * pageSize, f,
                                      true, true);
    }
    proc.context.rip = 0x77;
    sys.persistence()->checkpointNow();

    for (int cycle = 0; cycle < 4; ++cycle) {
        sys.crash();
        const auto report = sys.reboot();
        ASSERT_EQ(report.processesRecovered, 1u) << cycle;
        os::Process *back = sys.kernel().processes().back().get();
        ASSERT_EQ(back->context.rip, 0x77u) << cycle;
        ASSERT_EQ(back->aspace.mappedBytes(), 16 * pageSize) << cycle;
        // Checkpoint again so the next cycle has fresh state to find.
        sys.persistence()->checkpointNow();
    }
}

TEST(CrashRecoveryTest, UnflushedCacheLinesDieWithTheCrash)
{
    KindleSystem sys(persistConfig(persist::PtScheme::rebuild));
    const Addr nvm = sys.memory().nvmRange().start() + 100 * oneMiB;
    // A volatile (cached, un-flushed) NVM store...
    sys.memory().writeT<std::uint64_t>(nvm, 0xbad);
    sys.caches().access(mem::MemCmd::write, nvm, 8, sys.now());
    // ...a properly flushed *and* drained (fenced) one...
    const Addr nvm3 = nvm + 2 * pageSize;
    sys.memory().writeT<std::uint64_t>(nvm3, 0x600d);
    sys.caches().access(mem::MemCmd::write, nvm3, 8, sys.now());
    sys.caches().clwb(nvm3, sys.now());
    sys.memory().drainWrites(
        sys.memory().nvmCtrl().writesDrainedAt());
    // ...and one flushed but not fenced: still queued in the
    // controller write buffer when the power fails.
    const Addr nvm2 = nvm + pageSize;
    sys.memory().writeT<std::uint64_t>(nvm2, 0xbadb0f);
    sys.caches().access(mem::MemCmd::write, nvm2, 8, sys.now());
    sys.caches().clwb(nvm2, sys.now());

    sys.crash();
    sys.reboot();
    EXPECT_EQ(sys.memory().readT<std::uint64_t>(nvm), 0u);
    EXPECT_EQ(sys.memory().readT<std::uint64_t>(nvm2), 0u);
    EXPECT_EQ(sys.memory().readT<std::uint64_t>(nvm3), 0x600du);
    EXPECT_EQ(sys.lastCrashOutcome().linesLost, 1u);
}

TEST(CrashRecoveryTest, RecoveredProcessCanResumeExecution)
{
    KindleSystem sys(persistConfig(persist::PtScheme::persistent));
    os::Process &proc = sys.kernel().spawnShell("resume", 0);
    const Addr a =
        sys.kernel().sysMmap(proc, 0, 8 * pageSize, cpu::mapNvm);
    sys.persistence()->checkpointNow();
    sys.crash();
    sys.reboot();

    // Attach a fresh program to the recovered shell and run: the
    // restored address space must serve its accesses.
    os::Process *back = sys.kernel().processes().front().get();
    micro::ScriptBuilder b;
    b.touchPages(a, 8 * pageSize);
    b.exit();
    back->program = b.build();
    sys.kernel().makeReady(*back);
    sys.runAll();
    EXPECT_EQ(back->state, os::ProcState::zombie);
}

TEST(CrashRecoveryTest, CrashWithoutPersistenceLosesEverything)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 128 * oneMiB;
    KindleSystem sys(cfg);
    sys.kernel().spawnShell("doomed", 0);
    sys.crash();
    sys.reboot();
    EXPECT_TRUE(sys.kernel().processes().empty());
}

TEST(CrashRecoveryTest, RebootContinuesTheTimeline)
{
    KindleSystem sys(persistConfig(persist::PtScheme::rebuild));
    sys.kernel().spawnShell("p", 0);
    sys.persistence()->checkpointNow();
    const Tick before = sys.now();
    sys.crash();
    sys.reboot();
    EXPECT_GE(sys.now(), before);
}

} // namespace
} // namespace kindle
