/**
 * @file
 * Determinism guarantees: identical configurations must produce
 * identical simulations, tick for tick — the property that makes
 * comparative studies on Kindle trustworthy.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "prep/replay.hh"
#include "prep/workloads.hh"

namespace kindle
{
namespace
{

Tick
runMicro()
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 256 * oneMiB;
    cfg.persistence = persist::PersistParams{
        persist::PtScheme::rebuild, oneMs};
    KindleSystem sys(cfg);
    return sys.run(micro::seqAllocTouch(4 * oneMiB), "det");
}

TEST(DeterminismTest, MicrobenchRunsAreTickIdentical)
{
    EXPECT_EQ(runMicro(), runMicro());
}

Tick
runTraceWithEngines()
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    hscc::HsccParams hp;
    hp.migrationInterval = oneMs;
    hp.fetchThreshold = 3;
    cfg.hscc = hp;
    KindleSystem sys(cfg);

    prep::WorkloadParams wp;
    wp.ops = 30000;
    wp.scaleDown = 64;
    auto trace = prep::makeWorkload(prep::Benchmark::g500Sssp, wp);
    auto program = std::make_unique<prep::ReplayStream>(
        *trace, prep::ReplayConfig{});
    return sys.run(std::move(program), "det");
}

TEST(DeterminismTest, TraceRunsWithEnginesAreTickIdentical)
{
    EXPECT_EQ(runTraceWithEngines(), runTraceWithEngines());
}

TEST(DeterminismTest, StatsDumpsAreByteIdentical)
{
    auto dump = [] {
        KindleConfig cfg;
        cfg.memory.dramBytes = 128 * oneMiB;
        cfg.memory.nvmBytes = 128 * oneMiB;
        ssp::SspParams sp;
        sp.consistencyInterval = oneMs;
        cfg.ssp = sp;
        KindleSystem sys(cfg);
        micro::ScriptBuilder b;
        b.mmapFixed(micro::scriptBase, 32 * pageSize, true);
        b.touchPages(micro::scriptBase, 32 * pageSize);
        b.faseStart();
        for (int i = 0; i < 10; ++i) {
            b.write(micro::scriptBase + (i % 32) * pageSize);
            b.compute(500000);
        }
        b.faseEnd();
        b.exit();
        sys.run(b.build(), "det");
        std::ostringstream os;
        sys.dumpStats(os);
        return os.str();
    };
    EXPECT_EQ(dump(), dump());
}

TEST(DeterminismTest, CrashRecoveryIsDeterministic)
{
    auto recovered_ticks = [] {
        KindleConfig cfg;
        cfg.memory.dramBytes = 128 * oneMiB;
        cfg.memory.nvmBytes = 256 * oneMiB;
        cfg.persistence = persist::PersistParams{
            persist::PtScheme::rebuild, oneMs};
        KindleSystem sys(cfg);
        os::Process &proc = sys.kernel().spawnShell("p", 0);
        const Addr a = sys.kernel().sysMmap(proc, 0, 16 * pageSize,
                                            cpu::mapNvm);
        sys.core(0).setContext(proc.pid, proc.ptRoot);
        for (unsigned i = 0; i < 16; ++i) {
            const Addr f = sys.kernel().nvmAllocator().alloc();
            sys.kernel().pageTables().map(
                proc.ptRoot, a + Addr(i) * pageSize, f, true, true);
        }
        sys.persistence()->checkpointNow();
        sys.crash();
        const auto report = sys.reboot();
        return report.recoveryTicks;
    };
    EXPECT_EQ(recovered_ticks(), recovered_ticks());
}

} // namespace
} // namespace kindle
