/**
 * @file
 * Multi-process integration: persistence across several processes,
 * engine interplay under co-scheduling, and the alternate NVM
 * technology configurations of §V-D.
 */

#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace kindle
{
namespace
{

std::unique_ptr<cpu::OpStream>
worker(Addr base, unsigned pages, unsigned rounds)
{
    micro::ScriptBuilder b;
    b.mmapFixed(base, pages * pageSize, true);
    b.touchPages(base, pages * pageSize);
    for (unsigned r = 0; r < rounds; ++r) {
        b.readPages(base, pages * pageSize);
        b.compute(200000);
    }
    b.munmap(base, pages * pageSize);
    b.exit();
    return b.build();
}

TEST(MultiProcessTest, PersistenceCheckpointsAllProcesses)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    cfg.persistence = persist::PersistParams{
        persist::PtScheme::rebuild, oneMs};
    KindleSystem sys(cfg);

    sys.kernel().spawn(worker(micro::scriptBase, 32, 40), "w1");
    sys.kernel().spawn(worker(micro::scriptBase, 16, 40), "w2");
    sys.kernel().spawn(worker(micro::scriptBase, 8, 40), "w3");
    sys.runAll();
    EXPECT_GT(sys.persistence()->checkpointsTaken(), 2u);
    // All three address spaces were snapshot (mapping entries from
    // all of them at some checkpoint).
    EXPECT_GT(sys.persistence()->stats().scalarValue("mappingEntries"),
              32 + 16 + 8 - 1);
}

TEST(MultiProcessTest, CrashRecoveryRestoresOnlyLiveProcesses)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    cfg.persistence = persist::PersistParams{
        persist::PtScheme::rebuild, oneMs};
    KindleSystem sys(cfg);

    // One process exits quickly; one runs long.
    sys.kernel().spawn(worker(micro::scriptBase, 8, 1), "short");
    sys.kernel().spawn(worker(micro::scriptBase, 32, 4000), "long");
    sys.kernel().runUntil(sys.now() + 30 * oneMs);

    sys.crash();
    const auto report = sys.reboot();
    EXPECT_EQ(report.processesRecovered, 1u);
    EXPECT_EQ(sys.kernel().processes().front()->name, "long");
}

TEST(MultiProcessTest, CoschedulingSlowsTheForegroundDown)
{
    auto run = [](unsigned background) {
        KindleConfig cfg;
        cfg.memory.dramBytes = 256 * oneMiB;
        cfg.memory.nvmBytes = 256 * oneMiB;
        KindleSystem sys(cfg);
        sys.kernel().spawn(worker(micro::scriptBase, 64, 30), "fg");
        for (unsigned i = 0; i < background; ++i) {
            sys.kernel().spawn(
                worker(micro::scriptBase + (i + 2) * oneGiB, 64, 30),
                "bg");
        }
        sys.runAll();
        return sys.now();
    };
    const Tick alone = run(0);
    const Tick crowded = run(2);
    EXPECT_GT(crowded, alone * 2);
}

TEST(MultiProcessTest, TlbIsolationBetweenProcesses)
{
    // Two processes use the same virtual addresses; pid tags must
    // keep translations separate (different physical frames).
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 128 * oneMiB;
    KindleSystem sys(cfg);

    os::Process &p1 = sys.kernel().spawnShell("p1", 0);
    os::Process &p2 = sys.kernel().spawnShell("p2", 1);
    const Addr va = micro::scriptBase;
    sys.kernel().sysMmap(p1, va, pageSize,
                         cpu::mapFixed | cpu::mapNvm);
    sys.kernel().sysMmap(p2, va, pageSize,
                         cpu::mapFixed | cpu::mapNvm);

    // Manually allocate + map (no scheduler plumbing needed).
    const Addr f1 = sys.kernel().nvmAllocator().alloc();
    const Addr f2 = sys.kernel().nvmAllocator().alloc();
    sys.kernel().pageTables().map(p1.ptRoot, va, f1, true, true);
    sys.kernel().pageTables().map(p2.ptRoot, va, f2, true, true);

    sys.core(0).setContext(p1.pid, p1.ptRoot);
    const Addr pa1 = sys.core(0).translate(va, false);
    sys.core(0).setContext(p2.pid, p2.ptRoot);
    const Addr pa2 = sys.core(0).translate(va, false);
    EXPECT_EQ(pa1, f1);
    EXPECT_EQ(pa2, f2);
}

class NvmTechParamTest
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(NvmTechParamTest, AlternateTechnologiesBootAndRun)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 128 * oneMiB;
    const std::string which = GetParam();
    if (which == "stt")
        cfg.memory.nvmTiming = mem::sttMramParams();
    else if (which == "rram")
        cfg.memory.nvmTiming = mem::rramParams();
    KindleSystem sys(cfg);
    const Tick t = sys.run(micro::seqAllocTouch(oneMiB), "tech");
    EXPECT_GT(t, 0u);
}

INSTANTIATE_TEST_SUITE_P(Techs, NvmTechParamTest,
                         ::testing::Values("pcm", "stt", "rram"));

TEST(MultiProcessTest, FasterNvmRunsFaster)
{
    auto run_with = [](const mem::MemTimingParams &tech) {
        KindleConfig cfg;
        cfg.memory.dramBytes = 128 * oneMiB;
        cfg.memory.nvmBytes = 128 * oneMiB;
        cfg.memory.nvmTiming = tech;
        KindleSystem sys(cfg);
        return sys.run(micro::seqAllocTouch(8 * oneMiB), "tech");
    };
    EXPECT_LT(run_with(mem::sttMramParams()),
              run_with(mem::pcmParams()));
}

} // namespace
} // namespace kindle
