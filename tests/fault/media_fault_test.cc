/**
 * @file
 * End-to-end media fault scenarios: the patrol scrubber healing drift
 * faults, uncorrectable damage driving frame retirement and live page
 * migration, the bad-frame list surviving crash+reboot under both
 * page-table schemes, the degraded MAP_NVM allocation path, recovery
 * quarantining saved state that sits on retired frames, and media
 * configurations running concurrently under the SweepRunner (the TSan
 * coverage for the scrubber/retirement machinery).
 */

#include <vector>

#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "os/bad_frames.hh"
#include "runner/sweep_runner.hh"

namespace kindle
{
namespace
{

constexpr Tick scrubInterval = oneMs / 10;

/** Media-enabled config: scrubber patrols the whole device per tick. */
KindleConfig
mediaConfig(persist::PtScheme scheme)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 128 * oneMiB;
    cfg.persistence = persist::PersistParams{scheme, oneMs};
    cfg.fault = fault::FaultPlan{};  // unarmed; media config only
    // A sentinel drift fault in a far corner keeps the media model
    // enabled without perturbing any workload (the first patrol pass
    // heals it); individual tests plant their own damage.
    cfg.fault->media.faults.push_back(
        {/*frame=*/30000, /*line=*/0, /*bits=*/1, /*sticky=*/false});
    cfg.scrub = mem::ScrubParams{scrubInterval, 128 * oneMiB};
    return cfg;
}

std::unique_ptr<cpu::OpStream>
longNvmWorkload(std::uint64_t pages = 16)
{
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, pages * pageSize, true);
    b.touchPages(micro::scriptBase, pages * pageSize);
    // Fine-grained bursts (~10us at 3 GHz) keep sim.service() running
    // often enough that patrol events fire close to their due ticks.
    for (int i = 0; i < 20000; ++i)
        b.compute(30000);
    b.exit();
    return b.build();
}

/** First present NVM-backed leaf of the process: (vaddr, frame). */
std::pair<Addr, Addr>
firstNvmMapping(KindleSystem &sys, os::Process &proc)
{
    Addr vaddr = invalidAddr, frame = invalidAddr;
    sys.kernel().pageTables().forEachLeaf(
        proc.ptRoot, [&](Addr va, cpu::Pte pte, Addr) {
            if (vaddr == invalidAddr && pte.present() &&
                pte.nvmBacked() && !pte.hsccRemapped()) {
                vaddr = va;
                frame = pte.frameAddr();
            }
        });
    return {vaddr, frame};
}

Addr
frameOf(KindleSystem &sys, os::Process &proc, Addr vaddr)
{
    Addr frame = invalidAddr;
    sys.kernel().pageTables().forEachLeaf(
        proc.ptRoot, [&](Addr va, cpu::Pte pte, Addr) {
            if (va == vaddr && pte.present())
                frame = pte.frameAddr();
        });
    return frame;
}

TEST(MediaFaultTest, ScrubberHealsDriftFaults)
{
    KindleConfig cfg = mediaConfig(persist::PtScheme::rebuild);
    // A transient single-bit fault planted far from any allocation.
    cfg.fault->media.faults.push_back(
        {/*frame=*/20000, /*line=*/3, /*bits=*/1, /*sticky=*/false});
    KindleSystem sys(cfg);
    mem::NvmMediaModel *media = sys.memory().media();
    ASSERT_NE(media, nullptr);
    ASSERT_TRUE(sys.scrubber()->running());

    const Addr line = sys.memory().nvmRange().start() +
                      20000 * pageSize + 3 * lineSize;
    ASSERT_EQ(media->health(line), mem::LineHealth::correctable);

    sys.kernel().spawn(longNvmWorkload(), "worker");
    sys.kernel().runUntil(sys.now() + 4 * scrubInterval);

    // The patrol rewrote the line; re-programming healed the drift.
    EXPECT_EQ(media->health(line), mem::LineHealth::clean);
    EXPECT_GE(sys.scrubber()->stats().scalarValue("scrubCorrected"), 1);
    EXPECT_GE(sys.scrubber()->stats().scalarValue("patrolPasses"), 1);
}

TEST(MediaFaultTest, UncorrectableFrameRetiredAndPageMigrated)
{
    KindleSystem sys(mediaConfig(persist::PtScheme::rebuild));
    sys.kernel().spawn(longNvmWorkload(), "victim");
    sys.kernel().runUntil(sys.now() + oneMs / 2);

    os::Process &proc = *sys.kernel().processes().front();
    const auto [vaddr, bad] = firstNvmMapping(sys, proc);
    ASSERT_NE(vaddr, invalidAddr);

    // A marker on line 0, then uncorrectable wear on line 5: ECC can
    // no longer hide the frame, but the marker's line is undamaged
    // and must survive the migration.
    const std::uint64_t marker = 0x6d656469616d6f76;  // "mediamov"
    sys.memory().writeDataDurable(bad, &marker, 8);
    sys.memory().media()->injectError(bad + 5 * lineSize, 2,
                                      /*sticky=*/true);

    sys.kernel().runUntil(sys.now() + 4 * scrubInterval);

    // The scrubber found it, the OS retired it, the page moved.
    EXPECT_GE(sys.scrubber()->stats().scalarValue("scrubUncorrectable"),
              1);
    EXPECT_TRUE(sys.kernel().badFrameTable().isRetired(bad));
    EXPECT_GE(sys.kernel().stats().scalarValue("nvmFramesRetired"), 1);
    EXPECT_GE(sys.kernel().stats().scalarValue("nvmPagesMigrated"), 1);
    const Addr repl = frameOf(sys, proc, vaddr);
    ASSERT_NE(repl, invalidAddr);
    EXPECT_NE(repl, bad);
    std::uint64_t copied = 0;
    sys.memory().readData(repl, &copied, 8);
    EXPECT_EQ(copied, marker);
    // The retired frame never comes back from the allocator.
    EXPECT_FALSE(sys.kernel().nvmAllocator().isAllocated(bad));
}

class MediaSchemeTest
    : public ::testing::TestWithParam<persist::PtScheme>
{};

TEST_P(MediaSchemeTest, BadFrameListSurvivesCrashAndReboot)
{
    KindleSystem sys(mediaConfig(GetParam()));
    sys.kernel().spawn(longNvmWorkload(), "worker");
    sys.kernel().runUntil(sys.now() + oneMs / 2);

    os::Process &proc = *sys.kernel().processes().front();
    const auto [vaddr, bad] = firstNvmMapping(sys, proc);
    ASSERT_NE(vaddr, invalidAddr);
    sys.kernel().retireNvmFrame(bad, "test");
    ASSERT_NE(frameOf(sys, proc, vaddr), bad);
    // Publish the migrated mapping before pulling the plug.
    sys.persistence()->checkpointNow();

    for (int boot = 0; boot < 2; ++boot) {
        sys.crash();
        const persist::RecoveryReport report = sys.reboot();
        ASSERT_EQ(report.processesRecovered, 1u) << "boot " << boot;
        EXPECT_GE(report.retiredFrames, 1u) << "boot " << boot;
        EXPECT_TRUE(sys.kernel().badFrameTable().isRetired(bad))
            << "boot " << boot;
        // No recovered leaf may point at the retired frame.
        os::Process &back = *sys.kernel().processes().back();
        sys.kernel().pageTables().forEachLeaf(
            back.ptRoot, [&, bad = bad](Addr, cpu::Pte pte, Addr) {
                if (pte.present()) {
                    EXPECT_NE(pte.frameAddr(), bad);
                }
            });
        sys.persistence()->checkpointNow();
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, MediaSchemeTest,
                         ::testing::Values(
                             persist::PtScheme::rebuild,
                             persist::PtScheme::persistent));

TEST(MediaFaultTest, NvmExhaustionDegradesToDram)
{
    KindleConfig cfg = mediaConfig(persist::PtScheme::rebuild);
    // Reserve more frames than the pool holds: every MAP_NVM fault
    // must fall back to DRAM instead of eating the migration reserve.
    cfg.kernel.nvmReserveFrames = 1ull << 32;
    KindleSystem sys(cfg);

    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 8 * pageSize, true);
    b.touchPages(micro::scriptBase, 8 * pageSize);
    b.readPages(micro::scriptBase, 8 * pageSize);
    b.exit();
    sys.run(b.build(), "degraded");

    EXPECT_EQ(sys.kernel().stats().scalarValue("nvmDegradedAllocs"), 8);
}

TEST(MediaFaultTest, RecoveryQuarantinesSlotOnRetiredFrame)
{
    KindleSystem sys(mediaConfig(persist::PtScheme::rebuild));
    sys.kernel().spawn(longNvmWorkload(), "doomed");
    sys.kernel().runUntil(sys.now() + oneMs / 2);
    sys.persistence()->checkpointNow();
    const unsigned slot = sys.kernel().processes().front()->slot;

    // The medium dies under the saved-state slot itself.  The frame is
    // metadata, not user-pool — retirement records the damage durably
    // and recovery must fence the slot off rather than trust it.
    sys.kernel().retireNvmFrame(sys.kernel().nvmLayout().slotAddr(slot),
                                "test");
    sys.crash();
    const persist::RecoveryReport report = sys.reboot();

    EXPECT_EQ(report.processesRecovered, 0u);
    EXPECT_EQ(report.processesQuarantined, 1u);
    ASSERT_FALSE(report.errors.empty());
    bool classified = false;
    for (const auto &err : report.errors) {
        if (err.code == persist::RecoveryErrorCode::retiredFrameDamage)
            classified = true;
    }
    EXPECT_TRUE(classified);
}

TEST(MediaFaultTest, ConcurrentMediaSweepsAreIndependent)
{
    // Several media-armed systems in flight at once — scrubber events,
    // retirement callbacks and injector routing must all stay
    // per-system (run under TSan by scripts/ci.sh).
    std::vector<runner::Scenario> scenarios;
    for (int i = 0; i < 4; ++i) {
        runner::Scenario sc;
        sc.name = "media_sweep_" + std::to_string(i);
        sc.config = mediaConfig(i % 2 == 0
                                    ? persist::PtScheme::rebuild
                                    : persist::PtScheme::persistent);
        sc.config.fault->media.bitFlipRate = 1e-3;
        sc.config.fault->media.seed = 100 + std::uint64_t(i);
        sc.drive = [](KindleSystem &sys,
                      statistics::StatSnapshot &) -> Tick {
            const Tick t0 = sys.now();
            sys.run(longNvmWorkload(8), "w");
            return sys.now() - t0;
        };
        scenarios.push_back(std::move(sc));
    }
    runner::SweepRunner pool(2);
    const auto results = pool.run(scenarios);
    ASSERT_EQ(results.size(), scenarios.size());
    for (const auto &r : results)
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
}

} // namespace
} // namespace kindle
