/**
 * @file
 * Crash tests parameterized over every named crash site × page-table
 * scheme: arm the injector at the site's first occurrence, ride the
 * injected PowerLoss through crash()+reboot(), and check the salvage
 * invariants.  Also regression-tests the crashed-machine run() guard
 * and that reboot() never re-registers stat groups.
 */

#include <cctype>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace kindle
{
namespace
{

std::unique_ptr<cpu::OpStream>
crashWorkload()
{
    // Same shape as the fuzz harness workload, shrunk: allocator
    // traffic, VMA churn and wrapped PTE writes across several
    // checkpoint intervals so every instrumented protocol runs.
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 32 * pageSize, true);
    b.touchPages(micro::scriptBase, 32 * pageSize);
    for (int r = 0; r < 6; ++r) {
        b.compute(500000);
        const Addr extra =
            micro::scriptBase + (48 + Addr(r) * 8) * pageSize;
        b.mmapFixed(extra, 4 * pageSize, true);
        b.touchPages(extra, 4 * pageSize);
        if (r % 2)
            b.munmap(extra, 4 * pageSize);
    }
    b.exit();
    return b.build();
}

std::unique_ptr<cpu::OpStream>
hsccWorkload()
{
    // A hot NVM working set re-read every round: the HSCC engine's
    // periodic migration pass finds pages over the fetch threshold
    // and runs its copy protocol (where hscc.* sites live).
    micro::ScriptBuilder b;
    const unsigned pages = 48;
    b.mmapFixed(micro::scriptBase, pages * pageSize, true);
    b.touchPages(micro::scriptBase, pages * pageSize);
    for (unsigned r = 0; r < 8; ++r) {
        for (unsigned h = 0; h < 4; ++h)
            for (unsigned p = 0; p < pages; ++p)
                b.read(micro::scriptBase + p * pageSize +
                       ((r * 4 + h) % 64) * 64);
        b.compute(1000000);
    }
    b.exit();
    return b.build();
}

KindleConfig
crashConfig(persist::PtScheme scheme)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 64 * oneMiB;
    cfg.memory.nvmBytes = 128 * oneMiB;
    cfg.persistence = persist::PersistParams{scheme, oneMs / 4};
    return cfg;
}

struct SiteCase
{
    std::string site;
    persist::PtScheme scheme;
};

std::vector<SiteCase>
allSiteCases()
{
    std::vector<SiteCase> cases;
    for (const auto scheme : {persist::PtScheme::rebuild,
                              persist::PtScheme::persistent}) {
        for (const auto &site : fault::knownCrashSites())
            cases.push_back({site, scheme});
    }
    return cases;
}

std::string
siteCaseName(const ::testing::TestParamInfo<SiteCase> &info)
{
    std::string name =
        std::string(persist::ptSchemeName(info.param.scheme)) + "_" +
        info.param.site;
    for (auto &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class CrashSiteTest : public ::testing::TestWithParam<SiteCase>
{};

TEST_P(CrashSiteTest, CrashAtSiteRecoversOrSalvages)
{
    const SiteCase &param = GetParam();

    const bool hscc_site = param.site.rfind("hscc.", 0) == 0;
    const bool smp_site = param.site.rfind("core.", 0) == 0 ||
                          param.site.rfind("ipi.", 0) == 0;
    KindleConfig cfg = crashConfig(param.scheme);
    if (smp_site) {
        // The core-fault sites only fire on an SMP machine with a
        // core fault armed: fail-stop core 1 at its first received
        // shootdown IPI, so the initiator rides the retry path
        // (ipi.pre_retry) into watchdog offlining (core.pre_offline).
        cfg.numCores = 2;
        fault::CoreFaultPlan plan;
        fault::CoreFault f;
        f.cpu = 1;
        f.atNthIpi = 1;
        plan.faults.push_back(f);
        cfg.coreFault = plan;
    }
    if (hscc_site) {
        // HSCC sites only fire with the migration engine running and a
        // hot NVM working set worth promoting.
        hscc::HsccParams hp;
        hp.migrationInterval = oneMs / 8;
        hp.fetchThreshold = 2;
        cfg.hscc = hp;
    }
    fault::FaultPlan plan;
    plan.site = param.site;
    plan.occurrence = 1;
    cfg.fault = plan;

    KindleSystem sys(cfg);
    bool fired = false;
    try {
        sys.run(hscc_site ? hsccWorkload() : crashWorkload(),
                "crashsite");
    } catch (const fault::PowerLoss &loss) {
        fired = true;
        EXPECT_EQ(loss.site(), param.site);
    }
    if (!fired) {
        GTEST_SKIP() << "site " << param.site
                     << " not exercised by this workload under the "
                     << persist::ptSchemeName(param.scheme)
                     << " scheme";
    }

    sys.crash();
    const persist::RecoveryReport report = sys.reboot();

    // Salvage invariants: everything recovery kept is a fully
    // validated, restored process; every quarantined slot carries at
    // least one classified error; and the machine is live again —
    // able to checkpoint and to accept new work.
    unsigned restored = 0;
    for (const auto &proc : sys.kernel().processes()) {
        if (proc->restored)
            ++restored;
    }
    EXPECT_EQ(restored, report.processesRecovered);
    EXPECT_LE(report.processesQuarantined, report.errors.size());
    for (const auto &err : report.errors)
        EXPECT_STRNE(persist::recoveryErrorName(err.code), "");
    EXPECT_NO_THROW(sys.persistence()->checkpointNow());
    micro::ScriptBuilder post;
    post.compute(1000);
    post.exit();
    EXPECT_NO_THROW(sys.run(post.build(), "post"));
}

INSTANTIATE_TEST_SUITE_P(AllSites, CrashSiteTest,
                         ::testing::ValuesIn(allSiteCases()),
                         siteCaseName);

TEST(CrashedMachineTest, RunIsFatalBetweenCrashAndReboot)
{
    KindleSystem sys(crashConfig(persist::PtScheme::rebuild));
    sys.run(crashWorkload(), "first");
    sys.crash();

    setErrorsThrow(true);
    EXPECT_THROW(sys.runAll(), SimError);
    micro::ScriptBuilder b;
    b.exit();
    EXPECT_THROW(sys.run(b.build(), "doomed"), SimError);
    setErrorsThrow(false);

    // reboot() clears the condition.
    sys.reboot();
    EXPECT_NO_THROW(sys.runAll());
}

TEST(RebootStatsTest, StatGroupsRegisterOnceAcrossReboots)
{
    KindleSystem sys(crashConfig(persist::PtScheme::persistent));
    os::Process &proc = sys.kernel().spawnShell("survivor", 0);
    sys.kernel().sysMmap(proc, 0, 8 * pageSize, cpu::mapNvm);
    sys.persistence()->checkpointNow();
    for (int cycle = 0; cycle < 2; ++cycle) {
        sys.crash();
        sys.reboot();
        // Checkpoint again so the next cycle has fresh state to find.
        sys.persistence()->checkpointNow();
    }

    // The recovery counters accumulate across reboots instead of
    // resetting with the OS ...
    const auto snap = sys.snapshotStats();
    EXPECT_EQ(snap.get("recovery.reboots"), 2.0);
    EXPECT_GE(snap.get("recovery.processesRecovered"), 2.0);

    // ... and a full dump after two reboots carries each stat exactly
    // once: reboot() must not re-register the recovery or fault
    // groups.
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string text = os.str();
    const auto count = [&](const std::string &needle) {
        std::size_t n = 0;
        for (std::size_t pos = text.find(needle);
             pos != std::string::npos;
             pos = text.find(needle, pos + needle.size())) {
            ++n;
        }
        return n;
    };
    EXPECT_EQ(count("recovery.reboots"), 1u);
    EXPECT_EQ(count("recovery.processesQuarantined"), 1u);
    EXPECT_EQ(count("fault.siteHits"), 1u);
}

} // namespace
} // namespace kindle
