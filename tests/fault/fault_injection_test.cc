/**
 * @file
 * Unit tests for the crash-point fault injector: plan arming, trigger
 * semantics, observe-only counting, and the thread-local routing
 * stack probes are dispatched through.
 */

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hh"

namespace kindle::fault
{
namespace
{

std::unique_ptr<CrashInjector>
makeInjector(FaultPlan plan, Tick now = 1000)
{
    auto inj = std::make_unique<CrashInjector>(std::move(plan),
                                               [now] { return now; });
    inj->activate();
    return inj;
}

TEST(FaultPlanTest, ArmedRequiresATrigger)
{
    EXPECT_FALSE(FaultPlan{}.armed());
    FaultPlan by_site;
    by_site.site = "ckpt.after_commit";
    EXPECT_TRUE(by_site.armed());
    FaultPlan by_write;
    by_write.atNthDurableWrite = 3;
    EXPECT_TRUE(by_write.armed());
    FaultPlan by_tick;
    by_tick.atTick = 500;
    EXPECT_TRUE(by_tick.armed());
}

TEST(FaultInjectionTest, SiteTriggerFiresAtNthOccurrence)
{
    FaultPlan plan;
    plan.site = "redo.after_append";
    plan.occurrence = 3;
    auto inj = makeInjector(plan);

    inj->site("redo.after_append");
    inj->site("some.other_site");
    inj->site("redo.after_append");
    EXPECT_FALSE(inj->fired());
    try {
        inj->site("redo.after_append");
        FAIL() << "third occurrence must fire";
    } catch (const PowerLoss &loss) {
        EXPECT_EQ(loss.site(), "redo.after_append");
        EXPECT_EQ(loss.tick(), 1000u);
    }
    EXPECT_TRUE(inj->fired());
    EXPECT_EQ(inj->firedSite(), "redo.after_append");
    // A fired injector is spent: further probes are inert.
    inj->site("redo.after_append");
    EXPECT_EQ(inj->hitsOf("redo.after_append"), 3u);
}

TEST(FaultInjectionTest, DurableWriteTriggerFires)
{
    FaultPlan plan;
    plan.atNthDurableWrite = 2;
    auto inj = makeInjector(plan);
    inj->durableWrite(10);
    EXPECT_FALSE(inj->fired());
    EXPECT_THROW(inj->durableWrite(20), PowerLoss);
    EXPECT_EQ(inj->durableWrites(), 2u);
}

TEST(FaultInjectionTest, TickTriggerFiresAtFirstProbeAtOrAfter)
{
    FaultPlan plan;
    plan.atTick = 1000;
    CrashInjector early(plan, [] { return Tick{999}; });
    early.activate();
    early.site("a");
    EXPECT_FALSE(early.fired());

    CrashInjector late(plan, [] { return Tick{1000}; });
    late.activate();
    EXPECT_THROW(late.site("a"), PowerLoss);
}

TEST(FaultInjectionTest, UnarmedInjectorObservesWithoutFiring)
{
    auto inj = makeInjector(FaultPlan{});
    for (int i = 0; i < 5; ++i)
        inj->site("pt.after_store");
    inj->durableWrite(1);
    EXPECT_FALSE(inj->fired());
    EXPECT_EQ(inj->hitsOf("pt.after_store"), 5u);
    EXPECT_EQ(inj->durableWrites(), 1u);
    EXPECT_EQ(inj->allHits().size(), 1u);
}

TEST(FaultInjectionTest, InactiveInjectorIgnoresProbes)
{
    FaultPlan plan;
    plan.site = "x";
    CrashInjector inj(plan, [] { return Tick{0}; });
    inj.site("x");
    EXPECT_FALSE(inj.fired());
    EXPECT_EQ(inj.hitsOf("x"), 0u);
}

TEST(FaultInjectionTest, ObserverSeesEveryHitIncludingTheFatalOne)
{
    FaultPlan plan;
    plan.site = "slot.commit_pre_fence";
    plan.occurrence = 2;
    auto inj = makeInjector(plan);
    std::vector<std::uint64_t> seen;
    inj->setObserver([&](const std::string &name, std::uint64_t count) {
        if (name == "slot.commit_pre_fence")
            seen.push_back(count);
    });
    inj->site("slot.commit_pre_fence");
    EXPECT_THROW(inj->site("slot.commit_pre_fence"), PowerLoss);
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2}));
}

TEST(FaultRoutingTest, ScopeRoutesProbesAndUnwinds)
{
    EXPECT_EQ(current(), nullptr);
    crashSite("free.floating");  // probes without a scope are no-ops

    auto inj = makeInjector(FaultPlan{});
    {
        InjectorScope scope(inj.get());
        EXPECT_EQ(current(), inj.get());
        crashSite("a.site");
        onDurableNvmWrite(7);
    }
    EXPECT_EQ(current(), nullptr);
    EXPECT_EQ(inj->hitsOf("a.site"), 1u);
    EXPECT_EQ(inj->durableWrites(), 1u);
}

TEST(FaultRoutingTest, NewestScopeWinsAndNullShadows)
{
    auto outer = makeInjector(FaultPlan{});
    auto inner = makeInjector(FaultPlan{});
    InjectorScope outer_scope(outer.get());
    {
        InjectorScope inner_scope(inner.get());
        crashSite("s");
        EXPECT_EQ(current(), inner.get());
    }
    {
        // A system without fault config registers nullptr, shadowing
        // the outer injector instead of leaking probes to it.
        InjectorScope null_scope(nullptr);
        crashSite("s");
        EXPECT_EQ(current(), nullptr);
    }
    crashSite("s");
    EXPECT_EQ(outer->hitsOf("s"), 1u);
    EXPECT_EQ(inner->hitsOf("s"), 1u);
}

TEST(FaultInventoryTest, KnownSitesCoverTheInstrumentedProtocols)
{
    const auto &sites = knownCrashSites();
    EXPECT_GE(sites.size(), 16u);
    const auto has = [&](const char *name) {
        return std::find(sites.begin(), sites.end(), name) !=
               sites.end();
    };
    EXPECT_TRUE(has("ckpt.after_commit"));
    EXPECT_TRUE(has("redo.append_pre_fence"));
    EXPECT_TRUE(has("pt.after_clwb"));
    EXPECT_TRUE(has("slot.mid_working_write"));
    EXPECT_TRUE(has("alloc.bitmap_pre_fence"));
    EXPECT_TRUE(has("hscc.after_copy"));
}

} // namespace
} // namespace kindle::fault
