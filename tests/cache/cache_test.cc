#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"

namespace kindle::cache
{
namespace
{

/** A sink that records requests and returns a fixed latency. */
class RecordingSink : public MemSink
{
  public:
    struct Req
    {
        mem::MemCmd cmd;
        Addr addr;
    };

    Tick
    request(mem::MemCmd cmd, Addr line_addr, Tick) override
    {
        reqs.push_back({cmd, line_addr});
        return latency;
    }

    std::vector<Req> reqs;
    Tick latency = 100 * oneNs;
};

CacheParams
smallCache()
{
    return {"test", 4 * oneKiB, 2, oneNs, oneNs};  // 32 sets x 2 ways
}

TEST(CacheTest, MissThenHit)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    const Tick miss = cache.request(mem::MemCmd::read, 0x1000, 0);
    const Tick hit = cache.request(mem::MemCmd::read, 0x1000, miss);
    EXPECT_GT(miss, hit);
    EXPECT_EQ(cache.stats().scalarValue("hits"), 1);
    EXPECT_EQ(cache.stats().scalarValue("misses"), 1);
    ASSERT_EQ(sink.reqs.size(), 1u);  // one fill
    EXPECT_EQ(sink.reqs[0].cmd, mem::MemCmd::read);
}

TEST(CacheTest, WriteAllocatesAndMarksDirty)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    cache.request(mem::MemCmd::write, 0x2000, 0);
    EXPECT_TRUE(cache.contains(0x2000));
    EXPECT_TRUE(cache.isDirty(0x2000));
}

TEST(CacheTest, DirtyEvictionWritesBack)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    // Fill both ways of set 0 with dirty lines, then force eviction.
    // Set index = (addr >> 6) & 31; stride of 2 KiB maps to set 0.
    const Addr stride = 4 * oneKiB / 2;  // sets * lineSize = 2 KiB
    cache.request(mem::MemCmd::write, 0 * stride, 0);
    cache.request(mem::MemCmd::write, 1 * stride, 0);
    sink.reqs.clear();
    cache.request(mem::MemCmd::write, 2 * stride, 0);
    // Fill read + victim writeback.
    ASSERT_EQ(sink.reqs.size(), 2u);
    EXPECT_EQ(sink.reqs[0].cmd, mem::MemCmd::read);
    EXPECT_EQ(sink.reqs[1].cmd, mem::MemCmd::writeback);
    EXPECT_EQ(sink.reqs[1].addr, 0u);  // LRU victim
}

TEST(CacheTest, CleanEvictionIsSilent)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    const Addr stride = 2 * oneKiB;
    cache.request(mem::MemCmd::read, 0 * stride, 0);
    cache.request(mem::MemCmd::read, 1 * stride, 0);
    sink.reqs.clear();
    cache.request(mem::MemCmd::read, 2 * stride, 0);
    ASSERT_EQ(sink.reqs.size(), 1u);  // fill only, no writeback
}

TEST(CacheTest, LruPromotionOnHit)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    const Addr stride = 2 * oneKiB;
    cache.request(mem::MemCmd::read, 0 * stride, 0);
    cache.request(mem::MemCmd::read, 1 * stride, 0);
    // Touch way 0 again: way 1 becomes LRU.
    cache.request(mem::MemCmd::read, 0 * stride, 0);
    cache.request(mem::MemCmd::read, 2 * stride, 0);  // evicts 1
    EXPECT_TRUE(cache.contains(0 * stride));
    EXPECT_FALSE(cache.contains(1 * stride));
}

TEST(CacheTest, FlushLineWritesBackAndKeepsResident)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    cache.request(mem::MemCmd::write, 0x3000, 0);
    sink.reqs.clear();
    bool dirty = false;
    cache.flushLine(0x3000, 0, dirty);
    EXPECT_TRUE(dirty);
    ASSERT_EQ(sink.reqs.size(), 1u);
    EXPECT_EQ(sink.reqs[0].cmd, mem::MemCmd::writeback);
    EXPECT_TRUE(cache.contains(0x3000));   // clwb keeps the line
    EXPECT_FALSE(cache.isDirty(0x3000));
}

TEST(CacheTest, FlushCleanLineDoesNothing)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    cache.request(mem::MemCmd::read, 0x3000, 0);
    sink.reqs.clear();
    bool dirty = false;
    cache.flushLine(0x3000, 0, dirty);
    EXPECT_FALSE(dirty);
    EXPECT_TRUE(sink.reqs.empty());
}

TEST(CacheTest, InvalidateLineWritesBackDirty)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    cache.request(mem::MemCmd::write, 0x4000, 0);
    sink.reqs.clear();
    cache.invalidateLine(0x4000, 0);
    ASSERT_EQ(sink.reqs.size(), 1u);
    EXPECT_EQ(sink.reqs[0].cmd, mem::MemCmd::writeback);
    EXPECT_FALSE(cache.contains(0x4000));
}

TEST(CacheTest, FlushAllEmptiesTheCache)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    for (int i = 0; i < 16; ++i)
        cache.request(mem::MemCmd::write, Addr(i) * 64, 0);
    sink.reqs.clear();
    cache.flushAll(0);
    EXPECT_EQ(sink.reqs.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(cache.contains(Addr(i) * 64));
}

TEST(CacheTest, InvalidateAllIsSilent)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    cache.request(mem::MemCmd::write, 0x0, 0);
    sink.reqs.clear();
    cache.invalidateAll();
    EXPECT_TRUE(sink.reqs.empty());
    EXPECT_FALSE(cache.contains(0x0));
}

TEST(CacheTest, WritebackAllocatesWithoutFetch)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    sink.reqs.clear();
    cache.request(mem::MemCmd::writeback, 0x5000, 0);
    EXPECT_TRUE(sink.reqs.empty());  // full line: no fill read
    EXPECT_TRUE(cache.isDirty(0x5000));
}

TEST(CacheTest, HitRate)
{
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    cache.request(mem::MemCmd::read, 0, 0);
    cache.request(mem::MemCmd::read, 0, 0);
    cache.request(mem::MemCmd::read, 0, 0);
    cache.request(mem::MemCmd::read, 0, 0);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.75);
}

TEST(CacheTest, UnalignedRequestPanics)
{
    setErrorsThrow(true);
    RecordingSink sink;
    Cache cache(smallCache(), sink);
    EXPECT_THROW(cache.request(mem::MemCmd::read, 0x1001, 0),
                 SimError);
    setErrorsThrow(false);
}

} // namespace
} // namespace kindle::cache
