/**
 * @file
 * Exhaustive MESI-lite transition coverage.  The state machine is a
 * pure function (MesiDirectory::apply), so every transition is driven
 * directly; a second set of tests checks the directory's stat
 * accounting and the multi-core hierarchy integration (invalidations
 * and forced writebacks actually reach the private caches).
 */

#include <gtest/gtest.h>

#include "cache/coherence.hh"
#include "cache/hierarchy.hh"

namespace kindle::cache
{
namespace
{

constexpr bool rd = false;
constexpr bool wr = true;

TEST(MesiApplyTest, InvalidReadGoesExclusive)
{
    DirEntry e;
    const CoherenceActions a = MesiDirectory::apply(e, 0, rd);
    EXPECT_EQ(e.state, MesiState::exclusive);
    EXPECT_EQ(e.owner, 0u);
    EXPECT_EQ(e.sharers, 0b01u);
    EXPECT_EQ(a.invalidate, 0u);
    EXPECT_EQ(a.writebackFrom, 0u);
    EXPECT_FALSE(a.upgrade);
}

TEST(MesiApplyTest, InvalidWriteGoesModified)
{
    DirEntry e;
    const CoherenceActions a = MesiDirectory::apply(e, 2, wr);
    EXPECT_EQ(e.state, MesiState::modified);
    EXPECT_EQ(e.owner, 2u);
    EXPECT_EQ(e.sharers, 0b100u);
    EXPECT_EQ(a.invalidate, 0u);
    EXPECT_EQ(a.writebackFrom, 0u);
}

TEST(MesiApplyTest, ExclusiveOwnerReadStaysExclusive)
{
    DirEntry e;
    MesiDirectory::apply(e, 1, rd);
    const CoherenceActions a = MesiDirectory::apply(e, 1, rd);
    EXPECT_EQ(e.state, MesiState::exclusive);
    EXPECT_EQ(a.invalidate, 0u);
    EXPECT_EQ(a.writebackFrom, 0u);
}

TEST(MesiApplyTest, ExclusiveOwnerWriteUpgradesSilently)
{
    DirEntry e;
    MesiDirectory::apply(e, 1, rd);
    const CoherenceActions a = MesiDirectory::apply(e, 1, wr);
    EXPECT_EQ(e.state, MesiState::modified);
    EXPECT_EQ(e.owner, 1u);
    // Silent: no messages for an E->M upgrade by the owner.
    EXPECT_EQ(a.invalidate, 0u);
    EXPECT_EQ(a.writebackFrom, 0u);
    EXPECT_FALSE(a.upgrade);
}

TEST(MesiApplyTest, ExclusiveRemoteReadGoesShared)
{
    DirEntry e;
    MesiDirectory::apply(e, 0, rd);
    const CoherenceActions a = MesiDirectory::apply(e, 1, rd);
    EXPECT_EQ(e.state, MesiState::shared);
    EXPECT_EQ(e.sharers, 0b11u);
    // The clean copy needs no writeback and no invalidation.
    EXPECT_EQ(a.invalidate, 0u);
    EXPECT_EQ(a.writebackFrom, 0u);
}

TEST(MesiApplyTest, ExclusiveRemoteWriteInvalidatesOldOwner)
{
    DirEntry e;
    MesiDirectory::apply(e, 0, rd);
    const CoherenceActions a = MesiDirectory::apply(e, 1, wr);
    EXPECT_EQ(e.state, MesiState::modified);
    EXPECT_EQ(e.owner, 1u);
    EXPECT_EQ(e.sharers, 0b10u);
    EXPECT_EQ(a.invalidate, 0b01u);
    EXPECT_EQ(a.writebackFrom, 0u);  // clean copy: drop, don't push
}

TEST(MesiApplyTest, SharedReadJoinsSharerSet)
{
    DirEntry e;
    MesiDirectory::apply(e, 0, rd);
    MesiDirectory::apply(e, 1, rd);  // now S {0,1}
    const CoherenceActions a = MesiDirectory::apply(e, 2, rd);
    EXPECT_EQ(e.state, MesiState::shared);
    EXPECT_EQ(e.sharers, 0b111u);
    EXPECT_EQ(a.invalidate, 0u);
}

TEST(MesiApplyTest, SharedWriteBySharerUpgrades)
{
    DirEntry e;
    MesiDirectory::apply(e, 0, rd);
    MesiDirectory::apply(e, 1, rd);
    MesiDirectory::apply(e, 2, rd);  // S {0,1,2}
    const CoherenceActions a = MesiDirectory::apply(e, 1, wr);
    EXPECT_EQ(e.state, MesiState::modified);
    EXPECT_EQ(e.owner, 1u);
    EXPECT_EQ(e.sharers, 0b10u);
    EXPECT_TRUE(a.upgrade);
    // Every sharer but the writer is invalidated.
    EXPECT_EQ(a.invalidate, 0b101u);
    EXPECT_EQ(a.writebackFrom, 0u);
}

TEST(MesiApplyTest, SharedWriteByNonSharerInvalidatesAll)
{
    DirEntry e;
    MesiDirectory::apply(e, 0, rd);
    MesiDirectory::apply(e, 1, rd);  // S {0,1}
    const CoherenceActions a = MesiDirectory::apply(e, 3, wr);
    EXPECT_EQ(e.state, MesiState::modified);
    EXPECT_EQ(e.owner, 3u);
    EXPECT_EQ(e.sharers, 0b1000u);
    EXPECT_FALSE(a.upgrade);  // the writer held no copy
    EXPECT_EQ(a.invalidate, 0b11u);
}

TEST(MesiApplyTest, ModifiedOwnerAccessIsFree)
{
    DirEntry e;
    MesiDirectory::apply(e, 0, wr);
    for (const bool is_write : {rd, wr}) {
        const CoherenceActions a = MesiDirectory::apply(e, 0, is_write);
        EXPECT_EQ(e.state, MesiState::modified);
        EXPECT_EQ(a.invalidate, 0u);
        EXPECT_EQ(a.writebackFrom, 0u);
    }
}

TEST(MesiApplyTest, ModifiedRemoteReadForcesWriteback)
{
    DirEntry e;
    MesiDirectory::apply(e, 0, wr);
    const CoherenceActions a = MesiDirectory::apply(e, 1, rd);
    EXPECT_EQ(e.state, MesiState::shared);
    EXPECT_EQ(e.sharers, 0b11u);
    EXPECT_EQ(a.writebackFrom, 0b01u);  // owner pushes dirty copy down
    EXPECT_EQ(a.invalidate, 0u);        // ... but keeps a clean copy
}

TEST(MesiApplyTest, ModifiedRemoteWriteTransfersOwnership)
{
    DirEntry e;
    MesiDirectory::apply(e, 0, wr);
    const CoherenceActions a = MesiDirectory::apply(e, 1, wr);
    EXPECT_EQ(e.state, MesiState::modified);
    EXPECT_EQ(e.owner, 1u);
    EXPECT_EQ(e.sharers, 0b10u);
    // Invalidation of a dirty line writes it back on the way out, so
    // a plain invalidate message is all the protocol sends.
    EXPECT_EQ(a.invalidate, 0b01u);
    EXPECT_EQ(a.writebackFrom, 0u);
}

TEST(MesiDirectoryTest, CleanLineDemotesModifiedToExclusive)
{
    MesiDirectory dir(4);
    dir.access(0x1000, 0, wr);
    dir.cleanLine(0x1000);
    EXPECT_EQ(dir.lookup(0x1000).state, MesiState::exclusive);
    EXPECT_EQ(dir.lookup(0x1000).owner, 0u);
    // cleanLine on shared / untracked lines is a no-op.
    dir.access(0x2000, 0, rd);
    dir.access(0x2000, 1, rd);
    dir.cleanLine(0x2000);
    EXPECT_EQ(dir.lookup(0x2000).state, MesiState::shared);
    dir.cleanLine(0x9000);
    EXPECT_EQ(dir.lookup(0x9000).state, MesiState::invalid);
}

TEST(MesiDirectoryTest, DropLineAndResetForgetCopies)
{
    MesiDirectory dir(2);
    dir.access(0x1000, 0, wr);
    dir.access(0x2000, 1, rd);
    dir.dropLine(0x1000);
    EXPECT_EQ(dir.lookup(0x1000).state, MesiState::invalid);
    EXPECT_EQ(dir.lookup(0x2000).state, MesiState::exclusive);
    dir.reset();
    EXPECT_EQ(dir.lookup(0x2000).state, MesiState::invalid);
}

TEST(MesiDirectoryTest, StatsCountProtocolTraffic)
{
    MesiDirectory dir(4);
    dir.access(0x1000, 0, rd);  // I->E
    dir.access(0x1000, 1, rd);  // E->S: a shared fill
    dir.access(0x1000, 1, wr);  // S->M: upgrade + 1 invalidation
    dir.access(0x1000, 2, rd);  // M->S: forced writeback + fill
    auto &st = dir.stats();
    EXPECT_EQ(st.scalarValue("invalidations"), 1);
    EXPECT_EQ(st.scalarValue("writebacksForced"), 1);
    EXPECT_EQ(st.scalarValue("upgrades"), 1);
    EXPECT_EQ(st.scalarValue("sharedFills"), 2);
}

TEST(MesiDirectoryTest, OfflineCoreDropsOwnedLines)
{
    MesiDirectory dir(4);
    dir.access(0x1000, 1, wr);  // M, owned by 1
    dir.access(0x2000, 1, rd);  // E, owned by 1
    dir.access(0x3000, 0, wr);  // M, owned by a survivor
    dir.offlineCore(1);
    // The dead core's private caches were flushed: the LLC copy is
    // authoritative and the lines go untracked.
    EXPECT_EQ(dir.lookup(0x1000).state, MesiState::invalid);
    EXPECT_EQ(dir.lookup(0x2000).state, MesiState::invalid);
    // Other cores' claims are untouched.
    EXPECT_EQ(dir.lookup(0x3000).state, MesiState::modified);
    EXPECT_EQ(dir.lookup(0x3000).owner, 0u);
}

TEST(MesiDirectoryTest, OfflineCoreClearsSharerBit)
{
    MesiDirectory dir(4);
    dir.access(0x1000, 0, rd);
    dir.access(0x1000, 1, rd);  // S {0,1}
    dir.offlineCore(1);
    EXPECT_EQ(dir.lookup(0x1000).state, MesiState::shared);
    EXPECT_EQ(dir.lookup(0x1000).sharers, 0b01u);
}

TEST(MesiDirectoryTest, OfflineCoreErasesLineWithNoSharersLeft)
{
    MesiDirectory dir(4);
    dir.access(0x1000, 1, rd);
    dir.access(0x1000, 2, rd);  // S {1,2}
    dir.offlineCore(1);
    EXPECT_EQ(dir.lookup(0x1000).state, MesiState::shared);
    dir.offlineCore(2);
    EXPECT_EQ(dir.lookup(0x1000).state, MesiState::invalid);
}

TEST(MesiDirectoryTest, StateNamesAreStable)
{
    EXPECT_STREQ(mesiStateName(MesiState::invalid), "I");
    EXPECT_STREQ(mesiStateName(MesiState::shared), "S");
    EXPECT_STREQ(mesiStateName(MesiState::exclusive), "E");
    EXPECT_STREQ(mesiStateName(MesiState::modified), "M");
}

// ---- Hierarchy integration -------------------------------------

mem::HybridMemoryParams
smallMem()
{
    mem::HybridMemoryParams p;
    p.dramBytes = 64 * oneMiB;
    p.nvmBytes = 64 * oneMiB;
    return p;
}

struct SmpRig
{
    SmpRig(unsigned cores)
        : memory(smallMem()),
          hier(HierarchyParams{}, memory, cores)
    {}

    mem::HybridMemory memory;
    Hierarchy hier;
};

TEST(HierarchySmpTest, SingleCoreHasNoDirectory)
{
    SmpRig rig(1);
    EXPECT_EQ(rig.hier.directory(), nullptr);
}

TEST(HierarchySmpTest, RemoteWriteEvictsOtherCoresPrivateCopy)
{
    SmpRig rig(2);
    rig.hier.access(0, mem::MemCmd::read, 0x10000, 8, 0);
    ASSERT_TRUE(rig.hier.l1(0).contains(0x10000));
    rig.hier.access(1, mem::MemCmd::write, 0x10000, 8, 0);
    EXPECT_FALSE(rig.hier.l1(0).contains(0x10000));
    EXPECT_FALSE(rig.hier.l2(0).contains(0x10000));
    EXPECT_TRUE(rig.hier.l1(1).contains(0x10000));
    EXPECT_EQ(rig.hier.directory()->lookup(0x10000).state,
              MesiState::modified);
}

TEST(HierarchySmpTest, RemoteReadOfDirtyLineForcesWriteback)
{
    SmpRig rig(2);
    rig.hier.access(0, mem::MemCmd::write, 0x20000, 8, 0);
    rig.hier.access(1, mem::MemCmd::read, 0x20000, 8, 0);
    // Both private hierarchies keep a (now clean) copy.
    EXPECT_TRUE(rig.hier.l1(0).contains(0x20000));
    EXPECT_TRUE(rig.hier.l1(1).contains(0x20000));
    EXPECT_EQ(rig.hier.directory()->lookup(0x20000).state,
              MesiState::shared);
    EXPECT_EQ(
        rig.hier.directory()->stats().scalarValue("writebacksForced"),
        1);
}

TEST(HierarchySmpTest, CoherenceTrafficCostsLatency)
{
    SmpRig contended(2);
    contended.hier.access(0, mem::MemCmd::write, 0x30000, 8, 0);
    const Tick shared_read =
        contended.hier.access(1, mem::MemCmd::read, 0x30000, 8, 0)
            .latency;

    SmpRig quiet(2);
    quiet.hier.access(0, mem::MemCmd::write, 0x30000, 8, 0);
    const Tick local_read =
        quiet.hier.access(0, mem::MemCmd::read, 0x30000, 8, 0).latency;

    // Pulling a dirty line out of another core's private cache is
    // strictly slower than re-reading one's own copy.
    EXPECT_GT(shared_read, local_read);
}

TEST(HierarchySmpTest, OfflineCoreFlushesPrivateCachesThroughLlc)
{
    SmpRig rig(2);
    rig.hier.access(1, mem::MemCmd::write, 0x50000, 8, 0);
    ASSERT_TRUE(rig.hier.l1(1).contains(0x50000));
    const Tick cost = rig.hier.offlineCore(1, 0);
    EXPECT_GT(cost, 0u);  // the dirty line had to be written back
    EXPECT_FALSE(rig.hier.l1(1).contains(0x50000));
    EXPECT_FALSE(rig.hier.l2(1).contains(0x50000));
    EXPECT_EQ(rig.hier.directory()->lookup(0x50000).state,
              MesiState::invalid);
    // The survivor reads the flushed data without coherence traffic
    // to the dead core.
    const auto inval_before =
        rig.hier.directory()->stats().scalarValue("invalidations");
    rig.hier.access(0, mem::MemCmd::read, 0x50000, 8, 0);
    EXPECT_TRUE(rig.hier.l1(0).contains(0x50000));
    EXPECT_EQ(rig.hier.directory()->stats().scalarValue(
                  "invalidations"),
              inval_before);
}

TEST(HierarchySmpTest, FlushAllResetsDirectory)
{
    SmpRig rig(2);
    rig.hier.access(0, mem::MemCmd::write, 0x40000, 8, 0);
    rig.hier.flushAll(0);
    EXPECT_EQ(rig.hier.directory()->lookup(0x40000).state,
              MesiState::invalid);
}

} // namespace
} // namespace kindle::cache
