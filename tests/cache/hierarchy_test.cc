#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace kindle::cache
{
namespace
{

mem::HybridMemoryParams
smallMem()
{
    mem::HybridMemoryParams p;
    p.dramBytes = 64 * oneMiB;
    p.nvmBytes = 64 * oneMiB;
    return p;
}

struct Rig
{
    Rig() : memory(smallMem()), hier(HierarchyParams{}, memory) {}

    mem::HybridMemory memory;
    Hierarchy hier;
};

TEST(HierarchyTest, MissFillsAllLevels)
{
    Rig rig;
    rig.hier.access(mem::MemCmd::read, 0x10000, 8, 0);
    EXPECT_TRUE(rig.hier.l1().contains(0x10000));
    EXPECT_TRUE(rig.hier.l2().contains(0x10000));
    EXPECT_TRUE(rig.hier.llc().contains(0x10000));
}

TEST(HierarchyTest, HitLatencyOrdering)
{
    Rig rig;
    const Tick miss =
        rig.hier.access(mem::MemCmd::read, 0x10000, 8, 0).latency;
    const Tick l1_hit =
        rig.hier.access(mem::MemCmd::read, 0x10000, 8, 0).latency;
    EXPECT_GT(miss, 10 * l1_hit);
}

TEST(HierarchyTest, LlcMissFlagOnlyOnMemoryAccess)
{
    Rig rig;
    const auto first =
        rig.hier.access(mem::MemCmd::read, 0x20000, 8, 0);
    EXPECT_TRUE(first.llcMiss);
    const auto second =
        rig.hier.access(mem::MemCmd::read, 0x20000, 8, 0);
    EXPECT_FALSE(second.llcMiss);
}

TEST(HierarchyTest, MultiLineAccessTouchesEveryLine)
{
    Rig rig;
    rig.hier.access(mem::MemCmd::read, 0x30000, 256, 0);
    for (Addr a = 0x30000; a < 0x30000 + 256; a += lineSize)
        EXPECT_TRUE(rig.hier.l1().contains(a));
}

TEST(HierarchyTest, AccessStraddlingLineBoundary)
{
    Rig rig;
    // 8 bytes starting 4 bytes before a line boundary: two lines.
    rig.hier.access(mem::MemCmd::read, 0x10000 + 60, 8, 0);
    EXPECT_TRUE(rig.hier.l1().contains(0x10000));
    EXPECT_TRUE(rig.hier.l1().contains(0x10040));
}

TEST(HierarchyTest, ClwbMakesNvmLineDurable)
{
    Rig rig;
    const Addr nvm = rig.memory.nvmRange().start() + 0x1000;
    rig.memory.writeT<std::uint64_t>(nvm, 42);     // volatile overlay
    rig.hier.access(mem::MemCmd::write, nvm, 8, 0);  // dirty in cache
    EXPECT_EQ(rig.memory.nvmPendingLines(), 1u);

    rig.hier.clwb(nvm, 0);
    EXPECT_EQ(rig.memory.nvmPendingLines(), 0u);
    // The flushed line sits in the controller buffer until the device
    // drain completes; a fence (or time) makes it durable.
    rig.memory.drainWrites(rig.memory.nvmCtrl().writesDrainedAt());
    std::uint64_t v = 0;
    rig.memory.readNvmDurable(nvm, &v, 8);
    EXPECT_EQ(v, 42u);
    // clwb keeps the line cached (clean).
    EXPECT_TRUE(rig.hier.l1().contains(nvm));
    EXPECT_FALSE(rig.hier.l1().isDirty(nvm));
}

TEST(HierarchyTest, ClflushInvalidatesEverywhere)
{
    Rig rig;
    rig.hier.access(mem::MemCmd::write, 0x40000, 8, 0);
    rig.hier.clflush(0x40000, 0);
    EXPECT_FALSE(rig.hier.l1().contains(0x40000));
    EXPECT_FALSE(rig.hier.l2().contains(0x40000));
    EXPECT_FALSE(rig.hier.llc().contains(0x40000));
}

TEST(HierarchyTest, DirtyLineOnlyInL1StillReachesMemoryOnClwb)
{
    Rig rig;
    const Addr nvm = rig.memory.nvmRange().start() + 0x2000;
    rig.memory.writeT<std::uint64_t>(nvm, 7);
    rig.hier.access(mem::MemCmd::write, nvm, 8, 0);
    // Dirty copy lives in L1 (L2/LLC hold clean fill copies); the
    // chained flush must push the newest copy to the device.
    rig.hier.clwb(nvm, 0);
    rig.memory.drainWrites(rig.memory.nvmCtrl().writesDrainedAt());
    std::uint64_t v = 0;
    rig.memory.readNvmDurable(nvm, &v, 8);
    EXPECT_EQ(v, 7u);
}

TEST(HierarchyTest, LlcEvictionCommitsNvmWriteback)
{
    Rig rig;
    const Addr nvm_base = rig.memory.nvmRange().start();
    rig.memory.writeT<std::uint64_t>(nvm_base, 11);
    rig.hier.access(mem::MemCmd::write, nvm_base, 8, 0);
    EXPECT_EQ(rig.memory.nvmPendingLines(), 1u);

    // Thrash the LLC with >2 MiB of distinct lines so the dirty NVM
    // line is eventually written back to the device.
    for (Addr a = 0; a < 8 * oneMiB; a += lineSize)
        rig.hier.access(mem::MemCmd::read, a + oneMiB, 8, 0);
    EXPECT_EQ(rig.memory.nvmPendingLines(), 0u);
}

TEST(HierarchyTest, FlushAllDrainsEverything)
{
    Rig rig;
    const Addr nvm = rig.memory.nvmRange().start();
    for (int i = 0; i < 64; ++i) {
        rig.memory.writeT<std::uint64_t>(nvm + i * lineSize, i);
        rig.hier.access(mem::MemCmd::write, nvm + i * lineSize, 8, 0);
    }
    rig.hier.flushAll(0);
    EXPECT_EQ(rig.memory.nvmPendingLines(), 0u);
}

TEST(HierarchyTest, InvalidateAllLosesDirtyData)
{
    Rig rig;
    const Addr nvm = rig.memory.nvmRange().start() + 0x3000;
    rig.memory.writeT<std::uint64_t>(nvm, 9);
    rig.hier.access(mem::MemCmd::write, nvm, 8, 0);
    rig.hier.invalidateAll();  // power loss
    EXPECT_EQ(rig.memory.nvmPendingLines(), 1u);  // still pending
    rig.memory.crash();
    std::uint64_t v = 1;
    rig.memory.readNvmDurable(nvm, &v, 8);
    EXPECT_EQ(v, 0u);  // the store never became durable
}

TEST(HierarchyTest, SfenceHasFixedCost)
{
    Rig rig;
    EXPECT_EQ(rig.hier.sfence(0), 30 * oneNs);
}

TEST(HierarchyTest, DefaultGeometryMatchesPaper)
{
    const HierarchyParams p;
    EXPECT_EQ(p.l1.sizeBytes, 32 * oneKiB);
    EXPECT_EQ(p.l2.sizeBytes, 512 * oneKiB);
    EXPECT_EQ(p.llc.sizeBytes, 2 * oneMiB);
}

} // namespace
} // namespace kindle::cache
