#include <gtest/gtest.h>

#include "base/logging.hh"
#include "kindle/microbench.hh"

namespace kindle::micro
{
namespace
{

std::vector<cpu::Op>
drain(ScriptStream &s)
{
    std::vector<cpu::Op> ops;
    cpu::Op op;
    while (s.next(op))
        ops.push_back(op);
    return ops;
}

TEST(ScriptBuilderTest, BuildsOpsInOrder)
{
    ScriptBuilder b;
    b.mmapFixed(0x1000, pageSize, true)
        .write(0x1000)
        .read(0x1000)
        .compute(5)
        .munmap(0x1000, pageSize)
        .exit();
    auto stream = b.build();
    const auto ops = drain(*stream);
    ASSERT_EQ(ops.size(), 6u);
    EXPECT_EQ(ops[0].kind, cpu::Op::Kind::mmap);
    EXPECT_TRUE(ops[0].flags & cpu::mapNvm);
    EXPECT_TRUE(ops[0].flags & cpu::mapFixed);
    EXPECT_EQ(ops[1].kind, cpu::Op::Kind::write);
    EXPECT_EQ(ops[2].kind, cpu::Op::Kind::read);
    EXPECT_EQ(ops[3].kind, cpu::Op::Kind::compute);
    EXPECT_EQ(ops[3].size, 5u);
    EXPECT_EQ(ops[4].kind, cpu::Op::Kind::munmap);
    EXPECT_EQ(ops[5].kind, cpu::Op::Kind::exit);
}

TEST(ScriptBuilderTest, TouchPagesCoversRange)
{
    ScriptBuilder b;
    b.touchPages(0x10000, 4 * pageSize);
    const auto ops = drain(*b.build());
    ASSERT_EQ(ops.size(), 4u);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(ops[i].kind, cpu::Op::Kind::write);
        EXPECT_EQ(ops[i].addr, 0x10000 + Addr(i) * pageSize);
    }
}

TEST(ScriptBuilderTest, FaseMarkers)
{
    ScriptBuilder b;
    b.faseStart().write(0x1000).faseEnd();
    const auto ops = drain(*b.build());
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].kind, cpu::Op::Kind::faseStart);
    EXPECT_EQ(ops[2].kind, cpu::Op::Kind::faseEnd);
}

TEST(SeqAllocTouchTest, Structure)
{
    auto s = seqAllocTouch(8 * pageSize);
    const auto ops = drain(*s);
    // mmap + 8 touches + munmap + exit.
    ASSERT_EQ(ops.size(), 11u);
    EXPECT_EQ(ops.front().kind, cpu::Op::Kind::mmap);
    EXPECT_EQ(ops.back().kind, cpu::Op::Kind::exit);
}

TEST(StrideAllocTest, PlacesPagesAtStride)
{
    auto s = strideAlloc(2 * oneMiB, 4);
    const auto ops = drain(*s);
    // 4 mmaps, 4 writes, 4 munmaps, exit.
    ASSERT_EQ(ops.size(), 13u);
    EXPECT_EQ(ops[1].addr - ops[0].addr, 2 * oneMiB);
    EXPECT_EQ(ops[4].kind, cpu::Op::Kind::write);
}

TEST(StrideAllocTest, AccessRoundsInsertReadsAndCompute)
{
    auto s = strideAlloc(4 * oneKiB, 2, true, 3, 100);
    const auto ops = drain(*s);
    unsigned reads = 0;
    unsigned computes = 0;
    for (const auto &op : ops) {
        reads += (op.kind == cpu::Op::Kind::read);
        computes += (op.kind == cpu::Op::Kind::compute);
    }
    EXPECT_EQ(reads, 6u);     // 3 rounds x 2 pages
    EXPECT_EQ(computes, 3u);  // one per round
}

TEST(ChurnBenchTest, RoundsFreeAndReallocate)
{
    auto s = churnBench(8 * pageSize, 4 * pageSize, 2, 1);
    const auto ops = drain(*s);
    unsigned munmaps = 0;
    unsigned mmaps = 0;
    for (const auto &op : ops) {
        munmaps += (op.kind == cpu::Op::Kind::munmap);
        mmaps += (op.kind == cpu::Op::Kind::mmap);
    }
    // 1 arena mmap + 2 churn mmaps; 2 churn munmaps + final munmap.
    EXPECT_EQ(mmaps, 3u);
    EXPECT_EQ(munmaps, 3u);
    EXPECT_EQ(ops.back().kind, cpu::Op::Kind::exit);
}

TEST(ChurnBenchTest, OversizedChurnPanics)
{
    kindle::setErrorsThrow(true);
    EXPECT_THROW(churnBench(4 * pageSize, 8 * pageSize),
                 kindle::SimError);
    kindle::setErrorsThrow(false);
}

TEST(ScriptStreamTest, ExhaustionIsSticky)
{
    ScriptBuilder b;
    b.compute(1);
    auto s = b.build();
    cpu::Op op;
    EXPECT_TRUE(s->next(op));
    EXPECT_FALSE(s->next(op));
    EXPECT_FALSE(s->next(op));
}

} // namespace
} // namespace kindle::micro
