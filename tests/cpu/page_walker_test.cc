#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cpu/page_walker.hh"

namespace kindle::cpu
{
namespace
{

/** Test rig with a hand-built page table. */
struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 64 * oneMiB;
              p.nvmBytes = 64 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          walker(memory, hier)
    {
        root = allocFrame();
    }

    Addr
    allocFrame()
    {
        const Addr f = nextFrame;
        nextFrame += pageSize;
        return f;
    }

    /** Minimal 4-level insert writing entries functionally. */
    void
    mapPage(Addr vaddr, Addr frame, bool nvm_backed = false)
    {
        Addr table = root;
        for (int level = ptLevels - 1; level > 0; --level) {
            const Addr ea =
                table + ptIndex(vaddr, unsigned(level)) * ptEntrySize;
            Pte pte{memory.readT<std::uint64_t>(ea)};
            if (!pte.present()) {
                const Addr child = allocFrame();
                Pte fresh;
                fresh.setPresent(true);
                fresh.setWritable(true);
                fresh.setPfn(child >> pageShift);
                memory.writeT<std::uint64_t>(ea, fresh.raw);
                table = child;
            } else {
                table = pte.frameAddr();
            }
        }
        Pte leaf;
        leaf.setPresent(true);
        leaf.setWritable(true);
        leaf.setNvmBacked(nvm_backed);
        leaf.setPfn(frame >> pageShift);
        memory.writeT<std::uint64_t>(
            table + ptIndex(vaddr, 0) * ptEntrySize, leaf.raw);
    }

    mem::HybridMemory memory;
    cache::Hierarchy hier;
    PageWalker walker;
    Addr root = 0;
    Addr nextFrame = 16 * oneMiB;
};

TEST(PageWalkerTest, TranslatesMappedPage)
{
    Rig rig;
    rig.mapPage(0x7f0000001000, 0x123000);
    const auto res = rig.walker.walk(rig.root, 0x7f0000001234, 0);
    EXPECT_FALSE(res.fault);
    EXPECT_EQ(res.leaf.frameAddr(), 0x123000u);
    EXPECT_TRUE(res.leaf.writable());
    EXPECT_GT(res.latency, 0u);
}

TEST(PageWalkerTest, LeafAddrPointsAtTheEntry)
{
    Rig rig;
    rig.mapPage(0x1000, 0x200000);
    const auto res = rig.walker.walk(rig.root, 0x1000, 0);
    ASSERT_FALSE(res.fault);
    // Rewriting through leafAddr must change the translation.
    Pte p{rig.memory.readT<std::uint64_t>(res.leafAddr)};
    EXPECT_EQ(p.frameAddr(), 0x200000u);
}

TEST(PageWalkerTest, FaultsOnHole)
{
    Rig rig;
    const auto res = rig.walker.walk(rig.root, 0xdead000, 0);
    EXPECT_TRUE(res.fault);
    EXPECT_EQ(res.faultLevel, 3u);  // empty root
}

TEST(PageWalkerTest, FaultLevelReflectsDepth)
{
    Rig rig;
    rig.mapPage(0x1000, 0x300000);
    // Same 2 MiB region: leaf table exists, entry absent → level 0.
    const auto res = rig.walker.walk(rig.root, 0x2000, 0);
    EXPECT_TRUE(res.fault);
    EXPECT_EQ(res.faultLevel, 0u);
}

TEST(PageWalkerTest, CachedWalkIsFaster)
{
    Rig rig;
    rig.mapPage(0x5000, 0x400000);
    const Tick cold = rig.walker.walk(rig.root, 0x5000, 0).latency;
    const Tick warm = rig.walker.walk(rig.root, 0x5000, 0).latency;
    EXPECT_LT(warm, cold);
}

TEST(PageWalkerTest, NvmHostedTableWalksSlowerWhenCold)
{
    // Build one rig with the table frames in DRAM and one with them
    // in NVM; cold walks through NVM must cost more.
    Rig dram_rig;
    dram_rig.mapPage(0x9000, 0x500000);
    const Tick dram_cold =
        dram_rig.walker.walk(dram_rig.root, 0x9000, 0).latency;

    Rig nvm_rig;
    nvm_rig.nextFrame = nvm_rig.memory.nvmRange().start();
    // Rebuild the root inside NVM.
    nvm_rig.root = nvm_rig.allocFrame();
    nvm_rig.mapPage(0x9000, 0x500000);
    const Tick nvm_cold =
        nvm_rig.walker.walk(nvm_rig.root, 0x9000, 0).latency;

    EXPECT_GT(nvm_cold, dram_cold);
}

TEST(PageWalkerTest, NvmBackedFlagSurfaces)
{
    Rig rig;
    rig.mapPage(0xa000, 0x600000, /*nvm_backed=*/true);
    const auto res = rig.walker.walk(rig.root, 0xa000, 0);
    EXPECT_TRUE(res.leaf.nvmBacked());
}

TEST(PageWalkerTest, StatsCountWalksAndFaults)
{
    Rig rig;
    rig.mapPage(0x1000, 0x700000);
    rig.walker.walk(rig.root, 0x1000, 0);
    rig.walker.walk(rig.root, 0xffff000, 0);
    EXPECT_EQ(rig.walker.stats().scalarValue("walks"), 2);
    EXPECT_EQ(rig.walker.stats().scalarValue("faults"), 1);
}

} // namespace
} // namespace kindle::cpu
