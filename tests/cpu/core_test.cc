#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "sim/simulation.hh"

namespace kindle::cpu
{
namespace
{

/** A miniature demand-paging OS for core unit tests. */
class MiniOs : public FaultHandler
{
  public:
    MiniOs(mem::HybridMemory &memory) : memory(memory)
    {
        root = allocFrame();
    }

    Addr
    allocFrame()
    {
        const Addr f = nextFrame;
        nextFrame += pageSize;
        return f;
    }

    bool
    handlePageFault(Core &, Addr vaddr, bool) override
    {
        ++faults;
        if (vaddr >= refuseAbove)
            return false;
        mapPage(roundDown(vaddr, pageSize), allocFrame());
        return true;
    }

    void
    mapPage(Addr vaddr, Addr frame)
    {
        Addr table = root;
        for (int level = ptLevels - 1; level > 0; --level) {
            const Addr ea =
                table + ptIndex(vaddr, unsigned(level)) * ptEntrySize;
            Pte pte{memory.readT<std::uint64_t>(ea)};
            if (!pte.present()) {
                const Addr child = allocFrame();
                Pte fresh;
                fresh.setPresent(true);
                fresh.setWritable(true);
                fresh.setPfn(child >> pageShift);
                memory.writeT<std::uint64_t>(ea, fresh.raw);
                table = child;
            } else {
                table = pte.frameAddr();
            }
        }
        Pte leaf;
        leaf.setPresent(true);
        leaf.setWritable(true);
        leaf.setPfn(frame >> pageShift);
        memory.writeT<std::uint64_t>(
            table + ptIndex(vaddr, 0) * ptEntrySize, leaf.raw);
    }

    mem::HybridMemory &memory;
    Addr root = 0;
    Addr nextFrame = 16 * oneMiB;
    Addr refuseAbove = maxTick;
    int faults = 0;
};

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 128 * oneMiB;
              p.nvmBytes = 64 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          core(CoreParams{}, sim, memory, hier),
          minios(memory)
    {
        core.setFaultHandler(&minios);
        core.setContext(1, minios.root);
    }

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    Core core;
    MiniOs minios;
};

TEST(CoreTest, DemandPagingOnFirstTouch)
{
    Rig rig;
    EXPECT_TRUE(rig.core.memAccess(true, 0x100000, 8));
    EXPECT_EQ(rig.minios.faults, 1);
    // Second access: no fault, served from the TLB.
    EXPECT_TRUE(rig.core.memAccess(false, 0x100000, 8));
    EXPECT_EQ(rig.minios.faults, 1);
    EXPECT_GE(rig.core.tlb().stats().scalarValue("l1Hits"), 1);
}

TEST(CoreTest, IllegalAccessReturnsFalse)
{
    Rig rig;
    rig.minios.refuseAbove = oneGiB;
    EXPECT_FALSE(rig.core.memAccess(true, 2 * oneGiB, 8));
    EXPECT_EQ(rig.core.stats().scalarValue("illegalAccesses"), 1);
}

TEST(CoreTest, TimeAdvancesWithEveryOp)
{
    Rig rig;
    const Tick t0 = rig.sim.now();
    rig.core.memAccess(true, 0x200000, 8);
    const Tick t1 = rig.sim.now();
    EXPECT_GT(t1, t0);
    rig.core.compute(300);
    EXPECT_EQ(rig.sim.now(), t1 + 300 * 333);
}

TEST(CoreTest, PageStraddlingAccessFaultsBothPages)
{
    Rig rig;
    EXPECT_TRUE(rig.core.memAccess(true, 0x30000000 + pageSize - 4,
                                   8));
    EXPECT_EQ(rig.minios.faults, 2);
}

TEST(CoreTest, TranslateReturnsPhysicalAddress)
{
    Rig rig;
    rig.core.memAccess(true, 0x400000, 8);  // establish mapping
    const Addr pa = rig.core.translate(0x400123, false);
    EXPECT_NE(pa, invalidAddr);
    EXPECT_EQ(pa & (pageSize - 1), 0x123u);
}

TEST(CoreTest, HooksObserveFillsWritesAndLlcMisses)
{
    struct Spy : CoreHooks
    {
        void
        onTlbFill(TlbEntry &, const Pte &) override
        {
            ++fills;
        }
        void
        onDataWrite(TlbEntry &, Addr, std::uint64_t) override
        {
            ++writes;
        }
        void
        onLlcMiss(TlbEntry &, Addr, bool) override
        {
            ++misses;
        }
        int fills = 0;
        int writes = 0;
        int misses = 0;
    } spy;

    Rig rig;
    rig.core.addHooks(&spy);
    rig.core.memAccess(true, 0x500000, 8);
    EXPECT_EQ(spy.fills, 1);
    EXPECT_EQ(spy.writes, 1);
    EXPECT_EQ(spy.misses, 1);

    rig.core.memAccess(false, 0x500000, 8);  // warm: no new events
    EXPECT_EQ(spy.fills, 1);
    EXPECT_EQ(spy.misses, 1);

    rig.core.removeHooks(&spy);
    rig.core.memAccess(true, 0x600000, 8);
    EXPECT_EQ(spy.fills, 1);
}

TEST(CoreTest, ServiceRunsDueEventsBetweenOps)
{
    Rig rig;
    int fired = 0;
    sim::CallbackEvent ev("tick", [&] { ++fired; });
    rig.sim.eventq().schedule(&ev, rig.sim.now() + 1);
    rig.core.memAccess(true, 0x700000, 8);
    EXPECT_EQ(fired, 0);  // not yet due when service() ran... or due
    rig.core.compute(1000);
    EXPECT_EQ(fired, 1);
}

TEST(CoreTest, ResetClearsVolatileState)
{
    Rig rig;
    rig.core.memAccess(true, 0x800000, 8);
    rig.core.msrs().write(MsrId::sspEnable, 1);
    rig.core.state().gpr[0] = 42;

    rig.core.reset();
    EXPECT_EQ(rig.core.msrs().read(MsrId::sspEnable), 0u);
    EXPECT_EQ(rig.core.state().gpr[0], 0u);
    EXPECT_EQ(rig.core.ptbr(), invalidAddr);
    Tick extra;
    EXPECT_EQ(rig.core.tlb().lookup(1, vpnOf(0x800000), extra),
              nullptr);
}

TEST(CoreTest, RipAdvancesPerInstruction)
{
    Rig rig;
    const auto rip0 = rig.core.state().rip;
    rig.core.memAccess(true, 0x900000, 8);
    rig.core.compute(1);
    EXPECT_EQ(rig.core.state().rip, rip0 + 8);
}

} // namespace
} // namespace kindle::cpu
