#include <gtest/gtest.h>

#include <set>

#include "cpu/tlb.hh"

namespace kindle::cpu
{
namespace
{

TlbEntry
makeEntry(Pid pid, std::uint64_t vpn, std::uint64_t pfn = 0)
{
    TlbEntry e;
    e.valid = true;
    e.pid = pid;
    e.vpn = vpn;
    e.pfn = pfn ? pfn : vpn + 1000;
    return e;
}

TlbParams
smallTlb()
{
    TlbParams p;
    p.l1Entries = 4;
    p.l2Entries = 48;  // 12 ways x 4 sets
    return p;
}

TEST(TlbTest, FillThenHit)
{
    Tlb tlb(smallTlb());
    tlb.fill(makeEntry(1, 0x10));
    Tick extra = 99;
    TlbEntry *e = tlb.lookup(1, 0x10, extra);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(extra, 0u);  // L1 hit
    EXPECT_EQ(e->pfn, 0x10u + 1000u);
}

TEST(TlbTest, MissReturnsNull)
{
    Tlb tlb(smallTlb());
    Tick extra = 0;
    EXPECT_EQ(tlb.lookup(1, 0x99, extra), nullptr);
}

TEST(TlbTest, PidTagsSeparateProcesses)
{
    Tlb tlb(smallTlb());
    tlb.fill(makeEntry(1, 0x10, 0xaaa));
    tlb.fill(makeEntry(2, 0x10, 0xbbb));
    Tick extra;
    EXPECT_EQ(tlb.lookup(1, 0x10, extra)->pfn, 0xaaau);
    EXPECT_EQ(tlb.lookup(2, 0x10, extra)->pfn, 0xbbbu);
}

TEST(TlbTest, L1OverflowDemotesToL2)
{
    Tlb tlb(smallTlb());
    for (std::uint64_t v = 0; v < 8; ++v)
        tlb.fill(makeEntry(1, v));
    // Early entries must still hit, via L2 with extra latency.
    Tick extra = 0;
    TlbEntry *e = tlb.lookup(1, 0, extra);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(extra, smallTlb().l2HitLatency);
    EXPECT_EQ(tlb.stats().scalarValue("l2Hits"), 1);
}

TEST(TlbTest, L2HitPromotesBackToL1)
{
    Tlb tlb(smallTlb());
    for (std::uint64_t v = 0; v < 8; ++v)
        tlb.fill(makeEntry(1, v));
    Tick extra;
    tlb.lookup(1, 0, extra);  // promote from L2
    tlb.lookup(1, 0, extra);  // now an L1 hit
    EXPECT_EQ(extra, 0u);
}

TEST(TlbTest, EvictHookFiresWithMetadata)
{
    Tlb tlb(smallTlb());
    std::set<std::uint64_t> evicted;
    tlb.addEvictHook([&](const TlbEntry &e) { evicted.insert(e.vpn); });
    // Overflow both levels of one L2 set: VPNs congruent mod 4 land
    // in the same set; 12 ways + 4 L1 slots hold 16.
    for (std::uint64_t v = 0; v < 32; ++v)
        tlb.fill(makeEntry(1, v * 4));
    EXPECT_FALSE(evicted.empty());
}

TEST(TlbTest, RemoveEvictHookSilences)
{
    Tlb tlb(smallTlb());
    int count = 0;
    const auto h =
        tlb.addEvictHook([&](const TlbEntry &) { ++count; });
    tlb.removeEvictHook(h);
    for (std::uint64_t v = 0; v < 64; ++v)
        tlb.fill(makeEntry(1, v * 4));
    EXPECT_EQ(count, 0);
}

TEST(TlbTest, InvalidateRemovesBothLevels)
{
    Tlb tlb(smallTlb());
    for (std::uint64_t v = 0; v < 8; ++v)
        tlb.fill(makeEntry(1, v));
    tlb.invalidate(1, 0);  // resident in L2 by now
    tlb.invalidate(1, 7);  // resident in L1
    Tick extra;
    EXPECT_EQ(tlb.lookup(1, 0, extra), nullptr);
    EXPECT_EQ(tlb.lookup(1, 7, extra), nullptr);
}

TEST(TlbTest, FlushAllFiresHooksAndEmpties)
{
    Tlb tlb(smallTlb());
    int hooks = 0;
    tlb.addEvictHook([&](const TlbEntry &) { ++hooks; });
    for (std::uint64_t v = 0; v < 6; ++v)
        tlb.fill(makeEntry(1, v));
    tlb.flushAll();
    EXPECT_EQ(hooks, 6);
    Tick extra;
    for (std::uint64_t v = 0; v < 6; ++v)
        EXPECT_EQ(tlb.lookup(1, v, extra), nullptr);
}

TEST(TlbTest, ResetIsSilent)
{
    Tlb tlb(smallTlb());
    int hooks = 0;
    tlb.addEvictHook([&](const TlbEntry &) { ++hooks; });
    tlb.fill(makeEntry(1, 1));
    tlb.reset();
    EXPECT_EQ(hooks, 0);
    Tick extra;
    EXPECT_EQ(tlb.lookup(1, 1, extra), nullptr);
}

TEST(TlbTest, MetadataSurvivesDemotionAndPromotion)
{
    Tlb tlb(smallTlb());
    TlbEntry e = makeEntry(1, 0);
    e.sspTracked = true;
    e.updatedBits = 0xf0f0;
    e.accessCount = 17;
    tlb.fill(e);
    // Push it down to L2 and back.
    for (std::uint64_t v = 1; v < 6; ++v)
        tlb.fill(makeEntry(1, v));
    Tick extra;
    TlbEntry *back = tlb.lookup(1, 0, extra);
    ASSERT_NE(back, nullptr);
    EXPECT_TRUE(back->sspTracked);
    EXPECT_EQ(back->updatedBits, 0xf0f0u);
    EXPECT_EQ(back->accessCount, 17u);
}

TEST(TlbTest, ForEachValidVisitsBothLevels)
{
    Tlb tlb(smallTlb());
    for (std::uint64_t v = 0; v < 10; ++v)
        tlb.fill(makeEntry(1, v));
    std::set<std::uint64_t> seen;
    tlb.forEachValid([&](TlbEntry &e) { seen.insert(e.vpn); });
    EXPECT_EQ(seen.size(), 10u);
}

} // namespace
} // namespace kindle::cpu
