#include <gtest/gtest.h>

#include "base/addr_range.hh"
#include "base/intmath.hh"
#include "prep/replay.hh"
#include "prep/workloads.hh"

namespace kindle::prep
{
namespace
{

WorkloadParams
smallParams(std::uint64_t ops)
{
    WorkloadParams p;
    p.ops = ops;
    p.scaleDown = 64;
    return p;
}

TEST(ReplayTest, EmitsSetupBodyTeardownExit)
{
    auto src = makeWorkload(Benchmark::ycsbMem, smallParams(100));
    ReplayStream replay(*src, ReplayConfig{});

    const std::size_t areas = src->layout().areas.size();
    cpu::Op op;
    // Setup: one mmap per area.
    for (std::size_t i = 0; i < areas; ++i) {
        ASSERT_TRUE(replay.next(op));
        EXPECT_EQ(op.kind, cpu::Op::Kind::mmap) << i;
        EXPECT_TRUE(op.flags & cpu::mapFixed);
    }
    // Body: reads/writes/computes until teardown.
    std::size_t memops = 0;
    while (replay.next(op)) {
        if (op.kind == cpu::Op::Kind::munmap)
            break;
        EXPECT_TRUE(op.kind == cpu::Op::Kind::read ||
                    op.kind == cpu::Op::Kind::write ||
                    op.kind == cpu::Op::Kind::compute);
        memops += (op.kind != cpu::Op::Kind::compute);
    }
    EXPECT_EQ(memops, 100u);
    // Remaining teardown + exit.
    std::size_t unmaps = 1;
    bool exited = false;
    while (replay.next(op)) {
        if (op.kind == cpu::Op::Kind::munmap)
            ++unmaps;
        if (op.kind == cpu::Op::Kind::exit)
            exited = true;
    }
    EXPECT_EQ(unmaps, areas);
    EXPECT_TRUE(exited);
    EXPECT_EQ(replay.recordsReplayed(), 100u);
}

TEST(ReplayTest, NvmFlagFollowsConfig)
{
    auto src = makeWorkload(Benchmark::ycsbMem, smallParams(10));
    ReplayConfig cfg;
    cfg.heapsInNvm = true;
    cfg.stacksInNvm = false;
    ReplayStream replay(*src, cfg);
    cpu::Op op;
    std::size_t nvm_maps = 0;
    std::size_t dram_maps = 0;
    for (std::size_t i = 0; i < src->layout().areas.size(); ++i) {
        ASSERT_TRUE(replay.next(op));
        ASSERT_EQ(op.kind, cpu::Op::Kind::mmap);
        ((op.flags & cpu::mapNvm) ? nvm_maps : dram_maps)++;
    }
    EXPECT_EQ(nvm_maps, 2u);   // heap areas
    EXPECT_EQ(dram_maps, 4u);  // thread stacks
}

TEST(ReplayTest, AddressesFallInsidePlannedAreas)
{
    auto src = makeWorkload(Benchmark::gapbsPr, smallParams(2000));
    ReplayStream replay(*src, ReplayConfig{});
    cpu::Op op;
    while (replay.next(op)) {
        if (op.kind != cpu::Op::Kind::read &&
            op.kind != cpu::Op::Kind::write) {
            continue;
        }
        bool inside = false;
        for (const auto &a : src->layout().areas) {
            const Addr base = replay.areaBase(a.areaId);
            if (op.addr >= base &&
                op.addr + op.size <= base + a.sizeBytes) {
                inside = true;
                break;
            }
        }
        ASSERT_TRUE(inside) << "stray address " << op.addr;
    }
}

TEST(ReplayTest, FaseWrappingEmitsMarkers)
{
    auto src = makeWorkload(Benchmark::ycsbMem, smallParams(50));
    ReplayConfig cfg;
    cfg.wrapInFase = true;
    ReplayStream replay(*src, cfg);
    cpu::Op op;
    bool saw_start = false;
    bool saw_end = false;
    bool start_before_end = false;
    while (replay.next(op)) {
        if (op.kind == cpu::Op::Kind::faseStart) {
            saw_start = true;
            start_before_end = !saw_end;
        }
        if (op.kind == cpu::Op::Kind::faseEnd)
            saw_end = true;
    }
    EXPECT_TRUE(saw_start);
    EXPECT_TRUE(saw_end);
    EXPECT_TRUE(start_before_end);
}

TEST(ReplayTest, ComputeBatchingInsertsThinkTime)
{
    auto src = makeWorkload(Benchmark::ycsbMem, smallParams(64));
    ReplayConfig cfg;
    cfg.computePerRecord = 10;
    cfg.computeBatch = 8;
    ReplayStream replay(*src, cfg);
    cpu::Op op;
    std::size_t computes = 0;
    while (replay.next(op))
        computes += (op.kind == cpu::Op::Kind::compute);
    EXPECT_NEAR(static_cast<double>(computes), 64.0 / 8.0, 2.0);
}

TEST(ReplayTest, ZeroComputeConfigEmitsNone)
{
    auto src = makeWorkload(Benchmark::ycsbMem, smallParams(64));
    ReplayConfig cfg;
    cfg.computePerRecord = 0;
    ReplayStream replay(*src, cfg);
    cpu::Op op;
    while (replay.next(op))
        EXPECT_NE(op.kind, cpu::Op::Kind::compute);
}

TEST(ReplayTest, AreaBasesAreDisjointAndAligned)
{
    auto src = makeWorkload(Benchmark::g500Sssp, smallParams(10));
    ReplayStream replay(*src, ReplayConfig{});
    const auto &areas = src->layout().areas;
    for (std::size_t i = 0; i < areas.size(); ++i) {
        const Addr bi = replay.areaBase(areas[i].areaId);
        EXPECT_TRUE(isAligned(bi, pageSize));
        for (std::size_t j = i + 1; j < areas.size(); ++j) {
            const Addr bj = replay.areaBase(areas[j].areaId);
            const AddrRange ri =
                AddrRange::withSize(bi, areas[i].sizeBytes);
            const AddrRange rj =
                AddrRange::withSize(bj, areas[j].sizeBytes);
            EXPECT_FALSE(ri.intersects(rj));
        }
    }
}

} // namespace
} // namespace kindle::prep
