#include <gtest/gtest.h>

#include <cstdio>

#include "prep/image_file.hh"
#include "prep/workloads.hh"

namespace kindle::prep
{
namespace
{

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/kindle_img_" + tag +
           ".bin";
}

TEST(ImageFileTest, RoundTripPreservesEverything)
{
    WorkloadParams p;
    p.ops = 5000;
    p.scaleDown = 64;
    auto src = makeWorkload(Benchmark::gapbsPr, p);
    const TraceImage original = TraceImage::capture(*src);

    const std::string path = tempPath("roundtrip");
    ImageFile::write(path, *src);
    const TraceImage loaded = ImageFile::read(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.name(), original.name());
    ASSERT_EQ(loaded.layout().areas.size(),
              original.layout().areas.size());
    for (std::size_t i = 0; i < loaded.layout().areas.size(); ++i) {
        EXPECT_EQ(loaded.layout().areas[i].name,
                  original.layout().areas[i].name);
        EXPECT_EQ(loaded.layout().areas[i].sizeBytes,
                  original.layout().areas[i].sizeBytes);
        EXPECT_EQ(loaded.layout().areas[i].kind,
                  original.layout().areas[i].kind);
    }
    ASSERT_EQ(loaded.records().size(), original.records().size());
    for (std::size_t i = 0; i < loaded.records().size(); ++i) {
        EXPECT_EQ(loaded.records()[i].offset,
                  original.records()[i].offset);
        EXPECT_EQ(loaded.records()[i].op, original.records()[i].op);
        EXPECT_EQ(loaded.records()[i].areaId,
                  original.records()[i].areaId);
        EXPECT_EQ(loaded.records()[i].period,
                  original.records()[i].period);
    }
}

TEST(ImageFileTest, StatsMatchAfterRoundTrip)
{
    WorkloadParams p;
    p.ops = 8000;
    p.scaleDown = 64;
    auto src = makeWorkload(Benchmark::ycsbMem, p);
    const TraceStats before = computeStats(*src);

    const std::string path = tempPath("stats");
    ImageFile::write(path, *src);
    TraceImage loaded = ImageFile::read(path);
    std::remove(path.c_str());

    const TraceStats after = loaded.stats();
    EXPECT_EQ(after.totalOps, before.totalOps);
    EXPECT_EQ(after.reads, before.reads);
    EXPECT_EQ(after.writes, before.writes);
}

TEST(ImageFileTest, MissingFileIsFatal)
{
    setErrorsThrow(true);
    EXPECT_THROW(ImageFile::read("/nonexistent/kindle.img"),
                 SimError);
    setErrorsThrow(false);
}

TEST(ImageFileTest, GarbageFileIsFatal)
{
    setErrorsThrow(true);
    const std::string path = tempPath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not an image", f);
    std::fclose(f);
    EXPECT_THROW(ImageFile::read(path), SimError);
    std::remove(path.c_str());
    setErrorsThrow(false);
}

TEST(ImageFileTest, ImageIsReplayableAsSource)
{
    WorkloadParams p;
    p.ops = 1000;
    p.scaleDown = 64;
    auto src = makeWorkload(Benchmark::g500Sssp, p);
    const std::string path = tempPath("source");
    ImageFile::write(path, *src);
    TraceImage loaded = ImageFile::read(path);
    std::remove(path.c_str());

    // Draining twice with reset in between yields the same count.
    TraceRecord rec;
    std::uint64_t n1 = 0;
    while (loaded.next(rec))
        ++n1;
    loaded.reset();
    std::uint64_t n2 = 0;
    while (loaded.next(rec))
        ++n2;
    EXPECT_EQ(n1, 1000u);
    EXPECT_EQ(n2, 1000u);
}

} // namespace
} // namespace kindle::prep
