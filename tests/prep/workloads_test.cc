#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "prep/workloads.hh"

namespace kindle::prep
{
namespace
{

WorkloadParams
smallParams(std::uint64_t ops = 50000)
{
    WorkloadParams p;
    p.ops = ops;
    p.scaleDown = 64;
    return p;
}

class MixParamTest
    : public ::testing::TestWithParam<std::pair<Benchmark, double>>
{};

TEST_P(MixParamTest, ReadWriteMixMatchesTable2)
{
    const auto [bench, expected_read_pct] = GetParam();
    auto src = makeWorkload(bench, smallParams(100000));
    const TraceStats stats = computeStats(*src);
    EXPECT_EQ(stats.totalOps, 100000u);
    EXPECT_NEAR(stats.readPct(), expected_read_pct, 2.5)
        << benchmarkName(bench);
}

INSTANTIATE_TEST_SUITE_P(
    Table2, MixParamTest,
    ::testing::Values(std::make_pair(Benchmark::gapbsPr, 77.0),
                      std::make_pair(Benchmark::g500Sssp, 68.0),
                      std::make_pair(Benchmark::ycsbMem, 71.0)));

TEST(WorkloadsTest, ExactOpCount)
{
    for (auto bench : {Benchmark::gapbsPr, Benchmark::g500Sssp,
                       Benchmark::ycsbMem}) {
        auto src = makeWorkload(bench, smallParams(12345));
        EXPECT_EQ(computeStats(*src).totalOps, 12345u);
    }
}

TEST(WorkloadsTest, ResetReproducesIdenticalStream)
{
    auto src = makeWorkload(Benchmark::ycsbMem, smallParams(5000));
    std::vector<TraceRecord> first;
    TraceRecord rec;
    while (src->next(rec))
        first.push_back(rec);
    src->reset();
    for (const auto &expect : first) {
        ASSERT_TRUE(src->next(rec));
        EXPECT_EQ(rec.areaId, expect.areaId);
        EXPECT_EQ(rec.offset, expect.offset);
        EXPECT_EQ(rec.op, expect.op);
    }
}

TEST(WorkloadsTest, OffsetsStayInsideAreas)
{
    for (auto bench : {Benchmark::gapbsPr, Benchmark::g500Sssp,
                       Benchmark::ycsbMem}) {
        auto src = makeWorkload(bench, smallParams(20000));
        TraceRecord rec;
        while (src->next(rec)) {
            const AreaInfo *area = src->layout().find(rec.areaId);
            ASSERT_NE(area, nullptr);
            ASSERT_LE(rec.offset + rec.size, area->sizeBytes)
                << benchmarkName(bench);
        }
    }
}

TEST(WorkloadsTest, PeriodsAreMonotonic)
{
    auto src = makeWorkload(Benchmark::gapbsPr, smallParams(10000));
    TraceRecord rec;
    std::uint64_t last = 0;
    while (src->next(rec)) {
        EXPECT_GE(rec.period, last);
        last = rec.period;
    }
}

TEST(WorkloadsTest, StackAreasReceiveSomeTraffic)
{
    auto src = makeWorkload(Benchmark::ycsbMem, smallParams(50000));
    std::set<std::uint32_t> stack_ids;
    for (const auto &a : src->layout().areas)
        if (a.kind == AreaKind::stack)
            stack_ids.insert(a.areaId);
    EXPECT_EQ(stack_ids.size(), 4u);  // SniP-captured thread stacks

    TraceRecord rec;
    std::uint64_t stack_ops = 0;
    while (src->next(rec))
        stack_ops += stack_ids.count(rec.areaId);
    EXPECT_GT(stack_ops, 0u);
    EXPECT_LT(stack_ops, 50000u / 20);  // small fraction
}

TEST(WorkloadsTest, YcsbIsSkewedGapbsRanksAreHot)
{
    // Zipfian key choice concentrates YCSB record accesses.
    auto src = makeWorkload(Benchmark::ycsbMem, smallParams(50000));
    TraceRecord rec;
    std::uint64_t low_offset_hits = 0;
    std::uint64_t kv_ops = 0;
    const AreaInfo *kv = src->layout().find(0);
    ASSERT_NE(kv, nullptr);
    while (src->next(rec)) {
        if (rec.areaId == 0) {
            ++kv_ops;
            low_offset_hits += rec.offset < kv->sizeBytes / 100;
        }
    }
    // >25% of record traffic on the hottest 1% of the store.
    EXPECT_GT(static_cast<double>(low_offset_hits) /
                  static_cast<double>(kv_ops),
              0.25);
}

TEST(WorkloadsTest, DistinctSeedsGiveDistinctStreams)
{
    WorkloadParams a = smallParams(1000);
    WorkloadParams b = smallParams(1000);
    b.seed = 777;
    auto sa = makeWorkload(Benchmark::g500Sssp, a);
    auto sb = makeWorkload(Benchmark::g500Sssp, b);
    TraceRecord ra;
    TraceRecord rb;
    int diff = 0;
    while (sa->next(ra) && sb->next(rb))
        diff += (ra.offset != rb.offset);
    EXPECT_GT(diff, 100);
}

TEST(WorkloadsTest, OpsFromEnvParsesAndFallsBack)
{
    ::unsetenv("KINDLE_OPS");
    EXPECT_EQ(opsFromEnv(123), 123u);
    ::setenv("KINDLE_OPS", "4567", 1);
    EXPECT_EQ(opsFromEnv(123), 4567u);
    ::unsetenv("KINDLE_OPS");
}

TEST(WorkloadsTest, PaperScaleFootprints)
{
    WorkloadParams p;
    p.ops = 1;  // footprint only depends on scaleDown
    auto gap = makeWorkload(Benchmark::gapbsPr, p);
    // Paper-scale PageRank working set is in the ~100 MiB class.
    EXPECT_GT(gap->layout().totalBytes(), 90 * oneMiB);
    auto ycsb = makeWorkload(Benchmark::ycsbMem, p);
    EXPECT_GT(ycsb->layout().totalBytes(), 200 * oneMiB);
}

} // namespace
} // namespace kindle::prep
