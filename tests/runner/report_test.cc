#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/stats.hh"
#include "runner/report.hh"

namespace kindle::runner
{
namespace
{

RunResult
fakeResult(const std::string &name)
{
    statistics::StatGroup g("ssp");
    g.addScalar("intervalCommits", "") += 12;
    g.addScalar("pagesCopied", "") += 340;
    statistics::StatGroup other("persist");
    other.addScalar("checkpoints", "") += 3;

    RunResult r;
    r.name = name;
    r.axes = {{"benchmark", "gapbs_pr"}, {"interval", "1ms"}};
    r.ticks = 123456789;
    r.wallMs = 41.7;
    statistics::StatSnapshot::Builder builder(r.stats);
    g.accept(builder);
    other.accept(builder);
    r.ok = true;
    return r;
}

TEST(BenchReportTest, WritesSchemaFields)
{
    BenchReport report("unit_bench", 4);
    report.add(fakeResult("gapbs_pr/1ms"));

    RunResult failed;
    failed.name = "broken/point";
    failed.error = "workload exploded";
    report.add(failed);

    std::ostringstream os;
    report.writeJson(os);
    const std::string out = os.str();

    EXPECT_NE(out.find("\"bench\": \"unit_bench\""),
              std::string::npos);
    EXPECT_NE(out.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(out.find("\"jobs\": 4"), std::string::npos);
    EXPECT_NE(out.find("\"name\": \"gapbs_pr/1ms\""),
              std::string::npos);
    EXPECT_NE(out.find("\"benchmark\": \"gapbs_pr\""),
              std::string::npos);
    EXPECT_NE(out.find("\"ticks\": 123456789"), std::string::npos);
    EXPECT_NE(out.find("\"ssp.intervalCommits\": 12"),
              std::string::npos);
    // The failed point records its error and no stats.
    EXPECT_NE(out.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(out.find("\"error\": \"workload exploded\""),
              std::string::npos);
}

TEST(BenchReportTest, StatPrefixFilterLimitsExport)
{
    BenchReport report("filtered", 1);
    report.add(fakeResult("p0"));
    report.keepStatPrefixes({"persist."});

    std::ostringstream os;
    report.writeJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"persist.checkpoints\": 3"),
              std::string::npos);
    EXPECT_EQ(out.find("ssp.intervalCommits"), std::string::npos);
}

TEST(BenchReportTest, WriteJsonFileHonoursResultsDirEnv)
{
    char tmpl[] = "/tmp/kindle_report_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    setenv("KINDLE_RESULTS_DIR", tmpl, 1);

    BenchReport report("env_bench", 2);
    report.add(fakeResult("only"));
    const std::string path = report.writeJsonFile();
    unsetenv("KINDLE_RESULTS_DIR");

    EXPECT_EQ(path, std::string(tmpl) + "/BENCH_env_bench.json");
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream contents;
    contents << in.rdbuf();
    EXPECT_NE(contents.str().find("\"bench\": \"env_bench\""),
              std::string::npos);

    std::remove(path.c_str());
    std::remove(tmpl);
}

TEST(BenchReportTest, JsonIsReproducibleModuloWallClock)
{
    // Two reports over identical results serialize identically when
    // wall_ms matches — the schema has no other host-dependent field.
    BenchReport a("same", 1);
    BenchReport b("same", 1);
    RunResult r = fakeResult("p");
    r.wallMs = 0;
    a.add(r);
    b.add(r);

    std::ostringstream osa, osb;
    a.writeJson(osa);
    b.writeJson(osb);
    EXPECT_EQ(osa.str(), osb.str());
}

} // namespace
} // namespace kindle::runner
