#include <gtest/gtest.h>

#include <sstream>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "runner/report.hh"
#include "runner/sweep_runner.hh"

namespace kindle::runner
{
namespace
{

Scenario
smallPersistScenario(persist::PtScheme scheme, std::uint64_t bytes,
                     std::string name)
{
    Scenario sc;
    sc.name = std::move(name);
    sc.axes = {{"scheme",
                scheme == persist::PtScheme::rebuild ? "rebuild"
                                                     : "persistent"},
               {"bytes", std::to_string(bytes)}};
    sc.config.memory.dramBytes = 256 * oneMiB;
    sc.config.memory.nvmBytes = 256 * oneMiB;
    sc.config.persistence =
        persist::PersistParams{scheme, oneMs};
    sc.program = [bytes] {
        return micro::seqAllocTouch(bytes);
    };
    return sc;
}

std::vector<Scenario>
smallSweep()
{
    return {
        smallPersistScenario(persist::PtScheme::rebuild, oneMiB,
                             "rebuild/1MiB"),
        smallPersistScenario(persist::PtScheme::persistent, oneMiB,
                             "persistent/1MiB"),
        smallPersistScenario(persist::PtScheme::rebuild, 2 * oneMiB,
                             "rebuild/2MiB"),
        smallPersistScenario(persist::PtScheme::persistent,
                             2 * oneMiB, "persistent/2MiB"),
    };
}

TEST(SweepRunnerTest, ResultsArriveInScenarioOrder)
{
    SweepRunner pool(2);
    const auto results = pool.run(smallSweep());
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].name, "rebuild/1MiB");
    EXPECT_EQ(results[1].name, "persistent/1MiB");
    EXPECT_EQ(results[2].name, "rebuild/2MiB");
    EXPECT_EQ(results[3].name, "persistent/2MiB");
    for (const auto &r : results) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_GT(r.ticks, 0u);
        ASSERT_EQ(r.axes.size(), 2u);
        EXPECT_EQ(r.axes[0].first, "scheme");
    }
}

TEST(SweepRunnerTest, ResultCarriesStatSnapshot)
{
    const auto result = SweepRunner::runOne(smallPersistScenario(
        persist::PtScheme::rebuild, oneMiB, "one"));
    ASSERT_TRUE(result.ok) << result.error;
    // Forest roots from every configured component.
    EXPECT_TRUE(result.stats.has("core.memOps"));
    EXPECT_TRUE(result.stats.has("hybridMem.crashes"));
    EXPECT_TRUE(result.stats.has("cacheHierarchy.accesses"));
    EXPECT_TRUE(result.stats.has("kernel.syscalls"));
    EXPECT_GT(result.stats.get("persist.checkpoints"), 0);
}

TEST(SweepRunnerTest, ZeroJobsMeansHardwareParallelism)
{
    SweepRunner pool(0);
    EXPECT_GE(pool.jobs(), 1u);
}

TEST(SweepRunnerTest, ThrowingScenarioIsReportedNotFatal)
{
    Scenario sc;
    sc.name = "broken";
    sc.config.memory.dramBytes = 128 * oneMiB;
    sc.config.memory.nvmBytes = 128 * oneMiB;
    sc.program = []() -> std::unique_ptr<cpu::OpStream> {
        throw std::runtime_error("workload generator exploded");
    };

    SweepRunner pool(1);
    const auto results = pool.run({sc});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("exploded"), std::string::npos);
}

TEST(SweepRunnerTest, MoreJobsThanScenariosIsFine)
{
    SweepRunner pool(16);
    const auto results = pool.run(
        {smallPersistScenario(persist::PtScheme::rebuild, oneMiB,
                              "only")});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
}

} // namespace
} // namespace kindle::runner
