/**
 * @file
 * The runner's contract with DESIGN.md's determinism guarantee:
 * executing a KindleConfig through SweepRunner — at any parallelism —
 * must be bit-identical to running the same config sequentially on a
 * plain KindleSystem: same final tick counts, same serialized stats.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "prep/replay.hh"
#include "prep/workloads.hh"
#include "runner/sweep_runner.hh"

namespace kindle::runner
{
namespace
{

KindleConfig
referenceConfig()
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    cfg.persistence = persist::PersistParams{
        persist::PtScheme::rebuild, oneMs};
    return cfg;
}

std::unique_ptr<cpu::OpStream>
referenceProgram()
{
    return micro::seqAllocTouch(4 * oneMiB);
}

Scenario
referenceScenario(const std::string &name)
{
    Scenario sc;
    sc.name = name;
    sc.config = referenceConfig();
    sc.program = &referenceProgram;
    return sc;
}

std::string
snapshotJson(const statistics::StatSnapshot &snap)
{
    std::ostringstream os;
    json::Writer w(os);
    snap.writeJson(w);
    return os.str();
}

TEST(SweepDeterminismTest, RunnerMatchesSequentialExecution)
{
    // Reference: a plain sequential KindleSystem run.
    KindleSystem sys(referenceConfig());
    const Tick seq_ticks = sys.run(referenceProgram(), "seq");
    const auto seq_snap = sys.snapshotStats();

    std::ostringstream seq_json;
    sys.dumpStatsJson(seq_json);

    // Same config, twice, through a two-worker SweepRunner.
    SweepRunner pool(2);
    const auto results = pool.run(
        {referenceScenario("a"), referenceScenario("b")});
    ASSERT_EQ(results.size(), 2u);

    for (const auto &r : results) {
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.ticks, seq_ticks);
        EXPECT_TRUE(r.stats == seq_snap);
        EXPECT_EQ(snapshotJson(r.stats), snapshotJson(seq_snap));
    }
    EXPECT_EQ(snapshotJson(results[0].stats),
              snapshotJson(results[1].stats));
}

TEST(SweepDeterminismTest, JobCountDoesNotChangeResults)
{
    // A sweep with distinct points, run at three parallelism levels.
    auto sweep = [] {
        std::vector<Scenario> scenarios;
        for (const std::uint64_t mib : {1, 2, 3, 4}) {
            Scenario sc = referenceScenario(
                "seq/" + std::to_string(mib) + "MiB");
            sc.program = [mib] {
                return micro::seqAllocTouch(mib * oneMiB);
            };
            scenarios.push_back(std::move(sc));
        }
        return scenarios;
    };

    const auto serial = SweepRunner(1).run(sweep());
    const auto two = SweepRunner(2).run(sweep());
    const auto four = SweepRunner(4).run(sweep());

    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(two.size(), 4u);
    ASSERT_EQ(four.size(), 4u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        EXPECT_EQ(serial[i].ticks, two[i].ticks);
        EXPECT_EQ(serial[i].ticks, four[i].ticks);
        EXPECT_TRUE(serial[i].stats == two[i].stats);
        EXPECT_TRUE(serial[i].stats == four[i].stats);
    }
}

TEST(SweepDeterminismTest, TraceWorkloadsDeterministicUnderRunner)
{
    // Workload generation (seeded RNG) inside worker threads must not
    // perturb determinism either.
    auto scenario = [](const std::string &name) {
        Scenario sc;
        sc.name = name;
        sc.config.memory.dramBytes = 256 * oneMiB;
        sc.config.memory.nvmBytes = 512 * oneMiB;
        hscc::HsccParams hp;
        hp.migrationInterval = oneMs;
        hp.fetchThreshold = 3;
        sc.config.hscc = hp;
        sc.program = []() -> std::unique_ptr<cpu::OpStream> {
            prep::WorkloadParams wp;
            wp.ops = 20000;
            wp.scaleDown = 64;
            return std::make_unique<prep::OwningReplayStream>(
                prep::makeWorkload(prep::Benchmark::g500Sssp, wp),
                prep::ReplayConfig{});
        };
        return sc;
    };

    SweepRunner pool(2);
    const auto results =
        pool.run({scenario("t0"), scenario("t1")});
    ASSERT_EQ(results.size(), 2u);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    ASSERT_TRUE(results[1].ok) << results[1].error;
    EXPECT_EQ(results[0].ticks, results[1].ticks);
    EXPECT_TRUE(results[0].stats == results[1].stats);
}

} // namespace
} // namespace kindle::runner
