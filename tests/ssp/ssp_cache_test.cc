#include <gtest/gtest.h>

#include "ssp/ssp_cache.hh"

namespace kindle::ssp
{
namespace
{

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 64 * oneMiB;
              p.nvmBytes = 256 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          kmem(sim, memory, hier),
          layout(os::NvmLayout::standard(memory.nvmRange())),
          cache(kmem, layout)
    {}

    Addr
    poolFrame(unsigned i) const
    {
        return layout.userPool + Addr(i) * pageSize;
    }

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    os::KernelMem kmem;
    os::NvmLayout layout;
    SspCache cache;
};

SspCacheEntry
makeEntry(Addr orig, Addr shadow)
{
    SspCacheEntry e;
    e.magic = SspCacheEntry::magicValue;
    e.flags = SspCacheEntry::flagAllocated;
    e.origFrame = orig;
    e.shadowFrame = shadow;
    return e;
}

TEST(SspCacheTest, WriteReadRoundTrip)
{
    Rig rig;
    const Addr frame = rig.poolFrame(3);
    rig.cache.write(frame, makeEntry(frame, rig.poolFrame(4)));
    const SspCacheEntry got = rig.cache.read(frame);
    EXPECT_TRUE(got.allocated());
    EXPECT_EQ(got.origFrame, frame);
    EXPECT_EQ(got.shadowFrame, rig.poolFrame(4));
}

TEST(SspCacheTest, EntriesAreIndexedByFrame)
{
    Rig rig;
    rig.cache.write(rig.poolFrame(0),
                    makeEntry(rig.poolFrame(0), rig.poolFrame(10)));
    rig.cache.write(rig.poolFrame(1),
                    makeEntry(rig.poolFrame(1), rig.poolFrame(11)));
    EXPECT_EQ(rig.cache.read(rig.poolFrame(0)).shadowFrame,
              rig.poolFrame(10));
    EXPECT_EQ(rig.cache.read(rig.poolFrame(1)).shadowFrame,
              rig.poolFrame(11));
    EXPECT_EQ(rig.cache.entryAddr(rig.poolFrame(1)) -
                  rig.cache.entryAddr(rig.poolFrame(0)),
              sizeof(SspCacheEntry));
}

TEST(SspCacheTest, MergeBitsFlipsCurrentAndAccumulatesPending)
{
    Rig rig;
    const Addr frame = rig.poolFrame(5);
    rig.cache.write(frame, makeEntry(frame, rig.poolFrame(6)));

    rig.cache.mergeBits(frame, 0x0f, false);
    SspCacheEntry e = rig.cache.read(frame);
    EXPECT_EQ(e.currentBits, 0x0fu);
    EXPECT_EQ(e.pendingBits, 0x0fu);
    EXPECT_FALSE(e.evicted());

    // Flipping the same lines again returns current to 0; pending
    // keeps accumulating until consolidation.
    rig.cache.mergeBits(frame, 0x0f, true);
    e = rig.cache.read(frame);
    EXPECT_EQ(e.currentBits, 0u);
    EXPECT_EQ(e.pendingBits, 0x0fu);
    EXPECT_TRUE(e.evicted());
}

TEST(SspCacheTest, EvictedSetTracksMarkedFrames)
{
    Rig rig;
    const Addr a = rig.poolFrame(7);
    const Addr b = rig.poolFrame(8);
    rig.cache.write(a, makeEntry(a, rig.poolFrame(20)));
    rig.cache.write(b, makeEntry(b, rig.poolFrame(21)));
    rig.cache.mergeBits(a, 1, true);
    rig.cache.mergeBits(b, 1, false);
    EXPECT_EQ(rig.cache.evictedFrames().count(a), 1u);
    EXPECT_EQ(rig.cache.evictedFrames().count(b), 0u);

    rig.cache.clearEvicted(a);
    EXPECT_TRUE(rig.cache.evictedFrames().empty());
    EXPECT_EQ(rig.cache.read(a).pendingBits, 0u);
}

TEST(SspCacheTest, MergeOnUnallocatedEntryPanics)
{
    setErrorsThrow(true);
    Rig rig;
    EXPECT_THROW(rig.cache.mergeBits(rig.poolFrame(9), 1, false),
                 SimError);
    setErrorsThrow(false);
}

TEST(SspCacheTest, NonPoolFramePanics)
{
    setErrorsThrow(true);
    Rig rig;
    EXPECT_THROW(rig.cache.entryAddr(0x1000), SimError);
    setErrorsThrow(false);
}

TEST(SspCacheTest, AccessesChargeSimTime)
{
    Rig rig;
    const Tick t0 = rig.sim.now();
    rig.cache.write(rig.poolFrame(0),
                    makeEntry(rig.poolFrame(0), rig.poolFrame(1)));
    rig.cache.read(rig.poolFrame(0));
    EXPECT_GT(rig.sim.now(), t0);
}

} // namespace
} // namespace kindle::ssp
