#include <gtest/gtest.h>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace kindle::ssp
{
namespace
{

KindleConfig
sspConfig(Tick interval = 5 * oneMs)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    SspParams p;
    p.consistencyInterval = interval;
    cfg.ssp = p;
    return cfg;
}

/** NVM writes inside a FASE, with compute padding for intervals. */
std::unique_ptr<micro::ScriptStream>
faseProgram(unsigned pages, unsigned rounds,
            Cycles pad_cycles = 1000000)
{
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, pages * pageSize, true);
    b.touchPages(micro::scriptBase, pages * pageSize);
    b.faseStart();
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned p = 0; p < pages; ++p)
            b.write(micro::scriptBase + p * pageSize + (r % 64) * 64);
        b.compute(pad_cycles);
    }
    b.faseEnd();
    b.munmap(micro::scriptBase, pages * pageSize);
    b.exit();
    return b.build();
}

TEST(SspTest, ShadowPagesAllocatedForTrackedPages)
{
    KindleSystem sys(sspConfig());
    sys.run(faseProgram(16, 2), "fase");
    EXPECT_GE(sys.sspEngine()->shadowPagesAllocated(), 16u);
}

TEST(SspTest, NoTrackingOutsideFase)
{
    KindleSystem sys(sspConfig());
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 16 * pageSize, true);
    b.touchPages(micro::scriptBase, 16 * pageSize);
    b.munmap(micro::scriptBase, 16 * pageSize);
    b.exit();
    sys.run(b.build(), "nofase");
    EXPECT_EQ(sys.sspEngine()->shadowPagesAllocated(), 0u);
}

TEST(SspTest, DramPagesAreNotTracked)
{
    KindleSystem sys(sspConfig());
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 16 * pageSize, false);  // DRAM
    b.faseStart();
    b.touchPages(micro::scriptBase, 16 * pageSize);
    b.faseEnd();
    b.exit();
    sys.run(b.build(), "dram-fase");
    EXPECT_EQ(sys.sspEngine()->shadowPagesAllocated(), 0u);
}

TEST(SspTest, IntervalCommitsFlushDirtyLines)
{
    KindleSystem sys(sspConfig(oneMs));
    sys.run(faseProgram(8, 20), "fase");
    const auto &st = sys.sspEngine()->stats();
    EXPECT_GT(st.scalarValue("intervalCommits"), 1);
    EXPECT_GT(st.scalarValue("linesFlushed"), 0);
}

TEST(SspTest, FaseEndForcesCommit)
{
    KindleSystem sys(sspConfig(oneSec));  // interval never fires
    sys.run(faseProgram(4, 1, 1000), "quick");
    EXPECT_GE(sys.sspEngine()->stats().scalarValue("intervalCommits"),
              1);
}

TEST(SspTest, MsrsCarryTrackedRangeDuringFase)
{
    KindleSystem sys(sspConfig(oneSec));
    // Build a program that parks inside the FASE long enough for us
    // to never observe it (the MSR values persist after faseStart in
    // engine state until faseEnd disarms).  Instead check the SSP
    // cache base MSR, programmed at start().
    EXPECT_EQ(sys.core(0).msrs().read(cpu::MsrId::sspCacheBase),
              sys.sspEngine()->cache().base());
}

TEST(SspTest, ConsolidationMergesEvictedEntries)
{
    KindleConfig cfg = sspConfig(oneMs);
    // Tiny TLB so FASE pages get evicted with pending bits.
    cfg.core.tlb.l1Entries = 4;
    cfg.core.tlb.l2Entries = 24;
    KindleSystem sys(cfg);
    sys.run(faseProgram(64, 10), "thrash");
    const auto &st = sys.sspEngine()->stats();
    EXPECT_GT(st.scalarValue("bitmapSpills"), 0);
    EXPECT_GT(st.scalarValue("consolidations"), 0);
    EXPECT_GT(st.scalarValue("pagesConsolidated"), 0);
}

TEST(SspTest, WiderIntervalReducesOverhead)
{
    // The paper's Figure 5 trend: 10 ms interval costs less than
    // 1 ms for the same work.
    auto run_with = [](Tick interval) {
        KindleSystem sys(sspConfig(interval));
        return sys.run(faseProgram(32, 40), "fase");
    };
    const Tick t_1ms = run_with(oneMs);
    const Tick t_10ms = run_with(10 * oneMs);
    EXPECT_LT(t_10ms, t_1ms);
}

TEST(SspTest, ShadowPagesFreedOnUnmap)
{
    KindleSystem sys(sspConfig());
    const auto before =
        sys.kernel().nvmAllocator().allocatedFrames();
    sys.run(faseProgram(16, 2), "fase");
    // Everything (data + shadows) released at munmap/exit.
    EXPECT_EQ(sys.kernel().nvmAllocator().allocatedFrames(), before);
}

TEST(SspTest, CommitRecordIsDurable)
{
    KindleSystem sys(sspConfig(oneMs));
    sys.run(faseProgram(8, 10), "fase");
    const os::NvmLayout &layout = sys.kernel().nvmLayout();
    const Addr commit_addr =
        layout.sspCache + layout.sspCacheBytes - lineSize;
    sys.crash();
    std::uint64_t seq = 0;
    sys.memory().readNvmDurable(commit_addr, &seq, 8);
    EXPECT_GT(seq, 0u);
}

} // namespace
} // namespace kindle::ssp
