#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "base/random.hh"
#include "os/bad_frames.hh"
#include "os/frame_alloc.hh"
#include "os/nvm_layout.hh"

namespace kindle::os
{
namespace
{

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 64 * oneMiB;
              // Large enough that NvmLayout's metadata carve leaves a
              // user pool *inside* the device (BadFrameTable asserts
              // device bounds, unlike the allocator).
              p.nvmBytes = 256 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          kmem(sim, memory, hier),
          layout(NvmLayout::standard(memory.nvmRange()))
    {}

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    KernelMem kmem;
    NvmLayout layout;
};

TEST(FrameAllocTest, AllocFreeCycle)
{
    Rig rig;
    FrameAllocator alloc("t", AddrRange(0, oneMiB), rig.kmem);
    const Addr a = alloc.alloc();
    const Addr b = alloc.alloc();
    EXPECT_NE(a, b);
    EXPECT_TRUE(alloc.isAllocated(a));
    EXPECT_EQ(alloc.allocatedFrames(), 2u);
    alloc.free(a);
    EXPECT_FALSE(alloc.isAllocated(a));
    EXPECT_EQ(alloc.allocatedFrames(), 1u);
}

TEST(FrameAllocTest, RecyclesFreedFrames)
{
    Rig rig;
    FrameAllocator alloc("t", AddrRange(0, oneMiB), rig.kmem);
    const Addr a = alloc.alloc();
    alloc.free(a);
    EXPECT_EQ(alloc.alloc(), a);
}

TEST(FrameAllocTest, ExhaustionIsFatal)
{
    setErrorsThrow(true);
    Rig rig;
    FrameAllocator alloc("t", AddrRange(0, 4 * pageSize), rig.kmem);
    for (int i = 0; i < 4; ++i)
        alloc.alloc();
    EXPECT_THROW(alloc.alloc(), SimError);
    setErrorsThrow(false);
}

TEST(FrameAllocTest, DoubleFreeIsPanic)
{
    setErrorsThrow(true);
    Rig rig;
    FrameAllocator alloc("t", AddrRange(0, oneMiB), rig.kmem);
    const Addr a = alloc.alloc();
    alloc.free(a);
    EXPECT_THROW(alloc.free(a), SimError);
    setErrorsThrow(false);
}

TEST(FrameAllocTest, PersistentAllocatorChargesTime)
{
    Rig rig;
    FrameAllocator alloc(
        "t", AddrRange::withSize(rig.layout.userPool, oneMiB),
        rig.kmem, rig.layout.allocBitmap);
    const Tick t0 = rig.sim.now();
    alloc.alloc();
    EXPECT_GT(rig.sim.now(), t0);
    EXPECT_EQ(alloc.stats().scalarValue("persistWrites"), 1);
}

TEST(FrameAllocTest, BitmapSurvivesCrashAndRecovers)
{
    Rig rig;
    const AddrRange zone =
        AddrRange::withSize(rig.layout.userPool, oneMiB);
    std::vector<Addr> kept;
    {
        FrameAllocator alloc("t", zone, rig.kmem,
                             rig.layout.allocBitmap);
        kept.push_back(alloc.alloc());
        kept.push_back(alloc.alloc());
        const Addr dropped = alloc.alloc();
        kept.push_back(alloc.alloc());
        alloc.free(dropped);
    }

    // Power loss: volatile structures are gone, the bitmap is not.
    rig.memory.crash();

    FrameAllocator fresh("t", zone, rig.kmem,
                         rig.layout.allocBitmap);
    fresh.recoverFromBitmap();
    EXPECT_EQ(fresh.allocatedFrames(), 3u);
    for (const Addr f : kept)
        EXPECT_TRUE(fresh.isAllocated(f));
    // Freed frame is allocatable again, and recovery starts low.
    const Addr next = fresh.alloc();
    EXPECT_FALSE(std::count(kept.begin(), kept.end(), next));
}

TEST(FrameAllocTest, RecoveryAllocationOrderMatchesFullScan)
{
    // The word-scan fast path must hand out frames in exactly the
    // order of the legacy per-frame scan: holes below the high mark in
    // ascending address order, then the untouched tail.  Build a
    // bitmap with holes scattered across word boundaries, recover it
    // through both regimes, and drain each to exhaustion.
    // Two independent machines (draining one allocator persists its
    // bits, so the regimes cannot share a bitmap), identical history.
    const std::vector<std::uint64_t> holes = {3,  17, 40,  63, 64,
                                              65, 88, 127, 128, 149};
    const auto setup = [&](Rig &rig) {
        const AddrRange zone =
            AddrRange::withSize(rig.layout.userPool, 200 * pageSize);
        FrameAllocator alloc("t", zone, rig.kmem,
                             rig.layout.allocBitmap);
        for (int i = 0; i < 150; ++i)
            alloc.alloc();
        for (const std::uint64_t h : holes)
            alloc.free(zone.start() + h * pageSize);
        rig.memory.crash();
        return zone;
    };
    const auto drain = [](FrameAllocator &alloc) {
        std::vector<Addr> order;
        for (Addr f = alloc.tryAlloc(); f != invalidAddr;
             f = alloc.tryAlloc()) {
            order.push_back(f);
        }
        return order;
    };

    // Fast path: no retirements anywhere.
    Rig rig_fast;
    const AddrRange zone = setup(rig_fast);
    FrameAllocator fast("t", zone, rig_fast.kmem,
                        rig_fast.layout.allocBitmap);
    fast.recoverFromBitmap();
    EXPECT_EQ(fast.allocatedFrames(), 150u - holes.size());
    const std::vector<Addr> fast_order = drain(fast);

    // Legacy per-frame path: a retirement *outside* the zone forces
    // the fallback without perturbing this zone's pool.
    Rig rig_slow;
    const AddrRange zone2 = setup(rig_slow);
    ASSERT_EQ(zone2.start(), zone.start());
    BadFrameTable bad(rig_slow.memory.nvmRange(), rig_slow.kmem,
                      rig_slow.layout.badFrameBitmap);
    ASSERT_TRUE(bad.retire(zone.end()));
    FrameAllocator slow("t", zone, rig_slow.kmem,
                        rig_slow.layout.allocBitmap);
    slow.setBadFrames(&bad);
    slow.recoverFromBitmap();
    EXPECT_EQ(slow.allocatedFrames(), 150u - holes.size());
    const std::vector<Addr> slow_order = drain(slow);

    EXPECT_EQ(fast_order, slow_order);
    // And both equal the documented contract: holes ascending, then
    // the bump tail.
    std::vector<Addr> expect;
    for (const std::uint64_t h : holes)
        expect.push_back(zone.start() + h * pageSize);
    for (std::uint64_t i = 150; i < 200; ++i)
        expect.push_back(zone.start() + i * pageSize);
    EXPECT_EQ(fast_order, expect);
}

TEST(FrameAllocTest, ForEachAllocatedVisitsExactly)
{
    Rig rig;
    FrameAllocator alloc("t", AddrRange(0, oneMiB), rig.kmem);
    const Addr a = alloc.alloc();
    const Addr b = alloc.alloc();
    alloc.free(a);
    std::vector<Addr> seen;
    alloc.forEachAllocated([&](Addr f) { seen.push_back(f); });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], b);
}

TEST(FrameAllocTest, RetiredFramesAreNeverHandedOut)
{
    Rig rig;
    const AddrRange zone =
        AddrRange::withSize(rig.layout.userPool, 4 * pageSize);
    BadFrameTable bad(rig.memory.nvmRange(), rig.kmem,
                      rig.layout.badFrameBitmap);
    FrameAllocator alloc("t", zone, rig.kmem,
                         rig.layout.allocBitmap);
    alloc.setBadFrames(&bad);

    // Retire the zone's first frame before any allocation: the
    // allocator must step over it and still serve the healthy three.
    ASSERT_TRUE(bad.retire(zone.start()));
    for (int i = 0; i < 3; ++i) {
        const Addr f = alloc.tryAlloc();
        ASSERT_NE(f, invalidAddr);
        EXPECT_NE(f, zone.start());
    }
    EXPECT_EQ(alloc.tryAlloc(), invalidAddr);
    EXPECT_EQ(alloc.freeFrames(), 0u);
}

TEST(FrameAllocTest, FreeOfRetiredFrameIsNotRecycled)
{
    Rig rig;
    const AddrRange zone =
        AddrRange::withSize(rig.layout.userPool, 2 * pageSize);
    BadFrameTable bad(rig.memory.nvmRange(), rig.kmem,
                      rig.layout.badFrameBitmap);
    FrameAllocator alloc("t", zone, rig.kmem,
                         rig.layout.allocBitmap);
    alloc.setBadFrames(&bad);

    // A frame that wears out *while mapped* is retired first and
    // freed later (after migration); the free must quarantine it
    // instead of pushing it back on the free stack.
    const Addr victim = alloc.tryAlloc();
    ASSERT_NE(victim, invalidAddr);
    ASSERT_TRUE(bad.retire(victim));
    alloc.free(victim);
    EXPECT_FALSE(alloc.isAllocated(victim));
    EXPECT_EQ(alloc.freeFrames(), 1u);
    const Addr next = alloc.tryAlloc();
    ASSERT_NE(next, invalidAddr);
    EXPECT_NE(next, victim);
    EXPECT_EQ(alloc.tryAlloc(), invalidAddr);
}

TEST(FrameAllocTest, BitmapRecoveryRespectsRetirements)
{
    Rig rig;
    const AddrRange zone =
        AddrRange::withSize(rig.layout.userPool, 4 * pageSize);
    BadFrameTable bad(rig.memory.nvmRange(), rig.kmem,
                      rig.layout.badFrameBitmap);
    Addr live = 0;
    {
        FrameAllocator alloc("t", zone, rig.kmem,
                             rig.layout.allocBitmap);
        alloc.setBadFrames(&bad);
        live = alloc.tryAlloc();
        const Addr unallocated_bad = alloc.tryAlloc();
        alloc.free(unallocated_bad);
        ASSERT_TRUE(bad.retire(unallocated_bad));
    }

    rig.memory.crash();

    BadFrameTable bad2(rig.memory.nvmRange(), rig.kmem,
                       rig.layout.badFrameBitmap);
    bad2.loadFromNvm();
    EXPECT_EQ(bad2.retiredCount(), 1u);
    FrameAllocator fresh("t", zone, rig.kmem,
                         rig.layout.allocBitmap);
    fresh.setBadFrames(&bad2);
    fresh.recoverFromBitmap();
    EXPECT_TRUE(fresh.isAllocated(live));
    // 4 frames, 1 live, 1 retired-while-free: 2 remain allocatable.
    EXPECT_EQ(fresh.freeFrames(), 2u);
    EXPECT_NE(fresh.tryAlloc(), invalidAddr);
    EXPECT_NE(fresh.tryAlloc(), invalidAddr);
    EXPECT_EQ(fresh.tryAlloc(), invalidAddr);
}

TEST(FrameAllocTest, VolatileRecoveryPanics)
{
    setErrorsThrow(true);
    Rig rig;
    FrameAllocator alloc("t", AddrRange(0, oneMiB), rig.kmem);
    EXPECT_THROW(alloc.recoverFromBitmap(), SimError);
    setErrorsThrow(false);
}

TEST(FrameAllocTest, AllFramesRetiredZoneNeverAborts)
{
    setErrorsThrow(true);
    Rig rig;
    const AddrRange zone =
        AddrRange::withSize(rig.layout.userPool, 4 * pageSize);
    BadFrameTable bad(rig.memory.nvmRange(), rig.kmem,
                      rig.layout.badFrameBitmap);
    FrameAllocator alloc("t", zone, rig.kmem,
                         rig.layout.allocBitmap);
    alloc.setBadFrames(&bad);

    // The pathological endgame: every frame of the zone has worn out.
    for (std::uint64_t i = 0; i < 4; ++i)
        ASSERT_TRUE(bad.retire(zone.start() + i * pageSize));

    // tryAlloc must report exhaustion gracefully — repeatedly, since
    // the pressure retry loop will hammer it — and never panic.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(alloc.tryAlloc(), invalidAddr);
    EXPECT_EQ(alloc.freeFrames(), 0u);
    EXPECT_EQ(alloc.allocatedFrames(), 0u);
    setErrorsThrow(false);
}

TEST(FrameAllocTest, FullySetBadFrameBitmapRecovery)
{
    setErrorsThrow(true);
    Rig rig;
    const AddrRange zone =
        AddrRange::withSize(rig.layout.userPool, 4 * pageSize);
    {
        BadFrameTable bad(rig.memory.nvmRange(), rig.kmem,
                          rig.layout.badFrameBitmap);
        for (std::uint64_t i = 0; i < 4; ++i)
            ASSERT_TRUE(bad.retire(zone.start() + i * pageSize));
    }

    rig.memory.crash();

    // A reboot over a fully-retired zone must come up empty-handed
    // but alive: adoption, recovery and allocation all stay graceful.
    BadFrameTable bad2(rig.memory.nvmRange(), rig.kmem,
                       rig.layout.badFrameBitmap);
    bad2.loadFromNvm();
    EXPECT_EQ(bad2.retiredCount(), 4u);
    FrameAllocator fresh("t", zone, rig.kmem,
                         rig.layout.allocBitmap);
    fresh.setBadFrames(&bad2);
    fresh.recoverFromBitmap();
    EXPECT_EQ(fresh.freeFrames(), 0u);
    EXPECT_EQ(fresh.tryAlloc(), invalidAddr);
    setErrorsThrow(false);
}

TEST(FrameAllocTest, TryAllocFreeRetireInterleavings)
{
    setErrorsThrow(true);
    Rig rig;
    const AddrRange zone =
        AddrRange::withSize(rig.layout.userPool, 8 * pageSize);
    BadFrameTable bad(rig.memory.nvmRange(), rig.kmem,
                      rig.layout.badFrameBitmap);
    FrameAllocator alloc("t", zone, rig.kmem,
                         rig.layout.allocBitmap);
    alloc.setBadFrames(&bad);

    // Seeded storm of tryAlloc / free / retire in random order; the
    // allocator must hold its invariants through every interleaving
    // and never abort — even as the pool shrinks to nothing.
    Random rng(42);
    std::vector<Addr> live;
    std::uint64_t retired = 0;
    for (int step = 0; step < 400; ++step) {
        const std::uint64_t roll = rng.uniform(3);
        if (roll == 0) {
            const Addr f = alloc.tryAlloc();
            if (f != invalidAddr) {
                EXPECT_TRUE(alloc.isAllocated(f));
                live.push_back(f);
            }
        } else if (roll == 1 && !live.empty()) {
            const std::uint64_t idx = rng.uniform(live.size());
            const Addr f = live[idx];
            live.erase(live.begin() + static_cast<long>(idx));
            alloc.free(f);
            EXPECT_FALSE(alloc.isAllocated(f));
        } else if (roll == 2 && retired < 6) {
            // Retire any frame — mapped or free — as media wear does.
            const Addr f =
                zone.start() + rng.uniform(8) * pageSize;
            if (bad.retire(f))
                ++retired;
        }
        EXPECT_LE(alloc.allocatedFrames() + alloc.freeFrames(),
                  alloc.totalFrames());
    }
    // Drain: every remaining frame must still free cleanly, and the
    // pool must end consistent with what wear removed.
    for (const Addr f : live)
        alloc.free(f);
    EXPECT_EQ(alloc.allocatedFrames(), 0u);
    EXPECT_LE(alloc.freeFrames(), alloc.totalFrames() - retired);
    setErrorsThrow(false);
}

TEST(FrameAllocTest, WatermarkGaugesAndExhaustionStat)
{
    Rig rig;
    FrameAllocator alloc("t", AddrRange(0, 8 * pageSize), rig.kmem);
    // No watermarks armed: belowLow never trips, no gauges exported
    // (gauge lookup is fatal when the stat was never registered).
    EXPECT_FALSE(alloc.belowLow());
    setErrorsThrow(true);
    EXPECT_THROW(alloc.stats().gaugeValue("lowWatermark"), SimError);
    setErrorsThrow(false);

    alloc.setWatermarks(2, 4);
    EXPECT_EQ(alloc.lowWatermark(), 2u);
    EXPECT_EQ(alloc.highWatermark(), 4u);
    EXPECT_EQ(alloc.stats().gaugeValue("lowWatermark"), 2);
    EXPECT_EQ(alloc.stats().gaugeValue("highWatermark"), 4);

    // 8 free frames: above low.  Draw down to 2 free: at/below low.
    EXPECT_FALSE(alloc.belowLow());
    std::vector<Addr> held;
    for (int i = 0; i < 6; ++i)
        held.push_back(alloc.tryAlloc());
    EXPECT_TRUE(alloc.belowLow());

    // The exhaustion counter registers lazily on the first failure.
    EXPECT_FALSE(alloc.stats().hasScalar("exhaustedAllocs"));
    while (alloc.tryAlloc() != invalidAddr) {}
    EXPECT_EQ(alloc.stats().scalarValue("exhaustedAllocs"), 1);

    for (const Addr f : held)
        alloc.free(f);
    EXPECT_FALSE(alloc.belowLow());
}

} // namespace
} // namespace kindle::os
