/**
 * @file
 * SMP kernel behavior: per-core runqueues (placement, pinning, work
 * stealing), cross-core TLB shootdowns (no stale translation survives
 * a remote page-table update, an munmap, or a frame retirement), and
 * the per-cpu / aggregate stat layout of a multi-core KindleSystem.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "os/kernel.hh"

namespace kindle::os
{
namespace
{

/** An N-core kernel rig mirroring the uniprocessor kernel_test one. */
struct SmpRig
{
    explicit SmpRig(unsigned n, KernelParams kp = KernelParams{})
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 256 * oneMiB;
              p.nvmBytes = 256 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory, n)
    {
        std::vector<cpu::Core *> ptrs;
        for (unsigned c = 0; c < n; ++c) {
            cores.push_back(std::make_unique<cpu::Core>(
                cpu::CoreParams{}, sim, memory, hier, c,
                "cpu" + std::to_string(c)));
            ptrs.push_back(cores.back().get());
        }
        kernel.emplace(kp, sim, memory, hier, ptrs);
    }

    cpu::Core &core(CpuId c) { return *cores.at(c); }

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    std::vector<std::unique_ptr<cpu::Core>> cores;
    std::optional<Kernel> kernel;
};

/** ~@p slices scheduler quanta of compute, touching @p pages pages. */
std::unique_ptr<cpu::OpStream>
busyProgram(Addr base, unsigned slices, unsigned pages = 4)
{
    micro::ScriptBuilder b;
    b.mmapFixed(base, pages * pageSize, /*nvm=*/false);
    b.touchPages(base, pages * pageSize);
    for (unsigned s = 0; s < slices; ++s)
        b.compute(3'000'000);  // one ~1 ms default timeslice
    b.exit();
    return b.build();
}

std::unique_ptr<cpu::OpStream>
shortProgram(Addr base)
{
    micro::ScriptBuilder b;
    b.mmapFixed(base, pageSize, /*nvm=*/false);
    b.touchPages(base, pageSize);
    b.compute(1000);
    b.exit();
    return b.build();
}

// ---- Scheduler --------------------------------------------------

TEST(SmpSchedulerTest, PlacementSpreadsAcrossCores)
{
    SmpRig rig(2);
    const Pid a = rig.kernel->spawn(
        busyProgram(micro::scriptBase, 2), "a");
    const Pid b = rig.kernel->spawn(
        busyProgram(micro::scriptBase + oneGiB, 2), "b");
    rig.kernel->run();
    EXPECT_EQ(rig.kernel->findProcess(a)->lastCpu, 0);
    EXPECT_EQ(rig.kernel->findProcess(b)->lastCpu, 1);
    // Both cores retired instructions.
    EXPECT_GT(rig.core(0).stats().scalarValue("computeOps"), 0);
    EXPECT_GT(rig.core(1).stats().scalarValue("computeOps"), 0);
}

TEST(SmpSchedulerTest, PinnedProcessRunsOnlyOnItsCore)
{
    SmpRig rig(2);
    const Pid pid = rig.kernel->spawn(
        busyProgram(micro::scriptBase, 3), "pinned");
    rig.kernel->setAffinity(*rig.kernel->findProcess(pid), 1);
    rig.kernel->run();
    EXPECT_EQ(rig.kernel->findProcess(pid)->lastCpu, 1);
    EXPECT_EQ(rig.core(0).stats().scalarValue("computeOps"), 0);
    EXPECT_GT(rig.core(1).stats().scalarValue("computeOps"), 0);
    // Re-routing the initial placement counts as a migration.
    EXPECT_GE(rig.kernel->stats().scalarValue("migrations"), 1);
}

TEST(SmpSchedulerTest, IdleCoreStealsQueuedUnpinnedWork)
{
    // A and C land on core 0, short B on core 1.  When B exits, core
    // 1 must steal whichever of A/C is queued (not running) on core 0.
    SmpRig rig(2);
    rig.kernel->spawn(busyProgram(micro::scriptBase, 6), "a");
    rig.kernel->spawn(shortProgram(micro::scriptBase + oneGiB), "b");
    rig.kernel->spawn(
        busyProgram(micro::scriptBase + 2 * oneGiB, 6), "c");
    rig.kernel->run();
    EXPECT_GE(rig.kernel->stats().scalarValue("migrations"), 1);
    EXPECT_GT(rig.core(0).stats().scalarValue("computeOps"), 0);
    EXPECT_GT(rig.core(1).stats().scalarValue("computeOps"), 0);
}

TEST(SmpSchedulerTest, LoneProcessDoesNotPingPongBetweenCores)
{
    SmpRig rig(4);
    rig.kernel->spawn(busyProgram(micro::scriptBase, 8), "lone");
    rig.kernel->run();
    // The sole runnable process is its core's `running` occupant at
    // every slice boundary, so idle cores must not steal it.
    EXPECT_EQ(rig.kernel->stats().scalarValue("migrations"), 0);
    EXPECT_EQ(rig.core(1).stats().scalarValue("computeOps"), 0);
    EXPECT_EQ(rig.core(2).stats().scalarValue("computeOps"), 0);
    EXPECT_EQ(rig.core(3).stats().scalarValue("computeOps"), 0);
}

TEST(SmpSchedulerTest, RunqueuesTimeShareWithinOneCore)
{
    SmpRig rig(2);
    // Three busy processes on two cores: someone must time-share.
    for (unsigned i = 0; i < 3; ++i) {
        rig.kernel->spawn(
            busyProgram(micro::scriptBase + i * oneGiB, 4),
            "p" + std::to_string(i));
    }
    rig.kernel->run();
    EXPECT_GE(rig.kernel->stats().scalarValue("contextSwitches"), 4);
    for (const auto &proc : rig.kernel->processes())
        EXPECT_EQ(proc->state, ProcState::zombie);
}

TEST(SmpSchedulerTest, ContextOfTracksResidencyAcrossCores)
{
    SmpRig rig(2);
    const Pid pid = rig.kernel->spawn(
        busyProgram(micro::scriptBase, 4), "p");
    Process &proc = *rig.kernel->findProcess(pid);
    // Before the first dispatch the saved context is authoritative.
    EXPECT_EQ(&rig.kernel->contextOf(proc), &proc.context);

    // Mid-slice (observed from an event serviced while the process
    // is executing) contextOf must read the live register file of
    // the core the process occupies, not the stale saved copy.
    const cpu::CpuState *mid_slice = nullptr;
    sim::CallbackEvent probe("probe", [&] {
        mid_slice = &rig.kernel->contextOf(proc);
        EXPECT_EQ(rig.kernel->runningOn(0), &proc);
    });
    rig.sim.eventq().schedule(&probe, rig.sim.now() + oneMs / 2);
    rig.kernel->run();
    EXPECT_EQ(mid_slice, &rig.core(0).state());
    // After exit the saved context is authoritative again.
    EXPECT_EQ(&rig.kernel->contextOf(proc), &proc.context);
}

// ---- TLB shootdowns ---------------------------------------------

/** A shell process with @p pages mapped and both cores' TLBs warm. */
struct ShootdownRig : SmpRig
{
    ShootdownRig() : SmpRig(2)
    {
        proc = &kernel->spawnShell("victim", 0);
        va = kernel->sysMmap(*proc, 0, 4 * pageSize, 0);
        // Touch the pages from both cores so each private TLB holds
        // translations for the same page table.
        for (const CpuId c : {CpuId(0), CpuId(1)}) {
            core(c).setContext(proc->pid, proc->ptRoot);
            for (unsigned p = 0; p < 4; ++p)
                EXPECT_TRUE(core(c).memAccess(
                    true, va + p * pageSize, 8));
        }
    }

    bool
    translationCached(CpuId c, Addr vaddr)
    {
        Tick extra = 0;
        return core(c).tlb().lookup(proc->pid, cpu::vpnOf(vaddr),
                                    extra) != nullptr;
    }

    Process *proc = nullptr;
    Addr va = 0;
};

TEST(TlbShootdownTest, MunmapInvalidatesRemoteTlbs)
{
    ShootdownRig rig;
    ASSERT_TRUE(rig.translationCached(0, rig.va));
    ASSERT_TRUE(rig.translationCached(1, rig.va));
    rig.kernel->sysMunmap(*rig.proc, rig.va, 4 * pageSize);
    for (const CpuId c : {CpuId(0), CpuId(1)}) {
        for (unsigned p = 0; p < 4; ++p)
            EXPECT_FALSE(
                rig.translationCached(c, rig.va + p * pageSize));
    }
    EXPECT_GE(rig.kernel->stats().scalarValue("tlbShootdownsSent"),
              1);
    EXPECT_GE(rig.kernel->stats().scalarValue("tlbShootdownIpis"),
              1);
}

TEST(TlbShootdownTest, MprotectInvalidatesRemoteTlbs)
{
    ShootdownRig rig;
    rig.kernel->sysMprotect(*rig.proc, rig.va, 4 * pageSize,
                            /*writable=*/false);
    // A stale writable translation on either core would let the
    // process dodge the new protection.
    EXPECT_FALSE(rig.translationCached(0, rig.va));
    EXPECT_FALSE(rig.translationCached(1, rig.va));
}

TEST(TlbShootdownTest, ShootdownPageIsPageTargeted)
{
    ShootdownRig rig;
    rig.kernel->shootdownPage(rig.proc->pid, rig.va);
    EXPECT_FALSE(rig.translationCached(0, rig.va));
    EXPECT_FALSE(rig.translationCached(1, rig.va));
    // The neighbouring page's translation survives on both cores.
    EXPECT_TRUE(rig.translationCached(0, rig.va + pageSize));
    EXPECT_TRUE(rig.translationCached(1, rig.va + pageSize));
}

TEST(TlbShootdownTest, ShootdownFlushAllClearsEveryTlb)
{
    ShootdownRig rig;
    rig.kernel->shootdownFlushAll();
    for (unsigned p = 0; p < 4; ++p) {
        EXPECT_FALSE(
            rig.translationCached(0, rig.va + p * pageSize));
        EXPECT_FALSE(
            rig.translationCached(1, rig.va + p * pageSize));
    }
}

TEST(TlbShootdownTest, FrameRetirementShootsDownRemoteTlb)
{
    SmpRig rig(2);
    Process &proc = rig.kernel->spawnShell("victim", 0);
    const Addr va =
        rig.kernel->sysMmap(proc, 0, pageSize, cpu::mapNvm);
    for (const CpuId c : {CpuId(0), CpuId(1)}) {
        rig.core(c).setContext(proc.pid, proc.ptRoot);
        ASSERT_TRUE(rig.core(c).memAccess(true, va, 8));
    }
    const Addr frame =
        roundDown(rig.core(0).translate(va, false), pageSize);
    ASSERT_NE(frame, invalidAddr);

    rig.kernel->retireNvmFrame(frame, "test");
    Tick extra = 0;
    // The page was remapped to a fresh frame: any cached translation
    // on any core would keep reading the retired frame.
    EXPECT_EQ(rig.core(0).tlb().lookup(proc.pid, cpu::vpnOf(va),
                                       extra),
              nullptr);
    EXPECT_EQ(rig.core(1).tlb().lookup(proc.pid, cpu::vpnOf(va),
                                       extra),
              nullptr);
}

// ---- System-level stat layout -----------------------------------

TEST(SmpStatsTest, SingleCoreLayoutMatchesSeed)
{
    KindleConfig cfg;
    cfg.numCores = 1;
    KindleSystem sys(cfg);
    sys.kernel().spawn(micro::seqAllocTouch(8 * pageSize), "p");
    sys.runAll();
    const statistics::StatSnapshot snap = sys.snapshotStats();
    EXPECT_TRUE(snap.has("core.memOps"));
    EXPECT_FALSE(snap.has("cpu0.memOps"));
    // No directory, no SMP kernel counters on a uniprocessor.
    EXPECT_FALSE(snap.has("cacheHierarchy.coherence.invalidations"));
    EXPECT_FALSE(snap.has("kernel.migrations"));
    EXPECT_FALSE(snap.has("kernel.tlbShootdownsSent"));
}

TEST(SmpStatsTest, MultiCoreGroupsPerCpuWithAggregateRollup)
{
    KindleConfig cfg;
    cfg.numCores = 2;
    KindleSystem sys(cfg);
    sys.kernel().spawn(micro::seqAllocTouch(8 * pageSize), "a");
    sys.kernel().spawn(
        micro::seqAllocTouch(8 * pageSize, /*nvm=*/false), "b");
    sys.runAll();
    const statistics::StatSnapshot snap = sys.snapshotStats();
    ASSERT_TRUE(snap.has("cpu0.memOps"));
    ASSERT_TRUE(snap.has("cpu1.memOps"));
    ASSERT_TRUE(snap.has("core.memOps"));
    EXPECT_EQ(snap.get("core.memOps"),
              snap.get("cpu0.memOps") + snap.get("cpu1.memOps"));
    // Nested children roll up too.
    EXPECT_EQ(snap.get("core.tlb.l1Hits"),
              snap.get("cpu0.tlb.l1Hits") +
                  snap.get("cpu1.tlb.l1Hits"));
    EXPECT_TRUE(snap.has("cacheHierarchy.coherence.invalidations"));
    EXPECT_TRUE(snap.has("kernel.migrations"));
}

} // namespace
} // namespace kindle::os
