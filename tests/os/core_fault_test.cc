/**
 * @file
 * CPU-fault subsystem: seeded fail-stop / transient-stall core faults,
 * the IPI ack-timeout/retry protocol, watchdog detection, and
 * hotplug-style offlining — the workload must always complete on the
 * survivors.  Also covers the scheduler edge cases around a shrunken
 * scheduling set (broken pins, setAffinity to a dead core, lone
 * runnable, ipiLatency = 0) and the zero-cost contract (no core-fault
 * stats exist until a fault event actually happens).
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "os/kernel.hh"

namespace kindle::os
{
namespace
{

/** The smp_test rig, with a core-fault plan in the params. */
struct FaultRig
{
    explicit FaultRig(unsigned n, KernelParams kp = KernelParams{})
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 256 * oneMiB;
              p.nvmBytes = 256 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory, n)
    {
        std::vector<cpu::Core *> ptrs;
        for (unsigned c = 0; c < n; ++c) {
            cores.push_back(std::make_unique<cpu::Core>(
                cpu::CoreParams{}, sim, memory, hier, c,
                "cpu" + std::to_string(c)));
            ptrs.push_back(cores.back().get());
        }
        kernel.emplace(kp, sim, memory, hier, ptrs);
    }

    cpu::Core &core(CpuId c) { return *cores.at(c); }

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    std::vector<std::unique_ptr<cpu::Core>> cores;
    std::optional<Kernel> kernel;
};

KernelParams
paramsWithFault(const fault::CoreFault &f)
{
    KernelParams kp;
    kp.coreFaults.faults.push_back(f);
    return kp;
}

fault::CoreFault
failStopAtTick(CpuId cpu, Tick at)
{
    fault::CoreFault f;
    f.cpu = cpu;
    f.atTick = at;
    return f;
}

fault::CoreFault
failStopAtIpi(CpuId cpu, std::uint64_t nth)
{
    fault::CoreFault f;
    f.cpu = cpu;
    f.atNthIpi = nth;
    return f;
}

fault::CoreFault
stallAtIpi(CpuId cpu, std::uint64_t nth, Tick ticks)
{
    fault::CoreFault f;
    f.cpu = cpu;
    f.atNthIpi = nth;
    f.stallTicks = ticks;
    return f;
}

/** ~@p slices scheduler quanta of compute, touching @p pages pages. */
std::unique_ptr<cpu::OpStream>
busyProgram(Addr base, unsigned slices, unsigned pages = 4)
{
    micro::ScriptBuilder b;
    b.mmapFixed(base, pages * pageSize, /*nvm=*/false);
    b.touchPages(base, pages * pageSize);
    for (unsigned s = 0; s < slices; ++s)
        b.compute(3'000'000);  // one ~1 ms default timeslice
    b.exit();
    return b.build();
}

/** A shootdown rig: pages of one process warm in every core's TLB. */
struct ShootdownRig : FaultRig
{
    explicit ShootdownRig(KernelParams kp = KernelParams{})
        : FaultRig(2, kp)
    {
        proc = &kernel->spawnShell("victim", 0);
        va = kernel->sysMmap(*proc, 0, 4 * pageSize, 0);
        for (const CpuId c : {CpuId(0), CpuId(1)}) {
            core(c).setContext(proc->pid, proc->ptRoot);
            for (unsigned p = 0; p < 4; ++p)
                EXPECT_TRUE(core(c).memAccess(
                    true, va + p * pageSize, 8));
        }
    }

    bool
    translationCached(CpuId c, Addr vaddr)
    {
        Tick extra = 0;
        return core(c).tlb().lookup(proc->pid, cpu::vpnOf(vaddr),
                                    extra) != nullptr;
    }

    Process *proc = nullptr;
    Addr va = 0;
};

// ---- Watchdog + offlining ---------------------------------------

TEST(CoreFaultTest, WatchdogOfflinesFailStoppedCoreAndWorkCompletes)
{
    FaultRig rig(3, paramsWithFault(failStopAtTick(1, oneMs + 1)));
    for (unsigned i = 0; i < 3; ++i) {
        rig.kernel->spawn(
            busyProgram(micro::scriptBase + i * oneGiB, 4),
            "p" + std::to_string(i));
    }
    rig.kernel->run();
    EXPECT_FALSE(rig.kernel->coreOnline(1));
    EXPECT_TRUE(rig.kernel->coreOnline(0));
    EXPECT_TRUE(rig.kernel->coreOnline(2));
    EXPECT_EQ(rig.kernel->stats().scalarValue("coresOfflined"), 1);
    // run() returned: every process reached zombie, on survivors.
    for (const auto &proc : rig.kernel->processes())
        EXPECT_EQ(proc->state, ProcState::zombie);
    EXPECT_GT(rig.core(0).stats().scalarValue("computeOps"), 0);
}

TEST(CoreFaultTest, PinnedToDeadCoreBreaksPinAndCompletesElsewhere)
{
    FaultRig rig(2, paramsWithFault(failStopAtTick(1, 1)));
    const Pid pid = rig.kernel->spawn(
        busyProgram(micro::scriptBase, 3), "pinned");
    ASSERT_TRUE(
        rig.kernel->setAffinity(*rig.kernel->findProcess(pid), 1));
    rig.kernel->run();
    Process &proc = *rig.kernel->findProcess(pid);
    EXPECT_EQ(proc.state, ProcState::zombie);
    EXPECT_EQ(proc.pinnedCpu, -1);
    EXPECT_EQ(rig.kernel->stats().scalarValue("affinityBroken"), 1);
    EXPECT_EQ(rig.kernel->stats().scalarValue("coresOfflined"), 1);
    // All the work ran on the survivor.
    EXPECT_GT(rig.core(0).stats().scalarValue("computeOps"), 0);
    EXPECT_EQ(rig.core(1).stats().scalarValue("computeOps"), 0);
}

TEST(CoreFaultTest, SetAffinityToOfflinedCoreFailsCleanly)
{
    FaultRig rig(2, paramsWithFault(failStopAtTick(1, 1)));
    rig.kernel->spawn(busyProgram(micro::scriptBase, 1), "warm");
    rig.kernel->run();
    ASSERT_FALSE(rig.kernel->coreOnline(1));

    const Pid pid = rig.kernel->spawn(
        busyProgram(micro::scriptBase + oneGiB, 1), "late");
    Process &proc = *rig.kernel->findProcess(pid);
    EXPECT_FALSE(rig.kernel->setAffinity(proc, 1));
    EXPECT_EQ(proc.pinnedCpu, -1);  // the pin must not stick
    // Pinning to a live core still works, and the process runs.
    EXPECT_TRUE(rig.kernel->setAffinity(proc, 0));
    rig.kernel->run();
    EXPECT_EQ(proc.state, ProcState::zombie);
    EXPECT_EQ(proc.lastCpu, 0);
}

TEST(CoreFaultTest, MidSliceDeathKillsOccupantCrashConsistently)
{
    // The fault fires mid-slice: the occupant's live register state
    // died with the core, so the kernel must kill it rather than
    // resume from a stale saved context.
    FaultRig rig(2, paramsWithFault(failStopAtTick(1, oneMs / 2)));
    rig.kernel->spawn(busyProgram(micro::scriptBase, 4), "a");
    // Fine-grained ops so the fault tick lands *between* ops inside a
    // slice (state == running), not at a slice boundary where the
    // occupant has already parked in `ready` with a saved context.
    micro::ScriptBuilder fine;
    fine.mmapFixed(micro::scriptBase + oneGiB, 4 * pageSize, false);
    fine.touchPages(micro::scriptBase + oneGiB, 4 * pageSize);
    for (int i = 0; i < 400; ++i)
        fine.compute(30'000);
    fine.exit();
    const Pid victim = rig.kernel->spawn(fine.build(), "b");
    rig.kernel->setAffinity(*rig.kernel->findProcess(victim), 1);
    rig.kernel->run();
    EXPECT_FALSE(rig.kernel->coreOnline(1));
    EXPECT_EQ(rig.kernel->stats().scalarValue("coreLossKills"), 1);
    for (const auto &proc : rig.kernel->processes())
        EXPECT_EQ(proc->state, ProcState::zombie);
}

TEST(CoreFaultTest, LastOnlineCoreDeathIsFatal)
{
    KernelParams kp;
    kp.coreFaults.faults.push_back(failStopAtTick(0, 1));
    kp.coreFaults.faults.push_back(failStopAtTick(1, 1));
    FaultRig rig(2, kp);
    rig.kernel->spawn(busyProgram(micro::scriptBase, 1), "doomed");
    setErrorsThrow(true);
    EXPECT_THROW(rig.kernel->run(), SimError);
    setErrorsThrow(false);
}

TEST(CoreFaultTest, LoneRunnableSurvivesAnotherCoresDeath)
{
    // A dying core must not make the survivors start ping-ponging the
    // single runnable process around.
    FaultRig rig(4, paramsWithFault(failStopAtTick(2, oneMs + 1)));
    rig.kernel->spawn(busyProgram(micro::scriptBase, 6), "lone");
    rig.kernel->run();
    EXPECT_FALSE(rig.kernel->coreOnline(2));
    EXPECT_EQ(rig.kernel->stats().scalarValue("migrations"), 0);
    EXPECT_GT(rig.core(0).stats().scalarValue("computeOps"), 0);
}

// ---- IPI ack-timeout / retry ------------------------------------

TEST(CoreFaultTest, IpiFailStopTimesOutAndOfflinesTarget)
{
    ShootdownRig rig(paramsWithFault(failStopAtIpi(1, 1)));
    rig.kernel->sysMunmap(*rig.proc, rig.va, 4 * pageSize);
    // The target died on delivery: the initiator burned its full
    // resend budget, escalated, and the watchdog offlined the core.
    EXPECT_FALSE(rig.kernel->coreOnline(1));
    EXPECT_EQ(rig.kernel->stats().scalarValue("ipiTimeouts"), 1);
    EXPECT_EQ(rig.kernel->stats().scalarValue("ipiRetries"),
              KernelParams{}.ipiRetries);
    EXPECT_EQ(rig.kernel->stats().scalarValue("coresOfflined"), 1);
    // The dead core's TLB was flushed on the way out.
    EXPECT_FALSE(rig.translationCached(1, rig.va));
}

TEST(CoreFaultTest, TransientStallRetriesWithoutOffline)
{
    // 1.5 ack-timeouts: the first resend still finds the core
    // stalled, the budget is never exhausted — retry must succeed and
    // the core must stay online.
    ShootdownRig rig(paramsWithFault(
        stallAtIpi(1, 1, 3 * KernelParams{}.ipiAckTimeout / 2)));
    rig.kernel->sysMunmap(*rig.proc, rig.va, 4 * pageSize);
    EXPECT_TRUE(rig.kernel->coreOnline(1));
    EXPECT_GE(rig.kernel->stats().scalarValue("ipiRetries"), 1);
    // The shootdown completed once the stall lifted: no stale
    // translation survives anywhere.
    for (const CpuId c : {CpuId(0), CpuId(1)}) {
        for (unsigned p = 0; p < 4; ++p)
            EXPECT_FALSE(
                rig.translationCached(c, rig.va + p * pageSize));
    }
}

TEST(CoreFaultTest, ZeroIpiLatencyShootdownStillCompletes)
{
    // Degenerate timing: free IPI delivery must not break the ack
    // protocol, with or without a stall in the way.
    KernelParams kp = paramsWithFault(
        stallAtIpi(1, 1, KernelParams{}.ipiAckTimeout / 2));
    kp.ipiLatency = 0;
    ShootdownRig rig(kp);
    rig.kernel->sysMunmap(*rig.proc, rig.va, 4 * pageSize);
    EXPECT_TRUE(rig.kernel->coreOnline(1));
    for (const CpuId c : {CpuId(0), CpuId(1)}) {
        for (unsigned p = 0; p < 4; ++p)
            EXPECT_FALSE(
                rig.translationCached(c, rig.va + p * pageSize));
    }
}

// ---- Zero-cost contract -----------------------------------------

TEST(CoreFaultStatsTest, NoCoreFaultStatsWithoutAPlan)
{
    KindleConfig cfg;
    cfg.numCores = 2;
    KindleSystem sys(cfg);
    sys.kernel().spawn(micro::seqAllocTouch(8 * pageSize), "a");
    sys.kernel().spawn(
        micro::seqAllocTouch(8 * pageSize, /*nvm=*/false), "b");
    sys.runAll();
    const statistics::StatSnapshot snap = sys.snapshotStats();
    EXPECT_FALSE(snap.has("kernel.coresOfflined"));
    EXPECT_FALSE(snap.has("kernel.coreLossKills"));
    EXPECT_FALSE(snap.has("kernel.affinityBroken"));
    EXPECT_FALSE(snap.has("kernel.ipiRetries"));
    EXPECT_FALSE(snap.has("kernel.ipiTimeouts"));
}

TEST(CoreFaultStatsTest, ConfigPlanFlowsThroughKindleSystem)
{
    KindleConfig cfg;
    cfg.numCores = 2;
    fault::CoreFaultPlan plan;
    plan.faults.push_back(failStopAtTick(1, oneMs / 2));
    cfg.coreFault = plan;
    KindleSystem sys(cfg);
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 4 * pageSize, false);
    b.touchPages(micro::scriptBase, 4 * pageSize);
    for (int r = 0; r < 3; ++r)
        b.compute(3'000'000);
    b.exit();
    sys.run(b.build(), "p");
    const statistics::StatSnapshot snap = sys.snapshotStats();
    EXPECT_EQ(snap.get("kernel.coresOfflined"), 1.0);
    EXPECT_FALSE(sys.kernel().coreOnline(1));
}

} // namespace
} // namespace kindle::os
