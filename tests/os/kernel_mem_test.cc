#include <gtest/gtest.h>

#include "os/kernel_mem.hh"

namespace kindle::os
{
namespace
{

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 64 * oneMiB;
              p.nvmBytes = 64 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          kmem(sim, memory, hier)
    {}

    Addr nvm(std::uint64_t off = 0) const
    {
        return 64 * oneMiB + off;
    }

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    KernelMem kmem;
};

TEST(KernelMemTest, ScalarRoundTripAndTiming)
{
    Rig rig;
    const Tick t0 = rig.sim.now();
    rig.kmem.write64(0x1000, 0xabcdef);
    EXPECT_EQ(rig.kmem.read64(0x1000), 0xabcdefu);
    EXPECT_GT(rig.sim.now(), t0);
}

TEST(KernelMemTest, UncachedAccessBypassesCaches)
{
    Rig rig;
    rig.kmem.write64Uncached(0x2000, 42);
    EXPECT_FALSE(rig.hier.l1().contains(0x2000));
    EXPECT_EQ(rig.kmem.read64Uncached(0x2000), 42u);
    EXPECT_FALSE(rig.hier.l1().contains(0x2000));
}

TEST(KernelMemTest, CachedAccessWarmsCaches)
{
    Rig rig;
    rig.kmem.write64(0x3000, 7);
    EXPECT_TRUE(rig.hier.l1().contains(0x3000));
}

TEST(KernelMemTest, BufferRoundTripAcrossLines)
{
    Rig rig;
    const char msg[] = "spanning multiple cache lines for sure......"
                       "........................................";
    rig.kmem.writeBuf(0x4000 - 16, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    rig.kmem.readBuf(0x4000 - 16, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(KernelMemTest, WriteBufDurableSurvivesCrash)
{
    Rig rig;
    const std::uint64_t v = 0x600d600d;
    rig.kmem.writeBufDurable(rig.nvm(0x100), &v, sizeof(v));
    rig.memory.crash();
    std::uint64_t out = 0;
    rig.memory.readNvmDurable(rig.nvm(0x100), &out, sizeof(out));
    EXPECT_EQ(out, v);
}

TEST(KernelMemTest, PlainWriteToNvmDoesNotSurviveCrash)
{
    Rig rig;
    rig.kmem.write64(rig.nvm(0x200), 0xbad);
    rig.memory.crash();
    std::uint64_t out = 1;
    rig.memory.readNvmDurable(rig.nvm(0x200), &out, sizeof(out));
    EXPECT_EQ(out, 0u);
}

TEST(KernelMemTest, DurableWriteWaitsForDrain)
{
    Rig rig;
    // Pile up posted NVM writes, then issue a durable write: the
    // fence must wait for the backlog, costing much more than an
    // unloaded durable write.
    Rig loaded;
    for (int i = 0; i < 64; ++i) {
        loaded.kmem.write64Uncached(loaded.nvm(0x1000 + i * 64), i);
    }
    const Tick t0 = loaded.sim.now();
    const std::uint64_t v = 1;
    loaded.kmem.writeBufDurable(loaded.nvm(0x8000), &v, 8);
    const Tick loaded_cost = loaded.sim.now() - t0;

    const Tick u0 = rig.sim.now();
    rig.kmem.writeBufDurable(rig.nvm(0x8000), &v, 8);
    const Tick unloaded_cost = rig.sim.now() - u0;
    EXPECT_GT(loaded_cost, unloaded_cost);
}

TEST(KernelMemTest, CopyPageMovesBytesAndIsDurableInNvm)
{
    Rig rig;
    const char payload[16] = "page contents!!";
    rig.memory.writeData(0x10000, payload, sizeof(payload));
    rig.kmem.copyPage(rig.nvm(0x20000), 0x10000, true);

    rig.memory.crash();
    char out[16] = {};
    rig.memory.readNvmDurable(rig.nvm(0x20000), out, sizeof(out));
    EXPECT_STREQ(out, payload);
}

TEST(KernelMemTest, ZeroDurableClearsRegion)
{
    Rig rig;
    const std::uint64_t dirty = 0xffff;
    rig.kmem.writeBufDurable(rig.nvm(0x30000), &dirty, 8);
    rig.kmem.zeroDurable(rig.nvm(0x30000), pageSize);
    rig.memory.crash();
    std::uint64_t out = 1;
    rig.memory.readNvmDurable(rig.nvm(0x30000), &out, 8);
    EXPECT_EQ(out, 0u);
}

TEST(KernelMemTest, ReadDurableBufSeesOnlyCommittedData)
{
    Rig rig;
    const std::uint64_t durable = 5;
    rig.kmem.writeBufDurable(rig.nvm(0x40000), &durable, 8);
    rig.kmem.write64(rig.nvm(0x40000), 99);  // newer, volatile

    std::uint64_t out = 0;
    rig.kmem.readDurableBuf(rig.nvm(0x40000), &out, 8);
    EXPECT_EQ(out, 5u);
}

} // namespace
} // namespace kindle::os
