#include <gtest/gtest.h>

#include "kindle/microbench.hh"
#include "os/kernel.hh"

namespace kindle::os
{
namespace
{

struct Rig
{
    explicit Rig(KernelParams kp = KernelParams{})
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 256 * oneMiB;
              p.nvmBytes = 256 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          core(cpu::CoreParams{}, sim, memory, hier),
          kernel(kp, sim, memory, hier, core)
    {}

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    cpu::Core core;
    Kernel kernel;
};

TEST(KernelTest, SpawnAssignsPidsAndSlots)
{
    Rig rig;
    const Pid p1 = rig.kernel.spawn(micro::seqAllocTouch(pageSize),
                                    "one");
    const Pid p2 = rig.kernel.spawn(micro::seqAllocTouch(pageSize),
                                    "two");
    EXPECT_EQ(p1, 1u);
    EXPECT_EQ(p2, 2u);
    EXPECT_NE(rig.kernel.findProcess(p1)->slot,
              rig.kernel.findProcess(p2)->slot);
}

TEST(KernelTest, MmapCreatesTaggedVma)
{
    Rig rig;
    Process &proc = rig.kernel.spawnShell("shell", 0);
    const Addr a =
        rig.kernel.sysMmap(proc, 0, 8 * pageSize, cpu::mapNvm);
    const Vma *vma = proc.aspace.find(a);
    ASSERT_NE(vma, nullptr);
    EXPECT_TRUE(vma->nvm);
    const Addr d = rig.kernel.sysMmap(proc, 0, 8 * pageSize, 0);
    EXPECT_FALSE(proc.aspace.find(d)->nvm);
}

TEST(KernelTest, DemandPagingAllocatesFromTaggedZone)
{
    Rig rig;
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 4 * pageSize, /*nvm=*/true);
    b.touchPages(micro::scriptBase, 4 * pageSize);
    rig.kernel.spawn(b.build(), "nvm-toucher");
    rig.kernel.run();
    // Data frames from the NVM zone; DRAM only holds page tables.
    EXPECT_EQ(rig.kernel.nvmAllocator().stats().scalarValue("allocs"),
              4);
    EXPECT_EQ(
        rig.kernel.dramAllocator().stats().scalarValue("allocs"),
        rig.kernel.pageTables().stats().scalarValue("tablePages"));
}

TEST(KernelTest, MunmapReleasesFramesAndPtes)
{
    Rig rig;
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 16 * pageSize, true);
    b.touchPages(micro::scriptBase, 16 * pageSize);
    b.munmap(micro::scriptBase, 16 * pageSize);
    // Program idles afterwards so we can inspect mid-flight state:
    b.compute(1);
    rig.kernel.spawn(b.build(), "churn");
    rig.kernel.run();
    EXPECT_EQ(rig.kernel.nvmAllocator().allocatedFrames(), 0u);
}

TEST(KernelTest, PartialMunmapKeepsRemainder)
{
    Rig rig;
    Process &proc = rig.kernel.spawnShell("s", 0);
    const Addr a =
        rig.kernel.sysMmap(proc, 0, 4 * pageSize, cpu::mapNvm);
    rig.kernel.sysMunmap(proc, a + pageSize, pageSize);
    EXPECT_NE(proc.aspace.find(a), nullptr);
    EXPECT_EQ(proc.aspace.find(a + pageSize), nullptr);
    EXPECT_NE(proc.aspace.find(a + 2 * pageSize), nullptr);
}

TEST(KernelTest, SegfaultKillsProcess)
{
    Rig rig;
    micro::ScriptBuilder b;
    b.write(0xdeadbeef000);  // no VMA
    b.compute(100);          // never reached
    const Pid pid = rig.kernel.spawn(b.build(), "crasher");
    rig.kernel.run();
    EXPECT_EQ(rig.kernel.findProcess(pid)->state, ProcState::zombie);
}

TEST(KernelTest, WriteToReadOnlyVmaFaults)
{
    Rig rig;
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, pageSize, false);
    b.mprotect(micro::scriptBase, pageSize, cpu::protRead);
    b.write(micro::scriptBase);
    const Pid pid = rig.kernel.spawn(b.build(), "ro-writer");
    rig.kernel.run();
    EXPECT_EQ(rig.kernel.findProcess(pid)->state, ProcState::zombie);
    EXPECT_GE(rig.core.stats().scalarValue("illegalAccesses"), 1);
}

TEST(KernelTest, MremapGrowInPlace)
{
    Rig rig;
    Process &proc = rig.kernel.spawnShell("s", 0);
    const Addr a =
        rig.kernel.sysMmap(proc, 0, 2 * pageSize, cpu::mapNvm);
    const Addr b =
        rig.kernel.sysMremap(proc, a, 2 * pageSize, 6 * pageSize);
    EXPECT_EQ(a, b);
    EXPECT_EQ(proc.aspace.find(a)->range.size(), 6 * pageSize);
}

TEST(KernelTest, MremapShrinkFreesTail)
{
    Rig rig;
    Process &proc = rig.kernel.spawnShell("s", 0);
    const Addr a =
        rig.kernel.sysMmap(proc, 0, 4 * pageSize, cpu::mapNvm);
    rig.kernel.sysMremap(proc, a, 4 * pageSize, 2 * pageSize);
    EXPECT_EQ(proc.aspace.find(a)->range.size(), 2 * pageSize);
    EXPECT_EQ(proc.aspace.find(a + 3 * pageSize), nullptr);
}

TEST(KernelTest, MremapMoveRelocatesFrames)
{
    Rig rig;
    Process &proc = rig.kernel.spawnShell("s", 0);
    const Addr a =
        rig.kernel.sysMmap(proc, 0, 2 * pageSize, cpu::mapNvm);
    // Block in-place growth.
    const Addr blocker = rig.kernel.sysMmap(
        proc, a + 2 * pageSize, pageSize, cpu::mapFixed);
    EXPECT_EQ(blocker, a + 2 * pageSize);
    // Materialize a frame to verify it travels.
    rig.kernel.core(0).setContext(proc.pid, proc.ptRoot);
    Process *saved_current = rig.kernel.currentProcess();
    (void)saved_current;
    // Map manually through the fault path.
    const cpu::Pte before = [&] {
        const Addr frame = rig.kernel.nvmAllocator().alloc();
        rig.kernel.pageTables().map(proc.ptRoot, a, frame, true,
                                    true);
        return rig.kernel.pageTables().readLeaf(proc.ptRoot, a);
    }();

    const Addr moved =
        rig.kernel.sysMremap(proc, a, 2 * pageSize, 4 * pageSize);
    EXPECT_NE(moved, a);
    const auto leaf = rig.kernel.pageTables().readLeaf(proc.ptRoot,
                                                       moved);
    EXPECT_TRUE(leaf.present());
    EXPECT_EQ(leaf.frameAddr(), before.frameAddr());
    EXPECT_FALSE(
        rig.kernel.pageTables().readLeaf(proc.ptRoot, a).present());
}

TEST(KernelTest, RoundRobinAlternatesProcesses)
{
    Rig rig;
    auto spin = [](int rounds) {
        micro::ScriptBuilder b;
        b.mmapFixed(micro::scriptBase, pageSize, false);
        for (int i = 0; i < rounds; ++i)
            b.compute(10000);
        b.exit();
        return b.build();
    };
    rig.kernel.spawn(spin(2000), "a");
    rig.kernel.spawn(spin(2000), "b");
    rig.kernel.run();
    // Both ran to completion and the scheduler actually interleaved.
    EXPECT_GT(rig.kernel.stats().scalarValue("contextSwitches"), 2);
}

TEST(KernelTest, ExitReleasesEverything)
{
    Rig rig;
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 8 * pageSize, true);
    b.touchPages(micro::scriptBase, 8 * pageSize);
    b.exit();  // no explicit munmap
    rig.kernel.spawn(b.build(), "leaky");
    rig.kernel.run();
    EXPECT_EQ(rig.kernel.nvmAllocator().allocatedFrames(), 0u);
    // Page-table frames released too.
    EXPECT_EQ(rig.kernel.dramAllocator().allocatedFrames(), 0u);
}

TEST(KernelTest, ListenersObserveLifecycle)
{
    struct Spy : OsEventListener
    {
        void onProcessCreated(Process &) override { ++created; }
        void onProcessExit(Process &) override { ++exited; }
        void
        onVmaAdded(Process &, const Vma &) override
        {
            ++vmas;
        }
        void
        onFrameMapped(Process &, Addr, Addr, bool nvm) override
        {
            frames += nvm ? 1 : 0;
        }
        int created = 0;
        int exited = 0;
        int vmas = 0;
        int frames = 0;
    } spy;

    Rig rig;
    rig.kernel.addListener(&spy);
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 2 * pageSize, true);
    b.touchPages(micro::scriptBase, 2 * pageSize);
    b.exit();
    rig.kernel.spawn(b.build(), "observed");
    rig.kernel.run();
    EXPECT_EQ(spy.created, 1);
    EXPECT_EQ(spy.exited, 1);
    EXPECT_EQ(spy.vmas, 1);
    EXPECT_EQ(spy.frames, 2);
}

TEST(KernelTest, PtInNvmPlacesTablesInNvmZone)
{
    KernelParams kp;
    kp.ptInNvm = true;
    Rig rig(kp);
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, pageSize, false);  // DRAM data
    b.touchPages(micro::scriptBase, pageSize);
    b.exit();
    rig.kernel.spawn(b.build(), "nvmpt");
    rig.kernel.run();
    // Table frames came from the NVM allocator even though the data
    // page was DRAM.
    EXPECT_GT(rig.kernel.nvmAllocator().stats().scalarValue("allocs"),
              0);
}

} // namespace
} // namespace kindle::os
