#include <gtest/gtest.h>

#include "os/vma.hh"

namespace kindle::os
{
namespace
{

Vma
makeVma(Addr start, std::uint64_t size, bool nvm = false)
{
    Vma v;
    v.range = AddrRange::withSize(start, size);
    v.nvm = nvm;
    return v;
}

constexpr Addr base = AddressSpace::mmapBase;

TEST(VmaTest, FindInsideAndOutside)
{
    AddressSpace as;
    as.insert(makeVma(base, 4 * pageSize));
    EXPECT_NE(as.find(base), nullptr);
    EXPECT_NE(as.find(base + 4 * pageSize - 1), nullptr);
    EXPECT_EQ(as.find(base + 4 * pageSize), nullptr);
    EXPECT_EQ(as.find(base - 1), nullptr);
}

TEST(VmaTest, FindFreeRegionSkipsExisting)
{
    AddressSpace as;
    as.insert(makeVma(base, 4 * pageSize));
    const Addr got = as.findFreeRegion(0, 2 * pageSize);
    EXPECT_GE(got, base + 4 * pageSize);
}

TEST(VmaTest, FindFreeRegionFitsInGap)
{
    AddressSpace as;
    as.insert(makeVma(base, pageSize));
    as.insert(makeVma(base + 10 * pageSize, pageSize));
    const Addr got = as.findFreeRegion(0, 4 * pageSize);
    EXPECT_EQ(got, base + pageSize);
}

TEST(VmaTest, FindFreeRegionHonoursHint)
{
    AddressSpace as;
    const Addr hint = base + 100 * pageSize;
    EXPECT_EQ(as.findFreeRegion(hint, pageSize), hint);
}

TEST(VmaTest, OverlappingInsertPanics)
{
    setErrorsThrow(true);
    AddressSpace as;
    as.insert(makeVma(base, 4 * pageSize));
    EXPECT_THROW(as.insert(makeVma(base + pageSize, pageSize)),
                 SimError);
    EXPECT_THROW(
        as.insert(makeVma(base - pageSize, 2 * pageSize)),
        SimError);
    setErrorsThrow(false);
}

TEST(VmaTest, RemoveWholeVma)
{
    AddressSpace as;
    as.insert(makeVma(base, 4 * pageSize, true));
    const auto removed =
        as.removeRange(AddrRange::withSize(base, 4 * pageSize));
    ASSERT_EQ(removed.size(), 1u);
    EXPECT_TRUE(removed[0].nvm);
    EXPECT_TRUE(as.empty());
}

TEST(VmaTest, RemoveHeadSplits)
{
    AddressSpace as;
    as.insert(makeVma(base, 4 * pageSize));
    const auto removed =
        as.removeRange(AddrRange::withSize(base, pageSize));
    ASSERT_EQ(removed.size(), 1u);
    EXPECT_EQ(removed[0].range.size(), pageSize);
    ASSERT_EQ(as.count(), 1u);
    EXPECT_EQ(as.find(base), nullptr);
    EXPECT_NE(as.find(base + pageSize), nullptr);
}

TEST(VmaTest, RemoveMiddleSplitsInTwo)
{
    AddressSpace as;
    as.insert(makeVma(base, 4 * pageSize));
    as.removeRange(
        AddrRange::withSize(base + pageSize, pageSize));
    EXPECT_EQ(as.count(), 2u);
    EXPECT_NE(as.find(base), nullptr);
    EXPECT_EQ(as.find(base + pageSize), nullptr);
    EXPECT_NE(as.find(base + 2 * pageSize), nullptr);
}

TEST(VmaTest, RemoveSpanningMultipleVmas)
{
    AddressSpace as;
    as.insert(makeVma(base, 2 * pageSize));
    as.insert(makeVma(base + 2 * pageSize, 2 * pageSize, true));
    as.insert(makeVma(base + 4 * pageSize, 2 * pageSize));
    const auto removed = as.removeRange(
        AddrRange(base + pageSize, base + 5 * pageSize));
    // Pieces: tail of #1, all of #2, head of #3.
    ASSERT_EQ(removed.size(), 3u);
    EXPECT_EQ(removed[1].nvm, true);
    EXPECT_EQ(as.count(), 2u);
    EXPECT_EQ(as.mappedBytes(), 2 * pageSize);
}

TEST(VmaTest, RemoveUntouchedRangeIsEmpty)
{
    AddressSpace as;
    as.insert(makeVma(base, pageSize));
    const auto removed = as.removeRange(
        AddrRange::withSize(base + 10 * pageSize, pageSize));
    EXPECT_TRUE(removed.empty());
    EXPECT_EQ(as.count(), 1u);
}

TEST(VmaTest, ProtectRangeSplitsAndRetags)
{
    AddressSpace as;
    as.insert(makeVma(base, 4 * pageSize));
    as.protectRange(AddrRange::withSize(base + pageSize, pageSize),
                    cpu::protRead);
    EXPECT_EQ(as.count(), 3u);
    EXPECT_EQ(as.find(base)->prot,
              cpu::protRead | cpu::protWrite);
    EXPECT_EQ(as.find(base + pageSize)->prot, cpu::protRead);
    EXPECT_EQ(as.find(base + 2 * pageSize)->prot,
              cpu::protRead | cpu::protWrite);
}

TEST(VmaTest, MappedBytesSums)
{
    AddressSpace as;
    as.insert(makeVma(base, 4 * pageSize));
    as.insert(makeVma(base + 100 * pageSize, pageSize));
    EXPECT_EQ(as.mappedBytes(), 5 * pageSize);
}

TEST(VmaTest, EqualityAfterIdenticalOperations)
{
    AddressSpace a;
    AddressSpace b;
    for (AddressSpace *as : {&a, &b}) {
        as->insert(makeVma(base, 4 * pageSize, true));
        as->removeRange(
            AddrRange::withSize(base + pageSize, pageSize));
    }
    EXPECT_TRUE(a == b);
}

} // namespace
} // namespace kindle::os
