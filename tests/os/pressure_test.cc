/**
 * @file
 * Kernel memory-pressure behaviour: zone caps, watermark reclaim,
 * injected allocation failures with retry/backoff, ENOMEM, and the
 * OOM killer's victim policy.
 */

#include <gtest/gtest.h>

#include "kindle/microbench.hh"
#include "os/kernel.hh"
#include "os/reclaim.hh"

namespace kindle::os
{
namespace
{

constexpr Addr sleeperBase = micro::scriptBase;
constexpr Addr toucherBase = micro::scriptBase + Addr(0x2000) * pageSize;

struct Rig
{
    explicit Rig(KernelParams kp = KernelParams{})
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 256 * oneMiB;
              p.nvmBytes = 256 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          core(cpu::CoreParams{}, sim, memory, hier),
          kernel(kp, sim, memory, hier, core)
    {}

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    cpu::Core core;
    Kernel kernel;
};

KernelParams
pressured(std::uint64_t dram_frames, std::uint64_t nvm_frames,
          double fail_rate = 0.0, bool oom = true)
{
    KernelParams kp;
    // Interleave finely so the sleeper is genuinely off-core (and
    // therefore a reclaim victim) while the toucher allocates.
    kp.timeslice = 50 * oneUs;
    kp.pressure.dramZoneFrames = dram_frames;
    kp.pressure.nvmZoneFrames = nvm_frames;
    kp.pressure.allocFailRate = fail_rate;
    kp.pressure.oomEnabled = oom;
    return kp;
}

/** A big-RSS process that touches @p pages DRAM pages up front and
 *  then sits in compute long enough to outlive the toucher. */
std::unique_ptr<cpu::OpStream>
makeSleeper(unsigned pages)
{
    micro::ScriptBuilder b;
    b.mmapFixed(sleeperBase, pages * pageSize, false);
    b.touchPages(sleeperBase, pages * pageSize);
    // Many small compute ops, not one big one: preemption happens
    // between ops, and the sleeper must actually time-share with the
    // toucher to be an off-core reclaim victim.
    for (int r = 0; r < 40; ++r)
        b.compute(250000);
    b.exit();
    return b.build();
}

/** A process that maps and touches @p pages DRAM pages in rounds,
 *  driving the allocator into the zone cap. */
std::unique_ptr<cpu::OpStream>
makeToucher(unsigned pages)
{
    micro::ScriptBuilder b;
    for (unsigned done = 0; done < pages; done += 16) {
        const unsigned chunk = std::min(16u, pages - done);
        b.mmapFixed(toucherBase + Addr(done) * pageSize,
                    chunk * pageSize, false);
        b.touchPages(toucherBase + Addr(done) * pageSize,
                     chunk * pageSize);
        b.compute(100000);
    }
    b.exit();
    return b.build();
}

TEST(PressureTest, ZoneCapsAndWatermarksApply)
{
    Rig rig(pressured(64, 32));
    EXPECT_EQ(rig.kernel.dramAllocator().totalFrames(), 64u);
    EXPECT_EQ(rig.kernel.nvmAllocator().totalFrames(), 32u);
    // Derived watermarks: low = max(8, frames/16), high = 2*low.
    EXPECT_EQ(rig.kernel.dramAllocator().lowWatermark(), 8u);
    EXPECT_EQ(rig.kernel.dramAllocator().highWatermark(), 16u);
    ASSERT_NE(rig.kernel.reclaimEngine(), nullptr);
}

TEST(PressureTest, UnpressuredKernelHasNoPressureMachinery)
{
    Rig rig;
    EXPECT_EQ(rig.kernel.reclaimEngine(), nullptr);
    EXPECT_EQ(rig.kernel.dramAllocator().lowWatermark(), 0u);
    EXPECT_FALSE(
        rig.kernel.stats().hasScalar("enomemFaults"));
    EXPECT_FALSE(rig.kernel.stats().hasScalar("oomKills"));
}

TEST(PressureTest, ReclaimDemotesOffCoreColdPages)
{
    // NVM left roomy: demotion alone must absorb the overcommit.
    Rig rig(pressured(64, 0));
    rig.kernel.spawn(makeSleeper(24), "sleeper");
    rig.kernel.spawn(makeToucher(48), "toucher");
    rig.kernel.run();

    const auto &reclaim = rig.kernel.reclaimEngine()->stats();
    EXPECT_GT(reclaim.scalarValue("pagesDemoted"), 0);
    // Demoted pages land in the NVM zone even though neither process
    // ever asked for MAP_NVM.
    EXPECT_GT(
        rig.kernel.nvmAllocator().stats().scalarValue("allocs"), 0);
    // Relief was enough: nobody was killed.
    EXPECT_FALSE(rig.kernel.stats().hasScalar("oomKills"));
    EXPECT_FALSE(rig.kernel.stats().hasScalar("enomemFaults"));
}

TEST(PressureTest, OomKillsLargestRssAndSparesRequester)
{
    // NVM capped tightly: demotion stalls against the retirement
    // reserve, so relief must come from the OOM killer.
    Rig rig(pressured(64, 16));
    const Pid sleeper =
        rig.kernel.spawn(makeSleeper(32), "sleeper");
    // Sized so the combined demand needs the kill, but the survivor
    // fits once the sleeper's frames return to the pool.
    const Pid toucher =
        rig.kernel.spawn(makeToucher(48), "toucher");
    rig.kernel.run();

    EXPECT_EQ(rig.kernel.stats().scalarValue("oomKills"), 1);
    EXPECT_GE(rig.kernel.stats().scalarValue("oomPagesFreed"), 24);
    // The sleeper (largest RSS, off-core) died; the requester ran to
    // normal completion — no ENOMEM ever surfaced.
    EXPECT_EQ(rig.kernel.findProcess(sleeper)->state,
              ProcState::zombie);
    EXPECT_EQ(rig.kernel.findProcess(toucher)->state,
              ProcState::zombie);
    EXPECT_FALSE(rig.kernel.stats().hasScalar("enomemFaults"));
}

TEST(PressureTest, EnomemKillsRequesterWhenOomDisabled)
{
    Rig rig(pressured(64, 16, 0.0, /*oom=*/false));
    rig.kernel.spawn(makeSleeper(32), "sleeper");
    rig.kernel.spawn(makeToucher(72), "toucher");
    rig.kernel.run();

    // No victim search: the allocation fails with ENOMEM and the
    // faulting process is killed — the machine itself survives.
    EXPECT_FALSE(rig.kernel.stats().hasScalar("oomKills"));
    EXPECT_GE(rig.kernel.stats().scalarValue("enomemFaults"), 1);
}

TEST(PressureTest, InjectedFailuresExhaustRetriesDeterministically)
{
    // Certain failure: every attempt (initial + maxRetries) is
    // refused, so a single fault burns exactly maxRetries backoffs
    // and surfaces ENOMEM with memory to spare.
    KernelParams kp = pressured(0, 0, 1.0, /*oom=*/false);
    kp.pressure.maxRetries = 3;
    Rig rig(kp);
    micro::ScriptBuilder b;
    b.mmapFixed(toucherBase, pageSize, false);
    b.write(toucherBase);
    const Pid pid = rig.kernel.spawn(b.build(), "doomed");
    rig.kernel.run();

    EXPECT_EQ(rig.kernel.findProcess(pid)->state, ProcState::zombie);
    EXPECT_EQ(rig.kernel.stats().scalarValue("allocFailuresInjected"),
              4);
    EXPECT_EQ(rig.kernel.stats().scalarValue("allocRetries"), 3);
    EXPECT_EQ(rig.kernel.stats().scalarValue("enomemFaults"), 1);
    // Plenty of frames were free the whole time.
    EXPECT_GT(rig.kernel.dramAllocator().freeFrames(), 0u);
}

TEST(PressureTest, PinnedProcessesAreExemptFromOom)
{
    Rig rig(pressured(64, 16));
    const Pid fat = rig.kernel.spawn(makeSleeper(32), "fat");
    rig.kernel.spawn(makeSleeper(12), "lean");
    rig.kernel.setAffinity(*rig.kernel.findProcess(fat), 0);
    rig.kernel.spawn(makeToucher(72), "toucher");
    rig.kernel.run();

    // The fat process would be the natural victim, but pinning
    // exempts it: the killer falls back to the lean sleeper.
    EXPECT_GE(rig.kernel.stats().scalarValue("oomKills"), 1);
    EXPECT_LE(rig.kernel.stats().scalarValue("oomPagesFreed"), 20);
}

TEST(PressureTest, ResidentPagesTracksMapAndUnmap)
{
    Rig rig(pressured(0, 0));  // pressure off: plain accounting
    micro::ScriptBuilder b;
    b.mmapFixed(toucherBase, 8 * pageSize, false);
    b.touchPages(toucherBase, 8 * pageSize);
    b.munmap(toucherBase, 4 * pageSize);
    b.compute(1);
    const Pid pid = rig.kernel.spawn(b.build(), "counted");
    rig.kernel.run();
    EXPECT_EQ(rig.kernel.findProcess(pid)->residentPages, 0u);
}

TEST(PressureTest, ResidentPagesPeaksWhileMapped)
{
    Rig rig;
    micro::ScriptBuilder b;
    b.mmapFixed(toucherBase, 8 * pageSize, false);
    b.touchPages(toucherBase, 8 * pageSize);
    for (int r = 0; r < 100; ++r)  // hold the mapping; we stop
        b.compute(500000);         // mid-flight between ops
    b.exit();
    const Pid pid = rig.kernel.spawn(b.build(), "resident");
    rig.kernel.runUntil(rig.sim.now() + 5 * oneMs);
    EXPECT_EQ(rig.kernel.findProcess(pid)->residentPages, 8u);
}

} // namespace
} // namespace kindle::os
