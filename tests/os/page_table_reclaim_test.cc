/**
 * @file
 * Tests for page-table page reclamation (free_pgtables semantics) and
 * adoption of pre-existing table trees.
 */

#include <gtest/gtest.h>

#include "os/page_table.hh"

namespace kindle::os
{
namespace
{

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 128 * oneMiB;
              p.nvmBytes = 64 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          kmem(sim, memory, hier),
          alloc("tables", AddrRange(oneMiB, 64 * oneMiB), kmem),
          plain(kmem),
          mgr(kmem, alloc, plain)
    {}

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    KernelMem kmem;
    FrameAllocator alloc;
    PlainPtWrite plain;
    PageTableManager mgr;
};

TEST(PtReclaimTest, LastUnmapFreesTheWholeSubtree)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    const auto base = rig.alloc.allocatedFrames();
    rig.mgr.map(root, 0x10000000, 0x5000, true, false);
    EXPECT_EQ(rig.alloc.allocatedFrames() - base, 3u);
    rig.mgr.unmap(root, 0x10000000);
    // PT, PD and PDPT all became empty and were reclaimed.
    EXPECT_EQ(rig.alloc.allocatedFrames() - base, 0u);
    // The root itself survives.
    EXPECT_TRUE(rig.alloc.isAllocated(root));
}

TEST(PtReclaimTest, SharedTablesSurviveUntilLastUser)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    const auto base = rig.alloc.allocatedFrames();
    rig.mgr.map(root, 0x20000000, 0x5000, true, false);
    rig.mgr.map(root, 0x20001000, 0x6000, true, false);  // same PT
    EXPECT_EQ(rig.alloc.allocatedFrames() - base, 3u);

    rig.mgr.unmap(root, 0x20000000);
    // The sibling still holds the subtree alive.
    EXPECT_EQ(rig.alloc.allocatedFrames() - base, 3u);
    EXPECT_TRUE(rig.mgr.readLeaf(root, 0x20001000).present());

    rig.mgr.unmap(root, 0x20001000);
    EXPECT_EQ(rig.alloc.allocatedFrames() - base, 0u);
}

TEST(PtReclaimTest, PartialReclaimStopsAtSharedLevel)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    const auto base = rig.alloc.allocatedFrames();
    // Two pages sharing the PDPT but nothing below (1 GiB apart).
    rig.mgr.map(root, 0, 0x5000, true, false);
    rig.mgr.map(root, oneGiB, 0x6000, true, false);
    EXPECT_EQ(rig.alloc.allocatedFrames() - base, 5u);

    rig.mgr.unmap(root, 0);
    // Its private PD+PT go; the shared PDPT stays.
    EXPECT_EQ(rig.alloc.allocatedFrames() - base, 3u);
    EXPECT_TRUE(rig.mgr.readLeaf(root, oneGiB).present());
}

TEST(PtReclaimTest, RemapAfterReclaimRebuildsTables)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    rig.mgr.map(root, 0x30000000, 0x5000, true, true);
    rig.mgr.unmap(root, 0x30000000);
    rig.mgr.map(root, 0x30000000, 0x7000, true, true);
    const auto leaf = rig.mgr.readLeaf(root, 0x30000000);
    ASSERT_TRUE(leaf.present());
    EXPECT_EQ(leaf.frameAddr(), 0x7000u);
}

TEST(PtReclaimTest, ChurnDoesNotLeakTableFrames)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    const auto base = rig.alloc.allocatedFrames();
    for (int round = 0; round < 20; ++round) {
        for (unsigned i = 0; i < 32; ++i) {
            rig.mgr.map(root, 0x40000000 + Addr(i) * pageSize,
                        0x100000 + Addr(i) * pageSize, true, false);
        }
        for (unsigned i = 0; i < 32; ++i)
            rig.mgr.unmap(root, 0x40000000 + Addr(i) * pageSize);
        ASSERT_EQ(rig.alloc.allocatedFrames() - base, 0u) << round;
    }
}

TEST(PtReclaimTest, PresentEntriesTracksLeafCount)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    EXPECT_EQ(rig.mgr.presentEntries(root), 0u);
    rig.mgr.map(root, 0x50000000, 0x5000, true, false);
    EXPECT_EQ(rig.mgr.presentEntries(root), 1u);
    rig.mgr.map(root, 0x50000000 + oneGiB, 0x6000, true, false);
    EXPECT_EQ(rig.mgr.presentEntries(root), 1u);  // same PML4 slot
}

TEST(PtReclaimTest, AdoptRebuildsBookkeeping)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    for (unsigned i = 0; i < 10; ++i) {
        rig.mgr.map(root, 0x60000000 + Addr(i) * pageSize,
                    0x200000 + Addr(i) * pageSize, true, false);
    }

    // A second manager adopts the same tree (the persistent-scheme
    // recovery path) and must be able to unmap with reclamation.
    PlainPtWrite plain2(rig.kmem);
    PageTableManager fresh(rig.kmem, rig.alloc, plain2);
    fresh.adopt(root);
    const auto before = rig.alloc.allocatedFrames();
    for (unsigned i = 0; i < 10; ++i)
        fresh.unmap(root, 0x60000000 + Addr(i) * pageSize);
    // PT/PD/PDPT reclaimed by the adopting manager.
    EXPECT_EQ(before - rig.alloc.allocatedFrames(), 3u);
}

} // namespace
} // namespace kindle::os
