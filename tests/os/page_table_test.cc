#include <gtest/gtest.h>

#include <map>

#include "os/page_table.hh"

namespace kindle::os
{
namespace
{

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 128 * oneMiB;
              p.nvmBytes = 64 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory),
          kmem(sim, memory, hier),
          alloc("tables", AddrRange(oneMiB, 64 * oneMiB), kmem),
          plain(kmem),
          mgr(kmem, alloc, plain)
    {}

    sim::Simulation sim;
    mem::HybridMemory memory;
    cache::Hierarchy hier;
    KernelMem kmem;
    FrameAllocator alloc;
    PlainPtWrite plain;
    PageTableManager mgr;
};

TEST(PageTableTest, MapThenReadLeaf)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    rig.mgr.map(root, 0x10000000, 0x5000, true, true);
    const auto leaf = rig.mgr.readLeaf(root, 0x10000000);
    EXPECT_TRUE(leaf.present());
    EXPECT_TRUE(leaf.writable());
    EXPECT_TRUE(leaf.nvmBacked());
    EXPECT_EQ(leaf.frameAddr(), 0x5000u);
}

TEST(PageTableTest, UnmappedLeafReadsAbsent)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    EXPECT_FALSE(rig.mgr.readLeaf(root, 0x123456000).present());
}

TEST(PageTableTest, UnmapReturnsOldMapping)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    rig.mgr.map(root, 0x20000000, 0x6000, true, false);
    const auto old = rig.mgr.unmap(root, 0x20000000);
    ASSERT_TRUE(old.has_value());
    EXPECT_EQ(old->frameAddr(), 0x6000u);
    EXPECT_FALSE(rig.mgr.readLeaf(root, 0x20000000).present());
    EXPECT_FALSE(rig.mgr.unmap(root, 0x20000000).has_value());
}

TEST(PageTableTest, IntermediateTablesAllocatedOnDemand)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    const auto before = rig.alloc.allocatedFrames();
    // First page: PDPT + PD + PT (3 tables).  A second page 1 GiB
    // away shares the PDPT and adds PD + PT (2 more).
    rig.mgr.map(root, 0, 0x1000, true, false);
    rig.mgr.map(root, oneGiB, 0x2000, true, false);
    EXPECT_EQ(rig.alloc.allocatedFrames() - before, 5u);
    // Two pages in the same 2 MiB region share everything.
    rig.mgr.map(root, pageSize, 0x3000, true, false);
    EXPECT_EQ(rig.alloc.allocatedFrames() - before, 5u);
}

TEST(PageTableTest, StridePatternsTouchDifferentLevels)
{
    // The Figure 4b mechanism: larger strides force more table pages.
    auto tables_for_stride = [](std::uint64_t stride) {
        Rig rig;
        const Addr root = rig.mgr.newRoot();
        const auto before = rig.alloc.allocatedFrames();
        for (unsigned i = 0; i < 10; ++i)
            rig.mgr.map(root, Addr(i) * stride, 0x1000, true, true);
        return rig.alloc.allocatedFrames() - before;
    };
    const auto t4k = tables_for_stride(4 * oneKiB);
    const auto t2m = tables_for_stride(2 * oneMiB);
    const auto t1g = tables_for_stride(oneGiB);
    EXPECT_LT(t4k, t2m);
    EXPECT_LT(t2m, t1g);
}

TEST(PageTableTest, ForEachLeafVisitsAllMappings)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    std::map<Addr, Addr> expect;
    for (unsigned i = 0; i < 100; ++i) {
        const Addr va = 0x40000000 + Addr(i) * pageSize;
        const Addr fa = 0x100000 + Addr(i) * pageSize;
        rig.mgr.map(root, va, fa, true, i % 2 == 0);
        expect[va] = fa;
    }
    std::map<Addr, Addr> seen;
    rig.mgr.forEachLeaf(root, [&](Addr va, cpu::Pte pte, Addr) {
        seen[va] = pte.frameAddr();
    });
    EXPECT_EQ(seen, expect);
}

TEST(PageTableTest, WriteLeafUpdatesInPlace)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    rig.mgr.map(root, 0x50000000, 0x7000, true, true);
    auto leaf = rig.mgr.readLeaf(root, 0x50000000);
    leaf.setAccessCount(42);
    leaf.setHsccRemapped(true);
    rig.mgr.writeLeaf(root, 0x50000000, leaf);
    const auto back = rig.mgr.readLeaf(root, 0x50000000);
    EXPECT_EQ(back.accessCount(), 42u);
    EXPECT_TRUE(back.hsccRemapped());
}

TEST(PageTableTest, TeardownFreesEveryTableFrame)
{
    Rig rig;
    const auto base = rig.alloc.allocatedFrames();
    const Addr root = rig.mgr.newRoot();
    for (unsigned i = 0; i < 50; ++i)
        rig.mgr.map(root, Addr(i) * 4 * oneMiB, 0x1000, true, false);
    EXPECT_GT(rig.alloc.allocatedFrames(), base);
    rig.mgr.teardown(root);
    EXPECT_EQ(rig.alloc.allocatedFrames(), base);
}

TEST(PageTableTest, EntryWritesCharged)
{
    Rig rig;
    const Addr root = rig.mgr.newRoot();
    const auto w0 = rig.mgr.entryWrites();
    rig.mgr.map(root, 0x60000000, 0x8000, true, false);
    // First map in an empty root: 3 intermediate + 1 leaf.
    EXPECT_EQ(rig.mgr.entryWrites() - w0, 4u);
}

TEST(PageTableTest, ConsistentPolicyInvokedPerStore)
{
    struct CountingPolicy : PtWritePolicy
    {
        explicit CountingPolicy(KernelMem &kmem) : inner(kmem) {}
        void
        writeEntry(Addr a, std::uint64_t v) override
        {
            ++count;
            inner.writeEntry(a, v);
        }
        PlainPtWrite inner;
        int count = 0;
    };

    Rig rig;
    CountingPolicy policy(rig.kmem);
    PageTableManager mgr(rig.kmem, rig.alloc, policy);
    const Addr root = mgr.newRoot();
    mgr.map(root, 0x70000000, 0x9000, true, false);
    EXPECT_EQ(policy.count, 4);
    // Unmapping the only page clears the leaf and unlinks the three
    // now-empty tables from their parents: four wrapped stores.
    mgr.unmap(root, 0x70000000);
    EXPECT_EQ(policy.count, 8);
}

} // namespace
} // namespace kindle::os
