/**
 * @file
 * Tests of the tracing substrate: span capture and nesting, category
 * masking, sink routing, the flight-recorder ring, Chrome-JSON export
 * shape, and the checkpoint-decomposition guarantee on a live system.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/json.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "persist/checkpoint.hh"
#include "trace/trace.hh"

namespace kindle::trace
{
namespace
{

TraceParams
paramsFor(bool spans, std::size_t ring, std::string categories = {})
{
    TraceParams p;
    p.spans = spans;
    p.ringDepth = ring;
    p.categories = std::move(categories);
    return p;
}

TEST(TraceTest, SpanCapturesStartDurationAndIdentity)
{
    Tick clock = 1000;
    TraceSink sink(paramsFor(true, 0), [&clock] { return clock; });
    SinkScope scope(&sink);
    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "t.span");
        clock += 250;
    }
    ASSERT_EQ(sink.records().size(), 1u);
    const TraceRecord &rec = sink.records()[0];
    EXPECT_EQ(rec.start, 1000u);
    EXPECT_EQ(rec.dur, 250u);
    EXPECT_STREQ(rec.name, "t.span");
    EXPECT_EQ(rec.cat, Flag::checkpoint);
    EXPECT_EQ(rec.lane, Lane::ckpt);
    EXPECT_FALSE(rec.instant);
}

TEST(TraceTest, NestedSpansCompleteInnerFirstButExportOuterFirst)
{
    Tick clock = 0;
    TraceSink sink(paramsFor(true, 0), [&clock] { return clock; });
    SinkScope scope(&sink);
    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "outer");
        clock += 10;
        {
            KINDLE_TRACE_SPAN(checkpoint, ckpt, "inner");
            clock += 30;
        }
        clock += 60;
    }

    // Capture order is completion order: the inner RAII span destructs
    // first.
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_STREQ(sink.records()[0].name, "inner");
    EXPECT_STREQ(sink.records()[1].name, "outer");
    EXPECT_LT(sink.records()[1].start, sink.records()[0].start);
    EXPECT_GT(sink.records()[1].dur, sink.records()[0].dur);

    // The Chrome export re-sorts so the parent precedes the child
    // (start ascending, duration descending on ties) — required for
    // Perfetto to nest them on one track.
    std::ostringstream os;
    sink.writeChromeJson(os);
    const auto doc = json::parse(os.str());
    ASSERT_TRUE(doc.has_value());
    std::vector<std::string> x_names;
    for (const auto &ev : doc->find("traceEvents")->items()) {
        if (ev.find("ph")->asString() == "X")
            x_names.push_back(ev.find("name")->asString());
    }
    const std::vector<std::string> expected = {"outer", "inner"};
    EXPECT_EQ(x_names, expected);
}

TEST(TraceTest, CategoryMaskRejectsUnlistedFlags)
{
    Tick clock = 0;
    TraceSink sink(paramsFor(true, 0, "redo,fault"),
                   [&clock] { return clock; });
    SinkScope scope(&sink);
    EXPECT_TRUE(sink.wants(Flag::redo));
    EXPECT_TRUE(sink.wants(Flag::fault));
    EXPECT_FALSE(sink.wants(Flag::checkpoint));

    KINDLE_TRACE_INSTANT(checkpoint, ckpt, "masked.out");
    KINDLE_TRACE_INSTANT(redo, redo, "kept");
    ASSERT_EQ(sink.records().size(), 1u);
    EXPECT_STREQ(sink.records()[0].name, "kept");

    // Re-masking at runtime widens capture again; empty = all.
    sink.setCategories("");
    EXPECT_TRUE(sink.wants(Flag::checkpoint));
}

TEST(TraceTest, MaskedSpanSkipsArgumentFormatting)
{
    Tick clock = 0;
    TraceSink sink(paramsFor(true, 0, "redo"),
                   [&clock] { return clock; });
    SinkScope scope(&sink);
    bool evaluated = false;
    auto touch = [&evaluated] {
        evaluated = true;
        return 42;
    };
    {
        KINDLE_TRACE_SPAN_ARGS(checkpoint, ckpt, "masked",
                               "v={}", touch());
    }
    EXPECT_FALSE(evaluated);
    EXPECT_TRUE(sink.records().empty());
}

TEST(TraceTest, NoSinkAndNullScopeAreInert)
{
    // Bare probe with no registration: must not crash, must be
    // inactive.
    TraceSpan orphan(Flag::checkpoint, Lane::ckpt, "orphan");
    EXPECT_FALSE(orphan.active());

    // A null registration shadows an outer sink — a sink-less system
    // must not leak records into an older system's sink.
    Tick clock = 0;
    TraceSink sink(paramsFor(true, 0), [&clock] { return clock; });
    SinkScope outer(&sink);
    {
        SinkScope inner(nullptr);
        EXPECT_EQ(currentSink(), nullptr);
        KINDLE_TRACE_INSTANT(checkpoint, ckpt, "shadowed");
    }
    EXPECT_EQ(currentSink(), &sink);
    EXPECT_TRUE(sink.records().empty());
}

TEST(TraceTest, RingKeepsLastNRecordsOldestFirst)
{
    Tick clock = 0;
    TraceSink sink(paramsFor(false, 4), [&clock] { return clock; });
    SinkScope scope(&sink);
    for (int i = 0; i < 10; ++i) {
        clock = 100 * (i + 1);
        KINDLE_TRACE_INSTANT(fault, fault, "probe");
    }

    // Span collection is off: nothing accumulates unbounded.
    EXPECT_TRUE(sink.records().empty());
    EXPECT_EQ(sink.totalRecorded(), 10u);
    ASSERT_EQ(sink.ringSize(), 4u);
    // Oldest-first across the wraparound seam: ticks 700..1000.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(sink.ringAt(i).start, 700 + 100 * i);
        EXPECT_EQ(sink.ringAt(i).seq, 6 + i);
    }
}

TEST(TraceTest, RingShallowerThanTrafficStillChronological)
{
    Tick clock = 0;
    TraceSink sink(paramsFor(false, 3), [&clock] { return clock; });
    SinkScope scope(&sink);
    // Mixed spans and instants, enough to wrap several times.
    for (int i = 0; i < 17; ++i) {
        {
            KINDLE_TRACE_SPAN(checkpoint, ckpt, "w");
            clock += 5;
        }
        KINDLE_TRACE_INSTANT(redo, redo, "i");
    }
    EXPECT_EQ(sink.totalRecorded(), 34u);
    ASSERT_EQ(sink.ringSize(), 3u);
    for (std::size_t i = 1; i < sink.ringSize(); ++i) {
        EXPECT_GE(sink.ringAt(i).start, sink.ringAt(i - 1).start);
        EXPECT_GT(sink.ringAt(i).seq, sink.ringAt(i - 1).seq);
    }
}

TEST(TraceTest, FlightDumpIsSelfContainedJson)
{
    Tick clock = 0;
    TraceSink sink(paramsFor(false, 4), [&clock] { return clock; });
    SinkScope scope(&sink);
    for (int i = 0; i < 10; ++i) {
        clock += 50;
        KINDLE_TRACE_INSTANT(fault, fault, "breadcrumb");
    }

    FlightContext ctx;
    ctx.reason = "oracle-divergence";
    ctx.crashSite = "ckpt.after_commit";
    ctx.tick = clock;
    ctx.faultPlan = "power-loss @ ckpt.after_commit hit=3";
    std::ostringstream os;
    sink.writeFlightRecorder(os, ctx);

    const auto doc = json::parse(os.str());
    ASSERT_TRUE(doc.has_value()) << os.str();
    EXPECT_EQ(doc->find("reason")->asString(), "oracle-divergence");
    EXPECT_EQ(doc->find("crashSite")->asString(),
              "ckpt.after_commit");
    EXPECT_EQ(doc->find("faultPlan")->asString(),
              "power-loss @ ckpt.after_commit hit=3");
    EXPECT_EQ(doc->find("ringDepth")->asNumber(), 4);
    EXPECT_EQ(doc->find("totalRecorded")->asNumber(), 10);
    EXPECT_EQ(doc->find("dropped")->asNumber(), 6);
    const auto &records = doc->find("records")->items();
    ASSERT_EQ(records.size(), 4u);
    double prev = -1;
    for (const auto &rec : records) {
        EXPECT_EQ(rec.find("name")->asString(), "breadcrumb");
        EXPECT_EQ(rec.find("lane")->asString(), "fault");
        EXPECT_EQ(rec.find("cat")->asString(), "fault");
        const double tick = rec.find("tick")->asNumber();
        EXPECT_GT(tick, prev);
        prev = tick;
    }
}

/** Small checkpointing system used by the export-shape tests. */
KindleConfig
tracedConfig()
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 512 * oneMiB;
    cfg.persistence =
        persist::PersistParams{persist::PtScheme::rebuild, oneMs};
    cfg.trace.spans = true;
    return cfg;
}

std::unique_ptr<cpu::OpStream>
touchScript()
{
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 64 * pageSize, /*nvm=*/true);
    b.touchPages(micro::scriptBase, 64 * pageSize);
    for (int i = 0; i < 20; ++i)
        b.compute(1000000);  // ~0.3 ms each: crosses ckpt intervals
    b.munmap(micro::scriptBase, 64 * pageSize);
    b.exit();
    return b.build();
}

TEST(TraceTest, ChromeExportParsesAndIsChronological)
{
    KindleSystem sys(tracedConfig());
    sys.run(touchScript(), "trace-golden");

    std::ostringstream os;
    sys.writeTrace(os);
    std::string err;
    const auto doc = json::parse(os.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_EQ(doc->find("displayTimeUnit")->asString(), "ns");

    const auto *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool saw_process_name = false;
    std::size_t thread_names = 0;
    std::size_t complete = 0;
    double prev_ts = -1;
    for (const auto &ev : events->items()) {
        const std::string ph = ev.find("ph")->asString();
        if (ph == "M") {
            const std::string what = ev.find("name")->asString();
            saw_process_name |= what == "process_name";
            thread_names += what == "thread_name";
            continue;
        }
        // Payload events are strictly ordered for stream consumers:
        // ts never decreases after the metadata preamble.
        const double ts = ev.find("ts")->asNumber();
        EXPECT_GE(ts, prev_ts);
        prev_ts = ts;
        if (ph == "X") {
            ++complete;
            EXPECT_GE(ev.find("dur")->asNumber(), 0);
        }
    }
    EXPECT_TRUE(saw_process_name);
    EXPECT_GE(thread_names, 2u);  // at least ckpt + one more lane
    EXPECT_GT(complete, 0u);
}

TEST(TraceTest, CheckpointSpansDecomposeCkptTicks)
{
    KindleSystem sys(tracedConfig());
    sys.run(touchScript(), "trace-decompose");
    ASSERT_NE(sys.persistence(), nullptr);
    ASSERT_GT(sys.persistence()->checkpointsTaken(), 0u);

    // Sum of the top-level "ckpt" span durations must account for the
    // ticks the stat system attributes to checkpointing: the trace
    // explains the stats, bit for bit.
    double span_ticks = 0;
    for (const TraceRecord &rec : sys.traceSink().records()) {
        if (!rec.instant && std::strcmp(rec.name, "ckpt") == 0)
            span_ticks += static_cast<double>(rec.dur);
    }
    const double stat_ticks =
        sys.persistence()->stats().distribution("ckptTicks").sum();
    ASSERT_GT(stat_ticks, 0);
    EXPECT_GE(span_ticks, 0.95 * stat_ticks);
    EXPECT_DOUBLE_EQ(span_ticks, stat_ticks);
}

TEST(TraceTest, SystemFlightDumpNamesTheCrashSite)
{
    // Ring-only system (default): force a dump through the system
    // API and check it carries the context a post-mortem needs.
    KindleConfig cfg = tracedConfig();
    cfg.trace.spans = false;
    KindleSystem sys(cfg);
    sys.run(touchScript(), "flight");

    std::ostringstream os;
    sys.dumpFlightRecorder(os, "unit-test");
    const auto doc = json::parse(os.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("reason")->asString(), "unit-test");
    EXPECT_EQ(doc->find("ringDepth")->asNumber(), 512);
    EXPECT_GT(doc->find("records")->items().size(), 0u);
}

} // namespace
} // namespace kindle::trace
