/**
 * @file
 * Fleet workload generator tests: the seeded-randomness helpers it is
 * built from, the determinism of tenant identity derivation, and the
 * end-to-end contracts the bench relies on — a churning multi-core
 * fleet is a pure function of its seed, and a pressure-squeezed fleet
 * drives reclaim and the OOM killer while still draining to zero.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include "base/rand.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "fleet/fleet.hh"
#include "kindle/kindle.hh"
#include "runner/fleet_scenario.hh"

namespace kindle
{
namespace
{

TEST(RandTest, DeriveSeedIsStableAndDecorrelated)
{
    // Same inputs, same seed — tenant identity depends on this.
    EXPECT_EQ(rand::deriveSeed(42, 7), rand::deriveSeed(42, 7));
    // Adjacent streams must land on distinct states (the `base + i`
    // anti-pattern this helper replaces would correlate them).
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 256; ++i)
        seen.insert(rand::deriveSeed(42, i));
    EXPECT_EQ(seen.size(), 256u);
    // And a different master seed moves every stream.
    EXPECT_NE(rand::deriveSeed(42, 7), rand::deriveSeed(43, 7));
}

TEST(RandTest, ExpIntervalIsPositiveWithRequestedMean)
{
    Random rng(1234);
    const double mean = 20000.0;
    double sum = 0.0;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i) {
        const double v = rand::expInterval(rng, mean);
        ASSERT_GT(v, 0.0);
        sum += v;
    }
    const double sample_mean = sum / draws;
    EXPECT_NEAR(sample_mean, mean, mean * 0.05);
}

TEST(RandTest, WeightedPickerTracksWeights)
{
    Random rng(99);
    const rand::WeightedPicker picker({0.8, 0.15, 0.05});
    ASSERT_EQ(picker.size(), 3u);
    std::array<int, 3> hits{};
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
        const std::size_t c = picker.pick(rng);
        ASSERT_LT(c, 3u);
        ++hits[c];
    }
    // All classes occur, in weight order, with the heavy class near
    // its nominal share.
    EXPECT_GT(hits[2], 0);
    EXPECT_GT(hits[0], hits[1]);
    EXPECT_GT(hits[1], hits[2]);
    EXPECT_NEAR(hits[0] / double(draws), 0.8, 0.03);
}

TEST(FleetTest, ZipfianKeysAreSkewedDeterministicInRange)
{
    const std::uint64_t n = 64;
    ZipfianGenerator keys(n, 0.99, 7);
    std::vector<std::uint64_t> counts(n, 0);
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t k = keys.next();
        ASSERT_LT(k, n);
        ++counts[k];
    }
    // YCSB theta=0.99: the most popular key takes far more than the
    // uniform share.
    const std::uint64_t top =
        *std::max_element(counts.begin(), counts.end());
    EXPECT_GT(top, 4u * (draws / n));

    // Same seed → same stream; different seed → different stream.
    ZipfianGenerator a(n, 0.99, 7), b(n, 0.99, 7), c(n, 0.99, 8);
    bool differs = false;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        differs |= (va != c.next());
    }
    EXPECT_TRUE(differs);
}

TEST(FleetTest, TenantSpecsAreDeterministicWithSkewedMix)
{
    fleet::FleetParams params;  // defaults: 0.80/0.15/0.05 weights
    std::uint64_t small = 0, medium = 0, large = 0;
    for (unsigned i = 0; i < 400; ++i) {
        const fleet::TenantSpec spec = fleet::makeTenantSpec(params, i);
        const fleet::TenantSpec again =
            fleet::makeTenantSpec(params, i);
        EXPECT_EQ(spec.id, i);
        EXPECT_EQ(spec.seed, again.seed);
        EXPECT_EQ(spec.heapPages, again.heapPages);
        if (spec.heapPages == params.smallPages)
            ++small;
        else if (spec.heapPages == params.mediumPages)
            ++medium;
        else if (spec.heapPages == params.largePages)
            ++large;
        else
            FAIL() << "tenant " << i << " drew unknown size class "
                   << spec.heapPages;
    }
    // The long-tailed fleet mix: mostly small, some medium, a few
    // hundred-MiB-class heavies — and every class represented.
    EXPECT_GT(small, medium);
    EXPECT_GT(medium, large);
    EXPECT_GT(large, 0u);
}

/** Drive one fleet scenario on a fresh system; return all stats. */
statistics::StatSnapshot
runFleet(const runner::FleetOptions &opts, unsigned cores)
{
    runner::Scenario sc =
        runner::makeFleetScenario("t", {}, opts, cores);
    KindleSystem sys(sc.config);
    statistics::StatSnapshot extra;
    sc.drive(sys, extra);
    auto snap = sys.snapshotStats();
    for (const auto &[path, value] : extra.entries())
        snap.set(path, value);
    return snap;
}

TEST(FleetTest, ChurningFleetIsDeterministic)
{
    // Spawns interleaved with exits across two cores' scheduler
    // epochs must still be a pure function of the seed: two runs,
    // byte-identical snapshots.
    runner::FleetOptions opts;
    opts.params.tenants = 24;
    opts.params.churnSpawns = 8;
    opts.params.requestsPerTenant = 6;
    const auto s1 = runFleet(opts, 2);
    const auto s2 = runFleet(opts, 2);
    EXPECT_TRUE(s1 == s2);
    EXPECT_EQ(s1.get("fleet.spawned"), 32.0);
    EXPECT_GT(s1.get("fleet.requests"), 0.0);

    // A different seed must actually change behaviour somewhere.
    runner::FleetOptions other = opts;
    other.params.seed = opts.params.seed + 1;
    const auto s3 = runFleet(other, 2);
    EXPECT_FALSE(s1 == s3);
}

TEST(FleetTest, BurstyArrivalsDifferFromPoisson)
{
    runner::FleetOptions opts;
    opts.params.tenants = 12;
    opts.params.requestsPerTenant = 6;
    opts.pressure = false;
    const auto poisson = runFleet(opts, 1);
    opts.params.arrival = fleet::Arrival::bursty;
    const auto bursty = runFleet(opts, 1);
    // Same request budget either way, different timing everywhere.
    EXPECT_EQ(poisson.get("fleet.requests"),
              bursty.get("fleet.requests"));
    EXPECT_FALSE(poisson == bursty);
}

TEST(FleetTest, PressuredFleetDrivesReclaimAndOomAcrossManySlots)
{
    // 80 tenants exceeds one 64-bit slot word in the kernel's process
    // tables, and the tightened zones force the full pressure chain:
    // NVM degradation, reclaim demotions and OOM kills — whose
    // victims churn replaces.  The fleet must still drain to zero.
    runner::FleetOptions opts;
    opts.params.tenants = 80;
    opts.params.churnSpawns = 20;
    runner::Scenario sc =
        runner::makeFleetScenario("t", {}, opts, 4);
    ASSERT_TRUE(sc.config.pressure.has_value());
    // The default floors (1024 DRAM / 512 NVM frames) are roomy at
    // this scale; shrink to the per-tenant ratios the 1k-tenant bench
    // runs at so the squeeze actually bites.
    sc.config.pressure->dramZoneFrames = opts.params.tenants * 5;
    sc.config.pressure->nvmZoneFrames = opts.params.tenants * 6;

    KindleSystem sys(sc.config);
    statistics::StatSnapshot extra;
    sc.drive(sys, extra);
    auto snap = sys.snapshotStats();
    for (const auto &[path, value] : extra.entries())
        snap.set(path, value);

    EXPECT_EQ(sys.kernel().liveProcessCount(), 0u);
    EXPECT_EQ(snap.get("fleet.spawned"), 100.0);
    EXPECT_GT(snap.getOr("kernel.nvmDegradedAllocs", 0), 0.0);
    EXPECT_GT(snap.getOr("kernel.reclaim.pagesDemoted", 0), 0.0);
    EXPECT_GT(snap.getOr("kernel.oomKills", 0), 0.0);
    // Checkpoint storms ran, and the clean-skip kept sweep cost
    // proportional to the tenants that actually progressed.
    EXPECT_GT(snap.getOr("persist.checkpoints", 0), 0.0);
    EXPECT_GT(snap.getOr("persist.cleanSkips", 0), 0.0);
}

} // namespace
} // namespace kindle
