/**
 * @file
 * The full Kindle preparation→simulation pipeline from Figure 3:
 *
 *   1. "trace" an application (here: the Gapbs_pr generator standing
 *      in for the Pin-instrumented binary),
 *   2. run the image generator to pack layout + tuples into a disk
 *      image,
 *   3. mount the image on the simulation side, instantiate the replay
 *      template, and run it on the full system with process
 *      persistence enabled.
 */

#include <cstdio>

#include "kindle/kindle.hh"
#include "prep/image_file.hh"
#include "prep/replay.hh"
#include "prep/workloads.hh"

int
main()
{
    using namespace kindle;

    const std::uint64_t ops = prep::opsFromEnv(100000);
    const std::string image_path = "/tmp/kindle_gapbs_pr.img";

    // --- Preparation component --------------------------------------
    prep::WorkloadParams wp;
    wp.ops = ops;
    wp.scaleDown = 8;
    auto traced = prep::makeWorkload(prep::Benchmark::gapbsPr, wp);

    std::printf("preparation: traced %llu memory ops of %s\n",
                (unsigned long long)ops, traced->name().c_str());
    std::printf("  captured layout (maps + SniP stacks):\n");
    for (const auto &area : traced->layout().areas) {
        std::printf("    area %-2u %-10s %8s  (%s)\n", area.areaId,
                    area.name.c_str(),
                    sizeToString(area.sizeBytes).c_str(),
                    area.kind == prep::AreaKind::stack ? "stack"
                                                       : "heap");
    }

    prep::ImageFile::write(image_path, *traced);
    std::printf("  image generator wrote %s\n", image_path.c_str());

    // --- Simulation component ---------------------------------------
    prep::TraceImage image = prep::ImageFile::read(image_path);
    const prep::TraceStats stats = image.stats();
    std::printf("simulation: mounted image with %llu records "
                "(%.0f%% read / %.0f%% write)\n",
                (unsigned long long)stats.totalOps, stats.readPct(),
                stats.writePct());

    KindleConfig cfg;
    // 1 ms checkpoints so the short default replay still shows
    // persistence activity (the paper's 10 ms exceeds this run).
    cfg.persistence = persist::PersistParams{
        persist::PtScheme::rebuild, oneMs};
    KindleSystem sys(cfg);

    prep::ReplayConfig rc;
    rc.heapsInNvm = true;
    auto program = std::make_unique<prep::ReplayStream>(image, rc);

    const Tick elapsed = sys.run(std::move(program), image.name());
    std::printf("  replayed in %.3f ms simulated time\n",
                ticksToMs(elapsed));
    std::printf("  checkpoints during the run: %llu\n",
                (unsigned long long)
                    sys.persistence()->checkpointsTaken());
    const double nvm_mib = sys.memory()
                               .nvmCtrl()
                               .device()
                               .stats()
                               .scalarValue("bytes") /
                           static_cast<double>(oneMiB);
    std::printf("  NVM device traffic: %.1f MiB\n", nvm_mib);

    std::remove(image_path.c_str());
    return 0;
}
