/**
 * @file
 * Failure-atomic sections with SSP: a program updates NVM-resident
 * structures inside checkpoint_start/checkpoint_end markers while the
 * SSP engine tracks written cache lines in shadow pages, commits at
 * every consistency interval, and consolidates page pairs in the
 * background — the §III-B prototype as an application would use it.
 */

#include <cstdio>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

int
main()
{
    using namespace kindle;

    KindleConfig cfg;
    ssp::SspParams sp;
    sp.consistencyInterval = 5 * oneMs;
    sp.consolidationInterval = oneMs;
    cfg.ssp = sp;
    // A small TLB makes entry evictions — and therefore background
    // page consolidation — visible at example scale.
    cfg.core.tlb.l1Entries = 16;
    cfg.core.tlb.l2Entries = 96;
    KindleSystem sys(cfg);

    const Addr table_va = micro::scriptBase;
    // More pages than the TLB holds, so evictions spill bitmaps to
    // the SSP cache and the consolidation thread has pairs to merge.
    const unsigned pages = 4096;

    micro::ScriptBuilder b;
    b.mmapFixed(table_va, pages * pageSize, /*nvm=*/true);
    b.touchPages(table_va, pages * pageSize);
    // Transactionally update scattered lines for a while.
    b.faseStart();
    for (unsigned txn = 0; txn < 600; ++txn) {
        for (unsigned w = 0; w < 8; ++w) {
            const Addr line = table_va +
                              ((txn * 13 + w * 7) % pages) *
                                  pageSize +
                              ((txn + w) % 64) * 64;
            b.write(line, 8);
        }
        b.compute(200000);
    }
    b.faseEnd();
    b.munmap(table_va, pages * pageSize);
    b.exit();

    const Tick elapsed = sys.run(b.build(), "fase-txn");

    const auto &st = sys.sspEngine()->stats();
    std::printf("FASE transactions under SSP (interval %.0f ms)\n",
                ticksToMs(sp.consistencyInterval));
    std::printf("  executed in %.3f ms simulated\n",
                ticksToMs(elapsed));
    std::printf("  shadow pages allocated: %llu (one per tracked "
                "page)\n",
                (unsigned long long)
                    sys.sspEngine()->shadowPagesAllocated());
    std::printf("  interval commits: %.0f, data lines clwb'd: %.0f\n",
                st.scalarValue("intervalCommits"),
                st.scalarValue("linesFlushed"));
    std::printf("  TLB bitmap spills: %.0f\n",
                st.scalarValue("bitmapSpills"));
    std::printf("  consolidation passes: %.0f, page pairs merged: "
                "%.0f\n",
                st.scalarValue("consolidations"),
                st.scalarValue("pagesConsolidated"));
    std::printf("  time in commits: %.3f ms, in consolidation: %.3f "
                "ms\n",
                ticksToMs(Tick(st.scalarValue("commitTicks"))),
                ticksToMs(Tick(st.scalarValue("consolidateTicks"))));
    return 0;
}
