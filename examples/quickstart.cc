/**
 * @file
 * Quickstart: the paper's Listing 1 on Kindle.
 *
 * Builds the default hybrid-memory machine (3 GiB DRAM + 2 GiB PCM),
 * runs a program that mmaps one page in NVM (MAP_NVM) and one in
 * DRAM, stores to both, unmaps, and exits — then prints where the
 * frames came from and what the accesses cost.
 *
 *   int main() {
 *       char* p1 = mmap(NULL, 4096, PROT_WRITE, MAP_NVM); // NVM
 *       char* p2 = mmap(NULL, 4096, PROT_WRITE, 0);       // DRAM
 *       p1[0] = 'A';
 *       p2[0] = 'B';
 *       // munmap both
 *   }
 */

#include <cstdio>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

int
main()
{
    using namespace kindle;

    KindleConfig cfg;  // paper Table I defaults
    KindleSystem sys(cfg);

    const Addr nvm_va = micro::scriptBase;
    const Addr dram_va = micro::scriptBase + oneGiB;

    micro::ScriptBuilder program;
    program.mmapFixed(nvm_va, pageSize, /*nvm=*/true);   // MAP_NVM
    program.mmapFixed(dram_va, pageSize, /*nvm=*/false);
    program.write(nvm_va, 1);   // p1[0] = 'A'
    program.write(dram_va, 1);  // p2[0] = 'B'
    program.munmap(nvm_va, pageSize);
    program.munmap(dram_va, pageSize);
    program.exit();

    const Tick elapsed = sys.run(program.build(), "listing1");

    std::printf("Kindle quickstart (Listing 1)\n");
    std::printf("  machine: %s DRAM + %s NVM, flat address space\n",
                sizeToString(cfg.memory.dramBytes).c_str(),
                sizeToString(cfg.memory.nvmBytes).c_str());
    std::printf("  e820: NVM advertised at [%llu, %llu)\n",
                (unsigned long long)sys.memory().nvmRange().start(),
                (unsigned long long)sys.memory().nvmRange().end());
    std::printf("  executed in %.3f us of simulated time\n",
                ticksToUs(elapsed));
    std::printf("  NVM frames allocated: %.0f, DRAM frames: %.0f\n",
                sys.kernel().nvmAllocator().stats().scalarValue(
                    "allocs"),
                sys.kernel().dramAllocator().stats().scalarValue(
                    "allocs"));
    std::printf("  page faults serviced: %.0f, syscalls: %.0f\n",
                sys.kernel().stats().scalarValue("pageFaults"),
                sys.kernel().stats().scalarValue("syscalls"));
    return 0;
}
