/**
 * @file
 * Process persistence end to end: a "service" process maps NVM state,
 * makes progress, gets checkpointed — and then the machine loses
 * power.  After reboot, Kindle's recovery procedure reconstructs the
 * process from the saved state in NVM: same registers, same address
 * space, same virtual→physical NVM mappings, ready to resume.
 *
 * Run it twice mentally: everything after crash() would be lost on a
 * DRAM-only machine.
 */

#include <cstdio>

#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

int
main()
{
    using namespace kindle;

    KindleConfig cfg;
    cfg.persistence = persist::PersistParams{
        persist::PtScheme::rebuild, 10 * oneMs};
    KindleSystem sys(cfg);

    // A long-lived "service": maps 1 MiB of NVM state and keeps
    // updating it.
    const Addr state_va = micro::scriptBase;
    micro::ScriptBuilder b;
    b.mmapFixed(state_va, oneMiB, /*nvm=*/true);
    b.touchPages(state_va, oneMiB);
    for (int round = 0; round < 400; ++round) {
        b.write(state_va + (round % 256) * pageSize);
        b.compute(500000);
    }
    b.exit();
    sys.kernel().spawn(b.build(), "counter-service");

    // Let it run long enough for several periodic checkpoints...
    sys.kernel().runUntil(sys.now() + 40 * oneMs);
    const auto checkpoints = sys.persistence()->checkpointsTaken();
    os::Process *proc = sys.kernel().processes().front().get();
    const auto rip_before = proc->context.rip;
    const auto mapped_before = proc->aspace.mappedBytes();
    std::printf("before crash: %llu checkpoints taken, process at "
                "rip=%llu with %s mapped\n",
                (unsigned long long)checkpoints,
                (unsigned long long)rip_before,
                sizeToString(mapped_before).c_str());

    // ... and pull the plug.
    sys.crash();
    std::printf("power failure! caches, TLBs, DRAM and the OS are "
                "gone; NVM survives\n");

    const persist::RecoveryReport report = sys.reboot();
    std::printf("reboot: recovered %u process(es) in %.3f ms of "
                "simulated time; %llu NVM mappings rebuilt, %llu "
                "leaked frames reclaimed\n",
                report.processesRecovered,
                ticksToMs(report.recoveryTicks),
                (unsigned long long)report.mappingsRestored,
                (unsigned long long)report.framesReclaimed);

    os::Process *back = sys.kernel().processes().front().get();
    std::printf("recovered process: rip=%llu (consistent copy), %s "
                "mapped, restored=%s\n",
                (unsigned long long)back->context.rip,
                sizeToString(back->aspace.mappedBytes()).c_str(),
                back->restored ? "yes" : "no");

    // Resume execution on the recovered address space.
    micro::ScriptBuilder resume;
    resume.readPages(state_va, oneMiB);
    resume.exit();
    back->program = resume.build();
    sys.kernel().makeReady(*back);
    sys.runAll();
    std::printf("recovered process resumed and re-read its state "
                "without a single page fault re-allocation: %s\n",
                back->state == os::ProcState::zombie ? "done"
                                                     : "still going");
    return 0;
}
