/**
 * @file
 * Capacity-tier scenario: a skewed key-value workload (the Ycsb_mem
 * generator) whose data lives in the big NVM tier, with HSCC using a
 * small DRAM pool as a hardware/software-cooperative cache.  Shows
 * hot pages migrating to DRAM and what the OS side of that costs.
 */

#include <cstdio>

#include "kindle/kindle.hh"
#include "prep/replay.hh"
#include "prep/workloads.hh"

int
main()
{
    using namespace kindle;

    const std::uint64_t ops = prep::opsFromEnv(100000);

    KindleConfig cfg;
    hscc::HsccParams hp;
    hp.fetchThreshold = 5;
    hp.dramPoolPages = 512;  // the paper's pool size
    // The default-length example run is much shorter than the paper's
    // 31.25 ms interval; migrate every 2 ms so the cooperative cache
    // is visibly exercised (raise KINDLE_OPS for paper pacing).
    hp.migrationInterval = 2 * oneMs;
    cfg.hscc = hp;
    KindleSystem sys(cfg);

    prep::WorkloadParams wp;
    wp.ops = ops;
    wp.scaleDown = 8;
    auto trace = prep::makeWorkload(prep::Benchmark::ycsbMem, wp);

    prep::ReplayConfig rc;
    rc.heapsInNvm = true;  // records live in the capacity tier
    auto program = std::make_unique<prep::ReplayStream>(*trace, rc);

    std::printf("hybrid tiering: %llu YCSB ops over %s of NVM-resident "
                "records, %u-page DRAM cache pool\n",
                (unsigned long long)ops,
                sizeToString(trace->layout().totalBytes()).c_str(),
                hp.dramPoolPages);

    const Tick elapsed = sys.run(std::move(program), "ycsb");

    auto *engine = sys.hsccEngine();
    std::printf("ran %.3f ms simulated\n", ticksToMs(elapsed));
    std::printf("  migration intervals: %.0f\n",
                engine->stats().scalarValue("intervals"));
    std::printf("  pages migrated to DRAM: %llu\n",
                (unsigned long long)engine->pagesMigrated());
    std::printf("  displaced cache pages: %.0f (dirty copy-backs: "
                "%.0f)\n",
                engine->stats().scalarValue("reverts"),
                engine->stats().scalarValue("copyBacks"));
    const double sel = static_cast<double>(engine->selectionTicks());
    const double cp = static_cast<double>(engine->copyTicks());
    if (sel + cp > 0) {
        std::printf("  OS migration time: %.3f ms (%.1f%% selection, "
                    "%.1f%% copy)\n",
                    ticksToMs(engine->migrationTicks()),
                    100.0 * sel / (sel + cp),
                    100.0 * cp / (sel + cp));
    }
    return 0;
}
