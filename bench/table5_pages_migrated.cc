/**
 * @file
 * Reproduces Table V: number of pages migrated per benchmark under
 * DRAM fetch thresholds 5, 25 and 50.
 *
 * Paper shape: migrations fall steeply with the threshold (Ycsb_mem:
 * ~13x fewer at Th-25 and ~101x fewer at Th-50 than at Th-5).
 */

#include "bench_util.hh"
#include "hscc_common.hh"

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t ops = prep::opsFromEnv(1000000);
    printHeader("Table V", "Pages migrated (KINDLE_OPS=" +
                               std::to_string(ops) + ")");

    TablePrinter table({"Benchmark", "Th-5", "Th-25", "Th-50",
                        "Th-5/Th-25", "Th-5/Th-50"});
    for (const auto bench :
         {prep::Benchmark::gapbsPr, prep::Benchmark::g500Sssp,
          prep::Benchmark::ycsbMem}) {
        std::uint64_t migrated[3] = {};
        const unsigned ths[3] = {5, 25, 50};
        for (int i = 0; i < 3; ++i) {
            migrated[i] =
                runHsccWorkload(bench, ops, ths[i], true)
                    .pagesMigrated;
        }
        auto reduction = [&](int i) {
            return migrated[i] == 0
                       ? std::string("inf")
                       : ratio(static_cast<double>(migrated[0]) /
                               static_cast<double>(migrated[i]));
        };
        table.addRow({prep::benchmarkName(bench),
                      std::to_string(migrated[0]),
                      std::to_string(migrated[1]),
                      std::to_string(migrated[2]), reduction(1),
                      reduction(2)});
    }
    table.print();
    std::printf("\nPaper shape: steep reduction with threshold "
                "(Ycsb_mem: ~13x at Th-25, ~101x at Th-50).\n");
    return 0;
}
