/**
 * @file
 * google-benchmark microbenchmarks of the cache hierarchy: simulated
 * hit/miss latencies per level and host-side simulation throughput
 * (how many simulated accesses per host second the framework
 * sustains — the "lightweight" claim of the paper).
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"

namespace
{

using namespace kindle;

struct Rig
{
    Rig()
        : memory([] {
              mem::HybridMemoryParams p;
              p.dramBytes = 256 * oneMiB;
              p.nvmBytes = 256 * oneMiB;
              return p;
          }()),
          hier(cache::HierarchyParams{}, memory)
    {}

    mem::HybridMemory memory;
    cache::Hierarchy hier;
};

void
BM_L1HitPath(benchmark::State &state)
{
    Rig rig;
    Tick now = 0;
    rig.hier.access(mem::MemCmd::read, 0x1000, 8, now);
    Tick total = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        const auto res =
            rig.hier.access(mem::MemCmd::read, 0x1000, 8, now);
        now += res.latency;
        total += res.latency;
        ++n;
    }
    state.counters["simNsPerHit"] =
        ticksToNs(total) / static_cast<double>(n);
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_L1HitPath);

void
BM_LlcMissToDram(benchmark::State &state)
{
    Rig rig;
    Tick now = 0;
    Addr addr = 0;
    Tick total = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        const auto res =
            rig.hier.access(mem::MemCmd::read, addr, 8, now);
        now += res.latency;
        total += res.latency;
        addr += 4 * pageSize;  // defeat all cache levels
        if (addr >= 128 * oneMiB)
            addr = 0;
        ++n;
    }
    state.counters["simNsPerMiss"] =
        ticksToNs(total) / static_cast<double>(n);
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LlcMissToDram);

void
BM_LlcMissToNvm(benchmark::State &state)
{
    Rig rig;
    const Addr base = rig.memory.nvmRange().start();
    Tick now = 0;
    Addr addr = 0;
    Tick total = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        const auto res = rig.hier.access(mem::MemCmd::read,
                                         base + addr, 8, now);
        now += res.latency;
        total += res.latency;
        addr += 4 * pageSize;
        if (addr >= 128 * oneMiB)
            addr = 0;
        ++n;
    }
    state.counters["simNsPerMiss"] =
        ticksToNs(total) / static_cast<double>(n);
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LlcMissToNvm);

void
BM_ClwbDirtyLine(benchmark::State &state)
{
    Rig rig;
    const Addr base = rig.memory.nvmRange().start();
    Tick now = 0;
    for (auto _ : state) {
        rig.hier.access(mem::MemCmd::write, base, 8, now);
        now += rig.hier.clwb(base, now);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClwbDirtyLine);

void
BM_SimulationThroughputMixed(benchmark::State &state)
{
    // Host-side throughput over a mixed working set: the headline
    // "how fast does Kindle simulate" number.
    Rig rig;
    Tick now = 0;
    std::uint64_t i = 0;
    for (auto _ : state) {
        const Addr addr = (i * 2891) % (32 * oneMiB);
        const auto res = rig.hier.access(
            (i & 3) ? mem::MemCmd::read : mem::MemCmd::write,
            addr & ~std::uint64_t(7), 8, now);
        now += res.latency;
        ++i;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulationThroughputMixed);

} // namespace

BENCHMARK_MAIN();
