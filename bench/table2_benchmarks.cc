/**
 * @file
 * Reproduces Table II: benchmark details (total ops, read %, write %)
 * for the three generated workload traces.
 */

#include "bench_util.hh"
#include "prep/workloads.hh"

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t ops = prep::opsFromEnv(200000);
    printHeader("Table II", "Benchmark details (KINDLE_OPS=" +
                                std::to_string(ops) + ")");

    TablePrinter table({"Benchmark", "Total Ops", "read %",
                        "write %"});
    for (const auto bench :
         {prep::Benchmark::gapbsPr, prep::Benchmark::g500Sssp,
          prep::Benchmark::ycsbMem}) {
        prep::WorkloadParams params;
        params.ops = ops;
        auto src = prep::makeWorkload(bench, params);
        const prep::TraceStats stats = prep::computeStats(*src);
        table.addRow({prep::benchmarkName(bench),
                      std::to_string(stats.totalOps),
                      fixed(stats.readPct(), 0),
                      fixed(stats.writePct(), 0)});
    }
    table.print();

    std::printf("\nPaper reference: Gapbs_pr 77/23, G500_sssp 68/32, "
                "Ycsb_mem 71/29 (10,000,000 ops each)\n");
    return 0;
}
