/**
 * @file
 * Framework-enabled extension study: the rebuild scheme's dominant
 * cost is the full page-table traversal + mapping-list rewrite at
 * every checkpoint (Figure 4a / Table IV).  Kindle makes it a
 * one-line experiment to maintain the list *incrementally* from
 * mapping events instead.  This bench contrasts the two under the
 * Figure 4a workload: the incremental variant's cost stays flat in
 * the mapped size while recovery semantics are unchanged.
 */

#include "bench_util.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace
{

using namespace kindle;

Tick
runOne(bool incremental, std::uint64_t bytes)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    persist::PersistParams pp;
    pp.scheme = persist::PtScheme::rebuild;
    pp.checkpointInterval = 10 * oneMs;
    pp.incrementalMappingList = incremental;
    cfg.persistence = pp;
    KindleSystem sys(cfg);
    return sys.run(micro::seqAllocTouch(bytes, true), "seq");
}

} // namespace

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t scale = scaleFromEnv();
    printHeader("Ablation (incremental checkpointing)",
                "Rebuild scheme: full traversal vs event-driven "
                "mapping list");

    TablePrinter table({"Alloc size", "Full rebuild (ms)",
                        "Incremental (ms)", "Speedup"});
    for (const std::uint64_t mib : {64, 128, 256, 512}) {
        const std::uint64_t bytes = mib * oneMiB / scale;
        const Tick full = runOne(false, bytes);
        const Tick incremental = runOne(true, bytes);
        table.addRow({sizeToString(bytes), ms(full), ms(incremental),
                      ratio(static_cast<double>(full) /
                            static_cast<double>(incremental))});
    }
    table.print();
    std::printf("\nExpectation: the incremental variant removes the "
                "size-proportional checkpoint cost, flattening the "
                "Figure 4a curve while recovery still rebuilds the "
                "same page table.\n");
    return 0;
}
