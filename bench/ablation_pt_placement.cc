/**
 * @file
 * Ablation behind the Table IV discussion: isolate the pure cost of
 * *page-table placement* (DRAM vs NVM) without any checkpointing, by
 * driving TLB-miss-heavy access patterns and measuring walk costs.
 * The paper's claim: TLBs and caches largely hide the NVM read
 * latency of a persistent page table during translation, so the
 * placement penalty on the walk path is modest — the persistent
 * scheme's real cost is the consistency-wrapped stores.
 */

#include "bench_util.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace
{

using namespace kindle;

Tick
runOne(bool pt_in_nvm, std::uint64_t bytes, unsigned sweeps)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    cfg.kernel.ptInNvm = pt_in_nvm;
    // No persistence domain: placement only, plain PTE stores.
    KindleSystem sys(cfg);
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, bytes, true);
    b.touchPages(micro::scriptBase, bytes);
    for (unsigned s = 0; s < sweeps; ++s)
        b.readPages(micro::scriptBase, bytes);
    b.munmap(micro::scriptBase, bytes);
    b.exit();
    return sys.run(b.build(), "sweep");
}

} // namespace

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t scale = scaleFromEnv();
    printHeader("Ablation (PT placement)",
                "Page-table home vs TLB-miss-heavy sweeps, no "
                "checkpointing");

    TablePrinter table({"Working set", "Sweeps", "PT in DRAM (ms)",
                        "PT in NVM (ms)", "NVM/DRAM"});
    for (const std::uint64_t mib : {32, 128}) {
        const std::uint64_t bytes = mib * oneMiB / scale;
        for (const unsigned sweeps : {1u, 8u}) {
            const Tick dram = runOne(false, bytes, sweeps);
            const Tick nvm = runOne(true, bytes, sweeps);
            table.addRow({sizeToString(bytes),
                          std::to_string(sweeps), ms(dram), ms(nvm),
                          ratio(static_cast<double>(nvm) /
                                static_cast<double>(dram))});
        }
    }
    table.print();
    std::printf("\nExpectation: modest NVM penalty (caches hide most "
                "walk latency), growing with TLB pressure.\n");
    return 0;
}
