/**
 * @file
 * Reproduces Figure 6: execution time with full (hardware + OS)
 * migration activity normalized to hardware-only migration, under
 * DRAM fetch thresholds 5, 25 and 50.
 *
 * Paper shape: all values above 1.0 (OS work costs), decreasing as
 * the threshold rises because fewer pages qualify for migration.
 * This is the study a user-level simulator like ZSim cannot run.
 */

#include "bench_util.hh"
#include "hscc_common.hh"

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t ops = prep::opsFromEnv(1000000);
    printHeader("Figure 6",
                "HSCC OS-migration overhead (KINDLE_OPS=" +
                    std::to_string(ops) + ")");

    TablePrinter table({"Benchmark", "Threshold", "HW-only (ms)",
                        "HW+OS (ms)", "Normalized"});
    for (const auto bench :
         {prep::Benchmark::gapbsPr, prep::Benchmark::g500Sssp,
          prep::Benchmark::ycsbMem}) {
        for (const unsigned th : {5u, 25u, 50u}) {
            const auto hw = runHsccWorkload(bench, ops, th, false);
            const auto os = runHsccWorkload(bench, ops, th, true);
            table.addRow(
                {prep::benchmarkName(bench),
                 "Th-" + std::to_string(th), ms(hw.elapsed),
                 ms(os.elapsed),
                 ratio(static_cast<double>(os.elapsed) /
                       static_cast<double>(hw.elapsed))});
        }
    }
    table.print();
    std::printf("\nPaper shape: normalized > 1 everywhere; overhead "
                "falls as the fetch threshold rises.\n");
    return 0;
}
