/**
 * @file
 * Reproduces Figure 6: execution time with full (hardware + OS)
 * migration activity normalized to hardware-only migration, under
 * DRAM fetch thresholds 5, 25 and 50.
 *
 * Paper shape: all values above 1.0 (OS work costs), decreasing as
 * the threshold rises because fewer pages qualify for migration.
 * This is the study a user-level simulator like ZSim cannot run.
 *
 * Runs on the sweep runner (--jobs/KINDLE_JOBS); all 18 points (3
 * workloads x 3 thresholds x {hw, hw+os}) execute concurrently and
 * the sweep is exported as BENCH_fig6_hscc_migration.json with the
 * full per-point stat snapshot (selection/copy/migration ticks
 * included).
 */

#include "bench_util.hh"
#include "hscc_common.hh"
#include "runner/options.hh"
#include "runner/report.hh"

int
main(int argc, char **argv)
{
    using namespace kindle;
    using namespace kindle::bench;

    const auto opts = runner::parseOptions(argc, argv);
    const std::uint64_t ops = prep::opsFromEnv(1000000);
    printHeader("Figure 6",
                "HSCC OS-migration overhead (KINDLE_OPS=" +
                    std::to_string(ops) + ")");

    const std::vector<prep::Benchmark> benches = {
        prep::Benchmark::gapbsPr, prep::Benchmark::g500Sssp,
        prep::Benchmark::ycsbMem};
    const std::vector<unsigned> thresholds = {5, 25, 50};

    // Scenario order: (bench, threshold) major, hw-only before hw+os.
    std::vector<runner::Scenario> scenarios;
    for (const auto bench : benches) {
        const std::string wl = prep::benchmarkName(bench);
        for (const unsigned th : thresholds) {
            const std::string th_label = "Th-" + std::to_string(th);
            for (const bool charge_os : {false, true}) {
                const char *mode = charge_os ? "hw+os" : "hw";
                scenarios.push_back(makeHsccScenario(
                    bench, ops, th, charge_os,
                    wl + "/" + th_label + "/" + mode,
                    {{"benchmark", wl},
                     {"threshold", std::to_string(th)},
                     {"migration", mode}}));
            }
        }
    }

    runner::SweepRunner pool(opts);
    const auto results = pool.run(scenarios);
    requireAllOk(results);

    TablePrinter table({"Benchmark", "Threshold", "HW-only (ms)",
                        "HW+OS (ms)", "Normalized"});
    for (std::size_t b = 0; b < benches.size(); ++b) {
        for (std::size_t t = 0; t < thresholds.size(); ++t) {
            const std::size_t base =
                (b * thresholds.size() + t) * 2;
            const auto &hw = results[base];
            const auto &os = results[base + 1];
            table.addRow(
                {prep::benchmarkName(benches[b]),
                 "Th-" + std::to_string(thresholds[t]),
                 ms(hw.ticks), ms(os.ticks),
                 ratio(static_cast<double>(os.ticks) /
                       static_cast<double>(hw.ticks))});
        }
    }
    table.print();
    std::printf("\nPaper shape: normalized > 1 everywhere; overhead "
                "falls as the fetch threshold rises.\n");

    runner::BenchReport report("fig6_hscc_migration", pool.jobs());
    report.add(results);
    printJsonFooter(report.writeJsonFile(), pool.jobs());
    return 0;
}
