/**
 * @file
 * Ablation the paper explicitly calls out as enabled-but-unexplored
 * in the original SSP proposal (§III-B): the influence of the page
 * consolidation thread's invocation frequency on application
 * performance, at a fixed 5 ms consistency interval.
 */

#include "bench_util.hh"
#include "ssp_common.hh"

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t ops = prep::opsFromEnv(200000);
    printHeader("Ablation (SSP)",
                "Consolidation-thread interval sweep (KINDLE_OPS=" +
                    std::to_string(ops) + ")");

    TablePrinter table({"Benchmark", "Consolidation interval",
                        "Exec (ms)", "Consolidations"});
    for (const auto bench :
         {prep::Benchmark::gapbsPr, prep::Benchmark::ycsbMem}) {
        for (const Tick interval :
             {oneMs / 5, oneMs, 5 * oneMs}) {
            ssp::SspParams params;
            params.consistencyInterval = 5 * oneMs;
            params.consolidationInterval = interval;
            const auto run = runSspWorkload(bench, ops, params);
            table.addRow({prep::benchmarkName(bench),
                          fixed(double(interval) / double(oneMs), 1) +
                              " ms",
                          ms(run.elapsed),
                          std::to_string(run.consolidations)});
        }
    }
    table.print();
    std::printf("\nExpectation: more frequent consolidation raises "
                "overhead (the paper fixes it at 1 ms for this "
                "reason).\n");
    return 0;
}
