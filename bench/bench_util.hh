/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 *
 * Every bench prints the corresponding paper table/figure as text so
 * runs can be diffed against EXPERIMENTS.md.  Two environment knobs
 * control fidelity:
 *
 *   KINDLE_SCALE  divides the byte-sized workload dimensions
 *                 (default 8; set 1 for the paper's full sizes),
 *   KINDLE_OPS    trace length for the workload-driven studies
 *                 (default 200000; paper: 10000000).
 */

#ifndef KINDLE_BENCH_BENCH_UTIL_HH
#define KINDLE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/str.hh"
#include "base/types.hh"
#include "runner/sweep_runner.hh"

namespace kindle::bench
{

/** Abort the bench if any sweep point failed. */
inline void
requireAllOk(const std::vector<runner::RunResult> &results)
{
    for (const auto &r : results) {
        if (!r.ok)
            kindle_fatal("sweep point '{}' failed: {}", r.name,
                         r.error);
    }
}

/** Footer naming the JSON record a runner bench produced. */
inline void
printJsonFooter(const std::string &path, unsigned jobs)
{
    std::printf("\nStructured results: %s (ran with %u jobs)\n",
                path.c_str(), jobs);
}

/** Workload scale divisor from the environment. */
inline std::uint64_t
scaleFromEnv(std::uint64_t fallback = 8)
{
    if (const char *env = std::getenv("KINDLE_SCALE")) {
        const auto v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return fallback;
}

/** Print a rule + centered header naming the reproduced artifact. */
inline void
printHeader(const std::string &artifact, const std::string &desc)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("  %s — %s\n", artifact.c_str(), desc.c_str());
    std::printf("==================================================="
                "===========\n");
}

/** Simple fixed-width table printer. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers)
        : columns(std::move(headers))
    {}

    void
    addRow(std::vector<std::string> row)
    {
        rows.push_back(std::move(row));
    }

    void
    print() const
    {
        std::vector<std::size_t> widths(columns.size());
        for (std::size_t c = 0; c < columns.size(); ++c)
            widths[c] = columns[c].size();
        for (const auto &row : rows)
            for (std::size_t c = 0; c < row.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto print_row = [&](const std::vector<std::string> &row) {
            std::printf("  ");
            for (std::size_t c = 0; c < row.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(widths[c]),
                            row[c].c_str());
            std::printf("\n");
        };
        print_row(columns);
        std::vector<std::string> rule;
        for (const auto w : widths)
            rule.push_back(std::string(w, '-'));
        print_row(rule);
        for (const auto &row : rows)
            print_row(row);
    }

  private:
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

/** Format ticks as milliseconds with 3 decimals. */
inline std::string
ms(Tick t)
{
    return fixed(ticksToMs(t), 3);
}

/** Format a ratio like "3.42x". */
inline std::string
ratio(double r)
{
    return fixed(r, 2) + "x";
}

} // namespace kindle::bench

#endif // KINDLE_BENCH_BENCH_UTIL_HH
