/**
 * @file
 * Reproduces Table VI: percentage of OS migration time spent in page
 * selection (destination DRAM page, incl. dirty copy-back) vs page
 * copy (flush + NVM→DRAM transfer).
 *
 * Paper shape: page copy dominates (62.65%–98.63%); selection grows
 * when migrations outrun the free/clean supply of the 512-page pool
 * (G500_sssp and Ycsb_mem at low thresholds).
 */

#include "bench_util.hh"
#include "hscc_common.hh"

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t ops = prep::opsFromEnv(1000000);
    printHeader("Table VI",
                "OS migration time split (KINDLE_OPS=" +
                    std::to_string(ops) + ")");

    TablePrinter table({"Benchmark", "Fetch Threshold",
                        "Page Selection (%)", "Page Copy (%)",
                        "Pages"});
    for (const auto bench :
         {prep::Benchmark::gapbsPr, prep::Benchmark::g500Sssp,
          prep::Benchmark::ycsbMem}) {
        for (const unsigned th : {5u, 25u, 50u}) {
            const auto run = runHsccWorkload(bench, ops, th, true);
            const double total = static_cast<double>(
                run.selectionTicks + run.copyTicks);
            const double sel =
                total > 0 ? 100.0 * run.selectionTicks / total : 0;
            const double copy =
                total > 0 ? 100.0 * run.copyTicks / total : 0;
            table.addRow({prep::benchmarkName(bench),
                          "Th-" + std::to_string(th), fixed(sel, 2),
                          fixed(copy, 2),
                          std::to_string(run.pagesMigrated)});
        }
    }
    table.print();
    std::printf("\nPaper shape: page copy dominates everywhere "
                "(62.65%%-98.63%%); selection spikes when the pool "
                "runs out of free/clean pages.\n");
    return 0;
}
