/**
 * @file
 * Recovery-audit fuzz harness: systematic crash-point exploration.
 *
 * For each page-table scheme the harness first takes a *golden run* —
 * the workload executed with an unarmed (observe-only) injector — to
 * learn (a) how often every named crash site fires, (b) how many
 * durable NVM writes the controller accepts, and (c) the set of
 * committed checkpoint states (the recovery oracle: any state a
 * recovered process may legally resume from).
 *
 * It then sweeps crash points over that space: a site × occurrence
 * grid covering every named crash site the scheme exercises, padded
 * with seeded-random Nth-durable-write points, ≥100 points per scheme
 * by default (KINDLE_FUZZ_POINTS overrides, KINDLE_FUZZ_SEED reseeds
 * the random pad).  Each point runs the same workload with an armed
 * FaultPlan, rides the injected PowerLoss into crash()+reboot(), and
 * audits the outcome:
 *
 *   - every recovered process must resume from a state present in the
 *     golden oracle (anything else is an oracle divergence → FAILED),
 *   - the rebooted machine must still take a checkpoint,
 *   - a point is CLEAN when recovery reported no errors, SALVAGED
 *     when it classified damage (quarantined slots, torn log tails)
 *     but every surviving process validated.
 *
 * With --media-faults the sweep additionally arms the NVM media model
 * (seeded transient bit flips on line writes) plus the patrol
 * scrubber on *both* the golden run and every crash point: the oracle
 * must hold even while ECC is correcting single-bit upsets underneath
 * the persistence protocols.
 *
 * Everything is deterministic: a fixed seed reproduces the same sweep
 * and byte-identical BENCH_fuzz_crash_recovery.json (wall-clock is
 * omitted from the export for exactly this reason).
 *
 * Flags (besides the common runner set):
 *   --points N       crash points per scheme (KINDLE_FUZZ_POINTS)
 *   --seed N         sweep seed (KINDLE_FUZZ_SEED)
 *   --cores N        SMP machine: N-1 background mutator processes
 *                    run time-shared with the foreground, adding
 *                    shootdown/migration interleavings to the space
 *   --media-faults   arm the media error model + scrubber
 *   --filter STR     run only points whose name contains STR
 *   --force-divergence
 *                    count every point as an oracle divergence — a
 *                    self-test that the failure path (flight-recorder
 *                    dump + repro line + nonzero exit) works
 *
 * Every FAILED point prints a one-line `repro:` command that re-runs
 * just that point single-threaded, and dumps the system's flight
 * recorder (last N trace records + crash site + fault plan) as
 * FLIGHT_fuzz.<scheme>.<point>.json — or to the --flight-out routing
 * when given — so a divergence leaves a timeline of the moments before
 * the crash even when it cannot be reproduced interactively.
 *
 * The golden-run / point-grid / divergence-dump machinery itself
 * lives in fuzz_common.hh, shared with fuzz_pressure and
 * fuzz_core_loss.
 */

#include <cstring>
#include <utility>

#include "bench_util.hh"
#include "fuzz_common.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "runner/options.hh"
#include "runner/report.hh"

namespace
{

using namespace kindle;
using namespace kindle::bench;

/** Harness-local flags, pre-parsed before runner::parseOptions (which
 *  is fatal on anything it does not recognize). */
struct FuzzOptions
{
    fuzz::CommonFuzzOptions common;
    bool forceDivergence = false;
};

std::unique_ptr<cpu::OpStream>
makeWorkload()
{
    // Touch + churn + compute: enough allocator traffic, VMA events
    // and PTE writes that every instrumented protocol runs repeatedly
    // across several checkpoint intervals.
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 48 * pageSize, true);
    b.touchPages(micro::scriptBase, 48 * pageSize);
    for (int r = 0; r < 10; ++r) {
        b.compute(500000);
        const Addr extra =
            micro::scriptBase + (64 + Addr(r) * 16) * pageSize;
        b.mmapFixed(extra, 8 * pageSize, true);
        b.touchPages(extra, 8 * pageSize);
        if (r % 2)
            b.munmap(extra, 8 * pageSize);
    }
    b.exit();
    return b.build();
}

KindleConfig
baseConfig(persist::PtScheme scheme, bool media_faults,
           unsigned cores)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 256 * oneMiB;
    cfg.numCores = cores;
    cfg.persistence = persist::PersistParams{scheme, oneMs / 4};
    if (media_faults) {
        cfg.fault = fault::FaultPlan{};  // unarmed: media config only
        cfg.fault->media = fuzz::mediaPlan();
        cfg.scrub = mem::ScrubParams{oneMs / 4, 16 * oneMiB};
    }
    return cfg;
}

/**
 * With --cores N (N > 1), spawn N-1 deterministic background mutators
 * *before* the foreground workload — both in the golden run and at
 * every crash point, so the SMP interleavings (parallel checkpoints,
 * TLB shootdowns, migrated processes mid-crash) are part of the
 * audited space while the oracle stays well-defined.
 */
void
spawnBackground(KindleSystem &sys, unsigned cores)
{
    for (unsigned i = 1; i < cores; ++i) {
        micro::ScriptBuilder b;
        const Addr base =
            micro::scriptBase + Addr(0x1000) * pageSize * i;
        b.mmapFixed(base, 16 * pageSize, true);
        b.touchPages(base, 16 * pageSize);
        for (int r = 0; r < 6; ++r) {
            b.compute(200000 + 50000 * static_cast<int>(i));
            b.touchPages(base, 8 * pageSize);
        }
        b.exit();
        sys.kernel().spawn(b.build(), "bg" + std::to_string(i));
    }
}

fuzz::Golden
goldenRun(persist::PtScheme scheme, bool media_faults, unsigned cores)
{
    fuzz::Golden g;
    KindleSystem sys(baseConfig(scheme, media_faults, cores));
    fuzz::observeCommitted(sys, g);
    spawnBackground(sys, cores);
    sys.run(makeWorkload(), "golden");
    g.hits = sys.injector().allHits();
    g.durableWrites = sys.injector().durableWrites();
    return g;
}

runner::Scenario
makeScenario(persist::PtScheme scheme, const fuzz::Point &point,
             const fuzz::Golden &golden, const FuzzOptions &fz)
{
    const bool media_faults = fz.common.mediaFaults;
    const std::string scheme_name = persist::ptSchemeName(scheme);
    runner::Scenario sc;
    sc.name = scheme_name + "/" + point.label;
    sc.axes = {{"scheme", scheme_name},
               {"site", point.plan.site.empty() ? "durable_write"
                                                : point.plan.site},
               {"trigger", point.label}};
    sc.config = baseConfig(scheme, media_faults, fz.common.cores);
    sc.config.fault = point.plan;
    if (media_faults)
        sc.config.fault->media = fuzz::mediaPlan();
    sc.drive = [oracle = &golden.committed, name = sc.name,
                force = fz.forceDivergence, cores = fz.common.cores](
                   KindleSystem &sys,
                   statistics::StatSnapshot &extra) -> Tick {
        const Tick t0 = sys.now();
        bool fired = false;
        try {
            spawnBackground(sys, cores);
            sys.run(makeWorkload(), "fuzz");
        } catch (const fault::PowerLoss &) {
            fired = true;
        }
        // Pull the plug — mid-protocol when the trigger fired, at
        // workload completion otherwise — and reboot over the wreck.
        sys.crash();
        const persist::RecoveryReport report = sys.reboot();

        std::uint64_t recovered = 0;
        std::uint64_t divergences = 0;
        for (const auto &proc : sys.kernel().processes()) {
            if (!proc->restored)
                continue;
            ++recovered;
            if (!oracle->count(
                    {proc->context.rip, proc->aspace.mappedBytes()}))
                ++divergences;
        }
        if (force)
            ++divergences;
        if (divergences > 0) {
            fuzz::dumpDivergence(sys, "FLIGHT_fuzz.", name,
                                 "oracle-divergence");
        }

        // The recovered machine must still be able to checkpoint.
        bool post_ok = true;
        try {
            sys.persistence()->checkpointNow();
        } catch (const std::exception &) {
            post_ok = false;
        }

        const bool failed = divergences > 0 || !post_ok;
        const bool clean = !failed && report.clean();
        extra.set("fuzz.fired", fired ? 1 : 0);
        extra.set("fuzz.recovered", static_cast<double>(recovered));
        extra.set("fuzz.quarantined",
                  static_cast<double>(report.processesQuarantined));
        extra.set("fuzz.recoveryErrors",
                  static_cast<double>(report.errors.size()));
        extra.set("fuzz.tornPtStoresRolledBack",
                  static_cast<double>(report.tornPtStoresRolledBack));
        extra.set("fuzz.oracleDivergences",
                  static_cast<double>(divergences));
        extra.set("fuzz.clean", clean ? 1 : 0);
        extra.set("fuzz.salvaged", (!clean && !failed) ? 1 : 0);
        extra.set("fuzz.failed", failed ? 1 : 0);
        return sys.now() - t0;
    };
    return sc;
}

/**
 * Split harness-local flags from the common runner ones.  The runner
 * parser is deliberately fatal on unknown flags, so everything it must
 * not see is consumed here and the remainder handed down via
 * @p pass_argv (which stays valid as views into the original argv).
 */
FuzzOptions
parseFuzzOptions(int argc, char **argv, std::vector<char *> &pass_argv)
{
    FuzzOptions fz;
    fz.common.points = fuzz::envCount("KINDLE_FUZZ_POINTS", 128);
    fz.common.seed = fuzz::envCount("KINDLE_FUZZ_SEED", 12345);
    pass_argv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (fuzz::parseCommonFuzzFlag(i, argc, argv, fz.common)) {
            continue;
        } else if (std::strcmp(argv[i], "--force-divergence") == 0) {
            fz.forceDivergence = true;
        } else {
            pass_argv.push_back(argv[i]);
        }
    }
    return fz;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace kindle::bench;

    std::vector<char *> pass_argv;
    const FuzzOptions fz = parseFuzzOptions(argc, argv, pass_argv);
    const auto opts = runner::parseOptions(
        static_cast<int>(pass_argv.size()), pass_argv.data());
    const std::uint64_t total = fz.common.points;
    const std::uint64_t seed = fz.common.seed;
    printHeader(
        "Crash-recovery fuzz",
        "crash-point exploration, " + std::to_string(total) +
            " points/scheme, seed " + std::to_string(seed) +
            ", cores " + std::to_string(fz.common.cores) +
            (fz.common.mediaFaults
                 ? ", media faults + scrubber armed" : ""));

    const std::vector<persist::PtScheme> schemes = {
        persist::PtScheme::rebuild, persist::PtScheme::persistent};

    runner::BenchReport report("fuzz_crash_recovery", opts.jobs);
    report.omitWallClock();
    report.keepStatPrefixes({"fuzz.", "fault.", "recovery.",
                             "persist.checkpoints",
                             "hybridMem.nvmMedia.", "scrubber.",
                             "kernel.badFrames."});

    TablePrinter table({"Scheme", "Points", "Fired", "Clean",
                        "Salvaged", "Failed", "Torn PT undone"});
    bool any_failed = false;

    for (const auto scheme : schemes) {
        const fuzz::Golden golden =
            goldenRun(scheme, fz.common.mediaFaults, fz.common.cores);
        kindle_assert(!golden.committed.empty(),
                      "golden run took no checkpoints — workload or "
                      "interval mistuned");
        // Points are generated *before* filtering so a point's plan
        // (seeded by its index) is identical whether it runs inside
        // the full sweep or alone under --filter.
        const auto points = fuzz::makePoints(golden, total, seed);

        std::vector<runner::Scenario> scenarios;
        scenarios.reserve(points.size());
        for (const auto &p : points) {
            auto sc = makeScenario(scheme, p, golden, fz);
            if (!fz.common.filter.empty() &&
                sc.name.find(fz.common.filter) == std::string::npos) {
                continue;
            }
            scenarios.push_back(std::move(sc));
        }

        runner::SweepRunner pool(opts);
        const auto results = pool.run(scenarios);
        requireAllOk(results);
        report.add(results);

        std::uint64_t fired = 0, clean = 0, salvaged = 0, failed = 0;
        std::uint64_t torn = 0;
        for (const auto &r : results) {
            fired += static_cast<std::uint64_t>(
                r.stats.get("fuzz.fired"));
            clean += static_cast<std::uint64_t>(
                r.stats.get("fuzz.clean"));
            salvaged += static_cast<std::uint64_t>(
                r.stats.get("fuzz.salvaged"));
            failed += static_cast<std::uint64_t>(
                r.stats.get("fuzz.failed"));
            torn += static_cast<std::uint64_t>(
                r.stats.get("fuzz.tornPtStoresRolledBack"));
            if (r.stats.get("fuzz.failed") > 0) {
                std::printf(
                    "FAILED %s\n  repro: %s\n", r.name.c_str(),
                    fuzz::reproCommand(argv[0], fz.common, "", r.name)
                        .c_str());
            }
        }
        any_failed = any_failed || failed > 0;
        table.addRow({persist::ptSchemeName(scheme),
                      std::to_string(results.size()),
                      std::to_string(fired), std::to_string(clean),
                      std::to_string(salvaged),
                      std::to_string(failed), std::to_string(torn)});
    }
    table.print();

    printJsonFooter(report.writeJsonFile(), opts.jobs);
    if (any_failed)
        kindle_fatal("fuzz found unexplained recovery divergences");
    return 0;
}
