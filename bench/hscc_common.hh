/**
 * @file
 * Shared harness for the HSCC studies (Figure 6, Tables V and VI):
 * replay a Table II workload with the HSCC engine at a given fetch
 * threshold, with or without OS-side migration costs.
 */

#ifndef KINDLE_BENCH_HSCC_COMMON_HH
#define KINDLE_BENCH_HSCC_COMMON_HH

#include "kindle/kindle.hh"
#include "prep/replay.hh"
#include "prep/workloads.hh"
#include "runner/scenario.hh"

namespace kindle::bench
{

struct HsccRunResult
{
    Tick elapsed = 0;
    std::uint64_t pagesMigrated = 0;
    Tick selectionTicks = 0;
    Tick copyTicks = 0;
    Tick migrationTicks = 0;
};

/** Run @p bench under HSCC. */
inline HsccRunResult
runHsccWorkload(prep::Benchmark bench, std::uint64_t ops,
                unsigned fetch_threshold, bool charge_os_time)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    hscc::HsccParams params;
    params.fetchThreshold = fetch_threshold;
    params.chargeOsTime = charge_os_time;
    cfg.hscc = params;

    KindleSystem sys(cfg);

    prep::WorkloadParams wp;
    wp.ops = ops;
    wp.scaleDown = 8;
    auto trace = prep::makeWorkload(bench, wp);

    prep::ReplayConfig rc;
    rc.heapsInNvm = true;   // data lives in NVM, DRAM is the cache
    rc.stacksInNvm = true;
    // Pace the replay at ~100 ns per record (the captured period
    // granularity) so the run spans many 31.25 ms migration intervals
    // like the original minutes-long executions.
    rc.computePerRecord = 300;
    auto program = std::make_unique<prep::ReplayStream>(*trace, rc);

    HsccRunResult result;
    result.elapsed =
        sys.run(std::move(program), prep::benchmarkName(bench));
    result.pagesMigrated = sys.hsccEngine()->pagesMigrated();
    result.selectionTicks = sys.hsccEngine()->selectionTicks();
    result.copyTicks = sys.hsccEngine()->copyTicks();
    result.migrationTicks = sys.hsccEngine()->migrationTicks();
    return result;
}

/**
 * The same HSCC study point packaged as a runner scenario.  The
 * selection/copy phase split is *not* read from engine accessors:
 * it falls out of the hscc.* entries of the RunResult stat snapshot.
 */
inline runner::Scenario
makeHsccScenario(prep::Benchmark bench, std::uint64_t ops,
                 unsigned fetch_threshold, bool charge_os_time,
                 std::string point_name, runner::Axes axes)
{
    runner::Scenario sc;
    sc.name = std::move(point_name);
    sc.axes = std::move(axes);
    sc.config.memory.dramBytes = 3 * oneGiB;
    sc.config.memory.nvmBytes = 2 * oneGiB;
    hscc::HsccParams params;
    params.fetchThreshold = fetch_threshold;
    params.chargeOsTime = charge_os_time;
    sc.config.hscc = params;
    sc.program = [bench, ops]() -> std::unique_ptr<cpu::OpStream> {
        prep::WorkloadParams wp;
        wp.ops = ops;
        wp.scaleDown = 8;
        prep::ReplayConfig rc;
        rc.heapsInNvm = true;  // data lives in NVM, DRAM is the cache
        rc.stacksInNvm = true;
        // Pace the replay as in runHsccWorkload: spread records over
        // many 31.25 ms migration intervals.
        rc.computePerRecord = 300;
        return std::make_unique<prep::OwningReplayStream>(
            prep::makeWorkload(bench, wp), rc);
    };
    return sc;
}

} // namespace kindle::bench

#endif // KINDLE_BENCH_HSCC_COMMON_HH
