/**
 * @file
 * Reproduces Figure 5: normalized execution time of the three
 * Table II workloads under SSP with memory-consistency intervals of
 * 1, 5 and 10 ms (page-consolidation thread fixed at 1 ms), relative
 * to a run with no memory consistency.
 *
 * Paper shape: overhead well above 1.0 at 1 ms and shrinking with a
 * wider interval (~3x average reduction from 1 ms to 10 ms).
 *
 * Runs on the sweep runner: all 12 points (3 workloads x [baseline +
 * 3 intervals]) execute concurrently under --jobs/KINDLE_JOBS, and
 * the sweep is exported as BENCH_fig5_ssp_interval.json.  Tick counts
 * are bit-identical at any jobs level.
 */

#include "bench_util.hh"
#include "runner/options.hh"
#include "runner/report.hh"
#include "ssp_common.hh"

int
main(int argc, char **argv)
{
    using namespace kindle;
    using namespace kindle::bench;

    const auto opts = runner::parseOptions(argc, argv);
    const std::uint64_t ops = prep::opsFromEnv(200000);
    printHeader("Figure 5",
                "SSP consistency-interval sweep (KINDLE_OPS=" +
                    std::to_string(ops) + ")");

    const std::vector<prep::Benchmark> benches = {
        prep::Benchmark::gapbsPr, prep::Benchmark::g500Sssp,
        prep::Benchmark::ycsbMem};
    const std::vector<Tick> intervals = {oneMs, 5 * oneMs,
                                         10 * oneMs};

    // Scenario order: per workload, baseline first then the three
    // intervals — the table below indexes on that layout.
    std::vector<runner::Scenario> scenarios;
    for (const auto bench : benches) {
        const std::string wl = prep::benchmarkName(bench);
        scenarios.push_back(makeSspScenario(
            bench, ops, std::nullopt, wl + "/baseline",
            {{"benchmark", wl}, {"interval", "none"}}));
        for (const Tick interval : intervals) {
            const std::string label =
                std::to_string(interval / oneMs) + "ms";
            ssp::SspParams params;
            params.consistencyInterval = interval;
            params.consolidationInterval = oneMs;
            scenarios.push_back(makeSspScenario(
                bench, ops, params, wl + "/" + label,
                {{"benchmark", wl}, {"interval", label}}));
        }
    }

    runner::SweepRunner pool(opts);
    const auto results = pool.run(scenarios);
    requireAllOk(results);

    TablePrinter table({"Benchmark", "Interval", "Baseline (ms)",
                        "SSP (ms)", "Normalized"});
    const std::size_t stride = 1 + intervals.size();
    for (std::size_t b = 0; b < benches.size(); ++b) {
        const auto &baseline = results[b * stride];
        for (std::size_t i = 0; i < intervals.size(); ++i) {
            const auto &run = results[b * stride + 1 + i];
            table.addRow(
                {prep::benchmarkName(benches[b]),
                 std::to_string(intervals[i] / oneMs) + " ms",
                 ms(baseline.ticks), ms(run.ticks),
                 ratio(static_cast<double>(run.ticks) /
                       static_cast<double>(baseline.ticks))});
        }
    }
    table.print();
    std::printf("\nPaper shape: normalized time > 1 everywhere and "
                "decreasing with wider intervals (~3x lower at 10 ms "
                "than 1 ms).\n");

    runner::BenchReport report("fig5_ssp_interval", pool.jobs());
    report.add(results);
    printJsonFooter(report.writeJsonFile(), pool.jobs());
    return 0;
}
