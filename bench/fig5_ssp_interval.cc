/**
 * @file
 * Reproduces Figure 5: normalized execution time of the three
 * Table II workloads under SSP with memory-consistency intervals of
 * 1, 5 and 10 ms (page-consolidation thread fixed at 1 ms), relative
 * to a run with no memory consistency.
 *
 * Paper shape: overhead well above 1.0 at 1 ms and shrinking with a
 * wider interval (~3x average reduction from 1 ms to 10 ms).
 */

#include "bench_util.hh"
#include "ssp_common.hh"

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t ops = prep::opsFromEnv(200000);
    printHeader("Figure 5",
                "SSP consistency-interval sweep (KINDLE_OPS=" +
                    std::to_string(ops) + ")");

    TablePrinter table({"Benchmark", "Interval", "Baseline (ms)",
                        "SSP (ms)", "Normalized"});
    for (const auto bench :
         {prep::Benchmark::gapbsPr, prep::Benchmark::g500Sssp,
          prep::Benchmark::ycsbMem}) {
        const auto baseline =
            runSspWorkload(bench, ops, std::nullopt);
        for (const Tick interval : {oneMs, 5 * oneMs, 10 * oneMs}) {
            ssp::SspParams params;
            params.consistencyInterval = interval;
            params.consolidationInterval = oneMs;
            const auto run = runSspWorkload(bench, ops, params);
            table.addRow(
                {prep::benchmarkName(bench),
                 std::to_string(interval / oneMs) + " ms",
                 ms(baseline.elapsed), ms(run.elapsed),
                 ratio(static_cast<double>(run.elapsed) /
                       static_cast<double>(baseline.elapsed))});
        }
    }
    table.print();
    std::printf("\nPaper shape: normalized time > 1 everywhere and "
                "decreasing with wider intervals (~3x lower at 10 ms "
                "than 1 ms).\n");
    return 0;
}
