/**
 * @file
 * google-benchmark microbenchmarks of the telemetry substrate: the
 * *host-side* cost of a self-profiler probe in each gating state, and
 * the per-sample cost paid by the time-series sampler.
 *
 * The interesting number is the disabled cost — KINDLE_PROF_SCOPE
 * probes sit in the event-dispatch loop and every subsystem entry
 * point, so a run without --prof must not pay for them:
 *
 *   - NoProfiler: no Profiler registered on the thread (the default
 *                 for every bench and test) — one thread-local load
 *                 and a branch.
 *   - Active:     profiler attached; the scope takes two host clock
 *                 reads plus the self-time bookkeeping.
 *   - Nested:     parent/child scopes, exercising the child-time
 *                 subtraction that makes category times exclusive.
 *
 * The compile-time kill switch is one level below all of these:
 * configuring with -DKINDLE_TELEMETRY=0 turns every probe macro into
 * ((void)0), so the probes vanish from the binary entirely.
 *
 * The sampler has no probe in any hot path — when --sample-interval
 * is 0 no event is ever scheduled, so its disabled cost is exactly
 * zero.  What matters instead is the per-sample cost, which is
 * dominated by the full stat-tree snapshot; Snapshot times that on a
 * default-config KindleSystem, and ChannelLookup times the per-channel
 * O(1) path lookup into the snapshot's name index.
 */

#include <benchmark/benchmark.h>

#include "base/stats.hh"
#include "kindle/kindle.hh"
#include "telemetry/profiler.hh"

namespace
{

using namespace kindle;

void
BM_ProfScopeNoProfiler(benchmark::State &state)
{
    // No ProfilerScope: the macro resolves currentProfiler() to null
    // and skips the clock reads.  This is the cost paid by every
    // probe in an unprofiled run.
    std::uint64_t x = 0;
    for (auto _ : state) {
        KINDLE_PROF_SCOPE(eventLoop);
        benchmark::DoNotOptimize(++x);
    }
}
BENCHMARK(BM_ProfScopeNoProfiler);

void
BM_ProfScopeActive(benchmark::State &state)
{
    telemetry::Profiler prof;
    telemetry::ProfilerScope scope(&prof);
    std::uint64_t x = 0;
    for (auto _ : state) {
        KINDLE_PROF_SCOPE(eventLoop);
        benchmark::DoNotOptimize(++x);
    }
}
BENCHMARK(BM_ProfScopeActive);

void
BM_ProfScopeNested(benchmark::State &state)
{
    telemetry::Profiler prof;
    telemetry::ProfilerScope scope(&prof);
    std::uint64_t x = 0;
    for (auto _ : state) {
        KINDLE_PROF_SCOPE(sched);
        {
            KINDLE_PROF_SCOPE(cache);
            benchmark::DoNotOptimize(++x);
        }
    }
}
BENCHMARK(BM_ProfScopeNested);

void
BM_SamplerSnapshot(benchmark::State &state)
{
    // The dominant per-sample cost: snapshotting the whole stat tree
    // of a default-config system.  At the default 1 ms period this
    // runs ~once per simulated millisecond.
    KindleSystem sys{KindleConfig{}};
    for (auto _ : state) {
        statistics::StatSnapshot snap = sys.snapshotStats();
        benchmark::DoNotOptimize(snap);
    }
}
BENCHMARK(BM_SamplerSnapshot);

void
BM_ChannelLookup(benchmark::State &state)
{
    // Per-channel cost on top of the snapshot: one O(1) lookup in the
    // snapshot's lazily built name index (the same path fuzz oracles
    // take through StatSnapshot::getOr).
    KindleSystem sys{KindleConfig{}};
    const statistics::StatSnapshot snap = sys.snapshotStats();
    const std::string path = "kernel.dramAlloc.framesInUse";
    double v = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(v += snap.getOr(path, 0));
}
BENCHMARK(BM_ChannelLookup);

} // namespace

BENCHMARK_MAIN();
