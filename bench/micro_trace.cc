/**
 * @file
 * google-benchmark microbenchmarks of the tracing substrate: the
 * *host-side* cost of an instrumentation probe in each gating state.
 *
 * The interesting number is the disabled cost — probes are compiled
 * into every protocol hot path, so a run that never exports a trace
 * must not pay for them:
 *
 *   - NoSink:    no TraceSink registered on the thread (bench/test
 *                code outside a KindleSystem) — one thread-local load.
 *   - MaskedOff: sink present but the category mask excludes the
 *                probe (--trace-flags narrowing).
 *   - RingOnly:  flight recorder armed, span export off — the default
 *                KindleSystem configuration.
 *   - FullSpans: span collection for Chrome export (keeps every
 *                record; the unbounded-growth mode).
 *
 * The compile-time kill switch is one level below all of these:
 * configuring with -DKINDLE_TRACE=0 turns every macro into ((void)0),
 * so the probes (and their argument evaluation) vanish from the
 * binary entirely — compare micro_mem numbers across the two builds
 * to verify the zero-overhead claim (see EXPERIMENTS.md).
 */

#include <benchmark/benchmark.h>

#include "trace/trace.hh"

namespace
{

using namespace kindle;

trace::TraceParams
paramsFor(bool spans, std::size_t ring, std::string categories = {})
{
    trace::TraceParams p;
    p.spans = spans;
    p.ringDepth = ring;
    p.categories = std::move(categories);
    return p;
}

void
BM_SpanNoSink(benchmark::State &state)
{
    // No SinkScope: the macro resolves currentSink() to null and does
    // nothing else.  This is the cost paid by every probe in code not
    // running under a KindleSystem.
    Tick clock = 0;
    for (auto _ : state) {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "bench.span");
        benchmark::DoNotOptimize(++clock);
    }
}
BENCHMARK(BM_SpanNoSink);

void
BM_SpanMaskedOff(benchmark::State &state)
{
    Tick clock = 0;
    // Sink captures only "redo": the checkpoint-category probe is
    // rejected by the mask after the thread-local load.
    trace::TraceSink sink(paramsFor(false, 512, "redo"),
                          [&clock] { return clock; });
    trace::SinkScope scope(&sink);
    for (auto _ : state) {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "bench.span");
        benchmark::DoNotOptimize(++clock);
    }
}
BENCHMARK(BM_SpanMaskedOff);

void
BM_SpanRingOnly(benchmark::State &state)
{
    Tick clock = 0;
    trace::TraceSink sink(paramsFor(false, 512),
                          [&clock] { return clock; });
    trace::SinkScope scope(&sink);
    for (auto _ : state) {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "bench.span");
        benchmark::DoNotOptimize(++clock);
    }
}
BENCHMARK(BM_SpanRingOnly);

void
BM_SpanFull(benchmark::State &state)
{
    Tick clock = 0;
    // Fresh sink per batch so the record vector's growth amortizes
    // the way it does in a real bounded run.
    for (auto _ : state) {
        state.PauseTiming();
        trace::TraceSink sink(paramsFor(true, 512),
                              [&clock] { return clock; });
        trace::SinkScope scope(&sink);
        state.ResumeTiming();
        for (int i = 0; i < 1024; ++i) {
            KINDLE_TRACE_SPAN(checkpoint, ckpt, "bench.span");
            benchmark::DoNotOptimize(++clock);
        }
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SpanFull);

void
BM_SpanArgsMaskedOff(benchmark::State &state)
{
    Tick clock = 0;
    trace::TraceSink sink(paramsFor(false, 512, "redo"),
                          [&clock] { return clock; });
    trace::SinkScope scope(&sink);
    std::uint64_t pid = 0;
    // The payload csprintf must not run when the span is rejected.
    for (auto _ : state) {
        KINDLE_TRACE_SPAN_ARGS(checkpoint, ckpt, "bench.span",
                               "pid={}", ++pid);
        benchmark::DoNotOptimize(++clock);
    }
}
BENCHMARK(BM_SpanArgsMaskedOff);

void
BM_InstantRingOnly(benchmark::State &state)
{
    Tick clock = 0;
    trace::TraceSink sink(paramsFor(false, 512),
                          [&clock] { return clock; });
    trace::SinkScope scope(&sink);
    for (auto _ : state) {
        KINDLE_TRACE_INSTANT(fault, fault, "bench.instant");
        benchmark::DoNotOptimize(++clock);
    }
}
BENCHMARK(BM_InstantRingOnly);

} // namespace

BENCHMARK_MAIN();
