/**
 * @file
 * Extension study: the Kindle prototype fixes HSCC's fetch threshold
 * to static values ("we have not incorporated dynamic fetch threshold
 * adjustment").  This ablation turns the dynamic controller on and
 * compares it against static thresholds: starting aggressive (Th-5),
 * the controller backs off when candidates flood the 512-page pool,
 * landing between the static extremes in both migration volume and
 * OS overhead.
 */

#include "bench_util.hh"
#include "hscc_common.hh"

namespace
{

using namespace kindle;
using namespace kindle::bench;

HsccRunResult
runDynamic(prep::Benchmark bench, std::uint64_t ops)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    hscc::HsccParams params;
    params.fetchThreshold = 5;
    params.dynamicThreshold = true;
    cfg.hscc = params;

    KindleSystem sys(cfg);
    prep::WorkloadParams wp;
    wp.ops = ops;
    wp.scaleDown = 8;
    auto trace = prep::makeWorkload(bench, wp);
    prep::ReplayConfig rc;
    rc.computePerRecord = 300;
    auto program = std::make_unique<prep::ReplayStream>(*trace, rc);

    HsccRunResult result;
    result.elapsed =
        sys.run(std::move(program), prep::benchmarkName(bench));
    result.pagesMigrated = sys.hsccEngine()->pagesMigrated();
    result.selectionTicks = sys.hsccEngine()->selectionTicks();
    result.copyTicks = sys.hsccEngine()->copyTicks();
    result.migrationTicks = sys.hsccEngine()->migrationTicks();
    return result;
}

} // namespace

int
main()
{
    const std::uint64_t ops = prep::opsFromEnv(1000000);
    printHeader("Ablation (HSCC dynamic threshold)",
                "Static Th-5 / Th-50 vs dynamic controller "
                "(KINDLE_OPS=" +
                    std::to_string(ops) + ")");

    TablePrinter table({"Benchmark", "Config", "Pages migrated",
                        "OS migration (ms)", "Exec (ms)"});
    for (const auto bench :
         {prep::Benchmark::ycsbMem, prep::Benchmark::g500Sssp}) {
        const auto th5 = runHsccWorkload(bench, ops, 5, true);
        const auto th50 = runHsccWorkload(bench, ops, 50, true);
        const auto dyn = runDynamic(bench, ops);
        table.addRow({prep::benchmarkName(bench), "static Th-5",
                      std::to_string(th5.pagesMigrated),
                      ms(th5.migrationTicks), ms(th5.elapsed)});
        table.addRow({prep::benchmarkName(bench), "static Th-50",
                      std::to_string(th50.pagesMigrated),
                      ms(th50.migrationTicks), ms(th50.elapsed)});
        table.addRow({prep::benchmarkName(bench), "dynamic",
                      std::to_string(dyn.pagesMigrated),
                      ms(dyn.migrationTicks), ms(dyn.elapsed)});
    }
    table.print();
    std::printf("\nExpectation: the controller tempers Th-5's "
                "migration flood without giving up as much DRAM "
                "benefit as a blunt Th-50.\n");
    return 0;
}
