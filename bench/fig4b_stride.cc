/**
 * @file
 * Reproduces Figure 4b: ten 4 KiB MAP_NVM allocations placed at
 * 1 GiB / 2 MiB / 4 KiB strides (touching different page-table
 * levels), under 10 ms checkpointing with both page-table schemes.
 *
 * Paper shape: persistent slightly slower for the sparse 1 GiB and
 * 2 MiB strides (more table levels updated under consistency); for
 * the dense 4 KiB stride the persistent scheme wins.
 */

#include "bench_util.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace
{

using namespace kindle;

/** Access rounds extend the run across ~10 checkpoint intervals. */
constexpr unsigned accessRounds = 10000;

Tick
runOne(std::optional<persist::PtScheme> scheme, std::uint64_t stride)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    if (scheme)
        cfg.persistence =
            persist::PersistParams{*scheme, 10 * oneMs};
    KindleSystem sys(cfg);
    return sys.run(
        micro::strideAlloc(stride, 10, true, accessRounds),
        "stride");
}

} // namespace

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    printHeader("Figure 4b",
                "Stride allocation vs page-table scheme (10 x 4KiB "
                "pages)");

    TablePrinter table({"Stride", "Persistent (ms)", "Rebuild (ms)",
                        "Persist ovh (us)", "Rebuild ovh (us)",
                        "Ovh ratio"});
    for (const std::uint64_t stride :
         {oneGiB, 2 * oneMiB, 4 * oneKiB}) {
        const Tick baseline = runOne(std::nullopt, stride);
        const Tick persistent =
            runOne(persist::PtScheme::persistent, stride);
        const Tick rebuild =
            runOne(persist::PtScheme::rebuild, stride);
        const double p_ovh = ticksToUs(persistent - baseline);
        const double r_ovh = ticksToUs(rebuild - baseline);
        table.addRow({sizeToString(stride), ms(persistent),
                      ms(rebuild), fixed(p_ovh, 1), fixed(r_ovh, 1),
                      ratio(p_ovh / r_ovh)});
    }
    table.print();
    std::printf("\nPaper shape: persistent/rebuild > 1 for 1GiB and "
                "2MiB strides, < 1 for the 4KiB stride.\n");
    return 0;
}
