/**
 * @file
 * Reproduces Table III: execution time with periodic checkpointing
 * (10 ms) while a 512 MiB arena undergoes munmap+mmap churn of
 * 64/128/256 MiB, twice, followed by reads of the reallocated region.
 *
 * Paper shape: both schemes get more expensive with churn size
 * (~1.6x for persistent and ~1.5x for rebuild from 64→256 MiB), with
 * rebuild paying far more in absolute terms at a 10 ms interval.
 */

#include "bench_util.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace
{

using namespace kindle;

Tick
runOne(persist::PtScheme scheme, std::uint64_t arena,
       std::uint64_t churn)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    cfg.persistence = persist::PersistParams{scheme, 10 * oneMs};
    KindleSystem sys(cfg);
    return sys.run(micro::churnBench(arena, churn, 2, 1, true),
                   "churn");
}

} // namespace

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t scale = scaleFromEnv();
    const std::uint64_t arena = 512 * oneMiB / scale;
    printHeader("Table III",
                "VMA modification (munmap+mmap) cost, arena " +
                    sizeToString(arena));

    TablePrinter table({"Alloc/Free size", "Persistent (ms)",
                        "Rebuild (ms)"});
    for (const std::uint64_t mib : {64, 128, 256}) {
        const std::uint64_t churn = mib * oneMiB / scale;
        const Tick persistent =
            runOne(persist::PtScheme::persistent, arena, churn);
        const Tick rebuild =
            runOne(persist::PtScheme::rebuild, arena, churn);
        table.addRow(
            {sizeToString(churn), ms(persistent), ms(rebuild)});
    }
    table.print();
    std::printf("\nPaper shape: both schemes grow with churn size "
                "(~1.6x persistent, ~1.5x rebuild from smallest to "
                "largest).\n");
    return 0;
}
