/**
 * @file
 * Memory-pressure fuzz harness: exhaustion storms meet crash points.
 *
 * The companion of fuzz_crash_recovery for the pressure subsystem.
 * Every run arms a fault::PressurePlan — shrunken DRAM/NVM zones,
 * seeded transient allocation failures, watermark reclaim, redo-log
 * backpressure and the OOM killer — and drives an allocation storm
 * (a fat DRAM hog, a churning foreground, optional per-core
 * background mutators) that exhausts both zones repeatedly.  The
 * machine must survive on graceful paths only: degraded MAP_NVM
 * faults, demotions, early checkpoints, OOM kills, ENOMEM-killed
 * processes — never a kindle_fatal from an allocation path (any abort
 * fails the sweep by construction).
 *
 * Like the crash fuzzer it first takes a *golden run* (unarmed
 * injector) to learn site hit counts, the durable-write budget and
 * the committed-state oracle, then sweeps a site × occurrence grid —
 * which under pressure includes the new sites reclaim.pre_demote,
 * oom.pre_kill and redo.pre_truncate — padded with seeded random
 * Nth-durable-write points.  Each point audits:
 *
 *   - oracle: every recovered process resumes from a committed state,
 *   - recovery idempotence: the recovered image is crashed again
 *     without running and must recover to the *same* process states
 *     (this is the double-recovery proof for the new crash sites),
 *   - liveness: the twice-recovered machine still checkpoints.
 *
 * Before any sweep (unless --filter narrows the run) the harness
 * self-checks the zero-cost contract: two unpressured default runs
 * must produce byte-identical stat snapshots containing none of the
 * pressure stats (no reclaim group, no watermark gauges, no OOM or
 * retry counters, no controller stall histograms).
 *
 * Flags (besides the common runner set):
 *   --points N        crash points per scheme (KINDLE_FUZZ_POINTS)
 *   --seed N          sweep seed (KINDLE_FUZZ_SEED)
 *   --cores N         SMP machine with N-1 background mutators
 *   --media-faults    arm the NVM media error model + scrubber too
 *   --pressure-dram N DRAM zone cap in frames (default 160)
 *   --pressure-nvm N  NVM zone cap in frames (default 384)
 *   --pressure-fail R injected transient alloc-failure rate (0.02)
 *   --no-oom          disable the OOM killer (ENOMEM kills only)
 *   --filter STR      run only points whose name contains STR
 *
 * Deterministic: a fixed seed reproduces the same sweep and
 * byte-identical BENCH_fuzz_pressure.json (wall-clock omitted).
 *
 * The golden-run / point-grid / divergence-dump machinery itself
 * lives in fuzz_common.hh, shared with fuzz_crash_recovery and
 * fuzz_core_loss.
 */

#include <cstring>
#include <utility>

#include "bench_util.hh"
#include "fuzz_common.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "runner/options.hh"
#include "runner/report.hh"

namespace
{

using namespace kindle;
using namespace kindle::bench;

struct FuzzOptions
{
    fuzz::CommonFuzzOptions common;
    bool oom = true;
    std::uint64_t pressureDram = 160;
    std::uint64_t pressureNvm = 96;
    double pressureFail = 0.02;
};

constexpr Addr hogBase = micro::scriptBase + Addr(0x8000) * pageSize;

/** The DRAM glutton: the biggest RSS in the house, so it is the
 *  deterministic first OOM victim once the storm peaks. */
std::unique_ptr<cpu::OpStream>
makeHog()
{
    micro::ScriptBuilder b;
    // Progressive growth, not an up-front splash: the hog ramps in
    // lock-step with the foreground churner so their resident sets
    // peak *together* — 200 hog pages + the churner's ~160 exceed the
    // shrunken DRAM zone plus the entire NVM relief valve, forcing
    // the allocator through demotion into the OOM killer no matter
    // how the scheduler interleaves the two.
    for (int r = 0; r < 10; ++r) {
        b.compute(300000);
        const Addr chunk = hogBase + Addr(r) * 20 * pageSize;
        b.mmapFixed(chunk, 20 * pageSize, false);
        b.touchPages(chunk, 20 * pageSize);
    }
    b.exit();
    return b.build();
}

/** The churning foreground: NVM and DRAM mappings alternating, with
 *  enough map/unmap traffic to keep the redo log and both allocators
 *  under sustained pressure across several checkpoint intervals. */
std::unique_ptr<cpu::OpStream>
makeStorm()
{
    micro::ScriptBuilder b;
    b.mmapFixed(micro::scriptBase, 32 * pageSize, true);
    b.touchPages(micro::scriptBase, 32 * pageSize);
    for (int r = 0; r < 10; ++r) {
        b.compute(250000);
        const Addr extra =
            micro::scriptBase + (64 + Addr(r) * 24) * pageSize;
        // DRAM extras, mostly kept mapped: the foreground's resident
        // set grows past the shrunken zone while the hog sits on its
        // own hundred frames — exhaustion is guaranteed, and relief
        // must come from demotion and, eventually, the OOM killer.
        b.mmapFixed(extra, 16 * pageSize, false);
        b.touchPages(extra, 16 * pageSize);
        if (r % 4 == 3)
            b.munmap(extra, 16 * pageSize);
    }
    b.exit();
    return b.build();
}

fault::PressurePlan
pressurePlan(const FuzzOptions &fz)
{
    fault::PressurePlan pp;
    pp.dramZoneFrames = fz.pressureDram;
    pp.nvmZoneFrames = fz.pressureNvm;
    pp.allocFailRate = fz.pressureFail;
    pp.seed = 7;  // fixed: golden run and points share one regime
    pp.oomEnabled = fz.oom;
    // Above the demotion stall floor (the retirement reserve), so the
    // patrol actually observes "below low" while the zone saturates
    // and exercises the early-checkpoint relief path.
    pp.nvmLowWatermark = 12;
    pp.nvmHighWatermark = 24;
    return pp;
}

KindleConfig
baseConfig(persist::PtScheme scheme, const FuzzOptions &fz)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 256 * oneMiB;
    cfg.numCores = fz.common.cores;
    // A short quantum keeps the hog and the churner genuinely
    // time-shared, so their resident sets overlap at peak — with the
    // default 1ms slice they run in near-sequential chunks and the
    // zone never sees combined demand.
    cfg.kernel.timeslice = 50 * oneUs;
    cfg.persistence = persist::PersistParams{scheme, oneMs / 4};
    cfg.pressure = pressurePlan(fz);
    if (fz.common.mediaFaults) {
        cfg.fault = fault::FaultPlan{};  // unarmed: media config only
        cfg.fault->media = fuzz::mediaPlan();
        cfg.scrub = mem::ScrubParams{oneMs / 4, 16 * oneMiB};
    }
    return cfg;
}

void
spawnBackground(KindleSystem &sys, unsigned cores)
{
    for (unsigned i = 1; i < cores; ++i) {
        micro::ScriptBuilder b;
        const Addr base =
            micro::scriptBase + Addr(0x1000) * pageSize * i;
        // DRAM-backed on purpose, and as long-lived as the hog and
        // the churner: with more runnable processes than cores, some
        // process is always off-core — a demotion victim with real
        // DRAM leaves.  Short-lived mutators would exit before the
        // storm peaks and leave every survivor pinned to a core,
        // starving the reclaim engine of victims entirely.
        b.mmapFixed(base, 16 * pageSize, false);
        b.touchPages(base, 16 * pageSize);
        for (int r = 0; r < 20; ++r) {
            b.compute(200000 + 50000 * static_cast<int>(i));
            b.touchPages(base, 8 * pageSize);
        }
        b.exit();
        sys.kernel().spawn(b.build(), "bg" + std::to_string(i));
    }
}

fuzz::Golden
goldenRun(persist::PtScheme scheme, const FuzzOptions &fz)
{
    fuzz::Golden g;
    KindleSystem sys(baseConfig(scheme, fz));
    fuzz::observeCommitted(sys, g);
    sys.kernel().spawn(makeHog(), "hog");
    spawnBackground(sys, fz.common.cores);
    sys.run(makeStorm(), "storm");
    g.hits = sys.injector().allHits();
    g.durableWrites = sys.injector().durableWrites();
    if (std::getenv("KINDLE_FUZZ_DEBUG")) {
        const auto snap = sys.snapshotStats();
        for (const auto &[path, value] : snap.entries()) {
            if (path.find("kernel.") == 0 &&
                path.find("kernel.pt") != 0) {
                std::printf("  %s = %g\n", path.c_str(), value);
            }
        }
        std::fflush(stdout);
    }
    return g;
}

runner::Scenario
makeScenario(persist::PtScheme scheme, const fuzz::Point &point,
             const fuzz::Golden &golden, const FuzzOptions &fz)
{
    const std::string scheme_name = persist::ptSchemeName(scheme);
    runner::Scenario sc;
    sc.name = scheme_name + "/" + point.label;
    sc.axes = {{"scheme", scheme_name},
               {"site", point.plan.site.empty() ? "durable_write"
                                                : point.plan.site},
               {"trigger", point.label}};
    sc.config = baseConfig(scheme, fz);
    const auto media = sc.config.fault ? sc.config.fault->media
                                       : fault::MediaFaultPlan{};
    sc.config.fault = point.plan;
    sc.config.fault->media = media;
    sc.drive = [oracle = &golden.committed, name = sc.name,
                cores = fz.common.cores](KindleSystem &sys,
                                         statistics::StatSnapshot
                                             &extra) -> Tick {
        const Tick t0 = sys.now();
        bool fired = false;
        try {
            sys.kernel().spawn(makeHog(), "hog");
            spawnBackground(sys, cores);
            sys.run(makeStorm(), "storm");
        } catch (const fault::PowerLoss &) {
            fired = true;
        }
        sys.crash();
        const persist::RecoveryReport report = sys.reboot();

        // Audit 1: every recovered process resumes from a state the
        // golden run committed.
        std::uint64_t recovered = 0;
        std::uint64_t divergences = 0;
        const fuzz::RecoveredSet first = fuzz::recoveredSet(sys);
        for (const auto &[pid, rip, mapped] : first) {
            (void)pid;
            ++recovered;
            if (!oracle->count({rip, mapped}))
                ++divergences;
        }
        if (divergences > 0) {
            fuzz::dumpDivergence(sys, "FLIGHT_pressure.", name,
                                 "oracle-divergence");
        }

        // Audit 2: recovery idempotence.  Crash the freshly recovered
        // machine before it executes anything and recover again: the
        // second pass must land on exactly the same process states.
        sys.crash();
        const persist::RecoveryReport report2 = sys.reboot();
        const fuzz::RecoveredSet second = fuzz::recoveredSet(sys);
        const bool idempotent = first == second;
        if (!idempotent) {
            fuzz::dumpDivergence(sys, "FLIGHT_pressure.", name,
                                 "recovery-not-idempotent");
        }

        // Audit 3: the survivor still checkpoints.
        bool post_ok = true;
        try {
            sys.persistence()->checkpointNow();
        } catch (const std::exception &) {
            post_ok = false;
        }

        const bool failed = divergences > 0 || !idempotent || !post_ok;
        const bool clean = !failed && report.clean();
        const auto hits = sys.injector().allHits();
        const auto hitCount = [&](const char *site) -> double {
            const auto it = hits.find(site);
            return it == hits.end()
                       ? 0.0
                       : static_cast<double>(it->second);
        };
        extra.set("fuzz.fired", fired ? 1 : 0);
        extra.set("fuzz.recovered", static_cast<double>(recovered));
        extra.set("fuzz.quarantined",
                  static_cast<double>(report.processesQuarantined));
        extra.set("fuzz.recoveryErrors",
                  static_cast<double>(report.errors.size()));
        extra.set("fuzz.oracleDivergences",
                  static_cast<double>(divergences));
        extra.set("fuzz.idempotenceBreaks", idempotent ? 0 : 1);
        extra.set("fuzz.rerecovered",
                  static_cast<double>(report2.processesRecovered));
        extra.set("fuzz.demoteSiteHits",
                  hitCount("reclaim.pre_demote"));
        extra.set("fuzz.oomSiteHits", hitCount("oom.pre_kill"));
        extra.set("fuzz.truncateSiteHits",
                  hitCount("redo.pre_truncate"));
        extra.set("fuzz.clean", clean ? 1 : 0);
        extra.set("fuzz.salvaged", (!clean && !failed) ? 1 : 0);
        extra.set("fuzz.failed", failed ? 1 : 0);
        return sys.now() - t0;
    };
    return sc;
}

/**
 * The zero-cost contract: an unpressured default machine must produce
 * byte-identical stats run to run, and none of the pressure stats may
 * exist in its tree (they register lazily, on first pressure event).
 */
void
selfCheckUnpressured()
{
    const auto once = [] {
        KindleConfig cfg;
        cfg.memory.dramBytes = 128 * oneMiB;
        cfg.memory.nvmBytes = 256 * oneMiB;
        cfg.persistence =
            persist::PersistParams{persist::PtScheme::rebuild,
                                   oneMs / 4};
        KindleSystem sys(cfg);
        sys.run(makeStorm(), "plain");
        return sys.snapshotStats();
    };
    const auto s1 = once();
    const auto s2 = once();
    kindle_assert(s1 == s2,
                  "unpressured runs diverged — determinism broken");
    static const char *const forbidden[] = {
        "reclaim.",         "enomemFaults",     "allocRetries",
        "allocFailuresInjected", "oomKills",    "oomPagesFreed",
        "lowWatermark",     "highWatermark",    "exhaustedAllocs",
        "writeStalls",      "writeStallLatency", "earlyCheckpoints",
        "slotsCompacted",   "wrapDestroyed",
    };
    for (const auto &[path, value] : s1.entries()) {
        (void)value;
        for (const char *marker : forbidden) {
            kindle_assert(path.find(marker) == std::string::npos,
                          "pressure stat '{}' leaked into the "
                          "unpressured default tree", path);
        }
    }
    std::printf("self-check: unpressured default tree clean "
                "(%zu stats, byte-identical across runs)\n",
                s1.entries().size());
}

FuzzOptions
parseFuzzOptions(int argc, char **argv, std::vector<char *> &pass_argv)
{
    FuzzOptions fz;
    fz.common.points = fuzz::envCount("KINDLE_FUZZ_POINTS", 128);
    fz.common.seed = fuzz::envCount("KINDLE_FUZZ_SEED", 24680);
    pass_argv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (fuzz::parseCommonFuzzFlag(i, argc, argv, fz.common)) {
            continue;
        } else if (std::strcmp(argv[i], "--no-oom") == 0) {
            fz.oom = false;
        } else if (std::strcmp(argv[i], "--pressure-dram") == 0) {
            fz.pressureDram =
                fuzz::fuzzNumeric(i, argc, argv, "--pressure-dram");
        } else if (std::strcmp(argv[i], "--pressure-nvm") == 0) {
            fz.pressureNvm =
                fuzz::fuzzNumeric(i, argc, argv, "--pressure-nvm");
        } else if (std::strcmp(argv[i], "--pressure-fail") == 0) {
            if (i + 1 >= argc)
                kindle_fatal("--pressure-fail needs a value");
            fz.pressureFail = std::strtod(argv[++i], nullptr);
        } else {
            pass_argv.push_back(argv[i]);
        }
    }
    return fz;
}

/** Harness-local flags that must survive into a repro line. */
std::string
extraReproFlags(const FuzzOptions &fz)
{
    return fz.oom ? "" : " --no-oom";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace kindle::bench;

    std::vector<char *> pass_argv;
    const FuzzOptions fz = parseFuzzOptions(argc, argv, pass_argv);
    const auto opts = runner::parseOptions(
        static_cast<int>(pass_argv.size()), pass_argv.data());
    printHeader(
        "Memory-pressure fuzz",
        "exhaustion storms, " + std::to_string(fz.common.points) +
            " points/scheme, seed " + std::to_string(fz.common.seed) +
            ", cores " + std::to_string(fz.common.cores) +
            ", dram/nvm zones " + std::to_string(fz.pressureDram) +
            "/" + std::to_string(fz.pressureNvm) + " frames" +
            (fz.oom ? "" : ", oom off") +
            (fz.common.mediaFaults
                 ? ", media faults + scrubber armed" : ""));

    if (fz.common.filter.empty())
        selfCheckUnpressured();

    const std::vector<persist::PtScheme> schemes = {
        persist::PtScheme::rebuild, persist::PtScheme::persistent};

    runner::BenchReport report("fuzz_pressure", opts.jobs);
    report.omitWallClock();
    report.keepStatPrefixes({"fuzz.", "fault.", "recovery.",
                             "persist.checkpoints",
                             "persist.earlyCheckpoints",
                             "kernel.reclaim.", "kernel.oomKills",
                             "hybridMem.nvmMedia.", "scrubber.",
                             "kernel.badFrames."});

    TablePrinter table({"Scheme", "Points", "Fired", "Clean",
                        "Salvaged", "Failed", "IdemBreaks"});
    bool any_failed = false;

    for (const auto scheme : schemes) {
        const fuzz::Golden golden = goldenRun(scheme, fz);
        std::printf("golden[%s]: %llu durable writes, sites:",
                    persist::ptSchemeName(scheme),
                    static_cast<unsigned long long>(
                        golden.durableWrites));
        for (const auto &[site, hits] : golden.hits) {
            std::printf(" %s=%llu", site.c_str(),
                        static_cast<unsigned long long>(hits));
        }
        std::printf("\n");
        std::fflush(stdout);
        kindle_assert(!golden.committed.empty(),
                      "golden run took no checkpoints — workload or "
                      "interval mistuned");
        // The storm must actually engage the pressure machinery, or
        // the grid would silently stop covering the new sites.
        kindle_assert(golden.hits.count("reclaim.pre_demote"),
                      "golden run never demoted a page — pressure "
                      "plan mistuned");
        if (fz.oom) {
            kindle_assert(golden.hits.count("oom.pre_kill"),
                          "golden run never OOM-killed — pressure "
                          "plan mistuned");
        }
        const auto points =
            fuzz::makePoints(golden, fz.common.points, fz.common.seed);

        std::vector<runner::Scenario> scenarios;
        scenarios.reserve(points.size());
        for (const auto &p : points) {
            auto sc = makeScenario(scheme, p, golden, fz);
            if (!fz.common.filter.empty() &&
                sc.name.find(fz.common.filter) == std::string::npos) {
                continue;
            }
            scenarios.push_back(std::move(sc));
        }

        runner::SweepRunner pool(opts);
        const auto results = pool.run(scenarios);
        requireAllOk(results);
        report.add(results);

        std::uint64_t fired = 0, clean = 0, salvaged = 0, failed = 0;
        std::uint64_t idem_breaks = 0;
        for (const auto &r : results) {
            fired += static_cast<std::uint64_t>(
                r.stats.get("fuzz.fired"));
            clean += static_cast<std::uint64_t>(
                r.stats.get("fuzz.clean"));
            salvaged += static_cast<std::uint64_t>(
                r.stats.get("fuzz.salvaged"));
            failed += static_cast<std::uint64_t>(
                r.stats.get("fuzz.failed"));
            idem_breaks += static_cast<std::uint64_t>(
                r.stats.get("fuzz.idempotenceBreaks"));
            if (r.stats.get("fuzz.failed") > 0) {
                std::printf(
                    "FAILED %s\n  repro: %s\n", r.name.c_str(),
                    fuzz::reproCommand(argv[0], fz.common,
                                       extraReproFlags(fz), r.name)
                        .c_str());
            }
        }
        any_failed = any_failed || failed > 0;
        table.addRow({persist::ptSchemeName(scheme),
                      std::to_string(results.size()),
                      std::to_string(fired), std::to_string(clean),
                      std::to_string(salvaged),
                      std::to_string(failed),
                      std::to_string(idem_breaks)});
    }
    table.print();

    printJsonFooter(report.writeJsonFile(), opts.jobs);
    if (any_failed)
        kindle_fatal("pressure fuzz found divergent or "
                     "non-idempotent recoveries");
    return 0;
}
