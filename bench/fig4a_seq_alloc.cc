/**
 * @file
 * Reproduces Figure 4a: end-to-end execution time of the sequential
 * allocate-and-touch micro-benchmark under periodic context
 * checkpointing (10 ms interval), with the page table kept consistent
 * by the *rebuild* vs the *persistent* scheme.
 *
 * Paper shape: rebuild is slower at every size, with the gap growing
 * from ~2.4x (64 MiB) to ~74x (512 MiB).
 */

#include "bench_util.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace
{

using namespace kindle;

Tick
runOne(persist::PtScheme scheme, std::uint64_t bytes)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    cfg.persistence =
        persist::PersistParams{scheme, 10 * oneMs};
    KindleSystem sys(cfg);
    return sys.run(micro::seqAllocTouch(bytes, /*nvm=*/true), "seq");
}

} // namespace

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t scale = scaleFromEnv();
    printHeader("Figure 4a",
                "Sequential allocation/access vs page-table scheme "
                "(sizes / " +
                    std::to_string(scale) + ", KINDLE_SCALE)");

    TablePrinter table({"Alloc size", "Persistent (ms)",
                        "Rebuild (ms)", "Rebuild/Persistent"});
    for (const std::uint64_t mib : {64, 128, 256, 512}) {
        const std::uint64_t bytes = mib * oneMiB / scale;
        const Tick persistent =
            runOne(persist::PtScheme::persistent, bytes);
        const Tick rebuild = runOne(persist::PtScheme::rebuild, bytes);
        table.addRow({sizeToString(bytes), ms(persistent),
                      ms(rebuild),
                      ratio(static_cast<double>(rebuild) /
                            static_cast<double>(persistent))});
    }
    table.print();
    std::printf("\nPaper shape: rebuild slower everywhere; overhead "
                "grows with size (~2.4x at 64MiB to ~74x at 512MiB).\n");
    return 0;
}
