/**
 * @file
 * Reproduces Figure 4a: end-to-end execution time of the sequential
 * allocate-and-touch micro-benchmark under periodic context
 * checkpointing (10 ms interval), with the page table kept consistent
 * by the *rebuild* vs the *persistent* scheme.
 *
 * Paper shape: rebuild is slower at every size, with the gap growing
 * from ~2.4x (64 MiB) to ~74x (512 MiB).
 *
 * Runs on the sweep runner (--jobs/KINDLE_JOBS) and exports the
 * sweep, including per-point checkpoint accounting from the stat
 * snapshot, as BENCH_fig4a_seq_alloc.json.
 */

#include "bench_util.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "runner/options.hh"
#include "runner/report.hh"

namespace
{

using namespace kindle;

runner::Scenario
makeScenario(persist::PtScheme scheme, std::uint64_t bytes)
{
    const std::string scheme_name =
        scheme == persist::PtScheme::persistent ? "persistent"
                                                : "rebuild";
    runner::Scenario sc;
    sc.name = scheme_name + "/" + sizeToString(bytes);
    sc.axes = {{"scheme", scheme_name},
               {"alloc_bytes", std::to_string(bytes)}};
    sc.config.memory.dramBytes = 3 * oneGiB;
    sc.config.memory.nvmBytes = 2 * oneGiB;
    sc.config.persistence = persist::PersistParams{scheme, 10 * oneMs};
    sc.program = [bytes] {
        return micro::seqAllocTouch(bytes, /*nvm=*/true);
    };
    return sc;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace kindle;
    using namespace kindle::bench;

    const auto opts = runner::parseOptions(argc, argv);
    const std::uint64_t scale = scaleFromEnv();
    printHeader("Figure 4a",
                "Sequential allocation/access vs page-table scheme "
                "(sizes / " +
                    std::to_string(scale) + ", KINDLE_SCALE)");

    const std::vector<std::uint64_t> sizes = {64, 128, 256, 512};
    std::vector<runner::Scenario> scenarios;
    for (const std::uint64_t mib : sizes) {
        const std::uint64_t bytes = mib * oneMiB / scale;
        scenarios.push_back(
            makeScenario(persist::PtScheme::persistent, bytes));
        scenarios.push_back(
            makeScenario(persist::PtScheme::rebuild, bytes));
    }

    runner::SweepRunner pool(opts);
    const auto results = pool.run(scenarios);
    requireAllOk(results);

    // Checkpoint share comes from the stat snapshot (persist group),
    // not an ad-hoc counter: ckptTicks::sum / elapsed ticks.
    auto ckpt_share = [](const runner::RunResult &r) {
        const double ckpt = r.stats.getOr("persist.ckptTicks::sum", 0);
        return r.ticks
                   ? fixed(100.0 * ckpt /
                               static_cast<double>(r.ticks),
                           1) + "%"
                   : std::string("-");
    };

    TablePrinter table({"Alloc size", "Persistent (ms)",
                        "Rebuild (ms)", "Rebuild/Persistent",
                        "Rebuild ckpt share"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const auto &persistent = results[2 * i];
        const auto &rebuild = results[2 * i + 1];
        table.addRow(
            {sizeToString(sizes[i] * oneMiB / scale),
             ms(persistent.ticks), ms(rebuild.ticks),
             ratio(static_cast<double>(rebuild.ticks) /
                   static_cast<double>(persistent.ticks)),
             ckpt_share(rebuild)});
    }
    table.print();
    std::printf("\nPaper shape: rebuild slower everywhere; overhead "
                "grows with size (~2.4x at 64MiB to ~74x at 512MiB).\n");

    runner::BenchReport report("fig4a_seq_alloc", pool.jobs());
    report.add(results);
    printJsonFooter(report.writeJsonFile(), pool.jobs());
    return 0;
}
