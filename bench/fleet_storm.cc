/**
 * @file
 * Multi-tenant fleet storm: 1k+ tenant processes, checkpoint storms,
 * reclaim and the OOM killer, on one core and on four.
 *
 * Each sweep point boots a fleet-sized machine (saved-state slots for
 * every tenant, right-sized mapping lists, zombie reaping) and drives
 * the src/fleet workload: a population of YCSB-style key-value
 * tenants with Zipfian page popularity, skewed heap sizes and
 * open-loop Poisson/bursty think times, churning through the
 * crash-consistent exit/spawn paths while periodic checkpoints sweep
 * the whole population and the pressure machinery (reclaim demotions,
 * degraded MAP_NVM faults, OOM kills) works against the fleet's
 * aggregate demand.
 *
 * Flags (besides the common runner set — see --help):
 *   --tenants N     fleet size, default 1024 (KINDLE_FLEET_TENANTS)
 *   --churn N       replacement spawns       (KINDLE_FLEET_CHURN)
 *   --zipf THETA    key-popularity skew      (KINDLE_FLEET_ZIPF)
 *   --arrival A     poisson | bursty         (KINDLE_FLEET_ARRIVAL)
 *   --fleet-seed N  master seed              (KINDLE_FLEET_SEED)
 *   --requests N    requests per tenant      (KINDLE_FLEET_REQUESTS)
 *   --no-pressure   drop the pressure plan (pure checkpoint storm)
 *
 * Deterministic: the same seed produces byte-identical
 * BENCH_fleet_storm.json apart from the wall_ms fields (which the CI
 * perf gate consumes).  A built-in self-check re-runs a small fleet
 * twice and requires byte-identical stat snapshots before any sweep.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "runner/fleet_scenario.hh"
#include "runner/options.hh"
#include "runner/report.hh"
#include "runner/sweep_runner.hh"

namespace
{

using namespace kindle;
using namespace kindle::bench;

/**
 * The determinism contract: a churning fleet (spawns interleaved with
 * OOM kills and exits across scheduler epochs) must still be a pure
 * function of its seed.  Run a small fleet twice on two cores and
 * require identical stat snapshots and fleet counters.
 */
void
selfCheckDeterminism(const runner::FleetOptions &base)
{
    runner::FleetOptions small = base;
    small.params.tenants = 48;
    small.params.churnSpawns = 16;
    small.params.requestsPerTenant = 8;
    const auto once = [&] {
        runner::Scenario sc = runner::makeFleetScenario(
            "selfcheck", {}, small, 2);
        KindleSystem sys(sc.config);
        statistics::StatSnapshot extra;
        sc.drive(sys, extra);
        auto snap = sys.snapshotStats();
        for (const auto &[path, value] : extra.entries())
            snap.set(path, value);
        return snap;
    };
    const auto s1 = once();
    const auto s2 = once();
    kindle_assert(s1 == s2,
                  "fleet runs diverged — churn determinism broken");
    std::printf("self-check: churning fleet deterministic "
                "(%zu stats, byte-identical across runs)\n",
                s1.entries().size());
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<char *> pass_argv;
    runner::FleetOptions fo =
        runner::parseFleetOptions(argc, argv, pass_argv);
    const auto opts = runner::parseOptions(
        static_cast<int>(pass_argv.size()), pass_argv.data());

    printHeader(
        "Fleet storm",
        std::to_string(fo.params.tenants) + " tenants, churn " +
            std::to_string(fo.params.churnSpawns) + ", zipf " +
            std::to_string(fo.params.zipfTheta) + ", " +
            fleet::arrivalName(fo.params.arrival) + " arrivals" +
            (fo.pressure ? ", pressure + OOM armed" : ""));

    selfCheckDeterminism(fo);

    // The scalability axis of the paper's multiprogrammed story: the
    // same fleet time-shared on one core and spread over four.
    std::vector<unsigned> core_counts = {1, 4};
    if (opts.cores != 1 && opts.cores != 4)
        core_counts.push_back(opts.cores);

    std::vector<runner::Scenario> scenarios;
    for (unsigned cores : core_counts) {
        runner::Axes axes = {
            {"cores", std::to_string(cores)},
            {"tenants", std::to_string(fo.params.tenants)},
            {"churn", std::to_string(fo.params.churnSpawns)},
            {"arrival", fleet::arrivalName(fo.params.arrival)},
        };
        scenarios.push_back(runner::makeFleetScenario(
            "c" + std::to_string(cores), std::move(axes), fo, cores));
    }

    runner::SweepRunner pool(opts);
    const auto results = pool.run(scenarios);
    requireAllOk(results);

    runner::BenchReport report("fleet_storm", opts.jobs);
    if (std::getenv("KINDLE_FLEET_ALLSTATS")) {
        report.keepStatPrefixes({""});  // debugging: keep everything
    } else {
        report.keepStatPrefixes(
            {"fleet.", "kernel.oomKills", "kernel.oomPagesFreed",
             "kernel.enomemFaults", "kernel.reclaim.",
             "kernel.nvmDegradedAllocs", "kernel.contextSwitches",
             "kernel.dramAlloc.", "kernel.nvmAlloc.",
             "persist.checkpoints", "persist.earlyCheckpoints",
             "persist.cleanSkips", "persist.slotsCompacted", "prof."});
    }
    report.add(results);

    TablePrinter table({"Cores", "Spawned", "Churn", "PeakLive",
                        "Requests", "Ckpts", "OomKills", "Demotions"});
    for (const auto &r : results) {
        // getOr: reclaim/OOM stats register lazily and persistence
        // may be off, so absent paths read as zero here.
        const auto stat = [&](const char *path) {
            return static_cast<std::uint64_t>(r.stats.getOr(path, 0));
        };
        table.addRow({r.name,
                      std::to_string(stat("fleet.spawned")),
                      std::to_string(stat("fleet.churnSpawns")),
                      std::to_string(stat("fleet.peakLive")),
                      std::to_string(stat("fleet.requests")),
                      std::to_string(stat("persist.checkpoints")),
                      std::to_string(stat("kernel.oomKills")),
                      std::to_string(
                          stat("kernel.reclaim.pagesDemoted"))});
    }
    table.print();

    printJsonFooter(report.writeJsonFile(), opts.jobs);
    return 0;
}
