/**
 * @file
 * Shared plumbing for the golden-run fuzz harnesses.
 *
 * Every fuzz binary (crash recovery, memory pressure, core loss)
 * follows the same recipe: take a *golden run* with an unarmed
 * (observe-only) injector to learn site hit counts, the durable-write
 * budget and the committed-state oracle; generate a deterministic
 * site × occurrence grid padded with seeded-random Nth-durable-write
 * points; run every point with an armed FaultPlan; audit the recovered
 * machine against the oracle; and on failure leave a flight-recorder
 * dump plus a one-line repro command behind.
 *
 * This header holds the pieces that recipe shares — the oracle types,
 * the committed-state observer, point generation, divergence dumps,
 * the common flag set and the repro-line builder — so the harnesses
 * differ only in their workloads, their extra knobs and their audits.
 *
 * The audits and tripwires read the per-point stat snapshots through
 * StatSnapshot::get()/getOr(), which resolve paths through the
 * snapshot's lazily built O(1) name index — hundreds of sweep points
 * times dozens of lookups stays cheap, and the telemetry sampler's
 * per-sample channel extraction rides the same path.
 */

#ifndef KINDLE_BENCH_FUZZ_COMMON_HH
#define KINDLE_BENCH_FUZZ_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "base/rand.hh"
#include "base/random.hh"
#include "kindle/kindle.hh"

namespace kindle::bench::fuzz
{

/** Committed states a recovered process may legally resume from. */
using Oracle = std::set<std::pair<std::uint64_t, std::uint64_t>>;

/** Per-process recovered state, for the idempotence comparison. */
using RecoveredSet =
    std::set<std::tuple<Pid, std::uint64_t, std::uint64_t>>;

/** What a golden run learns about the crash-point space. */
struct Golden
{
    std::map<std::string, std::uint64_t> hits;
    std::uint64_t durableWrites = 0;
    Oracle committed;
};

inline std::uint64_t
envCount(const char *name, std::uint64_t fallback)
{
    if (const char *env = std::getenv(name)) {
        const auto v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return fallback;
}

/** The media plan shared by golden run and every crash point: the
 *  oracle is only meaningful if both run over the same medium. */
inline fault::MediaFaultPlan
mediaPlan()
{
    fault::MediaFaultPlan media;
    media.bitFlipRate = 1e-3;  // per line write; SECDED-correctable
    media.seed = 99;           // fixed: independent of the sweep seed
    return media;
}

/** The committed (rip, mappedBytes) of @p proc — the exact register
 *  source checkpointProcess() serializes. */
inline std::pair<std::uint64_t, std::uint64_t>
committedState(KindleSystem &sys, const os::Process &proc)
{
    return {sys.kernel().contextOf(proc).rip,
            proc.aspace.mappedBytes()};
}

/** Hook the injector so every committed checkpoint records the live
 *  process states into @p g's oracle.  Both references must outlive
 *  the run. */
inline void
observeCommitted(KindleSystem &sys, Golden &g)
{
    sys.injector().setObserver(
        [&sys, &g](const std::string &name, std::uint64_t) {
            if (name != "ckpt.after_commit")
                return;
            for (const auto &proc : sys.kernel().processes()) {
                if (proc->state == os::ProcState::zombie)
                    continue;
                g.committed.insert(committedState(sys, *proc));
            }
        });
}

/** The (pid, rip, mappedBytes) of every restored process — compared
 *  across a second crash/reboot for the idempotence audit. */
inline RecoveredSet
recoveredSet(KindleSystem &sys)
{
    RecoveredSet set;
    for (const auto &proc : sys.kernel().processes()) {
        if (!proc->restored)
            continue;
        set.insert({proc->pid, proc->context.rip,
                    proc->aspace.mappedBytes()});
    }
    return set;
}

/** One crash point of a sweep. */
struct Point
{
    std::string label;
    fault::FaultPlan plan;
};

/**
 * Crash points: a site × occurrence grid first (every site the golden
 * run hit, occurrence levels round-robin so scarce sites are fully
 * covered before frequent ones repeat), then seeded-random
 * Nth-durable-write points up to @p total.  Deterministic in
 * (@p g, @p total, @p seed): a point's plan is seeded by its index, so
 * it is identical whether it runs inside the full sweep or alone
 * under --filter.
 */
inline std::vector<Point>
makePoints(const Golden &g, std::uint64_t total, std::uint64_t seed)
{
    std::vector<Point> pts;
    const std::uint64_t grid_target = total * 3 / 5;
    for (std::uint64_t occ = 1; pts.size() < grid_target; ++occ) {
        bool any = false;
        for (const auto &[site, hits] : g.hits) {
            if (hits < occ)
                continue;
            any = true;
            Point p;
            p.label = site + "#" + std::to_string(occ);
            p.plan.site = site;
            p.plan.occurrence = occ;
            // Substream derivation, not `seed + index`: adjacent
            // xorshift64* states are correlated, splitmix64-derived
            // ones are not (base/rand.hh).
            p.plan.seed = rand::deriveSeed(seed, pts.size());
            pts.push_back(std::move(p));
            if (pts.size() >= grid_target)
                break;
        }
        if (!any)
            break;
    }
    Random rng(seed);
    while (pts.size() < total) {
        Point p;
        p.plan.atNthDurableWrite = 1 + rng.uniform(g.durableWrites);
        p.plan.seed = rand::deriveSeed(seed, pts.size());
        p.label = "durable_write#" +
                  std::to_string(p.plan.atNthDurableWrite);
        pts.push_back(std::move(p));
    }
    return pts;
}

/**
 * Write the flight recorder for a diverged point.  The dump goes to
 * the path the --flight-out routing configured for this system, or to
 * @p prefix<point>.json in the working directory as a fallback — a
 * divergence must always leave its timeline behind.
 */
inline void
dumpDivergence(KindleSystem &sys, const char *prefix,
               const std::string &point_name, const char *reason)
{
    std::string path = sys.traceSink().params().flightDumpPath;
    if (path.empty()) {
        std::string safe = point_name;
        for (char &c : safe) {
            if (c == '/')
                c = '.';
        }
        path = std::string(prefix) + safe + ".json";
    }
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write flight dump to %s\n",
                     path.c_str());
        return;
    }
    sys.dumpFlightRecorder(out, reason);
    std::printf("flight recorder: %s\n", path.c_str());
}

/** The flags every fuzz harness shares.  Harness-local knobs stay in
 *  the harness; this is only the common subset. */
struct CommonFuzzOptions
{
    std::uint64_t points = 128;
    std::uint64_t seed = 0;
    unsigned cores = 1;
    bool mediaFaults = false;
    std::string filter;
};

/** "--flag V" value for a harness-local parse loop; fatal when the
 *  value is missing. */
inline std::uint64_t
fuzzNumeric(int &i, int argc, char **argv, const char *flag)
{
    if (i + 1 >= argc)
        kindle_fatal("{} needs a value", flag);
    return std::strtoull(argv[++i], nullptr, 10);
}

/**
 * Consume one common fuzz flag at @p i (advancing it past any value).
 * Returns false when argv[i] is not a common flag — the caller then
 * tries its own flags and finally defers to the runner parser.
 */
inline bool
parseCommonFuzzFlag(int &i, int argc, char **argv,
                    CommonFuzzOptions &fz)
{
    if (std::strcmp(argv[i], "--points") == 0) {
        fz.points = fuzzNumeric(i, argc, argv, "--points");
        if (fz.points == 0)
            kindle_fatal("--points must be positive");
        return true;
    }
    if (std::strcmp(argv[i], "--seed") == 0) {
        fz.seed = fuzzNumeric(i, argc, argv, "--seed");
        return true;
    }
    if (std::strcmp(argv[i], "--cores") == 0) {
        fz.cores = static_cast<unsigned>(
            fuzzNumeric(i, argc, argv, "--cores"));
        if (fz.cores == 0 || fz.cores > 32)
            kindle_fatal("--cores must be in 1..32");
        return true;
    }
    if (std::strcmp(argv[i], "--media-faults") == 0) {
        fz.mediaFaults = true;
        return true;
    }
    if (std::strcmp(argv[i], "--filter") == 0) {
        if (i + 1 >= argc)
            kindle_fatal("--filter needs a value");
        fz.filter = argv[++i];
        return true;
    }
    return false;
}

/**
 * The exact command line that re-runs one point alone.
 * @p extra_flags carries the harness-local flags ("--no-oom", ...)
 * that must survive into the repro, already joined and space-led (or
 * empty).
 */
inline std::string
reproCommand(const char *argv0, const CommonFuzzOptions &fz,
             const std::string &extra_flags,
             const std::string &point_name)
{
    std::string cmd = argv0;
    cmd += " --points " + std::to_string(fz.points);
    cmd += " --seed " + std::to_string(fz.seed);
    if (fz.cores > 1)
        cmd += " --cores " + std::to_string(fz.cores);
    if (fz.mediaFaults)
        cmd += " --media-faults";
    cmd += extra_flags;
    cmd += " --filter '" + point_name + "' --jobs 1";
    return cmd;
}

} // namespace kindle::bench::fuzz

#endif // KINDLE_BENCH_FUZZ_COMMON_HH
