/**
 * @file
 * Shared harness for the SSP studies (Figure 5 and the consolidation
 * ablation): replay one of the Table II workloads inside a failure
 * atomic section with a given SSP configuration and report end-to-end
 * execution time.
 */

#ifndef KINDLE_BENCH_SSP_COMMON_HH
#define KINDLE_BENCH_SSP_COMMON_HH

#include <optional>

#include "kindle/kindle.hh"
#include "prep/replay.hh"
#include "prep/workloads.hh"
#include "runner/scenario.hh"

namespace kindle::bench
{

struct SspRunResult
{
    Tick elapsed = 0;
    std::uint64_t intervalCommits = 0;
    std::uint64_t linesFlushed = 0;
    std::uint64_t consolidations = 0;
};

/**
 * Run @p bench with @p ops trace records inside a FASE.
 * @param ssp_params nullopt = no-consistency baseline.
 */
inline SspRunResult
runSspWorkload(prep::Benchmark bench, std::uint64_t ops,
               std::optional<ssp::SspParams> ssp_params)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    cfg.ssp = ssp_params;

    KindleSystem sys(cfg);

    prep::WorkloadParams wp;
    wp.ops = ops;
    wp.scaleDown = 8;  // keep trace footprints inside the NVM pool
    auto trace = prep::makeWorkload(bench, wp);

    prep::ReplayConfig rc;
    rc.heapsInNvm = true;
    rc.stacksInNvm = true;
    rc.wrapInFase = true;
    auto program = std::make_unique<prep::ReplayStream>(*trace, rc);

    SspRunResult result;
    result.elapsed =
        sys.run(std::move(program), prep::benchmarkName(bench));
    if (sys.sspEngine()) {
        const auto &st = sys.sspEngine()->stats();
        result.intervalCommits =
            static_cast<std::uint64_t>(
                st.scalarValue("intervalCommits"));
        result.linesFlushed = static_cast<std::uint64_t>(
            st.scalarValue("linesFlushed"));
        result.consolidations = static_cast<std::uint64_t>(
            st.scalarValue("consolidations"));
    }
    return result;
}

/**
 * The same SSP study point packaged as a runner scenario: system
 * config plus a workload factory, safe to execute on any SweepRunner
 * worker thread.  @p ssp_params nullopt = no-consistency baseline.
 */
inline runner::Scenario
makeSspScenario(prep::Benchmark bench, std::uint64_t ops,
                std::optional<ssp::SspParams> ssp_params,
                std::string point_name, runner::Axes axes)
{
    runner::Scenario sc;
    sc.name = std::move(point_name);
    sc.axes = std::move(axes);
    sc.config.memory.dramBytes = 3 * oneGiB;
    sc.config.memory.nvmBytes = 2 * oneGiB;
    sc.config.ssp = ssp_params;
    sc.program = [bench, ops]() -> std::unique_ptr<cpu::OpStream> {
        prep::WorkloadParams wp;
        wp.ops = ops;
        wp.scaleDown = 8;  // keep trace footprints inside the NVM pool
        prep::ReplayConfig rc;
        rc.heapsInNvm = true;
        rc.stacksInNvm = true;
        rc.wrapInFase = true;
        return std::make_unique<prep::OwningReplayStream>(
            prep::makeWorkload(bench, wp), rc);
    };
    return sc;
}

} // namespace kindle::bench

#endif // KINDLE_BENCH_SSP_COMMON_HH
