/**
 * @file
 * google-benchmark microbenchmarks of the memory substrate: raw
 * DRAM/NVM device latencies and controller buffering behaviour.
 * These validate the Table I configuration rather than reproduce a
 * paper artifact; the reported "items" are simulated accesses and the
 * custom counters report *simulated* latency per access.
 */

#include <benchmark/benchmark.h>

#include <algorithm>

#include "mem/hybrid_memory.hh"

namespace
{

using namespace kindle;

mem::HybridMemoryParams
benchParams()
{
    mem::HybridMemoryParams p;
    p.dramBytes = 256 * oneMiB;
    p.nvmBytes = 256 * oneMiB;
    return p;
}

void
BM_DramReadLatency(benchmark::State &state)
{
    mem::HybridMemory memory(benchParams());
    Tick now = 0;
    Tick total = 0;
    std::uint64_t n = 0;
    Addr addr = 0;
    for (auto _ : state) {
        const Tick lat = memory.submit(
            {mem::MemCmd::read, addr, lineSize}, now);
        total += lat;
        now += lat;
        addr = (addr + 4096) % (128 * oneMiB);
        ++n;
    }
    state.counters["simNsPerAccess"] =
        ticksToNs(total) / static_cast<double>(n);
}
BENCHMARK(BM_DramReadLatency);

void
BM_NvmReadLatency(benchmark::State &state)
{
    mem::HybridMemory memory(benchParams());
    const Addr base = memory.nvmRange().start();
    Tick now = 0;
    Tick total = 0;
    std::uint64_t n = 0;
    Addr addr = 0;
    for (auto _ : state) {
        const Tick lat = memory.submit(
            {mem::MemCmd::read, base + addr, lineSize}, now);
        total += lat;
        now += lat;
        addr = (addr + 4096) % (128 * oneMiB);
        ++n;
    }
    state.counters["simNsPerAccess"] =
        ticksToNs(total) / static_cast<double>(n);
}
BENCHMARK(BM_NvmReadLatency);

void
BM_NvmPostedWrite(benchmark::State &state)
{
    mem::HybridMemory memory(benchParams());
    const Addr base = memory.nvmRange().start();
    Tick now = 0;
    Tick total = 0;
    std::uint64_t n = 0;
    Addr addr = 0;
    for (auto _ : state) {
        const Tick lat = memory.submit(
            {mem::MemCmd::write, base + addr, lineSize}, now);
        total += lat;
        // Issue as fast as the buffer admits: the steady state is the
        // device drain rate, not the cheap posted-accept latency.
        now += std::max<Tick>(lat, oneNs);
        addr = (addr + lineSize) % (128 * oneMiB);
        ++n;
    }
    state.counters["simNsPerAccess"] =
        ticksToNs(total) / static_cast<double>(n);
}
BENCHMARK(BM_NvmPostedWrite);

void
BM_NvmBulkPageCopyCost(benchmark::State &state)
{
    mem::HybridMemory memory(benchParams());
    const Addr base = memory.nvmRange().start();
    Tick now = 0;
    Tick total = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        const Tick r = memory.submit(
            {mem::MemCmd::bulkRead, base, pageSize}, now);
        now += r;
        const Tick w = memory.submit(
            {mem::MemCmd::bulkWrite, base + oneMiB, pageSize}, now);
        now += w;
        total += r + w;
        ++n;
    }
    state.counters["simUsPerPageCopy"] =
        ticksToUs(total) / static_cast<double>(n);
}
BENCHMARK(BM_NvmBulkPageCopyCost);

void
BM_FunctionalBackingStoreWrite(benchmark::State &state)
{
    mem::HybridMemory memory(benchParams());
    Addr addr = 0x1000;
    std::uint64_t v = 0;
    for (auto _ : state) {
        memory.writeT<std::uint64_t>(addr, ++v);
        addr = (addr + 8) % (64 * oneMiB);
    }
}
BENCHMARK(BM_FunctionalBackingStoreWrite);

} // namespace

BENCHMARK_MAIN();
