/**
 * @file
 * Reproduces Table IV: influence of the checkpoint interval
 * (10 ms / 100 ms / 1 s) on end-to-end time for the churn benchmark
 * with repeated TLB-missing accesses over the reallocated regions.
 *
 * Paper shape: the persistent scheme is flat across intervals; the
 * rebuild scheme improves ~5x from 10→100 ms, and with a 1 s interval
 * (beyond the runtime) rebuild beats persistent, exposing the benefit
 * of a DRAM-hosted page table.
 */

#include "bench_util.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace
{

using namespace kindle;

Tick
runOne(persist::PtScheme scheme, std::uint64_t arena,
       std::uint64_t churn, Tick interval)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    cfg.persistence = persist::PersistParams{scheme, interval};
    KindleSystem sys(cfg);
    // access_rounds > 1: multiple sweeps causing TLB misses.
    return sys.run(micro::churnBench(arena, churn, 2, 3, true),
                   "churn");
}

std::string
intervalName(kindle::Tick t)
{
    if (t >= kindle::oneSec)
        return std::to_string(t / kindle::oneSec) + " sec";
    return std::to_string(t / kindle::oneMs) + " msec";
}

} // namespace

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t scale = scaleFromEnv();
    const std::uint64_t arena = 512 * oneMiB / scale;
    printHeader("Table IV",
                "Checkpoint-interval sweep, arena " +
                    sizeToString(arena));

    TablePrinter table({"Alloc/Free size", "Interval",
                        "Persistent (ms)", "Rebuild (ms)"});
    for (const std::uint64_t mib : {64, 128, 256}) {
        const std::uint64_t churn = mib * oneMiB / scale;
        for (const Tick interval :
             {10 * oneMs, 100 * oneMs, oneSec}) {
            const Tick persistent = runOne(
                persist::PtScheme::persistent, arena, churn,
                interval);
            const Tick rebuild = runOne(persist::PtScheme::rebuild,
                                        arena, churn, interval);
            table.addRow({sizeToString(churn),
                          intervalName(interval), ms(persistent),
                          ms(rebuild)});
        }
    }
    table.print();
    std::printf("\nPaper shape: persistent flat across intervals; "
                "rebuild ~5x cheaper at 100ms than 10ms and cheaper "
                "than persistent once the interval exceeds the "
                "runtime.\n");
    return 0;
}
