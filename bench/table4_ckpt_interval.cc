/**
 * @file
 * Reproduces Table IV: influence of the checkpoint interval
 * (10 ms / 100 ms / 1 s) on end-to-end time for the churn benchmark
 * with repeated TLB-missing accesses over the reallocated regions.
 *
 * Paper shape: the persistent scheme is flat across intervals; the
 * rebuild scheme improves ~5x from 10→100 ms, and with a 1 s interval
 * (beyond the runtime) rebuild beats persistent, exposing the benefit
 * of a DRAM-hosted page table.
 *
 * Runs on the sweep runner (--jobs/KINDLE_JOBS).  The extra
 * "checkpoint share" columns are pure stat-snapshot arithmetic
 * (persist.ckptTicks::sum over elapsed ticks) — the per-phase
 * accounting the runner's JSON export records for every point in
 * BENCH_table4_ckpt_interval.json.
 */

#include "bench_util.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "runner/options.hh"
#include "runner/report.hh"

namespace
{

using namespace kindle;

runner::Scenario
makeScenario(persist::PtScheme scheme, std::uint64_t arena,
             std::uint64_t churn, Tick interval,
             const std::string &interval_label)
{
    const std::string scheme_name =
        scheme == persist::PtScheme::persistent ? "persistent"
                                                : "rebuild";
    runner::Scenario sc;
    sc.name = scheme_name + "/" + sizeToString(churn) + "/" +
              interval_label;
    sc.axes = {{"scheme", scheme_name},
               {"churn_bytes", std::to_string(churn)},
               {"interval", interval_label}};
    sc.config.memory.dramBytes = 3 * oneGiB;
    sc.config.memory.nvmBytes = 2 * oneGiB;
    sc.config.persistence = persist::PersistParams{scheme, interval};
    // access_rounds > 1: multiple sweeps causing TLB misses.
    sc.program = [arena, churn] {
        return micro::churnBench(arena, churn, 2, 3, true);
    };
    return sc;
}

std::string
intervalName(kindle::Tick t)
{
    if (t >= kindle::oneSec)
        return std::to_string(t / kindle::oneSec) + " sec";
    return std::to_string(t / kindle::oneMs) + " msec";
}

std::string
ckptShare(const runner::RunResult &r)
{
    const double ckpt = r.stats.getOr("persist.ckptTicks::sum", 0);
    if (!r.ticks)
        return "-";
    return kindle::fixed(
               100.0 * ckpt / static_cast<double>(r.ticks), 1) +
           "%";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace kindle;
    using namespace kindle::bench;

    const auto opts = runner::parseOptions(argc, argv);
    const std::uint64_t scale = scaleFromEnv();
    const std::uint64_t arena = 512 * oneMiB / scale;
    printHeader("Table IV",
                "Checkpoint-interval sweep, arena " +
                    sizeToString(arena));

    const std::vector<std::uint64_t> sizes = {64, 128, 256};
    const std::vector<Tick> intervals = {10 * oneMs, 100 * oneMs,
                                         oneSec};

    std::vector<runner::Scenario> scenarios;
    for (const std::uint64_t mib : sizes) {
        const std::uint64_t churn = mib * oneMiB / scale;
        for (const Tick interval : intervals) {
            scenarios.push_back(makeScenario(
                persist::PtScheme::persistent, arena, churn, interval,
                intervalName(interval)));
            scenarios.push_back(makeScenario(
                persist::PtScheme::rebuild, arena, churn, interval,
                intervalName(interval)));
        }
    }

    runner::SweepRunner pool(opts);
    const auto results = pool.run(scenarios);
    requireAllOk(results);

    TablePrinter table({"Alloc/Free size", "Interval",
                        "Persistent (ms)", "Rebuild (ms)",
                        "Ckpt share (P)", "Ckpt share (R)"});
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        const std::uint64_t churn = sizes[s] * oneMiB / scale;
        for (std::size_t i = 0; i < intervals.size(); ++i) {
            const std::size_t base =
                (s * intervals.size() + i) * 2;
            const auto &persistent = results[base];
            const auto &rebuild = results[base + 1];
            table.addRow({sizeToString(churn),
                          intervalName(intervals[i]),
                          ms(persistent.ticks), ms(rebuild.ticks),
                          ckptShare(persistent), ckptShare(rebuild)});
        }
    }
    table.print();
    std::printf("\nPaper shape: persistent flat across intervals; "
                "rebuild ~5x cheaper at 100ms than 10ms and cheaper "
                "than persistent once the interval exceeds the "
                "runtime.\n");

    runner::BenchReport report("table4_ckpt_interval", pool.jobs());
    report.add(results);
    printJsonFooter(report.writeJsonFile(), pool.jobs());
    return 0;
}
