/**
 * @file
 * §V-D study: "we can use Kindle to study other NVM technologies by
 * changing NVM interface parameters in gem5."  Runs the persistence
 * quickpath (sequential alloc/touch with 10 ms checkpointing, both
 * page-table schemes) over three NVM technology models — PCM (the
 * paper's default), ReRAM and STT-MRAM — showing how the
 * rebuild/persistent trade-off shifts as NVM write latency approaches
 * DRAM.
 */

#include "bench_util.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"

namespace
{

using namespace kindle;

Tick
runOne(const mem::MemTimingParams &nvm, persist::PtScheme scheme,
       std::uint64_t bytes)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    cfg.memory.nvmTiming = nvm;
    cfg.persistence = persist::PersistParams{scheme, 10 * oneMs};
    KindleSystem sys(cfg);
    return sys.run(micro::seqAllocTouch(bytes, true), "seq");
}

} // namespace

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t scale = scaleFromEnv();
    const std::uint64_t bytes = 64 * oneMiB / scale;
    printHeader("Ablation (NVM technology)",
                "Persistence cost vs NVM device model, " +
                    sizeToString(bytes) + " alloc/touch");

    TablePrinter table({"NVM model", "Persistent (ms)",
                        "Rebuild (ms)", "Rebuild/Persistent"});
    const mem::MemTimingParams techs[] = {
        mem::pcmParams(), mem::rramParams(), mem::sttMramParams()};
    for (const auto &tech : techs) {
        const Tick persistent =
            runOne(tech, persist::PtScheme::persistent, bytes);
        const Tick rebuild =
            runOne(tech, persist::PtScheme::rebuild, bytes);
        table.addRow({tech.name, ms(persistent), ms(rebuild),
                      ratio(static_cast<double>(rebuild) /
                            static_cast<double>(persistent))});
    }
    table.print();
    std::printf("\nExpectation: faster NVM writes shrink both schemes' "
                "absolute costs; the rebuild/persistent gap narrows as "
                "the consistency-wrapped store gets cheaper relative "
                "to the list traversal.\n");
    return 0;
}
