/**
 * @file
 * Core-loss fuzz harness: CPU faults meet crash points.
 *
 * The third golden-run fuzzer (after fuzz_crash_recovery and
 * fuzz_pressure), aimed at the CPU-fault subsystem: every bucket arms
 * a fault::CoreFaultPlan — a chosen core fail-stops or transiently
 * stalls at a tick or Nth-received-IPI trigger — and drives the
 * shootdown-heavy crash-fuzz workload across an SMP machine (default
 * 4 cores) while the kernel rides the IPI ack-timeout/retry protocol
 * into watchdog detection and hotplug-style offlining.
 *
 * Three fault specs:
 *
 *   die_tick   core 1 fail-stops at t=2ms — the watchdog finds the
 *              silent core at the next epoch and offlines it (runqueue
 *              re-placed, occupant killed crash-consistently, private
 *              caches flushed through the directory),
 *   die_ipi    core 2 fail-stops at its 2nd received shootdown IPI —
 *              the *initiator* discovers the death when the ack never
 *              comes, burns its resend budget and declares the core
 *              dead inline,
 *   stall_ipi  core 1 stalls for 1.5 ack-timeouts at its 1st IPI —
 *              the retry path must resend, succeed, and *not* offline
 *              a core that was merely slow,
 *
 * each crossed with three machine variants — clean, --media-faults
 * (NVM bit flips + scrubber), pressure (shrunken zones, reclaim, OOM)
 * — for nine buckets per page-table scheme.  Every bucket takes its
 * own golden run (core faults armed, injector observe-only: the
 * oracle must describe the *faulted* machine, offlining and all),
 * then sweeps a site × occurrence grid over the bucket's crash-point
 * space — which includes the new sites core.pre_offline and
 * ipi.pre_retry — padded with seeded Nth-durable-write points.  Each
 * point audits:
 *
 *   - oracle: every recovered process resumes from a committed state,
 *   - recovery idempotence: crash the recovered image again without
 *     running it; the second recovery must land on identical states,
 *   - liveness: the twice-recovered machine still checkpoints.
 *
 * Reboots re-arm the same CoreFaultPlan (dead hardware stays dead),
 * so recovery itself runs on the degraded machine.
 *
 * Before any sweep (unless --filter narrows the run) the harness
 * self-checks the zero-cost contract: two fault-free 4-core runs must
 * produce byte-identical stat snapshots containing none of the
 * core-fault stats (no ipiRetries/ipiTimeouts, no coresOfflined, no
 * affinityBroken, no coreLossKills).
 *
 * Flags (besides the common runner set):
 *   --points N      crash points per scheme, split over the nine
 *                   buckets (KINDLE_FUZZ_POINTS; default 135)
 *   --seed N        sweep seed (KINDLE_FUZZ_SEED)
 *   --cores N       machine width (default 4; minimum 3 — the specs
 *                   target cores 1 and 2)
 *   --filter STR    run only points whose name contains STR
 *
 * Deterministic: a fixed seed reproduces the same sweep and
 * byte-identical BENCH_fuzz_core_loss.json (wall-clock omitted).
 * FAILED points print a repro line and dump the flight recorder as
 * FLIGHT_coreloss.<point>.json (or to --flight-out).
 */

#include <cstring>
#include <utility>

#include "bench_util.hh"
#include "fuzz_common.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "runner/options.hh"
#include "runner/report.hh"

namespace
{

using namespace kindle;
using namespace kindle::bench;

struct FuzzOptions
{
    fuzz::CommonFuzzOptions common;
};

enum class Variant { clean, media, pressure };

const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::clean: return "clean";
      case Variant::media: return "media";
      case Variant::pressure: return "pressure";
    }
    return "?";
}

/** One seeded core fault, plus what its golden run must prove. */
struct Spec
{
    const char *name;
    fault::CoreFault fault;
    bool expectOffline;  // golden must hit core.pre_offline
    bool expectRetry;    // golden must hit ipi.pre_retry
};

std::vector<Spec>
makeSpecs()
{
    std::vector<Spec> specs;
    {
        Spec s;
        s.name = "die_tick";
        s.fault.cpu = 1;
        s.fault.atTick = 2 * oneMs;
        s.expectOffline = true;
        s.expectRetry = false;
        specs.push_back(s);
    }
    {
        Spec s;
        s.name = "die_ipi";
        s.fault.cpu = 2;
        s.fault.atNthIpi = 2;
        s.expectOffline = true;
        s.expectRetry = true;
        specs.push_back(s);
    }
    {
        // 1.5 ack-timeouts: long enough that the first resend still
        // finds the core stalled, short enough that the budget (3
        // resends) is never exhausted — retry must succeed.
        Spec s;
        s.name = "stall_ipi";
        s.fault.cpu = 1;
        s.fault.atNthIpi = 1;
        s.fault.stallTicks = 3 * oneUs;
        s.expectOffline = false;
        s.expectRetry = true;
        specs.push_back(s);
    }
    return specs;
}

/** fuzz_pressure's exact regime — proven to demote and OOM on a
 *  4-core machine.  Do not tighten reclaimInterval below the cost of
 *  a patrol pass: nested patrols livelock the event queue. */
fault::PressurePlan
pressurePlan()
{
    fault::PressurePlan pp;
    pp.dramZoneFrames = 160;
    pp.nvmZoneFrames = 96;
    pp.allocFailRate = 0.02;
    pp.seed = 7;
    pp.oomEnabled = true;
    pp.nvmLowWatermark = 12;
    pp.nvmHighWatermark = 24;
    return pp;
}

KindleConfig
baseConfig(persist::PtScheme scheme, Variant variant,
           const Spec *spec, unsigned cores)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 128 * oneMiB;
    cfg.memory.nvmBytes = 256 * oneMiB;
    cfg.numCores = cores;
    cfg.persistence = persist::PersistParams{scheme, oneMs / 4};
    if (spec) {
        fault::CoreFaultPlan plan;
        plan.faults.push_back(spec->fault);
        cfg.coreFault = plan;
    }
    if (variant == Variant::media) {
        cfg.fault = fault::FaultPlan{};  // unarmed: media config only
        cfg.fault->media = fuzz::mediaPlan();
        cfg.scrub = mem::ScrubParams{oneMs / 4, 16 * oneMiB};
    }
    if (variant == Variant::pressure) {
        // Short quantum so the hog and the churner exhaust the zones
        // together (see fuzz_pressure).
        cfg.kernel.timeslice = 50 * oneUs;
        cfg.pressure = pressurePlan();
    }
    return cfg;
}

/**
 * The foreground.  Clean and media variants run the shootdown-heavy
 * churner from fuzz_crash_recovery — the munmaps broadcast IPIs, which
 * is what arms the Nth-IPI fault triggers.  The pressure variant runs
 * fuzz_pressure's storm instead: DRAM extras mostly kept mapped, so
 * the zone actually exhausts and reclaim demotes (demotion shootdowns
 * then supply the IPI traffic the triggers need).
 */
std::unique_ptr<cpu::OpStream>
makeWorkload(Variant variant)
{
    micro::ScriptBuilder b;
    if (variant == Variant::pressure) {
        b.mmapFixed(micro::scriptBase, 32 * pageSize, true);
        b.touchPages(micro::scriptBase, 32 * pageSize);
        for (int r = 0; r < 10; ++r) {
            b.compute(250000);
            const Addr extra =
                micro::scriptBase + (64 + Addr(r) * 24) * pageSize;
            b.mmapFixed(extra, 16 * pageSize, false);
            b.touchPages(extra, 16 * pageSize);
            if (r % 4 == 3)
                b.munmap(extra, 16 * pageSize);
        }
    } else {
        b.mmapFixed(micro::scriptBase, 48 * pageSize, true);
        b.touchPages(micro::scriptBase, 48 * pageSize);
        for (int r = 0; r < 10; ++r) {
            b.compute(500000);
            const Addr extra =
                micro::scriptBase + (64 + Addr(r) * 16) * pageSize;
            b.mmapFixed(extra, 8 * pageSize, true);
            b.touchPages(extra, 8 * pageSize);
            if (r % 2)
                b.munmap(extra, 8 * pageSize);
        }
    }
    b.exit();
    return b.build();
}

constexpr Addr hogBase = micro::scriptBase + Addr(0x8000) * pageSize;

/** The pressure variant's DRAM glutton (see fuzz_pressure). */
std::unique_ptr<cpu::OpStream>
makeHog()
{
    micro::ScriptBuilder b;
    for (int r = 0; r < 10; ++r) {
        b.compute(300000);
        const Addr chunk = hogBase + Addr(r) * 20 * pageSize;
        b.mmapFixed(chunk, 20 * pageSize, false);
        b.touchPages(chunk, 20 * pageSize);
    }
    b.exit();
    return b.build();
}

/**
 * N-1 background mutators: runqueue depth on every core, so a dying
 * core always has state worth migrating.  Under pressure they are
 * DRAM-backed and long-lived (fuzz_pressure's shape) so the reclaim
 * engine always has an off-core victim with real DRAM leaves; on the
 * other variants they are the crash fuzzer's NVM-backed churners.
 */
void
spawnBackground(KindleSystem &sys, Variant variant, unsigned cores)
{
    const bool pressured = variant == Variant::pressure;
    for (unsigned i = 1; i < cores; ++i) {
        micro::ScriptBuilder b;
        const Addr base =
            micro::scriptBase + Addr(0x1000) * pageSize * i;
        b.mmapFixed(base, 16 * pageSize, !pressured);
        b.touchPages(base, 16 * pageSize);
        for (int r = 0; r < (pressured ? 20 : 6); ++r) {
            b.compute(200000 + 50000 * static_cast<int>(i));
            b.touchPages(base, 8 * pageSize);
        }
        b.exit();
        sys.kernel().spawn(b.build(), "bg" + std::to_string(i));
    }
}

void
spawnAll(KindleSystem &sys, Variant variant, unsigned cores)
{
    if (variant == Variant::pressure)
        sys.kernel().spawn(makeHog(), "hog");
    spawnBackground(sys, variant, cores);
}

fuzz::Golden
goldenRun(persist::PtScheme scheme, Variant variant, const Spec &spec,
          unsigned cores)
{
    fuzz::Golden g;
    KindleSystem sys(baseConfig(scheme, variant, &spec, cores));
    fuzz::observeCommitted(sys, g);
    spawnAll(sys, variant, cores);
    sys.run(makeWorkload(variant), "golden");
    g.hits = sys.injector().allHits();
    g.durableWrites = sys.injector().durableWrites();
    return g;
}

/** The golden run must actually exercise what its bucket claims to
 *  cover, or the grid silently stops reaching the new sites. */
void
checkGoldenTripwires(const fuzz::Golden &g, Variant variant,
                     const Spec &spec, const std::string &bucket)
{
    kindle_assert(!g.committed.empty(),
                  "{}: golden run took no checkpoints — workload or "
                  "interval mistuned", bucket);
    const auto hit = [&](const char *site) {
        return g.hits.count(site) != 0;
    };
    if (spec.expectOffline) {
        kindle_assert(hit("core.pre_offline"),
                      "{}: golden run never offlined core {} — fault "
                      "trigger mistuned", bucket, spec.fault.cpu);
    } else {
        kindle_assert(!hit("core.pre_offline"),
                      "{}: stall escalated to an offline — retry "
                      "budget or stall length mistuned", bucket);
    }
    if (spec.expectRetry) {
        kindle_assert(hit("ipi.pre_retry"),
                      "{}: golden run never retried an IPI — the "
                      "ack-timeout path is not being exercised",
                      bucket);
    }
    if (variant == Variant::pressure) {
        kindle_assert(hit("reclaim.pre_demote"),
                      "{}: pressure golden never demoted — plan "
                      "mistuned", bucket);
    }
}

runner::Scenario
makeScenario(persist::PtScheme scheme, Variant variant,
             const Spec &spec, const fuzz::Point &point,
             const fuzz::Golden &golden, const FuzzOptions &fz)
{
    const std::string scheme_name = persist::ptSchemeName(scheme);
    runner::Scenario sc;
    sc.name = scheme_name + "/" + variantName(variant) + "/" +
              spec.name + "/" + point.label;
    sc.axes = {{"scheme", scheme_name},
               {"variant", variantName(variant)},
               {"spec", spec.name},
               {"site", point.plan.site.empty() ? "durable_write"
                                                : point.plan.site},
               {"trigger", point.label}};
    sc.config = baseConfig(scheme, variant, &spec, fz.common.cores);
    const auto media = sc.config.fault ? sc.config.fault->media
                                       : fault::MediaFaultPlan{};
    sc.config.fault = point.plan;
    sc.config.fault->media = media;
    sc.drive = [oracle = &golden.committed, name = sc.name,
                variant, cores = fz.common.cores](
                   KindleSystem &sys,
                   statistics::StatSnapshot &extra) -> Tick {
        const Tick t0 = sys.now();
        bool fired = false;
        try {
            spawnAll(sys, variant, cores);
            sys.run(makeWorkload(variant), "fuzz");
        } catch (const fault::PowerLoss &) {
            fired = true;
        }
        sys.crash();
        const persist::RecoveryReport report = sys.reboot();

        // Audit 1: every recovered process resumes from a state the
        // golden run committed.
        std::uint64_t recovered = 0;
        std::uint64_t divergences = 0;
        const fuzz::RecoveredSet first = fuzz::recoveredSet(sys);
        for (const auto &[pid, rip, mapped] : first) {
            (void)pid;
            ++recovered;
            if (!oracle->count({rip, mapped}))
                ++divergences;
        }
        if (divergences > 0) {
            fuzz::dumpDivergence(sys, "FLIGHT_coreloss.", name,
                                 "oracle-divergence");
        }

        // Audit 2: recovery idempotence — on the *degraded* machine
        // (the reboot re-armed the same core faults).
        sys.crash();
        const persist::RecoveryReport report2 = sys.reboot();
        const fuzz::RecoveredSet second = fuzz::recoveredSet(sys);
        const bool idempotent = first == second;
        if (!idempotent) {
            fuzz::dumpDivergence(sys, "FLIGHT_coreloss.", name,
                                 "recovery-not-idempotent");
        }

        // Audit 3: the survivor still checkpoints.
        bool post_ok = true;
        try {
            sys.persistence()->checkpointNow();
        } catch (const std::exception &) {
            post_ok = false;
        }

        const bool failed = divergences > 0 || !idempotent || !post_ok;
        const bool clean = !failed && report.clean();
        const auto hits = sys.injector().allHits();
        const auto hitCount = [&](const char *site) -> double {
            const auto it = hits.find(site);
            return it == hits.end()
                       ? 0.0
                       : static_cast<double>(it->second);
        };
        extra.set("fuzz.fired", fired ? 1 : 0);
        extra.set("fuzz.recovered", static_cast<double>(recovered));
        extra.set("fuzz.quarantined",
                  static_cast<double>(report.processesQuarantined));
        extra.set("fuzz.recoveryErrors",
                  static_cast<double>(report.errors.size()));
        extra.set("fuzz.oracleDivergences",
                  static_cast<double>(divergences));
        extra.set("fuzz.idempotenceBreaks", idempotent ? 0 : 1);
        extra.set("fuzz.rerecovered",
                  static_cast<double>(report2.processesRecovered));
        extra.set("fuzz.offlineSiteHits",
                  hitCount("core.pre_offline"));
        extra.set("fuzz.retrySiteHits", hitCount("ipi.pre_retry"));
        extra.set("fuzz.clean", clean ? 1 : 0);
        extra.set("fuzz.salvaged", (!clean && !failed) ? 1 : 0);
        extra.set("fuzz.failed", failed ? 1 : 0);
        return sys.now() - t0;
    };
    return sc;
}

/**
 * The zero-cost contract: a fault-free SMP machine must produce
 * byte-identical stats run to run, and none of the core-fault stats
 * may exist in its tree (they register lazily, on first fault event).
 */
void
selfCheckUnfaulted(unsigned cores)
{
    const auto once = [cores] {
        KindleConfig cfg =
            baseConfig(persist::PtScheme::rebuild, Variant::clean,
                       nullptr, cores);
        KindleSystem sys(cfg);
        spawnBackground(sys, Variant::clean, cores);
        sys.run(makeWorkload(Variant::clean), "plain");
        return sys.snapshotStats();
    };
    const auto s1 = once();
    const auto s2 = once();
    kindle_assert(s1 == s2,
                  "unfaulted SMP runs diverged — determinism broken");
    static const char *const forbidden[] = {
        "ipiRetries",     "ipiTimeouts",   "coresOfflined",
        "affinityBroken", "coreLossKills",
    };
    for (const auto &[path, value] : s1.entries()) {
        (void)value;
        for (const char *marker : forbidden) {
            kindle_assert(path.find(marker) == std::string::npos,
                          "core-fault stat '{}' leaked into the "
                          "unfaulted default tree", path);
        }
    }
    std::printf("self-check: unfaulted %u-core tree clean "
                "(%zu stats, byte-identical across runs)\n",
                cores, s1.entries().size());
}

FuzzOptions
parseFuzzOptions(int argc, char **argv, std::vector<char *> &pass_argv)
{
    FuzzOptions fz;
    fz.common.points = fuzz::envCount("KINDLE_FUZZ_POINTS", 135);
    fz.common.seed = fuzz::envCount("KINDLE_FUZZ_SEED", 13579);
    fz.common.cores = 4;
    pass_argv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (fuzz::parseCommonFuzzFlag(i, argc, argv, fz.common))
            continue;
        pass_argv.push_back(argv[i]);
    }
    if (fz.common.cores < 3) {
        kindle_fatal("fuzz_core_loss needs --cores >= 3 (the fault "
                     "specs target cores 1 and 2)");
    }
    return fz;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace kindle::bench;

    std::vector<char *> pass_argv;
    const FuzzOptions fz = parseFuzzOptions(argc, argv, pass_argv);
    const auto opts = runner::parseOptions(
        static_cast<int>(pass_argv.size()), pass_argv.data());
    printHeader(
        "Core-loss fuzz",
        "seeded CPU faults × crash points, " +
            std::to_string(fz.common.points) + " points/scheme, seed " +
            std::to_string(fz.common.seed) + ", cores " +
            std::to_string(fz.common.cores));

    if (fz.common.filter.empty())
        selfCheckUnfaulted(fz.common.cores);

    const std::vector<persist::PtScheme> schemes = {
        persist::PtScheme::rebuild, persist::PtScheme::persistent};
    const std::vector<Variant> variants = {
        Variant::clean, Variant::media, Variant::pressure};
    const auto specs = makeSpecs();

    const std::uint64_t buckets =
        variants.size() * specs.size();
    const std::uint64_t per_bucket =
        (fz.common.points + buckets - 1) / buckets;

    runner::BenchReport report("fuzz_core_loss", opts.jobs);
    report.omitWallClock();
    report.keepStatPrefixes({"fuzz.", "fault.", "recovery.",
                             "persist.checkpoints",
                             "kernel.ipiRetries",
                             "kernel.ipiTimeouts",
                             "kernel.coresOfflined",
                             "kernel.affinityBroken",
                             "kernel.coreLossKills",
                             "kernel.reclaim.", "kernel.oomKills"});

    TablePrinter table({"Scheme", "Variant", "Spec", "Points",
                        "Fired", "Clean", "Salvaged", "Failed",
                        "IdemBreaks"});
    bool any_failed = false;

    for (const auto scheme : schemes) {
        std::uint64_t bucket_index = 0;
        for (const auto variant : variants) {
            for (const auto &spec : specs) {
                const std::string bucket =
                    std::string(persist::ptSchemeName(scheme)) + "/" +
                    variantName(variant) + "/" + spec.name;
                const fuzz::Golden golden =
                    goldenRun(scheme, variant, spec, fz.common.cores);
                checkGoldenTripwires(golden, variant, spec, bucket);
                // A distinct seed lane per bucket, stable across
                // --filter (points are generated before filtering).
                const auto points = fuzz::makePoints(
                    golden, per_bucket,
                    fz.common.seed + 1000 * bucket_index);
                ++bucket_index;

                std::vector<runner::Scenario> scenarios;
                scenarios.reserve(points.size());
                for (const auto &p : points) {
                    auto sc = makeScenario(scheme, variant, spec, p,
                                           golden, fz);
                    if (!fz.common.filter.empty() &&
                        sc.name.find(fz.common.filter) ==
                            std::string::npos) {
                        continue;
                    }
                    scenarios.push_back(std::move(sc));
                }

                runner::SweepRunner pool(opts);
                const auto results = pool.run(scenarios);
                requireAllOk(results);
                report.add(results);

                std::uint64_t fired = 0, clean = 0, salvaged = 0;
                std::uint64_t failed = 0, idem_breaks = 0;
                for (const auto &r : results) {
                    fired += static_cast<std::uint64_t>(
                        r.stats.get("fuzz.fired"));
                    clean += static_cast<std::uint64_t>(
                        r.stats.get("fuzz.clean"));
                    salvaged += static_cast<std::uint64_t>(
                        r.stats.get("fuzz.salvaged"));
                    failed += static_cast<std::uint64_t>(
                        r.stats.get("fuzz.failed"));
                    idem_breaks += static_cast<std::uint64_t>(
                        r.stats.get("fuzz.idempotenceBreaks"));
                    if (r.stats.get("fuzz.failed") > 0) {
                        std::printf(
                            "FAILED %s\n  repro: %s\n",
                            r.name.c_str(),
                            fuzz::reproCommand(argv[0], fz.common, "",
                                               r.name)
                                .c_str());
                    }
                }
                any_failed = any_failed || failed > 0;
                table.addRow({persist::ptSchemeName(scheme),
                              variantName(variant), spec.name,
                              std::to_string(results.size()),
                              std::to_string(fired),
                              std::to_string(clean),
                              std::to_string(salvaged),
                              std::to_string(failed),
                              std::to_string(idem_breaks)});
            }
        }
    }
    table.print();

    printJsonFooter(report.writeJsonFile(), opts.jobs);
    if (any_failed)
        kindle_fatal("core-loss fuzz found divergent or "
                     "non-idempotent recoveries");
    return 0;
}
