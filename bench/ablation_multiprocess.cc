/**
 * @file
 * Multi-process study the paper motivates in §III-C: a full-system
 * framework lets one observe "the influence of other OS activities
 * such as context switches, and the effect of cache pollution due to
 * OS activities" — effects invisible to user-level simulators.
 *
 * Runs one YCSB-like replay alone, then co-scheduled with cache-hungry
 * background processes, and reports the slowdown of the foreground
 * workload plus the scheduler's context-switch and migration counts.
 *
 * With --cores N (or KINDLE_CORES) the study becomes a true
 * time-sharing SMP workload: background polluters are pinned one per
 * secondary core, surplus polluters stay unpinned so the runqueues go
 * imbalanced as processes exit and the work-stealing path migrates
 * them, and the foreground floats freely.  An extra oversubscribed
 * row (2N-1 polluters) forces every core to time-share.  The bench
 * fails loudly if any core retires no instructions in a run with at
 * least as many processes as cores.
 */

#include "bench_util.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "prep/replay.hh"
#include "prep/workloads.hh"
#include "runner/options.hh"

namespace
{

using namespace kindle;

/** A background process sweeping a cache-sized buffer. */
std::unique_ptr<cpu::OpStream>
cachePolluter(Addr base, unsigned rounds)
{
    micro::ScriptBuilder b;
    const std::uint64_t bytes = 4 * oneMiB;  // 2x the LLC
    b.mmapFixed(base, bytes, /*nvm=*/false);
    b.touchPages(base, bytes);
    for (unsigned r = 0; r < rounds; ++r)
        b.readPages(base, bytes);
    b.exit();
    return b.build();
}

struct RunResult
{
    Tick total;
    double contextSwitches;
    double migrations;
    std::vector<double> opsPerCore;  ///< memOps+computeOps per cpu
};

RunResult
runWith(unsigned cores, unsigned background, std::uint64_t ops)
{
    KindleConfig cfg;
    cfg.numCores = cores;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    KindleSystem sys(cfg);

    prep::WorkloadParams wp;
    wp.ops = ops;
    wp.scaleDown = 8;
    auto trace = prep::makeWorkload(prep::Benchmark::ycsbMem, wp);
    auto program = std::make_unique<prep::ReplayStream>(
        *trace, prep::ReplayConfig{});

    // The foreground floats: the scheduler places it on the least
    // loaded core and may steal it across cores as queues drain.
    sys.kernel().spawn(std::move(program), "foreground");
    for (unsigned i = 0; i < background; ++i) {
        const Pid pid = sys.kernel().spawn(
            cachePolluter(micro::scriptBase + (i + 4) * oneGiB,
                          400),
            "polluter" + std::to_string(i));
        // Pin one polluter to each secondary core; surplus polluters
        // stay unpinned so runqueue imbalance exercises migration.
        if (cores > 1 && i < cores - 1) {
            os::Process *proc = sys.kernel().findProcess(pid);
            sys.kernel().setAffinity(*proc,
                                     static_cast<int>(i + 1));
        }
    }
    sys.runAll();

    RunResult r;
    r.total = sys.now();
    r.contextSwitches =
        sys.kernel().stats().scalarValue("contextSwitches");
    r.migrations =
        cores > 1 ? sys.kernel().stats().scalarValue("migrations")
                  : 0.0;
    for (unsigned c = 0; c < cores; ++c) {
        auto &cs = sys.core(c).stats();
        r.opsPerCore.push_back(cs.scalarValue("memOps") +
                               cs.scalarValue("computeOps"));
    }
    return r;
}

/** Every core must retire work when processes >= cores. */
void
requireAllCoresActive(const RunResult &r, unsigned background)
{
    if (1 + background < r.opsPerCore.size())
        return;  // fewer processes than cores: idle cores are fine
    for (std::size_t c = 0; c < r.opsPerCore.size(); ++c) {
        if (r.opsPerCore[c] <= 0) {
            std::fprintf(stderr,
                         "FAIL: cpu%zu retired no instructions with "
                         "%u background procs\n",
                         c, background);
            std::exit(1);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace kindle;
    using namespace kindle::bench;

    const auto opts = runner::parseOptions(argc, argv);
    const unsigned cores = opts.cores;
    const std::uint64_t ops = prep::opsFromEnv(200000);
    printHeader("Ablation (multi-process)",
                "Context switches + cache pollution (" +
                    std::to_string(cores) +
                    " cores, KINDLE_OPS=" + std::to_string(ops) +
                    ")");

    std::vector<unsigned> rows = {0u, 1u, 3u};
    if (cores > 1)  // oversubscribe: 2N-1 polluters on N cores
        rows.push_back(2 * cores - 1);

    const RunResult alone = runWith(cores, 0, ops);
    TablePrinter table({"Background procs", "Total (ms)",
                        "Context switches", "Migrations",
                        "Slowdown"});
    for (const unsigned bg : rows) {
        const RunResult r = bg == 0 ? alone : runWith(cores, bg, ops);
        requireAllCoresActive(r, bg);
        table.addRow({std::to_string(bg), ms(r.total),
                      fixed(r.contextSwitches, 0),
                      fixed(r.migrations, 0),
                      ratio(static_cast<double>(r.total) /
                            static_cast<double>(alone.total))});
    }
    table.print();
    if (cores > 1) {
        std::printf("\nPer-core retirement (last row): ");
        // Re-run would be wasteful; report the stats the check saw.
        std::printf("all %u cores retired instructions.\n", cores);
        std::printf("Expectation: pinned polluters keep secondary "
                    "cores busy while the unpinned foreground and "
                    "surplus polluters migrate between runqueues; "
                    "slowdown now mixes time-sharing with shared-LLC "
                    "coherence traffic.\n");
    } else {
        std::printf("\nExpectation: co-runners add far more than "
                    "their CPU share — timeslice interleaving plus "
                    "cache/TLB pollution — an effect user-level "
                    "simulators cannot attribute.\n");
    }
    return 0;
}
