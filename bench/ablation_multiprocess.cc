/**
 * @file
 * Multi-process study the paper motivates in §III-C: a full-system
 * framework lets one observe "the influence of other OS activities
 * such as context switches, and the effect of cache pollution due to
 * OS activities" — effects invisible to user-level simulators.
 *
 * Runs one YCSB-like replay alone, then co-scheduled with 1 and 3
 * cache-hungry background processes, and reports the slowdown of the
 * foreground workload plus the scheduler's context-switch count.
 */

#include "bench_util.hh"
#include "kindle/kindle.hh"
#include "kindle/microbench.hh"
#include "prep/replay.hh"
#include "prep/workloads.hh"

namespace
{

using namespace kindle;

/** A background process sweeping a cache-sized buffer. */
std::unique_ptr<cpu::OpStream>
cachePolluter(Addr base, unsigned rounds)
{
    micro::ScriptBuilder b;
    const std::uint64_t bytes = 4 * oneMiB;  // 2x the LLC
    b.mmapFixed(base, bytes, /*nvm=*/false);
    b.touchPages(base, bytes);
    for (unsigned r = 0; r < rounds; ++r)
        b.readPages(base, bytes);
    b.exit();
    return b.build();
}

struct RunResult
{
    Tick total;
    double contextSwitches;
};

RunResult
runWith(unsigned background, std::uint64_t ops)
{
    KindleConfig cfg;
    cfg.memory.dramBytes = 3 * oneGiB;
    cfg.memory.nvmBytes = 2 * oneGiB;
    KindleSystem sys(cfg);

    prep::WorkloadParams wp;
    wp.ops = ops;
    wp.scaleDown = 8;
    auto trace = prep::makeWorkload(prep::Benchmark::ycsbMem, wp);
    auto program = std::make_unique<prep::ReplayStream>(
        *trace, prep::ReplayConfig{});

    sys.kernel().spawn(std::move(program), "foreground");
    for (unsigned i = 0; i < background; ++i) {
        sys.kernel().spawn(
            cachePolluter(micro::scriptBase + (i + 4) * oneGiB, 400),
            "polluter" + std::to_string(i));
    }
    sys.runAll();
    return {sys.now(),
            sys.kernel().stats().scalarValue("contextSwitches")};
}

} // namespace

int
main()
{
    using namespace kindle;
    using namespace kindle::bench;

    const std::uint64_t ops = prep::opsFromEnv(200000);
    printHeader("Ablation (multi-process)",
                "Context switches + cache pollution (KINDLE_OPS=" +
                    std::to_string(ops) + ")");

    const RunResult alone = runWith(0, ops);
    TablePrinter table({"Background procs", "Total (ms)",
                        "Context switches", "Slowdown"});
    for (const unsigned bg : {0u, 1u, 3u}) {
        const RunResult r = bg == 0 ? alone : runWith(bg, ops);
        table.addRow({std::to_string(bg), ms(r.total),
                      fixed(r.contextSwitches, 0),
                      ratio(static_cast<double>(r.total) /
                            static_cast<double>(alone.total))});
    }
    table.print();
    std::printf("\nExpectation: co-runners add far more than their CPU "
                "share — timeslice interleaving plus cache/TLB "
                "pollution — an effect user-level simulators cannot "
                "attribute.\n");
    return 0;
}
