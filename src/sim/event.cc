#include "sim/event.hh"

#include "base/logging.hh"

namespace kindle::sim
{

void
EventQueue::schedule(Event *ev, Tick when)
{
    kindle_assert(ev != nullptr, "scheduling null event");
    kindle_assert(!ev->_scheduled, "event '{}' already scheduled",
                  ev->name());
    ev->_scheduled = true;
    ev->_when = when;
    ev->_seq = nextSeq++;
    heap.push(Entry{when, static_cast<int>(ev->priority()), ev->_seq, ev});
}

void
EventQueue::deschedule(Event *ev)
{
    // Lazy removal: mark the event unscheduled; its heap entry becomes
    // stale and is skipped when it reaches the top.
    if (ev && ev->_scheduled)
        ev->_scheduled = false;
}

void
EventQueue::skipStale(Tick)
{
    while (!heap.empty()) {
        const Entry &top = heap.top();
        if (top.ev->_scheduled && top.ev->_seq == top.seq)
            return;
        heap.pop();
    }
}

Tick
EventQueue::nextTick() const
{
    // const_cast-free variant: scan by copying is too costly; instead
    // maintain the invariant that callers use popDue() which skips
    // stale entries.  Here we conservatively look through a copy of
    // the top only.
    auto &self = const_cast<EventQueue &>(*this);
    self.skipStale(0);
    return heap.empty() ? maxTick : heap.top().when;
}

Event *
EventQueue::popDue(Tick now)
{
    skipStale(now);
    if (heap.empty() || heap.top().when > now)
        return nullptr;
    Event *ev = heap.top().ev;
    heap.pop();
    ev->_scheduled = false;
    return ev;
}

void
EventQueue::clear()
{
    while (!heap.empty()) {
        heap.top().ev->_scheduled = false;
        heap.pop();
    }
}

} // namespace kindle::sim
