#include "sim/event.hh"

#include "base/logging.hh"

namespace kindle::sim
{

Event::~Event()
{
    if (_scheduled && _queue)
        _queue->deschedule(this);
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    kindle_assert(ev != nullptr, "scheduling null event");
    kindle_assert(!ev->_scheduled, "event '{}' already scheduled",
                  ev->name());
    ev->_scheduled = true;
    ev->_when = when;
    ev->_seq = nextSeq++;
    ev->_queue = this;
    live.insert(ev->_seq);
    heap.push(Entry{when, static_cast<int>(ev->priority()), ev->_seq, ev});
}

void
EventQueue::deschedule(Event *ev)
{
    // Lazy removal: mark the event unscheduled and retire its seq; the
    // heap entry becomes stale and is dropped (without touching the
    // event again) when it reaches the top.
    if (ev && ev->_scheduled) {
        ev->_scheduled = false;
        live.erase(ev->_seq);
    }
}

void
EventQueue::skipStale(Tick)
{
    // Stale entries are recognised by seq alone: their Event* may
    // already dangle (owner destroyed after descheduling).
    while (!heap.empty() && live.find(heap.top().seq) == live.end())
        heap.pop();
}

Tick
EventQueue::nextTick() const
{
    // const_cast-free variant: scan by copying is too costly; instead
    // maintain the invariant that callers use popDue() which skips
    // stale entries.  Here we conservatively look through a copy of
    // the top only.
    auto &self = const_cast<EventQueue &>(*this);
    self.skipStale(0);
    return heap.empty() ? maxTick : heap.top().when;
}

Event *
EventQueue::popDue(Tick now)
{
    skipStale(now);
    if (heap.empty() || heap.top().when > now)
        return nullptr;
    Event *ev = heap.top().ev;
    live.erase(heap.top().seq);
    heap.pop();
    ev->_scheduled = false;
    return ev;
}

void
EventQueue::clear()
{
    // Live entries point at alive events (a scheduled event
    // deschedules itself on destruction), so resetting their flag is
    // safe; stale entries are dropped without being dereferenced.
    while (!heap.empty()) {
        if (live.find(heap.top().seq) != live.end())
            heap.top().ev->_scheduled = false;
        heap.pop();
    }
    live.clear();
}

} // namespace kindle::sim
