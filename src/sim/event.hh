/**
 * @file
 * Discrete events and the global event queue.
 *
 * Kindle's execution model is CPU-driven: the core advances the global
 * tick as it executes memory operations, and the event queue interleaves
 * periodic system activities (checkpoints, HSCC migration intervals, the
 * SSP consolidation thread, scheduler timeslices) whenever their due
 * tick has been reached or passed.  Events with equal ticks fire in
 * (priority, insertion) order, which keeps runs fully deterministic.
 */

#ifndef KINDLE_SIM_EVENT_HH
#define KINDLE_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/types.hh"

namespace kindle::sim
{

class EventQueue;

/**
 * An occurrence scheduled on the EventQueue.  Subclass and implement
 * process(), or use CallbackEvent for one-off lambdas.
 */
class Event
{
  public:
    /** Relative ordering of events due at the same tick (lower first). */
    enum class Priority : int
    {
        ckpt = 0,      ///< persistence checkpoints run first
        migration = 1, ///< HSCC migration interval
        consolidate = 2, ///< SSP consolidation thread
        sched = 3,     ///< scheduler timeslice
        scrub = 4,     ///< NVM patrol scrubber pass
        deflt = 10,
        telemetry = 20, ///< sampler runs last: observes post-event state
    };

    explicit Event(std::string name,
                   Priority prio = Priority::deflt)
        : _name(std::move(name)), _priority(prio)
    {}

    /** A still-scheduled event deschedules itself on destruction so
     *  the queue never holds an entry it might dereference after the
     *  owner died (crash() tears components down mid-simulation). */
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Perform the event's work; may reschedule itself. */
    virtual void process() = 0;

    const std::string &name() const { return _name; }
    Priority priority() const { return _priority; }

    /** Is the event currently on a queue? */
    bool scheduled() const { return _scheduled; }

    /** Tick the event is due at (valid only while scheduled). */
    Tick when() const { return _when; }

  private:
    friend class EventQueue;

    std::string _name;
    Priority _priority;
    bool _scheduled = false;
    Tick _when = 0;
    std::uint64_t _seq = 0;
    EventQueue *_queue = nullptr;
};

/** A one-shot event wrapping a callable. */
class CallbackEvent : public Event
{
  public:
    CallbackEvent(std::string name, std::function<void()> fn,
                  Priority prio = Priority::deflt)
        : Event(std::move(name), prio), callback(std::move(fn))
    {}

    void process() override { callback(); }

  private:
    std::function<void()> callback;
};

/**
 * A time-ordered queue of events.  The queue does not own events;
 * owners must keep them alive while scheduled (the usual pattern is a
 * member Event inside the scheduling component).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /**
     * A queue dying with events still scheduled (e.g. a crash tearing
     * the Simulation down while per-core kernel objects hold pending
     * IPIs) must clear their _scheduled flags, or the events'
     * destructors would call deschedule() on a dead queue.
     */
    ~EventQueue() { clear(); }

    /** Schedule @p ev at absolute tick @p when. */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event (no-op if not scheduled). */
    void deschedule(Event *ev);

    /** Earliest due tick, or maxTick when empty. */
    Tick nextTick() const;

    /**
     * True when no events are pending.  Counts live entries, not heap
     * entries: lazily-descheduled events leave stale heap entries
     * behind that must not make the queue look busy.
     */
    bool empty() const { return live.empty(); }

    /** Number of pending (live) events. */
    std::size_t size() const { return live.size(); }

    /**
     * Pop the earliest event if it is due at or before @p now.
     * Returns nullptr when nothing is due.
     */
    Event *popDue(Tick now);

    /** Drop every pending event (used by crash handling). */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        Event *ev;

        /** std::priority_queue is a max-heap; invert the order. */
        bool
        operator<(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return seq > o.seq;
        }
    };

    /** Drop stale heap entries for descheduled/rescheduled events. */
    void skipStale(Tick now);

    std::priority_queue<Entry> heap;
    std::uint64_t nextSeq = 0;

    /**
     * Sequence numbers of entries whose event is still scheduled.
     * Stale entries (descheduled or superseded) are identified by seq
     * alone, so the queue never dereferences an Event* it cannot prove
     * alive.
     */
    std::unordered_set<std::uint64_t> live;
};

} // namespace kindle::sim

#endif // KINDLE_SIM_EVENT_HH
