/**
 * @file
 * The simulation kernel: global tick plus the event queue.
 */

#ifndef KINDLE_SIM_SIMULATION_HH
#define KINDLE_SIM_SIMULATION_HH

#include "base/types.hh"
#include "sim/event.hh"
#include "telemetry/profiler.hh"

namespace kindle::sim
{

/**
 * Owns simulated time.  The CPU and system services advance time by
 * calling bump(); service() dispatches every event whose due tick has
 * been reached.  Event handlers themselves bump time for the work they
 * perform (e.g. a checkpoint's NVM writes), which naturally serializes
 * OS service time with application progress — the property the paper's
 * Table IV experiment depends on.
 */
class Simulation
{
  public:
    Simulation() = default;

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Advance time by @p delta ticks. */
    void bump(Tick delta) { curTick += delta; }

    /** Advance time to at least @p target. */
    void
    bumpTo(Tick target)
    {
        if (target > curTick)
            curTick = target;
    }

    /**
     * Set the clock to exactly @p t, possibly moving it backwards.
     * Used only by the SMP scheduler, which rewinds to the epoch start
     * before running each core's quantum and finally warps forward to
     * the latest per-core finish time.  Pending events are untouched:
     * an event due between the epoch start and @p t simply fires when
     * some core's timeline reaches it again, which keeps the
     * interleaving deterministic.
     */
    void warpTo(Tick t) { curTick = t; }

    /** The global event queue. */
    EventQueue &eventq() { return queue; }

    /**
     * Run every event due at or before the current tick.  Events may
     * bump time while processing; newly due events are then also run,
     * so one call fully drains the backlog.
     */
    void
    service()
    {
        // Probe only when something is actually due: service() is
        // called on every memory access, and the empty case must stay
        // a couple of loads.  The eventLoop category then charges for
        // dispatch itself; handler bodies carry their own probes, so
        // their time lands in their subsystem categories.
        Event *ev = queue.popDue(curTick);
        if (!ev)
            return;
        KINDLE_PROF_SCOPE(eventLoop);
        do {
            ev->process();
        } while ((ev = queue.popDue(curTick)));
    }

    /**
     * Reset time and drop all pending events.  Used when simulating a
     * machine crash/reboot (volatile state disappears; the new boot
     * starts a fresh timeline offset).
     */
    void
    hardReset()
    {
        queue.clear();
    }

  private:
    Tick curTick = 0;
    EventQueue queue;
};

} // namespace kindle::sim

#endif // KINDLE_SIM_SIMULATION_HH
