/**
 * @file
 * Clock domains: convert between cycles and ticks.
 */

#ifndef KINDLE_SIM_CLOCKED_HH
#define KINDLE_SIM_CLOCKED_HH

#include "base/logging.hh"
#include "base/types.hh"

namespace kindle::sim
{

/**
 * A fixed-frequency clock domain.  Kindle's CPU runs at 3 GHz
 * (333 ps period, matching the paper's configuration); memory devices
 * use their own timing expressed directly in ticks.
 */
class ClockDomain
{
  public:
    /** @param period_ps Clock period in ticks (picoseconds). */
    explicit ClockDomain(Tick period_ps) : _period(period_ps)
    {
        kindle_assert(period_ps > 0, "zero clock period");
    }

    /** Construct from a frequency in MHz. */
    static ClockDomain
    fromMHz(std::uint64_t mhz)
    {
        kindle_assert(mhz > 0, "zero frequency");
        return ClockDomain(1000000 / mhz);
    }

    Tick period() const { return _period; }

    /** Ticks consumed by @p n cycles. */
    Tick cyclesToTicks(Cycles n) const { return n * _period; }

    /** Cycles covered by @p t ticks (rounded up). */
    Cycles
    ticksToCycles(Tick t) const
    {
        return (t + _period - 1) / _period;
    }

  private:
    Tick _period;
};

} // namespace kindle::sim

#endif // KINDLE_SIM_CLOCKED_HH
