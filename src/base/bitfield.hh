/**
 * @file
 * Bit-manipulation helpers used by page-table entries, TLB metadata
 * and the SSP cache-line bitmaps.
 */

#ifndef KINDLE_BASE_BITFIELD_HH
#define KINDLE_BASE_BITFIELD_HH

#include <cstdint>

namespace kindle
{

/** A mask with the low @p nbits bits set. nbits may be 0..64. */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t(0)
                       : ((std::uint64_t(1) << nbits) - 1);
}

/** Extract bits [last:first] (inclusive) of @p val. */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned last, unsigned first)
{
    return (val >> first) & mask(last - first + 1);
}

/** Extract the single bit @p n of @p val. */
constexpr bool
bit(std::uint64_t val, unsigned n)
{
    return (val >> n) & 1;
}

/** Return @p val with bits [last:first] replaced by @p field. */
constexpr std::uint64_t
insertBits(std::uint64_t val, unsigned last, unsigned first,
           std::uint64_t field)
{
    const std::uint64_t m = mask(last - first + 1) << first;
    return (val & ~m) | ((field << first) & m);
}

/** Return @p val with bit @p n set to @p b. */
constexpr std::uint64_t
setBit(std::uint64_t val, unsigned n, bool b = true)
{
    return b ? (val | (std::uint64_t(1) << n))
             : (val & ~(std::uint64_t(1) << n));
}

/** Population count. */
constexpr unsigned
popCount(std::uint64_t v)
{
    unsigned c = 0;
    while (v) {
        v &= v - 1;
        ++c;
    }
    return c;
}

static_assert(mask(0) == 0);
static_assert(mask(12) == 0xfff);
static_assert(bits(0xabcd, 15, 12) == 0xa);
static_assert(insertBits(0, 15, 12, 0xa) == 0xa000);
static_assert(popCount(0xf0f0) == 8);
static_assert(setBit(0, 3) == 8);

} // namespace kindle

#endif // KINDLE_BASE_BITFIELD_HH
