#include "base/str.hh"

#include <cctype>
#include <cstdint>
#include <iomanip>

namespace kindle
{

namespace detail
{

void
formatRest(std::ostringstream &os, std::string_view fmt)
{
    os << fmt;
}

} // namespace detail

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (true) {
        const auto pos = s.find(sep, begin);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(begin));
            return out;
        }
        out.emplace_back(s.substr(begin, pos - begin));
        begin = pos + 1;
    }
}

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::string
sizeToString(std::uint64_t bytes)
{
    static constexpr const char *suffix[] = {"B", "KiB", "MiB", "GiB",
                                             "TiB"};
    unsigned idx = 0;
    std::uint64_t v = bytes;
    while (v >= 1024 && (v % 1024) == 0 && idx < 4) {
        v /= 1024;
        ++idx;
    }
    std::ostringstream os;
    os << v << suffix[idx];
    return os.str();
}

std::string
fixed(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

} // namespace kindle
