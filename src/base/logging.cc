#include "base/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace kindle
{

namespace
{

// Atomic so concurrent KindleSystem runs (runner::SweepRunner worker
// threads) can hit error paths while a test harness flips the mode.
std::atomic<bool> throwErrors{false};

} // namespace

void
setErrorsThrow(bool throw_instead)
{
    throwErrors.store(throw_instead, std::memory_order_relaxed);
}

bool
errorsThrow()
{
    return throwErrors.load(std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (throwErrors)
        throw SimError(SimError::Kind::panic, msg);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (throwErrors)
        throw SimError(SimError::Kind::fatal, msg);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace kindle
