#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace kindle
{

namespace
{

bool throwErrors = false;

} // namespace

void
setErrorsThrow(bool throw_instead)
{
    throwErrors = throw_instead;
}

bool
errorsThrow()
{
    return throwErrors;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (throwErrors)
        throw SimError(SimError::Kind::panic, msg);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (throwErrors)
        throw SimError(SimError::Kind::fatal, msg);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace kindle
