/**
 * @file
 * Half-open physical/virtual address ranges.
 */

#ifndef KINDLE_BASE_ADDR_RANGE_HH
#define KINDLE_BASE_ADDR_RANGE_HH

#include "base/logging.hh"
#include "base/types.hh"

namespace kindle
{

/**
 * A half-open address interval [start, end).  Used for BIOS e820
 * entries, memory-controller routing, VMAs and MSR-communicated NVM
 * ranges.
 */
class AddrRange
{
  public:
    /** An empty range. */
    AddrRange() : _start(0), _end(0) {}

    /** Construct [start, end); end must not precede start. */
    AddrRange(Addr start, Addr end) : _start(start), _end(end)
    {
        kindle_assert(end >= start,
                      "invalid range [{}, {})", start, end);
    }

    /** Build a range from a base address and a size in bytes. */
    static AddrRange
    withSize(Addr start, std::uint64_t size)
    {
        return AddrRange(start, start + size);
    }

    Addr start() const { return _start; }
    Addr end() const { return _end; }
    std::uint64_t size() const { return _end - _start; }
    bool empty() const { return _start == _end; }

    /** True iff @p a lies inside the range. */
    bool
    contains(Addr a) const
    {
        return a >= _start && a < _end;
    }

    /** True iff @p other is fully contained in this range. */
    bool
    containsRange(const AddrRange &other) const
    {
        return other._start >= _start && other._end <= _end;
    }

    /** True iff the two ranges share at least one address. */
    bool
    intersects(const AddrRange &other) const
    {
        return _start < other._end && other._start < _end;
    }

    /** Offset of @p a from the start of the range. */
    std::uint64_t
    offsetOf(Addr a) const
    {
        kindle_assert(contains(a), "address {} outside range", a);
        return a - _start;
    }

    bool
    operator==(const AddrRange &o) const
    {
        return _start == o._start && _end == o._end;
    }
    bool operator!=(const AddrRange &o) const { return !(*this == o); }

    /** Order by start address (for sorted VMA containers). */
    bool operator<(const AddrRange &o) const { return _start < o._start; }

  private:
    Addr _start;
    Addr _end;
};

} // namespace kindle

#endif // KINDLE_BASE_ADDR_RANGE_HH
