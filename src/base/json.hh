/**
 * @file
 * A minimal streaming JSON writer.
 *
 * Kindle's machine-readable outputs (stat dumps, the runner's
 * BENCH_*.json records) are produced by this one writer so escaping
 * and number formatting are identical everywhere — a requirement for
 * the determinism guarantee, which compares serialized stat dumps
 * byte for byte.  There is deliberately no reader: Kindle only ever
 * emits JSON for downstream tooling.
 */

#ifndef KINDLE_BASE_JSON_HH
#define KINDLE_BASE_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace kindle::json
{

/** Escape @p s for embedding inside a JSON string literal. */
std::string escape(std::string_view s);

/**
 * Render a double deterministically: integral values print without a
 * fraction, everything else with enough digits to round-trip.
 */
std::string formatNumber(double v);

/**
 * Event-driven writer with automatic comma/indent handling.
 *
 *   json::Writer w(os);
 *   w.beginObject();
 *   w.key("ticks");   w.value(std::uint64_t(42));
 *   w.key("points");  w.beginArray(); ... w.endArray();
 *   w.endObject();
 *
 * Misuse (value without a key inside an object, unbalanced close)
 * trips an assertion.
 */
class Writer
{
  public:
    explicit Writer(std::ostream &os, int indent_width = 2)
        : out(os), indentWidth(indent_width)
    {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Name the next member of the enclosing object. */
    void key(std::string_view k);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(const std::string &s) { value(std::string_view(s)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool b);
    void null();

    /** key() + value() in one call. */
    template <typename T>
    void
    keyValue(std::string_view k, const T &v)
    {
        key(k);
        value(v);
    }

    /** True once every opened scope has been closed again. */
    bool balanced() const { return scopes.empty(); }

  private:
    enum class Scope { object, array };

    void beforeValue();
    void beforeContainer(Scope s);
    void newline();

    std::ostream &out;
    int indentWidth;
    std::vector<Scope> scopes;
    std::vector<bool> scopeHasItems;
    bool keyPending = false;
};

} // namespace kindle::json

#endif // KINDLE_BASE_JSON_HH
