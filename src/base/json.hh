/**
 * @file
 * A minimal streaming JSON writer, plus a small validating reader.
 *
 * Kindle's machine-readable outputs (stat dumps, the runner's
 * BENCH_*.json records, trace files) are produced by this one writer
 * so escaping and number formatting are identical everywhere — a
 * requirement for the determinism guarantee, which compares
 * serialized stat dumps byte for byte.
 *
 * The reader exists for the tooling that *checks* those outputs: the
 * golden-file trace tests and the CI well-formedness smoke parse
 * emitted files back with json::parse().  It is a strict validator
 * for the JSON Kindle writes, not a general-purpose library — no
 * streaming, no in-place mutation, documents load fully into Value
 * trees.
 */

#ifndef KINDLE_BASE_JSON_HH
#define KINDLE_BASE_JSON_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kindle::json
{

/** Escape @p s for embedding inside a JSON string literal. */
std::string escape(std::string_view s);

/**
 * Render a double deterministically: integral values print without a
 * fraction, everything else with enough digits to round-trip.
 */
std::string formatNumber(double v);

/**
 * Event-driven writer with automatic comma/indent handling.
 *
 *   json::Writer w(os);
 *   w.beginObject();
 *   w.key("ticks");   w.value(std::uint64_t(42));
 *   w.key("points");  w.beginArray(); ... w.endArray();
 *   w.endObject();
 *
 * Misuse (value without a key inside an object, unbalanced close)
 * trips an assertion.
 */
class Writer
{
  public:
    explicit Writer(std::ostream &os, int indent_width = 2)
        : out(os), indentWidth(indent_width)
    {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Name the next member of the enclosing object. */
    void key(std::string_view k);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(const std::string &s) { value(std::string_view(s)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool b);
    void null();

    /** key() + value() in one call. */
    template <typename T>
    void
    keyValue(std::string_view k, const T &v)
    {
        key(k);
        value(v);
    }

    /** True once every opened scope has been closed again. */
    bool balanced() const { return scopes.empty(); }

  private:
    enum class Scope { object, array };

    void beforeValue();
    void beforeContainer(Scope s);
    void newline();

    std::ostream &out;
    int indentWidth;
    std::vector<Scope> scopes;
    std::vector<bool> scopeHasItems;
    bool keyPending = false;
};

/**
 * One parsed JSON value.  Objects keep their members in document
 * order (the writer emits deterministically sorted output, so order
 * round-trips); find() does a linear scan, which is fine for the
 * small metadata objects the validators inspect.
 */
class Value
{
  public:
    enum class Kind { null, boolean, number, string, array, object };

    using Member = std::pair<std::string, Value>;

    Value() = default;

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::null; }
    bool isBool() const { return _kind == Kind::boolean; }
    bool isNumber() const { return _kind == Kind::number; }
    bool isString() const { return _kind == Kind::string; }
    bool isArray() const { return _kind == Kind::array; }
    bool isObject() const { return _kind == Kind::object; }

    bool asBool() const { return _bool; }
    double asNumber() const { return _number; }
    const std::string &asString() const { return _string; }

    /** Array elements (empty unless isArray()). */
    const std::vector<Value> &items() const { return _items; }

    /** Object members in document order (empty unless isObject()). */
    const std::vector<Member> &members() const { return _members; }

    /** Member value by key, or nullptr when absent / not an object. */
    const Value *find(std::string_view key) const;

    /** @name Construction helpers used by the parser. */
    /// @{
    static Value makeNull() { return Value(); }
    static Value makeBool(bool b);
    static Value makeNumber(double v);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> items);
    static Value makeObject(std::vector<Member> members);
    /// @}

  private:
    Kind _kind = Kind::null;
    bool _bool = false;
    double _number = 0;
    std::string _string;
    std::vector<Value> _items;
    std::vector<Member> _members;
};

/**
 * Parse one complete JSON document.  Trailing non-whitespace after
 * the document, malformed literals, bad escapes and unbalanced
 * containers all fail; on failure returns nullopt and, when @p err is
 * non-null, stores a message with the byte offset of the problem.
 */
std::optional<Value> parse(std::string_view text,
                           std::string *err = nullptr);

} // namespace kindle::json

#endif // KINDLE_BASE_JSON_HH
