/**
 * @file
 * Small integrity checksums for durable on-NVM structures.
 *
 * Recovery must decide whether a durable image is trustworthy before
 * acting on it; a 32-bit FNV-1a over the serialized bytes is cheap,
 * has no external dependencies, and is deterministic across hosts —
 * which the crash-fuzz harness relies on for byte-identical reports.
 */

#ifndef KINDLE_BASE_CHECKSUM_HH
#define KINDLE_BASE_CHECKSUM_HH

#include <cstdint>

namespace kindle
{

/** 32-bit FNV-1a over @p size bytes at @p data. */
inline std::uint32_t
checksum32(const void *data, std::uint64_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t h = 0x811c9dc5u;
    for (std::uint64_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x01000193u;
    }
    return h;
}

} // namespace kindle

#endif // KINDLE_BASE_CHECKSUM_HH
