/**
 * @file
 * Fundamental scalar types used across the Kindle simulator.
 *
 * Kindle follows the gem5 convention of a single global time unit, the
 * Tick.  One tick equals one picosecond, which lets us express a 3 GHz
 * CPU clock (333 ps period) and DDR4/PCM device timings without
 * fractional arithmetic.
 */

#ifndef KINDLE_BASE_TYPES_HH
#define KINDLE_BASE_TYPES_HH

#include <cstdint>

namespace kindle
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** A simulated physical or virtual address. */
using Addr = std::uint64_t;

/** A count of CPU cycles (converted to Ticks via a clock period). */
using Cycles = std::uint64_t;

/** Process identifier inside the simulated OS. */
using Pid = std::uint32_t;

/** Index of a CPU core in an SMP machine (0-based). */
using CpuId = unsigned;

/** The largest representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** An invalid / null address marker. */
constexpr Addr invalidAddr = ~Addr(0);

/** @name Time literals (ticks are picoseconds). */
/// @{
constexpr Tick onePs = 1;
constexpr Tick oneNs = 1000 * onePs;
constexpr Tick oneUs = 1000 * oneNs;
constexpr Tick oneMs = 1000 * oneUs;
constexpr Tick oneSec = 1000 * oneMs;
/// @}

/** @name Size literals. */
/// @{
constexpr std::uint64_t oneKiB = 1024;
constexpr std::uint64_t oneMiB = 1024 * oneKiB;
constexpr std::uint64_t oneGiB = 1024 * oneMiB;
/// @}

/** Base page size used by the simulated x86-64 MMU. */
constexpr std::uint64_t pageSize = 4096;
constexpr unsigned pageShift = 12;

/** Cache line size used throughout the memory hierarchy. */
constexpr std::uint64_t lineSize = 64;
constexpr unsigned lineShift = 6;

/** Cache lines per base page. */
constexpr unsigned linesPerPage = pageSize / lineSize;

/** Convert ticks to floating-point milliseconds (for reporting only). */
inline double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneMs);
}

/** Convert ticks to floating-point microseconds (for reporting only). */
inline double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneUs);
}

/** Convert ticks to floating-point nanoseconds (for reporting only). */
inline double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneNs);
}

} // namespace kindle

#endif // KINDLE_BASE_TYPES_HH
