/**
 * @file
 * Lightweight debug tracing, modelled on gem5's DPRINTF flags.
 *
 * Flags are enabled by name at runtime (e.g. from the KINDLE_DEBUG
 * environment variable, comma separated).  Tracing is off by default
 * and costs one branch per site when disabled.
 */

#ifndef KINDLE_BASE_TRACE_FLAGS_HH
#define KINDLE_BASE_TRACE_FLAGS_HH

#include <string>
#include <string_view>

#include "base/str.hh"
#include "base/types.hh"

namespace kindle::trace
{

/** Debug categories; one bit each. */
enum class Flag : unsigned
{
    event = 0,
    mem,
    cache,
    tlb,
    pwalk,
    vma,
    syscall,
    checkpoint,
    recovery,
    ssp,
    hscc,
    replay,
    pt,
    redo,
    scrub,
    fault,
    sched,
    numFlags
};

/** Printable name of @p f ("checkpoint", "redo", ...). */
const char *flagName(Flag f);

/** Reverse of flagName(); false when @p name is unknown. */
bool flagFromName(std::string_view name, Flag &out);

/** Enable a single flag. */
void enable(Flag f);

/** Disable a single flag. */
void disable(Flag f);

/** Disable everything. */
void clearAll();

/** Parse a comma separated flag-name list ("tlb,checkpoint"). */
void enableByNames(std::string_view names);

/** Initialize from the KINDLE_DEBUG environment variable. */
void initFromEnv();

/** Is this flag on? */
bool enabled(Flag f);

/** Emit one trace line (already formatted). */
void emit(Flag f, Tick when, const std::string &msg);

/** Formatting front end; evaluates arguments only when enabled. */
template <typename... Args>
void
dprintf(Flag f, Tick when, std::string_view fmt, Args &&...args)
{
    if (enabled(f))
        emit(f, when, csprintf(fmt, std::forward<Args>(args)...));
}

} // namespace kindle::trace

#endif // KINDLE_BASE_TRACE_FLAGS_HH
