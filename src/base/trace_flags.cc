#include "base/trace_flags.hh"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "base/logging.hh"

namespace kindle::trace
{

namespace
{

constexpr unsigned numFlags = static_cast<unsigned>(Flag::numFlags);

// Atomics: flag state is process-global configuration that may be
// consulted from concurrent KindleSystem instances (SweepRunner
// worker threads) while the main thread toggles flags.
std::array<std::atomic<bool>, numFlags> flagState{};

std::once_flag envInitOnce;

constexpr std::array<const char *, numFlags> flagNames = {
    "event", "mem", "cache", "tlb", "pwalk", "vma",
    "syscall", "checkpoint", "recovery", "ssp", "hscc", "replay",
    "pt", "redo", "scrub", "fault", "sched",
};

} // namespace

const char *
flagName(Flag f)
{
    return flagNames[static_cast<unsigned>(f)];
}

bool
flagFromName(std::string_view name, Flag &out)
{
    for (unsigned i = 0; i < numFlags; ++i) {
        if (name == flagNames[i]) {
            out = static_cast<Flag>(i);
            return true;
        }
    }
    return false;
}

void
enable(Flag f)
{
    flagState[static_cast<unsigned>(f)] = true;
}

void
disable(Flag f)
{
    flagState[static_cast<unsigned>(f)] = false;
}

void
clearAll()
{
    for (auto &f : flagState)
        f = false;
}

void
enableByNames(std::string_view names)
{
    for (const auto &name : split(names, ',')) {
        const std::string wanted = trim(name);
        if (wanted.empty())
            continue;
        bool found = false;
        for (unsigned i = 0; i < numFlags; ++i) {
            if (wanted == flagNames[i]) {
                flagState[i] = true;
                found = true;
                break;
            }
        }
        if (!found)
            warn("unknown debug flag '{}'", wanted);
    }
}

void
initFromEnv()
{
    // Every KindleSystem constructor calls this; guard with a
    // once-flag so concurrently constructed systems don't race on
    // the parse and repeated sequential constructions stay cheap.
    std::call_once(envInitOnce, [] {
        if (const char *env = std::getenv("KINDLE_DEBUG"))
            enableByNames(env);
    });
}

bool
enabled(Flag f)
{
    return flagState[static_cast<unsigned>(f)];
}

void
emit(Flag f, Tick when, const std::string &msg)
{
    std::fprintf(stderr, "%12llu: [%s] %s\n",
                 static_cast<unsigned long long>(when),
                 flagNames[static_cast<unsigned>(f)], msg.c_str());
}

} // namespace kindle::trace
