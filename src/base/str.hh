/**
 * @file
 * Minimal string-formatting helpers.
 *
 * The toolchain in use lacks std::format, so Kindle provides csprintf(),
 * a type-safe "{}" substituting formatter in the spirit of gem5's
 * csprintf, plus a few small string utilities used by the reporting
 * code in benches and stats.
 */

#ifndef KINDLE_BASE_STR_HH
#define KINDLE_BASE_STR_HH

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace kindle
{

namespace detail
{

/** Terminal case: no arguments left; emit the rest of the format. */
void formatRest(std::ostringstream &os, std::string_view fmt);

/** Recursive case: substitute the next "{}" with @p first. */
template <typename First, typename... Rest>
void
formatRest(std::ostringstream &os, std::string_view fmt, First &&first,
           Rest &&...rest)
{
    const auto pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        // More args than placeholders: append remaining args at the end
        // separated by spaces rather than silently dropping them.
        os << fmt << ' ' << first;
        formatRest(os, std::string_view{}, std::forward<Rest>(rest)...);
        return;
    }
    os << fmt.substr(0, pos) << first;
    formatRest(os, fmt.substr(pos + 2), std::forward<Rest>(rest)...);
}

} // namespace detail

/**
 * Format @p fmt, replacing each "{}" with the next argument, streamed
 * via operator<<.  Surplus placeholders are kept verbatim; surplus
 * arguments are appended.
 */
template <typename... Args>
std::string
csprintf(std::string_view fmt, Args &&...args)
{
    std::ostringstream os;
    detail::formatRest(os, fmt, std::forward<Args>(args)...);
    return os.str();
}

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view s, char sep);

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Render a byte count as a human friendly string, e.g. "512MiB". */
std::string sizeToString(std::uint64_t bytes);

/** Render a fixed-precision double (reporting helper). */
std::string fixed(double v, int precision = 2);

} // namespace kindle

#endif // KINDLE_BASE_STR_HH
