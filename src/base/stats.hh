/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Components own Scalar / Formula / Distribution stats and register
 * them with a StatGroup.  Benches and tests read values by name; the
 * whole tree can be dumped as text.  Stats are plain doubles/counters —
 * no atomic machinery since the simulator is single threaded.
 */

#ifndef KINDLE_BASE_STATS_HH
#define KINDLE_BASE_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "base/logging.hh"

namespace kindle::statistics
{

/** A named monotonically updatable counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }
    void reset() { _value = 0; }

  private:
    double _value = 0;
};

/** Min/max/mean/count tracker for per-event samples. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (_count == 0 || v < _min)
            _min = v;
        if (_count == 0 || v > _max)
            _max = v;
        _sum += v;
        ++_count;
    }

    std::uint64_t count() const { return _count; }
    double min() const { return _count ? _min : 0; }
    double max() const { return _count ? _max : 0; }
    double sum() const { return _sum; }
    double
    mean() const
    {
        return _count ? _sum / static_cast<double>(_count) : 0;
    }

    void
    reset()
    {
        _count = 0;
        _sum = _min = _max = 0;
    }

  private:
    std::uint64_t _count = 0;
    double _sum = 0;
    double _min = 0;
    double _max = 0;
};

/**
 * A group of named stats belonging to one component.  Groups nest via
 * dotted names when registered with a parent.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a scalar under @p stat_name with a description. */
    Scalar &addScalar(const std::string &stat_name,
                      const std::string &desc);

    /** Register a distribution under @p stat_name. */
    Distribution &addDistribution(const std::string &stat_name,
                                  const std::string &desc);

    /** Attach a child group (not owned). */
    void addChild(StatGroup &child);

    /** Look up a scalar's current value; fatal if missing. */
    double scalarValue(const std::string &stat_name) const;

    /** Look up a distribution; fatal if missing. */
    const Distribution &
    distribution(const std::string &stat_name) const;

    /** True if a scalar with this name exists. */
    bool hasScalar(const std::string &stat_name) const;

    /** Reset every stat in this group and all children. */
    void resetAll();

    /** Dump "name value # desc" lines, recursively. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    const std::string &name() const { return _name; }

  private:
    struct ScalarEntry
    {
        Scalar stat;
        std::string desc;
    };
    struct DistEntry
    {
        Distribution stat;
        std::string desc;
    };

    std::string _name;
    std::map<std::string, ScalarEntry> scalars;
    std::map<std::string, DistEntry> dists;
    std::vector<StatGroup *> children;
};

} // namespace kindle::statistics

#endif // KINDLE_BASE_STATS_HH
