/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Components own Scalar / Gauge / Distribution / Histogram stats and
 * register them with a StatGroup; groups nest into a tree.  The tree
 * is consumed through a visitor (StatVisitor), with two stock
 * serializers:
 *
 *   - TextSerializer reproduces the classic "name value # desc" dump,
 *   - JsonSerializer emits a nested JSON object for tooling.
 *
 * StatSnapshot captures the whole tree as a flat path→value map so
 * callers can diff two instants (per-phase accounting: checkpoint vs
 * app time, HSCC selection vs copy) instead of keeping ad-hoc
 * counters.
 *
 * Stats are plain doubles/counters — no atomic machinery, because one
 * simulated machine is single threaded.  Concurrent *machines* (the
 * runner's sweep executor) are safe because every KindleSystem owns a
 * disjoint stat tree; there is no global registry.
 */

#ifndef KINDLE_BASE_STATS_HH
#define KINDLE_BASE_STATS_HH

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/json.hh"
#include "base/logging.hh"

namespace kindle::statistics
{

/**
 * A named monotonically updatable counter.  Deliberately has no
 * assignment from a raw value: a counter only ever accumulates, and
 * code that wants to *set* a level (queue depth, pool occupancy) must
 * use a Gauge so serialized output distinguishes the two semantics.
 */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }

    double value() const { return _value; }
    void reset() { _value = 0; }

  private:
    double _value = 0;
};

/**
 * A point-in-time level (buffer occupancy, free-list length).  Unlike
 * Scalar it may be assigned, incremented and decremented freely; a
 * snapshot of a gauge is the level *now*, and snapshot deltas of
 * gauges are level changes, not activity counts.
 */
class Gauge
{
  public:
    Gauge() = default;

    Gauge &operator=(double v) { _value = v; return *this; }
    Gauge &operator+=(double v) { _value += v; return *this; }
    Gauge &operator-=(double v) { _value -= v; return *this; }
    Gauge &operator++() { ++_value; return *this; }
    Gauge &operator--() { --_value; return *this; }

    void set(double v) { _value = v; }
    double value() const { return _value; }
    void reset() { _value = 0; }

  private:
    double _value = 0;
};

/**
 * Min/max/mean/count tracker for per-event samples.
 *
 * The empty state (no samples yet, or just after reset()) reports
 * min() == max() == mean() == 0 by convention; the first sample after
 * construction *or* reset() re-seeds min and max from that sample, so
 * reset-then-sample never leaks the pre-reset extrema.
 */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (_count == 0) {
            _min = _max = v;
        } else {
            if (v < _min)
                _min = v;
            if (v > _max)
                _max = v;
        }
        _sum += v;
        ++_count;
    }

    std::uint64_t count() const { return _count; }
    double min() const { return _count ? _min : 0; }
    double max() const { return _count ? _max : 0; }
    double sum() const { return _sum; }
    double
    mean() const
    {
        return _count ? _sum / static_cast<double>(_count) : 0;
    }

    void
    reset()
    {
        _count = 0;
        _sum = _min = _max = 0;
    }

  private:
    std::uint64_t _count = 0;
    double _sum = 0;
    double _min = 0;
    double _max = 0;
};

/**
 * Log2-bucketed sample distribution for values that span many orders
 * of magnitude (request latencies in ticks, queue depths).
 *
 * Bucket 0 holds exact zeros; bucket i (1..64) holds samples in
 * [2^(i-1), 2^i).  The top bucket's upper bound saturates at
 * UINT64_MAX, so a max-tick sample still lands in a bucket instead of
 * overflowing.  Negative samples clamp to zero (latencies and depths
 * are non-negative by construction; a clamp keeps a stray rounding
 * artifact from corrupting the bucket index).
 *
 * Alongside the buckets the histogram tracks count/sum/min/max with
 * Distribution's empty-state conventions, and derives quantiles from
 * the bucket boundaries (the reported quantile is the upper bound of
 * the bucket where the cumulative count crosses q — exact to within
 * one power of two, which is the resolution this stat trades for O(1)
 * memory).
 */
class Histogram
{
  public:
    /** Bucket 0 (zeros) + one bucket per power of two up to 2^64. */
    static constexpr unsigned numBuckets = 65;

    void
    sample(double v)
    {
        // Clamp before the back-cast: 2^64-1 rounds *up* to 2^64 as a
        // double, and casting that to uint64_t is undefined.
        constexpr double top =
            static_cast<double>(~std::uint64_t{0});
        const std::uint64_t u = v <= 0 ? 0
                                : v >= top
                                    ? ~std::uint64_t{0}
                                    : static_cast<std::uint64_t>(v);
        ++buckets[bucketIndex(u)];
        if (_count == 0) {
            _min = _max = v;
        } else {
            if (v < _min)
                _min = v;
            if (v > _max)
                _max = v;
        }
        _sum += v;
        ++_count;
    }

    /** Bucket index a value of @p u would land in. */
    static unsigned
    bucketIndex(std::uint64_t u)
    {
        return u == 0 ? 0 : 64 - std::countl_zero(u);
    }

    /** Inclusive lower bound of bucket @p i. */
    static std::uint64_t
    bucketLo(unsigned i)
    {
        return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    }

    /** Inclusive upper bound of bucket @p i (saturates at the top). */
    static std::uint64_t
    bucketHi(unsigned i)
    {
        if (i == 0)
            return 0;
        if (i >= 64)
            return ~std::uint64_t{0};
        return (std::uint64_t{1} << i) - 1;
    }

    std::uint64_t bucketCount(unsigned i) const { return buckets[i]; }

    std::uint64_t count() const { return _count; }
    double min() const { return _count ? _min : 0; }
    double max() const { return _count ? _max : 0; }
    double sum() const { return _sum; }
    double
    mean() const
    {
        return _count ? _sum / static_cast<double>(_count) : 0;
    }

    /**
     * Upper bound of the bucket containing the @p q-quantile sample
     * (0 <= q <= 1); 0 when empty.
     */
    double
    quantile(double q) const
    {
        if (_count == 0)
            return 0;
        const auto want = static_cast<std::uint64_t>(
            q * static_cast<double>(_count - 1));
        std::uint64_t seen = 0;
        for (unsigned i = 0; i < numBuckets; ++i) {
            seen += buckets[i];
            if (seen > want)
                return static_cast<double>(bucketHi(i));
        }
        return static_cast<double>(bucketHi(numBuckets - 1));
    }

    void
    reset()
    {
        buckets.fill(0);
        _count = 0;
        _sum = _min = _max = 0;
    }

  private:
    std::array<std::uint64_t, numBuckets> buckets{};
    std::uint64_t _count = 0;
    double _sum = 0;
    double _min = 0;
    double _max = 0;
};

/**
 * Consumer of a stat tree traversal.  StatGroup::accept() calls
 * beginGroup/endGroup around each group and visitScalar / visitGauge /
 * visitDistribution / visitHistogram for every stat, in the group's
 * canonical order (scalars sorted by name, then gauges, then
 * distributions, then histograms — each kind sorted by name — then
 * child groups in attachment order).  Serializers, snapshots and
 * ad-hoc queries are all visitors.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    virtual void beginGroup(const std::string &name,
                            const std::string &desc) = 0;
    virtual void endGroup() = 0;
    virtual void visitScalar(const std::string &name,
                             const std::string &desc,
                             const Scalar &stat) = 0;
    virtual void visitGauge(const std::string &name,
                            const std::string &desc,
                            const Gauge &stat) = 0;
    virtual void visitDistribution(const std::string &name,
                                   const std::string &desc,
                                   const Distribution &stat) = 0;
    virtual void visitHistogram(const std::string &name,
                                const std::string &desc,
                                const Histogram &stat) = 0;
};

/**
 * A group of named stats belonging to one component.  Groups nest via
 * addChild(); names within one group are unique across *both* stat
 * kinds — re-registering a name is a fatal configuration error.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, std::string desc = {})
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a scalar under @p stat_name with a description. */
    Scalar &addScalar(const std::string &stat_name,
                      const std::string &desc);

    /** Register a gauge under @p stat_name. */
    Gauge &addGauge(const std::string &stat_name,
                    const std::string &desc);

    /** Register a distribution under @p stat_name. */
    Distribution &addDistribution(const std::string &stat_name,
                                  const std::string &desc);

    /** Register a log-bucketed histogram under @p stat_name. */
    Histogram &addHistogram(const std::string &stat_name,
                            const std::string &desc);

    /** Attach a child group (not owned). */
    void addChild(StatGroup &child);

    /** Detach a child group previously attached with addChild(). */
    void removeChild(const StatGroup &child);

    /** Look up a scalar's current value; fatal if missing. */
    double scalarValue(const std::string &stat_name) const;

    /** Look up a gauge's current level; fatal if missing. */
    double gaugeValue(const std::string &stat_name) const;

    /** Look up a distribution; fatal if missing. */
    const Distribution &
    distribution(const std::string &stat_name) const;

    /** Look up a histogram; fatal if missing. */
    const Histogram &histogram(const std::string &stat_name) const;

    /** True if a scalar with this name exists. */
    bool hasScalar(const std::string &stat_name) const;

    /** Reset every stat in this group and all children. */
    void resetAll();

    /** Drive @p visitor over this group and all children. */
    void accept(StatVisitor &visitor) const;

    /** Dump "name value # desc" lines, recursively. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    const std::string &name() const { return _name; }
    const std::string &description() const { return _desc; }

  private:
    struct ScalarEntry
    {
        Scalar stat;
        std::string desc;
    };
    struct GaugeEntry
    {
        Gauge stat;
        std::string desc;
    };
    struct DistEntry
    {
        Distribution stat;
        std::string desc;
    };
    struct HistEntry
    {
        Histogram stat;
        std::string desc;
    };

    /** Fatal unless @p stat_name is unused across all stat kinds. */
    void checkNameFree(const std::string &stat_name) const;

    std::string _name;
    std::string _desc;
    std::map<std::string, ScalarEntry> scalars;
    std::map<std::string, GaugeEntry> gauges;
    std::map<std::string, DistEntry> dists;
    std::map<std::string, HistEntry> hists;
    std::vector<StatGroup *> children;
};

/**
 * Visitor producing the classic text dump:
 *
 *   # group.child: component description
 *   group.child.stat 42 # description
 *   group.child.dist::mean 1.5 # description
 *   group.child.dist::count 2 # description
 *
 * Groups with a description contribute a "# path: desc" header line.
 * An optional @p prefix is prepended to every path, matching the old
 * StatGroup::dump(os, prefix) behaviour.
 */
class TextSerializer : public StatVisitor
{
  public:
    explicit TextSerializer(std::ostream &os, std::string prefix = {})
        : out(os), stack{std::move(prefix)}
    {}

    void beginGroup(const std::string &name,
                    const std::string &desc) override;
    void endGroup() override;
    void visitScalar(const std::string &name, const std::string &desc,
                     const Scalar &stat) override;
    void visitGauge(const std::string &name, const std::string &desc,
                    const Gauge &stat) override;
    void visitDistribution(const std::string &name,
                           const std::string &desc,
                           const Distribution &stat) override;
    void visitHistogram(const std::string &name,
                        const std::string &desc,
                        const Histogram &stat) override;

  private:
    const std::string &path() const { return stack.back(); }

    std::ostream &out;
    std::vector<std::string> stack;
};

/**
 * Visitor producing a nested JSON object.  Groups become objects,
 * scalars numeric members and distributions objects with
 * count/min/max/mean/sum members.  The caller owns the surrounding
 * json::Writer, so several sibling trees can be serialized into one
 * enclosing object (KindleSystem dumps its component forest this way):
 *
 *   json::Writer w(os);
 *   w.beginObject();
 *   JsonSerializer ser(w);
 *   groupA.accept(ser);
 *   groupB.accept(ser);
 *   w.endObject();
 */
class JsonSerializer : public StatVisitor
{
  public:
    explicit JsonSerializer(json::Writer &writer) : out(writer) {}

    void beginGroup(const std::string &name,
                    const std::string &desc) override;
    void endGroup() override;
    void visitScalar(const std::string &name, const std::string &desc,
                     const Scalar &stat) override;
    void visitGauge(const std::string &name, const std::string &desc,
                    const Gauge &stat) override;
    void visitDistribution(const std::string &name,
                           const std::string &desc,
                           const Distribution &stat) override;
    void visitHistogram(const std::string &name,
                        const std::string &desc,
                        const Histogram &stat) override;

  private:
    json::Writer &out;
};

/**
 * A point-in-time copy of a stat tree (or forest) as a flat, sorted
 * path→value map.  Scalars and gauges appear under their dotted path;
 * distributions contribute "path::count", "path::sum", "path::min",
 * "path::max" and "path::mean"; histograms contribute the same five
 * plus one "path::b<i>" entry per non-empty bucket, so BENCH_*.json
 * records carry full latency distributions, not just means.
 *
 * Snapshots subtract: `later.delta(earlier)` yields the activity in
 * between — counters, count/sum entries and bucket counts are
 * differenced, ::mean is recomputed from the differenced sum and
 * count, and ::min/::max are dropped (extrema of an interval are not
 * recoverable from two endpoint snapshots).  Gauges difference too,
 * which for a level means "net change over the interval".
 */
class StatSnapshot
{
  public:
    StatSnapshot() = default;

    // The lookup index views into `values` map nodes, so copies must
    // not carry it over; moves may (node addresses survive a move).
    StatSnapshot(const StatSnapshot &other) : values(other.values) {}
    StatSnapshot &
    operator=(const StatSnapshot &other)
    {
        values = other.values;
        index.clear();
        return *this;
    }
    StatSnapshot(StatSnapshot &&) = default;
    StatSnapshot &operator=(StatSnapshot &&) = default;

    /** Capture @p root and everything below it. */
    static StatSnapshot capture(const StatGroup &root);

    /** Visitor that appends into an existing snapshot (forest use). */
    class Builder : public StatVisitor
    {
      public:
        explicit Builder(StatSnapshot &snap) : snap(snap) {}

        void beginGroup(const std::string &name,
                        const std::string &desc) override;
        void endGroup() override;
        void visitScalar(const std::string &name,
                         const std::string &desc,
                         const Scalar &stat) override;
        void visitGauge(const std::string &name,
                        const std::string &desc,
                        const Gauge &stat) override;
        void visitDistribution(const std::string &name,
                               const std::string &desc,
                               const Distribution &stat) override;
        void visitHistogram(const std::string &name,
                            const std::string &desc,
                            const Histogram &stat) override;

      private:
        std::string joined(const std::string &leaf) const;

        StatSnapshot &snap;
        std::vector<std::string> stack;
    };

    bool has(const std::string &path) const;

    /** Value at @p path; fatal if absent. */
    double get(const std::string &path) const;

    /** Value at @p path, or @p fallback if absent. */
    double getOr(const std::string &path, double fallback) const;

    /** Stats recorded between @p earlier and this snapshot. */
    StatSnapshot delta(const StatSnapshot &earlier) const;

    /**
     * Insert or overwrite one entry.  Lets harness code attach derived
     * values (classifications, oracle verdicts) next to captured stats
     * so they travel through the same export pipeline.
     */
    void set(const std::string &path, double value)
    {
        values[path] = value;
    }

    /** Serialize as one flat JSON object. */
    void writeJson(json::Writer &writer) const;

    const std::map<std::string, double> &entries() const
    {
        return values;
    }

    bool operator==(const StatSnapshot &other) const
    {
        return values == other.values;
    }

  private:
    /** &values[path] via the O(1) index, or nullptr if absent. */
    const double *find(const std::string &path) const;

    std::map<std::string, double> values;

    /**
     * Lazy O(1) path→value index behind has/get/getOr.  Oracles and
     * the telemetry sampler probe the same few paths once per
     * checkpoint or sample over snapshots with hundreds of entries;
     * hashing beats walking the map every time.  Keys view into the
     * `values` node keys (node addresses are stable under insert and
     * move).  Nothing ever erases an entry — set() and the Builder
     * only insert or overwrite in place — so `index.size() !=
     * values.size()` is a complete staleness test.
     */
    mutable std::unordered_map<std::string_view, const double *> index;
};

} // namespace kindle::statistics

#endif // KINDLE_BASE_STATS_HH
