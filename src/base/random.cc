#include "base/random.hh"

#include <cmath>

namespace kindle
{

ZipfianGenerator::ZipfianGenerator(std::uint64_t n_arg, double theta_arg,
                                   std::uint64_t seed)
    : n(n_arg), theta(theta_arg), rng(seed)
{
    kindle_assert(n > 0, "zipfian over empty item set");
    kindle_assert(theta > 0.0 && theta < 1.0,
                  "zipfian skew must be in (0,1), got {}", theta);
    alpha = 1.0 / (1.0 - theta);
    zetan = zeta(n, theta);
    const double zeta2 = zeta(2, theta);
    eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
          (1.0 - zeta2 / zetan);
}

double
ZipfianGenerator::zeta(std::uint64_t count, double theta_arg) const
{
    // Exact sum for small n; sampled harmonic approximation above a
    // threshold to keep constructor cost bounded for huge key spaces.
    constexpr std::uint64_t exactLimit = 1u << 20;
    double sum = 0.0;
    if (count <= exactLimit) {
        for (std::uint64_t i = 1; i <= count; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta_arg);
        return sum;
    }
    for (std::uint64_t i = 1; i <= exactLimit; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta_arg);
    // Integral tail approximation of sum_{exactLimit+1..count} i^-theta.
    const double a = static_cast<double>(exactLimit);
    const double b = static_cast<double>(count);
    sum += (std::pow(b, 1.0 - theta_arg) - std::pow(a, 1.0 - theta_arg)) /
           (1.0 - theta_arg);
    return sum;
}

std::uint64_t
ZipfianGenerator::next()
{
    const double u = rng.uniformReal();
    const double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    const double frac =
        static_cast<double>(n) *
        std::pow(eta * u - eta + 1.0, alpha);
    auto idx = static_cast<std::uint64_t>(frac);
    return idx >= n ? n - 1 : idx;
}

} // namespace kindle
