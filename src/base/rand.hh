/**
 * @file
 * Shared seeded-randomness helpers layered over base/random.hh.
 *
 * Random (xorshift64*) and ZipfianGenerator give every stochastic
 * component a deterministic stream, but the code that *derives* seeds
 * for substreams had grown ad hoc: the fuzz harnesses seeded per-point
 * plans with `base + index` (adjacent xorshift states are correlated),
 * and workload generators xor'ed magic constants.  This header is the
 * one home for that plumbing:
 *
 *  - splitmix64(): the Steele et al. finalizer, the standard way to
 *    turn a counter into a decorrelated 64-bit seed;
 *  - deriveSeed(): substream derivation — deriveSeed(base, k) gives
 *    stream k of base, decorrelated from streams k-1 and k+1;
 *  - expInterval(): exponential inter-arrival draws for open-loop
 *    Poisson request generators;
 *  - WeightedPicker: seeded draw from a small discrete distribution
 *    (tenant size classes, request type mixes).
 *
 * The fleet workload generator (src/fleet) and the fuzz harnesses
 * (bench/fuzz_common.hh) both build on these.
 */

#ifndef KINDLE_BASE_RAND_HH
#define KINDLE_BASE_RAND_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"

namespace kindle::rand
{

/**
 * The splitmix64 finalizer (Steele, Lea & Flood): a bijective mixer
 * whose output is decorrelated even for sequential inputs.  Use it to
 * turn counters, ids and composite keys into PRNG seeds.
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Seed for substream @p stream of master seed @p base.  Adjacent
 * streams are decorrelated (unlike `base + stream`, which hands
 * xorshift64* nearly identical start states).
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    return splitmix64(base ^ splitmix64(stream));
}

/**
 * One exponential inter-arrival interval with mean @p mean (an
 * open-loop Poisson process draws these back to back).  Always
 * positive; the 1-u transform keeps log() away from zero.
 */
inline double
expInterval(Random &rng, double mean)
{
    kindle_assert(mean > 0.0, "expInterval with non-positive mean");
    return -mean * std::log(1.0 - rng.uniformReal());
}

/**
 * Seedless draw from a small discrete distribution: pick(rng) returns
 * the index of one weight, with probability proportional to it.
 * Weights are cumulated once at construction; draws are a binary
 * search, so per-tenant class picks stay O(log n) however many
 * classes a fleet defines.
 */
class WeightedPicker
{
  public:
    explicit WeightedPicker(std::vector<double> weights)
    {
        double sum = 0.0;
        for (double w : weights) {
            kindle_assert(w >= 0.0, "negative weight");
            sum += w;
            cum.push_back(sum);
        }
        kindle_assert(sum > 0.0, "weights sum to zero");
    }

    std::size_t
    pick(Random &rng) const
    {
        const double x = rng.uniformReal() * cum.back();
        std::size_t lo = 0, hi = cum.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (cum[mid] > x)
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    }

    std::size_t size() const { return cum.size(); }

  private:
    std::vector<double> cum;
};

} // namespace kindle::rand

#endif // KINDLE_BASE_RAND_HH
