/**
 * @file
 * Integer math helpers used by the memory system and allocators.
 */

#ifndef KINDLE_BASE_INTMATH_HH
#define KINDLE_BASE_INTMATH_HH

#include <bit>
#include <cstdint>

#include "base/logging.hh"

namespace kindle
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPowerOf2(v) ? 0 : 1);
}

/** ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p v down to a multiple of @p align (align must be pow2). */
constexpr std::uint64_t
roundDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (align must be pow2). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** True iff @p v is aligned to @p align (align must be pow2). */
constexpr bool
isAligned(std::uint64_t v, std::uint64_t align)
{
    return (v & (align - 1)) == 0;
}

/** Index of the lowest set bit of @p v (64 when v == 0). */
constexpr unsigned
countTrailingZeros(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Number of leading zero bits of @p v (64 when v == 0). */
constexpr unsigned
countLeadingZeros(std::uint64_t v)
{
    return static_cast<unsigned>(std::countl_zero(v));
}

static_assert(isPowerOf2(4096));
static_assert(countTrailingZeros(0x8) == 3);
static_assert(countLeadingZeros(std::uint64_t(1) << 63) == 0);
static_assert(countLeadingZeros(0) == 64);
static_assert(countTrailingZeros(0) == 64);
static_assert(floorLog2(4096) == 12);
static_assert(ceilLog2(4097) == 13);
static_assert(divCeil(10, 4) == 3);
static_assert(roundUp(4097, 4096) == 8192);
static_assert(roundDown(4097, 4096) == 4096);

} // namespace kindle

#endif // KINDLE_BASE_INTMATH_HH
