#include "base/json.hh"

#include <cmath>
#include <cstdio>

#include "base/logging.hh"

namespace kindle::json
{

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatNumber(double v)
{
    if (!std::isfinite(v))
        return "null";  // JSON has no inf/nan; stats never produce them
    // Counters dominate Kindle stats: print integral values exactly.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
Writer::newline()
{
    out << '\n';
    for (std::size_t i = 0; i < scopes.size(); ++i)
        for (int s = 0; s < indentWidth; ++s)
            out << ' ';
}

void
Writer::beforeValue()
{
    if (scopes.empty()) {
        kindle_assert(!keyPending, "json: key outside any object");
        return;
    }
    if (scopes.back() == Scope::object) {
        kindle_assert(keyPending,
                      "json: object member needs a key() first");
        keyPending = false;
        return;
    }
    // Array element.
    if (scopeHasItems.back())
        out << ',';
    scopeHasItems.back() = true;
    newline();
}

void
Writer::beforeContainer(Scope s)
{
    beforeValue();
    scopes.push_back(s);
    scopeHasItems.push_back(false);
}

void
Writer::beginObject()
{
    beforeContainer(Scope::object);
    out << '{';
}

void
Writer::endObject()
{
    kindle_assert(!scopes.empty() && scopes.back() == Scope::object,
                  "json: endObject without a matching beginObject");
    kindle_assert(!keyPending, "json: dangling key at endObject");
    const bool had = scopeHasItems.back();
    scopes.pop_back();
    scopeHasItems.pop_back();
    if (had)
        newline();
    out << '}';
}

void
Writer::beginArray()
{
    beforeContainer(Scope::array);
    out << '[';
}

void
Writer::endArray()
{
    kindle_assert(!scopes.empty() && scopes.back() == Scope::array,
                  "json: endArray without a matching beginArray");
    const bool had = scopeHasItems.back();
    scopes.pop_back();
    scopeHasItems.pop_back();
    if (had)
        newline();
    out << ']';
}

void
Writer::key(std::string_view k)
{
    kindle_assert(!scopes.empty() && scopes.back() == Scope::object,
                  "json: key() outside an object");
    kindle_assert(!keyPending, "json: two keys in a row");
    if (scopeHasItems.back())
        out << ',';
    scopeHasItems.back() = true;
    newline();
    out << '"' << escape(k) << "\": ";
    keyPending = true;
}

void
Writer::value(std::string_view s)
{
    beforeValue();
    out << '"' << escape(s) << '"';
}

void
Writer::value(double v)
{
    beforeValue();
    out << formatNumber(v);
}

void
Writer::value(std::uint64_t v)
{
    beforeValue();
    out << v;
}

void
Writer::value(std::int64_t v)
{
    beforeValue();
    out << v;
}

void
Writer::value(bool b)
{
    beforeValue();
    out << (b ? "true" : "false");
}

void
Writer::null()
{
    beforeValue();
    out << "null";
}

} // namespace kindle::json
