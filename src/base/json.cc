#include "base/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"

namespace kindle::json
{

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatNumber(double v)
{
    if (!std::isfinite(v))
        return "null";  // JSON has no inf/nan; stats never produce them
    // Counters dominate Kindle stats: print integral values exactly.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
Writer::newline()
{
    out << '\n';
    for (std::size_t i = 0; i < scopes.size(); ++i)
        for (int s = 0; s < indentWidth; ++s)
            out << ' ';
}

void
Writer::beforeValue()
{
    if (scopes.empty()) {
        kindle_assert(!keyPending, "json: key outside any object");
        return;
    }
    if (scopes.back() == Scope::object) {
        kindle_assert(keyPending,
                      "json: object member needs a key() first");
        keyPending = false;
        return;
    }
    // Array element.
    if (scopeHasItems.back())
        out << ',';
    scopeHasItems.back() = true;
    newline();
}

void
Writer::beforeContainer(Scope s)
{
    beforeValue();
    scopes.push_back(s);
    scopeHasItems.push_back(false);
}

void
Writer::beginObject()
{
    beforeContainer(Scope::object);
    out << '{';
}

void
Writer::endObject()
{
    kindle_assert(!scopes.empty() && scopes.back() == Scope::object,
                  "json: endObject without a matching beginObject");
    kindle_assert(!keyPending, "json: dangling key at endObject");
    const bool had = scopeHasItems.back();
    scopes.pop_back();
    scopeHasItems.pop_back();
    if (had)
        newline();
    out << '}';
}

void
Writer::beginArray()
{
    beforeContainer(Scope::array);
    out << '[';
}

void
Writer::endArray()
{
    kindle_assert(!scopes.empty() && scopes.back() == Scope::array,
                  "json: endArray without a matching beginArray");
    const bool had = scopeHasItems.back();
    scopes.pop_back();
    scopeHasItems.pop_back();
    if (had)
        newline();
    out << ']';
}

void
Writer::key(std::string_view k)
{
    kindle_assert(!scopes.empty() && scopes.back() == Scope::object,
                  "json: key() outside an object");
    kindle_assert(!keyPending, "json: two keys in a row");
    if (scopeHasItems.back())
        out << ',';
    scopeHasItems.back() = true;
    newline();
    out << '"' << escape(k) << "\": ";
    keyPending = true;
}

void
Writer::value(std::string_view s)
{
    beforeValue();
    out << '"' << escape(s) << '"';
}

void
Writer::value(double v)
{
    beforeValue();
    out << formatNumber(v);
}

void
Writer::value(std::uint64_t v)
{
    beforeValue();
    out << v;
}

void
Writer::value(std::int64_t v)
{
    beforeValue();
    out << v;
}

void
Writer::value(bool b)
{
    beforeValue();
    out << (b ? "true" : "false");
}

void
Writer::null()
{
    beforeValue();
    out << "null";
}

// ---------------------------------------------------------------------
// Reader

const Value *
Value::find(std::string_view key) const
{
    for (const auto &[k, v] : _members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

Value
Value::makeBool(bool b)
{
    Value v;
    v._kind = Kind::boolean;
    v._bool = b;
    return v;
}

Value
Value::makeNumber(double n)
{
    Value v;
    v._kind = Kind::number;
    v._number = n;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v._kind = Kind::string;
    v._string = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> items)
{
    Value v;
    v._kind = Kind::array;
    v._items = std::move(items);
    return v;
}

Value
Value::makeObject(std::vector<Member> members)
{
    Value v;
    v._kind = Kind::object;
    v._members = std::move(members);
    return v;
}

namespace
{

/** Recursive-descent parser over a string_view with one-token state. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text(text) {}

    std::optional<Value>
    run(std::string *err)
    {
        std::optional<Value> v = parseValue(0);
        if (v) {
            skipWs();
            if (pos != text.size()) {
                v.reset();
                error = "trailing content after document";
            }
        }
        if (!v && err)
            *err = error + " at byte " + std::to_string(pos);
        return v;
    }

  private:
    // Deep enough for any Kindle output, shallow enough that a
    // corrupt file cannot recurse the stack away.
    static constexpr int maxDepth = 256;

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word) {
            error = "bad literal";
            return false;
        }
        pos += word.size();
        return true;
    }

    std::optional<Value>
    parseValue(int depth)
    {
        if (depth > maxDepth) {
            error = "nesting too deep";
            return std::nullopt;
        }
        skipWs();
        if (pos >= text.size()) {
            error = "unexpected end of document";
            return std::nullopt;
        }
        switch (text[pos]) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"': {
            std::optional<std::string> s = parseString();
            if (!s)
                return std::nullopt;
            return Value::makeString(std::move(*s));
          }
          case 't':
            if (!literal("true"))
                return std::nullopt;
            return Value::makeBool(true);
          case 'f':
            if (!literal("false"))
                return std::nullopt;
            return Value::makeBool(false);
          case 'n':
            if (!literal("null"))
                return std::nullopt;
            return Value::makeNull();
          default:
            return parseNumber();
        }
    }

    std::optional<Value>
    parseObject(int depth)
    {
        ++pos; // '{'
        std::vector<Value::Member> members;
        skipWs();
        if (consume('}'))
            return Value::makeObject(std::move(members));
        for (;;) {
            skipWs();
            std::optional<std::string> key = parseString();
            if (!key)
                return std::nullopt;
            skipWs();
            if (!consume(':')) {
                error = "expected ':' after object key";
                return std::nullopt;
            }
            std::optional<Value> v = parseValue(depth + 1);
            if (!v)
                return std::nullopt;
            members.emplace_back(std::move(*key), std::move(*v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return Value::makeObject(std::move(members));
            error = "expected ',' or '}' in object";
            return std::nullopt;
        }
    }

    std::optional<Value>
    parseArray(int depth)
    {
        ++pos; // '['
        std::vector<Value> items;
        skipWs();
        if (consume(']'))
            return Value::makeArray(std::move(items));
        for (;;) {
            std::optional<Value> v = parseValue(depth + 1);
            if (!v)
                return std::nullopt;
            items.push_back(std::move(*v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return Value::makeArray(std::move(items));
            error = "expected ',' or ']' in array";
            return std::nullopt;
        }
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"')) {
            error = "expected string";
            return std::nullopt;
        }
        std::string out;
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                error = "raw control character in string";
                return std::nullopt;
            }
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= text.size())
                break;
            const char esc = text[pos++];
            switch (esc) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'u': {
                std::optional<unsigned> cp = parseHex4();
                if (!cp)
                    return std::nullopt;
                unsigned code = *cp;
                // Combine a surrogate pair when one follows.
                if (code >= 0xd800 && code <= 0xdbff &&
                    text.substr(pos, 2) == "\\u") {
                    pos += 2;
                    std::optional<unsigned> lo = parseHex4();
                    if (!lo)
                        return std::nullopt;
                    if (*lo < 0xdc00 || *lo > 0xdfff) {
                        error = "bad low surrogate";
                        return std::nullopt;
                    }
                    code = 0x10000 + ((code - 0xd800) << 10) +
                           (*lo - 0xdc00);
                }
                appendUtf8(out, code);
                break;
              }
              default:
                error = "bad escape";
                return std::nullopt;
            }
        }
        error = "unterminated string";
        return std::nullopt;
    }

    std::optional<unsigned>
    parseHex4()
    {
        if (pos + 4 > text.size()) {
            error = "truncated \\u escape";
            return std::nullopt;
        }
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else {
                error = "bad \\u escape";
                return std::nullopt;
            }
        }
        return v;
    }

    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    std::optional<Value>
    parseNumber()
    {
        const std::size_t start = pos;
        consume('-');
        if (!consume('0')) {
            const std::size_t digits = pos;
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
            if (pos == digits) {
                error = "expected value";
                pos = start;
                return std::nullopt;
            }
        }
        if (consume('.')) {
            const std::size_t digits = pos;
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
            if (pos == digits) {
                error = "digits required after decimal point";
                return std::nullopt;
            }
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            const std::size_t digits = pos;
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
            if (pos == digits) {
                error = "digits required in exponent";
                return std::nullopt;
            }
        }
        const std::string slice(text.substr(start, pos - start));
        return Value::makeNumber(std::strtod(slice.c_str(), nullptr));
    }

    std::string_view text;
    std::size_t pos = 0;
    std::string error = "malformed document";
};

} // namespace

std::optional<Value>
parse(std::string_view text, std::string *err)
{
    return Parser(text).run(err);
}

} // namespace kindle::json
