#include "base/stats.hh"

namespace kindle::statistics
{

Scalar &
StatGroup::addScalar(const std::string &stat_name, const std::string &desc)
{
    auto [it, inserted] = scalars.try_emplace(stat_name);
    kindle_assert(inserted, "duplicate scalar stat {}.{}", _name,
                  stat_name);
    it->second.desc = desc;
    return it->second.stat;
}

Distribution &
StatGroup::addDistribution(const std::string &stat_name,
                           const std::string &desc)
{
    auto [it, inserted] = dists.try_emplace(stat_name);
    kindle_assert(inserted, "duplicate distribution stat {}.{}", _name,
                  stat_name);
    it->second.desc = desc;
    return it->second.stat;
}

void
StatGroup::addChild(StatGroup &child)
{
    children.push_back(&child);
}

double
StatGroup::scalarValue(const std::string &stat_name) const
{
    // Dotted names descend into child groups: "child.stat".
    const auto dot = stat_name.find('.');
    if (dot != std::string::npos) {
        const std::string head = stat_name.substr(0, dot);
        for (const auto *c : children) {
            if (c->_name == head)
                return c->scalarValue(stat_name.substr(dot + 1));
        }
        kindle_fatal("no child stat group named {}.{}", _name, head);
    }
    const auto it = scalars.find(stat_name);
    if (it == scalars.end())
        kindle_fatal("no scalar stat named {}.{}", _name, stat_name);
    return it->second.stat.value();
}

const Distribution &
StatGroup::distribution(const std::string &stat_name) const
{
    const auto it = dists.find(stat_name);
    if (it == dists.end())
        kindle_fatal("no distribution stat named {}.{}", _name, stat_name);
    return it->second.stat;
}

bool
StatGroup::hasScalar(const std::string &stat_name) const
{
    return scalars.count(stat_name) != 0;
}

void
StatGroup::resetAll()
{
    for (auto &[k, e] : scalars)
        e.stat.reset();
    for (auto &[k, e] : dists)
        e.stat.reset();
    for (auto *c : children)
        c->resetAll();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[k, e] : scalars) {
        os << full << '.' << k << ' ' << e.stat.value() << " # "
           << e.desc << '\n';
    }
    for (const auto &[k, e] : dists) {
        os << full << '.' << k << "::mean " << e.stat.mean() << " # "
           << e.desc << '\n';
        os << full << '.' << k << "::count " << e.stat.count() << " # "
           << e.desc << '\n';
    }
    for (const auto *c : children)
        c->dump(os, full);
}

} // namespace kindle::statistics
