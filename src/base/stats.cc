#include "base/stats.hh"

#include <algorithm>

namespace kindle::statistics
{

void
StatGroup::checkNameFree(const std::string &stat_name) const
{
    const char *kind = nullptr;
    if (scalars.count(stat_name))
        kind = "scalar";
    else if (gauges.count(stat_name))
        kind = "gauge";
    else if (dists.count(stat_name))
        kind = "distribution";
    else if (hists.count(stat_name))
        kind = "histogram";
    if (kind) {
        kindle_fatal("stat {}.{} already registered as a {}", _name,
                     stat_name, kind);
    }
}

Scalar &
StatGroup::addScalar(const std::string &stat_name, const std::string &desc)
{
    checkNameFree(stat_name);
    auto [it, inserted] = scalars.try_emplace(stat_name);
    (void)inserted;
    it->second.desc = desc;
    return it->second.stat;
}

Gauge &
StatGroup::addGauge(const std::string &stat_name, const std::string &desc)
{
    checkNameFree(stat_name);
    auto [it, inserted] = gauges.try_emplace(stat_name);
    (void)inserted;
    it->second.desc = desc;
    return it->second.stat;
}

Distribution &
StatGroup::addDistribution(const std::string &stat_name,
                           const std::string &desc)
{
    checkNameFree(stat_name);
    auto [it, inserted] = dists.try_emplace(stat_name);
    (void)inserted;
    it->second.desc = desc;
    return it->second.stat;
}

Histogram &
StatGroup::addHistogram(const std::string &stat_name,
                        const std::string &desc)
{
    checkNameFree(stat_name);
    auto [it, inserted] = hists.try_emplace(stat_name);
    (void)inserted;
    it->second.desc = desc;
    return it->second.stat;
}

void
StatGroup::addChild(StatGroup &child)
{
    children.push_back(&child);
}

void
StatGroup::removeChild(const StatGroup &child)
{
    children.erase(
        std::remove(children.begin(), children.end(), &child),
        children.end());
}

double
StatGroup::scalarValue(const std::string &stat_name) const
{
    // Dotted names descend into child groups: "child.stat".
    const auto dot = stat_name.find('.');
    if (dot != std::string::npos) {
        const std::string head = stat_name.substr(0, dot);
        for (const auto *c : children) {
            if (c->_name == head)
                return c->scalarValue(stat_name.substr(dot + 1));
        }
        kindle_fatal("no child stat group named {}.{}", _name, head);
    }
    const auto it = scalars.find(stat_name);
    if (it == scalars.end())
        kindle_fatal("no scalar stat named {}.{}", _name, stat_name);
    return it->second.stat.value();
}

double
StatGroup::gaugeValue(const std::string &stat_name) const
{
    const auto it = gauges.find(stat_name);
    if (it == gauges.end())
        kindle_fatal("no gauge stat named {}.{}", _name, stat_name);
    return it->second.stat.value();
}

const Distribution &
StatGroup::distribution(const std::string &stat_name) const
{
    const auto it = dists.find(stat_name);
    if (it == dists.end())
        kindle_fatal("no distribution stat named {}.{}", _name, stat_name);
    return it->second.stat;
}

const Histogram &
StatGroup::histogram(const std::string &stat_name) const
{
    const auto it = hists.find(stat_name);
    if (it == hists.end())
        kindle_fatal("no histogram stat named {}.{}", _name, stat_name);
    return it->second.stat;
}

bool
StatGroup::hasScalar(const std::string &stat_name) const
{
    return scalars.count(stat_name) != 0;
}

void
StatGroup::resetAll()
{
    for (auto &[k, e] : scalars)
        e.stat.reset();
    for (auto &[k, e] : gauges)
        e.stat.reset();
    for (auto &[k, e] : dists)
        e.stat.reset();
    for (auto &[k, e] : hists)
        e.stat.reset();
    for (auto *c : children)
        c->resetAll();
}

void
StatGroup::accept(StatVisitor &visitor) const
{
    visitor.beginGroup(_name, _desc);
    for (const auto &[k, e] : scalars)
        visitor.visitScalar(k, e.desc, e.stat);
    for (const auto &[k, e] : gauges)
        visitor.visitGauge(k, e.desc, e.stat);
    for (const auto &[k, e] : dists)
        visitor.visitDistribution(k, e.desc, e.stat);
    for (const auto &[k, e] : hists)
        visitor.visitHistogram(k, e.desc, e.stat);
    for (const auto *c : children)
        c->accept(visitor);
    visitor.endGroup();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    TextSerializer text(os, prefix);
    accept(text);
}

// ---------------------------------------------------------------------
// TextSerializer

void
TextSerializer::beginGroup(const std::string &name,
                           const std::string &desc)
{
    const std::string &parent = stack.back();
    stack.push_back(parent.empty() ? name : parent + "." + name);
    if (!desc.empty())
        out << "# " << stack.back() << ": " << desc << '\n';
}

void
TextSerializer::endGroup()
{
    stack.pop_back();
}

void
TextSerializer::visitScalar(const std::string &name,
                            const std::string &desc, const Scalar &stat)
{
    out << path() << '.' << name << ' ' << stat.value() << " # "
        << desc << '\n';
}

void
TextSerializer::visitGauge(const std::string &name,
                           const std::string &desc, const Gauge &stat)
{
    out << path() << '.' << name << ' ' << stat.value() << " # "
        << desc << '\n';
}

void
TextSerializer::visitDistribution(const std::string &name,
                                  const std::string &desc,
                                  const Distribution &stat)
{
    out << path() << '.' << name << "::mean " << stat.mean() << " # "
        << desc << '\n';
    out << path() << '.' << name << "::count " << stat.count() << " # "
        << desc << '\n';
}

void
TextSerializer::visitHistogram(const std::string &name,
                               const std::string &desc,
                               const Histogram &stat)
{
    out << path() << '.' << name << "::mean " << stat.mean() << " # "
        << desc << '\n';
    out << path() << '.' << name << "::count " << stat.count() << " # "
        << desc << '\n';
    out << path() << '.' << name << "::p50 " << stat.quantile(0.50)
        << " # " << desc << '\n';
    out << path() << '.' << name << "::p99 " << stat.quantile(0.99)
        << " # " << desc << '\n';
}

// ---------------------------------------------------------------------
// JsonSerializer

void
JsonSerializer::beginGroup(const std::string &name,
                           const std::string &desc)
{
    (void)desc;
    out.key(name);
    out.beginObject();
}

void
JsonSerializer::endGroup()
{
    out.endObject();
}

void
JsonSerializer::visitScalar(const std::string &name,
                            const std::string &desc, const Scalar &stat)
{
    (void)desc;
    out.keyValue(name, stat.value());
}

void
JsonSerializer::visitGauge(const std::string &name,
                           const std::string &desc, const Gauge &stat)
{
    (void)desc;
    out.keyValue(name, stat.value());
}

void
JsonSerializer::visitDistribution(const std::string &name,
                                  const std::string &desc,
                                  const Distribution &stat)
{
    (void)desc;
    out.key(name);
    out.beginObject();
    out.keyValue("count", stat.count());
    out.keyValue("min", stat.min());
    out.keyValue("max", stat.max());
    out.keyValue("mean", stat.mean());
    out.keyValue("sum", stat.sum());
    out.endObject();
}

void
JsonSerializer::visitHistogram(const std::string &name,
                               const std::string &desc,
                               const Histogram &stat)
{
    (void)desc;
    out.key(name);
    out.beginObject();
    out.keyValue("count", stat.count());
    out.keyValue("min", stat.min());
    out.keyValue("max", stat.max());
    out.keyValue("mean", stat.mean());
    out.keyValue("sum", stat.sum());
    out.keyValue("p50", stat.quantile(0.50));
    out.keyValue("p99", stat.quantile(0.99));
    out.key("buckets");
    out.beginArray();
    for (unsigned i = 0; i < Histogram::numBuckets; ++i) {
        if (stat.bucketCount(i) == 0)
            continue;
        out.beginObject();
        out.keyValue("lo", Histogram::bucketLo(i));
        out.keyValue("hi", Histogram::bucketHi(i));
        out.keyValue("count", stat.bucketCount(i));
        out.endObject();
    }
    out.endArray();
    out.endObject();
}

// ---------------------------------------------------------------------
// StatSnapshot

StatSnapshot
StatSnapshot::capture(const StatGroup &root)
{
    StatSnapshot snap;
    Builder builder(snap);
    root.accept(builder);
    return snap;
}

std::string
StatSnapshot::Builder::joined(const std::string &leaf) const
{
    return stack.empty() ? leaf : stack.back() + "." + leaf;
}

void
StatSnapshot::Builder::beginGroup(const std::string &name,
                                  const std::string &desc)
{
    (void)desc;
    stack.push_back(joined(name));
}

void
StatSnapshot::Builder::endGroup()
{
    stack.pop_back();
}

void
StatSnapshot::Builder::visitScalar(const std::string &name,
                                   const std::string &desc,
                                   const Scalar &stat)
{
    (void)desc;
    snap.values[joined(name)] = stat.value();
}

void
StatSnapshot::Builder::visitGauge(const std::string &name,
                                  const std::string &desc,
                                  const Gauge &stat)
{
    (void)desc;
    snap.values[joined(name)] = stat.value();
}

void
StatSnapshot::Builder::visitDistribution(const std::string &name,
                                         const std::string &desc,
                                         const Distribution &stat)
{
    (void)desc;
    const std::string path = joined(name);
    snap.values[path + "::count"] =
        static_cast<double>(stat.count());
    snap.values[path + "::sum"] = stat.sum();
    snap.values[path + "::min"] = stat.min();
    snap.values[path + "::max"] = stat.max();
    snap.values[path + "::mean"] = stat.mean();
}

void
StatSnapshot::Builder::visitHistogram(const std::string &name,
                                      const std::string &desc,
                                      const Histogram &stat)
{
    (void)desc;
    const std::string path = joined(name);
    snap.values[path + "::count"] =
        static_cast<double>(stat.count());
    snap.values[path + "::sum"] = stat.sum();
    snap.values[path + "::min"] = stat.min();
    snap.values[path + "::max"] = stat.max();
    snap.values[path + "::mean"] = stat.mean();
    // One entry per non-empty bucket; bucket counts are counters, so
    // snapshot deltas difference them like any other count.
    for (unsigned i = 0; i < Histogram::numBuckets; ++i) {
        if (stat.bucketCount(i) == 0)
            continue;
        snap.values[path + "::b" + std::to_string(i)] =
            static_cast<double>(stat.bucketCount(i));
    }
}

const double *
StatSnapshot::find(const std::string &path) const
{
    if (index.size() != values.size()) {
        index.clear();
        index.reserve(values.size());
        for (const auto &[k, v] : values)
            index.emplace(std::string_view(k), &v);
    }
    const auto it = index.find(std::string_view(path));
    return it == index.end() ? nullptr : it->second;
}

bool
StatSnapshot::has(const std::string &path) const
{
    return find(path) != nullptr;
}

double
StatSnapshot::get(const std::string &path) const
{
    const double *v = find(path);
    if (!v)
        kindle_fatal("no stat snapshot entry named {}", path);
    return *v;
}

double
StatSnapshot::getOr(const std::string &path, double fallback) const
{
    const double *v = find(path);
    return v ? *v : fallback;
}

namespace
{

bool
endsWith(const std::string &s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

} // namespace

StatSnapshot
StatSnapshot::delta(const StatSnapshot &earlier) const
{
    StatSnapshot out;
    for (const auto &[path, later_v] : values) {
        // Interval extrema are unknowable from endpoint snapshots.
        if (endsWith(path, "::min") || endsWith(path, "::max") ||
            endsWith(path, "::mean"))
            continue;
        out.values[path] = later_v - earlier.getOr(path, 0);
    }
    // Recompute ::mean from the differenced sum and count.
    for (const auto &[path, later_v] : values) {
        (void)later_v;
        if (!endsWith(path, "::count"))
            continue;
        const std::string base =
            path.substr(0, path.size() - std::string("::count").size());
        const double dcount = out.values[path];
        const double dsum = out.getOr(base + "::sum", 0);
        out.values[base + "::mean"] = dcount ? dsum / dcount : 0;
    }
    return out;
}

void
StatSnapshot::writeJson(json::Writer &writer) const
{
    writer.beginObject();
    for (const auto &[path, v] : values)
        writer.keyValue(path, v);
    writer.endObject();
}

} // namespace kindle::statistics
