/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in Kindle (workload generators, zipfian
 * key pickers) draws from an explicitly seeded Xorshift64* stream, so
 * a given configuration always produces the same simulation, tick for
 * tick.  Host randomness and wall-clock time are never consulted.
 */

#ifndef KINDLE_BASE_RANDOM_HH
#define KINDLE_BASE_RANDOM_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace kindle
{

/** Seedable xorshift64* PRNG; small, fast, deterministic. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    uniform(std::uint64_t bound)
    {
        kindle_assert(bound != 0, "uniform() with zero bound");
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        kindle_assert(hi >= lo, "range() with hi < lo");
        return lo + uniform(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniformReal() < p; }

  private:
    std::uint64_t state;
};

/**
 * Zipfian distribution over [0, n) with skew theta, using the
 * Gray et al. rejection-free inverse-CDF approximation popularized by
 * the YCSB workload generator.
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n      Number of items.
     * @param theta  Skew; YCSB default 0.99.
     * @param seed   PRNG seed for draws.
     */
    ZipfianGenerator(std::uint64_t n, double theta, std::uint64_t seed);

    /** Draw the next item index in [0, n). */
    std::uint64_t next();

    std::uint64_t items() const { return n; }
    double skew() const { return theta; }

  private:
    double zeta(std::uint64_t count, double theta_arg) const;

    std::uint64_t n;
    double theta;
    double alpha;
    double zetan;
    double eta;
    Random rng;
};

} // namespace kindle

#endif // KINDLE_BASE_RANDOM_HH
