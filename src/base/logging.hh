/**
 * @file
 * Status and error reporting, following the gem5 conventions:
 *
 *  - panic():  a simulator bug; something that should never happen
 *              regardless of user input.  Aborts.
 *  - fatal():  the simulation cannot continue due to a user error
 *              (bad configuration, invalid arguments).  Exits cleanly.
 *  - warn():   functionality that may not be modelled faithfully.
 *  - inform(): plain status output.
 */

#ifndef KINDLE_BASE_LOGGING_HH
#define KINDLE_BASE_LOGGING_HH

#include <string>
#include <string_view>

#include "base/str.hh"

namespace kindle
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a "this is a simulator bug" diagnostic. */
#define kindle_panic(...)                                                   \
    ::kindle::detail::panicImpl(__FILE__, __LINE__,                         \
                                ::kindle::csprintf(__VA_ARGS__))

/** Exit with a "this is a user/configuration error" diagnostic. */
#define kindle_fatal(...)                                                   \
    ::kindle::detail::fatalImpl(__FILE__, __LINE__,                         \
                                ::kindle::csprintf(__VA_ARGS__))

/** Non-fatal modelling-fidelity warning. */
template <typename... Args>
void
warn(std::string_view fmt, Args &&...args)
{
    detail::warnImpl(csprintf(fmt, std::forward<Args>(args)...));
}

/** Plain status message. */
template <typename... Args>
void
inform(std::string_view fmt, Args &&...args)
{
    detail::informImpl(csprintf(fmt, std::forward<Args>(args)...));
}

/**
 * Internal invariant check that survives NDEBUG builds.  Use for
 * conditions whose violation indicates a Kindle bug.
 */
#define kindle_assert(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::kindle::detail::panicImpl(                                    \
                __FILE__, __LINE__,                                         \
                std::string("assertion failed: " #cond " — ") +             \
                    ::kindle::csprintf(__VA_ARGS__));                       \
        }                                                                   \
    } while (false)

/** Thrown by panic/fatal in unit-test mode instead of terminating. */
class SimError
{
  public:
    enum class Kind { panic, fatal };

    SimError(Kind kind, std::string msg)
        : _kind(kind), _msg(std::move(msg))
    {}

    Kind kind() const { return _kind; }
    const std::string &message() const { return _msg; }

  private:
    Kind _kind;
    std::string _msg;
};

/**
 * When true, panic()/fatal() throw SimError instead of terminating the
 * process.  Unit tests flip this to assert on error paths.
 */
void setErrorsThrow(bool throw_instead);
bool errorsThrow();

} // namespace kindle

#endif // KINDLE_BASE_LOGGING_HH
