/**
 * @file
 * Architectural definitions of the x86-64-style 4-level page table
 * used by Kindle: entry encodings shared by the hardware page walker
 * (cpu) and the OS memory manager (os).
 *
 * Layout of a 64-bit entry:
 *
 *   bit  0      present
 *   bit  1      writable
 *   bit  2      user
 *   bit  5      accessed
 *   bit  6      dirty
 *   bit  7      NVM-backed (software-defined flag)
 *   bits 12-51  physical frame number (addr >> 12)
 *   bits 52-61  HSCC page access count (architecturally-ignored bits)
 *   bit  62     HSCC remapped-to-DRAM flag
 *
 * The paper's HSCC discussion notes that widening the PTE to 96 bits
 * breaks last-level-table fanout (341 entries per 4 KiB); Kindle's
 * implementation instead keeps 64-bit entries and moves the NVM↔DRAM
 * mapping into a separate lookup table (hscc/mapping_table.hh), using
 * the ignored bits only for the small access counter.
 */

#ifndef KINDLE_CPU_PAGETABLE_DEFS_HH
#define KINDLE_CPU_PAGETABLE_DEFS_HH

#include "base/bitfield.hh"
#include "base/types.hh"

namespace kindle::cpu
{

/** Number of radix levels (PML4 → PDPT → PD → PT). */
constexpr unsigned ptLevels = 4;

/** Index bits per level. */
constexpr unsigned ptIndexBits = 9;

/** Entries per page-table page. */
constexpr unsigned ptEntriesPerPage = 1u << ptIndexBits;

/** Size of one entry in bytes. */
constexpr unsigned ptEntrySize = 8;

/** Virtual-address bits translated (48-bit canonical). */
constexpr unsigned vaBits = 48;

/** A raw page-table entry with typed accessors. */
struct Pte
{
    std::uint64_t raw = 0;

    bool present() const { return bit(raw, 0); }
    bool writable() const { return bit(raw, 1); }
    bool user() const { return bit(raw, 2); }
    bool accessed() const { return bit(raw, 5); }
    bool dirty() const { return bit(raw, 6); }
    bool nvmBacked() const { return bit(raw, 7); }
    bool hsccRemapped() const { return bit(raw, 62); }

    std::uint64_t pfn() const { return bits(raw, 51, 12); }
    Addr frameAddr() const { return pfn() << pageShift; }

    unsigned
    accessCount() const
    {
        return static_cast<unsigned>(bits(raw, 61, 52));
    }

    void setPresent(bool v) { raw = setBit(raw, 0, v); }
    void setWritable(bool v) { raw = setBit(raw, 1, v); }
    void setUser(bool v) { raw = setBit(raw, 2, v); }
    void setAccessed(bool v) { raw = setBit(raw, 5, v); }
    void setDirty(bool v) { raw = setBit(raw, 6, v); }
    void setNvmBacked(bool v) { raw = setBit(raw, 7, v); }
    void setHsccRemapped(bool v) { raw = setBit(raw, 62, v); }

    void setPfn(std::uint64_t pfn) { raw = insertBits(raw, 51, 12, pfn); }

    void
    setAccessCount(unsigned c)
    {
        // Saturate at the 10-bit architectural maximum.
        raw = insertBits(raw, 61, 52, c > 1023 ? 1023 : c);
    }
};

/** Index into the table at @p level (3 = PML4 .. 0 = leaf PT). */
constexpr unsigned
ptIndex(Addr vaddr, unsigned level)
{
    return static_cast<unsigned>(
        bits(vaddr, pageShift + (level + 1) * ptIndexBits - 1,
             pageShift + level * ptIndexBits));
}

/** Virtual page number of an address. */
constexpr std::uint64_t
vpnOf(Addr vaddr)
{
    return vaddr >> pageShift;
}

static_assert(ptIndex(0, 0) == 0);
static_assert(ptIndex(0x1000, 0) == 1);
static_assert(ptIndex(std::uint64_t(1) << 21, 1) == 1);
static_assert(ptIndex(std::uint64_t(1) << 30, 2) == 1);
static_assert(ptIndex(std::uint64_t(1) << 39, 3) == 1);

} // namespace kindle::cpu

#endif // KINDLE_CPU_PAGETABLE_DEFS_HH
