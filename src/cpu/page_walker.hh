/**
 * @file
 * Hardware page-table walker.
 *
 * On a TLB miss the walker reads one entry per radix level through the
 * cache hierarchy — so page-table locality is honoured, and a page
 * table hosted in NVM pays NVM latency only when the walk misses the
 * caches, exactly the effect §III-A of the paper highlights for the
 * persistent page-table scheme.
 */

#ifndef KINDLE_CPU_PAGE_WALKER_HH
#define KINDLE_CPU_PAGE_WALKER_HH

#include "base/stats.hh"
#include "cache/hierarchy.hh"
#include "cpu/pagetable_defs.hh"
#include "mem/hybrid_memory.hh"

namespace kindle::cpu
{

/** Outcome of a 4-level walk. */
struct WalkResult
{
    bool fault = false;        ///< a non-present entry was found
    unsigned faultLevel = 0;   ///< level of the non-present entry
    Pte leaf;                  ///< valid iff !fault
    Addr leafAddr = 0;         ///< physical address of the leaf entry
    Tick latency = 0;          ///< cycles spent walking
};

/** The walker itself; stateless between walks. */
class PageWalker
{
  public:
    PageWalker(mem::HybridMemory &memory, cache::Hierarchy &caches,
               CpuId cpu = 0);

    /**
     * Translate @p vaddr starting from the root table at @p ptbr.
     * Timing flows through the cache hierarchy; entry values are read
     * functionally from the backing stores.
     */
    WalkResult walk(Addr ptbr, Addr vaddr, Tick now);

    statistics::StatGroup &stats() { return statGroup; }

  private:
    mem::HybridMemory &memory;
    cache::Hierarchy &caches;
    CpuId cpu;  ///< core this walker belongs to (cache attribution)

    statistics::StatGroup statGroup;
    statistics::Scalar &walks;
    statistics::Scalar &faults;
    statistics::Scalar &levelReads;
};

} // namespace kindle::cpu

#endif // KINDLE_CPU_PAGE_WALKER_HH
