#include "cpu/tlb.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace kindle::cpu
{

namespace
{

/** L2 associativity; sets are derived from the entry count. */
constexpr unsigned l2Ways = 12;

} // namespace

Tlb::Tlb(const TlbParams &params)
    : _params(params),
      l1(params.l1Entries),
      l2(params.l2Entries),
      statGroup("tlb", "two-level TLB"),
      l1Hits(statGroup.addScalar("l1Hits", "L1 TLB hits")),
      l2Hits(statGroup.addScalar("l2Hits", "L2 TLB hits")),
      missCount(statGroup.addScalar("misses", "full TLB misses")),
      evictCount(statGroup.addScalar("evictions",
                                     "valid entries evicted"))
{
    kindle_assert(params.l1Entries > 0, "L1 TLB needs entries");
    kindle_assert(params.l2Entries % l2Ways == 0,
                  "L2 TLB entry count must be a multiple of {}", l2Ways);
    kindle_assert(isPowerOf2(params.l2Entries / l2Ways),
                  "L2 TLB set count must be a power of two");
}

TlbEntry *
Tlb::find(std::vector<TlbEntry> &arr, Pid pid, std::uint64_t vpn)
{
    for (auto &e : arr) {
        if (e.valid && e.pid == pid && e.vpn == vpn)
            return &e;
    }
    return nullptr;
}

TlbEntry &
Tlb::victim(std::vector<TlbEntry> &arr)
{
    TlbEntry *v = &arr[0];
    for (auto &e : arr) {
        if (!e.valid)
            return e;
        if (e.lru < v->lru)
            v = &e;
    }
    return *v;
}

TlbEntry &
Tlb::l2VictimIn(std::uint64_t set)
{
    TlbEntry *base = &l2[set * l2Ways];
    TlbEntry *v = base;
    for (unsigned w = 0; w < l2Ways; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].lru < v->lru)
            v = &base[w];
    }
    return *v;
}

void
Tlb::demoteToL2(const TlbEntry &entry)
{
    const unsigned sets = _params.l2Entries / l2Ways;
    const std::uint64_t set = entry.vpn & (sets - 1);
    TlbEntry &slot = l2VictimIn(set);
    if (slot.valid) {
        ++evictCount;
        fireEvict(slot);
    }
    slot = entry;
}

TlbEntry *
Tlb::lookup(Pid pid, std::uint64_t vpn, Tick &extra_latency)
{
    extra_latency = 0;
    if (TlbEntry *e = find(l1, pid, vpn)) {
        ++l1Hits;
        e->lru = ++useStamp;
        return e;
    }

    // L2 is set-associative on the VPN; the two levels are exclusive,
    // so an L2 hit swaps the entry up into L1.
    const unsigned sets = _params.l2Entries / l2Ways;
    const std::uint64_t set = vpn & (sets - 1);
    TlbEntry *base = &l2[set * l2Ways];
    for (unsigned w = 0; w < l2Ways; ++w) {
        TlbEntry &e = base[w];
        if (e.valid && e.pid == pid && e.vpn == vpn) {
            ++l2Hits;
            extra_latency = _params.l2HitLatency;
            TlbEntry promoted = e;
            e.valid = false;
            TlbEntry &l1_slot = victim(l1);
            if (l1_slot.valid)
                demoteToL2(l1_slot);
            l1_slot = promoted;
            l1_slot.lru = ++useStamp;
            return &l1_slot;
        }
    }

    ++missCount;
    return nullptr;
}

TlbEntry &
Tlb::fill(const TlbEntry &entry)
{
    TlbEntry &slot = victim(l1);
    if (slot.valid)
        demoteToL2(slot);
    slot = entry;
    slot.valid = true;
    slot.lru = ++useStamp;
    return slot;
}

void
Tlb::invalidate(Pid pid, std::uint64_t vpn)
{
    if (TlbEntry *e = find(l1, pid, vpn))
        e->valid = false;
    const unsigned sets = _params.l2Entries / l2Ways;
    const std::uint64_t set = vpn & (sets - 1);
    TlbEntry *base = &l2[set * l2Ways];
    for (unsigned w = 0; w < l2Ways; ++w) {
        if (base[w].valid && base[w].pid == pid && base[w].vpn == vpn)
            base[w].valid = false;
    }
}

void
Tlb::flushAll()
{
    for (auto &e : l1) {
        if (e.valid) {
            ++evictCount;
            fireEvict(e);
            e.valid = false;
        }
    }
    for (auto &e : l2) {
        if (e.valid) {
            ++evictCount;
            fireEvict(e);
            e.valid = false;
        }
    }
}

std::size_t
Tlb::addEvictHook(EvictHook hook)
{
    evictHooks.push_back(std::move(hook));
    return evictHooks.size() - 1;
}

void
Tlb::removeEvictHook(std::size_t handle)
{
    kindle_assert(handle < evictHooks.size(), "bad evict-hook handle");
    evictHooks[handle] = nullptr;
}

void
Tlb::reset()
{
    for (auto &e : l1)
        e.valid = false;
    for (auto &e : l2)
        e.valid = false;
}

void
Tlb::forEachValid(const std::function<void(TlbEntry &)> &fn)
{
    for (auto &e : l1)
        if (e.valid)
            fn(e);
    for (auto &e : l2)
        if (e.valid)
            fn(e);
}

} // namespace kindle::cpu
