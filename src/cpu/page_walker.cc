#include "cpu/page_walker.hh"

#include "base/logging.hh"
#include "telemetry/profiler.hh"

namespace kindle::cpu
{

PageWalker::PageWalker(mem::HybridMemory &memory_arg,
                       cache::Hierarchy &caches_arg, CpuId cpu_arg)
    : memory(memory_arg),
      caches(caches_arg),
      cpu(cpu_arg),
      statGroup("pageWalker", "hardware page-table walker"),
      walks(statGroup.addScalar("walks", "page-table walks")),
      faults(statGroup.addScalar("faults", "walks hitting a hole")),
      levelReads(statGroup.addScalar("levelReads",
                                     "page-table entry reads"))
{}

WalkResult
PageWalker::walk(Addr ptbr, Addr vaddr, Tick now)
{
    kindle_assert(ptbr != invalidAddr && ptbr != 0,
                  "walk with no page table loaded");
    KINDLE_PROF_SCOPE(tlbWalk);
    ++walks;

    WalkResult result;
    Addr table = ptbr;
    for (int level = ptLevels - 1; level >= 0; --level) {
        const Addr entry_addr =
            table + ptIndex(vaddr, static_cast<unsigned>(level)) *
                        ptEntrySize;
        ++levelReads;
        result.latency += caches
                              .access(cpu, mem::MemCmd::read,
                                      entry_addr, ptEntrySize,
                                      now + result.latency)
                              .latency;
        Pte pte{memory.readT<std::uint64_t>(entry_addr)};
        if (!pte.present()) {
            ++faults;
            result.fault = true;
            result.faultLevel = static_cast<unsigned>(level);
            return result;
        }
        if (level == 0) {
            result.leaf = pte;
            result.leafAddr = entry_addr;
            return result;
        }
        table = pte.frameAddr();
    }
    kindle_panic("page walk fell off the radix");
}

} // namespace kindle::cpu
