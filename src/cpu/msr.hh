/**
 * @file
 * Model-specific registers.
 *
 * The SSP prototype uses MSRs to tell the translation hardware which
 * virtual address range holds NVM allocations and where the SSP cache
 * metadata region lives, exactly as described in §III-B of the paper.
 */

#ifndef KINDLE_CPU_MSR_HH
#define KINDLE_CPU_MSR_HH

#include <cstdint>
#include <unordered_map>

#include "base/types.hh"

namespace kindle::cpu
{

/** Well-known Kindle MSR numbers (vendor-specific range). */
enum class MsrId : std::uint32_t
{
    sspNvmRangeStart = 0xc0000100,
    sspNvmRangeEnd = 0xc0000101,
    sspCacheBase = 0xc0000102,
    sspEnable = 0xc0000103,
    hsccEnable = 0xc0000110,
};

/** A small MSR file; unwritten MSRs read as zero. */
class MsrFile
{
  public:
    std::uint64_t
    read(MsrId id) const
    {
        const auto it = regs.find(static_cast<std::uint32_t>(id));
        return it == regs.end() ? 0 : it->second;
    }

    void
    write(MsrId id, std::uint64_t value)
    {
        regs[static_cast<std::uint32_t>(id)] = value;
    }

    /** Volatile: cleared by crash/reboot. */
    void reset() { regs.clear(); }

  private:
    std::unordered_map<std::uint32_t, std::uint64_t> regs;
};

} // namespace kindle::cpu

#endif // KINDLE_CPU_MSR_HH
