#include "cpu/core.hh"

#include <algorithm>

#include "base/intmath.hh"
#include "base/logging.hh"

namespace kindle::cpu
{

Core::Core(const CoreParams &params, sim::Simulation &sim_arg,
           mem::HybridMemory &memory_arg, cache::Hierarchy &caches_arg,
           CpuId cpu_id, const std::string &stat_name)
    : _params(params),
      id(cpu_id),
      sim(sim_arg),
      memory(memory_arg),
      caches(caches_arg),
      clockDomain(sim::ClockDomain::fromMHz(params.freqMHz)),
      dtlb(params.tlb),
      ptWalker(memory_arg, caches_arg, cpu_id),
      statGroup(stat_name, "in-order core"),
      memOps(statGroup.addScalar("memOps", "loads+stores executed")),
      computeOps(statGroup.addScalar("computeOps",
                                     "compute bursts executed")),
      pageFaults(statGroup.addScalar("pageFaults",
                                     "faults delivered to the OS")),
      illegalAccesses(statGroup.addScalar(
          "illegalAccesses", "accesses the OS refused to map")),
      walkLatency(statGroup.addHistogram(
          "walkLatency", "TLB-miss page-walk latency (ticks)"))
{
    statGroup.addChild(dtlb.stats());
    statGroup.addChild(ptWalker.stats());
}

TlbEntry *
Core::translateToEntry(Addr vaddr, bool is_write, Tick &latency)
{
    const std::uint64_t vpn = vpnOf(vaddr);

    Tick tlb_extra = 0;
    if (TlbEntry *entry = dtlb.lookup(curPid, vpn, tlb_extra)) {
        latency += tlb_extra;
        return entry;
    }
    latency += tlb_extra;

    // TLB miss: walk, faulting to the OS at most a bounded number of
    // times (the handler may need to populate several levels).
    for (int attempt = 0; attempt < 8; ++attempt) {
        WalkResult res = ptWalker.walk(curPtbr, vaddr, sim.now());
        latency += res.latency;
        sim.bump(res.latency);
        walkLatency.sample(static_cast<double>(res.latency));
        if (!res.fault) {
            TlbEntry entry;
            entry.valid = true;
            entry.pid = curPid;
            entry.vpn = vpn;
            entry.pfn = res.leaf.pfn();
            entry.writable = res.leaf.writable();
            entry.nvmBacked = res.leaf.nvmBacked();
            entry.accessCount = res.leaf.accessCount();
            entry.hsccRemapped = res.leaf.hsccRemapped();
            entry.pteAddr = res.leafAddr;
            for (auto *h : hooks)
                h->onTlbFill(entry, res.leaf);
            return &dtlb.fill(entry);
        }
        ++pageFaults;
        if (!faultHandler ||
            !faultHandler->handlePageFault(*this, vaddr, is_write)) {
            ++illegalAccesses;
            return nullptr;
        }
    }
    kindle_panic("page fault at {} not resolved after 8 retries", vaddr);
}

bool
Core::memAccess(bool is_write, Addr vaddr, std::uint64_t size)
{
    kindle_assert(size > 0, "zero-byte memory access");
    sim.service();
    ++memOps;

    Tick latency = clockDomain.cyclesToTicks(_params.cyclesPerOp);

    // Split accesses spanning page boundaries.
    Addr cursor = vaddr;
    std::uint64_t remaining = size;
    while (remaining > 0) {
        const std::uint64_t in_page = cursor & (pageSize - 1);
        const std::uint64_t chunk =
            std::min(remaining, pageSize - in_page);

        TlbEntry *entry = translateToEntry(cursor, is_write, latency);
        if (!entry) {
            sim.bump(latency);
            return false;
        }
        if (is_write) {
            for (auto *h : hooks)
                h->onDataWrite(*entry, cursor, chunk);
        }

        const Addr paddr = (entry->pfn << pageShift) | in_page;
        const auto res = caches.access(
            id, is_write ? mem::MemCmd::write : mem::MemCmd::read,
            paddr, chunk, sim.now() + latency);
        latency += res.latency;
        if (res.llcMiss) {
            for (auto *h : hooks)
                h->onLlcMiss(*entry, cursor, is_write);
        }

        // The simulator models timing, metadata and durability; user
        // data payloads are synthesized by the callers that care.
        cursor += chunk;
        remaining -= chunk;
    }

    cpuState.rip += 4;
    sim.bump(latency);
    return true;
}

void
Core::compute(Cycles cycles)
{
    sim.service();
    ++computeOps;
    cpuState.rip += 4;
    sim.bump(clockDomain.cyclesToTicks(cycles));
}

void
Core::stall(Tick ticks)
{
    sim.bump(ticks);
}

Addr
Core::translate(Addr vaddr, bool is_write)
{
    Tick latency = 0;
    TlbEntry *entry = translateToEntry(vaddr, is_write, latency);
    sim.bump(latency);
    if (!entry)
        return invalidAddr;
    return (entry->pfn << pageShift) | (vaddr & (pageSize - 1));
}

void
Core::addHooks(CoreHooks *hooks_arg)
{
    hooks.push_back(hooks_arg);
}

void
Core::removeHooks(CoreHooks *hooks_arg)
{
    hooks.erase(std::remove(hooks.begin(), hooks.end(), hooks_arg),
                hooks.end());
}

void
Core::reset()
{
    dtlb.reset();
    msrFile.reset();
    cpuState = CpuState{};
    curPid = 0;
    curPtbr = invalidAddr;
}

} // namespace kindle::cpu
