/**
 * @file
 * Two-level data TLB with the per-entry extensions used by the SSP and
 * HSCC prototypes.
 *
 * SSP extends each entry with the supplementary (shadow) physical page
 * and two cache-line bitmaps — `current` selecting which of the two
 * pages holds the latest committed copy of each line, and `updated`
 * tracking lines written during the open consistency interval.
 *
 * HSCC extends each entry with the page access count, incremented when
 * a data access misses in the LLC, and written out to the PTE on TLB
 * eviction or once per migration interval.
 */

#ifndef KINDLE_CPU_TLB_HH
#define KINDLE_CPU_TLB_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "cpu/pagetable_defs.hh"

namespace kindle::cpu
{

/** A cached translation plus prototype-extension metadata. */
struct TlbEntry
{
    bool valid = false;
    Pid pid = 0;
    std::uint64_t vpn = 0;
    std::uint64_t pfn = 0;
    bool writable = false;
    bool nvmBacked = false;
    std::uint64_t lru = 0;

    /** Physical address of the backing leaf PTE (for hardware
     *  write-back of HSCC access counts). */
    Addr pteAddr = 0;

    /** @name SSP extension fields. */
    /// @{
    bool sspTracked = false;      ///< page is in the MSR NVM range
    std::uint64_t shadowPfn = 0;  ///< supplementary physical page
    std::uint64_t currentBits = 0; ///< per-line: which copy is current
    std::uint64_t updatedBits = 0; ///< per-line: written this interval
    /// @}

    /** @name HSCC extension fields. */
    /// @{
    unsigned accessCount = 0;
    bool countSyncedThisInterval = false;
    bool hsccRemapped = false;  ///< translation points at a DRAM copy
    /// @}
};

/** Geometry of the two TLB levels. */
struct TlbParams
{
    unsigned l1Entries = 64;
    unsigned l2Entries = 1536;
    Tick l2HitLatency = 3 * oneNs;  ///< extra cost of an L2 TLB hit
};

/**
 * The TLB pair.  Lookup tries L1 then L2; fills install into both.
 * Evictions of valid entries invoke the eviction hook so prototype
 * engines can spill per-entry metadata (SSP bitmaps, HSCC counts).
 */
class Tlb
{
  public:
    /** Called with the entry being replaced (still fully populated). */
    using EvictHook = std::function<void(const TlbEntry &)>;

    explicit Tlb(const TlbParams &params);

    /**
     * Look up (pid, vpn).
     * @param[out] extra_latency L2-hit penalty if served from L2.
     * @return pointer to the (promoted) L1 entry, or nullptr on miss.
     */
    TlbEntry *lookup(Pid pid, std::uint64_t vpn, Tick &extra_latency);

    /**
     * Install a translation after a walk; returns the L1 entry.
     * Evicted valid entries are passed to the eviction hook.
     */
    TlbEntry &fill(const TlbEntry &entry);

    /** Invalidate one page's translation (both levels). */
    void invalidate(Pid pid, std::uint64_t vpn);

    /** Invalidate everything, firing the evict hook per valid entry. */
    void flushAll();

    /** Invalidate everything silently (power loss). */
    void reset();

    /** Visit every valid L1+L2 entry (SSP interval spills). */
    void forEachValid(const std::function<void(TlbEntry &)> &fn);

    /** Attach an eviction observer; returns its handle for removal. */
    std::size_t addEvictHook(EvictHook hook);

    /** Remove an observer by handle. */
    void removeEvictHook(std::size_t handle);

    statistics::StatGroup &stats() { return statGroup; }
    const statistics::StatGroup &stats() const { return statGroup; }

  private:
    TlbEntry *find(std::vector<TlbEntry> &arr, Pid pid,
                   std::uint64_t vpn);
    TlbEntry &victim(std::vector<TlbEntry> &arr);
    TlbEntry &l2VictimIn(std::uint64_t set);
    void demoteToL2(const TlbEntry &entry);

    TlbParams _params;
    std::vector<TlbEntry> l1;
    std::vector<TlbEntry> l2;
    std::uint64_t useStamp = 0;
    std::vector<EvictHook> evictHooks;

    /** Fire every attached hook for a displaced entry. */
    void
    fireEvict(const TlbEntry &entry)
    {
        for (auto &h : evictHooks)
            if (h)
                h(entry);
    }

    statistics::StatGroup statGroup;
    statistics::Scalar &l1Hits;
    statistics::Scalar &l2Hits;
    statistics::Scalar &missCount;
    statistics::Scalar &evictCount;
};

} // namespace kindle::cpu

#endif // KINDLE_CPU_TLB_HH
