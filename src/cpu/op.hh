/**
 * @file
 * The operation vocabulary executed by simulated programs.
 *
 * A user program — a hand-written micro-benchmark or the replay of a
 * captured trace — is a stream of Ops.  Memory ops run on the core;
 * syscall-class ops are interpreted by the gemOS kernel.
 */

#ifndef KINDLE_CPU_OP_HH
#define KINDLE_CPU_OP_HH

#include <cstdint>

#include "base/types.hh"

namespace kindle::cpu
{

/** One program operation. */
struct Op
{
    enum class Kind : std::uint8_t
    {
        read,      ///< load @p size bytes at @p addr
        write,     ///< store @p size bytes at @p addr
        compute,   ///< @p size CPU cycles of non-memory work
        mmap,      ///< allocate @p size bytes; addr=hint, flags used
        munmap,    ///< unmap [addr, addr+size)
        mremap,    ///< grow/shrink mapping at addr to @p size
        mprotect,  ///< change protection of [addr, addr+size)
        faseStart, ///< checkpoint_start: open a failure-atomic section
        faseEnd,   ///< checkpoint_end: close it
        exit,      ///< process termination
    };

    Kind kind = Kind::compute;
    Addr addr = 0;
    std::uint64_t size = 0;
    std::uint32_t flags = 0;
};

/** mmap() flag bits understood by the Kindle gemOS. */
enum MmapFlags : std::uint32_t
{
    mapNvm = 1u << 0,    ///< MAP_NVM: allocate backing frames in NVM
    mapFixed = 1u << 1,  ///< addr is a hard placement request
};

/** mprotect() protection bits. */
enum ProtFlags : std::uint32_t
{
    protRead = 1u << 0,
    protWrite = 1u << 1,
};

/**
 * A pull-based producer of Ops.  Programs implement next(); the kernel
 * drains the stream onto the core.
 */
class OpStream
{
  public:
    virtual ~OpStream() = default;

    /**
     * Produce the next operation.
     * @return false when the program has no further operations (the
     *         process implicitly exits).
     */
    virtual bool next(Op &op) = 0;

    /**
     * Result of the most recent syscall-class op (e.g. the address
     * returned by mmap), delivered before the next next() call.
     */
    virtual void onSyscallResult(std::uint64_t value) { (void)value; }
};

} // namespace kindle::cpu

#endif // KINDLE_CPU_OP_HH
