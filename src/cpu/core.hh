/**
 * @file
 * The in-order CPU core.
 *
 * Models the paper's configuration: an Intel-style in-order core at
 * 3 GHz with a two-level TLB and a hardware page walker.  The core
 * executes memory operations by translating through the TLB (walking
 * on a miss, faulting to the OS on a hole) and accessing the cache
 * hierarchy; it advances the global simulation clock and services due
 * events between operations.
 */

#ifndef KINDLE_CPU_CORE_HH
#define KINDLE_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "cache/hierarchy.hh"
#include "cpu/msr.hh"
#include "cpu/page_walker.hh"
#include "cpu/tlb.hh"
#include "mem/hybrid_memory.hh"
#include "sim/clocked.hh"
#include "sim/simulation.hh"

namespace kindle::cpu
{

/** Architected register state; this is what a checkpoint captures. */
struct CpuState
{
    std::array<std::uint64_t, 16> gpr{};
    std::uint64_t rip = 0;
    std::uint64_t rsp = 0;
    std::uint64_t rflags = 0x2;

    bool
    operator==(const CpuState &o) const
    {
        return gpr == o.gpr && rip == o.rip && rsp == o.rsp &&
               rflags == o.rflags;
    }
};

class Core;

/** The OS's page-fault entry point, installed into each core. */
class FaultHandler
{
  public:
    virtual ~FaultHandler() = default;

    /**
     * Resolve a fault taken by @p core at @p vaddr (write access iff
     * @p is_write).  On an SMP machine the faulting core identifies
     * the runqueue / process the fault belongs to.
     * @return true if the mapping now exists and the access should be
     *         retried; false for an illegal access (process killed).
     */
    virtual bool handlePageFault(Core &core, Addr vaddr,
                                 bool is_write) = 0;
};

/**
 * Observation/extension points used by the SSP and HSCC prototypes;
 * default implementations are no-ops so the base system runs without
 * either scheme.
 */
class CoreHooks
{
  public:
    virtual ~CoreHooks() = default;

    /** A walk completed; the entry may be rewritten before install. */
    virtual void onTlbFill(TlbEntry &entry, const Pte &leaf)
    {
        (void)entry;
        (void)leaf;
    }

    /** A data write is about to execute against @p entry. */
    virtual void onDataWrite(TlbEntry &entry, Addr vaddr,
                             std::uint64_t size)
    {
        (void)entry;
        (void)vaddr;
        (void)size;
    }

    /** The access at @p vaddr missed in the LLC. */
    virtual void onLlcMiss(TlbEntry &entry, Addr vaddr, bool is_write)
    {
        (void)entry;
        (void)vaddr;
        (void)is_write;
    }
};

/** Core configuration. */
struct CoreParams
{
    std::uint64_t freqMHz = 3000;  ///< paper: 3 GHz in-order
    Cycles cyclesPerOp = 1;        ///< base pipeline cost per op
    TlbParams tlb{};
};

/** The core. */
class Core
{
  public:
    /**
     * Construct core number @p cpu_id.  @p stat_name is the stat-group
     * name: the default "core" keeps single-core stat trees identical
     * to the pre-SMP layout; KindleSystem names cores "cpu0".."cpuN"
     * when more than one exists.
     */
    Core(const CoreParams &params, sim::Simulation &sim,
         mem::HybridMemory &memory, cache::Hierarchy &caches,
         CpuId cpu_id = 0, const std::string &stat_name = "core");

    /** This core's index in the machine. */
    CpuId cpuId() const { return id; }

    /** @name Context (set by the OS on context switch). */
    /// @{
    void
    setContext(Pid pid, Addr ptbr)
    {
        curPid = pid;
        curPtbr = ptbr;
    }
    Pid pid() const { return curPid; }
    Addr ptbr() const { return curPtbr; }

    CpuState &state() { return cpuState; }
    const CpuState &state() const { return cpuState; }
    void setState(const CpuState &s) { cpuState = s; }
    /// @}

    void setFaultHandler(FaultHandler *handler) { faultHandler = handler; }

    /** Attach prototype hooks (SSP/HSCC engines); order preserved. */
    void addHooks(CoreHooks *hooks_arg);
    void removeHooks(CoreHooks *hooks_arg);

    /**
     * Execute one load/store of @p size bytes at virtual @p vaddr.
     * Advances simulated time and services due events first.
     * @return false if the access was illegal (fault unresolved).
     */
    bool memAccess(bool is_write, Addr vaddr, std::uint64_t size);

    /** Execute @p cycles of pure compute. */
    void compute(Cycles cycles);

    /** Charge raw ticks of pipeline time (kernel-mode work). */
    void stall(Tick ticks);

    /**
     * Translate without executing a data access (used by kernel code
     * that needs a user page's physical address).  May fault to the
     * OS like a normal access.
     * @return physical address or invalidAddr on unresolved fault.
     */
    Addr translate(Addr vaddr, bool is_write);

    Tlb &tlb() { return dtlb; }
    MsrFile &msrs() { return msrFile; }
    PageWalker &walker() { return ptWalker; }
    const sim::ClockDomain &clock() const { return clockDomain; }

    /** Power loss: volatile core state vanishes. */
    void reset();

    statistics::StatGroup &stats() { return statGroup; }

  private:
    /** Look up (or walk+fill) the translation for one page. */
    TlbEntry *translateToEntry(Addr vaddr, bool is_write,
                               Tick &latency);

    CoreParams _params;
    CpuId id;
    sim::Simulation &sim;
    mem::HybridMemory &memory;
    cache::Hierarchy &caches;
    sim::ClockDomain clockDomain;

    Tlb dtlb;
    PageWalker ptWalker;
    MsrFile msrFile;

    Pid curPid = 0;
    Addr curPtbr = invalidAddr;
    CpuState cpuState;

    FaultHandler *faultHandler = nullptr;
    std::vector<CoreHooks *> hooks;

    statistics::StatGroup statGroup;
    statistics::Scalar &memOps;
    statistics::Scalar &computeOps;
    statistics::Scalar &pageFaults;
    statistics::Scalar &illegalAccesses;
    /** Page-walk latency per TLB miss (log-bucketed ticks). */
    statistics::Histogram &walkLatency;
};

} // namespace kindle::cpu

#endif // KINDLE_CPU_CORE_HH
