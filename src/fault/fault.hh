/**
 * @file
 * Crash-point fault injection.
 *
 * A FaultPlan arms exactly one power-loss crash, triggered either at an
 * absolute simulation tick, at the Nth durable NVM write the controller
 * accepts, or at the Nth hit of a *named crash site* — a lightweight
 * probe (KINDLE_CRASH_SITE("ckpt.after_commit")) placed between the
 * individual steps of multi-step durable protocols: checkpoint commit,
 * redo-log append, wrapped PTE stores, allocator bitmap persists, HSCC
 * page copies.  When the trigger fires the injector throws PowerLoss,
 * which unwinds to KindleSystem::run()'s caller; the caller then calls
 * crash() + reboot() exactly like the hand-written crash tests do — but
 * the crash lands *inside* the protocol rather than between operations.
 *
 * Probes are free-function calls (fault::crashSite) routed through a
 * thread-local registration stack so instrumented subsystems need no
 * plumbing; each KindleSystem registers its injector (or nullptr) for
 * the duration of its lifetime, and concurrent SweepRunner workers each
 * see only their own system's injector.
 */

#ifndef KINDLE_FAULT_FAULT_HH
#define KINDLE_FAULT_FAULT_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace kindle::fault
{

/** One targeted media fault: stuck-at bits on a named NVM frame. */
struct MediaFault
{
    /** Frame index within the NVM range (0 = first NVM frame). */
    std::uint64_t frame = 0;
    /** Cache-line index within the frame. */
    std::uint64_t line = 0;
    /** Error bits to plant (1 = ECC-correctable, >=2 = uncorrectable). */
    unsigned bits = 1;
    /** Stuck-at (survives rewrites) vs transient (a scrub clears it). */
    bool sticky = true;
};

/**
 * NVM media reliability configuration.  Orthogonal to the crash
 * trigger: an armed media plan degrades the medium itself — seeded
 * transient bit flips per line write, per-frame write endurance that
 * develops stuck-at cells once exhausted, and targeted named-frame
 * injections — while the SECDED model in src/mem decides what a read
 * returns.  Plain data so config plumbing stays header-only.
 */
struct MediaFaultPlan
{
    /** Probability that one media line write leaves a transient flip. */
    double bitFlipRate = 0.0;
    /** Media writes a frame tolerates before cells stick (0 = ∞). */
    std::uint64_t writeEndurance = 0;
    /** Seed for flip positions and victims (deterministic). */
    std::uint64_t seed = 7;
    /** Targeted injections applied when the model is built. */
    std::vector<MediaFault> faults;

    bool
    enabled() const
    {
        return bitFlipRate > 0.0 || writeEndurance != 0 ||
               !faults.empty();
    }
};

/**
 * Memory-pressure configuration.  Orthogonal to the crash trigger and
 * the media model: an enabled pressure plan shrinks the physical zones
 * the kernel hands to its frame allocators, injects seeded transient
 * allocation failures (forcing the retry/backoff path), and switches
 * the kernel's exhaustion handling from kindle_fatal to the graceful
 * ENOMEM → reclaim → OOM-kill escalation.  Plain data so config
 * plumbing stays header-only, like MediaFaultPlan above.
 */
struct PressurePlan
{
    /** Cap the DRAM user zone to this many frames (0 = whole zone). */
    std::uint64_t dramZoneFrames = 0;
    /** Cap the NVM user pool to this many frames (0 = whole pool). */
    std::uint64_t nvmZoneFrames = 0;

    /** Probability one tryAlloc is failed artificially (transient). */
    double allocFailRate = 0.0;
    /** Seed for the injected-failure coin flips (deterministic). */
    std::uint64_t seed = 11;
    /** Allocation retries before escalating to reclaim/OOM. */
    unsigned maxRetries = 4;
    /** Simulated backoff charged per allocation retry. */
    Tick retryBackoff = 10 * oneUs;

    /** Watermarks in frames; 0 derives low = max(8, frames/16) and
     *  high = max(2*low, frames/8) from the (possibly shrunk) zone. */
    std::uint64_t dramLowWatermark = 0;
    std::uint64_t dramHighWatermark = 0;
    std::uint64_t nvmLowWatermark = 0;
    std::uint64_t nvmHighWatermark = 0;

    /** Reclaim engine patrol period. */
    Tick reclaimInterval = oneMs / 4;
    /** Max pages demoted DRAM→NVM per reclaim pass. */
    unsigned reclaimBatchPages = 8;
    /** Minimum gap between reclaim-requested early checkpoints (an
     *  NVM zone pinned at its cap sits below-low forever; unthrottled
     *  relief then checkpoints every patrol pass).  0 = no throttle. */
    Tick reclaimCheckpointMinGap = 0;

    /** Redo-log fill fraction that triggers an early checkpoint
     *  (truncates the log before it can wrap).  0 disables. */
    double redoHighWaterFraction = 0.75;

    /** Last-resort deterministic OOM killer (victim by RSS). */
    bool oomEnabled = true;

    bool
    enabled() const
    {
        return dramZoneFrames != 0 || nvmZoneFrames != 0 ||
               allocFailRate > 0.0;
    }
};

/**
 * One seeded CPU-core fault.  A fault either *fail-stops* the core
 * (stallTicks == 0: the core never executes or acknowledges anything
 * again, and the kernel watchdog eventually declares it dead and
 * offlines it) or *transiently stalls* it (stallTicks > 0: the core is
 * unresponsive — IPIs go unacknowledged, its timeslices are skipped —
 * until the stall window elapses, exercising the retry path without
 * killing the core).  The trigger is either an absolute simulation
 * tick or the Nth TLB-shootdown IPI the core *receives* (1-based),
 * which plants the fault precisely inside the ack-timeout protocol.
 */
struct CoreFault
{
    /** Victim core. */
    CpuId cpu = 0;
    /** Fire at the first evaluation at or after this tick (0 = off). */
    Tick atTick = 0;
    /** Fire when the core receives its Nth shootdown IPI (0 = off). */
    std::uint64_t atNthIpi = 0;
    /** 0 = fail-stop (permanent); >0 = stall for this many ticks. */
    Tick stallTicks = 0;
};

/**
 * CPU-fault configuration: a list of seeded core faults.  Orthogonal
 * to the crash trigger, the media model, and the pressure plan — plain
 * data so config plumbing stays header-only, like the plans above.
 * An empty plan is guaranteed zero-cost: the kernel never evaluates
 * triggers, takes no extra event-queue bumps, and registers no stats,
 * so runs without a plan stay byte-identical to a tree without the
 * subsystem.
 */
struct CoreFaultPlan
{
    std::vector<CoreFault> faults;

    bool enabled() const { return !faults.empty(); }
};

/** What to crash on.  At most one trigger should be armed. */
struct FaultPlan
{
    /** Named crash site to trip on ("" = disabled). */
    std::string site;
    /** Fire at the Nth hit of @c site (1-based). */
    std::uint64_t occurrence = 1;
    /** Fire at the Nth durable NVM write (0 = disabled, 1-based). */
    std::uint64_t atNthDurableWrite = 0;
    /** Fire at the first probe at or after this tick (0 = disabled). */
    Tick atTick = 0;
    /** Lose undrained controller-buffer writes with a torn store. */
    bool tornStore = true;
    /** Seed for the deterministic torn-store victim choice. */
    std::uint64_t seed = 1;

    /** Media error/wear model configuration (independent of the
     *  crash trigger; may be enabled with no crash armed at all). */
    MediaFaultPlan media;

    bool
    armed() const
    {
        return !site.empty() || atNthDurableWrite != 0 || atTick != 0;
    }
};

/** Thrown when an armed trigger fires; unwinds out of run(). */
class PowerLoss : public std::exception
{
  public:
    PowerLoss(std::string site, Tick tick)
        : _site(std::move(site)), _tick(tick),
          msg("power loss injected at crash site '" + _site + "'")
    {}

    const char *what() const noexcept override { return msg.c_str(); }
    const std::string &site() const { return _site; }
    Tick tick() const { return _tick; }

  private:
    std::string _site;
    Tick _tick;
    std::string msg;
};

/**
 * Per-system crash injector.  Counts site hits and durable NVM writes
 * even when no trigger is armed (observe-only mode), which is how the
 * fuzz harness sizes its crash-point space from a golden run.
 */
class CrashInjector
{
  public:
    CrashInjector(FaultPlan plan, std::function<Tick()> now_fn);

    /**
     * Arm the probes.  Until activate() the injector only exists; the
     * owning system activates it after boot so that construction-time
     * durable writes do not consume trigger budget (keeping golden and
     * faulted runs aligned on the same counting base).
     */
    void activate() { active = true; }
    void deactivate() { active = false; }

    /**
     * Swap in a fresh plan and re-activate the probes with cleared
     * trigger state (hit counts, durable-write count, fired flag).
     * This is how a test arms a *second* crash on an already-crashed
     * system — e.g. inside the recovery path of the next reboot(),
     * proving recovery survives being interrupted.
     */
    void rearm(FaultPlan plan);

    /** Probe: a named crash site was reached. */
    void site(const char *name);
    /** Probe: a durable write was accepted by the NVM controller. */
    void durableWrite(Tick now);

    /**
     * Observer called on every site hit with (name, hit-count), before
     * any trigger evaluation.  The fuzz harness uses it to snapshot its
     * oracle at protocol boundaries.
     */
    void
    setObserver(std::function<void(const std::string &, std::uint64_t)> fn)
    {
        observer = std::move(fn);
    }

    const FaultPlan &plan() const { return _plan; }
    bool fired() const { return _fired; }
    const std::string &firedSite() const { return _firedSite; }
    std::uint64_t durableWrites() const { return _durableWrites; }
    std::uint64_t
    hitsOf(const std::string &name) const
    {
        const auto it = hits.find(name);
        return it == hits.end() ? 0 : it->second;
    }
    const std::map<std::string, std::uint64_t> &allHits() const
    {
        return hits;
    }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    [[noreturn]] void fire(const std::string &name);

    FaultPlan _plan;
    std::function<Tick()> nowFn;
    std::function<void(const std::string &, std::uint64_t)> observer;

    bool active = false;
    bool _fired = false;
    std::string _firedSite;
    std::uint64_t _durableWrites = 0;
    std::map<std::string, std::uint64_t> hits;

    statistics::StatGroup statGroup;
    statistics::Scalar &siteHits;
    statistics::Scalar &durableWriteStat;
    statistics::Scalar &crashesInjected;
};

/**
 * RAII registration of a system's injector (may be null) on this
 * thread's routing stack.  The most recently constructed registration
 * wins, so probes fired while a KindleSystem is live route to *that*
 * system's injector — and a system without fault config shadows any
 * older injector instead of leaking probes to it.
 */
class InjectorScope
{
  public:
    explicit InjectorScope(CrashInjector *injector);
    ~InjectorScope();

    InjectorScope(const InjectorScope &) = delete;
    InjectorScope &operator=(const InjectorScope &) = delete;

  private:
    CrashInjector *injector;
};

/** The injector probes route to on this thread (may be null). */
CrashInjector *current();

/** Probe entry points used by instrumented code. */
void crashSite(const char *name);
void onDurableNvmWrite(Tick now);

/** One entry of the crash-site inventory: name + what the protocol
 *  has (and has not) done when the probe fires. */
struct CrashSiteInfo
{
    const char *name;
    const char *description;
};

/** Inventory of every named crash site compiled into the tree, with
 *  a one-line description per site (drives --list-crash-sites and the
 *  generated DESIGN.md table). */
const std::vector<CrashSiteInfo> &crashSiteCatalog();

/** Inventory of every named crash site compiled into the tree. */
const std::vector<std::string> &knownCrashSites();

} // namespace kindle::fault

/** Probe macro — reads as a labelled no-op at the instrumented line. */
#define KINDLE_CRASH_SITE(name) ::kindle::fault::crashSite(name)

#endif // KINDLE_FAULT_FAULT_HH
