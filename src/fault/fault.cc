#include "fault/fault.hh"

#include "base/logging.hh"
#include "trace/trace.hh"

namespace kindle::fault
{

namespace
{

/**
 * Routing stack: one entry per live KindleSystem on this thread, newest
 * last.  Entries carry the owning scope so destruction can remove its
 * own entry even when lifetimes are not LIFO-nested.
 */
thread_local std::vector<std::pair<const InjectorScope *, CrashInjector *>>
    tlsStack;

} // namespace

CrashInjector::CrashInjector(FaultPlan plan, std::function<Tick()> now_fn)
    : _plan(std::move(plan)),
      nowFn(std::move(now_fn)),
      statGroup("fault", "crash-point fault injection"),
      siteHits(statGroup.addScalar("siteHits",
                                   "named crash-site probes reached")),
      durableWriteStat(statGroup.addScalar(
          "durableWrites", "durable NVM writes observed")),
      crashesInjected(statGroup.addScalar(
          "crashesInjected", "power-loss crashes fired by the plan"))
{
    kindle_assert(nowFn, "CrashInjector needs a clock");
}

void
CrashInjector::rearm(FaultPlan plan)
{
    _plan = std::move(plan);
    _fired = false;
    _firedSite.clear();
    _durableWrites = 0;
    hits.clear();
    active = true;
}

void
CrashInjector::fire(const std::string &name)
{
    _fired = true;
    _firedSite = name;
    ++crashesInjected;
    KINDLE_TRACE_INSTANT_ARGS(fault, fault, "crash.fire", "site={}",
                              name);
    throw PowerLoss(name, nowFn());
}

void
CrashInjector::site(const char *name)
{
    if (!active || _fired)
        return;
    // Every protocol probe doubles as a flight-recorder breadcrumb:
    // the ring's tail is the exact step sequence leading into a crash.
    KINDLE_TRACE_INSTANT(fault, fault, name);
    ++siteHits;
    const std::uint64_t count = ++hits[name];
    if (observer)
        observer(name, count);
    if (_plan.atTick != 0 && nowFn() >= _plan.atTick)
        fire(name);
    if (!_plan.site.empty() && _plan.site == name &&
        count == _plan.occurrence) {
        fire(name);
    }
}

void
CrashInjector::durableWrite(Tick now)
{
    if (!active || _fired)
        return;
    ++durableWriteStat;
    ++_durableWrites;
    if (_plan.atNthDurableWrite != 0 &&
        _durableWrites == _plan.atNthDurableWrite) {
        fire("nvm.durable_write#" + std::to_string(_durableWrites));
    }
    if (_plan.atTick != 0 && now >= _plan.atTick)
        fire("nvm.durable_write#" + std::to_string(_durableWrites));
}

InjectorScope::InjectorScope(CrashInjector *injector) : injector(injector)
{
    tlsStack.emplace_back(this, injector);
}

InjectorScope::~InjectorScope()
{
    for (auto it = tlsStack.rbegin(); it != tlsStack.rend(); ++it) {
        if (it->first == this) {
            tlsStack.erase(std::next(it).base());
            return;
        }
    }
}

CrashInjector *
current()
{
    return tlsStack.empty() ? nullptr : tlsStack.back().second;
}

void
crashSite(const char *name)
{
    if (CrashInjector *inj = current())
        inj->site(name);
}

void
onDurableNvmWrite(Tick now)
{
    if (CrashInjector *inj = current())
        inj->durableWrite(now);
}

const std::vector<CrashSiteInfo> &
crashSiteCatalog()
{
    // Keep in sync with every KINDLE_CRASH_SITE() in the tree; the
    // crash-site parameterized test cross-checks this list by crashing
    // at each entry and asserting the probe actually fired.  The
    // descriptions feed --list-crash-sites and the DESIGN.md table.
    static const std::vector<CrashSiteInfo> sites = {
        {"ckpt.before_cpu_log", "checkpoint: before CPU redo record"},
        {"ckpt.after_log_append", "checkpoint: CPU record durable"},
        {"ckpt.after_replay", "checkpoint: metadata log replayed"},
        {"ckpt.after_working_write",
         "checkpoint: working context written"},
        {"ckpt.after_mapping_update",
         "checkpoint: mapping list / pt root"},
        {"ckpt.after_commit", "checkpoint: slot flipped consistent"},
        {"ckpt.complete", "checkpoint: log reset + undo retire"},
        {"redo.after_append", "redo log: record fully durable"},
        {"redo.append_pre_fence", "redo log: record clwb'd, unfenced"},
        {"pt.after_undo_append", "pt policy: undo record durable"},
        {"pt.after_store", "pt policy: PTE stored, not flushed"},
        {"pt.after_clwb", "pt policy: PTE clwb'd, unfenced"},
        {"slot.mid_working_write", "saved state: context half-flushed"},
        {"slot.commit_pre_fence",
         "saved state: header clwb'd, unfenced"},
        {"alloc.bitmap_pre_fence",
         "frame alloc: bitmap clwb'd, unfenced"},
        {"hscc.after_copy", "hscc: page copied, PTE not remapped"},
        {"badframe.retire_pre_fence",
         "bad-frame table: bit clwb'd, unfenced"},
        {"recover.after_bitmap", "recovery: allocator bitmap adopted"},
        {"recover.after_log_audit", "recovery: redo log audited"},
        {"recover.after_pt_rollback",
         "recovery: torn PT stores undone"},
        {"recover.after_slot_restore", "recovery: one slot restored"},
        {"recover.after_quarantine", "recovery: one slot fenced off"},
        {"recover.before_reclaim", "recovery: leak reclaim starting"},
        {"recover.complete", "recovery: procedure finished"},
        {"redo.pre_wrap", "redo log: tail about to fold forward"},
        {"redo.pre_truncate",
         "redo log: backpressure epoch bump next"},
        {"reclaim.pre_demote",
         "reclaim: NVM frame held, page not moved"},
        {"oom.pre_kill", "oom: victim chosen, teardown next"},
        {"core.pre_offline",
         "hotplug: core declared dead, teardown next"},
        {"ipi.pre_retry", "shootdown: ack timed out, resend next"},
    };
    return sites;
}

const std::vector<std::string> &
knownCrashSites()
{
    static const std::vector<std::string> sites = [] {
        std::vector<std::string> names;
        for (const CrashSiteInfo &info : crashSiteCatalog())
            names.emplace_back(info.name);
        return names;
    }();
    return sites;
}

} // namespace kindle::fault
