#include "os/page_table.hh"

#include "base/logging.hh"

namespace kindle::os
{

using cpu::Pte;
using cpu::ptEntrySize;
using cpu::ptIndex;
using cpu::ptIndexBits;
using cpu::ptEntriesPerPage;
using cpu::ptLevels;

PageTableManager::PageTableManager(KernelMem &kmem_arg,
                                   FrameAllocator &table_alloc,
                                   PtWritePolicy &policy_arg)
    : kmem(kmem_arg),
      tableAlloc(table_alloc),
      policy(policy_arg),
      statGroup("pageTables",
                "4-level page tables in simulated frames"),
      writesStat(statGroup.addScalar("entryWrites",
                                     "page-table entry stores")),
      tablePages(statGroup.addScalar("tablePages",
                                     "table frames allocated")),
      softWalks(statGroup.addScalar("softWalks",
                                    "software walks performed"))
{}

Addr
PageTableManager::allocTable()
{
    Addr frame = tableAlloc.tryAlloc();
    if (frame == invalidAddr && exhaustionHandler) {
        exhaustionHandler();
        frame = tableAlloc.tryAlloc();
    }
    if (frame == invalidAddr) {
        kindle_fatal("pageTables: table zone exhausted ({} frames)",
                     tableAlloc.totalFrames());
    }
    ++tablePages;
    presentCounts[frame] = 0;
    // New tables must read as all-absent.  Zero the frame with a
    // streaming write (durable when the table lives in NVM).
    if (kmem.mem().typeOf(frame) == mem::MemType::nvm) {
        kmem.zeroDurable(frame, pageSize);
    } else {
        const std::vector<std::uint8_t> zeros(pageSize, 0);
        kmem.mem().writeData(frame, zeros.data(), pageSize);
        kmem.simulation().bump(kmem.mem().submit(
            {mem::MemCmd::bulkWrite, frame, pageSize},
            kmem.simulation().now()));
    }
    return frame;
}

Addr
PageTableManager::newRoot()
{
    return allocTable();
}

void
PageTableManager::map(Addr root, Addr vaddr, Addr frame, bool writable,
                      bool nvm_backed)
{
    Addr table = root;
    for (int level = ptLevels - 1; level > 0; --level) {
        const Addr entry_addr =
            table + ptIndex(vaddr, static_cast<unsigned>(level)) *
                        ptEntrySize;
        Pte pte{kmem.read64(entry_addr)};
        if (!pte.present()) {
            const Addr child = allocTable();
            Pte fresh;
            fresh.setPresent(true);
            fresh.setWritable(true);
            fresh.setUser(true);
            fresh.setPfn(child >> pageShift);
            policy.writeEntry(entry_addr, fresh.raw);
            ++writesStat;
            ++presentCounts[table];
            table = child;
        } else {
            table = pte.frameAddr();
        }
    }

    const Addr leaf_addr = table + ptIndex(vaddr, 0) * ptEntrySize;
    Pte old_leaf{kmem.mem().readT<std::uint64_t>(leaf_addr)};
    Pte leaf;
    leaf.setPresent(true);
    leaf.setWritable(writable);
    leaf.setUser(true);
    leaf.setNvmBacked(nvm_backed);
    leaf.setPfn(frame >> pageShift);
    policy.writeEntry(leaf_addr, leaf.raw);
    ++writesStat;
    if (!old_leaf.present())
        ++presentCounts[table];
}

std::optional<Pte>
PageTableManager::unmap(Addr root, Addr vaddr)
{
    // Record the descent so empty tables can be unlinked bottom-up.
    Addr path_tables[ptLevels] = {};
    Addr path_entries[ptLevels] = {};

    Addr table = root;
    for (int level = ptLevels - 1; level > 0; --level) {
        const Addr entry_addr =
            table + ptIndex(vaddr, static_cast<unsigned>(level)) *
                        ptEntrySize;
        path_tables[level] = table;
        path_entries[level] = entry_addr;
        Pte pte{kmem.read64(entry_addr)};
        if (!pte.present())
            return std::nullopt;
        table = pte.frameAddr();
    }
    const Addr leaf_addr = table + ptIndex(vaddr, 0) * ptEntrySize;
    path_tables[0] = table;
    path_entries[0] = leaf_addr;
    Pte leaf{kmem.read64(leaf_addr)};
    if (!leaf.present())
        return std::nullopt;
    policy.writeEntry(leaf_addr, 0);
    ++writesStat;

    // Reclaim: walk up freeing tables that became empty; the root is
    // never freed.  Each level's decrement accounts for the entry
    // cleared in it (the leaf, or a freed child's slot).
    for (unsigned level = 0; level < ptLevels; ++level) {
        auto it = presentCounts.find(path_tables[level]);
        kindle_assert(it != presentCounts.end() && it->second > 0,
                      "present-count bookkeeping corrupt");
        const bool now_empty = (--it->second == 0);
        if (!now_empty || level == ptLevels - 1)
            break;
        presentCounts.erase(it);
        tableAlloc.free(path_tables[level]);
        policy.writeEntry(path_entries[level + 1], 0);
        ++writesStat;
    }
    return leaf;
}

unsigned
PageTableManager::presentEntries(Addr table) const
{
    const auto it = presentCounts.find(table);
    return it == presentCounts.end() ? 0 : it->second;
}

Pte
PageTableManager::readLeaf(Addr root, Addr vaddr)
{
    ++softWalks;
    Addr table = root;
    for (int level = ptLevels - 1; level > 0; --level) {
        const Addr entry_addr =
            table + ptIndex(vaddr, static_cast<unsigned>(level)) *
                        ptEntrySize;
        Pte pte{kmem.read64(entry_addr)};
        if (!pte.present())
            return Pte{};
        table = pte.frameAddr();
    }
    return Pte{kmem.read64(table + ptIndex(vaddr, 0) * ptEntrySize)};
}

void
PageTableManager::writeLeaf(Addr root, Addr vaddr, Pte pte)
{
    Addr table = root;
    for (int level = ptLevels - 1; level > 0; --level) {
        const Addr entry_addr =
            table + ptIndex(vaddr, static_cast<unsigned>(level)) *
                        ptEntrySize;
        Pte mid{kmem.read64(entry_addr)};
        kindle_assert(mid.present(),
                      "writeLeaf through an unmapped subtree");
        table = mid.frameAddr();
    }
    policy.writeEntry(table + ptIndex(vaddr, 0) * ptEntrySize, pte.raw);
    ++writesStat;
}

void
PageTableManager::walkRecurse(Addr table, unsigned level, Addr va_base,
                              const LeafVisitor &fn)
{
    const std::uint64_t span =
        std::uint64_t(1) << (pageShift + level * ptIndexBits);
    // A traversal streams each table page once (charged as one bulk
    // read); entry values are then examined functionally.
    kmem.simulation().bump(kmem.mem().submit(
        {mem::MemCmd::bulkRead, table, pageSize},
        kmem.simulation().now()));
    for (unsigned i = 0; i < ptEntriesPerPage; ++i) {
        const Addr entry_addr = table + i * ptEntrySize;
        Pte pte{kmem.mem().readT<std::uint64_t>(entry_addr)};
        if (!pte.present())
            continue;
        const Addr va = va_base + i * span;
        if (level == 0)
            fn(va, pte, entry_addr);
        else
            walkRecurse(pte.frameAddr(), level - 1, va, fn);
    }
}

void
PageTableManager::forEachLeaf(Addr root, const LeafVisitor &fn)
{
    ++softWalks;
    walkRecurse(root, ptLevels - 1, 0, fn);
}

void
PageTableManager::teardownRecurse(Addr table, unsigned level)
{
    if (level > 0) {
        for (unsigned i = 0; i < ptEntriesPerPage; ++i) {
            Pte pte{kmem.read64(table + i * ptEntrySize)};
            if (pte.present())
                teardownRecurse(pte.frameAddr(), level - 1);
        }
    }
    presentCounts.erase(table);
    tableAlloc.free(table);
}

void
PageTableManager::teardown(Addr root)
{
    teardownRecurse(root, ptLevels - 1);
}

void
PageTableManager::adoptRecurse(Addr table, unsigned level)
{
    unsigned present = 0;
    for (unsigned i = 0; i < ptEntriesPerPage; ++i) {
        const Pte pte{kmem.mem().readT<std::uint64_t>(
            table + i * ptEntrySize)};
        if (!pte.present())
            continue;
        ++present;
        if (level > 0)
            adoptRecurse(pte.frameAddr(), level - 1);
    }
    presentCounts[table] = present;
}

void
PageTableManager::adopt(Addr root)
{
    adoptRecurse(root, ptLevels - 1);
}

} // namespace kindle::os
