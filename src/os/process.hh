/**
 * @file
 * The process control block.
 */

#ifndef KINDLE_OS_PROCESS_HH
#define KINDLE_OS_PROCESS_HH

#include <memory>
#include <string>

#include "cpu/core.hh"
#include "cpu/op.hh"
#include "os/vma.hh"

namespace kindle::os
{

/** Scheduler-visible process states. */
enum class ProcState
{
    ready,
    running,
    zombie,
};

/** A gemOS process. */
class Process
{
  public:
    Process(Pid pid, std::string name, unsigned slot)
        : pid(pid), name(std::move(name)), slot(slot)
    {}

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    Pid pid;
    std::string name;

    /** Saved-state directory slot used by the persistence layer. */
    unsigned slot;

    ProcState state = ProcState::ready;

    /** Virtual address space layout. */
    AddressSpace aspace;

    /** Root of the process's radix page table. */
    Addr ptRoot = invalidAddr;

    /** Architected register state while not running. */
    cpu::CpuState context;

    /** The program; null for a crash-recovered process awaiting a
     *  re-bound op stream. */
    std::unique_ptr<cpu::OpStream> program;

    /** Inside a failure-atomic section (SSP)? */
    bool faseActive = false;

    /** Set when the process was reconstructed by crash recovery. */
    bool restored = false;

    /** Physical frames currently mapped (RSS); the OOM killer's
     *  victim metric. */
    std::uint64_t residentPages = 0;

    /** @name SMP scheduling. */
    /// @{
    /** Hard affinity: only this core may run the process (-1 = any). */
    int pinnedCpu = -1;

    /** Core the process last ran (or was enqueued) on. */
    CpuId lastCpu = 0;

    /** True while sitting on some core's runqueue (kernel-internal). */
    bool queued = false;
    /// @}
};

} // namespace kindle::os

#endif // KINDLE_OS_PROCESS_HH
