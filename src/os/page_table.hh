/**
 * @file
 * OS-side management of the 4-level page tables.
 *
 * Tables are materialized in simulated physical frames, so both the
 * hardware walker and OS traversals pay real memory latency.  Every
 * entry store goes through a PtWritePolicy:
 *
 *  - the *rebuild* scheme hosts tables in DRAM and writes entries
 *    plainly;
 *  - the *persistent* scheme hosts tables in NVM and wraps each store
 *    in an NVM consistency mechanism (log + clwb + fence), which is
 *    where its per-modification overhead comes from (paper §III-A).
 */

#ifndef KINDLE_OS_PAGE_TABLE_HH
#define KINDLE_OS_PAGE_TABLE_HH

#include <functional>
#include <optional>
#include <unordered_map>

#include "base/stats.hh"
#include "cpu/pagetable_defs.hh"
#include "os/frame_alloc.hh"
#include "os/kernel_mem.hh"

namespace kindle::os
{

/** How page-table entry stores reach memory. */
class PtWritePolicy
{
  public:
    virtual ~PtWritePolicy() = default;

    /** Store @p value to the entry at physical @p entry_addr. */
    virtual void writeEntry(Addr entry_addr, std::uint64_t value) = 0;
};

/** Plain cached stores; suitable for DRAM-hosted tables. */
class PlainPtWrite : public PtWritePolicy
{
  public:
    explicit PlainPtWrite(KernelMem &kmem) : kmem(kmem) {}

    void
    writeEntry(Addr entry_addr, std::uint64_t value) override
    {
        kmem.write64(entry_addr, value);
    }

  private:
    KernelMem &kmem;
};

/** Manager for every process's radix tables. */
class PageTableManager
{
  public:
    /**
     * @param kmem        Kernel memory gateway.
     * @param table_alloc Allocator providing table frames; its zone
     *                    determines where tables live (DRAM vs NVM).
     * @param policy      Entry-store consistency policy.
     */
    PageTableManager(KernelMem &kmem, FrameAllocator &table_alloc,
                     PtWritePolicy &policy);

    /** Allocate and zero a fresh root table; returns its address. */
    Addr newRoot();

    /**
     * Install vaddr→frame.  Allocates (and zeroes) intermediate
     * tables on demand.
     */
    void map(Addr root, Addr vaddr, Addr frame, bool writable,
             bool nvm_backed);

    /**
     * Clear the leaf mapping of @p vaddr.  Table pages left with no
     * present entries are freed and unlinked from their parents
     * (like free_pgtables in a production kernel), bottom-up — the
     * root is never freed.
     * @return the previous leaf if it was present.
     */
    std::optional<cpu::Pte> unmap(Addr root, Addr vaddr);

    /** Present entries currently recorded for @p table (testing). */
    unsigned presentEntries(Addr table) const;

    /** Software walk; returns a zero PTE if any level is absent. */
    cpu::Pte readLeaf(Addr root, Addr vaddr);

    /** Rewrite the leaf for @p vaddr (must be mapped). */
    void writeLeaf(Addr root, Addr vaddr, cpu::Pte pte);

    /** Visitor over present leaves: fn(vaddr, pte, entry_addr). */
    using LeafVisitor =
        std::function<void(Addr, cpu::Pte, Addr)>;

    /** Traverse every present leaf (software walk with timing). */
    void forEachLeaf(Addr root, const LeafVisitor &fn);

    /** Free every table frame reachable from @p root. */
    void teardown(Addr root);

    /**
     * Take ownership of a pre-existing table tree (the persistent
     * scheme's recovery path adopts the NVM-resident tables):
     * rebuilds the present-entry bookkeeping with a functional scan.
     */
    void adopt(Addr root);

    /** Number of entry stores performed (all levels). */
    std::uint64_t entryWrites() const
    {
        return static_cast<std::uint64_t>(writesStat.value());
    }

    FrameAllocator &tableAllocator() { return tableAlloc; }

    /**
     * Last-chance hook for table-zone exhaustion: invoked once when a
     * table allocation finds the zone empty, expected to free frames
     * (direct reclaim, OOM kill).  The allocation is retried after the
     * hook; only a still-empty zone is fatal — table frames have no
     * caller-visible ENOMEM path.
     */
    void
    setExhaustionHandler(std::function<void()> fn)
    {
        exhaustionHandler = std::move(fn);
    }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    Addr allocTable();
    void walkRecurse(Addr table, unsigned level, Addr va_base,
                     const LeafVisitor &fn);
    void teardownRecurse(Addr table, unsigned level);
    void adoptRecurse(Addr table, unsigned level);

    KernelMem &kmem;
    FrameAllocator &tableAlloc;
    PtWritePolicy &policy;
    std::function<void()> exhaustionHandler;

    /** Present-entry counts per table frame (host bookkeeping for
     *  the table-reclaim path; a real kernel keeps these in struct
     *  page). */
    std::unordered_map<Addr, unsigned> presentCounts;

    statistics::StatGroup statGroup;
    statistics::Scalar &writesStat;
    statistics::Scalar &tablePages;
    statistics::Scalar &softWalks;
};

} // namespace kindle::os

#endif // KINDLE_OS_PAGE_TABLE_HH
