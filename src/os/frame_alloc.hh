/**
 * @file
 * Physical frame allocators for the DRAM and NVM zones.
 *
 * The NVM allocator persists its allocation bitmap into a reserved NVM
 * region on every alloc/free (the paper: "we also modify the physical
 * page allocation mechanism in gemOS to persist the page allocation
 * meta-data to ensure correctness after crash and reboot").  Recovery
 * reconstructs the allocator from the durable bitmap.
 */

#ifndef KINDLE_OS_FRAME_ALLOC_HH
#define KINDLE_OS_FRAME_ALLOC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/addr_range.hh"
#include "base/intmath.hh"
#include "base/stats.hh"
#include "os/kernel_mem.hh"

namespace kindle::os
{

class BadFrameTable;

/** A frame-granular allocator over one physical zone. */
class FrameAllocator
{
  public:
    /**
     * @param name         Stats name ("dramAlloc"/"nvmAlloc").
     * @param zone         The allocatable range (page aligned).
     * @param kmem         Kernel memory gateway (timing + data).
     * @param bitmap_addr  NVM address of the durable bitmap, or
     *                     invalidAddr for a volatile allocator.
     */
    FrameAllocator(std::string name, AddrRange zone, KernelMem &kmem,
                   Addr bitmap_addr = invalidAddr);

    /**
     * Consult @p table before handing out frames: retired frames are
     * silently discarded from the pool as they surface.  May be null.
     */
    void setBadFrames(const BadFrameTable *table) { badFrames = table; }

    /** Allocate one frame; fatal on exhaustion. */
    Addr alloc();

    /**
     * Allocate one frame, or return invalidAddr when the zone is
     * exhausted.  Callers with a fallback zone (the degraded MAP_NVM
     * path) use this instead of alloc().
     */
    Addr tryAlloc();

    /** Return a frame to the pool. */
    void free(Addr frame);

    /** Is this exact frame currently allocated? */
    bool isAllocated(Addr frame) const;

    std::uint64_t allocatedFrames() const { return usedCount; }
    std::uint64_t totalFrames() const { return frameCount; }

    /** Frames still available for allocation (excludes retired). */
    std::uint64_t
    freeFrames() const
    {
        return frameCount - usedCount - retiredOut;
    }
    const AddrRange &zone() const { return _zone; }
    bool persistent() const { return bitmapAddr != invalidAddr; }

    /**
     * Recovery: read the durable bitmap and adopt its allocation
     * state.  Only valid for persistent allocators.
     */
    void recoverFromBitmap();

    /**
     * Publish low/high watermark gauges for this zone (frames).  Only
     * called when a pressure plan is configured, so unpressured runs
     * register no extra stats and their JSON stays byte-identical.
     */
    void setWatermarks(std::uint64_t low, std::uint64_t high);

    std::uint64_t lowWatermark() const { return lowMark; }
    std::uint64_t highWatermark() const { return highMark; }

    /** Free-frame level is at or below the low watermark. */
    bool
    belowLow() const
    {
        return lowMark != 0 && freeFrames() <= lowMark;
    }

    /** Visit the frame address of every allocated frame.  Word-skips
     *  empty bitmap words, so a sparsely-used many-GiB zone costs
     *  O(frames/64), not O(frames). */
    template <typename Fn>
    void
    forEachAllocated(Fn &&fn) const
    {
        for (std::uint64_t w = 0; w < usedWords.size(); ++w) {
            std::uint64_t bits = usedWords[w];
            while (bits != 0) {
                const std::uint64_t i =
                    w * 64 + countTrailingZeros(bits);
                bits &= bits - 1;
                fn(_zone.start() + (i << pageShift));
            }
        }
    }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    std::uint64_t frameIndex(Addr frame) const;
    void persistBit(std::uint64_t index);

    /** True iff frame @p index must never be handed out again. */
    bool isRetiredIndex(std::uint64_t index) const;

    /** @name Host-side allocation bitmap (word-granular). */
    /// @{
    bool
    testUsed(std::uint64_t i) const
    {
        return (usedWords[i / 64] >> (i % 64)) & 1;
    }

    void
    setUsed(std::uint64_t i)
    {
        usedWords[i / 64] |= (std::uint64_t(1) << (i % 64));
    }

    void
    clearUsed(std::uint64_t i)
    {
        usedWords[i / 64] &= ~(std::uint64_t(1) << (i % 64));
    }
    /// @}

    std::string _name;
    AddrRange _zone;
    KernelMem &kmem;
    Addr bitmapAddr;
    const BadFrameTable *badFrames = nullptr;

    std::uint64_t frameCount;
    std::vector<std::uint64_t> usedWords;
    std::vector<std::uint64_t> freeStack;  ///< recycled frames
    std::uint64_t bumpNext = 0;            ///< next never-used frame
    std::uint64_t usedCount = 0;
    /** Frames dropped from the pool because they are retired. */
    std::uint64_t retiredOut = 0;

    std::uint64_t lowMark = 0;
    std::uint64_t highMark = 0;

    statistics::StatGroup statGroup;
    statistics::Scalar &allocs;
    statistics::Scalar &frees;
    statistics::Scalar &persistWrites;
    /** Current allocation level (a gauge: set, not accumulated). */
    statistics::Gauge &framesInUse;
    /** Watermark gauges; registered only via setWatermarks(). */
    statistics::Gauge *lowMarkGauge = nullptr;
    statistics::Gauge *highMarkGauge = nullptr;
    /** tryAlloc calls that found the zone empty; registered lazily on
     *  the first failure so default runs export no extra stat. */
    statistics::Scalar *exhaustedAllocs = nullptr;
};

} // namespace kindle::os

#endif // KINDLE_OS_FRAME_ALLOC_HH
