/**
 * @file
 * Physical frame allocators for the DRAM and NVM zones.
 *
 * The NVM allocator persists its allocation bitmap into a reserved NVM
 * region on every alloc/free (the paper: "we also modify the physical
 * page allocation mechanism in gemOS to persist the page allocation
 * meta-data to ensure correctness after crash and reboot").  Recovery
 * reconstructs the allocator from the durable bitmap.
 */

#ifndef KINDLE_OS_FRAME_ALLOC_HH
#define KINDLE_OS_FRAME_ALLOC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/addr_range.hh"
#include "base/stats.hh"
#include "os/kernel_mem.hh"

namespace kindle::os
{

/** A frame-granular allocator over one physical zone. */
class FrameAllocator
{
  public:
    /**
     * @param name         Stats name ("dramAlloc"/"nvmAlloc").
     * @param zone         The allocatable range (page aligned).
     * @param kmem         Kernel memory gateway (timing + data).
     * @param bitmap_addr  NVM address of the durable bitmap, or
     *                     invalidAddr for a volatile allocator.
     */
    FrameAllocator(std::string name, AddrRange zone, KernelMem &kmem,
                   Addr bitmap_addr = invalidAddr);

    /** Allocate one frame; fatal on exhaustion. */
    Addr alloc();

    /** Return a frame to the pool. */
    void free(Addr frame);

    /** Is this exact frame currently allocated? */
    bool isAllocated(Addr frame) const;

    std::uint64_t allocatedFrames() const { return usedCount; }
    std::uint64_t totalFrames() const { return frameCount; }
    const AddrRange &zone() const { return _zone; }
    bool persistent() const { return bitmapAddr != invalidAddr; }

    /**
     * Recovery: read the durable bitmap and adopt its allocation
     * state.  Only valid for persistent allocators.
     */
    void recoverFromBitmap();

    /** Visit the frame address of every allocated frame. */
    template <typename Fn>
    void
    forEachAllocated(Fn &&fn) const
    {
        for (std::uint64_t i = 0; i < frameCount; ++i) {
            if (used[i])
                fn(_zone.start() + (i << pageShift));
        }
    }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    std::uint64_t frameIndex(Addr frame) const;
    void persistBit(std::uint64_t index);

    std::string _name;
    AddrRange _zone;
    KernelMem &kmem;
    Addr bitmapAddr;

    std::uint64_t frameCount;
    std::vector<bool> used;
    std::vector<std::uint64_t> freeStack;  ///< recycled frames
    std::uint64_t bumpNext = 0;            ///< next never-used frame
    std::uint64_t usedCount = 0;

    statistics::StatGroup statGroup;
    statistics::Scalar &allocs;
    statistics::Scalar &frees;
    statistics::Scalar &persistWrites;
};

} // namespace kindle::os

#endif // KINDLE_OS_FRAME_ALLOC_HH
