#include "os/frame_alloc.hh"

#include <algorithm>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "os/bad_frames.hh"

namespace kindle::os
{

FrameAllocator::FrameAllocator(std::string name, AddrRange zone,
                               KernelMem &kmem_arg, Addr bitmap_addr)
    : _name(std::move(name)),
      _zone(zone),
      kmem(kmem_arg),
      bitmapAddr(bitmap_addr),
      frameCount(zone.size() / pageSize),
      used(frameCount, false),
      statGroup(_name, "zone frame allocator"),
      allocs(statGroup.addScalar("allocs", "frames allocated")),
      frees(statGroup.addScalar("frees", "frames freed")),
      persistWrites(statGroup.addScalar(
          "persistWrites", "durable bitmap updates")),
      framesInUse(statGroup.addGauge("framesInUse",
                                     "frames currently allocated"))
{
    kindle_assert(isAligned(zone.start(), pageSize) &&
                      isAligned(zone.size(), pageSize),
                  "{}: zone must be page aligned", _name);
    kindle_assert(frameCount > 0, "{}: empty zone", _name);
}

std::uint64_t
FrameAllocator::frameIndex(Addr frame) const
{
    kindle_assert(_zone.contains(frame) && isAligned(frame, pageSize),
                  "{}: bad frame address {}", _name, frame);
    return (frame - _zone.start()) >> pageShift;
}

void
FrameAllocator::persistBit(std::uint64_t index)
{
    if (bitmapAddr == invalidAddr)
        return;
    ++persistWrites;
    // Read-modify-write the containing bitmap word, durably.
    const Addr word_addr = bitmapAddr + (index / 64) * 8;
    std::uint64_t word = kmem.mem().readT<std::uint64_t>(word_addr);
    if (used[index])
        word |= (std::uint64_t(1) << (index % 64));
    else
        word &= ~(std::uint64_t(1) << (index % 64));
    kmem.writeBufDurable(word_addr, &word, 8, "alloc.bitmap_pre_fence");
}

bool
FrameAllocator::isRetiredIndex(std::uint64_t index) const
{
    return badFrames &&
           badFrames->isRetired(_zone.start() + (index << pageShift));
}

Addr
FrameAllocator::alloc()
{
    const Addr frame = tryAlloc();
    if (frame == invalidAddr) {
        kindle_fatal("{}: out of physical frames ({} in zone)", _name,
                     frameCount);
    }
    return frame;
}

Addr
FrameAllocator::tryAlloc()
{
    std::uint64_t index;
    for (;;) {
        if (!freeStack.empty()) {
            index = freeStack.back();
            freeStack.pop_back();
        } else if (bumpNext < frameCount) {
            index = bumpNext++;
        } else {
            if (!exhaustedAllocs) {
                exhaustedAllocs = &statGroup.addScalar(
                    "exhaustedAllocs",
                    "tryAlloc calls that found the zone empty");
            }
            ++*exhaustedAllocs;
            return invalidAddr;
        }
        if (!isRetiredIndex(index))
            break;
        // A frame retired while sitting in the pool: drop it on the
        // floor, permanently.
        ++retiredOut;
    }
    kindle_assert(!used[index], "{}: double allocation", _name);
    used[index] = true;
    ++usedCount;
    ++allocs;
    framesInUse = static_cast<double>(usedCount);
    persistBit(index);
    return _zone.start() + (index << pageShift);
}

void
FrameAllocator::free(Addr frame)
{
    const std::uint64_t index = frameIndex(frame);
    kindle_assert(used[index], "{}: freeing unallocated frame {}", _name,
                  frame);
    used[index] = false;
    --usedCount;
    ++frees;
    framesInUse = static_cast<double>(usedCount);
    if (isRetiredIndex(index)) {
        // Freed after retirement (the migration path): the bitmap bit
        // clears so recovery sees it unallocated, but the frame never
        // re-enters the pool.
        ++retiredOut;
    } else {
        freeStack.push_back(index);
    }
    persistBit(index);
}

bool
FrameAllocator::isAllocated(Addr frame) const
{
    return used[frameIndex(frame)];
}

void
FrameAllocator::setWatermarks(std::uint64_t low, std::uint64_t high)
{
    kindle_assert(low <= high && high <= frameCount,
                  "{}: bad watermarks {}..{} over {} frames", _name, low,
                  high, frameCount);
    lowMark = low;
    highMark = high;
    if (!lowMarkGauge) {
        lowMarkGauge = &statGroup.addGauge(
            "lowWatermark", "reclaim starts at this free-frame level");
        highMarkGauge = &statGroup.addGauge(
            "highWatermark", "reclaim stops at this free-frame level");
    }
    *lowMarkGauge = static_cast<double>(lowMark);
    *highMarkGauge = static_cast<double>(highMark);
}

void
FrameAllocator::recoverFromBitmap()
{
    kindle_assert(persistent(),
                  "{}: recovery on a volatile allocator", _name);
    usedCount = 0;
    retiredOut = 0;
    freeStack.clear();
    bumpNext = frameCount;  // everything below is governed by the bitmap
    const std::uint64_t words = divCeil(frameCount, 64);
    std::vector<std::uint64_t> image(words, 0);
    kmem.readDurableBuf(bitmapAddr, image.data(), words * 8);
    for (std::uint64_t i = 0; i < frameCount; ++i) {
        const bool bit_set =
            (image[i / 64] >> (i % 64)) & 1;
        used[i] = bit_set;
        if (bit_set) {
            // Retired-but-allocated frames count as used until the
            // post-recovery migration frees them.
            ++usedCount;
        } else if (isRetiredIndex(i)) {
            ++retiredOut;
        } else {
            freeStack.push_back(i);
        }
    }
    // Allocate low frames first after recovery, matching boot order.
    std::reverse(freeStack.begin(), freeStack.end());
    framesInUse = static_cast<double>(usedCount);
}

} // namespace kindle::os
