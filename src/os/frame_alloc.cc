#include "os/frame_alloc.hh"

#include <algorithm>

#include "base/bitfield.hh"
#include "base/intmath.hh"
#include "base/logging.hh"
#include "os/bad_frames.hh"

namespace kindle::os
{

FrameAllocator::FrameAllocator(std::string name, AddrRange zone,
                               KernelMem &kmem_arg, Addr bitmap_addr)
    : _name(std::move(name)),
      _zone(zone),
      kmem(kmem_arg),
      bitmapAddr(bitmap_addr),
      frameCount(zone.size() / pageSize),
      usedWords(divCeil(zone.size() / pageSize, 64), 0),
      statGroup(_name, "zone frame allocator"),
      allocs(statGroup.addScalar("allocs", "frames allocated")),
      frees(statGroup.addScalar("frees", "frames freed")),
      persistWrites(statGroup.addScalar(
          "persistWrites", "durable bitmap updates")),
      framesInUse(statGroup.addGauge("framesInUse",
                                     "frames currently allocated"))
{
    kindle_assert(isAligned(zone.start(), pageSize) &&
                      isAligned(zone.size(), pageSize),
                  "{}: zone must be page aligned", _name);
    kindle_assert(frameCount > 0, "{}: empty zone", _name);
}

std::uint64_t
FrameAllocator::frameIndex(Addr frame) const
{
    kindle_assert(_zone.contains(frame) && isAligned(frame, pageSize),
                  "{}: bad frame address {}", _name, frame);
    return (frame - _zone.start()) >> pageShift;
}

void
FrameAllocator::persistBit(std::uint64_t index)
{
    if (bitmapAddr == invalidAddr)
        return;
    ++persistWrites;
    // Read-modify-write the containing bitmap word, durably.
    const Addr word_addr = bitmapAddr + (index / 64) * 8;
    std::uint64_t word = kmem.mem().readT<std::uint64_t>(word_addr);
    if (testUsed(index))
        word |= (std::uint64_t(1) << (index % 64));
    else
        word &= ~(std::uint64_t(1) << (index % 64));
    kmem.writeBufDurable(word_addr, &word, 8, "alloc.bitmap_pre_fence");
}

bool
FrameAllocator::isRetiredIndex(std::uint64_t index) const
{
    return badFrames &&
           badFrames->isRetired(_zone.start() + (index << pageShift));
}

Addr
FrameAllocator::alloc()
{
    const Addr frame = tryAlloc();
    if (frame == invalidAddr) {
        kindle_fatal("{}: out of physical frames ({} in zone)", _name,
                     frameCount);
    }
    return frame;
}

Addr
FrameAllocator::tryAlloc()
{
    std::uint64_t index;
    for (;;) {
        if (!freeStack.empty()) {
            index = freeStack.back();
            freeStack.pop_back();
        } else if (bumpNext < frameCount) {
            index = bumpNext++;
        } else {
            if (!exhaustedAllocs) {
                exhaustedAllocs = &statGroup.addScalar(
                    "exhaustedAllocs",
                    "tryAlloc calls that found the zone empty");
            }
            ++*exhaustedAllocs;
            return invalidAddr;
        }
        if (!isRetiredIndex(index))
            break;
        // A frame retired while sitting in the pool: drop it on the
        // floor, permanently.
        ++retiredOut;
    }
    kindle_assert(!testUsed(index), "{}: double allocation", _name);
    setUsed(index);
    ++usedCount;
    ++allocs;
    framesInUse = static_cast<double>(usedCount);
    persistBit(index);
    return _zone.start() + (index << pageShift);
}

void
FrameAllocator::free(Addr frame)
{
    const std::uint64_t index = frameIndex(frame);
    kindle_assert(testUsed(index), "{}: freeing unallocated frame {}",
                  _name, frame);
    clearUsed(index);
    --usedCount;
    ++frees;
    framesInUse = static_cast<double>(usedCount);
    if (isRetiredIndex(index)) {
        // Freed after retirement (the migration path): the bitmap bit
        // clears so recovery sees it unallocated, but the frame never
        // re-enters the pool.
        ++retiredOut;
    } else {
        freeStack.push_back(index);
    }
    persistBit(index);
}

bool
FrameAllocator::isAllocated(Addr frame) const
{
    return testUsed(frameIndex(frame));
}

void
FrameAllocator::setWatermarks(std::uint64_t low, std::uint64_t high)
{
    kindle_assert(low <= high && high <= frameCount,
                  "{}: bad watermarks {}..{} over {} frames", _name, low,
                  high, frameCount);
    lowMark = low;
    highMark = high;
    if (!lowMarkGauge) {
        lowMarkGauge = &statGroup.addGauge(
            "lowWatermark", "reclaim starts at this free-frame level");
        highMarkGauge = &statGroup.addGauge(
            "highWatermark", "reclaim stops at this free-frame level");
    }
    *lowMarkGauge = static_cast<double>(lowMark);
    *highMarkGauge = static_cast<double>(highMark);
}

void
FrameAllocator::recoverFromBitmap()
{
    kindle_assert(persistent(),
                  "{}: recovery on a volatile allocator", _name);
    usedCount = 0;
    retiredOut = 0;
    freeStack.clear();
    const std::uint64_t words = divCeil(frameCount, 64);
    std::vector<std::uint64_t> image(words, 0);
    kmem.readDurableBuf(bitmapAddr, image.data(), words * 8);
    // Bits past frameCount in the tail word are outside the zone.
    if (frameCount % 64 != 0) {
        image[words - 1] &=
            (std::uint64_t(1) << (frameCount % 64)) - 1;
    }
    if (!badFrames || badFrames->retiredCount() == 0) {
        // Common case: no retired frames.  Adopt the image wholesale
        // and only enumerate the *holes* below the allocation high
        // mark; everything above it stays with the bump pointer.  A
        // mostly-full or mostly-empty multi-GiB zone recovers in
        // O(frames/64) instead of O(frames), and the allocation order
        // (lowest free index first) is identical to the full scan's
        // reversed stack.
        usedWords = image;
        std::uint64_t high = 0;  // one past the highest set bit
        for (std::uint64_t w = words; w-- > 0;) {
            if (usedWords[w] != 0) {
                high = w * 64 + 64 -
                       countLeadingZeros(usedWords[w]);
                break;
            }
        }
        bumpNext = high;
        for (std::uint64_t w = 0; w < divCeil(high, 64); ++w) {
            std::uint64_t holes = ~usedWords[w];
            if (w == (high - 1) / 64 && high % 64 != 0)
                holes &= (std::uint64_t(1) << (high % 64)) - 1;
            while (holes != 0) {
                freeStack.push_back(w * 64 +
                                    countTrailingZeros(holes));
                holes &= holes - 1;
            }
            usedCount += std::uint64_t(popCount(usedWords[w]));
        }
        for (std::uint64_t w = divCeil(high, 64); w < words; ++w)
            usedCount += std::uint64_t(popCount(usedWords[w]));
        std::reverse(freeStack.begin(), freeStack.end());
        framesInUse = static_cast<double>(usedCount);
        return;
    }
    // Retired frames exist: fall back to the per-frame scan so the
    // retired/free classification matches the allocation-time rules.
    bumpNext = frameCount;  // everything below is governed by the bitmap
    std::fill(usedWords.begin(), usedWords.end(), 0);
    for (std::uint64_t i = 0; i < frameCount; ++i) {
        const bool bit_set =
            (image[i / 64] >> (i % 64)) & 1;
        if (bit_set) {
            // Retired-but-allocated frames count as used until the
            // post-recovery migration frees them.
            setUsed(i);
            ++usedCount;
        } else if (isRetiredIndex(i)) {
            ++retiredOut;
        } else {
            freeStack.push_back(i);
        }
    }
    // Allocate low frames first after recovery, matching boot order.
    std::reverse(freeStack.begin(), freeStack.end());
    framesInUse = static_cast<double>(usedCount);
}

} // namespace kindle::os
