/**
 * @file
 * The Kindle gemOS kernel.
 *
 * A deliberately small OS in the spirit of gemOS: processes, VMAs with
 * the MAP_NVM extension, demand paging from per-technology frame
 * allocators, an SMP round-robin scheduler with per-core runqueues,
 * and the syscall surface the paper's experiments exercise
 * (mmap/munmap/mremap/mprotect plus the SSP FASE markers).  Being
 * small is the point — OS work is visible in the statistics instead
 * of being buried under background services.
 *
 * SMP model: each scheduling epoch, every core is rewound to the
 * epoch's start tick, runs one timeslice of its runqueue, and the
 * global clock then jumps to the latest per-core finish time.  With a
 * single core all rewinds are no-ops and execution is identical to
 * the original uniprocessor kernel.  Page-table updates that shrink
 * translations (munmap, mprotect, frame retirement, HSCC remaps)
 * shoot down remote TLBs with IPIs routed through the event queue.
 */

#ifndef KINDLE_OS_KERNEL_HH
#define KINDLE_OS_KERNEL_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/random.hh"
#include "base/stats.hh"
#include "cpu/core.hh"
#include "fault/fault.hh"
#include "mem/hybrid_memory.hh"
#include "os/frame_alloc.hh"
#include "os/kernel_mem.hh"
#include "os/nvm_layout.hh"
#include "os/os_events.hh"
#include "os/page_table.hh"
#include "os/process.hh"

namespace kindle::os
{

class BadFrameTable;
class ReclaimEngine;

/** Kernel configuration. */
struct KernelParams
{
    Tick timeslice = oneMs;           ///< scheduler quantum
    Tick contextSwitchCost = 2 * oneUs;
    Tick syscallEntryCost = 150 * oneNs;
    Tick pageFaultTrapCost = 800 * oneNs;
    Tick ipiLatency = 500 * oneNs;    ///< TLB-shootdown IPI delivery
    Tick ipiHandlerCost = 200 * oneNs; ///< remote shootdown handler
    /** How long a shootdown initiator waits for a target's ack before
     *  resending the IPI (only consulted once a core fault is armed —
     *  a healthy machine never times out). */
    Tick ipiAckTimeout = 2 * oneUs;
    /** Resends before the watchdog declares the target core dead. */
    unsigned ipiRetries = 3;
    bool ptInNvm = false;  ///< host page tables in NVM (persistent
                           ///  scheme) instead of DRAM (rebuild)
    /** DRAM reserved below this for the kernel image. */
    std::uint64_t kernelReserveBytes = 16 * oneMiB;

    /**
     * NVM metadata-carving sizes (process-slot capacity, redo-log and
     * per-process mapping-list reservations).  The defaults reproduce
     * the historical 16-slot layout byte for byte; fleet workloads
     * raise procSlots into the thousands.
     */
    NvmLayoutParams nvmLayout{};

    /**
     * Erase zombie PCBs at scheduling-epoch boundaries instead of
     * letting `procs` grow for the life of the machine.  Off by
     * default (zombies stay visible to findProcess() and the stat
     * ordering of long-lived tests is preserved); fleet churn turns
     * it on — thousands of exited tenants would otherwise put an
     * O(all processes ever) scan inside every checkpoint, OOM-victim
     * search and reclaim pass.
     */
    bool reapZombies = false;
    /**
     * Keep this many NVM frames in reserve for retirement migrations;
     * MAP_NVM demand faults degrade to DRAM once the free pool dips
     * to the reserve (rather than failing outright).
     */
    std::uint64_t nvmReserveFrames = 8;

    /**
     * Memory-pressure configuration (zone shrink, injected transient
     * allocation failures, watermark reclaim, OOM).  Disabled by
     * default: an unpressured kernel registers no pressure stats and
     * behaves identically to the pre-pressure tree until a zone
     * genuinely runs dry — at which point allocation now fails
     * gracefully (ENOMEM) instead of aborting the simulation.
     */
    fault::PressurePlan pressure{};

    /**
     * Seeded CPU-core faults (fail-stop / transient stall).  Disabled
     * by default: with an empty plan the kernel evaluates no triggers,
     * registers no core-fault stats, and takes no extra event-queue
     * bumps, so runs stay byte-identical to a fault-free tree.
     */
    fault::CoreFaultPlan coreFaults{};
};

/** The kernel. */
class Kernel : public cpu::FaultHandler
{
  public:
    /** SMP construction over every core of the machine. */
    Kernel(const KernelParams &params, sim::Simulation &sim,
           mem::HybridMemory &memory, cache::Hierarchy &caches,
           std::vector<cpu::Core *> cores);

    /** Single-core convenience overload (uniprocessor test rigs). */
    Kernel(const KernelParams &params, sim::Simulation &sim,
           mem::HybridMemory &memory, cache::Hierarchy &caches,
           cpu::Core &core);

    ~Kernel() override;

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** @name Process management. */
    /// @{
    /** Create a process running @p program; returns its pid. */
    Pid spawn(std::unique_ptr<cpu::OpStream> program,
              std::string name);

    /**
     * Create an empty process shell (used by crash recovery); the
     * caller populates the address space and context.  Recovery under
     * the persistent scheme adopts an NVM-resident page table instead
     * of building one, hence @p create_pt.
     */
    Process &spawnShell(std::string name, unsigned slot,
                        bool create_pt = true);

    Process *findProcess(Pid pid);
    const std::vector<std::unique_ptr<Process>> &processes() const
    {
        return procs;
    }

    /** The process on the core the kernel is currently executing on. */
    Process *currentProcess() { return cpus[activeCpu_].running; }

    /** The process resident on core @p cpu (null when idle). */
    Process *runningOn(CpuId cpu) { return cpus.at(cpu).running; }

    /**
     * The architected register state of @p proc as a checkpoint must
     * capture it: the live core state while the process is running on
     * some core, its saved context otherwise.
     */
    const cpu::CpuState &contextOf(const Process &proc) const;

    /**
     * Pin @p proc to core @p cpu (-1 clears the pin).  A process
     * queued on another core migrates lazily at its next pick.
     * @return false (and leaves the pin unchanged) when @p cpu has
     *         been offlined — a dead core can never run anything.
     */
    bool setAffinity(Process &proc, int cpu);

    /** Whether core @p cpu is still part of the scheduling set. */
    bool coreOnline(CpuId cpu) const { return cpus.at(cpu).online; }
    /// @}

    /** @name Execution. */
    /// @{
    /** Run until every process has exited. */
    void run();

    /** Run until @p deadline or until everything exits. */
    void runUntil(Tick deadline);
    /// @}

    /** @name Syscalls (invoked by op dispatch or examples/tests). */
    /// @{
    Addr sysMmap(Process &proc, Addr hint, std::uint64_t length,
                 std::uint32_t flags);
    void sysMunmap(Process &proc, Addr addr, std::uint64_t length);
    Addr sysMremap(Process &proc, Addr old_addr,
                   std::uint64_t old_length, std::uint64_t new_length);
    void sysMprotect(Process &proc, Addr addr, std::uint64_t length,
                     std::uint32_t prot);
    /// @}

    /** cpu::FaultHandler: demand paging. */
    bool handlePageFault(cpu::Core &core, Addr vaddr,
                         bool is_write) override;

    /**
     * Durably retire the NVM frame containing @p frame (reported by
     * the scrubber as uncorrectable or endurance-exhausted) and
     * migrate any live page mapped on it to a fresh frame — NVM when
     * the pool has one, DRAM otherwise.  Idempotent: re-retiring an
     * already-retired frame is a no-op, so a crash between the durable
     * bit and the migration replays cleanly.
     */
    void retireNvmFrame(Addr frame, const char *reason);

    /** The persistent bad-frame registry. */
    BadFrameTable &badFrameTable() { return *badFrames_; }
    const BadFrameTable &badFrameTable() const { return *badFrames_; }

    /**
     * Demote one DRAM-backed page of @p proc to an NVM frame (the
     * reclaim engine's work unit): copy, remap under the active PT
     * policy, shoot down stale translations, free the DRAM frame.
     * @return false when the page is not demotable (absent, already
     *         NVM, HSCC-remapped) or no NVM frame is available above
     *         the retirement reserve.
     */
    bool demotePage(Process &proc, Addr vaddr);

    /** The reclaim engine (null unless a pressure plan is armed). */
    ReclaimEngine *reclaimEngine() { return reclaim_.get(); }

    /**
     * Deterministic last-resort OOM kill: the non-pinned, non-shell
     * victim with the largest RSS (ties to the lowest pid), excluding
     * @p requester.  @return the victim, or null when no process is
     * eligible.
     */
    Process *oomKill(Process *requester);

    /** @name TLB shootdown (also used by the HSCC/SSP engines). */
    /// @{
    /**
     * Drop the translation of one page from every core's TLB: the
     * active core invalidates directly, remote cores via IPI.  Used
     * for frame retirement and HSCC remaps, where the PTE changes
     * under a possibly-running process.
     */
    void shootdownPage(Pid pid, Addr vaddr);

    /**
     * Flush every core's whole TLB (SSP FASE entry: tracked pages
     * must refill with the SSP extension fields populated).  Charges
     * the local 2 us flush cost like the uniprocessor kernel did.
     */
    void shootdownFlushAll();
    /// @}

    /** @name Persistence / prototype integration. */
    /// @{
    void addListener(OsEventListener *listener);
    void removeListener(OsEventListener *listener);

    /** Swap the page-table store policy (persistence schemes). */
    void setPtWritePolicy(PtWritePolicy *policy);

    KernelMem &kmem() { return kernelMem; }
    const NvmLayout &nvmLayout() const { return layout; }
    PageTableManager &pageTables() { return *ptMgr; }
    FrameAllocator &dramAllocator() { return *dramAlloc; }
    FrameAllocator &nvmAllocator() { return *nvmAlloc; }

    /** Core @p cpu of the machine. */
    cpu::Core &core(CpuId cpu) { return *cores_.at(cpu); }
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** The core the kernel is currently executing on. */
    CpuId activeCpu() const { return activeCpu_; }

    /**
     * Processes ready or running across every online core's runqueue
     * right now (the telemetry sampler's runqueue-depth channel).
     */
    unsigned
    runnableCount() const
    {
        unsigned n = 0;
        for (const CpuSlot &slot : cpus) {
            if (!slot.online)
                continue;
            n += static_cast<unsigned>(slot.runq.size());
            if (slot.running)
                ++n;
        }
        return n;
    }

    /** Live (non-zombie) processes right now — the telemetry
     *  sampler's tenant-population channel and the fleet driver's
     *  respawn trigger. */
    unsigned
    liveProcessCount() const
    {
        unsigned n = 0;
        for (const auto &proc : procs) {
            if (proc->state != ProcState::zombie)
                ++n;
        }
        return n;
    }

    /** User pages resident across all live processes right now. */
    std::uint64_t
    residentPagesTotal() const
    {
        std::uint64_t n = 0;
        for (const auto &proc : procs) {
            if (proc->state != ProcState::zombie)
                n += proc->residentPages;
        }
        return n;
    }

    sim::Simulation &simulation() { return sim; }
    const KernelParams &params() const { return _params; }

    /** Mark a process runnable again (after recovery re-binding). */
    void makeReady(Process &proc);

    /** Terminate a process, releasing its memory. */
    void exitProcess(Process &proc);
    /// @}

    statistics::StatGroup &stats() { return statGroup; }

  private:
    /** Forwards to the currently-installed policy. */
    class PolicyProxy : public PtWritePolicy
    {
      public:
        explicit PolicyProxy(PtWritePolicy *initial) : active(initial) {}

        void
        writeEntry(Addr entry_addr, std::uint64_t value) override
        {
            active->writeEntry(entry_addr, value);
        }

        PtWritePolicy *active;
    };

    /** One batched TLB-shootdown request carried by an IPI. */
    struct ShootdownRequest
    {
        Pid pid;
        AddrRange range;
        bool flushAll;
    };

    /**
     * The kernel-owned per-core IPI doorbell.  Shootdown initiators
     * append requests and schedule the event through the global event
     * queue; delivery invalidates the target core's TLB and charges
     * the handler cost.  Owned by the kernel so a crash tearing the
     * kernel down mid-shootdown deschedules it (see ~Event).
     */
    class TlbIpiEvent : public sim::Event
    {
      public:
        TlbIpiEvent(Kernel &kernel, CpuId cpu);

        void process() override;

        std::vector<ShootdownRequest> pending;

      private:
        Kernel &kernel;
        CpuId cpu;
    };

    /** Per-core scheduler state. */
    struct CpuSlot
    {
        Process *running = nullptr;       ///< resident process
        std::deque<Process *> runq;       ///< ready queue
        std::unique_ptr<TlbIpiEvent> ipi; ///< shootdown doorbell
        /** Hotplug state: offlined cores leave the scheduling set,
         *  the shootdown broadcast set, and the steal donor set. */
        bool online = true;
        /** A fired fail-stop fault: the core never executes or acks
         *  again; the watchdog offlines it at the next opportunity. */
        bool failStopped = false;
        /** A fired transient stall: unresponsive until this tick. */
        Tick stalledUntil = 0;
        /** Shootdown IPI delivery attempts seen (fault triggers). */
        std::uint64_t ipisReceived = 0;
        /** Ack flag for the initiator's timeout/retry protocol. */
        bool ipiAcked = false;
    };

    Process *pickNext(CpuId cpu);
    Process *popRunnable(CpuId cpu);
    Process *stealWork(CpuId thief);
    void enqueue(Process &proc, CpuId cpu);
    CpuId placementFor(const Process &proc) const;
    void switchTo(CpuId cpu, Process *proc);
    void runSlice(CpuId cpu, Process &proc, Tick slice_end);
    bool dispatch(CpuId cpu, Process &proc, const cpu::Op &op);
    void invalidateTlbRange(Pid pid, AddrRange range);
    void shootdownRemote(Pid pid, AddrRange range, bool flush_all);
    void deliverTlbIpi(CpuId cpu);
    void unmapPages(Process &proc, const Vma &piece);

    /** @name CPU-fault machinery (no-ops unless a plan is armed). */
    /// @{
    /**
     * Evaluate the armed core faults against @p cpu at the current
     * tick / IPI count; fired faults are consumed.  @return true when
     * a fault fired here.
     */
    bool evalCoreFaults(CpuId cpu);

    /** Whether @p cpu would acknowledge an IPI right now. */
    bool coreResponsive(CpuId cpu) const;

    /** Epoch-boundary sweep: fire due tick faults, offline the dead. */
    void watchdogPass();

    /** Escalation endpoint: mark @p cpu dead and offline it. */
    void watchdogDeclareDead(CpuId cpu);

    /**
     * Hotplug-style offlining of a dead core: re-place its runqueue
     * (the occupant that held the core when it died is killed via the
     * crash-consistent exitProcess path; pinned processes lose their
     * affinity), flush/invalidate its private caches through the
     * coherence directory, and remove it from the shootdown broadcast
     * and work-stealing sets.  Fatal when it would take the last
     * online core down.
     */
    void offlineCore(CpuId cpu);
    /// @}

    /** Lowest free persistent process slot; fatal when all
     *  layout.procSlots are live.  O(slots/64) bitmap-word scan. */
    unsigned allocSlot();

    /** Mark slot @p slot used / free in the slot bitmap. */
    void markSlotUsed(unsigned slot);
    void markSlotFree(unsigned slot);

    /** Drop zombie PCBs (reapZombies mode; epoch-boundary only —
     *  no live Process reference may be held across this). */
    void reapExited();

    /**
     * Allocate one DRAM user frame with the pressure machinery in the
     * loop: injected transient failures, retry with backoff, direct
     * reclaim on exhaustion, OOM kill as the last resort.  Returns
     * invalidAddr (ENOMEM) instead of aborting when nothing helps.
     */
    Addr allocUserFrame(Process *proc);

    /** Register-on-first-use pressure stats (absent by default). */
    statistics::Scalar &lazyScalar(statistics::Scalar *&slot,
                                   const char *name, const char *desc);

    KernelParams _params;
    sim::Simulation &sim;
    mem::HybridMemory &memory;
    cache::Hierarchy &caches;
    std::vector<cpu::Core *> cores_;

    KernelMem kernelMem;
    NvmLayout layout;

    std::unique_ptr<FrameAllocator> dramAlloc;
    std::unique_ptr<FrameAllocator> nvmAlloc;
    std::unique_ptr<BadFrameTable> badFrames_;
    std::unique_ptr<ReclaimEngine> reclaim_;

    /** Seeded coin for injected transient allocation failures. */
    Random allocRng;

    PlainPtWrite plainPtWrite;
    PolicyProxy policyProxy;
    std::unique_ptr<PageTableManager> ptMgr;

    std::vector<std::unique_ptr<Process>> procs;
    std::vector<CpuSlot> cpus;
    CpuId activeCpu_ = 0;

    /** Armed-plan gate: false keeps every fault hook zero-cost. */
    bool coreFaultArmed_ = false;
    /** Faults not yet fired (entries are consumed as they fire). */
    std::vector<fault::CoreFault> pendingCoreFaults;
    Pid nextPid = 1;

    /** Saved-state slot occupancy, one bit per slot.  Word-granular
     *  so allocSlot() skips fully-used words: lowest-free-bit order
     *  (identical to the historical 32-bit mask) at O(slots/64). */
    std::vector<std::uint64_t> slotWords;
    /** Lowest word that may contain a free slot bit. */
    unsigned slotSearchHint = 0;

    /** pid → PCB for O(1) findProcess at fleet scale; zombies stay
     *  indexed until reaped, matching the linear scan's behaviour. */
    std::unordered_map<Pid, Process *> pidIndex;
    /** Zombies awaiting an epoch-boundary reap (reapZombies mode). */
    unsigned zombieCount = 0;

    std::vector<OsEventListener *> listeners;

    statistics::StatGroup statGroup;
    statistics::Scalar &syscalls;
    statistics::Scalar &contextSwitches;
    statistics::Scalar &faultsServiced;
    statistics::Scalar &opsExecuted;
    statistics::Scalar &nvmFramesRetired;
    statistics::Scalar &nvmPagesMigrated;
    statistics::Scalar &nvmDegradedAllocs;
    /** SMP-only stats; null on a single-core machine so the
     *  uniprocessor stat tree stays byte-identical. */
    statistics::Scalar *tlbShootdownsSent = nullptr;
    statistics::Scalar *tlbShootdownIpis = nullptr;
    statistics::Scalar *migrations = nullptr;
    /** Pressure stats; registered lazily on first use so default
     *  (unpressured, never-exhausted) runs export no extra stats. */
    statistics::Scalar *enomemFaults = nullptr;
    statistics::Scalar *allocRetries = nullptr;
    statistics::Scalar *allocFailuresInjected = nullptr;
    statistics::Scalar *oomKills = nullptr;
    statistics::Scalar *oomPagesFreed = nullptr;
    /** Core-fault stats; registered lazily on first use so fault-free
     *  runs export no extra stats (byte-identity guarantee). */
    statistics::Scalar *ipiRetriesStat = nullptr;
    statistics::Scalar *ipiTimeoutsStat = nullptr;
    statistics::Scalar *coresOfflined = nullptr;
    statistics::Scalar *affinityBroken = nullptr;
    statistics::Scalar *coreLossKills = nullptr;
};

} // namespace kindle::os

#endif // KINDLE_OS_KERNEL_HH
