/**
 * @file
 * Watermark-driven memory reclaim.
 *
 * The reclaim engine is the kernel's answer to running out of frames
 * before the OOM killer has to be: an event-queue citizen (like the
 * NVM patrol scrubber) that wakes on an interval and, whenever the
 * DRAM zone's free level sits at or below its low watermark, demotes
 * cold DRAM pages into NVM until the level recovers to the high
 * watermark or the per-pass batch budget runs out.  NVM pressure has
 * no page-level relief valve — the user pool is only drained by live
 * mappings — so at or below the NVM low watermark the engine instead
 * fires an "early checkpoint" hook: the persistence domain truncates
 * the redo log and compacts dead saved-state slots, shedding the
 * metadata side of NVM pressure (see PersistDomain::enableBackpressure).
 *
 * Cold-page selection is deterministic: the tree maintains no PTE
 * accessed bits, so the engine approximates coldness by never touching
 * a process that is currently resident on a core, and round-robins a
 * pid cursor across the rest for fairness.  Demotion reuses the frame
 * retirement migration choreography (copy, remap under the active PT
 * policy, shoot down stale TLB entries) and is crash-consistent: a
 * power cut at reclaim.pre_demote leaves an allocated-but-unmapped NVM
 * frame that recovery's leak reclaim sweeps back to the free pool.
 */

#ifndef KINDLE_OS_RECLAIM_HH
#define KINDLE_OS_RECLAIM_HH

#include <functional>

#include "base/stats.hh"
#include "base/types.hh"
#include "sim/event.hh"

namespace kindle::os
{

class Kernel;

/** Reclaim cadence/batching (derived from fault::PressurePlan). */
struct ReclaimParams
{
    /** Gap between patrol passes. */
    Tick interval = oneMs / 4;
    /** Max pages demoted DRAM→NVM per pass. */
    unsigned batchPages = 8;
    /**
     * Minimum gap between NVM-pressure checkpoint requests.  A zone
     * pinned at its cap (every frame held by live mappings) sits below
     * its low watermark indefinitely; without a throttle every patrol
     * pass converts into a whole-population early checkpoint, which at
     * fleet scale costs more than the patrol interval and livelocks
     * the machine.  0 = request on every qualifying pass.
     */
    Tick checkpointMinGap = 0;
};

/** The background reclaim engine; owned by the kernel. */
class ReclaimEngine
{
  public:
    ReclaimEngine(Kernel &kernel, ReclaimParams params);
    ~ReclaimEngine();

    ReclaimEngine(const ReclaimEngine &) = delete;
    ReclaimEngine &operator=(const ReclaimEngine &) = delete;

    void start();
    void stop();
    bool running() const { return started; }

    /**
     * Route NVM-pressure relief to the persistence domain (may be
     * null: a machine without a persistence config has no checkpoint
     * to pull forward and simply rides its watermarks).
     */
    void setCheckpointHook(std::function<void()> fn)
    {
        checkpointHook = std::move(fn);
    }

    /**
     * Direct reclaim: one synchronous pass on behalf of an allocation
     * that found its zone empty, bypassing the patrol interval.
     */
    void emergencyPass();

    statistics::StatGroup &stats() { return statGroup; }

  private:
    class PatrolEvent : public sim::Event
    {
      public:
        explicit PatrolEvent(ReclaimEngine &engine)
            : Event("reclaim", Priority::scrub), engine(engine)
        {}

        void
        process() override
        {
            engine.patrol();
            engine.scheduleNext();
        }

      private:
        ReclaimEngine &engine;
    };

    void patrol();
    void scheduleNext();

    /** Fire the early-checkpoint hook, honoring checkpointMinGap. */
    void maybeRequestCheckpoint();

    /** Demote up to @p budget cold DRAM pages; returns pages moved. */
    unsigned demoteBatch(unsigned budget);

    Kernel &kernel;
    ReclaimParams _params;
    std::function<void()> checkpointHook;

    PatrolEvent event;
    bool started = false;
    /** Round-robin fairness cursor over victim pids. */
    Pid cursor = 0;
    /** Tick of the last honored checkpoint request. */
    Tick lastCheckpointRequest = 0;
    bool checkpointEverRequested = false;

    statistics::StatGroup statGroup;
    statistics::Scalar &passes;
    statistics::Scalar &emergencyPasses;
    statistics::Scalar &pagesDemoted;
    statistics::Scalar &demoteStallsNoNvm;
    statistics::Scalar &checkpointsRequested;
};

} // namespace kindle::os

#endif // KINDLE_OS_RECLAIM_HH
