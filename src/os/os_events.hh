/**
 * @file
 * Kernel event listener interface.
 *
 * The persistence layer subscribes to these callbacks to append redo
 * records for OS metadata mutations; the SSP prototype subscribes to
 * FASE boundaries.  Listeners run synchronously in kernel context, so
 * any memory traffic they issue is charged to the running process —
 * which is exactly how the paper attributes OS overhead.
 */

#ifndef KINDLE_OS_OS_EVENTS_HH
#define KINDLE_OS_OS_EVENTS_HH

#include "base/types.hh"
#include "os/vma.hh"

namespace kindle::os
{

class Process;

/** Subscriber to kernel lifecycle and memory-management events. */
class OsEventListener
{
  public:
    virtual ~OsEventListener() = default;

    virtual void onProcessCreated(Process &proc) { (void)proc; }
    virtual void onProcessExit(Process &proc) { (void)proc; }

    virtual void
    onVmaAdded(Process &proc, const Vma &vma)
    {
        (void)proc;
        (void)vma;
    }

    virtual void
    onVmaRemoved(Process &proc, const Vma &vma)
    {
        (void)proc;
        (void)vma;
    }

    virtual void
    onFrameMapped(Process &proc, Addr vaddr, Addr frame, bool nvm)
    {
        (void)proc;
        (void)vaddr;
        (void)frame;
        (void)nvm;
    }

    virtual void
    onFrameUnmapped(Process &proc, Addr vaddr, Addr frame, bool nvm)
    {
        (void)proc;
        (void)vaddr;
        (void)frame;
        (void)nvm;
    }

    /**
     * The kernel is unmapping a page whose PTE carries the HSCC
     * remapped flag: @p mapped_frame is the DRAM cache page.  A
     * subscriber that owns the remapping resolves the NVM home frame
     * (written to @p home_out) and reclaims its cache slot.
     * @return true if resolved.
     */
    virtual bool
    resolveRemappedFrame(Process &proc, Addr vaddr, Addr mapped_frame,
                         Addr *home_out)
    {
        (void)proc;
        (void)vaddr;
        (void)mapped_frame;
        (void)home_out;
        return false;
    }

    /**
     * An NVM frame was durably retired.  When a live page sat on it,
     * @p proc / @p vaddr / @p new_frame describe the migration that
     * rescued it (@p new_frame may be a DRAM frame when the NVM zone
     * was exhausted); for an unmapped frame @p proc is null.
     */
    virtual void
    onFrameRetired(Process *proc, Addr vaddr, Addr bad_frame,
                   Addr new_frame)
    {
        (void)proc;
        (void)vaddr;
        (void)bad_frame;
        (void)new_frame;
    }

    virtual void
    onContextSwitch(Process *from, Process *to)
    {
        (void)from;
        (void)to;
    }

    virtual void onFaseStart(Process &proc) { (void)proc; }
    virtual void onFaseEnd(Process &proc) { (void)proc; }
};

} // namespace kindle::os

#endif // KINDLE_OS_OS_EVENTS_HH
