#include "os/vma.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace kindle::os
{

const Vma *
AddressSpace::find(Addr vaddr) const
{
    return const_cast<AddressSpace *>(this)->find(vaddr);
}

Vma *
AddressSpace::find(Addr vaddr)
{
    auto it = vmas.upper_bound(vaddr);
    if (it == vmas.begin())
        return nullptr;
    --it;
    return it->second.range.contains(vaddr) ? &it->second : nullptr;
}

Addr
AddressSpace::findFreeRegion(Addr hint, std::uint64_t size) const
{
    kindle_assert(size > 0 && isAligned(size, pageSize),
                  "mmap size must be a positive page multiple");
    Addr candidate = hint ? roundUp(hint, pageSize) : mmapBase;
    if (candidate < mmapBase)
        candidate = mmapBase;

    auto it = vmas.lower_bound(candidate);
    // Step back to check the predecessor for overlap with candidate.
    if (it != vmas.begin()) {
        auto prev = std::prev(it);
        if (prev->second.range.end() > candidate)
            candidate = prev->second.range.end();
    }
    while (it != vmas.end()) {
        if (candidate + size <= it->second.range.start())
            break;  // fits in the gap before *it
        candidate = it->second.range.end();
        ++it;
    }
    kindle_assert(candidate + size <= vaTop,
                  "virtual address space exhausted");
    return candidate;
}

void
AddressSpace::insert(const Vma &vma)
{
    kindle_assert(isAligned(vma.range.start(), pageSize) &&
                      isAligned(vma.range.size(), pageSize),
                  "VMA must be page aligned");
    kindle_assert(!vma.range.empty(), "empty VMA");
    // Overlap check against neighbours.
    auto it = vmas.lower_bound(vma.range.start());
    if (it != vmas.end()) {
        kindle_assert(!vma.range.intersects(it->second.range),
                      "VMA overlap on insert");
    }
    if (it != vmas.begin()) {
        auto prev = std::prev(it);
        kindle_assert(!vma.range.intersects(prev->second.range),
                      "VMA overlap on insert");
    }
    vmas.emplace(vma.range.start(), vma);
}

std::vector<Vma>
AddressSpace::removeRange(AddrRange range)
{
    std::vector<Vma> removed;
    if (range.empty())
        return removed;

    // Find the first VMA that could intersect.
    auto it = vmas.lower_bound(range.start());
    if (it != vmas.begin()) {
        auto prev = std::prev(it);
        if (prev->second.range.end() > range.start())
            it = prev;
    }

    while (it != vmas.end() && it->second.range.start() < range.end()) {
        Vma vma = it->second;
        if (!vma.range.intersects(range)) {
            ++it;
            continue;
        }
        it = vmas.erase(it);

        const Addr cut_lo = std::max(vma.range.start(), range.start());
        const Addr cut_hi = std::min(vma.range.end(), range.end());

        // Left remainder survives.
        if (vma.range.start() < cut_lo) {
            Vma left = vma;
            left.range = AddrRange(vma.range.start(), cut_lo);
            vmas.emplace(left.range.start(), left);
        }
        // Right remainder survives.
        if (cut_hi < vma.range.end()) {
            Vma right = vma;
            right.range = AddrRange(cut_hi, vma.range.end());
            it = vmas.emplace(right.range.start(), right).first;
            ++it;
        }

        Vma cut = vma;
        cut.range = AddrRange(cut_lo, cut_hi);
        removed.push_back(cut);
    }
    return removed;
}

std::vector<Vma>
AddressSpace::protectRange(AddrRange range, std::uint32_t prot)
{
    // Carve the affected subranges out, then reinsert them with the
    // new protection.
    std::vector<Vma> affected = removeRange(range);
    for (Vma &vma : affected) {
        vma.prot = prot;
        insert(vma);
    }
    return affected;
}

void
AddressSpace::forEach(const std::function<void(const Vma &)> &fn) const
{
    for (const auto &[start, vma] : vmas)
        fn(vma);
}

std::uint64_t
AddressSpace::mappedBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[start, vma] : vmas)
        total += vma.range.size();
    return total;
}

} // namespace kindle::os
