/**
 * @file
 * Virtual memory areas and the per-process address space.
 *
 * Kindle tags every VMA as DRAM- or NVM-backed depending on the
 * MAP_NVM flag passed to mmap(), and the physical allocator for a
 * page fault is chosen from that tag (paper §II).
 */

#ifndef KINDLE_OS_VMA_HH
#define KINDLE_OS_VMA_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "base/addr_range.hh"
#include "cpu/op.hh"

namespace kindle::os
{

/** One mapped region of a process's virtual address space. */
struct Vma
{
    AddrRange range;
    std::uint32_t prot = cpu::protRead | cpu::protWrite;
    bool nvm = false;      ///< MAP_NVM: back with NVM frames
    std::uint32_t areaId = 0;  ///< replay "area" label (0 = anonymous)

    bool
    operator==(const Vma &o) const
    {
        return range == o.range && prot == o.prot && nvm == o.nvm &&
               areaId == o.areaId;
    }
};

/**
 * A process's sorted, non-overlapping VMA set plus the virtual-address
 * search policy for placing new mappings.
 */
class AddressSpace
{
  public:
    AddressSpace() = default;

    /** Lowest address handed out by the allocator search. */
    static constexpr Addr mmapBase = Addr(0x100000000);  // 4 GiB
    /** Canonical user-space ceiling (47-bit). */
    static constexpr Addr vaTop = Addr(1) << 47;

    /** VMA containing @p vaddr, if any. */
    const Vma *find(Addr vaddr) const;
    Vma *find(Addr vaddr);

    /**
     * Pick a free, page-aligned region of @p size bytes at or above
     * @p hint (or mmapBase when hint is 0).
     * @return the chosen start address.
     */
    Addr findFreeRegion(Addr hint, std::uint64_t size) const;

    /** Insert a VMA; it must not overlap existing mappings. */
    void insert(const Vma &vma);

    /**
     * Unmap [start, start+size): remove full overlaps and split
     * partial ones.
     * @return the removed (sub)regions with their attributes, for
     *         page-table teardown.
     */
    std::vector<Vma> removeRange(AddrRange range);

    /**
     * Apply @p prot to every byte of @p range that is mapped,
     * splitting VMAs as needed.
     * @return the affected subranges.
     */
    std::vector<Vma> protectRange(AddrRange range, std::uint32_t prot);

    /** Visit every VMA in address order. */
    void forEach(const std::function<void(const Vma &)> &fn) const;

    std::size_t count() const { return vmas.size(); }
    bool empty() const { return vmas.empty(); }

    /** Total mapped bytes. */
    std::uint64_t mappedBytes() const;

    bool
    operator==(const AddressSpace &o) const
    {
        return vmas == o.vmas;
    }

  private:
    /** Keyed by start address. */
    std::map<Addr, Vma> vmas;
};

} // namespace kindle::os

#endif // KINDLE_OS_VMA_HH
