#include "os/kernel_mem.hh"

#include <vector>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "fault/fault.hh"

namespace kindle::os
{

void
KernelMem::writeBuf(Addr paddr, const void *src, std::uint64_t size)
{
    memory.writeData(paddr, src, size);
    sim.bump(caches.access(mem::MemCmd::write, paddr, size, sim.now())
                 .latency);
}

void
KernelMem::readBuf(Addr paddr, void *dst, std::uint64_t size)
{
    sim.bump(caches.access(mem::MemCmd::read, paddr, size, sim.now())
                 .latency);
    memory.readData(paddr, dst, size);
}

void
KernelMem::writeBufDurable(Addr paddr, const void *src,
                           std::uint64_t size,
                           const char *pre_fence_site)
{
    memory.writeData(paddr, src, size);
    sim.bump(caches.access(mem::MemCmd::write, paddr, size, sim.now())
                 .latency);
    const Addr first = roundDown(paddr, lineSize);
    const Addr last = roundDown(paddr + size - 1, lineSize);
    for (Addr line = first; line <= last; line += lineSize)
        clwb(line);
    if (pre_fence_site)
        KINDLE_CRASH_SITE(pre_fence_site);
    sfence();
}

void
KernelMem::copyPage(Addr dst, Addr src, bool flush_src)
{
    if (flush_src)
        sim.bump(caches.clwbPage(src, sim.now()));

    // Timing: streaming read of the source + streaming write of the
    // destination.
    sim.bump(memory.submit({mem::MemCmd::bulkRead, src, pageSize},
                           sim.now()));
    sim.bump(memory.submit({mem::MemCmd::bulkWrite, dst, pageSize},
                           sim.now()));

    // Functional: move the bytes; a copy landing in NVM via the bulk
    // path is a device-level transfer and therefore durable.
    std::vector<std::uint8_t> buf(pageSize);
    memory.readData(src, buf.data(), pageSize);
    if (memory.typeOf(dst) == mem::MemType::nvm)
        memory.writeDataDurable(dst, buf.data(), pageSize);
    else
        memory.writeData(dst, buf.data(), pageSize);
}

void
KernelMem::zeroDurable(Addr paddr, std::uint64_t size)
{
    sim.bump(memory.submit({mem::MemCmd::bulkWrite, paddr, size},
                           sim.now()));
    const std::vector<std::uint8_t> zeros(pageSize, 0);
    Addr cursor = paddr;
    std::uint64_t remaining = size;
    while (remaining > 0) {
        const std::uint64_t chunk =
            std::min<std::uint64_t>(remaining, pageSize);
        memory.writeDataDurable(cursor, zeros.data(), chunk);
        cursor += chunk;
        remaining -= chunk;
    }
}

} // namespace kindle::os
