/**
 * @file
 * Kernel-mode memory access helpers.
 *
 * OS code manipulates simulated physical memory constantly — page-table
 * entries, allocator bitmaps, the redo log, saved-state areas.  Each
 * helper performs the functional data movement *and* charges the
 * simulation clock for the access, so kernel work is as observable in
 * end-to-end execution time as user work (the property the paper's
 * HSCC study exploits: "user-level simulators miss OS overheads").
 */

#ifndef KINDLE_OS_KERNEL_MEM_HH
#define KINDLE_OS_KERNEL_MEM_HH

#include <cstdint>

#include "base/intmath.hh"
#include "cache/hierarchy.hh"
#include "mem/hybrid_memory.hh"
#include "sim/simulation.hh"

namespace kindle::os
{

/** Timing+functional gateway for kernel accesses. */
class KernelMem
{
  public:
    KernelMem(sim::Simulation &sim, mem::HybridMemory &memory,
              cache::Hierarchy &caches)
        : sim(sim), memory(memory), caches(caches)
    {}

    /** @name Cached scalar accesses (normal kernel data). */
    /// @{
    std::uint64_t
    read64(Addr paddr)
    {
        sim.bump(caches.access(mem::MemCmd::read, paddr, 8, sim.now())
                     .latency);
        return memory.readT<std::uint64_t>(paddr);
    }

    void
    write64(Addr paddr, std::uint64_t v)
    {
        sim.bump(caches.access(mem::MemCmd::write, paddr, 8, sim.now())
                     .latency);
        memory.writeT<std::uint64_t>(paddr, v);
    }
    /// @}

    /** @name Uncached scalar accesses (non-temporal kernel data). */
    /// @{
    std::uint64_t
    read64Uncached(Addr paddr)
    {
        sim.bump(memory.submit({mem::MemCmd::read,
                                roundDown(paddr, lineSize), lineSize},
                               sim.now()));
        return memory.readT<std::uint64_t>(paddr);
    }

    void
    write64Uncached(Addr paddr, std::uint64_t v)
    {
        memory.writeT<std::uint64_t>(paddr, v);
        sim.bump(memory.submit({mem::MemCmd::write,
                                roundDown(paddr, lineSize), lineSize},
                               sim.now()));
    }
    /// @}

    /** Raw buffer write, cached, timing charged per line. */
    void writeBuf(Addr paddr, const void *src, std::uint64_t size);

    /** Raw buffer read, cached, timing charged per line. */
    void readBuf(Addr paddr, void *dst, std::uint64_t size);

    /**
     * Durable buffer write: write + clwb each line + one fence.
     * The data is guaranteed crash-safe when the call returns.  When
     * @p pre_fence_site is non-null a crash-site probe fires between
     * the clwbs and the fence — the window where the lines sit in the
     * controller's write buffer and a power cut loses them.
     */
    void writeBufDurable(Addr paddr, const void *src, std::uint64_t size,
                         const char *pre_fence_site = nullptr);

    /** Read the crash-surviving NVM image (recovery path). */
    void
    readDurableBuf(Addr paddr, void *dst, std::uint64_t size)
    {
        // Recovery-time reads: device-speed bulk read.
        sim.bump(memory.submit(
            {mem::MemCmd::bulkRead, roundDown(paddr, lineSize),
             roundUp(size, lineSize)},
            sim.now()));
        memory.readNvmDurable(paddr, dst, size);
    }

    /** clwb one line (timing + durability commit). */
    void
    clwb(Addr paddr)
    {
        sim.bump(caches.clwb(paddr, sim.now()));
    }

    /**
     * Store fence.  After the fence has waited out the controller
     * drains, every previously buffered NVM write is on media — tell
     * the durability model so a later crash cannot lose them.
     */
    void
    sfence()
    {
        sim.bump(caches.sfence(sim.now()));
        memory.drainWrites(sim.now());
    }

    /**
     * 4 KiB-granular copy between physical pages.  Cache lines of the
     * source are flushed first when @p flush_src (HSCC's page-copy
     * protocol); the destination image is durable iff it lands in NVM.
     */
    void copyPage(Addr dst, Addr src, bool flush_src);

    /** Streaming durable write of zeros (fresh durable region init). */
    void zeroDurable(Addr paddr, std::uint64_t size);

    sim::Simulation &simulation() { return sim; }
    mem::HybridMemory &mem() { return memory; }
    cache::Hierarchy &hierarchy() { return caches; }

  private:
    sim::Simulation &sim;
    mem::HybridMemory &memory;
    cache::Hierarchy &caches;
};

} // namespace kindle::os

#endif // KINDLE_OS_KERNEL_MEM_HH
