#include "os/reclaim.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "base/trace_flags.hh"
#include "os/kernel.hh"
#include "telemetry/profiler.hh"
#include "trace/trace.hh"

namespace kindle::os
{

ReclaimEngine::ReclaimEngine(Kernel &kernel_arg, ReclaimParams params)
    : kernel(kernel_arg),
      _params(params),
      event(*this),
      statGroup("reclaim", "watermark-driven memory reclaim"),
      passes(statGroup.addScalar("passes", "patrol passes run")),
      emergencyPasses(statGroup.addScalar(
          "emergencyPasses", "direct-reclaim passes for failed allocs")),
      pagesDemoted(statGroup.addScalar(
          "pagesDemoted", "cold DRAM pages demoted to NVM")),
      demoteStallsNoNvm(statGroup.addScalar(
          "demoteStallsNoNvm",
          "demotions abandoned for lack of NVM frames")),
      checkpointsRequested(statGroup.addScalar(
          "checkpointsRequested",
          "early checkpoints requested under NVM pressure"))
{
    kindle_assert(_params.interval > 0, "reclaim interval cannot be 0");
    kindle_assert(_params.batchPages > 0, "reclaim batch cannot be 0");
}

ReclaimEngine::~ReclaimEngine()
{
    // ~Event deschedules itself; nothing else to unwind.
}

void
ReclaimEngine::start()
{
    if (started)
        return;
    started = true;
    scheduleNext();
}

void
ReclaimEngine::stop()
{
    if (!started)
        return;
    started = false;
    kernel.simulation().eventq().deschedule(&event);
}

void
ReclaimEngine::scheduleNext()
{
    if (!started)
        return;
    kernel.simulation().eventq().schedule(
        &event, kernel.simulation().now() + _params.interval);
}

void
ReclaimEngine::patrol()
{
    KINDLE_PROF_SCOPE(reclaim);
    ++passes;
    if (kernel.dramAllocator().belowLow())
        demoteBatch(_params.batchPages);
    if (kernel.nvmAllocator().belowLow())
        maybeRequestCheckpoint();
}

void
ReclaimEngine::emergencyPass()
{
    KINDLE_PROF_SCOPE(reclaim);
    ++emergencyPasses;
    demoteBatch(_params.batchPages);
    // Direct reclaim runs exactly when the machine is at its
    // tightest; if the NVM relief valve is itself low, ask the
    // persistence domain for an early checkpoint (truncating the redo
    // log and compacting slots) rather than waiting for the next
    // patrol to notice — NVM saturation windows can be far shorter
    // than the patrol interval.
    if (kernel.nvmAllocator().belowLow())
        maybeRequestCheckpoint();
}

void
ReclaimEngine::maybeRequestCheckpoint()
{
    if (!checkpointHook)
        return;
    const Tick now = kernel.simulation().now();
    if (checkpointEverRequested &&
        now - lastCheckpointRequest < _params.checkpointMinGap) {
        return;
    }
    checkpointEverRequested = true;
    lastCheckpointRequest = now;
    ++checkpointsRequested;
    checkpointHook();
}

unsigned
ReclaimEngine::demoteBatch(unsigned budget)
{
    FrameAllocator &dram = kernel.dramAllocator();
    const std::uint64_t target = dram.highWatermark();

    // Victim processes: anything not resident on a core right now
    // (the only coldness signal the tree maintains) and not inside a
    // failure-atomic section.  Round-robin the start point so one big
    // sleeper does not absorb every pass.
    std::vector<Process *> victims;
    for (const auto &p : kernel.processes()) {
        if (p->state == ProcState::zombie || p->ptRoot == invalidAddr)
            continue;
        if (p->faseActive)
            continue;
        bool resident = false;
        for (CpuId c = 0; c < kernel.numCores(); ++c) {
            if (kernel.runningOn(c) == p.get()) {
                resident = true;
                break;
            }
        }
        if (!resident)
            victims.push_back(p.get());
    }
    std::sort(victims.begin(), victims.end(),
              [](const Process *a, const Process *b) {
                  return a->pid < b->pid;
              });
    const auto pivot = std::find_if(
        victims.begin(), victims.end(),
        [this](const Process *p) { return p->pid > cursor; });
    std::rotate(victims.begin(), pivot, victims.end());

    unsigned demoted = 0;
    for (Process *proc : victims) {
        if (demoted >= budget || dram.freeFrames() >= target)
            break;
        // Collect this process's DRAM-backed leaves (the software
        // walk is charged — scanning for victims is real work).
        std::vector<Addr> pages;
        kernel.pageTables().forEachLeaf(
            proc->ptRoot, [&](Addr va, cpu::Pte pte, Addr) {
                if (pte.present() && !pte.nvmBacked() &&
                    !pte.hsccRemapped()) {
                    pages.push_back(va);
                }
            });
        for (const Addr va : pages) {
            if (demoted >= budget || dram.freeFrames() >= target)
                break;
            if (!kernel.demotePage(*proc, va)) {
                // No NVM frame to demote onto: further candidates
                // fare no better this pass.
                ++demoteStallsNoNvm;
                cursor = proc->pid;
                return demoted;
            }
            ++pagesDemoted;
            ++demoted;
        }
        cursor = proc->pid;
    }
    if (demoted > 0) {
        trace::dprintf(trace::Flag::vma, kernel.simulation().now(),
                       "reclaim demoted {} pages ({} DRAM frames free)",
                       demoted, dram.freeFrames());
    }
    return demoted;
}

} // namespace kindle::os
