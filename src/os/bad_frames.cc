/**
 * @file
 * Persistent bad-frame table implementation.
 */

#include "os/bad_frames.hh"

#include "base/bitfield.hh"
#include "base/intmath.hh"
#include "base/logging.hh"
#include "fault/fault.hh"

namespace kindle::os
{

BadFrameTable::BadFrameTable(AddrRange device, KernelMem &kmem,
                             Addr bitmap_addr)
    : device(device),
      kmem(kmem),
      bitmapAddr(bitmap_addr),
      frameCount(device.size() / pageSize),
      retiredWords(divCeil(device.size() / pageSize, 64), 0),
      statGroup("badFrames", "persistent bad-frame table"),
      retirements(statGroup.addScalar("retirements",
                                      "frames durably retired")),
      persistWrites(statGroup.addScalar(
          "persistWrites", "durable bitmap updates"))
{
    kindle_assert(frameCount > 0, "bad-frame table over an empty device");
}

std::uint64_t
BadFrameTable::frameIndex(Addr addr) const
{
    kindle_assert(device.contains(addr),
                  "bad-frame lookup at {} outside the NVM device", addr);
    return (addr - device.start()) >> pageShift;
}

void
BadFrameTable::loadFromNvm()
{
    const std::uint64_t words = divCeil(frameCount, 64);
    kmem.readDurableBuf(bitmapAddr, retiredWords.data(), words * 8);
    // Mask bits past frameCount in the tail word; they are outside
    // the device and must never classify a frame as retired.
    if (frameCount % 64 != 0) {
        retiredWords[words - 1] &=
            (std::uint64_t(1) << (frameCount % 64)) - 1;
    }
    _retiredCount = 0;
    for (std::uint64_t w = 0; w < words; ++w)
        _retiredCount += std::uint64_t(popCount(retiredWords[w]));
}

bool
BadFrameTable::isRetired(Addr addr) const
{
    return testRetired(frameIndex(addr));
}

bool
BadFrameTable::retire(Addr addr)
{
    const std::uint64_t index = frameIndex(addr);
    if (testRetired(index))
        return false;
    retiredWords[index / 64] |= std::uint64_t(1) << (index % 64);
    ++_retiredCount;
    ++retirements;
    ++persistWrites;
    // Durable RMW of the containing bitmap word.  The bit is strictly
    // one-way, so replaying this after a crash converges.
    const Addr word_addr = bitmapAddr + (index / 64) * 8;
    std::uint64_t word = 0;
    kmem.readDurableBuf(word_addr, &word, 8);
    word |= std::uint64_t(1) << (index % 64);
    kmem.writeBufDurable(word_addr, &word, 8, "badframe.retire_pre_fence");
    return true;
}

bool
BadFrameTable::anyRetired(Addr base, std::uint64_t bytes) const
{
    if (_retiredCount == 0 || bytes == 0)
        return false;
    const Addr first = roundDown(base, pageSize);
    for (Addr frame = first; frame < base + bytes; frame += pageSize) {
        if (testRetired(frameIndex(frame)))
            return true;
    }
    return false;
}

} // namespace kindle::os
