/**
 * @file
 * Static carving of the NVM physical range into kernel metadata
 * regions and the user-allocatable frame pool.
 *
 * Everything the recovery procedure needs after a crash lives at
 * well-known offsets from the NVM base: the persistent frame-allocator
 * bitmap, the saved-state directory, the redo log, the per-process
 * virtual→NVM-physical mapping lists, and the SSP/HSCC metadata areas.
 */

#ifndef KINDLE_OS_NVM_LAYOUT_HH
#define KINDLE_OS_NVM_LAYOUT_HH

#include "base/addr_range.hh"
#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace kindle::os
{

/** Default persistent process-slot count (see NvmLayoutParams). */
constexpr unsigned maxProcs = 16;

/** Bytes reserved per process in the saved-state directory. */
constexpr std::uint64_t savedStateSlotBytes = 16 * oneKiB;

/**
 * Sizing knobs for the carved layout.  The defaults reproduce the
 * historical fixed carving byte for byte; fleet-scale configurations
 * raise procSlots into the thousands and trade the per-process
 * mapping-list reservation down to match their small tenant heaps.
 */
struct NvmLayoutParams
{
    /** Simultaneously-live processes tracked persistently. */
    unsigned procSlots = maxProcs;

    /** Redo-log ring reservation (halved between the metadata log
     *  and the persistent scheme's PT undo log). */
    std::uint64_t redoLogBytes = 16 * oneMiB;

    /** Per-process virtual→NVM-physical mapping-list reservation.
     *  16 bytes per resident NVM page; the default covers 256k pages
     *  (1 GiB) per process. */
    std::uint64_t mappingListBytesPerProc = 4 * oneMiB;
};

/** The carved regions. */
struct NvmLayout
{
    AddrRange nvm;  ///< the whole device

    Addr allocBitmap = 0;           ///< persistent frame bitmap
    std::uint64_t allocBitmapBytes = 0;

    /** Persistent bad-frame bitmap.  One bit per frame of the *whole*
     *  device — metadata regions can wear out too, and recovery must
     *  be able to quarantine a saved-state slot whose frames died. */
    Addr badFrameBitmap = 0;
    std::uint64_t badFrameBitmapBytes = 0;

    Addr savedStateDir = 0;         ///< procSlots fixed-size slots
    std::uint64_t savedStateBytes = 0;

    /** Process-slot capacity this layout was carved for. */
    unsigned procSlots = maxProcs;

    Addr redoLog = 0;               ///< OS metadata redo-log ring
    std::uint64_t redoLogBytes = 0;

    Addr mappingLists = 0;          ///< per-process vpn→pfn lists
    std::uint64_t mappingListBytesPerProc = 0;

    Addr sspCache = 0;              ///< SSP metadata area
    std::uint64_t sspCacheBytes = 0;

    Addr hsccTable = 0;             ///< HSCC NVM↔DRAM lookup table
    std::uint64_t hsccTableBytes = 0;

    Addr userPool = 0;              ///< first allocatable frame
    std::uint64_t userPoolBytes = 0;

    /** Saved-state slot base for process slot @p idx. */
    Addr
    slotAddr(unsigned idx) const
    {
        return savedStateDir +
               static_cast<std::uint64_t>(idx) * savedStateSlotBytes;
    }

    /** Mapping-list region base for process slot @p idx. */
    Addr
    mappingListAddr(unsigned idx) const
    {
        return mappingLists +
               static_cast<std::uint64_t>(idx) * mappingListBytesPerProc;
    }

    /** Carve the layout from @p nvm_range per @p params.  The default
     *  params reproduce the historical carving byte for byte. */
    static NvmLayout
    standard(AddrRange nvm_range, const NvmLayoutParams &params = {})
    {
        kindle_assert(params.procSlots > 0, "layout with zero slots");
        NvmLayout l;
        l.nvm = nvm_range;
        l.procSlots = params.procSlots;
        Addr cursor = nvm_range.start();

        const std::uint64_t frames = nvm_range.size() / pageSize;
        l.allocBitmap = cursor;
        l.allocBitmapBytes = roundUp(divCeil(frames, 8), pageSize);
        cursor += l.allocBitmapBytes;

        l.badFrameBitmap = cursor;
        l.badFrameBitmapBytes = roundUp(divCeil(frames, 8), pageSize);
        cursor += l.badFrameBitmapBytes;

        l.savedStateDir = cursor;
        l.savedStateBytes = l.procSlots * savedStateSlotBytes;
        cursor += l.savedStateBytes;

        l.redoLog = cursor;
        l.redoLogBytes = params.redoLogBytes;
        cursor += l.redoLogBytes;

        l.mappingLists = cursor;
        l.mappingListBytesPerProc = params.mappingListBytesPerProc;
        cursor += l.procSlots * l.mappingListBytesPerProc;

        l.sspCache = cursor;
        l.sspCacheBytes = 32 * oneMiB;
        cursor += l.sspCacheBytes;

        l.hsccTable = cursor;
        l.hsccTableBytes = oneMiB;
        cursor += l.hsccTableBytes;

        cursor = roundUp(cursor, pageSize);
        kindle_assert(cursor < nvm_range.end(),
                      "NVM too small for the metadata carving "
                      "({} slots over {} bytes)", l.procSlots,
                      nvm_range.size());
        l.userPool = cursor;
        l.userPoolBytes = nvm_range.end() - cursor;
        return l;
    }
};

} // namespace kindle::os

#endif // KINDLE_OS_NVM_LAYOUT_HH
