#include "os/kernel.hh"

#include <algorithm>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "base/trace_flags.hh"
#include "os/bad_frames.hh"
#include "os/reclaim.hh"
#include "telemetry/profiler.hh"
#include "trace/trace.hh"

namespace kindle::os
{

Kernel::TlbIpiEvent::TlbIpiEvent(Kernel &kernel_arg, CpuId cpu_arg)
    : Event(csprintf("kernel.tlbIpi.cpu{}", cpu_arg)),
      kernel(kernel_arg),
      cpu(cpu_arg)
{}

void
Kernel::TlbIpiEvent::process()
{
    // The pending batch stays attached to the doorbell until the
    // target actually services it: an unresponsive core leaves the
    // requests in place for the initiator's retry to redeliver.
    kernel.deliverTlbIpi(cpu);
}

Kernel::Kernel(const KernelParams &params, sim::Simulation &sim_arg,
               mem::HybridMemory &memory_arg,
               cache::Hierarchy &caches_arg,
               std::vector<cpu::Core *> cores)
    : _params(params),
      sim(sim_arg),
      memory(memory_arg),
      caches(caches_arg),
      cores_(std::move(cores)),
      kernelMem(sim_arg, memory_arg, caches_arg),
      layout(NvmLayout::standard(memory_arg.nvmRange(),
                                 params.nvmLayout)),
      plainPtWrite(kernelMem),
      policyProxy(&plainPtWrite),
      statGroup("kernel", "gemOS-like kernel"),
      syscalls(statGroup.addScalar("syscalls", "system calls serviced")),
      contextSwitches(statGroup.addScalar("contextSwitches",
                                          "scheduler switches")),
      faultsServiced(statGroup.addScalar("pageFaults",
                                         "demand-paging faults")),
      opsExecuted(statGroup.addScalar("opsExecuted",
                                      "program ops dispatched")),
      nvmFramesRetired(statGroup.addScalar(
          "nvmFramesRetired", "NVM frames durably retired as bad")),
      nvmPagesMigrated(statGroup.addScalar(
          "nvmPagesMigrated", "live pages rescued off retired frames")),
      nvmDegradedAllocs(statGroup.addScalar(
          "nvmDegradedAllocs",
          "MAP_NVM allocations degraded to DRAM (zone low/exhausted)"))
{
    kindle_assert(!cores_.empty(), "kernel needs at least one core");

    slotWords.resize(divCeil(layout.procSlots, 64), 0);

    const fault::PressurePlan &pp = _params.pressure;
    allocRng = Random(pp.seed);

    // DRAM frames: everything above the kernel-image reserve (a
    // pressure plan may cap the zone to force exhaustion).
    AddrRange dram_zone(
        roundUp(params.kernelReserveBytes, pageSize),
        memory.dramRange().end());
    if (pp.dramZoneFrames != 0 &&
        pp.dramZoneFrames * pageSize < dram_zone.size()) {
        dram_zone = AddrRange::withSize(dram_zone.start(),
                                        pp.dramZoneFrames * pageSize);
    }
    dramAlloc = std::make_unique<FrameAllocator>("dramAlloc", dram_zone,
                                                 kernelMem);

    // NVM frames: the user pool carved by the layout, with the
    // allocation bitmap persisted in NVM.  A pressure cap shortens the
    // zone (and therefore the bitmap prefix recovery adopts) the same
    // way on every boot of the same configuration.
    std::uint64_t nvm_bytes = roundDown(layout.userPoolBytes, pageSize);
    if (pp.nvmZoneFrames != 0 &&
        pp.nvmZoneFrames * pageSize < nvm_bytes) {
        nvm_bytes = pp.nvmZoneFrames * pageSize;
    }
    const AddrRange nvm_zone =
        AddrRange::withSize(layout.userPool, nvm_bytes);
    nvmAlloc = std::make_unique<FrameAllocator>(
        "nvmAlloc", nvm_zone, kernelMem, layout.allocBitmap);

    // The bad-frame table is adopted from durable media before any
    // frame can be handed out: retirement is forever, crash or not.
    badFrames_ = std::make_unique<BadFrameTable>(
        memory.nvmRange(), kernelMem, layout.badFrameBitmap);
    badFrames_->loadFromNvm();
    nvmAlloc->setBadFrames(badFrames_.get());

    FrameAllocator &table_zone =
        params.ptInNvm ? *nvmAlloc : *dramAlloc;
    ptMgr = std::make_unique<PageTableManager>(kernelMem, table_zone,
                                               policyProxy);

    cpus.resize(cores_.size());
    for (CpuId c = 0; c < cores_.size(); ++c) {
        cores_[c]->setFaultHandler(this);
        cpus[c].ipi = std::make_unique<TlbIpiEvent>(*this, c);
    }

    coreFaultArmed_ = _params.coreFaults.enabled();
    pendingCoreFaults = _params.coreFaults.faults;
    if (coreFaultArmed_) {
        for (const fault::CoreFault &f : pendingCoreFaults) {
            kindle_assert(f.cpu < cores_.size(),
                          "core fault targets core {} of {}", f.cpu,
                          cores_.size());
            kindle_assert(f.atTick != 0 || f.atNthIpi != 0,
                          "core fault with no trigger armed");
        }
    }

    if (cores_.size() > 1) {
        tlbShootdownsSent = &statGroup.addScalar(
            "tlbShootdownsSent", "cross-core TLB shootdown IPIs sent");
        tlbShootdownIpis = &statGroup.addScalar(
            "tlbShootdownIpis", "shootdown IPI deliveries serviced");
        migrations = &statGroup.addScalar(
            "migrations", "processes migrated between cores");
    }

    statGroup.addChild(dramAlloc->stats());
    statGroup.addChild(nvmAlloc->stats());
    statGroup.addChild(badFrames_->stats());
    statGroup.addChild(ptMgr->stats());

    if (pp.enabled()) {
        // Watermarks default to 1/16th of the zone (low) and double
        // that (high), floored so tiny test zones still get a band.
        const auto arm = [](FrameAllocator &alloc, std::uint64_t lo,
                            std::uint64_t hi) {
            const std::uint64_t frames = alloc.totalFrames();
            if (lo == 0)
                lo = std::max<std::uint64_t>(8, frames / 16);
            if (hi == 0)
                hi = std::max<std::uint64_t>(2 * lo, frames / 8);
            hi = std::min(hi, frames);
            lo = std::min(lo, hi);
            alloc.setWatermarks(lo, hi);
        };
        arm(*dramAlloc, pp.dramLowWatermark, pp.dramHighWatermark);
        arm(*nvmAlloc, pp.nvmLowWatermark, pp.nvmHighWatermark);

        reclaim_ = std::make_unique<ReclaimEngine>(
            *this,
            ReclaimParams{pp.reclaimInterval, pp.reclaimBatchPages,
                          pp.reclaimCheckpointMinGap});
        statGroup.addChild(reclaim_->stats());
        reclaim_->start();

        // Page-table frames come from the same zones; on exhaustion
        // give direct reclaim and the OOM killer one shot at freeing
        // a table frame before the allocator's fatal stands.
        ptMgr->setExhaustionHandler([this] {
            if (reclaim_)
                reclaim_->emergencyPass();
            if (_params.pressure.oomEnabled)
                oomKill(nullptr);
        });
    }
}

Kernel::Kernel(const KernelParams &params, sim::Simulation &sim_arg,
               mem::HybridMemory &memory_arg,
               cache::Hierarchy &caches_arg, cpu::Core &core_arg)
    : Kernel(params, sim_arg, memory_arg, caches_arg,
             std::vector<cpu::Core *>{&core_arg})
{}

Kernel::~Kernel()
{
    for (cpu::Core *core : cores_)
        core->setFaultHandler(nullptr);
    // The per-core IPI events deschedule themselves on destruction
    // (crash can tear the kernel down with a shootdown in flight).
}

void
Kernel::addListener(OsEventListener *listener)
{
    listeners.push_back(listener);
}

void
Kernel::removeListener(OsEventListener *listener)
{
    listeners.erase(
        std::remove(listeners.begin(), listeners.end(), listener),
        listeners.end());
}

void
Kernel::setPtWritePolicy(PtWritePolicy *policy)
{
    policyProxy.active = policy ? policy : &plainPtWrite;
}

unsigned
Kernel::allocSlot()
{
    // Lowest free bit, exactly as the historical 32-bit mask scan
    // chose it — but word-granular, so a thousand live tenants cost a
    // handful of word probes instead of a per-slot loop.
    const unsigned words = static_cast<unsigned>(slotWords.size());
    for (unsigned w = slotSearchHint; w < words; ++w) {
        const std::uint64_t free_bits = ~slotWords[w];
        if (free_bits == 0)
            continue;
        const unsigned bit =
            static_cast<unsigned>(countTrailingZeros(free_bits));
        const unsigned slot = w * 64 + bit;
        if (slot >= layout.procSlots)
            break;
        slotWords[w] |= (std::uint64_t(1) << bit);
        slotSearchHint = w;
        return slot;
    }
    kindle_fatal("out of saved-state slots ({} processes)",
                 layout.procSlots);
}

void
Kernel::markSlotUsed(unsigned slot)
{
    kindle_assert(slot < layout.procSlots, "slot {} out of range",
                  slot);
    slotWords[slot / 64] |= (std::uint64_t(1) << (slot % 64));
}

void
Kernel::markSlotFree(unsigned slot)
{
    kindle_assert(slot < layout.procSlots, "slot {} out of range",
                  slot);
    slotWords[slot / 64] &= ~(std::uint64_t(1) << (slot % 64));
    slotSearchHint = std::min(slotSearchHint, slot / 64);
}

Pid
Kernel::spawn(std::unique_ptr<cpu::OpStream> program, std::string name)
{
    Process &proc = spawnShell(std::move(name), allocSlot());
    proc.program = std::move(program);
    return proc.pid;
}

Process &
Kernel::spawnShell(std::string name, unsigned slot, bool create_pt)
{
    auto proc =
        std::make_unique<Process>(nextPid++, std::move(name), slot);
    markSlotUsed(slot);
    if (create_pt)
        proc->ptRoot = ptMgr->newRoot();
    proc->state = ProcState::ready;
    Process &ref = *proc;
    procs.push_back(std::move(proc));
    pidIndex.emplace(ref.pid, &ref);
    enqueue(ref, placementFor(ref));
    for (auto *l : listeners)
        l->onProcessCreated(ref);
    return ref;
}

Process *
Kernel::findProcess(Pid pid)
{
    const auto it = pidIndex.find(pid);
    return it == pidIndex.end() ? nullptr : it->second;
}

const cpu::CpuState &
Kernel::contextOf(const Process &proc) const
{
    if (proc.state == ProcState::running) {
        for (CpuId c = 0; c < cores_.size(); ++c)
            if (cpus[c].running == &proc)
                return cores_[c]->state();
    }
    return proc.context;
}

bool
Kernel::setAffinity(Process &proc, int cpu)
{
    kindle_assert(cpu < static_cast<int>(cores_.size()),
                  "pinning pid {} to nonexistent core {}", proc.pid,
                  cpu);
    if (cpu >= 0 && !cpus[static_cast<CpuId>(cpu)].online) {
        // A dead core can never run anything: refuse the pin and
        // leave the previous affinity in force.
        warn("pid {}: setAffinity to offlined core {} refused",
             proc.pid, cpu);
        return false;
    }
    proc.pinnedCpu = cpu;
    return true;
}

void
Kernel::makeReady(Process &proc)
{
    kindle_assert(proc.state != ProcState::running,
                  "makeReady on the running process");
    proc.state = ProcState::ready;
    enqueue(proc, placementFor(proc));
}

CpuId
Kernel::placementFor(const Process &proc) const
{
    if (proc.pinnedCpu >= 0 &&
        cpus[static_cast<CpuId>(proc.pinnedCpu)].online) {
        return static_cast<CpuId>(proc.pinnedCpu);
    }
    // Least-loaded online core, ties to the lowest id (on one core:
    // core 0).
    CpuId best = 0;
    std::size_t best_load = ~std::size_t(0);
    for (CpuId c = 0; c < cores_.size(); ++c) {
        const CpuSlot &slot = cpus[c];
        if (!slot.online)
            continue;
        const std::size_t load =
            slot.runq.size() +
            (slot.running &&
                     slot.running->state == ProcState::running
                 ? 1
                 : 0);
        if (load < best_load) {
            best_load = load;
            best = c;
        }
    }
    return best;
}

void
Kernel::enqueue(Process &proc, CpuId cpu)
{
    if (proc.queued)
        return;
    proc.queued = true;
    proc.lastCpu = cpu;
    cpus.at(cpu).runq.push_back(&proc);
}

Process *
Kernel::popRunnable(CpuId cpu)
{
    auto &q = cpus[cpu].runq;
    while (!q.empty()) {
        Process *p = q.front();
        q.pop_front();
        p->queued = false;
        if (p->state != ProcState::ready || !p->program)
            continue;  // zombie or program-less shell: drop
        if (p->pinnedCpu >= 0 &&
            static_cast<CpuId>(p->pinnedCpu) != cpu) {
            // Pinned after placement: migrate to the pinned core.
            if (migrations)
                ++*migrations;
            enqueue(*p, static_cast<CpuId>(p->pinnedCpu));
            continue;
        }
        return p;
    }
    return nullptr;
}

Process *
Kernel::stealWork(CpuId thief)
{
    if (cores_.size() == 1)
        return nullptr;
    // Steal from the most loaded runqueue (counting only runnable,
    // unpinned entries), ties to the lowest core id.  A process that
    // is still the donor's `running` occupant — re-queued at its own
    // slice end — is not stealable: the donor resumes it next epoch
    // with warm caches, and stealing it just ping-pongs a lone
    // process between idle cores.
    CpuId donor = thief;
    std::size_t best = 0;
    for (CpuId c = 0; c < cores_.size(); ++c) {
        if (c == thief || !cpus[c].online)
            continue;
        std::size_t count = 0;
        for (const Process *p : cpus[c].runq) {
            if (p->state == ProcState::ready && p->program &&
                p->pinnedCpu < 0 && p != cpus[c].running) {
                ++count;
            }
        }
        if (count > best) {
            best = count;
            donor = c;
        }
    }
    if (best == 0)
        return nullptr;
    auto &q = cpus[donor].runq;
    for (auto it = q.begin(); it != q.end(); ++it) {
        Process *p = *it;
        if (p->state == ProcState::ready && p->program &&
            p->pinnedCpu < 0 && p != cpus[donor].running) {
            q.erase(it);
            p->queued = false;
            p->lastCpu = thief;
            if (migrations)
                ++*migrations;
            trace::dprintf(trace::Flag::sched, sim.now(),
                           "cpu{} stole pid {} from cpu{}", thief,
                           p->pid, donor);
            return p;
        }
    }
    return nullptr;
}

Process *
Kernel::pickNext(CpuId cpu)
{
    Process *p = popRunnable(cpu);
    if (!p)
        p = stealWork(cpu);
    return p;
}

void
Kernel::switchTo(CpuId cpu, Process *proc)
{
    Process *&cur = cpus[cpu].running;
    if (cur == proc) {
        // Same process re-picked at timeslice end: no context switch,
        // just keep running.
        if (proc && proc->state == ProcState::ready)
            proc->state = ProcState::running;
        return;
    }
    ++contextSwitches;
    Process *old = cur;
    if (old && old->state == ProcState::running) {
        old->context = cores_[cpu]->state();
        old->state = ProcState::ready;
    }
    // A migrated process must not stay resident on its former core:
    // that core would otherwise save stale register state over the
    // live context when it next switches.
    for (CpuId c = 0; c < cores_.size(); ++c)
        if (c != cpu && cpus[c].running == proc)
            cpus[c].running = nullptr;
    for (auto *l : listeners)
        l->onContextSwitch(old, proc);
    sim.bump(_params.contextSwitchCost);
    cur = proc;
    if (proc) {
        proc->state = ProcState::running;
        proc->lastCpu = cpu;
        cores_[cpu]->setContext(proc->pid, proc->ptRoot);
        cores_[cpu]->setState(proc->context);
    }
}

void
Kernel::run()
{
    runUntil(maxTick);
}

void
Kernel::runUntil(Tick deadline)
{
    const unsigned n = numCores();
    while (sim.now() < deadline) {
        // One scheduling epoch: every core starts at the same instant
        // and runs one timeslice of its runqueue; the global clock
        // then advances to the latest per-core finish time.  On one
        // core the warps are no-ops and this is the classic loop.
        // The sched probe is the profiler's catch-all: it covers the
        // whole epoch, and nested probes (cache, event loop, ...)
        // subtract themselves, leaving scheduling/execution overhead.
        KINDLE_PROF_SCOPE(sched);
        if (coreFaultArmed_)
            watchdogPass();
        if (_params.reapZombies && zombieCount > 0)
            reapExited();
        const Tick epoch_start = sim.now();
        Tick epoch_end = epoch_start;
        bool ran_any = false;
        for (CpuId c = 0; c < n; ++c) {
            if (!cpus[c].online)
                continue;
            if (n > 1)
                sim.warpTo(epoch_start);
            if (coreFaultArmed_ &&
                sim.now() < cpus[c].stalledUntil) {
                // Transiently stalled: the core freezes through this
                // epoch.  Its queued work stays put (the occupant
                // resumes once the stall clears), but the machine
                // must keep advancing toward the stall's end.
                if (cpus[c].running || !cpus[c].runq.empty()) {
                    ran_any = true;
                    epoch_end = std::max(
                        epoch_end,
                        std::min(cpus[c].stalledUntil,
                                 epoch_start + _params.timeslice));
                }
                continue;
            }
            Process *proc = pickNext(c);
            if (!proc) {
                epoch_end = std::max(epoch_end, sim.now());
                continue;
            }
            ran_any = true;
            activeCpu_ = c;
            caches.setInitiator(c);
            switchTo(c, proc);
            const Tick slice_end =
                std::min(deadline, sim.now() + _params.timeslice);
            runSlice(c, *proc, slice_end);
            epoch_end = std::max(epoch_end, sim.now());
        }
        if (n > 1)
            sim.warpTo(epoch_end);
        if (!ran_any)
            return;
    }
}

void
Kernel::runSlice(CpuId cpu, Process &proc, Tick slice_end)
{
    cpu::Op op;
    while (sim.now() < slice_end &&
           proc.state == ProcState::running) {
        sim.service();
        if (coreFaultArmed_ && evalCoreFaults(cpu)) {
            CpuSlot &slot = cpus[cpu];
            if (slot.failStopped) {
                // The core dies holding the process: its live
                // register state is gone.  The occupant stays
                // `running` so the watchdog's offline pass kills it
                // (crash-consistently) rather than rescheduling a
                // context that no longer exists.
                return;
            }
            if (sim.now() < slot.stalledUntil) {
                // Frozen mid-slice: time passes, nothing retires.
                sim.bump(slot.stalledUntil - sim.now());
                continue;
            }
        }
        if (!proc.program || !proc.program->next(op)) {
            exitProcess(proc);
            return;
        }
        ++opsExecuted;
        if (!dispatch(cpu, proc, op))
            return;
    }
    if (proc.state == ProcState::running) {
        proc.context = cores_[cpu]->state();
        proc.state = ProcState::ready;
        enqueue(proc, cpu);
    }
}

bool
Kernel::dispatch(CpuId cpu, Process &proc, const cpu::Op &op)
{
    cpu::Core &core = *cores_[cpu];
    using Kind = cpu::Op::Kind;
    switch (op.kind) {
      case Kind::read:
      case Kind::write: {
        const bool ok = core.memAccess(op.kind == Kind::write,
                                       op.addr, op.size);
        if (!ok) {
            warn("pid {}: segfault at {}; killing process", proc.pid,
                 op.addr);
            exitProcess(proc);
            return false;
        }
        return true;
      }

      case Kind::compute:
        core.compute(op.size);
        return true;

      case Kind::mmap: {
        ++syscalls;
        sim.bump(_params.syscallEntryCost);
        const Addr result = sysMmap(proc, op.addr, op.size, op.flags);
        proc.program->onSyscallResult(result);
        return true;
      }

      case Kind::munmap:
        ++syscalls;
        sim.bump(_params.syscallEntryCost);
        sysMunmap(proc, op.addr, op.size);
        return true;

      case Kind::mremap: {
        ++syscalls;
        sim.bump(_params.syscallEntryCost);
        // For mremap ops the flags field carries the new size in
        // pages (the Op struct has no second 64-bit size field).
        const Addr result =
            sysMremap(proc, op.addr, op.size,
                      std::uint64_t(op.flags) << pageShift);
        proc.program->onSyscallResult(result);
        return true;
      }

      case Kind::mprotect:
        ++syscalls;
        sim.bump(_params.syscallEntryCost);
        sysMprotect(proc, op.addr, op.size, op.flags);
        return true;

      case Kind::faseStart:
        proc.faseActive = true;
        for (auto *l : listeners)
            l->onFaseStart(proc);
        return true;

      case Kind::faseEnd:
        proc.faseActive = false;
        for (auto *l : listeners)
            l->onFaseEnd(proc);
        return true;

      case Kind::exit:
        exitProcess(proc);
        return false;
    }
    kindle_panic("unhandled op kind");
}

Addr
Kernel::sysMmap(Process &proc, Addr hint, std::uint64_t length,
                std::uint32_t flags)
{
    length = roundUp(length, pageSize);
    kindle_assert(length > 0, "mmap of zero bytes");

    Addr start;
    if (flags & cpu::mapFixed) {
        start = roundDown(hint, pageSize);
        // A fixed mapping replaces whatever was there.
        if (proc.aspace.find(start) ||
            proc.aspace.find(start + length - 1)) {
            sysMunmap(proc, start, length);
        }
    } else {
        start = proc.aspace.findFreeRegion(hint, length);
    }

    Vma vma;
    vma.range = AddrRange::withSize(start, length);
    vma.prot = cpu::protRead | cpu::protWrite;
    vma.nvm = (flags & cpu::mapNvm) != 0;
    proc.aspace.insert(vma);
    trace::dprintf(trace::Flag::vma, sim.now(),
                   "pid {} mmap [{}, {}) nvm={}", proc.pid, start,
                   start + length, vma.nvm);
    for (auto *l : listeners)
        l->onVmaAdded(proc, vma);
    return start;
}

void
Kernel::unmapPages(Process &proc, const Vma &piece)
{
    // Release every mapped frame in the removed subrange and clear its
    // PTE.  Walk page by page; the per-page software walk through the
    // cache hierarchy is exactly the cost the paper attributes to VMA
    // modifications.
    for (Addr va = piece.range.start(); va < piece.range.end();
         va += pageSize) {
        const auto old = ptMgr->unmap(proc.ptRoot, va);
        if (!old)
            continue;
        Addr frame = old->frameAddr();
        const bool nvm = old->nvmBacked();
        if (old->hsccRemapped()) {
            // The PTE points at a DRAM cache page; the backing NVM
            // frame is owned by whoever manages the remapping.
            Addr home = invalidAddr;
            for (auto *l : listeners) {
                if (l->resolveRemappedFrame(proc, va, frame, &home))
                    break;
            }
            kindle_assert(home != invalidAddr,
                          "remapped PTE with no resolver attached");
            frame = home;
        }
        (nvm ? *nvmAlloc : *dramAlloc).free(frame);
        if (proc.residentPages > 0)
            --proc.residentPages;
        for (auto *l : listeners)
            l->onFrameUnmapped(proc, va, frame, nvm);
    }
    invalidateTlbRange(proc.pid, piece.range);
}

void
Kernel::sysMunmap(Process &proc, Addr addr, std::uint64_t length)
{
    length = roundUp(length, pageSize);
    const AddrRange range(roundDown(addr, pageSize),
                          roundDown(addr, pageSize) + length);
    auto removed = proc.aspace.removeRange(range);
    for (const Vma &piece : removed) {
        unmapPages(proc, piece);
        for (auto *l : listeners)
            l->onVmaRemoved(proc, piece);
    }
}

Addr
Kernel::sysMremap(Process &proc, Addr old_addr,
                  std::uint64_t old_length, std::uint64_t new_length)
{
    old_length = roundUp(old_length, pageSize);
    new_length = roundUp(new_length, pageSize);
    Vma *vma = proc.aspace.find(old_addr);
    kindle_assert(vma && vma->range.start() == old_addr,
                  "mremap of a non-VMA address");

    if (new_length == old_length)
        return old_addr;

    if (new_length < old_length) {
        // Shrink: unmap the tail.
        sysMunmap(proc, old_addr + new_length,
                  old_length - new_length);
        return old_addr;
    }

    // Grow: in place if the next bytes are free, otherwise move.
    const AddrRange grown =
        AddrRange::withSize(old_addr, new_length);
    const Addr after = old_addr + old_length;
    const bool can_extend =
        proc.aspace.find(after) == nullptr &&
        proc.aspace.find(grown.end() - 1) == nullptr;
    if (can_extend) {
        const Vma old_vma = *vma;
        proc.aspace.removeRange(old_vma.range);
        Vma extended = old_vma;
        extended.range = grown;
        proc.aspace.insert(extended);
        for (auto *l : listeners) {
            l->onVmaRemoved(proc, old_vma);
            l->onVmaAdded(proc, extended);
        }
        return old_addr;
    }

    // Move: remap mapped frames to the new region, then drop the old
    // VMA (frames travel, so no free/realloc of backing pages).
    const Vma old_vma = *vma;
    const Addr new_start =
        proc.aspace.findFreeRegion(0, new_length);
    Vma moved = old_vma;
    moved.range = AddrRange::withSize(new_start, new_length);
    for (Addr va = old_vma.range.start(); va < old_vma.range.end();
         va += pageSize) {
        const auto old = ptMgr->unmap(proc.ptRoot, va);
        if (!old)
            continue;
        const Addr nva = new_start + (va - old_vma.range.start());
        for (auto *l : listeners) {
            l->onFrameUnmapped(proc, va, old->frameAddr(),
                               old->nvmBacked());
        }
        ptMgr->map(proc.ptRoot, nva, old->frameAddr(),
                   old->writable(), old->nvmBacked());
        for (auto *l : listeners) {
            l->onFrameMapped(proc, nva, old->frameAddr(),
                             old->nvmBacked());
        }
    }
    invalidateTlbRange(proc.pid, old_vma.range);
    proc.aspace.removeRange(old_vma.range);
    proc.aspace.insert(moved);
    for (auto *l : listeners) {
        l->onVmaRemoved(proc, old_vma);
        l->onVmaAdded(proc, moved);
    }
    return new_start;
}

void
Kernel::sysMprotect(Process &proc, Addr addr, std::uint64_t length,
                    std::uint32_t prot)
{
    length = roundUp(length, pageSize);
    const AddrRange range(roundDown(addr, pageSize),
                          roundDown(addr, pageSize) + length);
    auto affected = proc.aspace.protectRange(range, prot);
    for (const Vma &piece : affected) {
        // Update the writable bit of every mapped page.
        for (Addr va = piece.range.start(); va < piece.range.end();
             va += pageSize) {
            cpu::Pte leaf = ptMgr->readLeaf(proc.ptRoot, va);
            if (!leaf.present())
                continue;
            leaf.setWritable((prot & cpu::protWrite) != 0);
            ptMgr->writeLeaf(proc.ptRoot, va, leaf);
        }
        invalidateTlbRange(proc.pid, piece.range);
    }
}

void
Kernel::invalidateTlbRange(Pid pid, AddrRange range)
{
    const std::uint64_t pages = range.size() >> pageShift;
    constexpr std::uint64_t flushAllThreshold = 512;
    constexpr Tick invlpgCost = 100 * oneNs;
    cpu::Tlb &local = cores_[activeCpu_]->tlb();
    const bool flush_all = pages > flushAllThreshold;
    if (flush_all) {
        local.flushAll();
        sim.bump(2 * oneUs);
    } else {
        for (Addr va = range.start(); va < range.end(); va += pageSize)
            local.invalidate(pid, cpu::vpnOf(va));
        sim.bump(pages * invlpgCost);
    }
    shootdownRemote(pid, range, flush_all);
}

void
Kernel::shootdownRemote(Pid pid, AddrRange range, bool flush_all)
{
    if (cores_.size() == 1)
        return;
    std::vector<CpuId> targets;
    for (CpuId c = 0; c < cores_.size(); ++c) {
        if (c == activeCpu_ || !cpus[c].online)
            continue;
        TlbIpiEvent &ipi = *cpus[c].ipi;
        cpus[c].ipiAcked = false;
        ipi.pending.push_back({pid, range, flush_all});
        if (!ipi.scheduled()) {
            sim.eventq().schedule(&ipi,
                                  sim.now() + _params.ipiLatency);
        }
        ++*tlbShootdownsSent;
        targets.push_back(c);
    }
    if (targets.empty())
        return;  // every other core is offline: nothing to wait for
    // The initiator spins until every target acknowledges: wait out
    // the delivery latency, then service the queue so the handlers
    // run; each handler bumps its cost, serializing into the
    // initiator's wait — the classic shootdown stall.
    sim.bump(_params.ipiLatency);
    sim.service();
    if (!coreFaultArmed_)
        return;  // healthy machine: every target acked synchronously
    // Ack-timeout/retry protocol: an unresponsive target gets the IPI
    // resent ipiRetries times, each a full ack-timeout apart; a core
    // that never answers is escalated to the watchdog and declared
    // dead (its pending requests die with it — a dead TLB holds no
    // translations anyone can use).
    for (const CpuId c : targets) {
        unsigned resends = 0;
        while (!cpus[c].ipiAcked && cpus[c].online) {
            if (resends >= _params.ipiRetries) {
                ++lazyScalar(ipiTimeoutsStat, "ipiTimeouts",
                             "shootdown targets that never acked");
                warn("cpu{}: shootdown ack timeout after {} resends; "
                     "escalating to watchdog", c, resends);
                watchdogDeclareDead(c);
                break;
            }
            ++resends;
            ++lazyScalar(ipiRetriesStat, "ipiRetries",
                         "shootdown IPIs resent after ack timeout");
            KINDLE_CRASH_SITE("ipi.pre_retry");
            TlbIpiEvent &ipi = *cpus[c].ipi;
            if (!ipi.scheduled()) {
                sim.eventq().schedule(
                    &ipi, sim.now() + _params.ipiAckTimeout);
            }
            sim.bump(_params.ipiAckTimeout);
            sim.service();
        }
    }
}

void
Kernel::deliverTlbIpi(CpuId cpu)
{
    CpuSlot &slot = cpus[cpu];
    if (coreFaultArmed_) {
        ++slot.ipisReceived;
        evalCoreFaults(cpu);
        if (!coreResponsive(cpu)) {
            // The doorbell rang but nobody answered: the batch stays
            // pending for the initiator's retry (or dies with the
            // core when the watchdog offlines it).
            trace::dprintf(trace::Flag::sched, sim.now(),
                           "cpu{} unresponsive to shootdown IPI",
                           cpu);
            return;
        }
    }
    const std::vector<ShootdownRequest> reqs =
        std::move(slot.ipi->pending);
    slot.ipi->pending.clear();
    slot.ipiAcked = true;
    cpu::Tlb &tlb = cores_[cpu]->tlb();
    for (const ShootdownRequest &req : reqs) {
        if (req.flushAll) {
            tlb.flushAll();
            continue;
        }
        for (Addr va = req.range.start(); va < req.range.end();
             va += pageSize) {
            tlb.invalidate(req.pid, cpu::vpnOf(va));
        }
    }
    ++*tlbShootdownIpis;
    sim.bump(_params.ipiHandlerCost);
    trace::dprintf(trace::Flag::sched, sim.now(),
                   "cpu{} serviced shootdown IPI ({} requests)", cpu,
                   reqs.size());
}

bool
Kernel::evalCoreFaults(CpuId cpu)
{
    if (!coreFaultArmed_ || !cpus[cpu].online)
        return false;
    bool fired = false;
    for (auto it = pendingCoreFaults.begin();
         it != pendingCoreFaults.end();) {
        const fault::CoreFault &f = *it;
        const bool tick_due = f.atTick != 0 && sim.now() >= f.atTick;
        const bool ipi_due = f.atNthIpi != 0 &&
                             cpus[cpu].ipisReceived >= f.atNthIpi;
        if (f.cpu != cpu || (!tick_due && !ipi_due)) {
            ++it;
            continue;
        }
        if (f.stallTicks > 0) {
            cpus[cpu].stalledUntil = std::max(
                cpus[cpu].stalledUntil, sim.now() + f.stallTicks);
            warn("cpu{}: transient stall injected for {} ticks", cpu,
                 f.stallTicks);
        } else {
            cpus[cpu].failStopped = true;
            warn("cpu{}: fail-stop fault injected", cpu);
        }
        KINDLE_TRACE_INSTANT_ARGS(sched, os, "core.fault",
                                  "cpu={} stall={}", cpu,
                                  f.stallTicks);
        fired = true;
        it = pendingCoreFaults.erase(it);
    }
    return fired;
}

bool
Kernel::coreResponsive(CpuId cpu) const
{
    const CpuSlot &slot = cpus[cpu];
    return slot.online && !slot.failStopped &&
           sim.now() >= slot.stalledUntil;
}

void
Kernel::watchdogPass()
{
    for (CpuId c = 0; c < cores_.size(); ++c) {
        if (!cpus[c].online)
            continue;
        evalCoreFaults(c);
        if (cpus[c].failStopped)
            watchdogDeclareDead(c);
    }
}

void
Kernel::watchdogDeclareDead(CpuId cpu)
{
    if (!cpus[cpu].online)
        return;
    cpus[cpu].failStopped = true;
    warn("watchdog: core {} declared dead", cpu);
    offlineCore(cpu);
}

void
Kernel::offlineCore(CpuId dead)
{
    CpuSlot &slot = cpus[dead];
    kindle_assert(slot.online, "offlining core {} twice", dead);
    CpuId survivor = dead;
    for (CpuId c = 0; c < cores_.size(); ++c) {
        if (c != dead && cpus[c].online) {
            survivor = c;
            break;
        }
    }
    if (survivor == dead)
        kindle_fatal("last online core {} died; machine halted", dead);

    // A crash here must replay as a clean offline on the next boot:
    // nothing durable has been touched yet, and everything below goes
    // through crash-consistent paths (exitProcess, shootdowns).
    KINDLE_CRASH_SITE("core.pre_offline");
    slot.online = false;
    ++lazyScalar(coresOfflined, "coresOfflined",
                 "cores declared dead and hotplug-offlined");
    KINDLE_TRACE_INSTANT_ARGS(sched, os, "core.offline", "cpu={}",
                              dead);

    // The teardown itself executes on a surviving core.
    if (activeCpu_ == dead) {
        activeCpu_ = survivor;
        caches.setInitiator(survivor);
    }

    // The occupant that held the core when it died lost its live
    // register state mid-slice: kill it crash-consistently.  An
    // occupant parked in `ready` (its context was saved at the slice
    // boundary) is merely rescheduled below.
    Process *occ = slot.running;
    slot.running = nullptr;
    if (occ && occ->state == ProcState::running) {
        ++lazyScalar(coreLossKills, "coreLossKills",
                     "processes killed with the core they occupied");
        warn("pid {} ({}) died with core {}", occ->pid, occ->name,
             dead);
        exitProcess(*occ);
    }

    // Pinned processes lose their affinity: a pin to a dead core is
    // unsatisfiable, and leaving it set would strand lazy migration.
    for (const auto &p : procs) {
        if (p->pinnedCpu == static_cast<int>(dead)) {
            p->pinnedCpu = -1;
            ++lazyScalar(affinityBroken, "affinityBroken",
                         "pins dropped because their core died");
        }
    }

    // Drain and re-place the dead runqueue on surviving cores.
    std::deque<Process *> drained = std::move(slot.runq);
    slot.runq.clear();
    for (Process *p : drained) {
        p->queued = false;
        if (p->state != ProcState::ready || !p->program)
            continue;
        if (migrations)
            ++*migrations;
        enqueue(*p, placementFor(*p));
    }

    // Flush the dead core's private caches through the directory so
    // no dirty line is stranded above the LLC, then drop its TLB.
    sim.bump(caches.offlineCore(dead, sim.now()));
    cores_[dead]->tlb().flushAll();

    // Remove the core from the IPI broadcast set: pending requests
    // die with it (its TLB holds nothing anyone can reach).
    slot.ipi->pending.clear();
    sim.eventq().deschedule(slot.ipi.get());
}

void
Kernel::shootdownPage(Pid pid, Addr vaddr)
{
    const Addr page = roundDown(vaddr, pageSize);
    // The local invalidation is free (matching the uniprocessor
    // retirement path); only remote delivery costs.
    cores_[activeCpu_]->tlb().invalidate(pid, cpu::vpnOf(page));
    shootdownRemote(pid, AddrRange(page, page + pageSize), false);
}

void
Kernel::shootdownFlushAll()
{
    cores_[activeCpu_]->tlb().flushAll();
    sim.bump(2 * oneUs);
    shootdownRemote(0, AddrRange(0, pageSize), true);
}

bool
Kernel::handlePageFault(cpu::Core &core, Addr vaddr, bool is_write)
{
    Process *proc = cpus[core.cpuId()].running;
    if (!proc) {
        // Direct-translate paths (tests, engines) fault without a
        // scheduled process; identify it by the core's loaded context.
        proc = findProcess(core.pid());
    }
    kindle_assert(proc != nullptr, "page fault with no process");
    ++faultsServiced;
    sim.bump(_params.pageFaultTrapCost);

    const Vma *vma = proc->aspace.find(vaddr);
    if (!vma)
        return false;
    if (is_write && !(vma->prot & cpu::protWrite))
        return false;
    if (!is_write && !(vma->prot & cpu::protRead))
        return false;

    const Addr page = roundDown(vaddr, pageSize);
    // The fault may race with a prior mapping (e.g. a mid-level hole
    // above an existing leaf cannot happen, but be defensive).
    cpu::Pte existing = ptMgr->readLeaf(proc->ptRoot, page);
    if (existing.present())
        return true;

    Addr frame = invalidAddr;
    bool frame_nvm = vma->nvm;
    if (vma->nvm) {
        // Graceful degradation: keep a reserve of NVM frames for
        // retirement migrations, and when the zone is low or empty
        // fall back to DRAM rather than killing the machine.  The
        // page loses durability (it is not entered in the mapping
        // list), which is the honest semantics of not having NVM to
        // put it on — the stat is the loud part.
        if (nvmAlloc->freeFrames() > _params.nvmReserveFrames)
            frame = nvmAlloc->tryAlloc();
        if (frame == invalidAddr) {
            frame = allocUserFrame(proc);
            frame_nvm = false;
            if (frame != invalidAddr) {
                ++nvmDegradedAllocs;
                trace::dprintf(trace::Flag::syscall, sim.now(),
                               "pid {} MAP_NVM fault at {} degraded "
                               "to DRAM ({} NVM frames free)",
                               proc->pid, vaddr,
                               nvmAlloc->freeFrames());
            }
        }
    } else {
        frame = allocUserFrame(proc);
    }
    if (frame == invalidAddr) {
        // ENOMEM: surfaced to the dispatcher as a failed access — the
        // faulting process dies, the machine survives.
        trace::dprintf(trace::Flag::syscall, sim.now(),
                       "pid {} fault at {}: out of memory",
                       proc->pid, vaddr);
        return false;
    }
    // Demand-zero the fresh frame (a streaming device write; NVM
    // frames pay NVM write bandwidth, a large part of the first-touch
    // cost on persistent-memory systems).
    sim.bump(memory.submit({mem::MemCmd::bulkWrite, frame, pageSize},
                           sim.now()));
    ptMgr->map(proc->ptRoot, page, frame,
               (vma->prot & cpu::protWrite) != 0, frame_nvm);
    ++proc->residentPages;
    for (auto *l : listeners)
        l->onFrameMapped(*proc, page, frame, frame_nvm);
    trace::dprintf(trace::Flag::syscall, sim.now(),
                   "pid {} fault at {} -> frame {}", proc->pid, vaddr,
                   frame);
    return true;
}

statistics::Scalar &
Kernel::lazyScalar(statistics::Scalar *&slot, const char *name,
                   const char *desc)
{
    if (!slot)
        slot = &statGroup.addScalar(name, desc);
    return *slot;
}

Addr
Kernel::allocUserFrame(Process *proc)
{
    const fault::PressurePlan &pp = _params.pressure;
    const unsigned tries = 1 + (pp.enabled() ? pp.maxRetries : 0);
    for (unsigned attempt = 0; attempt < tries; ++attempt) {
        if (attempt > 0) {
            ++lazyScalar(allocRetries, "allocRetries",
                         "frame allocations retried after backoff");
            sim.bump(pp.retryBackoff);
        }
        if (pp.allocFailRate > 0.0 &&
            allocRng.chance(pp.allocFailRate)) {
            // Injected transient failure (the software-visible face
            // of a refused allocation credit); the surrounding retry
            // loop is the robustness under test.
            ++lazyScalar(allocFailuresInjected,
                         "allocFailuresInjected",
                         "transient allocation failures injected");
            continue;
        }
        const Addr frame = dramAlloc->tryAlloc();
        if (frame != invalidAddr)
            return frame;
        // Genuinely empty: one synchronous direct-reclaim pass, then
        // retry (the backoff models waiting out concurrent frees).
        if (reclaim_)
            reclaim_->emergencyPass();
    }
    if (pp.enabled() && pp.oomEnabled) {
        while (oomKill(proc)) {
            const Addr frame = dramAlloc->tryAlloc();
            if (frame != invalidAddr)
                return frame;
        }
    }
    ++lazyScalar(enomemFaults, "enomemFaults",
                 "allocation failures surfaced as ENOMEM");
    return invalidAddr;
}

Process *
Kernel::oomKill(Process *requester)
{
    Process *victim = nullptr;
    for (const auto &p : procs) {
        if (p->state == ProcState::zombie || p.get() == requester)
            continue;
        // Pinned processes and program-less shells (recovery rigs,
        // kernel-side scaffolding) are exempt.
        if (p->pinnedCpu >= 0 || !p->program)
            continue;
        if (p->residentPages == 0)
            continue;  // killing it frees nothing
        if (!victim || p->residentPages > victim->residentPages ||
            (p->residentPages == victim->residentPages &&
             p->pid < victim->pid)) {
            victim = p.get();
        }
    }
    if (!victim)
        return nullptr;
    ++lazyScalar(oomKills, "oomKills",
                 "processes killed by the OOM killer");
    lazyScalar(oomPagesFreed, "oomPagesFreed",
               "resident pages released by OOM kills") +=
        static_cast<double>(victim->residentPages);
    warn("oom: killing pid {} ({}, {} resident pages)", victim->pid,
         victim->name, victim->residentPages);
    KINDLE_TRACE_INSTANT_ARGS(vma, os, "oom.kill", "pid={} rss={}",
                              victim->pid, victim->residentPages);
    // exitProcess is the crash-consistent teardown: every durable
    // structure (mapping list, saved-state slot) is invalidated
    // through the listeners, so a crash here replays as a clean kill.
    KINDLE_CRASH_SITE("oom.pre_kill");
    exitProcess(*victim);
    return victim;
}

bool
Kernel::demotePage(Process &proc, Addr vaddr)
{
    const Addr page = roundDown(vaddr, pageSize);
    const cpu::Pte leaf = ptMgr->readLeaf(proc.ptRoot, page);
    if (!leaf.present() || leaf.nvmBacked() || leaf.hsccRemapped())
        return false;
    // Leave the retirement reserve alone: demotion is relief, not a
    // reason to strand a future retirement migration.
    if (nvmAlloc->freeFrames() <= _params.nvmReserveFrames)
        return false;
    const Addr repl = nvmAlloc->tryAlloc();
    if (repl == invalidAddr)
        return false;
    const Addr dram = leaf.frameAddr();
    // A crash here leaves an allocated-but-unmapped NVM frame, which
    // recovery's leak reclaim sweeps back to the free pool.
    KINDLE_CRASH_SITE("reclaim.pre_demote");
    kernelMem.copyPage(repl, dram, true);
    ptMgr->unmap(proc.ptRoot, page);
    for (auto *l : listeners)
        l->onFrameUnmapped(proc, page, dram, false);
    ptMgr->map(proc.ptRoot, page, repl, leaf.writable(), true);
    for (auto *l : listeners)
        l->onFrameMapped(proc, page, repl, true);
    shootdownPage(proc.pid, page);
    dramAlloc->free(dram);
    trace::dprintf(trace::Flag::vma, sim.now(),
                   "pid {} page {} demoted {} -> {}", proc.pid, page,
                   dram, repl);
    return true;
}

void
Kernel::retireNvmFrame(Addr frame, const char *reason)
{
    const Addr bad = roundDown(frame, pageSize);
    kindle_assert(memory.nvmRange().contains(bad),
                  "retiring non-NVM frame {}", bad);
    if (!badFrames_->retire(bad))
        return;  // already retired; migration already happened
    KINDLE_TRACE_SPAN_ARGS(vma, os, "os.retireFrame",
                           "frame={} reason={}", bad, reason);
    ++nvmFramesRetired;
    trace::dprintf(trace::Flag::vma, sim.now(),
                   "retiring NVM frame {} ({})", bad, reason);

    // Anything outside the user pool (metadata regions, PT frames in
    // the persistent scheme) cannot be migrated here; the durable bit
    // alone is the protection — recovery quarantines whatever durable
    // structure sat on it.
    if (!nvmAlloc->zone().contains(bad) || !nvmAlloc->isAllocated(bad)) {
        for (auto *l : listeners)
            l->onFrameRetired(nullptr, invalidAddr, bad, invalidAddr);
        return;
    }

    // Find the live mapping (if any) and rescue it.  hscc-remapped
    // leaves point at DRAM cache pages, never directly at NVM homes,
    // so a plain frame match is sufficient.
    struct Victim
    {
        Process *proc;
        Addr vaddr;
        bool writable;
    };
    std::vector<Victim> victims;
    for (const auto &p : procs) {
        if (p->state == ProcState::zombie || p->ptRoot == invalidAddr)
            continue;
        ptMgr->forEachLeaf(p->ptRoot,
                           [&](Addr va, cpu::Pte pte, Addr) {
                               if (pte.present() && pte.nvmBacked() &&
                                   !pte.hsccRemapped() &&
                                   pte.frameAddr() == bad) {
                                   victims.push_back(
                                       {p.get(), va, pte.writable()});
                               }
                           });
    }

    for (const Victim &v : victims) {
        // An earlier iteration may have killed this victim's owner
        // (no frame to rescue onto); its PTEs are gone with it.
        if (v.proc->state == ProcState::zombie)
            continue;
        // A fresh NVM frame if one exists (the reserve is exactly for
        // this), DRAM as the last resort.
        Addr repl = nvmAlloc->tryAlloc();
        bool repl_nvm = true;
        if (repl == invalidAddr) {
            repl = allocUserFrame(v.proc);
            repl_nvm = false;
            if (repl == invalidAddr) {
                // Nowhere to rescue the page: kill its owner rather
                // than the machine (the teardown is durable, so the
                // kill is crash-consistent like any other exit).
                warn("retire: no frame to rescue pid {} page {}; "
                     "killing process", v.proc->pid, v.vaddr);
                exitProcess(*v.proc);
                continue;
            }
            ++nvmDegradedAllocs;
        }
        // The copy reads through ECC (functional latest + correction);
        // an NVM destination lands durably.
        kernelMem.copyPage(repl, bad, true);
        // Remap under the active PT-consistency scheme: the unmap and
        // map go through the policy proxy exactly like any other PTE
        // mutation, and the listeners keep the durable mapping list
        // in step.
        ptMgr->unmap(v.proc->ptRoot, v.vaddr);
        for (auto *l : listeners)
            l->onFrameUnmapped(*v.proc, v.vaddr, bad, true);
        ptMgr->map(v.proc->ptRoot, v.vaddr, repl, v.writable,
                   repl_nvm);
        for (auto *l : listeners)
            l->onFrameMapped(*v.proc, v.vaddr, repl, repl_nvm);
        for (auto *l : listeners)
            l->onFrameRetired(v.proc, v.vaddr, bad, repl);
        shootdownPage(v.proc->pid, v.vaddr);
        ++nvmPagesMigrated;
        trace::dprintf(trace::Flag::vma, sim.now(),
                       "pid {} page {} migrated off bad frame {} -> "
                       "{} ({})", v.proc->pid, v.vaddr, bad, repl,
                       repl_nvm ? "nvm" : "dram");
    }

    if (victims.empty()) {
        // Allocated but unmapped (e.g. mid-protocol): nothing to
        // rescue, and the owner still holds the allocation.
        for (auto *l : listeners)
            l->onFrameRetired(nullptr, invalidAddr, bad, invalidAddr);
        return;
    }

    // The bitmap bit clears durably; the retired frame never returns
    // to the free pool.  (An OOM-killed owner's exit may already have
    // released it through the normal unmap path.)
    if (nvmAlloc->isAllocated(bad))
        nvmAlloc->free(bad);
}

void
Kernel::exitProcess(Process &proc)
{
    if (proc.state == ProcState::zombie)
        return;
    // Release the whole address space.
    std::vector<Vma> all;
    proc.aspace.forEach([&](const Vma &v) { all.push_back(v); });
    for (const Vma &vma : all)
        sysMunmap(proc, vma.range.start(), vma.range.size());
    ptMgr->teardown(proc.ptRoot);
    proc.ptRoot = invalidAddr;
    proc.state = ProcState::zombie;
    markSlotFree(proc.slot);
    for (CpuSlot &slot : cpus)
        if (slot.running == &proc)
            slot.running = nullptr;
    // Stale runqueue entries are skipped at pick (state == zombie).
    proc.queued = false;
    ++zombieCount;
    for (auto *l : listeners)
        l->onProcessExit(proc);
}

void
Kernel::reapExited()
{
    // Epoch-boundary only: callers up the stack may hold no Process
    // reference.  Scrub the stale runqueue pointers first — they are
    // the one place a zombie PCB is still reachable from.
    for (CpuSlot &slot : cpus) {
        std::erase_if(slot.runq, [](const Process *p) {
            return p->state == ProcState::zombie;
        });
    }
    std::erase_if(procs, [this](const std::unique_ptr<Process> &p) {
        if (p->state != ProcState::zombie)
            return false;
        pidIndex.erase(p->pid);
        return true;
    });
    zombieCount = 0;
}

} // namespace kindle::os
