/**
 * @file
 * Persistent bad-frame table.
 *
 * When the scrubber finds an uncorrectable line or a frame exhausts
 * its write endurance, the OS retires the frame: it must never be
 * handed out again — not in this boot, and not after any number of
 * crashes, because the damage lives in the cells, not in software
 * state.  The retirement set is therefore a durable bitmap in the NVM
 * metadata area (one bit per frame of the whole device, carved by
 * NvmLayout), written through the same pre-fence-probed durable path
 * the allocator bitmap uses, and reloaded before anything else during
 * recovery so the allocator and the slot-salvage logic can consult it.
 *
 * Retire bits are strictly monotonic: frames are never un-retired, so
 * replaying a retirement after a crash is idempotent by construction.
 */

#ifndef KINDLE_OS_BAD_FRAMES_HH
#define KINDLE_OS_BAD_FRAMES_HH

#include <cstdint>
#include <vector>

#include "base/addr_range.hh"
#include "base/intmath.hh"
#include "base/stats.hh"
#include "os/kernel_mem.hh"

namespace kindle::os
{

/** Durable registry of retired NVM frames. */
class BadFrameTable
{
  public:
    /**
     * @param device       The whole NVM range (bit i = frame i of it).
     * @param kmem         Kernel memory gateway.
     * @param bitmap_addr  NVM address of the durable bitmap region.
     */
    BadFrameTable(AddrRange device, KernelMem &kmem, Addr bitmap_addr);

    /** Adopt the durable bitmap (boot and recovery entry point). */
    void loadFromNvm();

    /** Is the frame containing @p addr retired? */
    bool isRetired(Addr addr) const;

    /**
     * Durably retire the frame containing @p addr.  Idempotent;
     * returns false when the frame was already retired.
     */
    bool retire(Addr addr);

    std::uint64_t retiredCount() const { return _retiredCount; }
    std::uint64_t totalFrames() const { return frameCount; }

    /** Visit the base address of every retired frame, ascending.
     *  Word-skips clean bitmap words, so a healthy many-GiB device
     *  costs O(frames/64), not O(frames). */
    template <typename Fn>
    void
    forEachRetired(Fn &&fn) const
    {
        for (std::uint64_t w = 0; w < retiredWords.size(); ++w) {
            std::uint64_t bits = retiredWords[w];
            while (bits != 0) {
                const std::uint64_t i =
                    w * 64 + countTrailingZeros(bits);
                bits &= bits - 1;
                fn(device.start() + (i << pageShift));
            }
        }
    }

    /** True iff any frame under [base, base+bytes) is retired. */
    bool anyRetired(Addr base, std::uint64_t bytes) const;

    statistics::StatGroup &stats() { return statGroup; }

  private:
    std::uint64_t frameIndex(Addr addr) const;

    bool
    testRetired(std::uint64_t i) const
    {
        return (retiredWords[i / 64] >> (i % 64)) & 1;
    }

    AddrRange device;
    KernelMem &kmem;
    Addr bitmapAddr;

    std::uint64_t frameCount;
    std::vector<std::uint64_t> retiredWords;
    std::uint64_t _retiredCount = 0;

    statistics::StatGroup statGroup;
    statistics::Scalar &retirements;
    statistics::Scalar &persistWrites;
};

} // namespace kindle::os

#endif // KINDLE_OS_BAD_FRAMES_HH
