#include "cache/cache.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace kindle::cache
{

Cache::Cache(const CacheParams &params, MemSink &downstream)
    : _params(params),
      below(downstream),
      numSets(params.sizeBytes / (lineSize * params.associativity)),
      lines(numSets * params.associativity),
      statGroup(params.name, "set-associative write-back cache"),
      hits(statGroup.addScalar("hits", "demand hits")),
      misses(statGroup.addScalar("misses", "demand misses")),
      evictions(statGroup.addScalar("evictions", "lines evicted")),
      writebacks(statGroup.addScalar("writebacks",
                                     "dirty lines pushed down")),
      flushes(statGroup.addScalar("flushes", "clwb/invalidate flushes"))
{
    kindle_assert(params.associativity > 0, "cache needs ways");
    kindle_assert(numSets > 0 && isPowerOf2(numSets),
                  "{}: set count must be a power of two", params.name);
}

std::uint64_t
Cache::setIndex(Addr line_addr) const
{
    return (line_addr >> lineShift) & (numSets - 1);
}

std::uint64_t
Cache::tagOf(Addr line_addr) const
{
    return line_addr >> (lineShift + floorLog2(numSets));
}

Addr
Cache::rebuildAddr(std::uint64_t tag, std::uint64_t set) const
{
    return (tag << (lineShift + floorLog2(numSets))) |
           (set << lineShift);
}

Cache::Line *
Cache::lookup(Addr line_addr)
{
    const std::uint64_t set = setIndex(line_addr);
    const std::uint64_t tag = tagOf(line_addr);
    Line *base = &lines[set * _params.associativity];
    for (unsigned w = 0; w < _params.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::lookup(Addr line_addr) const
{
    return const_cast<Cache *>(this)->lookup(line_addr);
}

Cache::Line &
Cache::victimIn(std::uint64_t set)
{
    Line *base = &lines[set * _params.associativity];
    Line *victim = base;
    for (unsigned w = 0; w < _params.associativity; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    return *victim;
}

Tick
Cache::request(mem::MemCmd cmd, Addr line_addr, Tick now)
{
    kindle_assert(isAligned(line_addr, lineSize),
                  "{}: unaligned line request", _params.name);
    const bool is_write = mem::isWriteCmd(cmd);

    if (Line *line = lookup(line_addr)) {
        ++hits;
        line->lru = ++useStamp;
        if (is_write)
            line->dirty = true;
        return _params.hitLatency;
    }

    ++misses;
    Tick latency = _params.lookupLatency;

    // Write-allocate: fetch the line from below on read and write
    // misses.  An incoming writeback carries a full line, so it
    // allocates without a fetch.
    if (cmd != mem::MemCmd::writeback) {
        latency += below.request(mem::MemCmd::read, line_addr,
                                 now + latency);
    }

    const std::uint64_t set = setIndex(line_addr);
    Line &victim = victimIn(set);
    if (victim.valid) {
        ++evictions;
        if (victim.dirty) {
            ++writebacks;
            const Addr victim_addr = rebuildAddr(victim.tag, set);
            latency += below.request(mem::MemCmd::writeback,
                                     victim_addr, now + latency);
        }
    }

    victim.valid = true;
    victim.tag = tagOf(line_addr);
    victim.dirty = is_write;
    victim.lru = ++useStamp;

    return latency + _params.hitLatency;
}

Tick
Cache::flushLine(Addr line_addr, Tick now, bool &was_dirty)
{
    Tick latency = _params.lookupLatency;
    Line *line = lookup(line_addr);
    if (line && line->dirty) {
        was_dirty = true;
        ++flushes;
        ++writebacks;
        line->dirty = false;
        latency += below.request(mem::MemCmd::writeback, line_addr,
                                 now + latency);
    }
    return latency;
}

Tick
Cache::invalidateLine(Addr line_addr, Tick now)
{
    Tick latency = _params.lookupLatency;
    if (Line *line = lookup(line_addr)) {
        if (line->dirty) {
            ++writebacks;
            latency += below.request(mem::MemCmd::writeback, line_addr,
                                     now + latency);
        }
        line->valid = false;
        line->dirty = false;
    }
    return latency;
}

Tick
Cache::flushAll(Tick now)
{
    Tick latency = 0;
    for (std::uint64_t set = 0; set < numSets; ++set) {
        Line *base = &lines[set * _params.associativity];
        for (unsigned w = 0; w < _params.associativity; ++w) {
            Line &line = base[w];
            if (line.valid && line.dirty) {
                ++writebacks;
                latency += below.request(mem::MemCmd::writeback,
                                         rebuildAddr(line.tag, set),
                                         now + latency);
            }
            line.valid = false;
            line.dirty = false;
        }
    }
    return latency;
}

void
Cache::invalidateAll()
{
    for (auto &line : lines) {
        line.valid = false;
        line.dirty = false;
    }
}

bool
Cache::contains(Addr line_addr) const
{
    return lookup(line_addr) != nullptr;
}

bool
Cache::isDirty(Addr line_addr) const
{
    const Line *line = lookup(line_addr);
    return line != nullptr && line->dirty;
}

double
Cache::hitRate() const
{
    const double total = hits.value() + misses.value();
    return total > 0 ? hits.value() / total : 0.0;
}

} // namespace kindle::cache
