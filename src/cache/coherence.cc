#include "cache/coherence.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace kindle::cache
{

const char *
mesiStateName(MesiState s)
{
    switch (s) {
      case MesiState::invalid:
        return "I";
      case MesiState::shared:
        return "S";
      case MesiState::exclusive:
        return "E";
      case MesiState::modified:
        return "M";
    }
    return "?";
}

MesiDirectory::MesiDirectory(unsigned num_cores)
    : numCores(num_cores),
      statGroup("coherence", "MESI-lite LLC directory"),
      invalidationsSent(statGroup.addScalar(
          "invalidations", "invalidation messages to private caches")),
      writebacksForced(statGroup.addScalar(
          "writebacksForced", "dirty copies pushed down for a reader")),
      upgrades(statGroup.addScalar("upgrades",
                                   "shared-to-modified upgrades")),
      sharedFills(statGroup.addScalar(
          "sharedFills", "read fills joining an existing sharer set"))
{
    kindle_assert(num_cores >= 1 && num_cores <= 32,
                  "MESI directory supports 1-32 cores, got {}",
                  num_cores);
}

CoherenceActions
MesiDirectory::apply(DirEntry &entry, CpuId requester, bool is_write)
{
    const std::uint32_t req_bit = 1u << requester;
    CoherenceActions act;

    switch (entry.state) {
      case MesiState::invalid:
        entry.state =
            is_write ? MesiState::modified : MesiState::exclusive;
        entry.owner = requester;
        entry.sharers = req_bit;
        return act;

      case MesiState::exclusive:
        if (entry.owner == requester) {
            // Silent E->M upgrade on a write; reads stay E.
            if (is_write)
                entry.state = MesiState::modified;
            return act;
        }
        if (is_write) {
            // Remote write: the clean copy is dropped.
            act.invalidate = entry.sharers;
            entry.state = MesiState::modified;
            entry.owner = requester;
            entry.sharers = req_bit;
        } else {
            // Remote read of a clean line: both end up sharers.
            entry.state = MesiState::shared;
            entry.sharers |= req_bit;
        }
        return act;

      case MesiState::shared:
        if (is_write) {
            act.invalidate = entry.sharers & ~req_bit;
            act.upgrade = (entry.sharers & req_bit) != 0;
            entry.state = MesiState::modified;
            entry.owner = requester;
            entry.sharers = req_bit;
        } else {
            entry.sharers |= req_bit;
        }
        return act;

      case MesiState::modified:
        if (entry.owner == requester)
            return act;
        if (is_write) {
            // The dirty remote copy is pushed down as it invalidates
            // (invalidateLine writes back dirty lines), so a plain
            // invalidation message is sufficient.
            act.invalidate = entry.sharers;
            entry.owner = requester;
            entry.sharers = req_bit;
        } else {
            // Remote read: force the owner's dirty copy down to the
            // shared LLC, then both keep clean copies.
            act.writebackFrom = entry.sharers;
            entry.state = MesiState::shared;
            entry.sharers |= req_bit;
        }
        return act;
    }
    kindle_panic("unhandled MESI state");
}

CoherenceActions
MesiDirectory::access(Addr line_addr, CpuId requester, bool is_write)
{
    kindle_assert(requester < numCores,
                  "coherence access from core {} of {}", requester,
                  numCores);
    DirEntry &entry = lines[line_addr];
    const bool joins_sharers = !is_write &&
                               entry.state != MesiState::invalid &&
                               !(entry.sharers & (1u << requester));
    const CoherenceActions act = apply(entry, requester, is_write);
    invalidationsSent +=
        static_cast<double>(popCount(act.invalidate));
    writebacksForced +=
        static_cast<double>(popCount(act.writebackFrom));
    if (act.upgrade)
        ++upgrades;
    if (joins_sharers)
        ++sharedFills;
    return act;
}

void
MesiDirectory::cleanLine(Addr line_addr)
{
    auto it = lines.find(line_addr);
    if (it == lines.end())
        return;
    if (it->second.state == MesiState::modified)
        it->second.state = MesiState::exclusive;
}

void
MesiDirectory::dropLine(Addr line_addr)
{
    lines.erase(line_addr);
}

void
MesiDirectory::reset()
{
    lines.clear();
}

void
MesiDirectory::offlineCore(CpuId cpu)
{
    kindle_assert(cpu < numCores, "offlining core {} of {}", cpu,
                  numCores);
    const std::uint32_t cpu_bit = 1u << cpu;
    for (auto it = lines.begin(); it != lines.end();) {
        DirEntry &entry = it->second;
        const bool owned = (entry.state == MesiState::exclusive ||
                            entry.state == MesiState::modified) &&
                           entry.owner == cpu;
        entry.sharers &= ~cpu_bit;
        if (owned || entry.sharers == 0) {
            it = lines.erase(it);
        } else {
            ++it;
        }
    }
}

DirEntry
MesiDirectory::lookup(Addr line_addr) const
{
    const auto it = lines.find(line_addr);
    return it == lines.end() ? DirEntry{} : it->second;
}

} // namespace kindle::cache
