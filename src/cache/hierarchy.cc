#include "cache/hierarchy.hh"

#include <algorithm>

#include "base/intmath.hh"
#include "base/logging.hh"

namespace kindle::cache
{

Hierarchy::Hierarchy(const HierarchyParams &params,
                     mem::HybridMemory &memory_arg)
    : memory(memory_arg),
      adapter(memory_arg),
      llcCache(std::make_unique<Cache>(params.llc, adapter)),
      l2Cache(std::make_unique<Cache>(params.l2, *llcCache)),
      l1Cache(std::make_unique<Cache>(params.l1, *l2Cache)),
      statGroup("cacheHierarchy",
                "three-level write-back cache hierarchy"),
      accesses(statGroup.addScalar("accesses", "demand accesses")),
      llcMisses(statGroup.addScalar("llcMisses",
                                    "accesses missing in the LLC")),
      clwbs(statGroup.addScalar("clwbs", "clwb line flushes")),
      fences(statGroup.addScalar("fences", "store fences"))
{
    statGroup.addChild(l1Cache->stats());
    statGroup.addChild(l2Cache->stats());
    statGroup.addChild(llcCache->stats());
}

AccessResult
Hierarchy::access(mem::MemCmd cmd, Addr paddr, std::uint64_t size,
                  Tick now)
{
    kindle_assert(size > 0, "zero-size access");
    ++accesses;

    AccessResult result;
    const double llc_misses_before = llcCache->stats()
                                         .scalarValue("misses");

    Addr line = roundDown(paddr, lineSize);
    const Addr last = roundDown(paddr + size - 1, lineSize);
    while (true) {
        result.latency += l1Cache->request(cmd, line,
                                           now + result.latency);
        if (line == last)
            break;
        line += lineSize;
    }

    if (llcCache->stats().scalarValue("misses") > llc_misses_before) {
        result.llcMiss = true;
        ++llcMisses;
    }
    return result;
}

Tick
Hierarchy::clwb(Addr line_addr, Tick now)
{
    ++clwbs;
    line_addr = roundDown(line_addr, lineSize);
    // Push the newest copy down one level at a time: L1 → L2 → LLC →
    // memory.  Each flushLine writes back into the level below it, so
    // chaining the three levels lands the freshest data in the device.
    bool dirty = false;
    Tick latency = l1Cache->flushLine(line_addr, now, dirty);
    latency += l2Cache->flushLine(line_addr, now + latency, dirty);
    latency += llcCache->flushLine(line_addr, now + latency, dirty);
    if (!dirty) {
        // Clean everywhere (or absent): still charge the pipeline cost
        // of the instruction, but confirm durability of the line if it
        // maps to NVM — a clean cached copy means the device already
        // has the data.
        memory.commitNvmLine(line_addr);
    }
    return latency;
}

Tick
Hierarchy::clflush(Addr line_addr, Tick now)
{
    line_addr = roundDown(line_addr, lineSize);
    Tick latency = clwb(line_addr, now);
    // Invalidate clean copies (no further writebacks possible since
    // clwb left everything clean).
    latency += l1Cache->invalidateLine(line_addr, now + latency);
    latency += l2Cache->invalidateLine(line_addr, now + latency);
    latency += llcCache->invalidateLine(line_addr, now + latency);
    return latency;
}

Tick
Hierarchy::clwbPage(Addr page_addr, Tick now)
{
    page_addr = roundDown(page_addr, pageSize);
    Tick latency = 0;
    for (unsigned i = 0; i < linesPerPage; ++i)
        latency += clwb(page_addr + i * lineSize, now + latency);
    return latency;
}

Tick
Hierarchy::clflushPage(Addr page_addr, Tick now)
{
    page_addr = roundDown(page_addr, pageSize);
    Tick latency = 0;
    for (unsigned i = 0; i < linesPerPage; ++i)
        latency += clflush(page_addr + i * lineSize, now + latency);
    return latency;
}

Tick
Hierarchy::sfence(Tick now)
{
    ++fences;
    // A fence ordering durable stores must wait until every posted
    // write accepted by the controllers has actually reached the
    // device — that drain, not the store-buffer flush, is what makes
    // fences after NVM writes expensive.
    constexpr Tick storeBufferDrain = 30 * oneNs;
    const Tick drained =
        std::max(memory.dramCtrl().writesDrainedAt(),
                 memory.nvmCtrl().writesDrainedAt());
    const Tick done = std::max(now + storeBufferDrain, drained);
    return done - now;
}

Tick
Hierarchy::flushAll(Tick now)
{
    Tick latency = l1Cache->flushAll(now);
    latency += l2Cache->flushAll(now + latency);
    latency += llcCache->flushAll(now + latency);
    return latency;
}

void
Hierarchy::invalidateAll()
{
    l1Cache->invalidateAll();
    l2Cache->invalidateAll();
    llcCache->invalidateAll();
}

} // namespace kindle::cache
