#include "cache/hierarchy.hh"

#include <algorithm>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "telemetry/profiler.hh"

namespace kindle::cache
{

Hierarchy::Hierarchy(const HierarchyParams &params,
                     mem::HybridMemory &memory_arg, unsigned num_cores)
    : memory(memory_arg),
      adapter(memory_arg),
      nCores(num_cores),
      msgLatency(params.coherenceMsgLatency),
      llcCache(std::make_unique<Cache>(params.llc, adapter)),
      statGroup("cacheHierarchy",
                "three-level write-back cache hierarchy"),
      accesses(statGroup.addScalar("accesses", "demand accesses")),
      llcMisses(statGroup.addScalar("llcMisses",
                                    "accesses missing in the LLC")),
      clwbs(statGroup.addScalar("clwbs", "clwb line flushes")),
      fences(statGroup.addScalar("fences", "store fences"))
{
    kindle_assert(num_cores >= 1 && num_cores <= 32,
                  "hierarchy supports 1-32 cores, got {}", num_cores);
    for (unsigned c = 0; c < nCores; ++c) {
        l2Caches.push_back(
            std::make_unique<Cache>(params.l2, *llcCache));
        l1Caches.push_back(
            std::make_unique<Cache>(params.l1, *l2Caches.back()));
    }

    if (nCores == 1) {
        // Single-core stat layout is byte-identical to the classic
        // three-level chain: l1 / l2 / llc directly under the group.
        statGroup.addChild(l1Caches[0]->stats());
        statGroup.addChild(l2Caches[0]->stats());
        statGroup.addChild(llcCache->stats());
    } else {
        directory_ = std::make_unique<MesiDirectory>(nCores);
        for (unsigned c = 0; c < nCores; ++c) {
            cpuGroups.push_back(
                std::make_unique<statistics::StatGroup>(
                    csprintf("cpu{}", c),
                    csprintf("core {} private caches", c)));
            cpuGroups.back()->addChild(l1Caches[c]->stats());
            cpuGroups.back()->addChild(l2Caches[c]->stats());
            statGroup.addChild(*cpuGroups.back());
        }
        statGroup.addChild(llcCache->stats());
        statGroup.addChild(directory_->stats());
    }
}

void
Hierarchy::setInitiator(CpuId cpu)
{
    kindle_assert(cpu < nCores, "initiator core {} of {}", cpu,
                  nCores);
    initiator_ = cpu;
}

Tick
Hierarchy::deliverCoherence(const CoherenceActions &act, CpuId cpu,
                            Addr line_addr, Tick now)
{
    Tick latency = 0;
    for (CpuId c = 0; c < nCores; ++c) {
        const std::uint32_t bit = 1u << c;
        if (c == cpu)
            continue;
        if (act.writebackFrom & bit) {
            // Force the dirty copy down to the shared LLC; the line
            // stays resident clean in the remote core's caches.
            latency += 2 * msgLatency; // request + reply hop
            bool dirty = false;
            latency += l1Caches[c]->flushLine(line_addr,
                                              now + latency, dirty);
            latency += l2Caches[c]->flushLine(line_addr,
                                              now + latency, dirty);
        }
        if (act.invalidate & bit) {
            // Drop the remote private copies; invalidateLine pushes
            // dirty data down on its way out.
            latency += 2 * msgLatency;
            latency += l1Caches[c]->invalidateLine(line_addr,
                                                   now + latency);
            latency += l2Caches[c]->invalidateLine(line_addr,
                                                   now + latency);
        }
    }
    return latency;
}

AccessResult
Hierarchy::access(CpuId cpu, mem::MemCmd cmd, Addr paddr,
                  std::uint64_t size, Tick now)
{
    kindle_assert(size > 0, "zero-size access");
    kindle_assert(cpu < nCores, "access from core {} of {}", cpu,
                  nCores);
    KINDLE_PROF_SCOPE(cache);
    ++accesses;

    AccessResult result;
    const double llc_misses_before = llcCache->stats()
                                         .scalarValue("misses");

    const bool is_write = cmd == mem::MemCmd::write ||
                          cmd == mem::MemCmd::bulkWrite;
    Addr line = roundDown(paddr, lineSize);
    const Addr last = roundDown(paddr + size - 1, lineSize);
    while (true) {
        if (directory_) {
            const CoherenceActions act =
                directory_->access(line, cpu, is_write);
            result.latency += deliverCoherence(
                act, cpu, line, now + result.latency);
        }
        result.latency += l1Caches[cpu]->request(
            cmd, line, now + result.latency);
        if (line == last)
            break;
        line += lineSize;
    }

    if (llcCache->stats().scalarValue("misses") > llc_misses_before) {
        result.llcMiss = true;
        ++llcMisses;
    }
    return result;
}

Tick
Hierarchy::clwb(Addr line_addr, Tick now)
{
    ++clwbs;
    line_addr = roundDown(line_addr, lineSize);
    // Push the newest copy down one level at a time: every private
    // L1 → its L2 → LLC → memory.  At most one core holds a dirty
    // copy (MESI), so chaining all private pairs before the LLC lands
    // the freshest data in the device; with one core this is exactly
    // the classic L1 → L2 → LLC chain.
    bool dirty = false;
    Tick latency = 0;
    for (unsigned c = 0; c < nCores; ++c) {
        latency += l1Caches[c]->flushLine(line_addr, now + latency,
                                          dirty);
        latency += l2Caches[c]->flushLine(line_addr, now + latency,
                                          dirty);
    }
    latency += llcCache->flushLine(line_addr, now + latency, dirty);
    if (directory_)
        directory_->cleanLine(line_addr);
    if (!dirty) {
        // Clean everywhere (or absent): still charge the pipeline cost
        // of the instruction, but confirm durability of the line if it
        // maps to NVM — a clean cached copy means the device already
        // has the data.
        memory.commitNvmLine(line_addr);
    }
    return latency;
}

Tick
Hierarchy::clflush(Addr line_addr, Tick now)
{
    line_addr = roundDown(line_addr, lineSize);
    Tick latency = clwb(line_addr, now);
    // Invalidate clean copies (no further writebacks possible since
    // clwb left everything clean).
    for (unsigned c = 0; c < nCores; ++c) {
        latency += l1Caches[c]->invalidateLine(line_addr,
                                               now + latency);
        latency += l2Caches[c]->invalidateLine(line_addr,
                                               now + latency);
    }
    latency += llcCache->invalidateLine(line_addr, now + latency);
    if (directory_)
        directory_->dropLine(line_addr);
    return latency;
}

Tick
Hierarchy::clwbPage(Addr page_addr, Tick now)
{
    page_addr = roundDown(page_addr, pageSize);
    Tick latency = 0;
    for (unsigned i = 0; i < linesPerPage; ++i)
        latency += clwb(page_addr + i * lineSize, now + latency);
    return latency;
}

Tick
Hierarchy::clflushPage(Addr page_addr, Tick now)
{
    page_addr = roundDown(page_addr, pageSize);
    Tick latency = 0;
    for (unsigned i = 0; i < linesPerPage; ++i)
        latency += clflush(page_addr + i * lineSize, now + latency);
    return latency;
}

Tick
Hierarchy::sfence(Tick now)
{
    ++fences;
    // A fence ordering durable stores must wait until every posted
    // write accepted by the controllers has actually reached the
    // device — that drain, not the store-buffer flush, is what makes
    // fences after NVM writes expensive.
    constexpr Tick storeBufferDrain = 30 * oneNs;
    const Tick drained =
        std::max(memory.dramCtrl().writesDrainedAt(),
                 memory.nvmCtrl().writesDrainedAt());
    const Tick done = std::max(now + storeBufferDrain, drained);
    return done - now;
}

Tick
Hierarchy::flushAll(Tick now)
{
    Tick latency = 0;
    for (unsigned c = 0; c < nCores; ++c) {
        latency += l1Caches[c]->flushAll(now + latency);
        latency += l2Caches[c]->flushAll(now + latency);
    }
    latency += llcCache->flushAll(now + latency);
    if (directory_)
        directory_->reset();
    return latency;
}

Tick
Hierarchy::offlineCore(CpuId cpu, Tick now)
{
    kindle_assert(cpu < nCores, "offlining core {} of {}", cpu,
                  nCores);
    Tick latency = 0;
    latency += l1Caches[cpu]->flushAll(now + latency);
    latency += l2Caches[cpu]->flushAll(now + latency);
    l1Caches[cpu]->invalidateAll();
    l2Caches[cpu]->invalidateAll();
    if (directory_)
        directory_->offlineCore(cpu);
    return latency;
}

void
Hierarchy::invalidateAll()
{
    for (unsigned c = 0; c < nCores; ++c) {
        l1Caches[c]->invalidateAll();
        l2Caches[c]->invalidateAll();
    }
    llcCache->invalidateAll();
    if (directory_)
        directory_->reset();
}

} // namespace kindle::cache
