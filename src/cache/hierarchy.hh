/**
 * @file
 * The three-level cache hierarchy (32 KiB L1 / 512 KiB L2 / 2 MiB LLC,
 * matching the paper's gem5 configuration) in front of the hybrid
 * memory system.
 */

#ifndef KINDLE_CACHE_HIERARCHY_HH
#define KINDLE_CACHE_HIERARCHY_HH

#include <memory>

#include "base/stats.hh"
#include "cache/cache.hh"
#include "mem/hybrid_memory.hh"

namespace kindle::cache
{

/** Result of a demand access through the hierarchy. */
struct AccessResult
{
    Tick latency = 0;    ///< requester-visible latency
    bool llcMiss = false; ///< at least one line missed in the LLC
};

/** Hierarchy geometry; defaults follow the paper (§III). */
struct HierarchyParams
{
    CacheParams l1{"l1", 32 * oneKiB, 8, oneNs, oneNs};
    CacheParams l2{"l2", 512 * oneKiB, 8, 4 * oneNs, 2 * oneNs};
    CacheParams llc{"llc", 2 * oneMiB, 16, 10 * oneNs, 4 * oneNs};
};

/**
 * L1 → L2 → LLC → memory, with clwb/flush/invalidate operations that
 * propagate the newest copy of a line down to the device (which is
 * what makes data durable when the line lives in NVM).
 */
class Hierarchy
{
  public:
    Hierarchy(const HierarchyParams &params, mem::HybridMemory &memory);

    /** Demand access of @p size bytes at physical @p paddr. */
    AccessResult access(mem::MemCmd cmd, Addr paddr, std::uint64_t size,
                        Tick now);

    /**
     * clwb: write the newest copy of the line back to memory, leaving
     * cached copies resident but clean.  Returns latency.
     */
    Tick clwb(Addr line_addr, Tick now);

    /** Flush + invalidate one line everywhere (clflush). */
    Tick clflush(Addr line_addr, Tick now);

    /** clwb over a whole 4 KiB page. */
    Tick clwbPage(Addr page_addr, Tick now);

    /** clflush over a whole 4 KiB page. */
    Tick clflushPage(Addr page_addr, Tick now);

    /**
     * Store fence cost: orders prior flushes; constant small latency
     * (drain of the store buffer).
     */
    Tick sfence(Tick now);

    /** Write back everything, then invalidate (orderly shutdown). */
    Tick flushAll(Tick now);

    /** Power loss: every cached line vanishes un-written-back. */
    void invalidateAll();

    Cache &l1() { return *l1Cache; }
    Cache &l2() { return *l2Cache; }
    Cache &llc() { return *llcCache; }
    const Cache &llc() const { return *llcCache; }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    /** Adapts HybridMemory to the MemSink interface. */
    class MemAdapter : public MemSink
    {
      public:
        explicit MemAdapter(mem::HybridMemory &m) : memory(m) {}

        Tick
        request(mem::MemCmd cmd, Addr line_addr, Tick now) override
        {
            return memory.submit({cmd, line_addr, lineSize}, now);
        }

      private:
        mem::HybridMemory &memory;
    };

    mem::HybridMemory &memory;
    MemAdapter adapter;
    std::unique_ptr<Cache> llcCache;
    std::unique_ptr<Cache> l2Cache;
    std::unique_ptr<Cache> l1Cache;

    statistics::StatGroup statGroup;
    statistics::Scalar &accesses;
    statistics::Scalar &llcMisses;
    statistics::Scalar &clwbs;
    statistics::Scalar &fences;
};

} // namespace kindle::cache

#endif // KINDLE_CACHE_HIERARCHY_HH
