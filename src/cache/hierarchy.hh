/**
 * @file
 * The cache hierarchy (32 KiB L1 / 512 KiB L2 per core, one shared
 * 2 MiB LLC, matching the paper's gem5 configuration) in front of the
 * hybrid memory system.
 *
 * With one core this degenerates to the classic three-level chain.
 * With N cores each core owns a private L1+L2 pair, all chained into
 * the shared LLC, and a MESI-lite directory generates the
 * invalidation / forced-writeback messages between private caches.
 */

#ifndef KINDLE_CACHE_HIERARCHY_HH
#define KINDLE_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "base/stats.hh"
#include "cache/cache.hh"
#include "cache/coherence.hh"
#include "mem/hybrid_memory.hh"

namespace kindle::cache
{

/** Result of a demand access through the hierarchy. */
struct AccessResult
{
    Tick latency = 0;    ///< requester-visible latency
    bool llcMiss = false; ///< at least one line missed in the LLC
};

/** Hierarchy geometry; defaults follow the paper (§III). */
struct HierarchyParams
{
    CacheParams l1{"l1", 32 * oneKiB, 8, oneNs, oneNs};
    CacheParams l2{"l2", 512 * oneKiB, 8, 4 * oneNs, 2 * oneNs};
    CacheParams llc{"llc", 2 * oneMiB, 16, 10 * oneNs, 4 * oneNs};
    /** One-way latency of a coherence message between private caches. */
    Tick coherenceMsgLatency = 20 * oneNs;
};

/**
 * Per-core L1 → L2 → shared LLC → memory, with clwb/flush/invalidate
 * operations that propagate the newest copy of a line down to the
 * device (which is what makes data durable when the line lives in
 * NVM).
 */
class Hierarchy
{
  public:
    Hierarchy(const HierarchyParams &params, mem::HybridMemory &memory,
              unsigned num_cores = 1);

    unsigned numCores() const { return nCores; }

    /** Demand access of @p size bytes at physical @p paddr by @p cpu. */
    AccessResult access(CpuId cpu, mem::MemCmd cmd, Addr paddr,
                        std::uint64_t size, Tick now);

    /**
     * Demand access attributed to the current initiator (see
     * setInitiator) — the path un-annotated kernel-mode accesses take.
     */
    AccessResult
    access(mem::MemCmd cmd, Addr paddr, std::uint64_t size, Tick now)
    {
        return access(initiator_, cmd, paddr, size, now);
    }

    /**
     * Route subsequent un-annotated accesses (kernel memory gateway,
     * redo log, engine metadata) through @p cpu's private caches.  The
     * kernel sets this to the core it is currently executing on.
     */
    void setInitiator(CpuId cpu);
    CpuId initiator() const { return initiator_; }

    /**
     * clwb: write the newest copy of the line back to memory, leaving
     * cached copies resident but clean.  Returns latency.
     */
    Tick clwb(Addr line_addr, Tick now);

    /** Flush + invalidate one line everywhere (clflush). */
    Tick clflush(Addr line_addr, Tick now);

    /** clwb over a whole 4 KiB page. */
    Tick clwbPage(Addr page_addr, Tick now);

    /** clflush over a whole 4 KiB page. */
    Tick clflushPage(Addr page_addr, Tick now);

    /**
     * Store fence cost: orders prior flushes; constant small latency
     * (drain of the store buffer).
     */
    Tick sfence(Tick now);

    /** Write back everything, then invalidate (orderly shutdown). */
    Tick flushAll(Tick now);

    /** Power loss: every cached line vanishes un-written-back. */
    void invalidateAll();

    /**
     * Hotplug offlining of @p cpu: flush its private L1/L2 (dirty
     * lines land in the shared LLC — nothing is stranded), invalidate
     * both, and drop the core's claims from the MESI directory.
     * Returns the flush latency (charged to the surviving initiator).
     */
    Tick offlineCore(CpuId cpu, Tick now);

    Cache &l1(CpuId cpu = 0) { return *l1Caches.at(cpu); }
    Cache &l2(CpuId cpu = 0) { return *l2Caches.at(cpu); }
    Cache &llc() { return *llcCache; }
    const Cache &llc() const { return *llcCache; }

    /** The MESI-lite directory (present only with >1 core). */
    MesiDirectory *directory() { return directory_.get(); }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    /** Adapts HybridMemory to the MemSink interface. */
    class MemAdapter : public MemSink
    {
      public:
        explicit MemAdapter(mem::HybridMemory &m) : memory(m) {}

        Tick
        request(mem::MemCmd cmd, Addr line_addr, Tick now) override
        {
            return memory.submit({cmd, line_addr, lineSize}, now);
        }

      private:
        mem::HybridMemory &memory;
    };

    /**
     * Deliver the coherence messages @p act requires for @p line_addr
     * (remote writebacks, then remote invalidations), excluding the
     * requester @p cpu.  Returns the latency charged to the requester.
     */
    Tick deliverCoherence(const CoherenceActions &act, CpuId cpu,
                          Addr line_addr, Tick now);

    mem::HybridMemory &memory;
    MemAdapter adapter;
    unsigned nCores;
    Tick msgLatency;
    CpuId initiator_ = 0;

    std::unique_ptr<Cache> llcCache;
    std::vector<std::unique_ptr<Cache>> l2Caches;
    std::vector<std::unique_ptr<Cache>> l1Caches;
    std::unique_ptr<MesiDirectory> directory_;

    statistics::StatGroup statGroup;
    /** One wrapper group per core ("cpu0", ...) when nCores > 1. */
    std::vector<std::unique_ptr<statistics::StatGroup>> cpuGroups;
    statistics::Scalar &accesses;
    statistics::Scalar &llcMisses;
    statistics::Scalar &clwbs;
    statistics::Scalar &fences;
};

} // namespace kindle::cache

#endif // KINDLE_CACHE_HIERARCHY_HH
