/**
 * @file
 * Downstream interface of a cache level.
 */

#ifndef KINDLE_CACHE_MEM_SINK_HH
#define KINDLE_CACHE_MEM_SINK_HH

#include "base/types.hh"
#include "mem/packet.hh"

namespace kindle::cache
{

/**
 * Anything a cache can forward line requests to: the next cache level
 * or the memory system itself.
 */
class MemSink
{
  public:
    virtual ~MemSink() = default;

    /**
     * Service a line-granular request starting at @p now.
     * @return the requester-visible latency in ticks.
     */
    virtual Tick request(mem::MemCmd cmd, Addr line_addr, Tick now) = 0;
};

} // namespace kindle::cache

#endif // KINDLE_CACHE_MEM_SINK_HH
