/**
 * @file
 * One level of set-associative, write-back, write-allocate cache.
 */

#ifndef KINDLE_CACHE_CACHE_HH
#define KINDLE_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "cache/mem_sink.hh"

namespace kindle::cache
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name;
    std::uint64_t sizeBytes;
    unsigned associativity;
    Tick hitLatency;     ///< tag+data on a hit
    Tick lookupLatency;  ///< tag check paid on the miss path
};

/**
 * A single cache level.  Tag-accurate and timing-accurate but holds no
 * data — functional values live in the backing stores, with NVM
 * durability tracked by dirty-line writeback/flush notifications that
 * the bottom of the hierarchy forwards to the memory system.
 */
class Cache : public MemSink
{
  public:
    Cache(const CacheParams &params, MemSink &downstream);

    /** Handle a read/write/writeback of one line. */
    Tick request(mem::MemCmd cmd, Addr line_addr, Tick now) override;

    /**
     * clwb semantics for one line: if present and dirty, push the data
     * down (keeping the line resident, now clean).
     * @param[out] was_dirty set true if a writeback was performed.
     * @return latency.
     */
    Tick flushLine(Addr line_addr, Tick now, bool &was_dirty);

    /**
     * Invalidate one line, writing it back first if dirty.
     * @return latency.
     */
    Tick invalidateLine(Addr line_addr, Tick now);

    /** Write back every dirty line and invalidate everything. */
    Tick flushAll(Tick now);

    /** Drop all contents without writeback (power loss). */
    void invalidateAll();

    /** True if the line is currently resident. */
    bool contains(Addr line_addr) const;

    /** True if resident and dirty. */
    bool isDirty(Addr line_addr) const;

    const CacheParams &params() const { return _params; }
    statistics::StatGroup &stats() { return statGroup; }
    const statistics::StatGroup &stats() const { return statGroup; }

    /** Fraction of requests that hit (for tests/benches). */
    double hitRate() const;

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;  ///< last-use stamp; larger = newer
    };

    std::uint64_t setIndex(Addr line_addr) const;
    std::uint64_t tagOf(Addr line_addr) const;
    Addr rebuildAddr(std::uint64_t tag, std::uint64_t set) const;

    /** Find the way holding @p line_addr, or nullptr. */
    Line *lookup(Addr line_addr);
    const Line *lookup(Addr line_addr) const;

    /** Pick the LRU way in a set. */
    Line &victimIn(std::uint64_t set);

    CacheParams _params;
    MemSink &below;

    std::uint64_t numSets;
    std::vector<Line> lines;  ///< numSets * associativity, row-major
    std::uint64_t useStamp = 0;

    statistics::StatGroup statGroup;
    statistics::Scalar &hits;
    statistics::Scalar &misses;
    statistics::Scalar &evictions;
    statistics::Scalar &writebacks;
    statistics::Scalar &flushes;
};

} // namespace kindle::cache

#endif // KINDLE_CACHE_CACHE_HH
