/**
 * @file
 * MESI-lite directory coherence for the shared LLC.
 *
 * The multi-core hierarchy keeps per-core private L1/L2 caches in
 * front of one shared LLC.  This directory tracks, per cache line,
 * which cores hold private copies and in what MESI state, and tells
 * the hierarchy which invalidation / writeback messages an access
 * must generate.  The protocol is "lite" in two ways that suit
 * Kindle's tag-only caches:
 *
 *  - Transitions are computed synchronously at the access point; the
 *    resulting messages are delivered immediately (the caches carry no
 *    data payloads, so an in-flight race would be a timing artifact,
 *    not a correctness bug) while their latency is charged to the
 *    requesting core.
 *
 *  - The directory is conservative: a silent eviction from a private
 *    cache leaves the sharer bit set, costing at worst a spurious
 *    invalidation message later.
 *
 * The state machine itself is a pure function (apply()) so the unit
 * tests can enumerate every transition without building caches.
 */

#ifndef KINDLE_CACHE_COHERENCE_HH
#define KINDLE_CACHE_COHERENCE_HH

#include <cstdint>
#include <unordered_map>

#include "base/stats.hh"
#include "base/types.hh"

namespace kindle::cache
{

/** Stable MESI states a line's private copies can be in. */
enum class MesiState : std::uint8_t
{
    invalid,   ///< no private copy anywhere
    shared,    ///< >=1 clean copies, memory/LLC up to date
    exclusive, ///< exactly one clean copy
    modified,  ///< exactly one dirty copy
};

const char *mesiStateName(MesiState s);

/** Directory bookkeeping for one line. */
struct DirEntry
{
    MesiState state = MesiState::invalid;
    std::uint32_t sharers = 0; ///< bitmask of cores holding a copy
    CpuId owner = 0;           ///< meaningful in exclusive/modified
};

/**
 * The coherence messages one access requires, as core bitmasks.
 * Writebacks are performed before invalidations (a dirty remote copy
 * displaced by a write is pushed down, then dropped).
 */
struct CoherenceActions
{
    std::uint32_t invalidate = 0;    ///< drop private copies here
    std::uint32_t writebackFrom = 0; ///< push dirty copy down, keep it
    bool upgrade = false;            ///< S->M upgrade by a sharer
};

/** Per-line MESI-lite directory over the private caches. */
class MesiDirectory
{
  public:
    explicit MesiDirectory(unsigned num_cores);

    /**
     * Pure MESI-lite transition function: mutate @p entry for an
     * access by @p requester and return the messages it generates.
     * Exposed statically so tests can drive every transition.
     */
    static CoherenceActions apply(DirEntry &entry, CpuId requester,
                                  bool is_write);

    /** Record an access and return the required messages (with stats). */
    CoherenceActions access(Addr line_addr, CpuId requester,
                            bool is_write);

    /**
     * A clwb made the dirty copy clean everywhere: demote modified to
     * exclusive (the owner keeps a clean resident copy).
     */
    void cleanLine(Addr line_addr);

    /** A clflush (or full invalidation) removed every private copy. */
    void dropLine(Addr line_addr);

    /** Crash / flushAll: no private copy survives anywhere. */
    void reset();

    /**
     * Hotplug offlining: @p cpu's private caches have been flushed and
     * invalidated, so drop its sharer/owner claims from every line.
     * Lines it owned in E/M (and lines left with no sharers) become
     * untracked — the flushed copy in the LLC is now authoritative.
     */
    void offlineCore(CpuId cpu);

    /** Directory view of @p line_addr (invalid entry if untracked). */
    DirEntry lookup(Addr line_addr) const;

    statistics::StatGroup &stats() { return statGroup; }

  private:
    unsigned numCores;
    std::unordered_map<Addr, DirEntry> lines;

    statistics::StatGroup statGroup;
    statistics::Scalar &invalidationsSent;
    statistics::Scalar &writebacksForced;
    statistics::Scalar &upgrades;
    statistics::Scalar &sharedFills;
};

} // namespace kindle::cache

#endif // KINDLE_CACHE_COHERENCE_HH
