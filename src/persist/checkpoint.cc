#include "persist/checkpoint.hh"

#include "base/logging.hh"
#include "base/trace_flags.hh"
#include "cpu/pagetable_defs.hh"
#include "fault/fault.hh"
#include "telemetry/profiler.hh"
#include "trace/trace.hh"

namespace kindle::persist
{

namespace
{

/** Field-wise equality (SavedContext has padding; memcmp would read
 *  indeterminate bytes).  Only the populated VMA prefix matters. */
bool
sameContext(const SavedContext &a, const SavedContext &b)
{
    if (!(a.regs == b.regs) || a.vmaCount != b.vmaCount ||
        a.faseActive != b.faseActive) {
        return false;
    }
    for (std::uint32_t i = 0; i < a.vmaCount; ++i) {
        const SerializedVma &x = a.vmas[i];
        const SerializedVma &y = b.vmas[i];
        if (x.start != y.start || x.end != y.end || x.prot != y.prot ||
            x.nvm != y.nvm || x.areaId != y.areaId) {
            return false;
        }
    }
    return true;
}

} // namespace

PersistDomain::PersistDomain(const PersistParams &params,
                             os::Kernel &kernel_arg)
    : _params(params),
      kernel(kernel_arg),
      event(*this),
      statGroup("persist",
                "process-persistence domain (periodic checkpointing)"),
      checkpoints(statGroup.addScalar("checkpoints",
                                      "periodic checkpoints taken")),
      ckptTicks(statGroup.addDistribution(
          "ckptTicks", "simulated time per checkpoint")),
      ckptDuration(statGroup.addHistogram(
          "ckptDuration", "checkpoint duration distribution (ticks)")),
      mappingEntries(statGroup.addScalar(
          "mappingEntries", "mapping-list entries written")),
      redoRecords(statGroup.addScalar("redoRecords",
                                      "metadata redo records"))
{
    const os::NvmLayout &layout = kernel.nvmLayout();
    slots.resize(layout.procSlots);
    incState.resize(layout.procSlots);
    const std::uint64_t half = layout.redoLogBytes / 2;
    metaLog = std::make_unique<RedoLog>(kernel.kmem(), layout.redoLog,
                                        half, "redoLog");
    if (_params.scheme == PtScheme::persistent) {
        kindle_assert(kernel.params().ptInNvm,
                      "persistent scheme requires NVM-hosted page "
                      "tables (KernelParams::ptInNvm)");
        ptPolicy = std::make_unique<ConsistentPtWrite>(
            kernel.kmem(), layout.redoLog + half, half);
        statGroup.addChild(ptPolicy->stats());
    } else {
        kindle_assert(!kernel.params().ptInNvm,
                      "rebuild scheme hosts page tables in DRAM");
    }
    statGroup.addChild(metaLog->stats());
    if (_params.skipCleanProcesses) {
        cleanSkips = &statGroup.addScalar(
            "cleanSkips",
            "checkpoint sweeps skipped for unchanged processes");
    }
}

PersistDomain::~PersistDomain()
{
    stop();
}

SavedStateSlot &
PersistDomain::slotFor(const os::Process &proc)
{
    auto &opt = slots[proc.slot];
    if (!opt) {
        opt.emplace(kernel.kmem(), kernel.nvmLayout(), proc.slot);
    }
    return *opt;
}

void
PersistDomain::start()
{
    if (started)
        return;
    started = true;

    if (ptPolicy)
        kernel.setPtWritePolicy(ptPolicy.get());

    // Adopt restored processes, initialize slots for fresh ones.
    for (const auto &proc : kernel.processes()) {
        if (proc->state == os::ProcState::zombie)
            continue;
        SavedStateSlot &slot = slotFor(*proc);
        if (proc->restored) {
            slot.readHeader();
        } else {
            slot.initialize(proc->pid, proc->name, _params.scheme);
            if (_params.scheme == PtScheme::persistent)
                slot.setPtRoot(proc->ptRoot);
        }
    }

    kernel.addListener(this);
    scheduleNext();
}

void
PersistDomain::stop()
{
    if (!started)
        return;
    started = false;
    kernel.removeListener(this);
    kernel.setPtWritePolicy(nullptr);
    kernel.simulation().eventq().deschedule(&event);
}

void
PersistDomain::enableBackpressure(double fraction)
{
    kindle_assert(fraction > 0.0 && fraction <= 1.0,
                  "backpressure fraction {} out of (0, 1]", fraction);
    backpressure = true;
    armPressureStats();
    const std::uint64_t cap = metaLog->capacityRecords();
    const std::uint64_t threshold = std::max<std::uint64_t>(
        1, std::min(cap, static_cast<std::uint64_t>(
                             static_cast<double>(cap) * fraction)));
    metaLog->setHighWater(threshold,
                          [this] { requestEarlyCheckpoint(); });
}

void
PersistDomain::armPressureStats()
{
    if (earlyCheckpoints)
        return;
    earlyCheckpoints = &statGroup.addScalar(
        "earlyCheckpoints",
        "checkpoints pulled forward by redo-log high water");
    slotsCompacted = &statGroup.addScalar(
        "slotsCompacted",
        "dead saved-state slots compacted under pressure");
}

void
PersistDomain::requestEarlyCheckpoint()
{
    if (!started || inCheckpoint)
        return;
    armPressureStats();
    ++*earlyCheckpoints;
    compactNext = true;
    sim::Simulation &sim = kernel.simulation();
    trace::dprintf(trace::Flag::checkpoint, sim.now(),
                   "redo log at high water ({} pending): checkpoint "
                   "pulled forward", metaLog->pending());
    // Re-arm the periodic event for "now": it fires at the kernel's
    // next event-queue service point, i.e. between instructions rather
    // than in the middle of whatever protocol did the append.
    if (event.scheduled())
        sim.eventq().deschedule(&event);
    sim.eventq().schedule(&event, sim.now());
}

void
PersistDomain::compactSlots()
{
    // Durably invalidate (idempotent) and drop the host object of any
    // slot no live process owns: exited tenants leave stale working
    // and consistent copies behind, and under pressure those stale
    // regions are the cheapest durable state to retire.
    std::vector<bool> live(slots.size(), false);
    for (const auto &proc : kernel.processes()) {
        if (proc->state != os::ProcState::zombie)
            live[proc->slot] = true;
    }
    for (unsigned i = 0; i < slots.size(); ++i) {
        if (live[i] || !slots[i])
            continue;
        slots[i]->invalidate();
        slots[i].reset();
        incState[i].reset();
        ++*slotsCompacted;
    }
}

void
PersistDomain::scheduleNext()
{
    if (!started) {
        kindle_fatal("arming the checkpoint timer on a stopped "
                     "persistence domain — the system crashed (or the "
                     "domain was stopped) without a reboot()");
    }
    kernel.simulation().eventq().schedule(
        &event,
        kernel.simulation().now() + _params.checkpointInterval);
}

void
PersistDomain::onProcessCreated(os::Process &proc)
{
    incState[proc.slot].reset();
    SavedStateSlot &slot = slotFor(proc);
    slot.initialize(proc.pid, proc.name, _params.scheme);
    if (_params.scheme == PtScheme::persistent)
        slot.setPtRoot(proc.ptRoot);
    RedoRecord rec;
    rec.type = RedoType::processCreated;
    rec.pid = proc.pid;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::onProcessExit(os::Process &proc)
{
    slotFor(proc).invalidate();
    incState[proc.slot].reset();
    RedoRecord rec;
    rec.type = RedoType::processExit;
    rec.pid = proc.pid;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::onVmaAdded(os::Process &proc, const os::Vma &vma)
{
    RedoRecord rec;
    rec.type = RedoType::vmaAdded;
    rec.pid = proc.pid;
    rec.a = vma.range.start();
    rec.b = vma.range.end();
    rec.c = vma.prot;
    rec.d = vma.nvm ? 1 : 0;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::onVmaRemoved(os::Process &proc, const os::Vma &vma)
{
    RedoRecord rec;
    rec.type = RedoType::vmaRemoved;
    rec.pid = proc.pid;
    rec.a = vma.range.start();
    rec.b = vma.range.end();
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::onFaseStart(os::Process &proc)
{
    RedoRecord rec;
    rec.type = RedoType::faseMark;
    rec.pid = proc.pid;
    rec.a = 1;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::onFaseEnd(os::Process &proc)
{
    RedoRecord rec;
    rec.type = RedoType::faseMark;
    rec.pid = proc.pid;
    rec.a = 0;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::checkpointProcess(os::Process &proc,
                                 const SavedContext &ctx)
{
    KINDLE_TRACE_SPAN_ARGS(checkpoint, ckpt, "ckpt.process", "pid={}",
                           proc.pid);
    SavedStateSlot &slot = slotFor(proc);

    // Durably write the working copy of the serialized context.
    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.workingWrite");
        slot.writeWorkingContext(ctx);
    }
    KINDLE_CRASH_SITE("ckpt.after_working_write");

    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.ptWalk");
        if (_params.scheme == PtScheme::rebuild) {
            if (_params.incrementalMappingList)
                updateMappingListIncremental(proc, slot);
            else
                updateMappingListFull(proc, slot);
        } else {
            slot.setPtRoot(proc.ptRoot);
        }
    }
    KINDLE_CRASH_SITE("ckpt.after_mapping_update");

    // Publish: flip the consistent index.
    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.commit");
        slot.commit();
    }
    KINDLE_CRASH_SITE("ckpt.after_commit");

    if (_params.skipCleanProcesses) {
        IncState &st = incState[proc.slot];
        st.lastCtx = ctx;
        st.ctxValid = true;
        st.mapDirty = false;
    }
}

void
PersistDomain::updateMappingListFull(os::Process &proc,
                                     SavedStateSlot &slot)
{
    // Traverse the page table and refresh the virtual→NVM-physical
    // mapping list.  This is the rebuild scheme's recurring cost: it
    // scales with the mapped address-space size.
    std::uint64_t count = 0;
    kernel.pageTables().forEachLeaf(
        proc.ptRoot, [&](Addr va, cpu::Pte pte, Addr) {
            if (!pte.nvmBacked())
                return;
            slot.writeMappingEntry(count, {cpu::vpnOf(va), pte.pfn()});
            ++count;
        });
    slot.finalizeMappingList(count);
    mappingEntries += static_cast<double>(count);
}

void
PersistDomain::updateMappingListIncremental(os::Process &proc,
                                            SavedStateSlot &slot)
{
    IncState &st = incState[proc.slot];
    if (!st.built) {
        // First checkpoint for this process (or after recovery):
        // seed the list with one full traversal, then stay
        // event-driven.
        st.reset();
        st.built = true;
        kernel.pageTables().forEachLeaf(
            proc.ptRoot, [&](Addr va, cpu::Pte pte, Addr) {
                if (!pte.nvmBacked())
                    return;
                const MappingEntry e{cpu::vpnOf(va), pte.pfn()};
                slot.writeMappingEntry(st.list.size(), e,
                                       /*charge_scan=*/false);
                st.posOf[e.vpn] = st.list.size();
                st.list.push_back(e);
            });
        slot.finalizeMappingList(st.list.size());
        mappingEntries += static_cast<double>(st.list.size());
        return;
    }

    // Apply the mutations recorded since the last checkpoint, in
    // order.  Removals keep the durable array dense by moving the
    // tail entry into the vacated slot.
    for (const auto &[is_add, entry] : st.pending) {
        if (is_add) {
            const auto it = st.posOf.find(entry.vpn);
            if (it != st.posOf.end()) {
                st.list[it->second] = entry;
                slot.writeMappingEntry(it->second, entry, false);
            } else {
                st.posOf[entry.vpn] = st.list.size();
                slot.writeMappingEntry(st.list.size(), entry, false);
                st.list.push_back(entry);
            }
            ++mappingEntries;
        } else {
            const auto it = st.posOf.find(entry.vpn);
            if (it == st.posOf.end())
                continue;
            const std::uint64_t idx = it->second;
            st.posOf.erase(it);
            const std::uint64_t last = st.list.size() - 1;
            if (idx != last) {
                st.list[idx] = st.list[last];
                slot.writeMappingEntry(idx, st.list[idx], false);
                st.posOf[st.list[idx].vpn] = idx;
                ++mappingEntries;
            }
            st.list.pop_back();
        }
    }
    st.pending.clear();
    slot.finalizeMappingList(st.list.size());
}

void
PersistDomain::onFrameMapped(os::Process &proc, Addr vaddr, Addr frame,
                             bool nvm)
{
    if (!nvm)
        return;
    // Clean-skip tracking is scheme-independent: reclaim can demote an
    // idle process's pages without its context ever changing, and the
    // next sweep must not skip it.
    incState[proc.slot].mapDirty = true;
    if (_params.scheme != PtScheme::rebuild ||
        !_params.incrementalMappingList) {
        return;
    }
    incState[proc.slot].pending.emplace_back(
        true, MappingEntry{cpu::vpnOf(vaddr), frame >> pageShift});
}

void
PersistDomain::onFrameUnmapped(os::Process &proc, Addr vaddr,
                               Addr frame, bool nvm)
{
    (void)frame;
    if (!nvm)
        return;
    incState[proc.slot].mapDirty = true;
    if (_params.scheme != PtScheme::rebuild ||
        !_params.incrementalMappingList) {
        return;
    }
    incState[proc.slot].pending.emplace_back(
        false, MappingEntry{cpu::vpnOf(vaddr), 0});
}

void
PersistDomain::onFrameRetired(os::Process *proc, Addr vaddr,
                              Addr bad_frame, Addr new_frame)
{
    // The retirement itself is already durable (bad-frame bitmap) and
    // the migration flowed through onFrameUnmapped/onFrameMapped; the
    // redo record is the audit trail recovery tooling can replay.
    RedoRecord rec;
    rec.type = RedoType::frameRetired;
    rec.pid = proc ? proc->pid : 0;
    rec.a = bad_frame;
    rec.b = new_frame;
    rec.c = vaddr;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::checkpointNow()
{
    KINDLE_PROF_SCOPE(ckpt);
    sim::Simulation &sim = kernel.simulation();
    const Tick t0 = sim.now();

    // Guard against high-water re-arming while we run (the log resets
    // below anyway); exception-safe because a crash site inside the
    // checkpoint can throw PowerLoss through here.
    struct InCkptGuard
    {
        bool &flag;
        explicit InCkptGuard(bool &f) : flag(f) { flag = true; }
        ~InCkptGuard() { flag = false; }
    } guard(inCheckpoint);

    // The enclosing span covers every tick ckptTicks attributes to
    // checkpointing: the trace decomposition tests rely on the two
    // agreeing.
    KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt");

    // Snapshot every live context once (host-side; the simulated cost
    // is charged when the slot is written).  The clean-skip decision,
    // the CPU-state log and the per-process sweep all reuse it.  A
    // process is clean when its serialized context is bit-identical to
    // what its last sweep committed and no NVM mapping changed in the
    // interval — nothing about its durable image can differ, so both
    // the redo append and the slot sweep are pure media traffic.
    struct SweepItem
    {
        os::Process *proc;
        SavedContext ctx;
        bool clean;
    };
    std::vector<SweepItem> sweep;
    for (const auto &proc : kernel.processes()) {
        if (proc->state == os::ProcState::zombie)
            continue;
        SweepItem item{proc.get(),
                       SavedStateSlot::snapshot(
                           *proc, kernel.contextOf(*proc)),
                       false};
        if (_params.skipCleanProcesses) {
            const IncState &st = incState[proc->slot];
            item.clean = st.ctxValid && !st.mapDirty &&
                         st.pending.empty() &&
                         sameContext(st.lastCtx, item.ctx);
        }
        sweep.push_back(std::move(item));
    }

    // Log the CPU state of every swept process, then apply the full
    // redo log once (the working copies absorb all interval changes).
    KINDLE_CRASH_SITE("ckpt.before_cpu_log");
    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.cpuLog");
        for (const SweepItem &item : sweep) {
            if (item.clean)
                continue;
            RedoRecord rec;
            rec.type = RedoType::cpuState;
            rec.pid = item.proc->pid;
            rec.a = item.proc->context.rip;
            metaLog->append(rec);
            ++redoRecords;
        }
    }
    KINDLE_CRASH_SITE("ckpt.after_log_append");
    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.replay");
        metaLog->replay([](const RedoRecord &) {});
    }
    KINDLE_CRASH_SITE("ckpt.after_replay");

    for (const SweepItem &item : sweep) {
        if (item.clean) {
            ++*cleanSkips;
            continue;
        }
        checkpointProcess(*item.proc, item.ctx);
    }

    if (backpressure || compactNext) {
        compactSlots();
        compactNext = false;
    }

    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.logReset");
        metaLog->reset();
        if (ptPolicy)
            ptPolicy->retireAll();
    }
    ++checkpoints;
    KINDLE_CRASH_SITE("ckpt.complete");
    ckptTicks.sample(static_cast<double>(sim.now() - t0));
    ckptDuration.sample(static_cast<double>(sim.now() - t0));
    trace::dprintf(trace::Flag::checkpoint, sim.now(),
                   "checkpoint complete in {} us",
                   ticksToUs(sim.now() - t0));
}

} // namespace kindle::persist
