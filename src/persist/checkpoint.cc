#include "persist/checkpoint.hh"

#include "base/logging.hh"
#include "base/trace_flags.hh"
#include "cpu/pagetable_defs.hh"
#include "fault/fault.hh"
#include "telemetry/profiler.hh"
#include "trace/trace.hh"

namespace kindle::persist
{

PersistDomain::PersistDomain(const PersistParams &params,
                             os::Kernel &kernel_arg)
    : _params(params),
      kernel(kernel_arg),
      event(*this),
      statGroup("persist",
                "process-persistence domain (periodic checkpointing)"),
      checkpoints(statGroup.addScalar("checkpoints",
                                      "periodic checkpoints taken")),
      ckptTicks(statGroup.addDistribution(
          "ckptTicks", "simulated time per checkpoint")),
      ckptDuration(statGroup.addHistogram(
          "ckptDuration", "checkpoint duration distribution (ticks)")),
      mappingEntries(statGroup.addScalar(
          "mappingEntries", "mapping-list entries written")),
      redoRecords(statGroup.addScalar("redoRecords",
                                      "metadata redo records"))
{
    const os::NvmLayout &layout = kernel.nvmLayout();
    const std::uint64_t half = layout.redoLogBytes / 2;
    metaLog = std::make_unique<RedoLog>(kernel.kmem(), layout.redoLog,
                                        half, "redoLog");
    if (_params.scheme == PtScheme::persistent) {
        kindle_assert(kernel.params().ptInNvm,
                      "persistent scheme requires NVM-hosted page "
                      "tables (KernelParams::ptInNvm)");
        ptPolicy = std::make_unique<ConsistentPtWrite>(
            kernel.kmem(), layout.redoLog + half, half);
        statGroup.addChild(ptPolicy->stats());
    } else {
        kindle_assert(!kernel.params().ptInNvm,
                      "rebuild scheme hosts page tables in DRAM");
    }
    statGroup.addChild(metaLog->stats());
}

PersistDomain::~PersistDomain()
{
    stop();
}

SavedStateSlot &
PersistDomain::slotFor(const os::Process &proc)
{
    auto &opt = slots[proc.slot];
    if (!opt) {
        opt.emplace(kernel.kmem(), kernel.nvmLayout(), proc.slot);
    }
    return *opt;
}

void
PersistDomain::start()
{
    if (started)
        return;
    started = true;

    if (ptPolicy)
        kernel.setPtWritePolicy(ptPolicy.get());

    // Adopt restored processes, initialize slots for fresh ones.
    for (const auto &proc : kernel.processes()) {
        if (proc->state == os::ProcState::zombie)
            continue;
        SavedStateSlot &slot = slotFor(*proc);
        if (proc->restored) {
            slot.readHeader();
        } else {
            slot.initialize(proc->pid, proc->name, _params.scheme);
            if (_params.scheme == PtScheme::persistent)
                slot.setPtRoot(proc->ptRoot);
        }
    }

    kernel.addListener(this);
    scheduleNext();
}

void
PersistDomain::stop()
{
    if (!started)
        return;
    started = false;
    kernel.removeListener(this);
    kernel.setPtWritePolicy(nullptr);
    kernel.simulation().eventq().deschedule(&event);
}

void
PersistDomain::enableBackpressure(double fraction)
{
    kindle_assert(fraction > 0.0 && fraction <= 1.0,
                  "backpressure fraction {} out of (0, 1]", fraction);
    backpressure = true;
    armPressureStats();
    const std::uint64_t cap = metaLog->capacityRecords();
    const std::uint64_t threshold = std::max<std::uint64_t>(
        1, std::min(cap, static_cast<std::uint64_t>(
                             static_cast<double>(cap) * fraction)));
    metaLog->setHighWater(threshold,
                          [this] { requestEarlyCheckpoint(); });
}

void
PersistDomain::armPressureStats()
{
    if (earlyCheckpoints)
        return;
    earlyCheckpoints = &statGroup.addScalar(
        "earlyCheckpoints",
        "checkpoints pulled forward by redo-log high water");
    slotsCompacted = &statGroup.addScalar(
        "slotsCompacted",
        "dead saved-state slots compacted under pressure");
}

void
PersistDomain::requestEarlyCheckpoint()
{
    if (!started || inCheckpoint)
        return;
    armPressureStats();
    ++*earlyCheckpoints;
    compactNext = true;
    sim::Simulation &sim = kernel.simulation();
    trace::dprintf(trace::Flag::checkpoint, sim.now(),
                   "redo log at high water ({} pending): checkpoint "
                   "pulled forward", metaLog->pending());
    // Re-arm the periodic event for "now": it fires at the kernel's
    // next event-queue service point, i.e. between instructions rather
    // than in the middle of whatever protocol did the append.
    if (event.scheduled())
        sim.eventq().deschedule(&event);
    sim.eventq().schedule(&event, sim.now());
}

void
PersistDomain::compactSlots()
{
    // Durably invalidate (idempotent) and drop the host object of any
    // slot no live process owns: exited tenants leave stale working
    // and consistent copies behind, and under pressure those stale
    // regions are the cheapest durable state to retire.
    std::uint32_t live = 0;
    for (const auto &proc : kernel.processes()) {
        if (proc->state != os::ProcState::zombie)
            live |= (1u << proc->slot);
    }
    for (unsigned i = 0; i < os::maxProcs; ++i) {
        if ((live & (1u << i)) || !slots[i])
            continue;
        slots[i]->invalidate();
        slots[i].reset();
        incState[i].reset();
        ++*slotsCompacted;
    }
}

void
PersistDomain::scheduleNext()
{
    if (!started) {
        kindle_fatal("arming the checkpoint timer on a stopped "
                     "persistence domain — the system crashed (or the "
                     "domain was stopped) without a reboot()");
    }
    kernel.simulation().eventq().schedule(
        &event,
        kernel.simulation().now() + _params.checkpointInterval);
}

void
PersistDomain::onProcessCreated(os::Process &proc)
{
    incState[proc.slot].reset();
    SavedStateSlot &slot = slotFor(proc);
    slot.initialize(proc.pid, proc.name, _params.scheme);
    if (_params.scheme == PtScheme::persistent)
        slot.setPtRoot(proc.ptRoot);
    RedoRecord rec;
    rec.type = RedoType::processCreated;
    rec.pid = proc.pid;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::onProcessExit(os::Process &proc)
{
    slotFor(proc).invalidate();
    incState[proc.slot].reset();
    RedoRecord rec;
    rec.type = RedoType::processExit;
    rec.pid = proc.pid;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::onVmaAdded(os::Process &proc, const os::Vma &vma)
{
    RedoRecord rec;
    rec.type = RedoType::vmaAdded;
    rec.pid = proc.pid;
    rec.a = vma.range.start();
    rec.b = vma.range.end();
    rec.c = vma.prot;
    rec.d = vma.nvm ? 1 : 0;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::onVmaRemoved(os::Process &proc, const os::Vma &vma)
{
    RedoRecord rec;
    rec.type = RedoType::vmaRemoved;
    rec.pid = proc.pid;
    rec.a = vma.range.start();
    rec.b = vma.range.end();
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::onFaseStart(os::Process &proc)
{
    RedoRecord rec;
    rec.type = RedoType::faseMark;
    rec.pid = proc.pid;
    rec.a = 1;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::onFaseEnd(os::Process &proc)
{
    RedoRecord rec;
    rec.type = RedoType::faseMark;
    rec.pid = proc.pid;
    rec.a = 0;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::checkpointProcess(os::Process &proc)
{
    KINDLE_TRACE_SPAN_ARGS(checkpoint, ckpt, "ckpt.process", "pid={}",
                           proc.pid);
    SavedStateSlot &slot = slotFor(proc);

    // CPU state: live registers while the process is resident on some
    // core, the saved context otherwise.
    const cpu::CpuState regs = kernel.contextOf(proc);

    // Serialize and durably write the working copy.
    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.workingWrite");
        const SavedContext ctx = SavedStateSlot::snapshot(proc, regs);
        slot.writeWorkingContext(ctx);
    }
    KINDLE_CRASH_SITE("ckpt.after_working_write");

    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.ptWalk");
        if (_params.scheme == PtScheme::rebuild) {
            if (_params.incrementalMappingList)
                updateMappingListIncremental(proc, slot);
            else
                updateMappingListFull(proc, slot);
        } else {
            slot.setPtRoot(proc.ptRoot);
        }
    }
    KINDLE_CRASH_SITE("ckpt.after_mapping_update");

    // Publish: flip the consistent index.
    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.commit");
        slot.commit();
    }
    KINDLE_CRASH_SITE("ckpt.after_commit");
}

void
PersistDomain::updateMappingListFull(os::Process &proc,
                                     SavedStateSlot &slot)
{
    // Traverse the page table and refresh the virtual→NVM-physical
    // mapping list.  This is the rebuild scheme's recurring cost: it
    // scales with the mapped address-space size.
    std::uint64_t count = 0;
    kernel.pageTables().forEachLeaf(
        proc.ptRoot, [&](Addr va, cpu::Pte pte, Addr) {
            if (!pte.nvmBacked())
                return;
            slot.writeMappingEntry(count, {cpu::vpnOf(va), pte.pfn()});
            ++count;
        });
    slot.finalizeMappingList(count);
    mappingEntries += static_cast<double>(count);
}

void
PersistDomain::updateMappingListIncremental(os::Process &proc,
                                            SavedStateSlot &slot)
{
    IncState &st = incState[proc.slot];
    if (!st.built) {
        // First checkpoint for this process (or after recovery):
        // seed the list with one full traversal, then stay
        // event-driven.
        st.reset();
        st.built = true;
        kernel.pageTables().forEachLeaf(
            proc.ptRoot, [&](Addr va, cpu::Pte pte, Addr) {
                if (!pte.nvmBacked())
                    return;
                const MappingEntry e{cpu::vpnOf(va), pte.pfn()};
                slot.writeMappingEntry(st.list.size(), e,
                                       /*charge_scan=*/false);
                st.posOf[e.vpn] = st.list.size();
                st.list.push_back(e);
            });
        slot.finalizeMappingList(st.list.size());
        mappingEntries += static_cast<double>(st.list.size());
        return;
    }

    // Apply the mutations recorded since the last checkpoint, in
    // order.  Removals keep the durable array dense by moving the
    // tail entry into the vacated slot.
    for (const auto &[is_add, entry] : st.pending) {
        if (is_add) {
            const auto it = st.posOf.find(entry.vpn);
            if (it != st.posOf.end()) {
                st.list[it->second] = entry;
                slot.writeMappingEntry(it->second, entry, false);
            } else {
                st.posOf[entry.vpn] = st.list.size();
                slot.writeMappingEntry(st.list.size(), entry, false);
                st.list.push_back(entry);
            }
            ++mappingEntries;
        } else {
            const auto it = st.posOf.find(entry.vpn);
            if (it == st.posOf.end())
                continue;
            const std::uint64_t idx = it->second;
            st.posOf.erase(it);
            const std::uint64_t last = st.list.size() - 1;
            if (idx != last) {
                st.list[idx] = st.list[last];
                slot.writeMappingEntry(idx, st.list[idx], false);
                st.posOf[st.list[idx].vpn] = idx;
                ++mappingEntries;
            }
            st.list.pop_back();
        }
    }
    st.pending.clear();
    slot.finalizeMappingList(st.list.size());
}

void
PersistDomain::onFrameMapped(os::Process &proc, Addr vaddr, Addr frame,
                             bool nvm)
{
    if (!nvm || _params.scheme != PtScheme::rebuild ||
        !_params.incrementalMappingList) {
        return;
    }
    incState[proc.slot].pending.emplace_back(
        true, MappingEntry{cpu::vpnOf(vaddr), frame >> pageShift});
}

void
PersistDomain::onFrameUnmapped(os::Process &proc, Addr vaddr,
                               Addr frame, bool nvm)
{
    (void)frame;
    if (!nvm || _params.scheme != PtScheme::rebuild ||
        !_params.incrementalMappingList) {
        return;
    }
    incState[proc.slot].pending.emplace_back(
        false, MappingEntry{cpu::vpnOf(vaddr), 0});
}

void
PersistDomain::onFrameRetired(os::Process *proc, Addr vaddr,
                              Addr bad_frame, Addr new_frame)
{
    // The retirement itself is already durable (bad-frame bitmap) and
    // the migration flowed through onFrameUnmapped/onFrameMapped; the
    // redo record is the audit trail recovery tooling can replay.
    RedoRecord rec;
    rec.type = RedoType::frameRetired;
    rec.pid = proc ? proc->pid : 0;
    rec.a = bad_frame;
    rec.b = new_frame;
    rec.c = vaddr;
    metaLog->append(rec);
    ++redoRecords;
}

void
PersistDomain::checkpointNow()
{
    KINDLE_PROF_SCOPE(ckpt);
    sim::Simulation &sim = kernel.simulation();
    const Tick t0 = sim.now();

    // Guard against high-water re-arming while we run (the log resets
    // below anyway); exception-safe because a crash site inside the
    // checkpoint can throw PowerLoss through here.
    struct InCkptGuard
    {
        bool &flag;
        explicit InCkptGuard(bool &f) : flag(f) { flag = true; }
        ~InCkptGuard() { flag = false; }
    } guard(inCheckpoint);

    // The enclosing span covers every tick ckptTicks attributes to
    // checkpointing: the trace decomposition tests rely on the two
    // agreeing.
    KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt");

    // Log the CPU state of every live process, then apply the full
    // redo log once (the working copies absorb all interval changes).
    KINDLE_CRASH_SITE("ckpt.before_cpu_log");
    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.cpuLog");
        for (const auto &proc : kernel.processes()) {
            if (proc->state == os::ProcState::zombie)
                continue;
            RedoRecord rec;
            rec.type = RedoType::cpuState;
            rec.pid = proc->pid;
            rec.a = proc->context.rip;
            metaLog->append(rec);
            ++redoRecords;
        }
    }
    KINDLE_CRASH_SITE("ckpt.after_log_append");
    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.replay");
        metaLog->replay([](const RedoRecord &) {});
    }
    KINDLE_CRASH_SITE("ckpt.after_replay");

    for (const auto &proc : kernel.processes()) {
        if (proc->state == os::ProcState::zombie)
            continue;
        checkpointProcess(*proc);
    }

    if (backpressure || compactNext) {
        compactSlots();
        compactNext = false;
    }

    {
        KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.logReset");
        metaLog->reset();
        if (ptPolicy)
            ptPolicy->retireAll();
    }
    ++checkpoints;
    KINDLE_CRASH_SITE("ckpt.complete");
    ckptTicks.sample(static_cast<double>(sim.now() - t0));
    ckptDuration.sample(static_cast<double>(sim.now() - t0));
    trace::dprintf(trace::Flag::checkpoint, sim.now(),
                   "checkpoint complete in {} us",
                   ticksToUs(sim.now() - t0));
}

} // namespace kindle::persist
