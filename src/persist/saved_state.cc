#include "persist/saved_state.hh"

#include <cstring>

#include "base/logging.hh"

namespace kindle::persist
{

namespace
{

/** Byte offsets of the two contexts inside a slot. */
constexpr std::uint64_t contextOffset[2] = {256, 8192};

} // namespace

const char *
ptSchemeName(PtScheme s)
{
    return s == PtScheme::rebuild ? "rebuild" : "persistent";
}

SavedStateSlot::SavedStateSlot(os::KernelMem &kmem_arg,
                               const os::NvmLayout &layout_arg,
                               unsigned slot_idx)
    : kmem(kmem_arg), layout(layout_arg), slotIdx(slot_idx)
{
    kindle_assert(slot_idx < os::maxProcs, "slot index out of range");
    static_assert(sizeof(SavedContext) <
                      contextOffset[1] - contextOffset[0],
                  "context serialization overflows its slot half");
    static_assert(contextOffset[1] + sizeof(SavedContext) <
                      os::savedStateSlotBytes,
                  "context serialization overflows the slot");
}

Addr
SavedStateSlot::headerAddr() const
{
    return layout.slotAddr(slotIdx);
}

Addr
SavedStateSlot::contextAddr(unsigned idx) const
{
    return layout.slotAddr(slotIdx) + contextOffset[idx];
}

Addr
SavedStateSlot::mappingBase() const
{
    return layout.mappingListAddr(slotIdx);
}

void
SavedStateSlot::initialize(Pid pid, const std::string &name,
                           PtScheme scheme)
{
    shadow = SlotHeader{};
    shadow.magic = SlotHeader::magicValue;
    shadow.valid = 1;
    shadow.pid = pid;
    shadow.consistentIdx = 0;
    shadow.scheme = static_cast<std::uint32_t>(scheme);
    std::strncpy(shadow.name, name.c_str(), sizeof(shadow.name) - 1);
    kmem.writeBufDurable(headerAddr(), &shadow, sizeof(shadow));
}

void
SavedStateSlot::writeWorkingContext(const SavedContext &ctx)
{
    const unsigned working = shadow.consistentIdx ^ 1u;
    // Only the populated prefix of the VMA array needs to travel.
    const std::uint64_t bytes =
        offsetof(SavedContext, vmas) +
        std::uint64_t(ctx.vmaCount) * sizeof(SerializedVma);
    kmem.writeBufDurable(contextAddr(working), &ctx, bytes);
}

void
SavedStateSlot::commit()
{
    shadow.consistentIdx ^= 1u;
    kmem.writeBufDurable(headerAddr(), &shadow, sizeof(shadow));
}

void
SavedStateSlot::setPtRoot(Addr root)
{
    shadow.ptRoot = root;
    kmem.writeBufDurable(headerAddr(), &shadow, sizeof(shadow));
}

void
SavedStateSlot::invalidate()
{
    shadow.valid = 0;
    kmem.writeBufDurable(headerAddr(), &shadow, sizeof(shadow));
}

void
SavedStateSlot::writeMappingEntry(std::uint64_t index,
                                  const MappingEntry &e,
                                  bool charge_scan)
{
    const Addr addr = mappingBase() + index * sizeof(MappingEntry);
    kindle_assert(addr + sizeof(MappingEntry) <=
                      mappingBase() + layout.mappingListBytesPerProc,
                  "mapping list overflow: entry {}", index);
    if (charge_scan) {
        // Check-and-update semantics: position the entry by scanning
        // the list maintained so far (the gemOS implementation keeps
        // a plain list, so maintenance cost grows with the number of
        // mappings — the paper's "overhead to maintain this list
        // increases with increase in mapped virtual memory area
        // size").  The scan runs through the cache hierarchy; charge
        // its bandwidth analytically.
        constexpr Tick scanPerExistingEntry = 1000;  // ps
        kmem.simulation().bump(index * scanPerExistingEntry);
    }
    // Verify the current slot (non-temporal read) and write the
    // fresh association durably.
    kmem.read64Uncached(addr);
    kmem.writeBufDurable(addr, &e, sizeof(e));
}

void
SavedStateSlot::finalizeMappingList(std::uint64_t count)
{
    shadow.mappingCount = count;
    kmem.writeBufDurable(headerAddr(), &shadow, sizeof(shadow));
}

SlotHeader
SavedStateSlot::readHeader()
{
    SlotHeader hdr{};
    kmem.readDurableBuf(headerAddr(), &hdr, sizeof(hdr));
    if (hdr.magic != SlotHeader::magicValue)
        hdr.valid = 0;
    shadow = hdr;
    return hdr;
}

SavedContext
SavedStateSlot::readConsistentContext(const SlotHeader &hdr)
{
    SavedContext ctx;
    kmem.readDurableBuf(contextAddr(hdr.consistentIdx), &ctx,
                        sizeof(ctx));
    kindle_assert(ctx.vmaCount <= maxVmasPerContext,
                  "corrupt saved context: {} VMAs", ctx.vmaCount);
    return ctx;
}

std::vector<MappingEntry>
SavedStateSlot::readMappingList(const SlotHeader &hdr)
{
    std::vector<MappingEntry> out(hdr.mappingCount);
    if (hdr.mappingCount > 0) {
        kmem.readDurableBuf(mappingBase(), out.data(),
                            out.size() * sizeof(MappingEntry));
    }
    return out;
}

SavedContext
SavedStateSlot::snapshot(const os::Process &proc,
                         const cpu::CpuState &regs)
{
    SavedContext ctx;
    ctx.regs = regs;
    ctx.faseActive = proc.faseActive ? 1 : 0;
    ctx.vmaCount = 0;
    proc.aspace.forEach([&](const os::Vma &vma) {
        kindle_assert(ctx.vmaCount < maxVmasPerContext,
                      "process has more VMAs than a context can hold");
        SerializedVma &s = ctx.vmas[ctx.vmaCount++];
        s.start = vma.range.start();
        s.end = vma.range.end();
        s.prot = vma.prot;
        s.nvm = vma.nvm ? 1 : 0;
        s.areaId = vma.areaId;
    });
    return ctx;
}

void
SavedStateSlot::restoreAspace(os::Process &proc, const SavedContext &ctx)
{
    for (std::uint32_t i = 0; i < ctx.vmaCount; ++i) {
        const SerializedVma &s = ctx.vmas[i];
        os::Vma vma;
        vma.range = AddrRange(s.start, s.end);
        vma.prot = s.prot;
        vma.nvm = s.nvm != 0;
        vma.areaId = s.areaId;
        proc.aspace.insert(vma);
    }
    proc.faseActive = ctx.faseActive != 0;
}

} // namespace kindle::persist
