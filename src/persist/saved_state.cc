#include "persist/saved_state.hh"

#include <cstring>

#include "base/checksum.hh"
#include "base/logging.hh"
#include "fault/fault.hh"

namespace kindle::persist
{

namespace
{

/** Byte offsets of the two contexts inside a slot. */
constexpr std::uint64_t contextOffset[2] = {256, 8192};

/** Serialized length of a context's populated prefix. */
std::uint64_t
serializedBytes(const SavedContext &ctx)
{
    return offsetof(SavedContext, vmas) +
           std::uint64_t(ctx.vmaCount) * sizeof(SerializedVma);
}

/** Header checksum: FNV-1a with the checksum field zeroed. */
std::uint32_t
headerChecksum(SlotHeader hdr)
{
    hdr.checksum = 0;
    return checksum32(&hdr, sizeof(hdr));
}

} // namespace

const char *
ptSchemeName(PtScheme s)
{
    return s == PtScheme::rebuild ? "rebuild" : "persistent";
}

const char *
imageStatusName(ImageStatus s)
{
    switch (s) {
      case ImageStatus::ok: return "ok";
      case ImageStatus::empty: return "empty";
      case ImageStatus::quarantined: return "quarantined";
      case ImageStatus::badChecksum: return "badChecksum";
      case ImageStatus::badCount: return "badCount";
    }
    return "?";
}

SavedStateSlot::SavedStateSlot(os::KernelMem &kmem_arg,
                               const os::NvmLayout &layout_arg,
                               unsigned slot_idx)
    : kmem(kmem_arg), layout(layout_arg), slotIdx(slot_idx)
{
    kindle_assert(slot_idx < layout_arg.procSlots,
                  "slot index out of range");
    static_assert(sizeof(SavedContext) <
                      contextOffset[1] - contextOffset[0],
                  "context serialization overflows its slot half");
    static_assert(contextOffset[1] + sizeof(SavedContext) <
                      os::savedStateSlotBytes,
                  "context serialization overflows the slot");
}

Addr
SavedStateSlot::headerAddr() const
{
    return layout.slotAddr(slotIdx);
}

Addr
SavedStateSlot::contextAddr(unsigned idx) const
{
    return layout.slotAddr(slotIdx) + contextOffset[idx];
}

Addr
SavedStateSlot::mappingBase() const
{
    return layout.mappingListAddr(slotIdx);
}

void
SavedStateSlot::writeHeader(const char *pre_fence_site)
{
    shadow.checksum = 0;
    shadow.checksum = checksum32(&shadow, sizeof(shadow));
    kmem.writeBufDurable(headerAddr(), &shadow, sizeof(shadow),
                         pre_fence_site);
}

void
SavedStateSlot::initialize(Pid pid, const std::string &name,
                           PtScheme scheme)
{
    shadow = SlotHeader{};
    shadow.magic = SlotHeader::magicValue;
    shadow.valid = SlotHeader::validLive;
    shadow.pid = pid;
    shadow.consistentIdx = 0;
    shadow.scheme = static_cast<std::uint32_t>(scheme);
    std::strncpy(shadow.name, name.c_str(), sizeof(shadow.name) - 1);
    writeHeader();
}

void
SavedStateSlot::writeWorkingContext(const SavedContext &ctx_in)
{
    const unsigned working = shadow.consistentIdx ^ 1u;
    SavedContext ctx = ctx_in;
    ctx.checksum = 0;
    // Only the populated prefix of the VMA array needs to travel.
    const std::uint64_t bytes = serializedBytes(ctx);
    ctx.checksum = checksum32(&ctx, bytes);

    // Same timing as one writeBufDurable (write + per-line clwb + one
    // fence), but with a crash site between the two halves of the
    // flush — the working copy is the component most likely to be
    // caught half-written by a real power cut.
    const Addr addr = contextAddr(working);
    kmem.writeBuf(addr, &ctx, bytes);
    const Addr first = roundDown(addr, lineSize);
    const Addr last = roundDown(addr + bytes - 1, lineSize);
    const Addr mid = roundDown(first + (last - first) / 2, lineSize);
    for (Addr line = first; line <= mid; line += lineSize)
        kmem.clwb(line);
    KINDLE_CRASH_SITE("slot.mid_working_write");
    for (Addr line = mid + lineSize; line <= last; line += lineSize)
        kmem.clwb(line);
    kmem.sfence();
}

void
SavedStateSlot::commit()
{
    shadow.consistentIdx ^= 1u;
    ++shadow.generation;
    writeHeader("slot.commit_pre_fence");
}

void
SavedStateSlot::setPtRoot(Addr root)
{
    shadow.ptRoot = root;
    writeHeader();
}

void
SavedStateSlot::invalidate()
{
    shadow.valid = SlotHeader::validDead;
    writeHeader();
}

void
SavedStateSlot::quarantine()
{
    // Force a well-formed quarantine marker even when the durable
    // header bytes were garbage — the fence must stick across reboots.
    shadow.magic = SlotHeader::magicValue;
    shadow.valid = SlotHeader::validQuarantined;
    writeHeader();
}

void
SavedStateSlot::writeMappingEntry(std::uint64_t index,
                                  const MappingEntry &e,
                                  bool charge_scan)
{
    const Addr addr = mappingBase() + index * sizeof(MappingEntry);
    kindle_assert(addr + sizeof(MappingEntry) <=
                      mappingBase() + layout.mappingListBytesPerProc,
                  "mapping list overflow: entry {}", index);
    if (charge_scan) {
        // Check-and-update semantics: position the entry by scanning
        // the list maintained so far (the gemOS implementation keeps
        // a plain list, so maintenance cost grows with the number of
        // mappings — the paper's "overhead to maintain this list
        // increases with increase in mapped virtual memory area
        // size").  The scan runs through the cache hierarchy; charge
        // its bandwidth analytically.
        constexpr Tick scanPerExistingEntry = 1000;  // ps
        kmem.simulation().bump(index * scanPerExistingEntry);
    }
    // Verify the current slot (non-temporal read) and write the
    // fresh association durably.
    kmem.read64Uncached(addr);
    kmem.writeBufDurable(addr, &e, sizeof(e));
}

void
SavedStateSlot::finalizeMappingList(std::uint64_t count)
{
    shadow.mappingCount = count;
    kmem.writeBufDurable(headerAddr(), &shadow, sizeof(shadow));
}

SlotHeader
SavedStateSlot::readHeader()
{
    SlotHeader hdr{};
    kmem.readDurableBuf(headerAddr(), &hdr, sizeof(hdr));
    shadow = hdr;
    return hdr;
}

ImageStatus
SavedStateSlot::verifyHeader(const SlotHeader &hdr)
{
    if (hdr.magic != SlotHeader::magicValue ||
        hdr.valid == SlotHeader::validDead) {
        return ImageStatus::empty;
    }
    if (hdr.checksum != headerChecksum(hdr))
        return ImageStatus::badChecksum;
    if (hdr.valid == SlotHeader::validQuarantined)
        return ImageStatus::quarantined;
    if (hdr.consistentIdx > 1 || hdr.valid != SlotHeader::validLive)
        return ImageStatus::badCount;
    return ImageStatus::ok;
}

ImageStatus
SavedStateSlot::readConsistentContext(const SlotHeader &hdr,
                                      SavedContext &out)
{
    out = SavedContext{};
    kmem.readDurableBuf(contextAddr(hdr.consistentIdx & 1u), &out,
                        sizeof(out));
    if (out.vmaCount > maxVmasPerContext)
        return ImageStatus::badCount;
    SavedContext probe = out;
    probe.checksum = 0;
    if (out.checksum != checksum32(&probe, serializedBytes(probe)))
        return ImageStatus::badChecksum;
    return ImageStatus::ok;
}

SavedContext
SavedStateSlot::readConsistentContext(const SlotHeader &hdr)
{
    SavedContext ctx;
    const ImageStatus st = readConsistentContext(hdr, ctx);
    kindle_assert(st == ImageStatus::ok,
                  "corrupt saved context in slot {}: {}", slotIdx,
                  imageStatusName(st));
    return ctx;
}

ImageStatus
SavedStateSlot::readMappingList(const SlotHeader &hdr,
                                std::vector<MappingEntry> &out)
{
    out.clear();
    if (hdr.mappingCount > maxMappingEntries())
        return ImageStatus::badCount;
    out.resize(hdr.mappingCount);
    if (hdr.mappingCount > 0) {
        kmem.readDurableBuf(mappingBase(), out.data(),
                            out.size() * sizeof(MappingEntry));
    }
    return ImageStatus::ok;
}

std::vector<MappingEntry>
SavedStateSlot::readMappingList(const SlotHeader &hdr)
{
    std::vector<MappingEntry> out;
    const ImageStatus st = readMappingList(hdr, out);
    kindle_assert(st == ImageStatus::ok,
                  "corrupt mapping list in slot {}: {}", slotIdx,
                  imageStatusName(st));
    return out;
}

SavedContext
SavedStateSlot::snapshot(const os::Process &proc,
                         const cpu::CpuState &regs)
{
    SavedContext ctx;
    ctx.regs = regs;
    ctx.faseActive = proc.faseActive ? 1 : 0;
    ctx.vmaCount = 0;
    proc.aspace.forEach([&](const os::Vma &vma) {
        kindle_assert(ctx.vmaCount < maxVmasPerContext,
                      "process has more VMAs than a context can hold");
        SerializedVma &s = ctx.vmas[ctx.vmaCount++];
        s.start = vma.range.start();
        s.end = vma.range.end();
        s.prot = vma.prot;
        s.nvm = vma.nvm ? 1 : 0;
        s.areaId = vma.areaId;
    });
    return ctx;
}

void
SavedStateSlot::restoreAspace(os::Process &proc, const SavedContext &ctx)
{
    for (std::uint32_t i = 0; i < ctx.vmaCount; ++i) {
        const SerializedVma &s = ctx.vmas[i];
        os::Vma vma;
        vma.range = AddrRange(s.start, s.end);
        vma.prot = s.prot;
        vma.nvm = s.nvm != 0;
        vma.areaId = s.areaId;
        proc.aspace.insert(vma);
    }
    proc.faseActive = ctx.faseActive != 0;
}

} // namespace kindle::persist
