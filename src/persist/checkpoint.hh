/**
 * @file
 * The process-persistence domain: periodic checkpointing of execution
 * contexts into NVM.
 *
 * PersistDomain subscribes to kernel events (appending redo records
 * for OS metadata mutations), owns the per-process saved-state slots,
 * and runs the periodic checkpoint:
 *
 *   1. capture CPU state into the redo log,
 *   2. replay the log (the "apply changes to the working copy" scan),
 *   3. write the working context durably,
 *   4. rebuild scheme: traverse the page table and refresh the
 *      virtual→NVM-physical mapping list,
 *   5. durably flip the consistent-copy index, truncate the log.
 *
 * The checkpoint timer restarts when the checkpoint *completes*, so a
 * checkpoint longer than the interval cannot re-trigger itself — the
 * behaviour Table IV of the paper relies on.
 */

#ifndef KINDLE_PERSIST_CHECKPOINT_HH
#define KINDLE_PERSIST_CHECKPOINT_HH

#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "os/kernel.hh"
#include "persist/pt_policy.hh"
#include "persist/redo_log.hh"
#include "persist/saved_state.hh"

namespace kindle::persist
{

/** Persistence configuration. */
struct PersistParams
{
    PtScheme scheme = PtScheme::rebuild;
    Tick checkpointInterval = 10 * oneMs;  ///< paper default (Aurora)

    /**
     * Extension beyond the paper: maintain the rebuild scheme's
     * virtual→NVM-physical mapping list *incrementally* from mapping
     * events instead of re-traversing the page table every
     * checkpoint.  Removes the size-proportional checkpoint cost that
     * dominates Figure 4a / Table IV (see
     * bench/ablation_incremental_ckpt).
     */
    bool incrementalMappingList = false;

    /**
     * Skip the per-process slot sweep (and the CPU-state redo append)
     * for processes whose durable image cannot have changed since
     * their last committed checkpoint: serialized context
     * bit-identical and no NVM mapping mutations in the interval.  At
     * fleet scale (1k+ mostly-idle tenants time-shared on a few
     * cores) the unconditional sweep writes O(population) NVM lines
     * per checkpoint and saturates the media with flush traffic; with
     * the skip the sweep cost tracks the set of processes that
     * actually ran.  Off by default so default-config output stays
     * byte-identical.
     */
    bool skipCleanProcesses = false;
};

/** The domain. */
class PersistDomain : public os::OsEventListener
{
  public:
    PersistDomain(const PersistParams &params, os::Kernel &kernel);
    ~PersistDomain() override;

    PersistDomain(const PersistDomain &) = delete;
    PersistDomain &operator=(const PersistDomain &) = delete;

    /**
     * Attach to the kernel: adopt/initialize slots for existing
     * processes, install the PT write policy (persistent scheme),
     * register the listener and start the periodic timer.
     */
    void start();

    /** Detach and stop the timer. */
    void stop();

    /** Run one full checkpoint immediately. */
    void checkpointNow();

    /**
     * Redo-log backpressure: once appends fill the log to @p fraction
     * of its record capacity, the next periodic checkpoint is pulled
     * forward to "now" so the log truncates *before* it can wrap and
     * destroy un-replayed records; pressure checkpoints also compact
     * saved-state slots left behind by exited processes.  Off by
     * default (the stats and the redo.pre_truncate crash site only
     * exist once enabled, keeping default-run output byte-identical).
     */
    void enableBackpressure(double fraction);

    /**
     * Pull the next periodic checkpoint forward to "now" (no-op while
     * stopped or mid-checkpoint).  Called by the redo-log high-water
     * callback and by the reclaim engine under NVM pressure; the
     * checkpoint it provokes also compacts dead saved-state slots.
     */
    void requestEarlyCheckpoint();

    PtScheme scheme() const { return _params.scheme; }
    Tick interval() const { return _params.checkpointInterval; }
    RedoLog &redoLog() { return *metaLog; }

    std::uint64_t checkpointsTaken() const
    {
        return static_cast<std::uint64_t>(checkpoints.value());
    }

    /** Total simulated time spent inside checkpoints. */
    Tick
    checkpointTicks() const
    {
        return static_cast<Tick>(ckptTicks.sum());
    }

    /** @name OsEventListener. */
    /// @{
    void onProcessCreated(os::Process &proc) override;
    void onProcessExit(os::Process &proc) override;
    void onVmaAdded(os::Process &proc, const os::Vma &vma) override;
    void onVmaRemoved(os::Process &proc, const os::Vma &vma) override;
    void onFrameMapped(os::Process &proc, Addr vaddr, Addr frame,
                       bool nvm) override;
    void onFrameUnmapped(os::Process &proc, Addr vaddr, Addr frame,
                         bool nvm) override;
    void onFrameRetired(os::Process *proc, Addr vaddr, Addr bad_frame,
                        Addr new_frame) override;
    void onFaseStart(os::Process &proc) override;
    void onFaseEnd(os::Process &proc) override;
    /// @}

    statistics::StatGroup &stats() { return statGroup; }

  private:
    class CkptEvent : public sim::Event
    {
      public:
        explicit CkptEvent(PersistDomain &domain)
            : Event("checkpoint", Priority::ckpt), domain(domain)
        {}

        void
        process() override
        {
            domain.checkpointNow();
            domain.scheduleNext();
        }

      private:
        PersistDomain &domain;
    };

    /** Incremental-mode bookkeeping for one process slot. */
    struct IncState
    {
        bool built = false;
        /** Host mirror of the durable list (vpn/pfn per index). */
        std::vector<MappingEntry> list;
        /** vpn → list index. */
        std::unordered_map<std::uint64_t, std::uint64_t> posOf;
        /** Mapping mutations since the last checkpoint, in order. */
        std::vector<std::pair<bool, MappingEntry>> pending;

        /** Clean-skip bookkeeping (skipCleanProcesses): the context
         *  committed by this process's last sweep, and whether any NVM
         *  mapping changed since — tracked for every scheme, because
         *  reclaim can demote an idle process's pages without its
         *  context ever changing. */
        bool ctxValid = false;
        bool mapDirty = false;
        SavedContext lastCtx{};

        void
        reset()
        {
            built = false;
            list.clear();
            posOf.clear();
            pending.clear();
            ctxValid = false;
            mapDirty = false;
        }
    };

    void scheduleNext();
    void armPressureStats();
    void compactSlots();
    SavedStateSlot &slotFor(const os::Process &proc);
    void checkpointProcess(os::Process &proc, const SavedContext &ctx);
    void updateMappingListFull(os::Process &proc,
                               SavedStateSlot &slot);
    void updateMappingListIncremental(os::Process &proc,
                                      SavedStateSlot &slot);

    PersistParams _params;
    os::Kernel &kernel;

    std::unique_ptr<RedoLog> metaLog;
    std::unique_ptr<ConsistentPtWrite> ptPolicy;  ///< persistent only
    /** Sized to the kernel layout's procSlots at construction, so a
     *  fleet-scale layout gets a fleet-scale slot table. */
    std::vector<std::optional<SavedStateSlot>> slots;
    std::vector<IncState> incState;

    CkptEvent event;
    bool started = false;
    bool backpressure = false;
    /** Re-entrancy guard: appends made *during* a checkpoint must not
     *  pull the timer forward (the checkpoint resets the log itself). */
    bool inCheckpoint = false;
    /** An early checkpoint was requested: compact slots when it runs
     *  (even if redo-log backpressure itself is not enabled). */
    bool compactNext = false;

    statistics::StatGroup statGroup;
    statistics::Scalar &checkpoints;
    statistics::Distribution &ckptTicks;
    statistics::Histogram &ckptDuration;
    statistics::Scalar &mappingEntries;
    statistics::Scalar &redoRecords;
    /** Backpressure stats; registered only by enableBackpressure(). */
    statistics::Scalar *earlyCheckpoints = nullptr;
    statistics::Scalar *slotsCompacted = nullptr;
    /** Registered only when skipCleanProcesses is configured. */
    statistics::Scalar *cleanSkips = nullptr;
};

} // namespace kindle::persist

#endif // KINDLE_PERSIST_CHECKPOINT_HH
