/**
 * @file
 * The NVM-consistency page-table write policy for the *persistent*
 * scheme.
 *
 * Hosting the page table in NVM means a crash can tear a multi-store
 * update, so every entry store is wrapped in the consistency mechanism
 * of [2]: append an undo record (old value) durably, perform the
 * store, clwb the entry's line, fence.  This per-modification cost is
 * the persistent scheme's overhead signature in Figures 4a/4b and
 * Tables III/IV.
 */

#ifndef KINDLE_PERSIST_PT_POLICY_HH
#define KINDLE_PERSIST_PT_POLICY_HH

#include "base/stats.hh"
#include "os/kernel_mem.hh"
#include "os/page_table.hh"

namespace kindle::persist
{

/** Undo record for one wrapped store. */
struct PtUndoRecord
{
    std::uint32_t magic = 0;
    std::uint32_t epoch = 0;
    std::uint64_t entryAddr = 0;
    std::uint64_t oldValue = 0;
    std::uint64_t newValue = 0;
    std::uint64_t seq = 0;
    std::uint32_t checksum = 0;  ///< FNV-1a with this field zeroed
    std::uint8_t tail[20] = {};

    static constexpr std::uint32_t magicValue = 0x5054554e;  // "PTUN"
};

static_assert(sizeof(PtUndoRecord) == 64);

/** Consistency-wrapped page-table entry stores. */
class ConsistentPtWrite : public os::PtWritePolicy
{
  public:
    /**
     * @param kmem      Kernel memory gateway.
     * @param log_base  NVM region for the undo-record ring.
     * @param log_bytes Ring capacity in bytes.
     */
    ConsistentPtWrite(os::KernelMem &kmem, Addr log_base,
                      std::uint64_t log_bytes);

    void writeEntry(Addr entry_addr, std::uint64_t value) override;

    /**
     * Wholesale retirement: bump the epoch (one durable line write).
     * Records of earlier epochs are ignored by recovery.  Called by
     * the periodic checkpoint.
     */
    void retireAll();

    std::uint64_t wrappedStores() const
    {
        return static_cast<std::uint64_t>(stores.value());
    }

    std::uint32_t currentEpoch() const { return epoch; }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    void persistEpoch();

    os::KernelMem &kmem;
    Addr logBase;
    std::uint64_t logRecords;
    std::uint64_t nextSeq = 0;
    std::uint32_t epoch = 1;

    statistics::StatGroup statGroup;
    statistics::Scalar &stores;
};

/** What the undo-log recovery pass did. */
struct PtUndoReport
{
    std::uint64_t recordsExamined = 0;
    std::uint64_t tornStoresRolledBack = 0;
};

/**
 * Recovery-side scan of the PT undo log.
 *
 * The wrapped-store protocol fences the undo record before the PTE
 * store, so at crash time each live (current-epoch) record's target
 * entry durably holds either its old value (store never reached the
 * device), its new value (store completed), or — if the crash cut a
 * writeback mid-line — something else.  Torn entries are rolled back
 * to the recorded old value, restoring a consistent page table before
 * it is adopted.
 */
PtUndoReport recoverPtUndoLog(os::KernelMem &kmem, Addr log_base,
                              std::uint64_t log_bytes);

} // namespace kindle::persist

#endif // KINDLE_PERSIST_PT_POLICY_HH
