/**
 * @file
 * The per-process saved state kept in NVM.
 *
 * Each process owns one fixed slot in the saved-state directory with a
 * header and *two* serialized execution contexts — one consistent copy
 * and one working copy.  A checkpoint writes the working copy and then
 * atomically flips `consistentIdx` in the header (single durable line
 * write), so a crash at any instant leaves one complete context intact.
 * The virtual→NVM-physical page mapping list lives in its own region
 * and is what the *rebuild* scheme uses to reconstruct the page table
 * after reboot.
 */

#ifndef KINDLE_PERSIST_SAVED_STATE_HH
#define KINDLE_PERSIST_SAVED_STATE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cpu/core.hh"
#include "os/kernel_mem.hh"
#include "os/nvm_layout.hh"
#include "os/process.hh"

namespace kindle::persist
{

/** How the page table is kept consistent across restarts. */
enum class PtScheme : std::uint32_t
{
    rebuild = 0,    ///< PT in DRAM; rebuilt from the mapping list
    persistent = 1, ///< PT in NVM; every store consistency-wrapped
};

const char *ptSchemeName(PtScheme s);

/** Fixed-size serialized VMA. */
struct SerializedVma
{
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    std::uint32_t prot = 0;
    std::uint32_t nvm = 0;
    std::uint32_t areaId = 0;
    std::uint32_t pad = 0;
};

static_assert(sizeof(SerializedVma) == 32);

/** VMAs representable per context (gemOS processes are small). */
constexpr unsigned maxVmasPerContext = 96;

/**
 * One serialized execution context.  The checksum covers the populated
 * serialized prefix (with the checksum field itself zeroed) so recovery
 * can tell a half-written working copy from a trustworthy one.
 */
struct SavedContext
{
    cpu::CpuState regs;
    std::uint32_t vmaCount = 0;
    std::uint32_t faseActive = 0;
    std::uint32_t checksum = 0;
    std::uint32_t pad = 0;
    std::array<SerializedVma, maxVmasPerContext> vmas{};
};

/**
 * Slot header; one durable line.  checksum is FNV-1a over the header
 * with the checksum field zeroed; generation counts commits so an
 * oracle (or operator) can tell *which* checkpoint a recovered image
 * corresponds to.
 */
struct SlotHeader
{
    std::uint32_t magic = 0;
    std::uint32_t valid = 0;
    std::uint32_t pid = 0;
    std::uint32_t consistentIdx = 0;
    std::uint64_t ptRoot = 0;        ///< persistent scheme only
    std::uint64_t mappingCount = 0;  ///< rebuild scheme only
    std::uint32_t scheme = 0;
    std::uint32_t checksum = 0;
    std::uint64_t generation = 0;    ///< committed checkpoints
    char name[16] = {};

    static constexpr std::uint32_t magicValue = 0x534c4f54;  // "SLOT"
    static constexpr std::uint32_t validDead = 0;
    static constexpr std::uint32_t validLive = 1;
    /** Recovery found the image untrustworthy and fenced it off. */
    static constexpr std::uint32_t validQuarantined = 2;
};

static_assert(sizeof(SlotHeader) == 64, "header must be line sized");

/** Verdict on one durable image component (header/context/mappings). */
enum class ImageStatus
{
    ok,            ///< validates; safe to act on
    empty,         ///< never initialized / cleanly invalidated
    quarantined,   ///< fenced off by an earlier salvage pass
    badChecksum,   ///< stored checksum does not match the bytes
    badCount,      ///< an embedded count exceeds its container
};

const char *imageStatusName(ImageStatus s);

/** One (vpn → NVM pfn) association in the mapping list. */
struct MappingEntry
{
    std::uint64_t vpn = 0;
    std::uint64_t pfn = 0;
};

static_assert(sizeof(MappingEntry) == 16);

/**
 * Accessor for one process's slot + mapping list.  All writes are
 * durable (store + clwb + fence) and charged to simulated time; reads
 * used by recovery come from the post-crash durable image.
 */
class SavedStateSlot
{
  public:
    SavedStateSlot(os::KernelMem &kmem, const os::NvmLayout &layout,
                   unsigned slot_idx);

    unsigned slotIndex() const { return slotIdx; }

    /** @name Checkpoint-side (durable writes, timed). */
    /// @{
    /** Initialize the header for a new process. */
    void initialize(Pid pid, const std::string &name, PtScheme scheme);

    /** Write @p ctx into the working (non-consistent) copy. */
    void writeWorkingContext(const SavedContext &ctx);

    /** Atomically make the working copy the consistent one. */
    void commit();

    /** Record the persistent-scheme page-table root. */
    void setPtRoot(Addr root);

    /** Mark the slot dead (process exited cleanly). */
    void invalidate();

    /** Fence off an untrustworthy image (salvage-mode recovery). */
    void quarantine();

    /**
     * Append one mapping entry during the rebuild-scheme traversal.
     * The caller finishes with finalizeMappingList().
     * @param charge_scan Model the plain-list positioning scan (the
     *        paper's implementation); indexed maintenance (the
     *        incremental extension) passes false.
     */
    void writeMappingEntry(std::uint64_t index, const MappingEntry &e,
                           bool charge_scan = true);

    /** Durably publish the entry count. */
    void finalizeMappingList(std::uint64_t count);
    /// @}

    /** @name Recovery-side (durable reads, timed). */
    /// @{
    /** Read the raw durable header (also refreshes the shadow). */
    SlotHeader readHeader();

    /** Classify a header read from the durable image. */
    static ImageStatus verifyHeader(const SlotHeader &hdr);

    /**
     * Read + validate the consistent context named by the header.
     * @p out is only meaningful when the result is ImageStatus::ok.
     */
    ImageStatus readConsistentContext(const SlotHeader &hdr,
                                      SavedContext &out);

    /** Convenience wrapper that fatals on a non-ok context. */
    SavedContext readConsistentContext(const SlotHeader &hdr);

    /**
     * Read + bounds-check the durable mapping list.  @p out is only
     * meaningful when the result is ImageStatus::ok.
     */
    ImageStatus readMappingList(const SlotHeader &hdr,
                                std::vector<MappingEntry> &out);

    /** Convenience wrapper that fatals on a non-ok list. */
    std::vector<MappingEntry> readMappingList(const SlotHeader &hdr);

    /** Largest mapping count the per-process list region can hold. */
    std::uint64_t
    maxMappingEntries() const
    {
        return layout.mappingListBytesPerProc / sizeof(MappingEntry);
    }
    /// @}

    /** Serialize a live process into a SavedContext. */
    static SavedContext snapshot(const os::Process &proc,
                                 const cpu::CpuState &regs);

    /** Restore address-space layout from a context. */
    static void restoreAspace(os::Process &proc,
                              const SavedContext &ctx);

  private:
    Addr contextAddr(unsigned idx) const;
    Addr headerAddr() const;
    Addr mappingBase() const;

    /**
     * Recompute the shadow checksum and write the header durably; an
     * optional crash site fires between the clwb and the fence.
     */
    void writeHeader(const char *pre_fence_site = nullptr);

    os::KernelMem &kmem;
    const os::NvmLayout &layout;
    unsigned slotIdx;
    /** Shadow of the durable header for cheap field updates. */
    SlotHeader shadow;
};

} // namespace kindle::persist

#endif // KINDLE_PERSIST_SAVED_STATE_HH
