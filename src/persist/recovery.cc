#include "persist/recovery.hh"

#include <unordered_set>

#include "base/logging.hh"
#include "base/str.hh"
#include "base/trace_flags.hh"
#include "cpu/pagetable_defs.hh"
#include "fault/fault.hh"
#include "os/bad_frames.hh"
#include "persist/pt_policy.hh"
#include "persist/redo_log.hh"
#include "telemetry/profiler.hh"
#include "trace/trace.hh"

namespace kindle::persist
{

namespace
{

/**
 * Collect all NVM frames reachable from a persistent page table.
 * Never trusts a durable pointer: a frame address outside the NVM
 * range (or already visited) counts as dangling instead of being
 * dereferenced.
 */
void
collectPtFrames(os::Kernel &kernel, Addr table, unsigned level,
                std::unordered_set<Addr> &live,
                std::uint64_t &dangling, std::uint64_t *leaves = nullptr)
{
    if (!kernel.kmem().mem().nvmRange().contains(table) ||
        !live.insert(table).second) {
        ++dangling;
        return;
    }
    auto &mem = kernel.kmem().mem();
    for (unsigned i = 0; i < cpu::ptEntriesPerPage; ++i) {
        const cpu::Pte pte{mem.readT<std::uint64_t>(
            table + i * cpu::ptEntrySize)};
        if (!pte.present())
            continue;
        if (level == 0) {
            if (leaves)
                ++*leaves;
            if (pte.nvmBacked()) {
                if (mem.nvmRange().contains(pte.frameAddr()))
                    live.insert(pte.frameAddr());
                else
                    ++dangling;
            }
        } else {
            collectPtFrames(kernel, pte.frameAddr(), level - 1, live,
                            dangling, leaves);
        }
    }
}

} // namespace

const char *
recoveryErrorName(RecoveryErrorCode code)
{
    switch (code) {
      case RecoveryErrorCode::headerChecksumMismatch:
        return "headerChecksumMismatch";
      case RecoveryErrorCode::contextChecksumMismatch:
        return "contextChecksumMismatch";
      case RecoveryErrorCode::contextBadCount:
        return "contextBadCount";
      case RecoveryErrorCode::mappingListBadCount:
        return "mappingListBadCount";
      case RecoveryErrorCode::danglingMapping:
        return "danglingMapping";
      case RecoveryErrorCode::schemeMismatch:
        return "schemeMismatch";
      case RecoveryErrorCode::redoLogHeaderCorrupt:
        return "redoLogHeaderCorrupt";
      case RecoveryErrorCode::redoLogTruncatedTail:
        return "redoLogTruncatedTail";
      case RecoveryErrorCode::retiredFrameDamage:
        return "retiredFrameDamage";
    }
    return "?";
}

RecoveryReport
recover(os::Kernel &kernel, PtScheme scheme)
{
    RecoveryReport report;
    sim::Simulation &sim = kernel.simulation();
    const Tick t0 = sim.now();
    constexpr unsigned noSlot = ~0u;
    KINDLE_PROF_SCOPE(recovery);
    KINDLE_TRACE_SPAN(recovery, recovery, "recover");

    const auto fail = [&report](RecoveryErrorCode code, unsigned slot,
                                std::string detail) {
        report.errors.push_back(
            RecoveryError{code, slot, std::move(detail)});
    };

    // 0. Adopt the bad-frame list first: every later judgement about
    //    durable bytes must know which frames the media has lost.
    //    (The kernel constructor already loaded it; re-reading here
    //    keeps recovery self-contained and idempotent.)
    os::BadFrameTable &bad = kernel.badFrameTable();
    std::unordered_set<Addr> allocated;
    {
        KINDLE_TRACE_SPAN(recovery, recovery, "recover.bitmap");
        bad.loadFromNvm();
        report.retiredFrames = bad.retiredCount();

        // 1. Frame allocator state survives in the durable bitmap.
        kernel.nvmAllocator().recoverFromBitmap();
        kernel.nvmAllocator().forEachAllocated(
            [&](Addr frame) { allocated.insert(frame); });
    }
    KINDLE_CRASH_SITE("recover.after_bitmap");

    // 1a. Audit the surviving metadata redo log.  The consistent
    //     checkpoint copies make replay unnecessary, but a torn tail
    //     or unreadable header is damage worth classifying.
    {
        KINDLE_TRACE_SPAN(recovery, recovery, "recover.logAudit");
        const os::NvmLayout &layout = kernel.nvmLayout();
        const RedoScan scan = RedoLog::audit(
            kernel.kmem(), layout.redoLog, layout.redoLogBytes / 2);
        report.redoRecordsSurvived = scan.records.size();
        if (scan.headerCorrupt) {
            fail(RecoveryErrorCode::redoLogHeaderCorrupt, noSlot,
                 "metadata log header failed validation");
        } else if (scan.truncatedTail) {
            fail(RecoveryErrorCode::redoLogTruncatedTail, noSlot,
                 csprintf("log tail torn after {} valid records",
                        scan.records.size()));
        }
    }
    KINDLE_CRASH_SITE("recover.after_log_audit");

    // 1b. Persistent scheme: repair any wrapped page-table store the
    //     crash tore mid-writeback, before the tables are trusted.
    if (scheme == PtScheme::persistent) {
        KINDLE_TRACE_SPAN(recovery, recovery, "recover.ptRollback");
        const os::NvmLayout &layout = kernel.nvmLayout();
        const std::uint64_t half = layout.redoLogBytes / 2;
        const PtUndoReport undo = recoverPtUndoLog(
            kernel.kmem(), layout.redoLog + half, half);
        report.tornPtStoresRolledBack = undo.tornStoresRolledBack;
        KINDLE_CRASH_SITE("recover.after_pt_rollback");
    }

    std::unordered_set<Addr> live_frames;

    // 2-3. Scan the directory in salvage mode: validate every durable
    // byte of a slot before acting on it; quarantine what fails.
    for (unsigned idx = 0; idx < kernel.nvmLayout().procSlots; ++idx) {
        KINDLE_TRACE_SPAN_ARGS(recovery, recovery, "recover.slot",
                               "slot={}", idx);
        SavedStateSlot slot(kernel.kmem(), kernel.nvmLayout(), idx);
        const SlotHeader hdr = slot.readHeader();

        const ImageStatus hdr_status = SavedStateSlot::verifyHeader(hdr);
        if (hdr_status == ImageStatus::empty ||
            hdr_status == ImageStatus::quarantined) {
            continue;
        }

        const auto quarantine = [&](RecoveryErrorCode code,
                                    std::string detail) {
            fail(code, idx, std::move(detail));
            slot.quarantine();
            ++report.processesQuarantined;
            KINDLE_CRASH_SITE("recover.after_quarantine");
        };

        // A slot whose frames the media lost cannot be trusted even
        // if its checksums happen to validate (ECC may still be
        // correcting, but the frame is on its way out).
        if (bad.anyRetired(kernel.nvmLayout().slotAddr(idx),
                           os::savedStateSlotBytes)) {
            quarantine(RecoveryErrorCode::retiredFrameDamage,
                       "saved-state slot sits on a retired frame");
            continue;
        }

        if (hdr_status != ImageStatus::ok) {
            quarantine(RecoveryErrorCode::headerChecksumMismatch,
                       csprintf("header status {}",
                              imageStatusName(hdr_status)));
            continue;
        }
        if (hdr.scheme != static_cast<std::uint32_t>(scheme)) {
            quarantine(
                RecoveryErrorCode::schemeMismatch,
                csprintf("slot checkpointed under the {} scheme",
                       ptSchemeName(static_cast<PtScheme>(hdr.scheme))));
            continue;
        }

        SavedContext ctx;
        const ImageStatus ctx_status =
            slot.readConsistentContext(hdr, ctx);
        if (ctx_status == ImageStatus::badCount) {
            quarantine(RecoveryErrorCode::contextBadCount,
                       csprintf("context claims {} VMAs", ctx.vmaCount));
            continue;
        }
        if (ctx_status != ImageStatus::ok) {
            quarantine(RecoveryErrorCode::contextChecksumMismatch,
                       "consistent context failed its checksum");
            continue;
        }

        const bool persistent = scheme == PtScheme::persistent;

        std::vector<MappingEntry> mappings;
        if (!persistent) {
            if (bad.anyRetired(kernel.nvmLayout().mappingListAddr(idx),
                               hdr.mappingCount *
                                   sizeof(MappingEntry))) {
                quarantine(RecoveryErrorCode::retiredFrameDamage,
                           "mapping list sits on a retired frame");
                continue;
            }
            const ImageStatus map_status =
                slot.readMappingList(hdr, mappings);
            if (map_status != ImageStatus::ok) {
                quarantine(
                    RecoveryErrorCode::mappingListBadCount,
                    csprintf("mapping list claims {} entries",
                           hdr.mappingCount));
                continue;
            }
        } else if (!kernel.kmem().mem().nvmRange().contains(
                       hdr.ptRoot)) {
            quarantine(RecoveryErrorCode::danglingMapping,
                       csprintf("pt root {} outside NVM", hdr.ptRoot));
            continue;
        } else if (bad.isRetired(hdr.ptRoot)) {
            quarantine(RecoveryErrorCode::retiredFrameDamage,
                       csprintf("pt root {} on a retired frame",
                              hdr.ptRoot));
            continue;
        }

        // The durable image validates: bring the process back.
        os::Process &proc = kernel.spawnShell(
            std::string(hdr.name), idx, /*create_pt=*/!persistent);
        proc.restored = true;
        proc.context = ctx.regs;
        SavedStateSlot::restoreAspace(proc, ctx);

        if (persistent) {
            // Adopt the NVM-resident table: just reload the root
            // (the "set PTBR" step of the paper).
            proc.ptRoot = hdr.ptRoot;
            kernel.pageTables().adopt(proc.ptRoot);
            std::uint64_t dangling = 0;
            collectPtFrames(kernel, proc.ptRoot, cpu::ptLevels - 1,
                            live_frames, dangling,
                            &proc.residentPages);
            if (dangling > 0) {
                fail(RecoveryErrorCode::danglingMapping, idx,
                     csprintf("{} dangling page-table pointers",
                            dangling));
            }
        } else {
            // Rebuild the DRAM page table from the mapping list,
            // dropping entries that reference bogus or free frames.
            constexpr std::uint64_t maxVpn =
                std::uint64_t{1} << (48 - pageShift);
            for (const MappingEntry &m : mappings) {
                const Addr frame = m.pfn << pageShift;
                if (m.vpn >= maxVpn || !allocated.count(frame)) {
                    fail(RecoveryErrorCode::danglingMapping, idx,
                         csprintf("vpn {} -> pfn {}", m.vpn,
                                m.pfn));
                    ++report.mappingsDropped;
                    continue;
                }
                if (bad.isRetired(frame)) {
                    // The data page itself died between checkpoint
                    // and crash; remapping it would hand the process
                    // uncorrectable garbage.
                    fail(RecoveryErrorCode::retiredFrameDamage, idx,
                         csprintf("vpn {} -> retired frame {}",
                                m.vpn, frame));
                    ++report.mappingsDropped;
                    continue;
                }
                kernel.pageTables().map(
                    proc.ptRoot, m.vpn << pageShift, frame,
                    /*writable=*/true, /*nvm_backed=*/true);
                ++proc.residentPages;
                live_frames.insert(frame);
                ++report.mappingsRestored;
            }
        }

        proc.state = os::ProcState::ready;
        ++report.processesRecovered;
        trace::dprintf(trace::Flag::recovery, sim.now(),
                       "recovered pid {} ({} VMAs)", proc.pid,
                       ctx.vmaCount);
        KINDLE_CRASH_SITE("recover.after_slot_restore");
    }

    // 4. Reclaim NVM frames that were allocated after the last
    //    checkpoint (present in the bitmap, reachable from nothing).
    //    Quarantined slots contribute here too: their frames are no
    //    longer reachable and return to the allocator.
    KINDLE_CRASH_SITE("recover.before_reclaim");
    {
        KINDLE_TRACE_SPAN(recovery, recovery, "recover.reclaim");
        std::vector<Addr> leaked;
        kernel.nvmAllocator().forEachAllocated([&](Addr frame) {
            if (!live_frames.count(frame))
                leaked.push_back(frame);
        });
        for (Addr frame : leaked)
            kernel.nvmAllocator().free(frame);
        report.framesReclaimed = leaked.size();
    }

    KINDLE_CRASH_SITE("recover.complete");
    report.recoveryTicks = sim.now() - t0;
    return report;
}

} // namespace kindle::persist
